//! Offline stand-in for `proptest`.
//!
//! Provides the subset this workspace's property tests use: the
//! [`proptest!`] macro, [`Strategy`] implemented for integer and float
//! ranges, [`collection::vec`], [`Strategy::prop_map`], the
//! `prop_assert!`/`prop_assert_eq!`/`prop_assume!` macros and
//! [`ProptestConfig::with_cases`].
//!
//! Unlike the real crate there is no shrinking and no persisted failure
//! seeds: each test samples `cases` deterministic inputs (seeded from the
//! test name) and panics on the first failing case, printing the case
//! number so it can be reproduced.

use rand::prelude::*;
use std::ops::Range;

/// Per-test configuration.
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of accepted (non-rejected) cases to run.
    pub cases: u32,
}

impl ProptestConfig {
    /// Run `cases` accepted cases per test.
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 64 }
    }
}

/// Outcome of one generated case, used by the assertion macros.
#[derive(Debug)]
pub enum TestCaseError {
    /// `prop_assume!` failed — the case is skipped, not failed.
    Reject,
    /// `prop_assert!`-family failure with a message.
    Fail(String),
}

/// Deterministic per-test random source.
pub struct TestRng(StdRng);

impl TestRng {
    /// Seed from a test name, so every test gets a stable distinct stream.
    pub fn for_test(name: &str) -> Self {
        let mut h = 0xcbf29ce484222325u64;
        for b in name.bytes() {
            h = (h ^ b as u64).wrapping_mul(0x100000001b3);
        }
        Self(StdRng::seed_from_u64(h))
    }
}

/// A value generator.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draw one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform generated values with `f`.
    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }
}

/// Strategy returned by [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn sample(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.sample(rng))
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                rng.0.gen_range(self.clone())
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f64);

macro_rules! impl_range_inclusive_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                if lo == hi { lo } else { rng.0.gen_range(lo..hi + 1) }
            }
        }
    )*};
}

impl_range_inclusive_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.sample(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);

/// Collection strategies (subset of `proptest::collection`).
pub mod collection {
    use super::{Strategy, TestRng};
    use rand::Rng;

    /// Length specification for [`vec`]: an exact `usize` or a `Range<usize>`.
    #[derive(Clone, Debug)]
    pub struct SizeRange {
        lo: usize,
        hi: usize, // exclusive
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            Self { lo: n, hi: n + 1 }
        }
    }

    impl From<std::ops::Range<usize>> for SizeRange {
        fn from(r: std::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            Self {
                lo: r.start,
                hi: r.end,
            }
        }
    }

    impl From<std::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: std::ops::RangeInclusive<usize>) -> Self {
            Self {
                lo: *r.start(),
                hi: *r.end() + 1,
            }
        }
    }

    /// Strategy generating `Vec`s of `elem` with a length drawn from `size`.
    pub fn vec<S: Strategy>(elem: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            elem,
            size: size.into(),
        }
    }

    /// Strategy returned by [`vec`].
    pub struct VecStrategy<S> {
        elem: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = rng.0.gen_range(self.size.lo..self.size.hi);
            (0..n).map(|_| self.elem.sample(rng)).collect()
        }
    }
}

/// Types with a canonical full-range strategy (subset of
/// `proptest::arbitrary::Arbitrary`).
pub trait Arbitrary: Sized {
    /// Draw one arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.0.gen_range(0u8..2) == 1
    }
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.0.next_u64() as $t
            }
        }
    )*};
}
impl_arbitrary_int!(u8, u16, u32, u64, i8, i16, i32, i64);

/// Strategy returned by [`any`].
pub struct Any<T>(std::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// The canonical strategy for a type: `any::<bool>()` etc.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

/// Everything a property-test module needs, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate as prop;
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assume, proptest, Arbitrary, ProptestConfig,
        Strategy,
    };
}

/// Assert inside a `proptest!` body; failure reports the generated case.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::Fail(format!(
                "prop_assert!({}) failed at {}:{}",
                stringify!($cond),
                file!(),
                line!()
            )));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::Fail(format!($($fmt)+)));
        }
    };
}

/// Equality assertion inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {{
        let (a, b) = (&$a, &$b);
        if !(*a == *b) {
            return ::std::result::Result::Err($crate::TestCaseError::Fail(format!(
                "prop_assert_eq!({}, {}) failed: {:?} != {:?} at {}:{}",
                stringify!($a),
                stringify!($b),
                a,
                b,
                file!(),
                line!()
            )));
        }
    }};
}

/// Skip the current case (counts as rejected, not failed).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::Reject);
        }
    };
}

/// Define property tests. Each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` running `cases` sampled inputs.
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($cfg:expr)]
        $(
            $(#[$meta:meta])*
            fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let cfg: $crate::ProptestConfig = $cfg;
                let mut rng = $crate::TestRng::for_test(concat!(module_path!(), "::", stringify!($name)));
                let mut accepted: u32 = 0;
                let mut rejected: u32 = 0;
                let mut case: u64 = 0;
                while accepted < cfg.cases {
                    case += 1;
                    $(let $arg = $crate::Strategy::sample(&($strat), &mut rng);)+
                    let outcome = (move || -> ::std::result::Result<(), $crate::TestCaseError> {
                        $body
                        ::std::result::Result::Ok(())
                    })();
                    match outcome {
                        ::std::result::Result::Ok(()) => accepted += 1,
                        ::std::result::Result::Err($crate::TestCaseError::Reject) => {
                            rejected += 1;
                            assert!(
                                rejected < 100 * cfg.cases.max(64),
                                "too many prop_assume! rejections in {}",
                                stringify!($name)
                            );
                        }
                        ::std::result::Result::Err($crate::TestCaseError::Fail(msg)) => {
                            panic!("{} failed on generated case #{case}: {msg}", stringify!($name));
                        }
                    }
                }
            }
        )*
    };
    (
        $(
            $(#[$meta:meta])*
            fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
        )*
    ) => {
        $crate::proptest! {
            #![proptest_config($crate::ProptestConfig::default())]
            $( $(#[$meta])* fn $name($($arg in $strat),+) $body )*
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn ranges_in_bounds(x in 3usize..9, y in -1.0f64..1.0) {
            prop_assert!((3..9).contains(&x));
            prop_assert!((-1.0..1.0).contains(&y));
        }

        #[test]
        fn vec_and_map(v in prop::collection::vec(0u64..5, 2..6).prop_map(|v| v.len())) {
            prop_assert!((2..6).contains(&v));
        }

        #[test]
        fn assume_skips(x in 0usize..10) {
            prop_assume!(x % 2 == 0);
            prop_assert_eq!(x % 2, 0);
        }
    }
}

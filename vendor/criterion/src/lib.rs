//! Offline stand-in for `criterion`.
//!
//! Runs each registered benchmark a few timed iterations and prints the
//! mean wall time — no statistics, baselines or HTML reports. The API
//! mirrors the subset the workspace's benches use.

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Re-export of `std::hint::black_box` under criterion's name.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// How `iter_batched` amortizes setup (ignored by this stand-in).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// Fresh input for every routine call.
    PerIteration,
}

/// Identifier for a parameterized benchmark.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `name/parameter` identifier.
    pub fn new(name: impl Into<String>, parameter: impl Display) -> Self {
        Self {
            id: format!("{}/{}", name.into(), parameter),
        }
    }

    /// Identifier from the parameter alone.
    pub fn from_parameter(parameter: impl Display) -> Self {
        Self {
            id: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        Self { id: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        Self { id: s }
    }
}

/// Timing harness passed to benchmark closures.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Time `routine` over the configured iterations.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
    }

    /// Time `routine` with untimed fresh inputs from `setup`.
    pub fn iter_batched<I, O, S, F>(&mut self, mut setup: S, mut routine: F, _size: BatchSize)
    where
        S: FnMut() -> I,
        F: FnMut(I) -> O,
    {
        let mut total = Duration::ZERO;
        for _ in 0..self.iters {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            total += start.elapsed();
        }
        self.elapsed = total;
    }
}

/// Top-level benchmark registry.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Self { sample_size: 10 }
    }
}

impl Criterion {
    /// Open a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: self.sample_size,
            _parent: self,
        }
    }

    /// Run a single ungrouped benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Into<BenchmarkId>,
        f: F,
    ) -> &mut Self {
        let sample_size = self.sample_size;
        run_one("", &id.into().id, sample_size, f);
        self
    }
}

/// A group of benchmarks sharing a name prefix and sample size.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    _parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Set the iteration count for benchmarks in this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Run one benchmark in this group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Into<BenchmarkId>,
        f: F,
    ) -> &mut Self {
        run_one(&self.name, &id.into().id, self.sample_size, f);
        self
    }

    /// Run one parameterized benchmark in this group.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        run_one(&self.name, &id.id, self.sample_size, |b| f(b, input));
        self
    }

    /// Close the group (no-op; kept for API compatibility).
    pub fn finish(self) {}
}

fn run_one<F: FnMut(&mut Bencher)>(group: &str, id: &str, sample_size: usize, mut f: F) {
    let mut b = Bencher {
        // One warmup pass, then the measured passes, all inside the
        // closure's own loop: keep total work proportional to sample_size.
        iters: sample_size as u64,
        elapsed: Duration::ZERO,
    };
    f(&mut b);
    let label = if group.is_empty() {
        id.to_string()
    } else {
        format!("{group}/{id}")
    };
    let mean = b.elapsed.as_secs_f64() / b.iters.max(1) as f64;
    println!(
        "bench {label:<40} {:>12.3e} s/iter ({} iters)",
        mean, b.iters
    );
}

/// Collect benchmark functions into one registry entry point.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c = $crate::Criterion::default();
            $( $target(&mut c); )+
        }
    };
}

/// Emit `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_runs_and_times() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("smoke");
        g.sample_size(3);
        let mut count = 0u64;
        g.bench_function("count", |b| b.iter(|| count += 1));
        g.bench_with_input(BenchmarkId::from_parameter(7), &7u64, |b, &x| {
            b.iter_batched(|| x, |v| v * 2, BatchSize::SmallInput)
        });
        g.finish();
        assert!(count >= 3);
    }
}

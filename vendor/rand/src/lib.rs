//! Offline stand-in for the `rand` crate.
//!
//! Implements the subset of the `rand` 0.8 API this workspace uses:
//! [`Rng::gen_range`] / [`Rng::gen_bool`], [`SeedableRng::seed_from_u64`],
//! [`rngs::StdRng`] and [`prelude::SliceRandom::shuffle`]. The generator is
//! xoshiro256** seeded through SplitMix64 — deterministic and
//! statistically solid for test/workload generation, but the stream does
//! *not* match the upstream crate's `StdRng`.

use std::ops::Range;

/// Core 64-bit generator interface.
pub trait RngCore {
    /// Next raw 64 random bits.
    fn next_u64(&mut self) -> u64;
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// User-facing sampling methods, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Sample uniformly from a half-open range, e.g. `rng.gen_range(-1.0..1.0)`.
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T {
        range.sample_single(self)
    }

    /// Bernoulli sample with probability `p` of `true`.
    fn gen_bool(&mut self, p: f64) -> bool {
        debug_assert!((0.0..=1.0).contains(&p), "gen_bool p out of [0,1]");
        unit_f64(self.next_u64()) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Map 64 random bits to a uniform f64 in `[0, 1)`.
#[inline]
fn unit_f64(bits: u64) -> f64 {
    (bits >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Ranges a value can be uniformly sampled from.
pub trait SampleRange<T> {
    /// Draw one sample using `rng`.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl SampleRange<f64> for Range<f64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "empty f64 range");
        self.start + unit_f64(rng.next_u64()) * (self.end - self.start)
    }
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty integer range");
                let span = (self.end as u128).wrapping_sub(self.start as u128) as u64;
                // Lemire-style rejection-free threshold is overkill for
                // test workloads; widening-multiply keeps bias below 2^-64.
                let hi = ((rng.next_u64() as u128 * span as u128) >> 64) as u64;
                (self.start as i128 + hi as i128) as $t
            }
        }
    )*};
}

impl_int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Seedable generators.
pub trait SeedableRng: Sized {
    /// Build a generator from a 64-bit seed (SplitMix64 expansion).
    fn seed_from_u64(state: u64) -> Self;
}

/// Named generator types.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard generator: xoshiro256**.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(mut state: u64) -> Self {
            // SplitMix64 seed expansion, as recommended by the xoshiro authors.
            let mut next = || {
                state = state.wrapping_add(0x9E3779B97F4A7C15);
                let mut z = state;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
                z ^ (z >> 31)
            };
            Self {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let out = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            out
        }
    }
}

/// Extra methods on slices (subset of `rand::seq::SliceRandom`).
pub trait SliceRandom {
    /// Fisher–Yates shuffle in place.
    fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R);
}

impl<T> SliceRandom for [T] {
    fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R) {
        for i in (1..self.len()).rev() {
            let j = rng.gen_range(0..i + 1);
            self.swap(i, j);
        }
    }
}

/// Convenience glob-import module mirroring `rand::prelude`.
pub mod prelude {
    pub use super::rngs::StdRng;
    pub use super::{Rng, RngCore, SampleRange, SeedableRng, SliceRandom};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn deterministic_and_bounded() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            let x: f64 = a.gen_range(-1.0..1.0);
            let y: f64 = b.gen_range(-1.0..1.0);
            assert_eq!(x, y);
            assert!((-1.0..1.0).contains(&x));
        }
    }

    #[test]
    fn int_ranges_cover_endpoints() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut seen = [false; 5];
        for _ in 0..1000 {
            seen[rng.gen_range(0usize..5)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn gen_bool_rate() {
        let mut rng = StdRng::seed_from_u64(2);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.3)).count();
        assert!((2700..3300).contains(&hits), "{hits}");
    }

    #[test]
    fn shuffle_permutes() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut v: Vec<usize> = (0..10).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..10).collect::<Vec<_>>());
    }
}

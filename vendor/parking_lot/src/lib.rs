//! Offline stand-in for `parking_lot`: a [`Mutex`] whose `lock()` returns
//! the guard directly (no `Result`), implemented over `std::sync::Mutex`.
//! Poisoning is ignored — a panicking holder does not wedge the lock.

use std::fmt;
use std::ops::{Deref, DerefMut};

/// Mutual exclusion primitive with `parking_lot`'s panic-free `lock()`.
pub struct Mutex<T: ?Sized> {
    inner: std::sync::Mutex<T>,
}

impl<T> Mutex<T> {
    /// Create a new mutex guarding `value`.
    pub fn new(value: T) -> Self {
        Self {
            inner: std::sync::Mutex::new(value),
        }
    }

    /// Consume the mutex, returning the guarded value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|p| p.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the lock, blocking until available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        MutexGuard {
            inner: self.inner.lock().unwrap_or_else(|p| p.into_inner()),
        }
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Self {
        Self::new(T::default())
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Mutex").finish_non_exhaustive()
    }
}

/// RAII guard returned by [`Mutex::lock`].
pub struct MutexGuard<'a, T: ?Sized> {
    inner: std::sync::MutexGuard<'a, T>,
}

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.inner
    }
}

#[cfg(test)]
mod tests {
    use super::Mutex;
    use std::sync::Arc;

    #[test]
    fn guards_exclusive_access() {
        let m = Arc::new(Mutex::new(0u64));
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let m = Arc::clone(&m);
                std::thread::spawn(move || {
                    for _ in 0..1000 {
                        *m.lock() += 1;
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(*m.lock(), 4000);
    }
}

//! Shared fixtures for the cross-crate integration tests.

use dmrg::{DavidsonOptions, Schedule, SweepParams};

/// Schedule for integration tests: enough effort to converge small systems
/// to ED accuracy, with early noise for frustrated cases.
pub fn test_schedule(ms: &[usize], sweeps_per_m: usize) -> Schedule {
    let dav = DavidsonOptions {
        max_iter: 12,
        max_subspace: 6,
        tol: 1e-11,
        seed: 1234,
    };
    let total = ms.len() * sweeps_per_m;
    let clean_from = total.saturating_sub(total / 3).max(1);
    Schedule {
        sweeps: (0..total)
            .map(|i| SweepParams {
                max_m: ms[i / sweeps_per_m],
                cutoff: 1e-12,
                davidson: dav,
                noise: if i >= clean_from {
                    0.0
                } else {
                    1e-3 * 0.1f64.powi(i as i32 / 2)
                },
            })
            .collect(),
    }
}

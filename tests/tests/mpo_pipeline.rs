//! MPO pipeline integration: AutoMPO → compression → expectation values,
//! against dense references, for both site types.

use tt_dist::Executor;
use tt_mps::{dense_from_terms, heisenberg_j1j2, hubbard, Electron, Lattice, Mps, SpinHalf};

#[test]
fn j1j2_mpo_equals_dense_hamiltonian() {
    // 2x2 cylinder J1-J2 — includes wrap-around and diagonal bonds
    let lat = Lattice::square_cylinder(2, 2);
    let builder = heisenberg_j1j2(&lat, 1.0, 0.5);
    let mpo = builder.build().expect("mpo");
    let dense = mpo.to_dense_matrix().expect("dense");
    let reference = dense_from_terms(&SpinHalf, 4, &builder.expanded().expect("terms"));
    assert!(dense.allclose(&reference, 1e-10));
}

#[test]
fn triangular_hubbard_mpo_equals_dense() {
    let lat = Lattice::triangular_cylinder_xc(2, 2);
    let builder = hubbard(&lat, 1.0, 8.5);
    let mpo = builder.build().expect("mpo");
    let dense = mpo.to_dense_matrix().expect("dense");
    let reference = dense_from_terms(&Electron, 4, &builder.expanded().expect("terms"));
    assert!(dense.allclose(&reference, 1e-9));
}

#[test]
fn compression_preserves_hubbard_operator() {
    let lat = Lattice::triangular_cylinder_xc(2, 2);
    let builder = hubbard(&lat, 1.0, 8.5);
    let mut mpo = builder.build().expect("mpo");
    let before = mpo.to_dense_matrix().expect("dense");
    let k_raw = mpo.max_bond_dim();
    let exec = Executor::local();
    let k = mpo.compress(&exec, 1e-13).expect("compress");
    assert!(k <= k_raw, "compression must not grow the bond");
    let after = mpo.to_dense_matrix().expect("dense");
    let scale = before.max_abs();
    assert!(
        after.max_diff(&before).unwrap() < 1e-8 * scale,
        "operator changed by compression"
    );
}

#[test]
fn paper_scale_mpo_bond_dims() {
    // wider cylinders need larger k; the trend and rough magnitude of the
    // paper's k ~ 26-30 appears at width 4-6
    let exec = Executor::local();
    let lat = Lattice::square_cylinder(6, 4);
    let mpo = heisenberg_j1j2(&lat, 1.0, 0.5).build().expect("mpo");
    let k_spins = mpo.max_bond_dim();
    assert!(
        (10..=40).contains(&k_spins),
        "width-4 J1-J2 cylinder k = {k_spins}"
    );
    let lat_h = Lattice::triangular_cylinder_xc(4, 3);
    let mut mpo_h = hubbard(&lat_h, 1.0, 8.5).build().expect("mpo");
    let k_raw = mpo_h.max_bond_dim();
    let k_elec = mpo_h.compress(&exec, 1e-13).expect("compress");
    assert!(
        (10..=40).contains(&k_elec),
        "width-3 triangular Hubbard: raw {k_raw} → compressed {k_elec}"
    );
}

#[test]
fn expectation_agrees_with_dense_quadratic_form() {
    // <psi|H|psi> from the MPS machinery equals the dense quadratic form
    let lat = Lattice::chain(4);
    let builder = heisenberg_j1j2(&lat, 1.0, 0.0);
    let mpo = builder.build().expect("mpo");
    let psi = Mps::product_state(&SpinHalf, &[0, 1, 1, 0]).expect("state");
    let e = psi.expectation(&mpo).expect("expectation");
    // dense: state index with site 0 slowest (row-major kron order)
    let h = dense_from_terms(&SpinHalf, 4, &builder.expanded().expect("terms"));
    let idx = 0b0110; // site0=0,site1=1,site2=1,site3=0 → bits in kron order
    let e_dense = h.at(&[idx, idx]);
    assert!((e - e_dense).abs() < 1e-10, "{e} vs {e_dense}");
}

//! The central systems claim: the simulated distributed runtime computes
//! *exactly* what the serial code computes — same energies, same states —
//! for every algorithm, rank count and execution mode.

use dmrg::Dmrg;
use tt_blocks::contract::contract_list;
use tt_blocks::{block_qr, block_svd, Algorithm, Arrow, BlockSparseTensor, QnIndex, QN};
use tt_dist::{ExecMode, Executor, Machine, SpawnSpec};
use tt_integration::test_schedule;
use tt_linalg::TruncSpec;
use tt_mps::{heisenberg_j1j2, neel_state, Lattice, Mps, SpinHalf};

/// Self-exec worker hook: when the multi-process backend re-executes this
/// test binary with the `spawned_worker_entry` filter, this "test" becomes
/// the worker serve loop (and exits the process when done). In a normal
/// test run the worker environment is absent and this is a no-op pass.
#[test]
fn spawned_worker_entry() {
    tt_dist::maybe_serve();
}

/// Executor over `workers` real shared-nothing OS worker processes.
fn multi_process_executor(workers: usize) -> Executor {
    Executor::multi_process(
        Machine::blue_waters(2),
        1,
        workers,
        SpawnSpec::SelfExec(vec!["spawned_worker_entry".into()]),
    )
    .expect("spawn multi-process workers")
}

fn run_energy(exec: &Executor, algo: Algorithm) -> f64 {
    let lat = Lattice::chain(6);
    let mpo = heisenberg_j1j2(&lat, 1.0, 0.0).build().expect("mpo");
    let mut psi = Mps::product_state(&SpinHalf, &neel_state(6)).expect("state");
    let driver = Dmrg::new(exec, algo, &mpo);
    driver
        .run(&mut psi, &test_schedule(&[8, 16], 2))
        .expect("dmrg")
        .energy
}

#[test]
fn distributed_runs_match_serial_energy() {
    let reference = run_energy(&Executor::local(), Algorithm::List);
    for algo in [
        Algorithm::List,
        Algorithm::SparseDense,
        Algorithm::SparseSparse,
    ] {
        for nodes in [1usize, 2] {
            let exec = Executor::with_machine(Machine::blue_waters(2), nodes, ExecMode::Sequential);
            let e = run_energy(&exec, algo);
            assert!(
                (e - reference).abs() < 1e-8,
                "{algo} on {nodes} nodes: {e} vs serial {reference}"
            );
        }
    }
}

#[test]
fn threaded_mode_is_bitwise_identical() {
    // Stronger than a tolerance: the threaded executor partitions kernels
    // by disjoint output rows, so every accumulation order is unchanged
    // and whole DMRG runs agree bit for bit.
    let seq = Executor::with_machine(Machine::blue_waters(2), 1, ExecMode::Sequential);
    let thr = Executor::with_machine(Machine::blue_waters(2), 1, ExecMode::Threaded);
    for algo in [
        Algorithm::List,
        Algorithm::SparseDense,
        Algorithm::SparseSparse,
    ] {
        let e_seq = run_energy(&seq, algo);
        let e_thr = run_energy(&thr, algo);
        assert_eq!(
            e_seq.to_bits(),
            e_thr.to_bits(),
            "{algo:?}: threaded energy must be bitwise equal to sequential"
        );
    }
    // and the cost model reports nonzero machine-dependent counters
    assert!(thr.sim_time().total() > 0.0);
    assert!(thr.supersteps() > 0);
    assert!(thr.total_flops() > 0);
}

/// A two-site-like block tensor with enough sector groups to exercise the
/// pool fan-out in `block_svd`/`block_qr`/`contract_list`.
fn block_fixture() -> (BlockSparseTensor, BlockSparseTensor) {
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    let bond = |arrow, dims: &[(i32, usize)]| {
        QnIndex::new(arrow, dims.iter().map(|&(q, d)| (QN::one(q), d)).collect())
    };
    let mut rng = StdRng::seed_from_u64(2024);
    let s = bond(Arrow::In, &[(1, 1), (-1, 1)]);
    let mid = bond(Arrow::Out, &[(-2, 3), (0, 4), (2, 3)]);
    let x = BlockSparseTensor::random(
        vec![bond(Arrow::In, &[(-1, 2), (1, 2)]), s.clone(), mid.clone()],
        QN::zero(1),
        &mut rng,
    );
    let y = BlockSparseTensor::random(
        vec![
            mid.dual(),
            s,
            bond(Arrow::Out, &[(-3, 1), (-1, 3), (1, 3), (3, 1)]),
        ],
        QN::zero(1),
        &mut rng,
    );
    (x, y)
}

#[test]
fn pool_parallel_block_linalg_is_bitwise_identical() {
    // block_svd and block_qr fan their independent sector groups out over
    // the thread pool in Threaded mode; U, S, Vᵀ / Q, R must still match
    // the sequential executor bit for bit (groups collected in order).
    let (x, _) = block_fixture();
    let seq = Executor::with_machine(Machine::blue_waters(2), 1, ExecMode::Sequential);
    let thr = Executor::with_machine(Machine::blue_waters(2), 1, ExecMode::Threaded);
    let spec = TruncSpec {
        max_rank: 6,
        cutoff: 0.0,
        min_keep: 1,
    };
    let s1 = block_svd(&seq, &x, &[0, 1], &[2], spec).unwrap();
    let s2 = block_svd(&thr, &x, &[0, 1], &[2], spec).unwrap();
    assert_eq!(s1.s, s2.s, "singular values must be bitwise equal");
    assert_eq!(s1.trunc_err.to_bits(), s2.trunc_err.to_bits());
    assert_eq!(s1.u.to_dense().data(), s2.u.to_dense().data());
    assert_eq!(s1.vt.to_dense().data(), s2.vt.to_dense().data());

    let (q1, r1) = block_qr(&seq, &x, &[0, 1], &[2]).unwrap();
    let (q2, r2) = block_qr(&thr, &x, &[0, 1], &[2]).unwrap();
    assert_eq!(q1.to_dense().data(), q2.to_dense().data());
    assert_eq!(r1.to_dense().data(), r2.to_dense().data());
}

#[test]
fn pool_parallel_contract_list_is_bitwise_identical() {
    // the per-block-pair GEMMs run as parallel pool jobs in Threaded mode
    // with ordered accumulation into output blocks
    let (x, y) = block_fixture();
    let seq = Executor::with_machine(Machine::blue_waters(2), 1, ExecMode::Sequential);
    let thr = Executor::with_machine(Machine::blue_waters(2), 1, ExecMode::Threaded);
    let c1 = contract_list(&seq, "isj,jtk->istk", &x, &y).unwrap();
    let c2 = contract_list(&thr, "isj,jtk->istk", &x, &y).unwrap();
    assert_eq!(c1.to_dense().data(), c2.to_dense().data());
    // and the cost accounting is mode-independent too
    assert_eq!(seq.total_flops(), thr.total_flops());
    assert_eq!(
        seq.sim_time().total().to_bits(),
        thr.sim_time().total().to_bits()
    );
}

#[test]
fn volume_balanced_sparse_kernels_bitwise_on_rectangular_blocks() {
    // the sparse-dense / sparse-sparse algorithms flatten block tensors
    // into skewed rectangular sparse operands — exactly the shape the
    // volume-balanced row split exists for
    let (x, y) = block_fixture();
    let seq = Executor::with_machine(Machine::blue_waters(2), 1, ExecMode::Sequential);
    let thr = Executor::with_machine(Machine::blue_waters(2), 1, ExecMode::Threaded);
    for algo in [Algorithm::SparseDense, Algorithm::SparseSparse] {
        let c1 = tt_blocks::contract(&seq, algo, "isj,jtk->istk", &x, &y).unwrap();
        let c2 = tt_blocks::contract(&thr, algo, "isj,jtk->istk", &x, &y).unwrap();
        assert_eq!(
            c1.to_dense().data(),
            c2.to_dense().data(),
            "{algo}: threaded must be bitwise identical"
        );
    }
}

#[test]
fn multi_process_dmrg_pipeline_is_bitwise_identical() {
    // The central claim of the shared-nothing backend: a whole DMRG run —
    // every contraction, SVD, QR and batch routed over the socket
    // transport to 2 real OS worker processes — lands on bitwise-identical
    // numbers to the in-process Sequential executor.
    let seq = Executor::with_machine(Machine::blue_waters(2), 1, ExecMode::Sequential);
    let mp = multi_process_executor(2);
    for algo in [
        Algorithm::List,
        Algorithm::SparseDense,
        Algorithm::SparseSparse,
    ] {
        let e_seq = run_energy(&seq, algo);
        let e_mp = run_energy(&mp, algo);
        assert_eq!(
            e_seq.to_bits(),
            e_mp.to_bits(),
            "{algo:?}: multi-process energy must be bitwise equal"
        );
    }
    // and the cost model charged the same simulated work on both backends
    assert_eq!(seq.total_flops(), mp.total_flops());
    assert_eq!(
        seq.sim_time().total().to_bits(),
        mp.sim_time().total().to_bits()
    );
}

#[test]
fn multi_process_block_pipeline_tensors_are_bitwise_identical() {
    // Tensor-level (not just scalar-energy) equivalence for the block
    // contraction + factorization pipeline the DMRG sweep is built from.
    let (x, y) = block_fixture();
    let seq = Executor::with_machine(Machine::blue_waters(2), 1, ExecMode::Sequential);
    let mp = multi_process_executor(3);

    let c1 = contract_list(&seq, "isj,jtk->istk", &x, &y).unwrap();
    let c2 = contract_list(&mp, "isj,jtk->istk", &x, &y).unwrap();
    assert_eq!(c1.to_dense().data(), c2.to_dense().data());
    for algo in [Algorithm::SparseDense, Algorithm::SparseSparse] {
        let c1 = tt_blocks::contract(&seq, algo, "isj,jtk->istk", &x, &y).unwrap();
        let c2 = tt_blocks::contract(&mp, algo, "isj,jtk->istk", &x, &y).unwrap();
        assert_eq!(c1.to_dense().data(), c2.to_dense().data(), "{algo}");
    }

    let spec = TruncSpec {
        max_rank: 6,
        cutoff: 0.0,
        min_keep: 1,
    };
    let s1 = block_svd(&seq, &x, &[0, 1], &[2], spec).unwrap();
    let s2 = block_svd(&mp, &x, &[0, 1], &[2], spec).unwrap();
    assert_eq!(s1.s, s2.s);
    assert_eq!(s1.u.to_dense().data(), s2.u.to_dense().data());
    assert_eq!(s1.vt.to_dense().data(), s2.vt.to_dense().data());

    let (q1, r1) = block_qr(&seq, &x, &[0, 1], &[2]).unwrap();
    let (q2, r2) = block_qr(&mp, &x, &[0, 1], &[2]).unwrap();
    assert_eq!(q1.to_dense().data(), q2.to_dense().data());
    assert_eq!(r1.to_dense().data(), r2.to_dense().data());
}

#[test]
#[ignore = "scaled-up suite (nightly CI): longer chain and bond dimension over 4 worker processes"]
fn multi_process_dmrg_scaled_up_bitwise() {
    let lat = Lattice::chain(10);
    let mpo = heisenberg_j1j2(&lat, 1.0, 0.2).build().expect("mpo");
    let schedule = test_schedule(&[16, 32], 2);
    let run = |exec: &Executor| {
        let mut psi = Mps::product_state(&SpinHalf, &neel_state(10)).expect("state");
        Dmrg::new(exec, Algorithm::SparseSparse, &mpo)
            .run(&mut psi, &schedule)
            .expect("dmrg")
            .energy
    };
    let seq = Executor::with_machine(Machine::stampede2(4), 2, ExecMode::Sequential);
    let mp = multi_process_executor(4);
    assert_eq!(run(&seq).to_bits(), run(&mp).to_bits());
}

#[test]
fn cost_model_accumulates_during_dmrg() {
    let exec = Executor::with_machine(Machine::stampede2(4), 1, ExecMode::Sequential);
    let _ = run_energy(&exec, Algorithm::SparseSparse);
    let sim = exec.sim_time();
    assert!(sim.total() > 0.0);
    assert!(sim.comm > 0.0, "distributed run must move data");
    assert!(sim.sparse > 0.0, "sparse-sparse must run sparse kernels");
    assert!(exec.supersteps() > 0);
    assert!(exec.total_flops() > 0);
}

#[test]
fn serial_baseline_has_no_comm() {
    let exec = Executor::local();
    let _ = run_energy(&exec, Algorithm::List);
    let sim = exec.sim_time();
    // the local machine has zero alpha/beta, so communication time is zero
    assert_eq!(sim.comm, 0.0);
    assert!(sim.gemm + sim.sparse > 0.0);
}

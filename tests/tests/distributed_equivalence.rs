//! The central systems claim: the simulated distributed runtime computes
//! *exactly* what the serial code computes — same energies, same states —
//! for every algorithm, rank count and execution mode.

use dmrg::Dmrg;
use tt_blocks::Algorithm;
use tt_dist::{ExecMode, Executor, Machine};
use tt_integration::test_schedule;
use tt_mps::{heisenberg_j1j2, neel_state, Lattice, Mps, SpinHalf};

fn run_energy(exec: &Executor, algo: Algorithm) -> f64 {
    let lat = Lattice::chain(6);
    let mpo = heisenberg_j1j2(&lat, 1.0, 0.0).build().expect("mpo");
    let mut psi = Mps::product_state(&SpinHalf, &neel_state(6)).expect("state");
    let driver = Dmrg::new(exec, algo, &mpo);
    driver
        .run(&mut psi, &test_schedule(&[8, 16], 2))
        .expect("dmrg")
        .energy
}

#[test]
fn distributed_runs_match_serial_energy() {
    let reference = run_energy(&Executor::local(), Algorithm::List);
    for algo in [
        Algorithm::List,
        Algorithm::SparseDense,
        Algorithm::SparseSparse,
    ] {
        for nodes in [1usize, 2] {
            let exec = Executor::with_machine(
                Machine::blue_waters(2),
                nodes,
                ExecMode::Sequential,
            );
            let e = run_energy(&exec, algo);
            assert!(
                (e - reference).abs() < 1e-8,
                "{algo} on {nodes} nodes: {e} vs serial {reference}"
            );
        }
    }
}

#[test]
fn threaded_mode_is_bitwise_identical() {
    // Stronger than a tolerance: the threaded executor partitions kernels
    // by disjoint output rows, so every accumulation order is unchanged
    // and whole DMRG runs agree bit for bit.
    let seq = Executor::with_machine(Machine::blue_waters(2), 1, ExecMode::Sequential);
    let thr = Executor::with_machine(Machine::blue_waters(2), 1, ExecMode::Threaded);
    for algo in [
        Algorithm::List,
        Algorithm::SparseDense,
        Algorithm::SparseSparse,
    ] {
        let e_seq = run_energy(&seq, algo);
        let e_thr = run_energy(&thr, algo);
        assert_eq!(
            e_seq.to_bits(),
            e_thr.to_bits(),
            "{algo:?}: threaded energy must be bitwise equal to sequential"
        );
    }
    // and the cost model reports nonzero machine-dependent counters
    assert!(thr.sim_time().total() > 0.0);
    assert!(thr.supersteps() > 0);
    assert!(thr.total_flops() > 0);
}

#[test]
fn cost_model_accumulates_during_dmrg() {
    let exec = Executor::with_machine(Machine::stampede2(4), 1, ExecMode::Sequential);
    let _ = run_energy(&exec, Algorithm::SparseSparse);
    let sim = exec.sim_time();
    assert!(sim.total() > 0.0);
    assert!(sim.comm > 0.0, "distributed run must move data");
    assert!(sim.sparse > 0.0, "sparse-sparse must run sparse kernels");
    assert!(exec.supersteps() > 0);
    assert!(exec.total_flops() > 0);
}

#[test]
fn serial_baseline_has_no_comm() {
    let exec = Executor::local();
    let _ = run_energy(&exec, Algorithm::List);
    let sim = exec.sim_time();
    // the local machine has zero alpha/beta, so communication time is zero
    assert_eq!(sim.comm, 0.0);
    assert!(sim.gemm + sim.sparse > 0.0);
}

//! The central systems claim: the simulated distributed runtime computes
//! *exactly* what the serial code computes — same energies, same states —
//! for every algorithm, rank count and execution mode.

use dmrg::Dmrg;
use tt_blocks::contract::contract_list;
use tt_blocks::{block_qr, block_svd, Algorithm, Arrow, BlockSparseTensor, QnIndex, QN};
use tt_dist::{ExecMode, Executor, Machine, SpawnSpec};
use tt_integration::test_schedule;
use tt_linalg::TruncSpec;
use tt_mps::{heisenberg_j1j2, neel_state, Lattice, Mps, SpinHalf};

/// Self-exec worker hook: when the multi-process backend re-executes this
/// test binary with the `spawned_worker_entry` filter, this "test" becomes
/// the worker serve loop (and exits the process when done). In a normal
/// test run the worker environment is absent and this is a no-op pass.
#[test]
fn spawned_worker_entry() {
    tt_dist::maybe_serve();
}

/// Executor over `workers` real shared-nothing OS worker processes.
fn multi_process_executor(workers: usize) -> Executor {
    Executor::multi_process(
        Machine::blue_waters(2),
        1,
        workers,
        SpawnSpec::SelfExec(vec!["spawned_worker_entry".into()]),
    )
    .expect("spawn multi-process workers")
}

fn run_energy(exec: &Executor, algo: Algorithm) -> f64 {
    let lat = Lattice::chain(6);
    let mpo = heisenberg_j1j2(&lat, 1.0, 0.0).build().expect("mpo");
    let mut psi = Mps::product_state(&SpinHalf, &neel_state(6)).expect("state");
    let driver = Dmrg::new(exec, algo, &mpo);
    driver
        .run(&mut psi, &test_schedule(&[8, 16], 2))
        .expect("dmrg")
        .energy
}

#[test]
fn distributed_runs_match_serial_energy() {
    let reference = run_energy(&Executor::local(), Algorithm::List);
    for algo in [
        Algorithm::List,
        Algorithm::SparseDense,
        Algorithm::SparseSparse,
    ] {
        for nodes in [1usize, 2] {
            let exec = Executor::with_machine(Machine::blue_waters(2), nodes, ExecMode::Sequential);
            let e = run_energy(&exec, algo);
            assert!(
                (e - reference).abs() < 1e-8,
                "{algo} on {nodes} nodes: {e} vs serial {reference}"
            );
        }
    }
}

#[test]
fn threaded_mode_is_bitwise_identical() {
    // Stronger than a tolerance: the threaded executor partitions kernels
    // by disjoint output rows, so every accumulation order is unchanged
    // and whole DMRG runs agree bit for bit.
    let seq = Executor::with_machine(Machine::blue_waters(2), 1, ExecMode::Sequential);
    let thr = Executor::with_machine(Machine::blue_waters(2), 1, ExecMode::Threaded);
    for algo in [
        Algorithm::List,
        Algorithm::SparseDense,
        Algorithm::SparseSparse,
    ] {
        let e_seq = run_energy(&seq, algo);
        let e_thr = run_energy(&thr, algo);
        assert_eq!(
            e_seq.to_bits(),
            e_thr.to_bits(),
            "{algo:?}: threaded energy must be bitwise equal to sequential"
        );
    }
    // and the cost model reports nonzero machine-dependent counters
    assert!(thr.sim_time().total() > 0.0);
    assert!(thr.supersteps() > 0);
    assert!(thr.total_flops() > 0);
}

/// A two-site-like block tensor with enough sector groups to exercise the
/// pool fan-out in `block_svd`/`block_qr`/`contract_list`.
fn block_fixture() -> (BlockSparseTensor, BlockSparseTensor) {
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    let bond = |arrow, dims: &[(i32, usize)]| {
        QnIndex::new(arrow, dims.iter().map(|&(q, d)| (QN::one(q), d)).collect())
    };
    let mut rng = StdRng::seed_from_u64(2024);
    let s = bond(Arrow::In, &[(1, 1), (-1, 1)]);
    let mid = bond(Arrow::Out, &[(-2, 3), (0, 4), (2, 3)]);
    let x = BlockSparseTensor::random(
        vec![bond(Arrow::In, &[(-1, 2), (1, 2)]), s.clone(), mid.clone()],
        QN::zero(1),
        &mut rng,
    );
    let y = BlockSparseTensor::random(
        vec![
            mid.dual(),
            s,
            bond(Arrow::Out, &[(-3, 1), (-1, 3), (1, 3), (3, 1)]),
        ],
        QN::zero(1),
        &mut rng,
    );
    (x, y)
}

#[test]
fn pool_parallel_block_linalg_is_bitwise_identical() {
    // block_svd and block_qr fan their independent sector groups out over
    // the thread pool in Threaded mode; U, S, Vᵀ / Q, R must still match
    // the sequential executor bit for bit (groups collected in order).
    let (x, _) = block_fixture();
    let seq = Executor::with_machine(Machine::blue_waters(2), 1, ExecMode::Sequential);
    let thr = Executor::with_machine(Machine::blue_waters(2), 1, ExecMode::Threaded);
    let spec = TruncSpec {
        max_rank: 6,
        cutoff: 0.0,
        min_keep: 1,
    };
    let s1 = block_svd(&seq, &x, &[0, 1], &[2], spec).unwrap();
    let s2 = block_svd(&thr, &x, &[0, 1], &[2], spec).unwrap();
    assert_eq!(s1.s, s2.s, "singular values must be bitwise equal");
    assert_eq!(s1.trunc_err.to_bits(), s2.trunc_err.to_bits());
    assert_eq!(s1.u.to_dense().data(), s2.u.to_dense().data());
    assert_eq!(s1.vt.to_dense().data(), s2.vt.to_dense().data());

    let (q1, r1) = block_qr(&seq, &x, &[0, 1], &[2]).unwrap();
    let (q2, r2) = block_qr(&thr, &x, &[0, 1], &[2]).unwrap();
    assert_eq!(q1.to_dense().data(), q2.to_dense().data());
    assert_eq!(r1.to_dense().data(), r2.to_dense().data());
}

#[test]
fn pool_parallel_contract_list_is_bitwise_identical() {
    // the per-block-pair GEMMs run as parallel pool jobs in Threaded mode
    // with ordered accumulation into output blocks
    let (x, y) = block_fixture();
    let seq = Executor::with_machine(Machine::blue_waters(2), 1, ExecMode::Sequential);
    let thr = Executor::with_machine(Machine::blue_waters(2), 1, ExecMode::Threaded);
    let c1 = contract_list(&seq, "isj,jtk->istk", &x, &y).unwrap();
    let c2 = contract_list(&thr, "isj,jtk->istk", &x, &y).unwrap();
    assert_eq!(c1.to_dense().data(), c2.to_dense().data());
    // and the cost accounting is mode-independent too
    assert_eq!(seq.total_flops(), thr.total_flops());
    assert_eq!(
        seq.sim_time().total().to_bits(),
        thr.sim_time().total().to_bits()
    );
}

#[test]
fn volume_balanced_sparse_kernels_bitwise_on_rectangular_blocks() {
    // the sparse-dense / sparse-sparse algorithms flatten block tensors
    // into skewed rectangular sparse operands — exactly the shape the
    // volume-balanced row split exists for
    let (x, y) = block_fixture();
    let seq = Executor::with_machine(Machine::blue_waters(2), 1, ExecMode::Sequential);
    let thr = Executor::with_machine(Machine::blue_waters(2), 1, ExecMode::Threaded);
    for algo in [Algorithm::SparseDense, Algorithm::SparseSparse] {
        let c1 = tt_blocks::contract(&seq, algo, "isj,jtk->istk", &x, &y).unwrap();
        let c2 = tt_blocks::contract(&thr, algo, "isj,jtk->istk", &x, &y).unwrap();
        assert_eq!(
            c1.to_dense().data(),
            c2.to_dense().data(),
            "{algo}: threaded must be bitwise identical"
        );
    }
}

#[test]
fn multi_process_dmrg_pipeline_is_bitwise_identical() {
    // The central claim of the shared-nothing backend: a whole DMRG run —
    // every contraction, SVD, QR and batch routed over the socket
    // transport to 2 real OS worker processes — lands on bitwise-identical
    // numbers to the in-process Sequential executor.
    let seq = Executor::with_machine(Machine::blue_waters(2), 1, ExecMode::Sequential);
    let mp = multi_process_executor(2);
    for algo in [
        Algorithm::List,
        Algorithm::SparseDense,
        Algorithm::SparseSparse,
    ] {
        let e_seq = run_energy(&seq, algo);
        let e_mp = run_energy(&mp, algo);
        assert_eq!(
            e_seq.to_bits(),
            e_mp.to_bits(),
            "{algo:?}: multi-process energy must be bitwise equal"
        );
    }
    // and the cost model charged the same simulated work on both backends
    assert_eq!(seq.total_flops(), mp.total_flops());
    assert_eq!(
        seq.sim_time().total().to_bits(),
        mp.sim_time().total().to_bits()
    );
}

#[test]
fn multi_process_block_pipeline_tensors_are_bitwise_identical() {
    // Tensor-level (not just scalar-energy) equivalence for the block
    // contraction + factorization pipeline the DMRG sweep is built from.
    let (x, y) = block_fixture();
    let seq = Executor::with_machine(Machine::blue_waters(2), 1, ExecMode::Sequential);
    let mp = multi_process_executor(3);

    let c1 = contract_list(&seq, "isj,jtk->istk", &x, &y).unwrap();
    let c2 = contract_list(&mp, "isj,jtk->istk", &x, &y).unwrap();
    assert_eq!(c1.to_dense().data(), c2.to_dense().data());
    for algo in [Algorithm::SparseDense, Algorithm::SparseSparse] {
        let c1 = tt_blocks::contract(&seq, algo, "isj,jtk->istk", &x, &y).unwrap();
        let c2 = tt_blocks::contract(&mp, algo, "isj,jtk->istk", &x, &y).unwrap();
        assert_eq!(c1.to_dense().data(), c2.to_dense().data(), "{algo}");
    }

    let spec = TruncSpec {
        max_rank: 6,
        cutoff: 0.0,
        min_keep: 1,
    };
    let s1 = block_svd(&seq, &x, &[0, 1], &[2], spec).unwrap();
    let s2 = block_svd(&mp, &x, &[0, 1], &[2], spec).unwrap();
    assert_eq!(s1.s, s2.s);
    assert_eq!(s1.u.to_dense().data(), s2.u.to_dense().data());
    assert_eq!(s1.vt.to_dense().data(), s2.vt.to_dense().data());

    let (q1, r1) = block_qr(&seq, &x, &[0, 1], &[2]).unwrap();
    let (q2, r2) = block_qr(&mp, &x, &[0, 1], &[2]).unwrap();
    assert_eq!(q1.to_dense().data(), q2.to_dense().data());
    assert_eq!(r1.to_dense().data(), r2.to_dense().data());
}

#[test]
#[ignore = "scaled-up suite (nightly CI): longer chain and bond dimension over 4 worker processes"]
fn multi_process_dmrg_scaled_up_bitwise() {
    let lat = Lattice::chain(10);
    let mpo = heisenberg_j1j2(&lat, 1.0, 0.2).build().expect("mpo");
    let schedule = test_schedule(&[16, 32], 2);
    let run = |exec: &Executor| {
        let mut psi = Mps::product_state(&SpinHalf, &neel_state(10)).expect("state");
        Dmrg::new(exec, Algorithm::SparseSparse, &mpo)
            .run(&mut psi, &schedule)
            .expect("dmrg")
            .energy
    };
    let seq = Executor::with_machine(Machine::stampede2(4), 2, ExecMode::Sequential);
    let mp = multi_process_executor(4);
    assert_eq!(run(&seq).to_bits(), run(&mp).to_bits());
}

#[test]
fn cost_model_accumulates_during_dmrg() {
    let exec = Executor::with_machine(Machine::stampede2(4), 1, ExecMode::Sequential);
    let _ = run_energy(&exec, Algorithm::SparseSparse);
    let sim = exec.sim_time();
    assert!(sim.total() > 0.0);
    assert!(sim.comm > 0.0, "distributed run must move data");
    assert!(sim.sparse > 0.0, "sparse-sparse must run sparse kernels");
    assert!(exec.supersteps() > 0);
    assert!(exec.total_flops() > 0);
}

#[test]
fn serial_baseline_has_no_comm() {
    let exec = Executor::local();
    let _ = run_energy(&exec, Algorithm::List);
    let sim = exec.sim_time();
    // the local machine has zero alpha/beta, so communication time is zero
    assert_eq!(sim.comm, 0.0);
    assert!(sim.gemm + sim.sparse > 0.0);
}

// --- resident-operand (handle) equivalence -------------------------------

/// Dense/sparse fixtures for the executor-level handle cases.
fn dense_fixture() -> (
    tt_tensor::DenseTensor<f64>,
    tt_tensor::DenseTensor<f64>,
    tt_tensor::SparseTensor<f64>,
    tt_tensor::SparseTensor<f64>,
) {
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    let mut rng = StdRng::seed_from_u64(77);
    let a = tt_tensor::DenseTensor::<f64>::random([18, 5, 22], &mut rng);
    let b = tt_tensor::DenseTensor::<f64>::random([22, 5, 14], &mut rng);
    let sa = tt_tensor::SparseTensor::from_dense(&a, 0.5);
    let sb = tt_tensor::SparseTensor::from_dense(&b, 0.5);
    (a, b, sa, sb)
}

/// Run the dense/sd/ss contraction triple through the handle path on
/// `exec`, returning the three results. Every operand is a handle, so
/// the second call per executor exercises the cache-hit path too.
fn run_handles(
    exec: &Executor,
) -> (
    tt_tensor::DenseTensor<f64>,
    tt_tensor::DenseTensor<f64>,
    tt_tensor::SparseTensor<f64>,
) {
    let (a, b, sa, sb) = dense_fixture();
    let (ha, hb) = (exec.upload(&a), exec.upload(&b));
    let (hsa, hsb) = (exec.upload_sparse(&sa), exec.upload_sparse(&sb));
    // twice each: miss then hit — results must be bitwise identical
    let c1 = exec
        .contract_h("isj,jtk->istk", (&ha).into(), (&hb).into())
        .unwrap();
    let c2 = exec
        .contract_h("isj,jtk->istk", (&ha).into(), (&hb).into())
        .unwrap();
    assert_eq!(c1.data(), c2.data(), "hit repeats the miss bitwise");
    let d1 = exec
        .contract_sd_h("isj,jtk->istk", (&hsa).into(), (&hb).into())
        .unwrap();
    let d2 = exec
        .contract_sd_h("isj,jtk->istk", (&hsa).into(), (&hb).into())
        .unwrap();
    assert_eq!(d1.data(), d2.data());
    let s1 = exec
        .contract_ss_h("isj,jtk->istk", (&hsa).into(), (&hsb).into(), None)
        .unwrap();
    let s2 = exec
        .contract_ss_h("isj,jtk->istk", (&hsa).into(), (&hsb).into(), None)
        .unwrap();
    assert_eq!(s1.to_dense().data(), s2.to_dense().data());
    for h in [&ha, &hb, &hsa, &hsb] {
        exec.free(h).unwrap();
    }
    (c1, d1, s1)
}

#[test]
fn handle_contractions_bitwise_match_value_paths_across_backends() {
    let (a, b, sa, sb) = dense_fixture();
    let val = Executor::with_machine(Machine::blue_waters(2), 1, ExecMode::Sequential);
    let c_ref = val.contract("isj,jtk->istk", &a, &b).unwrap();
    let d_ref = val.contract_sd("isj,jtk->istk", &sa, &b).unwrap();
    let s_ref = val.contract_ss("isj,jtk->istk", &sa, &sb, None).unwrap();

    // in-process handle paths (both modes) and multi-process over p = 2
    // and p = 3 real worker processes must all land on the same bits
    let mut execs: Vec<(String, Executor)> = vec![
        (
            "inproc-seq".into(),
            Executor::with_machine(Machine::blue_waters(2), 1, ExecMode::Sequential),
        ),
        (
            "inproc-thr".into(),
            Executor::with_machine(Machine::blue_waters(2), 1, ExecMode::Threaded),
        ),
    ];
    #[cfg(unix)]
    for p in [2usize, 3] {
        execs.push((format!("multi-process p={p}"), multi_process_executor(p)));
    }
    let mut sims = Vec::new();
    for (name, exec) in &execs {
        let (c, d, s) = run_handles(exec);
        assert_eq!(c.data(), c_ref.data(), "{name}: dense");
        assert_eq!(d.data(), d_ref.data(), "{name}: sparse-dense");
        assert_eq!(s.to_dense().data(), s_ref.to_dense().data(), "{name}: ss");
        sims.push((name.clone(), exec.total_flops(), exec.sim_time()));
    }
    // the fused-superstep charges are backend-independent, bit for bit
    for (name, flops, sim) in &sims[1..] {
        assert_eq!(*flops, sims[0].1, "{name}: flops");
        assert_eq!(
            sim.total().to_bits(),
            sims[0].2.total().to_bits(),
            "{name}: handle-path cost charges must be backend-bitwise-equal"
        );
    }
}

#[test]
fn handle_c64_contractions_bitwise_across_backends() {
    let (ar, br, _, _) = dense_fixture();
    let a = ar.to_complex();
    let b = br.to_complex();
    let reference = tt_tensor::einsum("isj,jtk->istk", &a, &b).unwrap();
    let mut execs: Vec<Executor> = vec![
        Executor::with_machine(Machine::blue_waters(2), 1, ExecMode::Sequential),
        Executor::with_machine(Machine::blue_waters(2), 1, ExecMode::Threaded),
    ];
    #[cfg(unix)]
    for p in [2usize, 3] {
        execs.push(multi_process_executor(p));
    }
    for exec in &execs {
        let cv = exec
            .contract_c64("isj,jtk->istk", (&a).into(), (&b).into())
            .unwrap();
        assert_eq!(cv.data(), reference.data(), "value path");
        let (ha, hb) = (exec.upload_c64(&a), exec.upload_c64(&b));
        let c1 = exec
            .contract_c64("isj,jtk->istk", (&ha).into(), (&hb).into())
            .unwrap();
        let c2 = exec
            .contract_c64("isj,jtk->istk", (&ha).into(), (&hb).into())
            .unwrap();
        assert_eq!(c1.data(), reference.data(), "handle miss");
        assert_eq!(c2.data(), reference.data(), "handle hit");
        exec.free(&ha).unwrap();
        exec.free(&hb).unwrap();
    }
}

#[test]
fn resident_ham_matches_effective_ham_bitwise() {
    use dmrg::EffectiveHam;
    use dmrg::Environments;
    use tt_mps::Mps;
    let n = 6;
    let lat = Lattice::chain(n);
    let mpo = heisenberg_j1j2(&lat, 1.0, 0.0).build().unwrap();
    let mut psi = Mps::product_state(&SpinHalf, &neel_state(n)).unwrap();
    let local = Executor::local();
    Dmrg::new(&local, Algorithm::List, &mpo)
        .run(&mut psi, &test_schedule(&[8], 1))
        .unwrap();
    psi.canonicalize(&local, 0).unwrap();
    for algo in [
        Algorithm::List,
        Algorithm::SparseDense,
        Algorithm::SparseSparse,
    ] {
        let exec = Executor::with_machine(Machine::blue_waters(2), 1, ExecMode::Sequential);
        let envs = Environments::initialize(&exec, algo, &psi, &mpo).unwrap();
        // build the left environment at a middle bond (initialize only
        // seeds the edges)
        let j = 2;
        let mut lenv = envs.left[0].clone().unwrap();
        for site in 0..j {
            lenv =
                dmrg::extend_left(&exec, algo, &lenv, psi.tensor(site), mpo.tensor(site)).unwrap();
        }
        let x = tt_blocks::contract::contract_list(
            &exec,
            "lsj,jtk->lstk",
            psi.tensor(j),
            psi.tensor(j + 1),
        )
        .unwrap();
        let heff = EffectiveHam {
            exec: &exec,
            algo,
            left: &lenv,
            w1: mpo.tensor(j),
            w2: mpo.tensor(j + 1),
            right: envs.right[j + 1].as_ref().unwrap(),
        };
        let reference = heff.apply(&x).unwrap();
        let rham = heff.upload().unwrap();
        let first = rham.apply(&x).unwrap();
        let second = rham.apply(&x).unwrap();
        assert_eq!(
            reference.to_dense().data(),
            first.to_dense().data(),
            "{algo}: resident apply (miss) must match the value path bitwise"
        );
        assert_eq!(
            reference.to_dense().data(),
            second.to_dense().data(),
            "{algo}: resident apply (hit) must match too"
        );
    }
}

#[test]
fn handle_returning_contractions_bitwise_across_backends() {
    // contract_to_h / contract_sd_to_h / contract_c64_to_h + chains with
    // worker-side intermediates: value ≡ chained-handle bitwise over
    // InProcess seq/thr and MultiProcess p=2,3, with bitwise-equal cost
    // counters across all of them
    use tt_dist::{ChainSrc, ChainStep};
    let (a, b, sa, _) = dense_fixture();
    let val = Executor::with_machine(Machine::blue_waters(2), 1, ExecMode::Sequential);
    let c_ref = val.contract("isj,jtk->istk", &a, &b).unwrap();
    let d_ref = val.contract_sd("isj,jtk->istk", &sa, &b).unwrap();
    let y_ref = val.contract("istk,istk->", &c_ref, &c_ref).unwrap();
    let (ac, bc) = (a.to_complex(), b.to_complex());
    let e_ref = tt_tensor::einsum("isj,jtk->istk", &ac, &bc).unwrap();

    let mut execs: Vec<(String, Executor)> = vec![
        (
            "inproc-seq".into(),
            Executor::with_machine(Machine::blue_waters(2), 1, ExecMode::Sequential),
        ),
        (
            "inproc-thr".into(),
            Executor::with_machine(Machine::blue_waters(2), 1, ExecMode::Threaded),
        ),
    ];
    #[cfg(unix)]
    for p in [2usize, 3] {
        execs.push((format!("multi-process p={p}"), multi_process_executor(p)));
    }
    let mut sims = Vec::new();
    for (name, exec) in &execs {
        let h = exec
            .contract_to_h("isj,jtk->istk", (&a).into(), (&b).into())
            .unwrap();
        // a full chain: the resident result feeds the next step worker-side
        let mut out = exec
            .chain(&[
                ChainStep {
                    spec: "isj,jtk->istk",
                    a: ChainSrc::Dense((&a).into()),
                    b: ChainSrc::Dense((&b).into()),
                    acc: None,
                },
                ChainStep {
                    spec: "istk,istk->",
                    a: ChainSrc::Prev(0),
                    b: ChainSrc::Res(&h),
                    acc: None,
                },
            ])
            .unwrap();
        let h_y = out.pop().unwrap().unwrap();
        let h_t = out.pop().unwrap().unwrap();
        assert_eq!(
            exec.download(h_y).unwrap().data(),
            y_ref.data(),
            "{name}: chained scalar"
        );
        assert_eq!(
            exec.download(h_t).unwrap().data(),
            c_ref.data(),
            "{name}: chained dense"
        );
        assert_eq!(
            exec.download(h).unwrap().data(),
            c_ref.data(),
            "{name}: handle-returning dense"
        );
        let hd = exec
            .contract_sd_to_h("isj,jtk->istk", (&sa).into(), (&b).into())
            .unwrap();
        assert_eq!(
            exec.download(hd).unwrap().data(),
            d_ref.data(),
            "{name}: handle-returning sd"
        );
        let hc = exec
            .contract_c64_to_h("isj,jtk->istk", (&ac).into(), (&bc).into())
            .unwrap();
        assert_eq!(
            exec.download_c64(hc).unwrap().data(),
            e_ref.data(),
            "{name}: handle-returning c64"
        );
        sims.push((name.clone(), exec.total_flops(), exec.sim_time()));
    }
    for (name, flops, sim) in &sims[1..] {
        assert_eq!(*flops, sims[0].1, "{name}: flops");
        assert_eq!(
            sim.total().to_bits(),
            sims[0].2.total().to_bits(),
            "{name}: chain cost charges must be backend-bitwise-equal"
        );
    }
}

#[test]
fn chained_matvecs_bitwise_across_backends() {
    // the tentpole end to end: ResidentHam::apply runs as one chained
    // superstep per matvec, and must reproduce the value-path
    // EffectiveHam::apply bit for bit over every backend, with
    // bitwise-equal cost counters across backends
    use dmrg::{EffectiveHam, Environments};
    use tt_mps::Mps;
    let n = 6;
    let lat = Lattice::chain(n);
    let mpo = heisenberg_j1j2(&lat, 1.0, 0.0).build().unwrap();
    let mut psi = Mps::product_state(&SpinHalf, &neel_state(n)).unwrap();
    let local = Executor::local();
    Dmrg::new(&local, Algorithm::List, &mpo)
        .run(&mut psi, &test_schedule(&[8], 1))
        .unwrap();
    psi.canonicalize(&local, 0).unwrap();
    for algo in [
        Algorithm::List,
        Algorithm::SparseDense,
        Algorithm::SparseSparse,
    ] {
        let mut execs: Vec<(String, Executor)> = vec![
            (
                "inproc-seq".into(),
                Executor::with_machine(Machine::blue_waters(2), 1, ExecMode::Sequential),
            ),
            (
                "inproc-thr".into(),
                Executor::with_machine(Machine::blue_waters(2), 1, ExecMode::Threaded),
            ),
        ];
        #[cfg(unix)]
        for p in [2usize, 3] {
            execs.push((format!("multi-process p={p}"), multi_process_executor(p)));
        }
        let mut reference: Option<Vec<f64>> = None;
        let mut sims = Vec::new();
        for (name, exec) in &execs {
            let envs = Environments::initialize(exec, algo, &psi, &mpo).unwrap();
            let j = 2;
            let mut lenv = envs.left[0].clone().unwrap();
            for site in 0..j {
                lenv = dmrg::extend_left(exec, algo, &lenv, psi.tensor(site), mpo.tensor(site))
                    .unwrap();
            }
            let x = tt_blocks::contract::contract_list(
                exec,
                "lsj,jtk->lstk",
                psi.tensor(j),
                psi.tensor(j + 1),
            )
            .unwrap();
            let heff = EffectiveHam {
                exec,
                algo,
                left: &lenv,
                w1: mpo.tensor(j),
                w2: mpo.tensor(j + 1),
                right: envs.right[j + 1].as_ref().unwrap(),
            };
            let value = heff.apply(&x).unwrap().to_dense();
            let rham = heff.upload().unwrap();
            // miss then hit: both chained matvecs must match the value path
            let first = rham.apply(&x).unwrap().to_dense();
            let second = rham.apply(&x).unwrap().to_dense();
            assert_eq!(value.data(), first.data(), "{name}/{algo}: chained miss");
            assert_eq!(value.data(), second.data(), "{name}/{algo}: chained hit");
            match &reference {
                None => reference = Some(value.data().to_vec()),
                Some(r) => assert_eq!(value.data(), &r[..], "{name}/{algo}: across backends"),
            }
            drop(rham);
            sims.push((name.clone(), exec.total_flops(), exec.sim_time()));
        }
        for (name, flops, sim) in &sims[1..] {
            assert_eq!(*flops, sims[0].1, "{name}/{algo}: flops");
            assert_eq!(
                sim.total().to_bits(),
                sims[0].2.total().to_bits(),
                "{name}/{algo}: chained-matvec cost charges must be backend-bitwise-equal"
            );
        }
    }
}

/// Driver data-plane traffic of one Davidson solve, per path.
#[cfg(unix)]
struct DavidsonBytes {
    /// Operand bytes shipped by the value-passing solve.
    value_operands: u64,
    /// Result bytes returned to the driver by the value-passing solve.
    value_results: u64,
    /// Operand bytes shipped by the resident, chained-matvec solve.
    resident_operands: u64,
    /// Result bytes returned by the resident, chained-matvec solve.
    resident_results: u64,
}

/// Shared harness for the Davidson byte comparison: run one Davidson
/// solve through the value-passing `EffectiveHam` and one through the
/// resident-operand `ResidentHam` (whose matvecs run as worker-side
/// chained supersteps) on the same multi-process executor, assert
/// bitwise-identical eigenvectors, and return the driver's operand- and
/// result-byte deltas for both paths.
#[cfg(unix)]
fn davidson_bytes(warm_m: usize, workers: usize, opts: dmrg::DavidsonOptions) -> DavidsonBytes {
    use dmrg::{davidson, EffectiveHam, Environments};
    let n = 10;
    let lat = Lattice::chain(n);
    let mpo = tt_mps::hubbard(&lat, 1.0, 4.0).build().unwrap();
    let local = Executor::local();
    let mut psi = Mps::product_state(
        &tt_mps::Electron,
        &tt_mps::electron_filling(n, n / 2, n / 2),
    )
    .unwrap();
    // noisy, cutoff-free sweeps inflate the bond dimension to the cap so
    // operand payloads dominate protocol headers
    let schedule = dmrg::Schedule {
        sweeps: (0..2)
            .map(|_| dmrg::SweepParams {
                max_m: warm_m,
                cutoff: 0.0,
                davidson: dmrg::DavidsonOptions::default(),
                noise: 1e-3,
            })
            .collect(),
    };
    Dmrg::new(&local, Algorithm::List, &mpo)
        .run(&mut psi, &schedule)
        .unwrap();
    psi.canonicalize(&local, 0).unwrap();

    let mp = multi_process_executor(workers);
    let algo = Algorithm::List;
    let envs = Environments::initialize(&mp, algo, &psi, &mpo).unwrap();
    // build the left environment up to a middle bond (initialize only
    // seeds the edges; sweeps grow the rest)
    let j = n / 2 - 1;
    let mut lenv = envs.left[0].clone().unwrap();
    for site in 0..j {
        lenv = dmrg::extend_left(&mp, algo, &lenv, psi.tensor(site), mpo.tensor(site)).unwrap();
    }
    let x0 = contract_list(&mp, "lsj,jtk->lstk", psi.tensor(j), psi.tensor(j + 1)).unwrap();
    let heff = EffectiveHam {
        exec: &mp,
        algo,
        left: &lenv,
        w1: mpo.tensor(j),
        w2: mpo.tensor(j + 1),
        right: envs.right[j + 1].as_ref().unwrap(),
    };

    let before = (mp.operand_bytes(), mp.result_bytes());
    let (_, x_val) = davidson(|v| heff.apply(v), &x0, opts).unwrap();
    let (value_operands, value_results) =
        (mp.operand_bytes() - before.0, mp.result_bytes() - before.1);

    let rham = heff.upload().unwrap();
    let before = (mp.operand_bytes(), mp.result_bytes());
    let (_, x_han) = davidson(|v| rham.apply(v), &x0, opts).unwrap();
    let (resident_operands, resident_results) =
        (mp.operand_bytes() - before.0, mp.result_bytes() - before.1);
    drop(rham);

    assert_eq!(
        x_val.to_dense().data(),
        x_han.to_dense().data(),
        "the two solves are bitwise-identical"
    );
    println!(
        "davidson bytes (m={warm_m}, p={workers}): operands value {value_operands} vs resident \
         {resident_operands} ({:.1}x fewer); results value {value_results} vs chained \
         {resident_results} ({:.1}x fewer)",
        value_operands as f64 / resident_operands as f64,
        value_results as f64 / resident_results as f64,
    );
    DavidsonBytes {
        value_operands,
        value_results,
        resident_operands,
        resident_results,
    }
}

#[cfg(unix)]
#[test]
fn davidson_solve_with_handles_ships_fewer_operand_bytes() {
    // fast regression guard at a small bond dimension, where per-task
    // protocol headers still eat into the win: the resident solve must
    // ship strictly less than half the value-passing bytes
    let b = davidson_bytes(48, 3, Default::default());
    assert!(
        b.value_operands >= 2 * b.resident_operands,
        "resident operands must at least halve driver operand bytes: \
         value {} vs handle {}",
        b.value_operands,
        b.resident_operands
    );
}

#[cfg(unix)]
#[test]
fn davidson_chained_matvecs_cut_result_bytes() {
    // fast guard for the *result* side of residency: with matvecs chained
    // worker-side, only the final y-blocks of each matvec download — the
    // t1..t3 intermediates stop round-tripping through the driver
    let b = davidson_bytes(48, 3, Default::default());
    assert!(
        b.value_results >= 2 * b.resident_results,
        "chained matvecs must at least halve driver result bytes: \
         value {} vs chained {}",
        b.value_results,
        b.resident_results
    );
}

#[cfg(unix)]
#[test]
#[ignore = "scaled suite (release-mode CI step + nightly): m=128 over 6 worker processes"]
fn davidson_solve_with_handles_ships_5x_fewer_operand_bytes() {
    // at a realistic bond dimension the payloads dominate and the cache
    // win reaches the paper-motivated regime: >=5x fewer operand bytes
    // per Davidson solve
    let opts = dmrg::DavidsonOptions {
        max_iter: 8,
        max_subspace: 3,
        ..Default::default()
    };
    let b = davidson_bytes(128, 6, opts);
    assert!(
        b.value_operands >= 5 * b.resident_operands,
        "resident operands must cut driver operand bytes >=5x per Davidson solve: \
         value {} vs handle {}",
        b.value_operands,
        b.resident_operands
    );
}

#[cfg(unix)]
#[test]
#[ignore = "scaled suite (release-mode CI step + nightly): m=128 over 6 worker processes"]
fn davidson_chained_matvecs_cut_result_bytes_3x() {
    // the PR's acceptance gate: at a realistic bond dimension the chained
    // matvecs cut the driver's per-solve *result* traffic >=3x on top of
    // the operand-side residency win
    let opts = dmrg::DavidsonOptions {
        max_iter: 8,
        max_subspace: 3,
        ..Default::default()
    };
    let b = davidson_bytes(128, 6, opts);
    assert!(
        b.value_results >= 3 * b.resident_results,
        "chained matvecs must cut driver result bytes >=3x per Davidson solve: \
         value {} vs chained {}",
        b.value_results,
        b.resident_results
    );
}

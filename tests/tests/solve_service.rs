//! The multi-tenant solve service end to end: concurrent DMRG jobs from
//! multiple clients share one p=3 multi-process worker fleet, and each
//! job's numerics and per-job meters must read exactly as if the job ran
//! alone — while the fleet dedups identical operands across tenants and
//! recovers killed workers without collateral damage.

use dmrg::run_reference;
use std::sync::Arc;
use std::time::Duration;
use tt_dist::service::{
    AlgoSpec, ChainJobSpec, ChainOperand, ChainStepSpec, DavidsonSpec, DmrgJobSpec, JobReport,
    ModelSpec, Service, ServiceClient, ServiceConfig,
};
use tt_dist::{
    ChainSrc, ChainStep, ExecMode, Executor, FaultPlan, Machine, ProcOptions, SpawnSpec,
};
use tt_tensor::DenseTensor;

/// Self-exec worker hook: when the daemon (or a bare multi-process
/// executor) re-executes this test binary with the `spawned_worker_entry`
/// filter, this "test" becomes the worker serve loop. In a normal test
/// run the worker environment is absent and this is a no-op pass.
#[test]
fn spawned_worker_entry() {
    tt_dist::maybe_serve();
}

fn spawn() -> SpawnSpec {
    SpawnSpec::SelfExec(vec!["spawned_worker_entry".into()])
}

/// Service over a p=3 fleet on the fault-tolerance suite's machine model.
fn config(name: &str) -> ServiceConfig {
    let socket = std::env::temp_dir().join(format!("tt-solve-{name}-{}.sock", std::process::id()));
    let mut cfg = ServiceConfig::new(socket, 3);
    cfg.machine = Machine::blue_waters(2);
    cfg.spawn = spawn();
    cfg.opts = ProcOptions {
        deadline: Some(Duration::from_secs(120)),
        ..Default::default()
    };
    cfg
}

fn start(name: &str, cfg: ServiceConfig) -> (Service, std::path::PathBuf) {
    let _ = name;
    let socket = cfg.socket.clone();
    let service =
        Service::start(cfg, Some(Arc::new(dmrg::DmrgSolveRunner))).expect("start solve service");
    (service, socket)
}

fn client(socket: &std::path::Path) -> ServiceClient {
    ServiceClient::connect(socket, Duration::from_secs(10)).expect("connect to daemon")
}

/// The shared test workload: a 6-site Heisenberg chain ramped 8 → 16.
fn heisenberg_spec() -> DmrgJobSpec {
    DmrgJobSpec {
        model: ModelSpec::HeisenbergChain { n: 6, j2: 0.0 },
        algo: AlgoSpec::List,
        ms: vec![8, 16],
        sweeps_per_m: 2,
        cutoff: 1e-12,
        noise: 1e-3,
        davidson: DavidsonSpec {
            max_iter: 12,
            max_subspace: 6,
            tol: 1e-11,
            seed: 1234,
        },
        timeout_ms: 0,
        resident_cap_bytes: 0,
    }
}

/// Reference meters from a serial in-process run of `spec` on a fresh
/// executor with the service fleet's machine model (same machine + ranks
/// as the per-job scope tracker, so the model charges are comparable).
struct Reference {
    energy: f64,
    energies: Vec<f64>,
    flops: u64,
    sim_bits: u64,
}

fn reference(spec: &DmrgJobSpec) -> Reference {
    let exec = Executor::with_machine(Machine::blue_waters(2), 1, ExecMode::Sequential);
    let out = run_reference(spec, &exec).expect("reference solve");
    Reference {
        energy: out.energy,
        energies: out.energies,
        flops: exec.total_flops(),
        sim_bits: exec.sim_time().total().to_bits(),
    }
}

fn assert_bitwise(report: &JobReport, reference: &Reference, who: &str) {
    assert_eq!(
        report.energy.to_bits(),
        reference.energy.to_bits(),
        "{who}: final energy must be bitwise-equal to the serial in-process run"
    );
    let job_bits: Vec<u64> = report.energies.iter().map(|e| e.to_bits()).collect();
    let ref_bits: Vec<u64> = reference.energies.iter().map(|e| e.to_bits()).collect();
    assert_eq!(job_bits, ref_bits, "{who}: per-sweep energy history");
    assert_eq!(
        report.meter.flops, reference.flops,
        "{who}: per-job flop meter must read as-if-run-alone"
    );
    assert_eq!(
        report.meter.sim_seconds.to_bits(),
        reference.sim_bits,
        "{who}: per-job simulated time must read as-if-run-alone"
    );
}

#[test]
fn concurrent_tenants_dedup_and_meter_as_if_alone() {
    let (service, socket) = start("dedup", config("dedup"));
    let spec = heisenberg_spec();
    let reference = reference(&spec);

    // Tenant A runs first, populating the fleet's retention cache.
    let mut c1 = client(&socket);
    let job_a = c1.submit_dmrg(&spec).expect("submit A");
    let report_a = c1.wait(job_a).expect("job A");
    assert_bitwise(&report_a, &reference, "job A");
    assert!(
        report_a.meter.bytes_operands > 0,
        "multi-process jobs ship operand bytes"
    );

    // Tenant B submits the identical Hamiltonian: every operand content
    // it uploads is already worker-resident, so its shipped operand
    // bytes collapse — while its meters still read as-if-run-alone.
    let job_b = c1.submit_dmrg(&spec).expect("submit B");
    let report_b = c1.wait(job_b).expect("job B");
    assert_bitwise(&report_b, &reference, "job B");
    assert!(
        report_b.meter.bytes_operands * 5 <= report_a.meter.bytes_operands,
        "cross-job dedup must collapse the second tenant's operand bytes ≥5×: \
         first {} B, second {} B",
        report_a.meter.bytes_operands,
        report_b.meter.bytes_operands
    );
    let hits: u64 = service
        .executor()
        .cache_stats()
        .expect("cache stats")
        .iter()
        .map(|s| s.hits)
        .sum();
    assert!(hits > 0, "worker stores must have served dedup hits");

    // Tenants C and D run concurrently from two client connections; the
    // interleaving must not perturb either job's numerics or meters.
    let mut c2 = client(&socket);
    let job_c = c1.submit_dmrg(&spec).expect("submit C");
    let job_d = c2.submit_dmrg(&spec).expect("submit D");
    let report_c = c1.wait(job_c).expect("job C");
    let report_d = c2.wait(job_d).expect("job D");
    assert_bitwise(&report_c, &reference, "job C");
    assert_bitwise(&report_d, &reference, "job D");
    // identical jobs, identical complete meters — supersteps and BSP byte
    // volumes included — regardless of who they shared the fleet with
    assert_eq!(report_c.meter.supersteps, report_a.meter.supersteps);
    assert_eq!(report_d.meter.supersteps, report_a.meter.supersteps);
    assert_eq!(report_c.meter.bytes_critical, report_a.meter.bytes_critical);
    assert_eq!(report_d.meter.bytes_critical, report_a.meter.bytes_critical);

    // status surfaces the fleet: one entry per worker rank
    let status = c1.status().expect("status");
    assert_eq!(status.fleet.len(), 3);
    service.stop();
}

#[test]
fn killed_worker_mid_job_recovers_without_collateral() {
    // A FaultPlan kills rank 1 partway through the fleet's request
    // stream while two tenants run concurrently. The runtime respawns
    // and journal-replays under whichever job hit the fault; both jobs
    // must finish bitwise-identical to the serial run.
    let mut cfg = config("fault");
    cfg.opts.plan = Some(FaultPlan::parse("kill:1@40").expect("fault plan"));
    let (service, socket) = start("fault", cfg);
    let spec = heisenberg_spec();
    let reference = reference(&spec);

    let mut c1 = client(&socket);
    let mut c2 = client(&socket);
    let job_a = c1.submit_dmrg(&spec).expect("submit A");
    let job_b = c2.submit_dmrg(&spec).expect("submit B");
    let report_a = c1.wait(job_a).expect("job A survives the kill");
    let report_b = c2.wait(job_b).expect("job B survives the kill");
    assert_bitwise(&report_a, &reference, "job A (faulted fleet)");
    assert_bitwise(&report_b, &reference, "job B (faulted fleet)");
    assert!(
        service.executor().recovery_bytes() > 0,
        "the injected kill must actually have fired and been recovered"
    );
    assert!(
        report_a.meter.bytes_recovery + report_b.meter.bytes_recovery > 0,
        "recovery bytes are metered to the job whose request hit the fault"
    );
    service.stop();
}

#[test]
fn admission_control_and_cancellation() {
    let mut cfg = config("admission");
    cfg.max_concurrent = 1;
    cfg.max_queued = 2;
    let (service, socket) = start("admission", cfg);

    // a job long enough to still be running through the whole test
    let long = DmrgJobSpec {
        ms: vec![8],
        sweeps_per_m: 500,
        ..heisenberg_spec()
    };
    let mut c = client(&socket);
    let job_a = c.submit_dmrg(&long).expect("submit A");
    // wait until the single runner thread has picked A up
    loop {
        let s = c.status().expect("status");
        if s.running.iter().any(|&(id, _)| id == job_a) {
            break;
        }
        std::thread::sleep(Duration::from_millis(10));
    }
    // fill the queue; the runner is busy with A so nothing drains
    let job_b = c.submit_dmrg(&long).expect("submit B");
    let job_c = c.submit_dmrg(&long).expect("submit C");
    let rejected = c.submit_dmrg(&long);
    assert!(
        rejected.is_err(),
        "queue is full — the fourth submission must be rejected"
    );
    assert!(
        rejected.unwrap_err().to_string().contains("queue full"),
        "rejection carries the reason"
    );

    // cancellation: queued jobs die before starting, the running job at
    // its next sweep boundary
    c.cancel(job_c).expect("cancel C");
    c.cancel(job_b).expect("cancel B");
    c.cancel(job_a).expect("cancel A");
    for job in [job_a, job_b, job_c] {
        let err = c.wait(job).expect_err("cancelled jobs do not report Done");
        assert!(
            err.to_string().contains("cancelled"),
            "job {job}: expected cancellation, got {err}"
        );
    }
    service.stop();
}

#[test]
fn chain_jobs_match_local_execution_bitwise() {
    // Contraction-chain jobs run natively in the daemon (no DMRG runner
    // involved); the downloaded result must be bitwise-identical to the
    // same chain on a local in-process executor.
    let a = DenseTensor::from_vec(vec![2, 3], (0..6).map(|i| i as f64 * 0.5 + 1.0).collect())
        .expect("a");
    let b = DenseTensor::from_vec(vec![3, 4], (0..12).map(|i| 2.0 - i as f64 * 0.25).collect())
        .expect("b");
    let c =
        DenseTensor::from_vec(vec![4, 2], (0..8).map(|i| (i as f64).sin()).collect()).expect("c");

    let local = Executor::local();
    let handles = local
        .chain(&[
            ChainStep {
                spec: "ij,jk->ik",
                a: ChainSrc::Dense((&a).into()),
                b: ChainSrc::Dense((&b).into()),
                acc: None,
            },
            ChainStep {
                spec: "ik,kl->il",
                a: ChainSrc::Prev(0),
                b: ChainSrc::Dense((&c).into()),
                acc: None,
            },
        ])
        .expect("local chain");
    let mut hs: Vec<_> = handles.into_iter().flatten().collect();
    let expected = local.download(hs.pop().expect("result")).expect("download");
    local.free_results(hs).expect("free");

    let (service, socket) = start("chain", config("chain"));
    let mut cl = client(&socket);
    let dense = |t: &DenseTensor<f64>| ChainOperand::Dense {
        dims: t.dims().iter().map(|&d| d as u64).collect(),
        vals: t.data().to_vec(),
    };
    let job = cl
        .submit_chain(&ChainJobSpec {
            steps: vec![
                ChainStepSpec {
                    spec: "ij,jk->ik".into(),
                    a: dense(&a),
                    b: dense(&b),
                    acc: None,
                },
                ChainStepSpec {
                    spec: "ik,kl->il".into(),
                    a: ChainOperand::Prev { step: 0 },
                    b: dense(&c),
                    acc: None,
                },
            ],
        })
        .expect("submit chain");
    let report = cl.wait(job).expect("chain job");
    assert_eq!(
        report.dense_dims,
        expected
            .dims()
            .iter()
            .map(|&d| d as u64)
            .collect::<Vec<_>>()
    );
    let got: Vec<u64> = report.dense_vals.iter().map(|v| v.to_bits()).collect();
    let want: Vec<u64> = expected.data().iter().map(|v| v.to_bits()).collect();
    assert_eq!(got, want, "chain result must be bitwise-identical");
    service.stop();
}

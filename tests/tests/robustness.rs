//! Failure injection and boundary cases across the stack: the library must
//! fail loudly (never silently) on misuse, and degenerate-but-legal inputs
//! must work.

use dmrg::{Dmrg, Environments};
use tt_blocks::Algorithm;
use tt_dist::Executor;
use tt_integration::test_schedule;
use tt_mps::{heisenberg_j1j2, neel_state, AutoMpo, Lattice, Mps, SpinHalf};

#[test]
fn two_site_system_smallest_legal_dmrg() {
    // N = 2 is the smallest two-site DMRG problem: one bond, exact answer
    // is the singlet at E = −3/4
    let lat = Lattice::chain(2);
    let mpo = heisenberg_j1j2(&lat, 1.0, 0.0).build().unwrap();
    let mut psi = Mps::product_state(&SpinHalf, &[0, 1]).unwrap();
    let exec = Executor::local();
    let driver = Dmrg::new(&exec, Algorithm::List, &mpo);
    let run = driver.run(&mut psi, &test_schedule(&[4], 2)).unwrap();
    assert!((run.energy + 0.75).abs() < 1e-10, "E = {}", run.energy);
}

#[test]
fn size_mismatch_rejected() {
    let mpo = heisenberg_j1j2(&Lattice::chain(4), 1.0, 0.0)
        .build()
        .unwrap();
    let mut psi = Mps::product_state(&SpinHalf, &neel_state(6)).unwrap();
    let exec = Executor::local();
    let driver = Dmrg::new(&exec, Algorithm::List, &mpo);
    assert!(driver.run(&mut psi, &test_schedule(&[4], 1)).is_err());
}

#[test]
fn single_site_system_rejected() {
    let mut b = AutoMpo::new(SpinHalf, 1);
    b.add(1.0, &[(0, "Sz")]);
    let mpo = b.build().unwrap();
    let mut psi = Mps::product_state(&SpinHalf, &[0]).unwrap();
    let exec = Executor::local();
    let driver = Dmrg::new(&exec, Algorithm::List, &mpo);
    assert!(driver.run(&mut psi, &test_schedule(&[4], 1)).is_err());
}

#[test]
fn extreme_truncation_still_runs() {
    // m capped at 1: DMRG degenerates to a product-state optimizer but must
    // stay numerically sane (normalized, conserving, monotone-ish)
    let lat = Lattice::chain(6);
    let mpo = heisenberg_j1j2(&lat, 1.0, 0.0).build().unwrap();
    let mut psi = Mps::product_state(&SpinHalf, &neel_state(6)).unwrap();
    let exec = Executor::local();
    let driver = Dmrg::new(&exec, Algorithm::List, &mpo);
    let run = driver.run(&mut psi, &test_schedule(&[1], 2)).unwrap();
    assert!(psi.max_bond_dim() <= 1);
    assert!((psi.norm() - 1.0).abs() < 1e-8);
    assert!(
        run.energy <= -1.0,
        "even m=1 beats the Néel energy: {}",
        run.energy
    );
    assert!(psi.total_qn().is_zero());
}

#[test]
fn environments_fail_cleanly_on_mismatch() {
    let mpo4 = heisenberg_j1j2(&Lattice::chain(4), 1.0, 0.0)
        .build()
        .unwrap();
    let psi6 = Mps::product_state(&SpinHalf, &neel_state(6)).unwrap();
    let exec = Executor::local();
    // initialization walks the shorter MPO — index-compat errors surface as
    // Err, not panics
    let r = Environments::initialize(&exec, Algorithm::List, &psi6, &mpo4);
    assert!(r.is_err());
}

#[test]
fn executor_cost_reset_between_phases() {
    let exec = Executor::local();
    let lat = Lattice::chain(4);
    let mpo = heisenberg_j1j2(&lat, 1.0, 0.0).build().unwrap();
    let mut psi = Mps::product_state(&SpinHalf, &neel_state(4)).unwrap();
    let driver = Dmrg::new(&exec, Algorithm::List, &mpo);
    driver.run(&mut psi, &test_schedule(&[4], 1)).unwrap();
    assert!(exec.total_flops() > 0);
    exec.reset_costs();
    assert_eq!(exec.total_flops(), 0);
    // a fresh run accumulates again
    driver.run(&mut psi, &test_schedule(&[4], 1)).unwrap();
    assert!(exec.total_flops() > 0);
}

#[test]
fn zero_coupling_hamiltonian() {
    // H = 0·ΣSzSz builds a valid (trivial) MPO; expectation is 0 and DMRG
    // returns immediately-converged energies of 0
    let n = 4;
    let mut b = AutoMpo::new(SpinHalf, n);
    for i in 0..n - 1 {
        b.add(0.0, &[(i, "Sz"), (i + 1, "Sz")]);
    }
    let mpo = b.build().unwrap();
    let psi = Mps::product_state(&SpinHalf, &neel_state(n)).unwrap();
    assert!(psi.expectation(&mpo).unwrap().abs() < 1e-14);
}

#[test]
fn mixed_sign_couplings() {
    // ferromagnetic J1 < 0: the all-up product state is exact in its sector
    let lat = Lattice::chain(4);
    let builder = heisenberg_j1j2(&lat, -1.0, 0.0);
    let mpo = builder.build().unwrap();
    let psi = Mps::product_state(&SpinHalf, &[0, 0, 0, 0]).unwrap();
    // E = J1 · (N−1)/4 = −3/4
    assert!((psi.expectation(&mpo).unwrap() + 0.75).abs() < 1e-12);
}

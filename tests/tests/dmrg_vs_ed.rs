//! End-to-end physics validation: DMRG ground-state energies against exact
//! diagonalization for both benchmark systems, across all three
//! block-sparsity algorithms.

use dmrg::{ground_state_energy, hubbard_ed, Dmrg};
use tt_blocks::{Algorithm, QN};
use tt_dist::Executor;
use tt_integration::test_schedule;
use tt_mps::{
    electron_filling, heisenberg_j1j2, hubbard, neel_state, BondKind, Electron, Lattice, Mps,
    SpinHalf,
};

fn spins_case(lat: &Lattice, j2: f64, ms: &[usize], algo: Algorithm) -> (f64, f64) {
    let n = lat.n_sites();
    let builder = heisenberg_j1j2(lat, 1.0, j2);
    let mpo = builder.build().expect("mpo");
    let mut psi = Mps::product_state(&SpinHalf, &neel_state(n)).expect("state");
    let exec = Executor::local();
    let driver = Dmrg::new(&exec, algo, &mpo);
    let run = driver.run(&mut psi, &test_schedule(ms, 2)).expect("dmrg");
    let terms = builder.expanded().expect("terms");
    let exact = ground_state_energy(&SpinHalf, n, &terms, QN::one(0)).expect("ed");
    (run.energy, exact)
}

#[test]
fn heisenberg_chain_all_algorithms() {
    let lat = Lattice::chain(8);
    for algo in [
        Algorithm::List,
        Algorithm::SparseDense,
        Algorithm::SparseSparse,
    ] {
        let (e, exact) = spins_case(&lat, 0.0, &[8, 16, 32], algo);
        assert!((e - exact).abs() < 1e-7, "{algo}: DMRG {e} vs ED {exact}");
    }
}

#[test]
fn j1j2_ladder_frustrated() {
    // 2-leg ladder with J2 = 0.5 — the paper's frustrated coupling
    let lat = Lattice::square_cylinder(4, 2);
    let (e, exact) = spins_case(&lat, 0.5, &[8, 16, 32], Algorithm::List);
    assert!((e - exact).abs() < 1e-6, "DMRG {e} vs ED {exact}");
}

#[test]
fn j1j2_cylinder_3x4() {
    let lat = Lattice::square_cylinder(3, 4);
    let (e, exact) = spins_case(&lat, 0.5, &[16, 32, 64], Algorithm::List);
    assert!((e - exact).abs() < 1e-6, "DMRG {e} vs ED {exact}");
}

#[test]
fn hubbard_chain_vs_both_ed_paths() {
    let lat = Lattice::chain(4);
    let builder = hubbard(&lat, 1.0, 8.5);
    let mpo = builder.build().expect("mpo");
    let mut psi = Mps::product_state(&Electron, &electron_filling(4, 2, 2)).expect("state");
    let exec = Executor::local();
    let driver = Dmrg::new(&exec, Algorithm::List, &mpo);
    let run = driver
        .run(&mut psi, &test_schedule(&[8, 16, 32], 2))
        .expect("dmrg");
    // term-based ED (same JW expansion)
    let terms = builder.expanded().expect("terms");
    let e_terms = ground_state_energy(&Electron, 4, &terms, QN::two(2, 2)).expect("ed");
    // independent bitstring ED
    let bonds: Vec<(usize, usize)> = lat.bonds_of(BondKind::Nearest).collect();
    let e_bits = hubbard_ed(4, &bonds, 1.0, 8.5, 2, 2).expect("ed");
    assert!((e_terms - e_bits).abs() < 1e-8, "ED paths disagree");
    assert!(
        (run.energy - e_bits).abs() < 1e-6,
        "DMRG {} vs ED {e_bits}",
        run.energy
    );
}

#[test]
fn hubbard_triangular_frustrated_with_noise() {
    // the case that *requires* the noise term: triangular 3x2 at U=8.5
    let lat = Lattice::triangular_cylinder_xc(3, 2);
    let builder = hubbard(&lat, 1.0, 8.5);
    let mpo = builder.build().expect("mpo");
    let mut psi = Mps::product_state(&Electron, &electron_filling(6, 3, 3)).expect("state");
    let exec = Executor::local();
    let driver = Dmrg::new(&exec, Algorithm::SparseSparse, &mpo);
    let run = driver
        .run(&mut psi, &test_schedule(&[8, 16, 32, 64], 2))
        .expect("dmrg");
    let bonds: Vec<(usize, usize)> = lat.bonds_of(BondKind::Nearest).collect();
    let exact = hubbard_ed(6, &bonds, 1.0, 8.5, 3, 3).expect("ed");
    assert!(
        (run.energy - exact).abs() < 1e-5,
        "DMRG {} vs ED {exact}",
        run.energy
    );
}

#[test]
fn quantum_numbers_conserved_through_dmrg() {
    let lat = Lattice::chain(6);
    let mpo = hubbard(&lat, 1.0, 4.0).build().expect("mpo");
    let mut psi = Mps::product_state(&Electron, &electron_filling(6, 2, 3)).expect("state");
    assert_eq!(psi.total_qn(), QN::two(2, 3));
    let exec = Executor::local();
    let driver = Dmrg::new(&exec, Algorithm::List, &mpo);
    driver
        .run(&mut psi, &test_schedule(&[8, 16], 2))
        .expect("dmrg");
    assert_eq!(psi.total_qn(), QN::two(2, 3), "sector must be preserved");
    assert!((psi.norm() - 1.0).abs() < 1e-8);
}

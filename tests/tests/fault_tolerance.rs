//! Fault tolerance of the multi-process backend: deterministic fault
//! injection ([`FaultPlan`]) kills workers, corrupts replies and vetoes
//! respawns mid-run; the runtime must detect, recover (respawn + journal
//! replay) or degrade (retire onto survivors), and still land on numbers
//! bitwise-identical to the fault-free in-process run.

use dmrg::Dmrg;
use std::time::Duration;
use tt_blocks::contract::contract_list;
use tt_blocks::{Algorithm, Arrow, BlockSparseTensor, QnIndex, QN};
use tt_dist::{ExecMode, Executor, FaultPlan, Machine, ProcOptions, SpawnSpec};
use tt_integration::test_schedule;
use tt_mps::{heisenberg_j1j2, neel_state, Lattice, Mps, SpinHalf};

/// Self-exec worker hook: when the multi-process backend re-executes this
/// test binary with the `spawned_worker_entry` filter, this "test" becomes
/// the worker serve loop (and exits the process when done). In a normal
/// test run the worker environment is absent and this is a no-op pass.
#[test]
fn spawned_worker_entry() {
    tt_dist::maybe_serve();
}

fn spec() -> SpawnSpec {
    SpawnSpec::SelfExec(vec!["spawned_worker_entry".into()])
}

/// Multi-process executor over `workers` ranks with a fault plan.
fn faulty_executor(workers: usize, plan: &str) -> Executor {
    let opts = ProcOptions {
        plan: Some(FaultPlan::parse(plan).expect("valid fault plan")),
        deadline: Some(Duration::from_secs(60)),
        ..Default::default()
    };
    Executor::multi_process_opts(Machine::blue_waters(2), 1, workers, spec(), opts)
        .expect("spawn multi-process workers")
}

fn run_energy(exec: &Executor, algo: Algorithm) -> f64 {
    let lat = Lattice::chain(6);
    let mpo = heisenberg_j1j2(&lat, 1.0, 0.0).build().expect("mpo");
    let mut psi = Mps::product_state(&SpinHalf, &neel_state(6)).expect("state");
    Dmrg::new(exec, algo, &mpo)
        .run(&mut psi, &test_schedule(&[8, 16], 2))
        .expect("dmrg")
        .energy
}

#[test]
fn killed_rank_mid_dmrg_recovers_bitwise() {
    // The acceptance gate: kill rank 1 partway into a p=3 multi-process
    // DMRG sweep; the runtime respawns the worker, replays its journal
    // and re-issues the interrupted superstep — and the final energy is
    // bitwise-identical to the uninterrupted in-process run.
    let seq = Executor::with_machine(Machine::blue_waters(2), 1, ExecMode::Sequential);
    let clean = Executor::multi_process(Machine::blue_waters(2), 1, 3, spec()).expect("spawn");
    let faulty = faulty_executor(3, "kill:1@40");

    let e_seq = run_energy(&seq, Algorithm::SparseSparse);
    let e_clean = run_energy(&clean, Algorithm::SparseSparse);
    let e_faulty = run_energy(&faulty, Algorithm::SparseSparse);

    assert_eq!(
        e_seq.to_bits(),
        e_faulty.to_bits(),
        "recovered run must be bitwise-identical to the serial run"
    );
    assert_eq!(e_seq.to_bits(), e_clean.to_bits());
    assert!(
        faulty.recovery_bytes() > 0,
        "the injected kill must actually have fired and been recovered"
    );
    assert_eq!(
        clean.recovery_bytes(),
        0,
        "fault-free run moves no recovery bytes"
    );
    // the determinism contract extends to the meters: driver-side charges
    // and the regular data-plane byte counters are unaffected by recovery
    assert_eq!(clean.total_flops(), faulty.total_flops());
    assert_eq!(clean.operand_bytes(), faulty.operand_bytes());
    assert_eq!(clean.result_bytes(), faulty.result_bytes());
}

#[test]
fn exhausted_respawns_degrade_and_stay_bitwise() {
    // Same kill, but respawn is vetoed: rank 1 retires onto a surviving
    // worker (logical placement unchanged) and the run completes — no
    // abort, same bits.
    let seq = Executor::with_machine(Machine::blue_waters(2), 1, ExecMode::Sequential);
    let degraded = faulty_executor(3, "kill:1@40,nospawn:1");
    let e_seq = run_energy(&seq, Algorithm::SparseDense);
    let e_deg = run_energy(&degraded, Algorithm::SparseDense);
    assert_eq!(
        e_seq.to_bits(),
        e_deg.to_bits(),
        "degraded run must still be bitwise-identical"
    );
    assert!(degraded.recovery_bytes() > 0);
}

/// A block-sparse pair with enough sectors to fan work out over 3 ranks.
fn block_fixture() -> (BlockSparseTensor, BlockSparseTensor) {
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    let bond = |arrow, dims: &[(i32, usize)]| {
        QnIndex::new(arrow, dims.iter().map(|&(q, d)| (QN::one(q), d)).collect())
    };
    let mut rng = StdRng::seed_from_u64(2024);
    let s = bond(Arrow::In, &[(1, 1), (-1, 1)]);
    let mid = bond(Arrow::Out, &[(-2, 3), (0, 4), (2, 3)]);
    let x = BlockSparseTensor::random(
        vec![bond(Arrow::In, &[(-1, 2), (1, 2)]), s.clone(), mid.clone()],
        QN::zero(1),
        &mut rng,
    );
    let y = BlockSparseTensor::random(
        vec![
            mid.dual(),
            s,
            bond(Arrow::Out, &[(-3, 1), (-1, 3), (1, 3), (3, 1)]),
        ],
        QN::zero(1),
        &mut rng,
    );
    (x, y)
}

#[test]
fn killed_rank_mid_contraction_tensors_are_bitwise() {
    // Tensor-level (not just scalar-energy) recovery equivalence: a kill
    // during the chained block contraction still yields bitwise-equal
    // dense data.
    let (x, y) = block_fixture();
    let seq = Executor::with_machine(Machine::blue_waters(2), 1, ExecMode::Sequential);
    let faulty = faulty_executor(3, "kill:0@5");
    let c_seq = contract_list(&seq, "isj,jtk->istk", &x, &y).unwrap();
    let c_mp = contract_list(&faulty, "isj,jtk->istk", &x, &y).unwrap();
    assert_eq!(c_seq.to_dense().data(), c_mp.to_dense().data());
    assert!(faulty.recovery_bytes() > 0, "the kill must have fired");
}

#[test]
fn corrupted_reply_mid_dmrg_recovers_bitwise() {
    // A corrupted reply frame is a Decode fault: the rank's state is
    // suspect, so it respawns and replays like a crash — same bits out.
    let seq = Executor::with_machine(Machine::blue_waters(2), 1, ExecMode::Sequential);
    let faulty = faulty_executor(3, "corrupt:0@25");
    let e_seq = run_energy(&seq, Algorithm::List);
    let e_mp = run_energy(&faulty, Algorithm::List);
    assert_eq!(e_seq.to_bits(), e_mp.to_bits());
    assert!(faulty.recovery_bytes() > 0);
}

#[test]
#[ignore = "scaled suite (nightly CI): seeded kill-at-random-point sweep over many fault plans"]
fn seeded_random_kills_always_recover_bitwise() {
    // Nightly: derive (rank, nth-send) kill points from fixed seeds via
    // xorshift and require bitwise recovery for every one. Plans whose
    // kill point lies beyond the run's send count simply never fire —
    // those runs must also stay bitwise (and move no recovery bytes).
    let seq = Executor::with_machine(Machine::blue_waters(2), 1, ExecMode::Sequential);
    let e_seq = run_energy(&seq, Algorithm::SparseSparse);
    for seed in [3u64, 17, 2024, 90210] {
        let mut state = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        let rank = (next() % 3) as usize;
        let nth = next() % 400 + 1;
        let plan = format!("kill:{rank}@{nth}");
        let faulty = faulty_executor(3, &plan);
        let e = run_energy(&faulty, Algorithm::SparseSparse);
        assert_eq!(
            e_seq.to_bits(),
            e.to_bits(),
            "seed {seed} (plan {plan}): recovered energy must be bitwise-identical"
        );
    }
}

//! Property-based integration tests on the block-sparse layer: the three
//! contraction algorithms agree on random symmetric tensors, and the block
//! SVD satisfies its invariants, under randomized sector structures.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use tt_blocks::{block_svd, contract, Algorithm, Arrow, BlockSparseTensor, QnIndex, QN};
use tt_dist::Executor;
use tt_linalg::TruncSpec;

/// Random graded index with 1-3 sectors of dim 1-3 and charges in ±2.
fn arb_sectors() -> impl Strategy<Value = Vec<(i32, usize)>> {
    prop::collection::vec((-2i32..=2, 1usize..=3), 1..=3).prop_map(|mut v| {
        v.sort();
        v.dedup_by_key(|e| e.0);
        v
    })
}

fn mk_index(arrow: Arrow, sectors: &[(i32, usize)]) -> QnIndex {
    QnIndex::new(
        arrow,
        sectors.iter().map(|&(q, d)| (QN::one(q), d)).collect(),
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// list ≡ sparse-dense ≡ sparse-sparse on random block tensors.
    #[test]
    fn algorithms_agree(
        s1 in arb_sectors(),
        s2 in arb_sectors(),
        s3 in arb_sectors(),
        s4 in arb_sectors(),
        seed in 0u64..10_000,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let shared = mk_index(Arrow::Out, &s2);
        let a = BlockSparseTensor::random(
            vec![mk_index(Arrow::In, &s1), shared.clone()],
            QN::zero(1),
            &mut rng,
        );
        let b = BlockSparseTensor::random(
            vec![shared.dual(), mk_index(Arrow::In, &s3), mk_index(Arrow::Out, &s4)],
            QN::zero(1),
            &mut rng,
        );
        // skip degenerate empty-tensor cases
        prop_assume!(a.n_blocks() > 0 && b.n_blocks() > 0);
        let exec = Executor::local();
        let spec = "ij,jkl->ikl";
        let c_list = contract(&exec, Algorithm::List, spec, &a, &b).unwrap();
        let c_sd = contract(&exec, Algorithm::SparseDense, spec, &a, &b).unwrap();
        let c_ss = contract(&exec, Algorithm::SparseSparse, spec, &a, &b).unwrap();
        let d = c_list.to_dense();
        prop_assert!(c_sd.to_dense().allclose(&d, 1e-10));
        prop_assert!(c_ss.to_dense().allclose(&d, 1e-10));
        // and against the plain dense einsum
        let reference = tt_tensor::einsum(spec, &a.to_dense(), &b.to_dense()).unwrap();
        prop_assert!(d.allclose(&reference, 1e-10));
    }

    /// Block SVD: reconstruction, isometry and Frobenius identity.
    #[test]
    fn block_svd_invariants(
        s1 in arb_sectors(),
        s2 in arb_sectors(),
        seed in 0u64..10_000,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let t = BlockSparseTensor::random(
            vec![
                mk_index(Arrow::In, &s1),
                mk_index(Arrow::In, &[(1, 1), (-1, 1)]),
                mk_index(Arrow::Out, &s2),
            ],
            QN::zero(1),
            &mut rng,
        );
        prop_assume!(t.n_blocks() > 0);
        let exec = Executor::local();
        let svd = block_svd(
            &exec,
            &t,
            &[0, 1],
            &[2],
            TruncSpec { max_rank: usize::MAX, cutoff: 0.0, min_keep: 1 },
        )
        .unwrap();
        // Frobenius identity
        let s2sum: f64 = svd.s.norm2();
        prop_assert!((s2sum - t.norm() * t.norm()).abs() < 1e-8 * t.norm().max(1.0).powi(2));
        // reconstruction
        let mut us = svd.u.clone();
        tt_blocks::scale_bond(&mut us, 2, &svd.s, false).unwrap();
        let rec = contract(&exec, Algorithm::List, "abk,kc->abc", &us, &svd.vt).unwrap();
        prop_assert!(rec.to_dense().allclose(&t.to_dense(), 1e-9));
    }

    /// Truncated SVD error equals the discarded spectral weight.
    #[test]
    fn truncation_error_identity(
        s1 in arb_sectors(),
        seed in 0u64..10_000,
        keep in 1usize..4,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let t = BlockSparseTensor::random(
            vec![mk_index(Arrow::In, &s1), mk_index(Arrow::Out, &s1)],
            QN::zero(1),
            &mut rng,
        );
        prop_assume!(t.n_blocks() > 0);
        let exec = Executor::local();
        let full = block_svd(
            &exec, &t, &[0], &[1],
            TruncSpec { max_rank: usize::MAX, cutoff: 0.0, min_keep: 1 },
        ).unwrap();
        let all = full.s.all_values();
        prop_assume!(all.len() > keep);
        let trunc = block_svd(
            &exec, &t, &[0], &[1],
            TruncSpec { max_rank: keep, cutoff: 0.0, min_keep: 1 },
        ).unwrap();
        let expect: f64 = all[keep..].iter().map(|x| x * x).sum();
        prop_assert!((trunc.trunc_err - expect).abs() < 1e-9 * expect.max(1.0));
    }
}

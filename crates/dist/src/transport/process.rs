//! The multi-process shared-nothing transport backend.
//!
//! [`ProcTransport::spawn`] launches `p` real OS worker processes, each
//! with its own address space, connected to this (driver) process over a
//! Unix-domain socket. Requests and replies travel as hand-rolled
//! little-endian frames ([`super::wire`]); tensor payloads round-trip
//! exactly, so results assembled from worker replies are bitwise-identical
//! to the in-process backend.
//!
//! Workers are spawned two ways ([`SpawnSpec`]):
//!
//! * [`SpawnSpec::WorkerBinary`] — run the `tt-dist-worker` binary that
//!   ships with this crate (looked up next to the current executable, or
//!   via `TT_DIST_WORKER_EXE`);
//! * [`SpawnSpec::SelfExec`] — re-execute the *current* executable with
//!   the given extra arguments. The host must call
//!   [`super::maybe_serve`] before doing anything else; test binaries
//!   expose a `#[test] fn spawned_worker_entry()` that calls it and pass
//!   `["spawned_worker_entry"]` as the filter argument.
//!
//! ## Fault tolerance
//!
//! Worker failure is a first-class event, not a panic:
//!
//! * **Detection** — every blocking receive (and stalled send) is bounded
//!   by a deadline (`TT_DIST_TIMEOUT_MS`, default 120 s), worker children
//!   are `try_wait`-reaped inside every wait loop (a crashed rank surfaces
//!   in milliseconds, not at the deadline), and oversized or short frames
//!   are refused — all surfacing as typed [`FaultKind`] faults.
//! * **Respawn** — [`ProcTransport::respawn`] replaces a dead rank's
//!   process (capped exponential backoff on spawn+connect), re-accepting
//!   on the retained hub listener. The new process is empty; the
//!   driver-side [`Cluster`](crate::Cluster) replays its journal to
//!   reconstruct resident state.
//! * **Degradation** — [`ProcTransport::retire`] maps a logical rank whose
//!   respawns are exhausted onto a surviving physical worker via the
//!   logical→physical route table. Everything driver-side (placement,
//!   keys, chunk decompositions, α–β charges) stays in logical rank
//!   space, so degraded runs remain bitwise-identical.
//! * **Injection** — a [`FaultPlan`] (env `TT_FAULT_PLAN` or
//!   [`ProcOptions`]) deterministically kills ranks, drops, corrupts or
//!   delays reply frames, and vetoes respawns, so every recovery path is
//!   testable in CI.

#![cfg(unix)]

use super::wire::{read_frame, write_frame, Dec, MAX_FRAME_BYTES};
use super::worker::{Request, ENV_RANK, ENV_SOCKET};
use super::{SpawnSpec, Transport};
use crate::{Error, FaultKind, Result};
use std::collections::{HashMap, VecDeque};
use std::io::{Read, Write};
use std::os::unix::net::{UnixListener, UnixStream};
use std::path::PathBuf;
use std::process::{Child, Command, Stdio};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration, Instant};

/// How long to wait for all spawned workers to connect back.
const CONNECT_TIMEOUT: Duration = Duration::from_secs(30);
/// How long to wait for workers to exit after a shutdown request.
const SHUTDOWN_GRACE: Duration = Duration::from_secs(5);
/// Default bound on every blocking receive / stalled send. Generous: a
/// *dead* rank is caught by child reaping within milliseconds — the
/// deadline only has to catch a wedged-but-alive rank.
const DEFAULT_DEADLINE: Duration = Duration::from_secs(120);
/// Environment override for the deadline, in milliseconds.
const ENV_TIMEOUT_MS: &str = "TT_DIST_TIMEOUT_MS";
/// Environment fault plan (see [`FaultPlan::parse`]).
const ENV_FAULT_PLAN: &str = "TT_FAULT_PLAN";
/// Respawn attempts before a rank is given up on (each preceded by
/// `50ms · 2^i` backoff after the first).
const DEFAULT_RESPAWN_ATTEMPTS: u32 = 4;
/// Base backoff between respawn attempts.
const RESPAWN_BACKOFF: Duration = Duration::from_millis(50);

static SPAWN_COUNTER: AtomicU64 = AtomicU64::new(0);

/// Deterministic fault injection for the multi-process backend: which
/// worker to kill, which reply frames to drop/corrupt/delay, and which
/// ranks may never respawn. Counters are per logical rank and 1-based;
/// each directive fires exactly once. Configure via [`ProcOptions`] or the
/// `TT_FAULT_PLAN` environment variable.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct FaultPlan {
    /// `(rank, n)`: kill the worker serving `rank` immediately before the
    /// driver's `n`-th send to it.
    pub kill: Vec<(usize, u64)>,
    /// `(rank, n)`: discard the `n`-th reply frame received from `rank`
    /// (the reply simply never arrives; the deadline catches it).
    pub drop_reply: Vec<(usize, u64)>,
    /// `(rank, n)`: corrupt the `n`-th reply frame from `rank` (the
    /// payload's opcode byte is flipped, so decoding fails loudly).
    pub corrupt_reply: Vec<(usize, u64)>,
    /// `(rank, n, millis)`: delay the `n`-th reply frame from `rank` —
    /// a wedged-but-alive rank for exercising the timeout path.
    pub delay_reply: Vec<(usize, u64, u64)>,
    /// Ranks whose respawn always fails, forcing the degradation path.
    pub nospawn: Vec<usize>,
}

impl FaultPlan {
    /// Whether this plan injects nothing.
    pub fn is_empty(&self) -> bool {
        *self == FaultPlan::default()
    }

    /// Parse the compact env syntax: comma-separated directives
    /// `kill:R@N`, `drop:R@N`, `corrupt:R@N`, `delay:R@N+MS`,
    /// `nospawn:R` (e.g. `"kill:1@3,nospawn:1"`).
    pub fn parse(s: &str) -> Result<Self> {
        let mut plan = FaultPlan::default();
        for item in s.split(',').map(str::trim).filter(|t| !t.is_empty()) {
            let (verb, spec) = item
                .split_once(':')
                .ok_or_else(|| Error::transport(format!("fault plan item `{item}` lacks `:`")))?;
            let bad = || Error::transport(format!("malformed fault plan item `{item}`"));
            let rank_at = |spec: &str| -> Result<(usize, u64)> {
                let (r, n) = spec.split_once('@').ok_or_else(bad)?;
                Ok((r.parse().map_err(|_| bad())?, n.parse().map_err(|_| bad())?))
            };
            match verb {
                "kill" => plan.kill.push(rank_at(spec)?),
                "drop" => plan.drop_reply.push(rank_at(spec)?),
                "corrupt" => plan.corrupt_reply.push(rank_at(spec)?),
                "delay" => {
                    let (ra, ms) = spec.split_once('+').ok_or_else(bad)?;
                    let (r, n) = rank_at(ra)?;
                    plan.delay_reply
                        .push((r, n, ms.parse().map_err(|_| bad())?));
                }
                "nospawn" => plan.nospawn.push(spec.parse().map_err(|_| bad())?),
                _ => return Err(Error::transport(format!("unknown fault verb `{verb}`"))),
            }
        }
        Ok(plan)
    }

    /// The plan named by `TT_FAULT_PLAN`, or an empty plan. Malformed env
    /// plans are an error — silently ignoring an injection request would
    /// make a failing CI step pass vacuously.
    pub fn from_env() -> Result<Self> {
        match std::env::var(ENV_FAULT_PLAN) {
            Ok(s) if !s.trim().is_empty() => Self::parse(&s),
            _ => Ok(Self::default()),
        }
    }
}

/// Spawn-time options for [`ProcTransport::spawn_with`]: fault injection,
/// detection deadline, respawn budget. `Default` reads everything from the
/// environment (`TT_FAULT_PLAN`, `TT_DIST_TIMEOUT_MS`).
#[derive(Clone, Debug, Default)]
pub struct ProcOptions {
    /// Fault injection plan (merged over the env plan; a non-empty builder
    /// plan replaces the env plan).
    pub plan: Option<FaultPlan>,
    /// Receive/stalled-send deadline (overrides `TT_DIST_TIMEOUT_MS`).
    pub deadline: Option<Duration>,
    /// Respawn attempts per failure before the rank degrades.
    pub respawn_attempts: Option<u32>,
}

/// Mutable injection state: the remaining plan plus per-rank send and
/// reply-frame counters. Counters address *physical* worker slots, which
/// coincide with logical ranks until degradation re-routes them (tests
/// inject faults before any degradation, so the distinction never shows).
struct Injector {
    plan: FaultPlan,
    sends: Vec<u64>,
    frames: Vec<u64>,
}

impl Injector {
    fn new(plan: FaultPlan, ranks: usize) -> Self {
        Self {
            plan,
            sends: vec![0; ranks],
            frames: vec![0; ranks],
        }
    }

    /// Count one send to `rank`; true if the plan kills the worker now.
    fn on_send(&mut self, rank: usize) -> bool {
        self.sends[rank] += 1;
        let n = self.sends[rank];
        if let Some(i) = self.plan.kill.iter().position(|&k| k == (rank, n)) {
            self.plan.kill.remove(i);
            return true;
        }
        false
    }

    /// What to do with the next reply frame peeled off `slot`'s link.
    fn on_frame(&mut self, slot: usize) -> FrameFate {
        self.frames[slot] += 1;
        let n = self.frames[slot];
        let take = |v: &mut Vec<(usize, u64)>| {
            v.iter()
                .position(|&k| k == (slot, n))
                .map(|i| v.remove(i))
                .is_some()
        };
        if take(&mut self.plan.drop_reply) {
            return FrameFate::Drop;
        }
        if take(&mut self.plan.corrupt_reply) {
            return FrameFate::Corrupt;
        }
        if let Some(i) = self
            .plan
            .delay_reply
            .iter()
            .position(|&(r, m, _)| (r, m) == (slot, n))
        {
            let (_, _, ms) = self.plan.delay_reply.remove(i);
            return FrameFate::Delay(Duration::from_millis(ms));
        }
        FrameFate::Deliver
    }
}

enum FrameFate {
    Deliver,
    Drop,
    Corrupt,
    Delay(Duration),
}

/// One worker connection. The stream is kept **non-blocking** and every
/// wait loops through [`Link::pump`], so the driver keeps draining worker
/// replies even while it is still shipping requests. This is what makes
/// [`crate::Cluster::call_all`]'s send-everything-then-collect pattern
/// safe with large payloads: with blocking writes on both sides, a worker
/// blocked writing a big reply and a driver blocked writing the next big
/// request to the same (full) socket would deadlock permanently.
struct Link {
    stream: UnixStream,
    /// Bytes read off the socket that don't yet form a complete frame.
    rdbuf: Vec<u8>,
    /// Complete frames by tag, counter deltas already applied.
    pending: HashMap<u64, VecDeque<Vec<u8>>>,
}

impl Link {
    fn new(stream: UnixStream) -> Self {
        Self {
            stream,
            rdbuf: Vec::new(),
            pending: HashMap::new(),
        }
    }

    /// Drain whatever the socket currently holds into `pending` without
    /// blocking. Returns whether any bytes arrived. Faults are attributed
    /// to logical `rank`; `slot` addresses the injection counters.
    fn pump(&mut self, rank: usize, slot: usize, inj: &mut Injector) -> Result<bool> {
        let mut progress = false;
        let mut buf = [0u8; 64 * 1024];
        loop {
            match self.stream.read(&mut buf) {
                Ok(0) => {
                    return Err(Error::fault(
                        FaultKind::WorkerDied,
                        rank,
                        "worker closed the connection",
                    ))
                }
                Ok(n) => {
                    self.rdbuf.extend_from_slice(&buf[..n]);
                    progress = true;
                }
                Err(ref e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
                Err(ref e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                Err(e) => return Err(Error::fault(FaultKind::Io, rank, format!("read: {e}"))),
            }
        }
        // peel complete `[tag][len][payload]` frames out of rdbuf
        while self.rdbuf.len() >= 16 {
            let len = u64::from_le_bytes(self.rdbuf[8..16].try_into().unwrap());
            if len > MAX_FRAME_BYTES {
                return Err(Error::fault(
                    FaultKind::Decode,
                    rank,
                    format!("reply frame of {len} bytes refused"),
                ));
            }
            let len = len as usize;
            if self.rdbuf.len() < 16 + len {
                break;
            }
            let tag = u64::from_le_bytes(self.rdbuf[..8].try_into().unwrap());
            let mut payload = self.rdbuf[16..16 + len].to_vec();
            self.rdbuf.drain(..16 + len);
            // every reply carries a 16-byte flop/mem counter-delta prefix
            if payload.len() < 16 {
                return Err(Error::fault(
                    FaultKind::Decode,
                    rank,
                    "reply frame shorter than its counter prefix",
                ));
            }
            match inj.on_frame(slot) {
                FrameFate::Drop => continue, // the reply never happened
                FrameFate::Corrupt => {
                    // flip the reply opcode byte (past the counter prefix,
                    // which stays untouched); counters from a corrupt
                    // frame are not to be trusted, so skip them too
                    if payload.len() > 16 {
                        payload[16] ^= 0x80;
                    }
                    self.pending
                        .entry(tag)
                        .or_default()
                        .push_back(payload[16..].to_vec());
                    continue;
                }
                FrameFate::Delay(d) => std::thread::sleep(d),
                FrameFate::Deliver => {}
            }
            // strip the worker's counter-delta prefix and replay it into
            // this process's global counters (exactly once per frame)
            let mut d = Dec::new(&payload);
            let flops = d.u64()?;
            let mem = d.u64()?;
            tt_tensor::counter::add_flops(flops);
            tt_tensor::counter::add_mem_traffic(mem);
            self.pending
                .entry(tag)
                .or_default()
                .push_back(payload[16..].to_vec());
        }
        Ok(progress)
    }

    /// Write one frame, pumping incoming replies whenever the socket's
    /// send buffer is full (the deadlock-avoidance half of the contract).
    /// A write stalled past `deadline` is a timeout fault.
    fn write_pumping(
        &mut self,
        rank: usize,
        slot: usize,
        tag: u64,
        msg: &[u8],
        inj: &mut Injector,
        deadline: Duration,
    ) -> Result<()> {
        let mut frame = Vec::with_capacity(16 + msg.len());
        frame.extend_from_slice(&tag.to_le_bytes());
        frame.extend_from_slice(&(msg.len() as u64).to_le_bytes());
        frame.extend_from_slice(msg);
        let mut off = 0usize;
        let start = Instant::now();
        while off < frame.len() {
            match self.stream.write(&frame[off..]) {
                Ok(0) => {
                    return Err(Error::fault(
                        FaultKind::WorkerDied,
                        rank,
                        "write returned 0",
                    ))
                }
                Ok(n) => off += n,
                Err(ref e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                    if !self.pump(rank, slot, inj)? {
                        if start.elapsed() > deadline {
                            return Err(Error::fault(
                                FaultKind::Timeout,
                                rank,
                                format!("send stalled for {deadline:?}"),
                            ));
                        }
                        std::thread::sleep(Duration::from_micros(200));
                    }
                }
                Err(ref e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                Err(ref e)
                    if matches!(
                        e.kind(),
                        std::io::ErrorKind::BrokenPipe | std::io::ErrorKind::ConnectionReset
                    ) =>
                {
                    return Err(Error::fault(
                        FaultKind::WorkerDied,
                        rank,
                        format!("write: {e}"),
                    ))
                }
                Err(e) => return Err(Error::fault(FaultKind::Io, rank, format!("write: {e}"))),
            }
        }
        Ok(())
    }
}

/// Multi-process implementation of [`Transport`].
pub struct ProcTransport {
    /// Worker connections by physical slot; `None` once a slot is retired.
    links: Vec<Option<Link>>,
    /// Worker processes by physical slot (dead children stay until reaped).
    children: Vec<Child>,
    /// Logical rank → physical slot. Identity until degradation re-routes
    /// a retired rank onto a survivor.
    route: Vec<usize>,
    /// The hub listener, retained so respawned workers can re-accept.
    listener: UnixListener,
    sock: PathBuf,
    spec: SpawnSpec,
    dir: PathBuf,
    next_tag: u64,
    deadline: Duration,
    respawn_attempts: u32,
    inj: Injector,
}

fn worker_exe() -> Result<PathBuf> {
    if let Ok(exe) = std::env::var("TT_DIST_WORKER_EXE") {
        let p = PathBuf::from(exe);
        if p.exists() {
            return Ok(p);
        }
        return Err(Error::transport(format!(
            "TT_DIST_WORKER_EXE points at missing file {}",
            p.display()
        )));
    }
    let me = std::env::current_exe().map_err(|e| Error::transport(format!("current_exe: {e}")))?;
    let mut candidates = Vec::new();
    if let Some(dir) = me.parent() {
        candidates.push(dir.join("tt-dist-worker"));
        // test binaries live in target/<profile>/deps/
        if let Some(up) = dir.parent() {
            candidates.push(up.join("tt-dist-worker"));
        }
    }
    candidates.into_iter().find(|p| p.exists()).ok_or_else(|| {
        Error::transport(
            "tt-dist-worker binary not found next to the current executable; \
             build it with `cargo build -p tt-dist --bin tt-dist-worker` or \
             use SpawnSpec::SelfExec",
        )
    })
}

fn env_deadline() -> Duration {
    std::env::var(ENV_TIMEOUT_MS)
        .ok()
        .and_then(|v| v.parse::<u64>().ok())
        .map(Duration::from_millis)
        .unwrap_or(DEFAULT_DEADLINE)
}

impl ProcTransport {
    /// Spawn `ranks` worker processes and wait for them all to connect.
    /// Deadline and fault plan come from the environment
    /// (`TT_DIST_TIMEOUT_MS`, `TT_FAULT_PLAN`).
    pub fn spawn(ranks: usize, spec: &SpawnSpec) -> Result<Self> {
        Self::spawn_with(ranks, spec, ProcOptions::default())
    }

    /// Spawn with explicit [`ProcOptions`] (fault injection, deadline,
    /// respawn budget); unset options fall back to the environment.
    pub fn spawn_with(ranks: usize, spec: &SpawnSpec, opts: ProcOptions) -> Result<Self> {
        let ranks = ranks.max(1);
        let plan = match opts.plan {
            Some(p) => p,
            None => FaultPlan::from_env()?,
        };
        let dir = std::env::temp_dir().join(format!(
            "tt-dist-{}-{}",
            std::process::id(),
            SPAWN_COUNTER.fetch_add(1, Ordering::Relaxed)
        ));
        std::fs::create_dir_all(&dir)
            .map_err(|e| Error::transport(format!("create {}: {e}", dir.display())))?;
        let sock = dir.join("hub.sock");
        let listener = UnixListener::bind(&sock)
            .map_err(|e| Error::transport(format!("bind {}: {e}", sock.display())))?;
        listener
            .set_nonblocking(true)
            .map_err(|e| Error::transport(format!("listener nonblocking: {e}")))?;

        let mut t = Self {
            links: (0..ranks).map(|_| None).collect(),
            children: Vec::with_capacity(ranks),
            route: (0..ranks).collect(),
            listener,
            sock,
            spec: spec.clone(),
            dir,
            next_tag: 1,
            deadline: opts.deadline.unwrap_or_else(env_deadline),
            respawn_attempts: opts
                .respawn_attempts
                .unwrap_or(DEFAULT_RESPAWN_ATTEMPTS)
                .max(1),
            inj: Injector::new(plan, ranks),
        };
        for slot in 0..ranks {
            let child = t.spawn_child(slot)?;
            t.children.push(child);
        }
        // accept connections until every slot said hello
        let deadline = Instant::now() + CONNECT_TIMEOUT;
        let mut connected = 0;
        while connected < ranks {
            match t.accept_hello(deadline)? {
                Some(()) => connected += 1,
                None => {
                    for (slot, child) in t.children.iter_mut().enumerate() {
                        if let (true, Ok(Some(status))) =
                            (t.links[slot].is_none(), child.try_wait())
                        {
                            return Err(Error::fault(
                                FaultKind::Spawn,
                                slot,
                                format!("worker exited before connecting ({status})"),
                            ));
                        }
                    }
                    std::thread::sleep(Duration::from_millis(5));
                }
            }
        }
        Ok(t)
    }

    /// Launch the worker process for physical `slot`.
    fn spawn_child(&self, slot: usize) -> Result<Child> {
        let mut cmd = match &self.spec {
            SpawnSpec::WorkerBinary => Command::new(worker_exe()?),
            SpawnSpec::SelfExec(args) => {
                let me = std::env::current_exe()
                    .map_err(|e| Error::transport(format!("current_exe: {e}")))?;
                let mut c = Command::new(me);
                c.args(args);
                c
            }
        };
        cmd.env(ENV_SOCKET, &self.sock)
            .env(ENV_RANK, slot.to_string())
            .stdin(Stdio::null())
            // test-harness hosts print their own banner on stdout,
            // which is not part of the protocol (the socket is) —
            // silence it; diagnostics go to the inherited stderr
            .stdout(Stdio::null())
            .spawn()
            .map_err(|e| Error::fault(FaultKind::Spawn, slot, format!("spawn worker: {e}")))
    }

    /// Accept one worker hello if one is pending, filing its link into the
    /// slot it names. `Ok(None)` means nothing was pending; past
    /// `deadline` that becomes a spawn fault.
    fn accept_hello(&mut self, deadline: Instant) -> Result<Option<()>> {
        match self.listener.accept() {
            Ok((mut stream, _)) => {
                stream
                    .set_nonblocking(false)
                    .map_err(|e| Error::transport(format!("stream blocking mode: {e}")))?;
                let (tag, hello) = read_frame(&mut stream)?;
                if tag != 0 {
                    return Err(Error::transport("worker hello had nonzero tag"));
                }
                let slot = Dec::new(&hello).u64()? as usize;
                if slot >= self.links.len() || self.links[slot].is_some() {
                    return Err(Error::transport(format!("bad hello rank {slot}")));
                }
                // all further traffic goes through the pumping
                // non-blocking reader/writer (see Link)
                stream
                    .set_nonblocking(true)
                    .map_err(|e| Error::transport(format!("stream nonblocking mode: {e}")))?;
                self.links[slot] = Some(Link::new(stream));
                Ok(Some(()))
            }
            Err(ref e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                if Instant::now() > deadline {
                    return Err(Error::transport(format!(
                        "workers failed to connect within {CONNECT_TIMEOUT:?}"
                    )));
                }
                Ok(None)
            }
            Err(e) => Err(Error::transport(format!("accept: {e}"))),
        }
    }

    /// Process ids of the worker children (diagnostics/tests).
    pub fn worker_pids(&self) -> Vec<u32> {
        self.children.iter().map(|c| c.id()).collect()
    }

    /// The physical slot currently serving logical `rank`.
    pub fn physical_slot(&self, rank: usize) -> Option<usize> {
        self.route.get(rank).copied()
    }

    /// Kill the worker process serving `rank` (SIGKILL, reaped) — the
    /// injection primitive behind [`FaultPlan::kill`], public for tests.
    pub fn kill_worker(&mut self, rank: usize) {
        let slot = self.route[rank];
        let _ = self.children[slot].kill();
        let _ = self.children[slot].wait();
    }
}

impl Transport for ProcTransport {
    fn ranks(&self) -> usize {
        self.route.len()
    }

    fn next_tag(&mut self) -> u64 {
        let t = self.next_tag;
        self.next_tag += 1;
        t
    }

    fn supports_recovery(&self) -> bool {
        true
    }

    fn peers(&self, rank: usize) -> Vec<usize> {
        match self.route.get(rank) {
            Some(&slot) => (0..self.route.len())
                .filter(|&r| self.route[r] == slot)
                .collect(),
            None => vec![rank],
        }
    }

    fn set_deadline(&mut self, deadline: Duration) {
        self.deadline = deadline;
    }

    fn send(&mut self, to: usize, tag: u64, msg: &[u8]) -> Result<()> {
        if to >= self.route.len() {
            return Err(Error::transport(format!("no rank {to}")));
        }
        if self.inj.on_send(to) {
            self.kill_worker(to);
        }
        // Per-job deadline (service job scope on this thread) overrides
        // the transport-wide default.
        let deadline = crate::cost::scope_deadline().unwrap_or(self.deadline);
        let slot = self.route[to];
        let link = self.links[slot].as_mut().ok_or_else(|| {
            Error::fault(FaultKind::WorkerDied, to, "rank's worker slot is retired")
        })?;
        link.write_pumping(to, slot, tag, msg, &mut self.inj, deadline)
    }

    fn recv(&mut self, from: usize, tag: u64) -> Result<Vec<u8>> {
        let deadline = crate::cost::scope_deadline().unwrap_or(self.deadline);
        let start = Instant::now();
        loop {
            let slot = *self
                .route
                .get(from)
                .ok_or_else(|| Error::transport(format!("no rank {from}")))?;
            let link = self.links[slot].as_mut().ok_or_else(|| {
                Error::fault(FaultKind::WorkerDied, from, "rank's worker slot is retired")
            })?;
            if let Some(q) = link.pending.get_mut(&tag) {
                if let Some(msg) = q.pop_front() {
                    return Ok(msg);
                }
            }
            if !link.pump(from, slot, &mut self.inj)? {
                // idle: reap a crashed child promptly instead of waiting
                // out the deadline
                if let Ok(Some(status)) = self.children[slot].try_wait() {
                    return Err(Error::fault(
                        FaultKind::WorkerDied,
                        from,
                        format!("worker exited ({status})"),
                    ));
                }
                if start.elapsed() > deadline {
                    return Err(Error::fault(
                        FaultKind::Timeout,
                        from,
                        format!("no reply under tag {tag} within {deadline:?}"),
                    ));
                }
                std::thread::sleep(Duration::from_micros(200));
            }
        }
    }

    fn respawn(&mut self, rank: usize) -> Result<()> {
        if self.inj.plan.nospawn.contains(&rank) {
            return Err(Error::fault(
                FaultKind::Spawn,
                rank,
                "respawn vetoed by fault plan",
            ));
        }
        let slot = *self
            .route
            .get(rank)
            .ok_or_else(|| Error::transport(format!("no rank {rank}")))?;
        // reap the old process and drop its link (buffered frames belong
        // to requests the journal will re-issue)
        let _ = self.children[slot].kill();
        let _ = self.children[slot].wait();
        self.links[slot] = None;
        let mut last = Error::fault(FaultKind::Spawn, rank, "no respawn attempts made");
        for attempt in 0..self.respawn_attempts {
            if attempt > 0 {
                std::thread::sleep(RESPAWN_BACKOFF * (1 << (attempt - 1).min(6)));
            }
            match self.try_respawn(slot) {
                Ok(()) => return Ok(()),
                Err(e) => last = e,
            }
        }
        Err(last)
    }

    fn retire(&mut self, rank: usize) -> Result<usize> {
        let slot = *self
            .route
            .get(rank)
            .ok_or_else(|| Error::transport(format!("no rank {rank}")))?;
        let _ = self.children[slot].kill();
        let _ = self.children[slot].wait();
        self.links[slot] = None;
        let target = (0..self.links.len())
            .find(|&s| self.links[s].is_some())
            .ok_or_else(|| Error::fault(FaultKind::WorkerDied, rank, "no surviving workers"))?;
        // re-home every logical rank the dead slot served (transitive:
        // earlier retirements may already route through it)
        for r in self.route.iter_mut() {
            if *r == slot {
                *r = target;
            }
        }
        Ok(target)
    }
}

impl ProcTransport {
    /// One respawn attempt for physical `slot`: spawn + wait for hello.
    fn try_respawn(&mut self, slot: usize) -> Result<()> {
        let child = self.spawn_child(slot)?;
        self.children[slot] = child;
        let deadline = Instant::now() + CONNECT_TIMEOUT;
        while self.links[slot].is_none() {
            match self.accept_hello(deadline)? {
                Some(()) => {}
                None => {
                    if let Ok(Some(status)) = self.children[slot].try_wait() {
                        return Err(Error::fault(
                            FaultKind::Spawn,
                            slot,
                            format!("respawned worker exited before connecting ({status})"),
                        ));
                    }
                    std::thread::sleep(Duration::from_millis(5));
                }
            }
        }
        Ok(())
    }
}

impl Drop for ProcTransport {
    fn drop(&mut self) {
        let shutdown = Request::Shutdown.encode();
        for link in self.links.iter_mut().flatten() {
            // best-effort (non-blocking stream may refuse); closing the
            // sockets below makes workers exit on EOF regardless
            let _ = write_frame(&mut link.stream, u64::MAX, &shutdown);
        }
        self.links.clear();
        let deadline = Instant::now() + SHUTDOWN_GRACE;
        for child in &mut self.children {
            loop {
                match child.try_wait() {
                    Ok(Some(_)) => break,
                    Ok(None) if Instant::now() > deadline => {
                        let _ = child.kill();
                        let _ = child.wait();
                        break;
                    }
                    Ok(None) => std::thread::sleep(Duration::from_millis(5)),
                    Err(_) => break,
                }
            }
        }
        let _ = std::fs::remove_dir_all(&self.dir);
    }
}

#[cfg(test)]
mod tests {
    use super::super::worker::Reply;
    use super::*;

    /// Self-exec hook: when the lib test binary is re-executed as a
    /// worker, this "test" becomes the serve loop (no-op otherwise).
    #[test]
    fn spawned_worker_entry() {
        super::super::maybe_serve();
    }

    fn spec() -> SpawnSpec {
        SpawnSpec::SelfExec(vec!["spawned_worker_entry".into()])
    }

    #[test]
    fn real_processes_roundtrip_store_and_kernels() {
        let mut t = ProcTransport::spawn(2, &spec()).unwrap();
        assert_eq!(t.ranks(), 2);
        let my_pid = std::process::id();
        for pid in t.worker_pids() {
            assert_ne!(pid, my_pid, "workers must be separate OS processes");
        }
        // per-rank stores are genuinely disjoint address spaces
        for r in 0..2 {
            let tag = t.next_tag();
            t.send(
                r,
                tag,
                &Request::Put {
                    key: 7,
                    data: vec![r as f64 + 0.5],
                }
                .encode(),
            )
            .unwrap();
            assert_eq!(
                Reply::decode(&t.recv(r, tag).unwrap()).unwrap(),
                Reply::Unit
            );
        }
        for r in 0..2 {
            let tag = t.next_tag();
            t.send(r, tag, &Request::Get { key: 7 }.encode()).unwrap();
            assert_eq!(
                Reply::decode(&t.recv(r, tag).unwrap()).unwrap(),
                Reply::F64s(vec![r as f64 + 0.5])
            );
        }
        // complex payloads cross the socket bitwise
        let c = vec![tt_tensor::Complex64::new(1.0 / 3.0, -0.0)];
        let tag = t.next_tag();
        t.send(
            0,
            tag,
            &Request::PutC64 {
                key: 1,
                data: c.clone(),
            }
            .encode(),
        )
        .unwrap();
        t.recv(0, tag).unwrap();
        let tag = t.next_tag();
        t.send(0, tag, &Request::GetC64 { key: 1 }.encode())
            .unwrap();
        let Reply::C64s(back) = Reply::decode(&t.recv(0, tag).unwrap()).unwrap() else {
            panic!("expected complex payload");
        };
        assert_eq!(back[0].re.to_bits(), c[0].re.to_bits());
        assert_eq!(back[0].im.to_bits(), c[0].im.to_bits());
    }

    #[test]
    fn large_pipelined_payloads_do_not_deadlock() {
        // Regression test for the call_all deadlock: ship several large
        // requests to one rank *before* reading any reply, interleaved
        // with requests whose replies are large. With blocking writes on
        // both ends, the worker blocks writing reply 2 (~1.6 MB ≫ the
        // socket buffer) while the driver blocks writing request 3 — the
        // pumping writer must drain replies to make progress.
        let mut t = ProcTransport::spawn(1, &spec()).unwrap();
        let big: Vec<f64> = (0..200_000).map(|i| i as f64 * 0.5).collect();
        let mut tags = Vec::new();
        for round in 0..3u64 {
            let put = t.next_tag();
            t.send(
                0,
                put,
                &Request::Put {
                    key: round,
                    data: big.clone(),
                }
                .encode(),
            )
            .unwrap();
            let get = t.next_tag();
            t.send(0, get, &Request::Get { key: round }.encode())
                .unwrap();
            tags.push((put, get));
        }
        for (put, get) in tags {
            assert_eq!(
                Reply::decode(&t.recv(0, put).unwrap()).unwrap(),
                Reply::Unit
            );
            let Reply::F64s(back) = Reply::decode(&t.recv(0, get).unwrap()).unwrap() else {
                panic!("expected payload");
            };
            assert_eq!(back.len(), big.len());
            assert_eq!(back[123_456].to_bits(), big[123_456].to_bits());
        }
    }

    #[test]
    fn worker_flop_counts_propagate_to_the_driver() {
        // a DenseChunk runs its GEMM in the worker process; the reply's
        // counter-delta prefix must land in this process's global counter
        // (lower bound, not equality: other tests share the global
        // counter and libtest runs them concurrently)
        let mut t = ProcTransport::spawn(1, &spec()).unwrap();
        let (rows, k, n) = (64usize, 64usize, 64usize);
        let guard = tt_tensor::FlopGuard::start();
        let tag = t.next_tag();
        t.send(
            0,
            tag,
            &Request::DenseChunk {
                path: tt_tensor::gemm::GemmPath::Scalar,
                rows,
                k,
                n,
                a: crate::transport::worker::OpF::Inline(vec![1.0; rows * k]),
                b: crate::transport::worker::OpF::Inline(vec![1.0; k * n]),
            }
            .encode(),
        )
        .unwrap();
        t.recv(0, tag).unwrap();
        assert!(guard.elapsed() >= 2 * (rows * k * n) as u64);
    }

    #[test]
    fn out_of_order_replies_are_buffered_by_tag() {
        let mut t = ProcTransport::spawn(1, &spec()).unwrap();
        let t1 = t.next_tag();
        let t2 = t.next_tag();
        t.send(
            0,
            t1,
            &Request::Put {
                key: 1,
                data: vec![1.0],
            }
            .encode(),
        )
        .unwrap();
        t.send(
            0,
            t2,
            &Request::Put {
                key: 2,
                data: vec![2.0],
            }
            .encode(),
        )
        .unwrap();
        // receive the second reply first: the first must be stashed
        assert_eq!(Reply::decode(&t.recv(0, t2).unwrap()).unwrap(), Reply::Unit);
        assert_eq!(Reply::decode(&t.recv(0, t1).unwrap()).unwrap(), Reply::Unit);
    }

    #[test]
    fn worker_task_failure_does_not_kill_the_process() {
        let mut t = ProcTransport::spawn(1, &spec()).unwrap();
        let tag = t.next_tag();
        t.send(0, tag, &Request::Get { key: 404 }.encode()).unwrap();
        assert!(matches!(
            Reply::decode(&t.recv(0, tag).unwrap()).unwrap(),
            Reply::Fail(_)
        ));
        let tag = t.next_tag();
        t.send(0, tag, &Request::Ping.encode()).unwrap();
        assert_eq!(
            Reply::decode(&t.recv(0, tag).unwrap()).unwrap(),
            Reply::Pong
        );
    }

    // -- fault tolerance ---------------------------------------------------

    fn wait_gone(pid: u32, what: &str) {
        // poll with `kill -0`: ESRCH once the process is fully gone
        let deadline = Instant::now() + Duration::from_secs(10);
        loop {
            let alive = unsafe { libc_kill(pid as i32, 0) } == 0;
            if !alive {
                return;
            }
            assert!(Instant::now() < deadline, "{what}: pid {pid} still alive");
            std::thread::sleep(Duration::from_millis(10));
        }
    }

    extern "C" {
        #[link_name = "kill"]
        fn libc_kill(pid: i32, sig: i32) -> i32;
    }

    #[test]
    fn dead_worker_surfaces_as_worker_died_not_a_hang() {
        let mut t = ProcTransport::spawn(2, &spec()).unwrap();
        t.set_deadline(Duration::from_secs(30)); // reaping must beat this
        t.kill_worker(1);
        let tag = t.next_tag();
        // the send may succeed (socket buffered) or already fail; either
        // way the reply wait must classify the fault
        let start = Instant::now();
        let err = t
            .send(1, tag, &Request::Ping.encode())
            .and_then(|()| t.recv(1, tag))
            .expect_err("dead rank must fault");
        let fault = err.as_fault().expect("typed fault");
        assert_eq!(fault.rank, Some(1));
        assert!(matches!(fault.kind, FaultKind::WorkerDied), "got {fault:?}");
        assert!(
            start.elapsed() < Duration::from_secs(10),
            "child reaping must detect the crash well before the deadline"
        );
        // the other rank is untouched
        let tag = t.next_tag();
        t.send(0, tag, &Request::Ping.encode()).unwrap();
        assert_eq!(
            Reply::decode(&t.recv(0, tag).unwrap()).unwrap(),
            Reply::Pong
        );
    }

    #[test]
    fn respawn_brings_a_fresh_empty_worker_back() {
        let mut t = ProcTransport::spawn(2, &spec()).unwrap();
        let tag = t.next_tag();
        t.send(
            1,
            tag,
            &Request::Put {
                key: 9,
                data: vec![1.5],
            }
            .encode(),
        )
        .unwrap();
        t.recv(1, tag).unwrap();
        t.kill_worker(1);
        t.respawn(1).unwrap();
        // alive again...
        let tag = t.next_tag();
        t.send(1, tag, &Request::Ping.encode()).unwrap();
        assert_eq!(
            Reply::decode(&t.recv(1, tag).unwrap()).unwrap(),
            Reply::Pong
        );
        // ...but with a clean store (state reconstruction is the
        // journal's job, one layer up)
        let tag = t.next_tag();
        t.send(1, tag, &Request::Get { key: 9 }.encode()).unwrap();
        assert!(matches!(
            Reply::decode(&t.recv(1, tag).unwrap()).unwrap(),
            Reply::Fail(_)
        ));
    }

    #[test]
    fn retire_reroutes_a_rank_onto_a_survivor() {
        let mut t = ProcTransport::spawn(3, &spec()).unwrap();
        t.kill_worker(1);
        let target = t.retire(1).unwrap();
        assert_ne!(target, 1);
        assert_eq!(t.physical_slot(1), Some(target));
        // the retired logical rank still answers — served by the survivor
        let tag = t.next_tag();
        t.send(1, tag, &Request::Ping.encode()).unwrap();
        assert_eq!(
            Reply::decode(&t.recv(1, tag).unwrap()).unwrap(),
            Reply::Pong
        );
        // stores now overlap physically, which is fine: keys are globally
        // unique or content-derived (same key ⇒ same bytes)
        let tag = t.next_tag();
        t.send(
            1,
            tag,
            &Request::Put {
                key: 3,
                data: vec![2.5],
            }
            .encode(),
        )
        .unwrap();
        t.recv(1, tag).unwrap();
        let tag = t.next_tag();
        t.send(1, tag, &Request::Get { key: 3 }.encode()).unwrap();
        assert_eq!(
            Reply::decode(&t.recv(1, tag).unwrap()).unwrap(),
            Reply::F64s(vec![2.5])
        );
    }

    #[test]
    fn fault_plan_parses_and_rejects_garbage() {
        let p = FaultPlan::parse("kill:1@3, drop:0@2,corrupt:2@5,delay:1@2+200,nospawn:1").unwrap();
        assert_eq!(p.kill, vec![(1, 3)]);
        assert_eq!(p.drop_reply, vec![(0, 2)]);
        assert_eq!(p.corrupt_reply, vec![(2, 5)]);
        assert_eq!(p.delay_reply, vec![(1, 2, 200)]);
        assert_eq!(p.nospawn, vec![1]);
        assert!(FaultPlan::parse("kill:1").is_err());
        assert!(FaultPlan::parse("explode:1@2").is_err());
        assert!(FaultPlan::parse("delay:1@2").is_err());
        assert!(FaultPlan::parse("").unwrap().is_empty());
    }

    #[test]
    fn injected_kill_fires_on_the_nth_send() {
        let opts = ProcOptions {
            plan: Some(FaultPlan::parse("kill:0@2").unwrap()),
            deadline: Some(Duration::from_secs(10)),
            ..Default::default()
        };
        let mut t = ProcTransport::spawn_with(1, &spec(), opts).unwrap();
        let tag = t.next_tag();
        t.send(0, tag, &Request::Ping.encode()).unwrap();
        assert_eq!(
            Reply::decode(&t.recv(0, tag).unwrap()).unwrap(),
            Reply::Pong
        );
        // second send triggers the kill; the reply never comes
        let tag = t.next_tag();
        let err = t
            .send(0, tag, &Request::Ping.encode())
            .and_then(|()| t.recv(0, tag))
            .expect_err("killed rank must fault");
        assert!(matches!(
            err.as_fault().map(|f| f.kind),
            Some(FaultKind::WorkerDied)
        ));
        // and the respawn path restores service
        t.respawn(0).unwrap();
        let tag = t.next_tag();
        t.send(0, tag, &Request::Ping.encode()).unwrap();
        assert_eq!(
            Reply::decode(&t.recv(0, tag).unwrap()).unwrap(),
            Reply::Pong
        );
    }

    #[test]
    fn corrupted_reply_is_a_decode_error_not_a_panic() {
        let opts = ProcOptions {
            plan: Some(FaultPlan::parse("corrupt:0@1").unwrap()),
            deadline: Some(Duration::from_secs(10)),
            ..Default::default()
        };
        let mut t = ProcTransport::spawn_with(1, &spec(), opts).unwrap();
        let tag = t.next_tag();
        t.send(0, tag, &Request::Ping.encode()).unwrap();
        let bytes = t.recv(0, tag).unwrap();
        assert!(
            Reply::decode(&bytes).is_err(),
            "flipped opcode must fail decode"
        );
        // the stream itself is still framed correctly: next reply is fine
        let tag = t.next_tag();
        t.send(0, tag, &Request::Ping.encode()).unwrap();
        assert_eq!(
            Reply::decode(&t.recv(0, tag).unwrap()).unwrap(),
            Reply::Pong
        );
    }

    #[test]
    fn dropped_reply_times_out_with_a_typed_fault() {
        let opts = ProcOptions {
            plan: Some(FaultPlan::parse("drop:0@1").unwrap()),
            deadline: Some(Duration::from_millis(300)),
            ..Default::default()
        };
        let mut t = ProcTransport::spawn_with(1, &spec(), opts).unwrap();
        let tag = t.next_tag();
        t.send(0, tag, &Request::Ping.encode()).unwrap();
        let err = t.recv(0, tag).expect_err("dropped reply must time out");
        assert!(matches!(
            err.as_fault().map(|f| f.kind),
            Some(FaultKind::Timeout)
        ));
    }

    #[test]
    fn nospawn_vetoes_respawn_for_degradation() {
        let opts = ProcOptions {
            plan: Some(FaultPlan::parse("nospawn:1").unwrap()),
            ..Default::default()
        };
        let mut t = ProcTransport::spawn_with(2, &spec(), opts).unwrap();
        t.kill_worker(1);
        let err = t.respawn(1).expect_err("nospawn must veto");
        assert!(matches!(
            err.as_fault().map(|f| f.kind),
            Some(FaultKind::Spawn)
        ));
        assert!(t.retire(1).is_ok(), "degradation still available");
    }

    #[test]
    fn no_orphans_after_transport_drop() {
        // satellite: spawn, record pids, drop (clean shutdown) — every
        // worker process must be gone, not reparented to init
        let t = ProcTransport::spawn(3, &spec()).unwrap();
        let pids = t.worker_pids();
        assert_eq!(pids.len(), 3);
        drop(t);
        for pid in pids {
            wait_gone(pid, "after drop");
        }
    }

    #[test]
    fn workers_exit_on_driver_eof_without_shutdown() {
        // satellite: simulate an abrupt driver death (no Shutdown frame,
        // sockets just close) — workers must see EOF and exit on their
        // own instead of lingering as orphans. `kill(pid, 0)` can't tell a
        // zombie from a live process, so reap via try_wait and require a
        // *clean* exit (an orphan would have to be SIGKILLed).
        let mut t = ProcTransport::spawn(2, &spec()).unwrap();
        for link in t.links.iter_mut().flatten() {
            let _ = link.stream.shutdown(std::net::Shutdown::Both);
        }
        let deadline = Instant::now() + Duration::from_secs(10);
        for child in &mut t.children {
            let status = loop {
                match child.try_wait().unwrap() {
                    Some(status) => break status,
                    None => {
                        assert!(
                            Instant::now() < deadline,
                            "worker did not exit on driver EOF"
                        );
                        std::thread::sleep(Duration::from_millis(10));
                    }
                }
            };
            assert!(status.success(), "worker must exit cleanly on EOF");
        }
    }
}

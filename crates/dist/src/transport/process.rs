//! The multi-process shared-nothing transport backend.
//!
//! [`ProcTransport::spawn`] launches `p` real OS worker processes, each
//! with its own address space, connected to this (driver) process over a
//! Unix-domain socket. Requests and replies travel as hand-rolled
//! little-endian frames ([`super::wire`]); tensor payloads round-trip
//! exactly, so results assembled from worker replies are bitwise-identical
//! to the in-process backend.
//!
//! Workers are spawned two ways ([`SpawnSpec`]):
//!
//! * [`SpawnSpec::WorkerBinary`] — run the `tt-dist-worker` binary that
//!   ships with this crate (looked up next to the current executable, or
//!   via `TT_DIST_WORKER_EXE`);
//! * [`SpawnSpec::SelfExec`] — re-execute the *current* executable with
//!   the given extra arguments. The host must call
//!   [`super::maybe_serve`] before doing anything else; test binaries
//!   expose a `#[test] fn spawned_worker_entry()` that calls it and pass
//!   `["spawned_worker_entry"]` as the filter argument.

#![cfg(unix)]

use super::wire::{read_frame, write_frame, Dec};
use super::worker::{Request, ENV_RANK, ENV_SOCKET};
use super::{SpawnSpec, Transport};
use crate::{Error, Result};
use std::collections::{HashMap, VecDeque};
use std::io::{Read, Write};
use std::os::unix::net::{UnixListener, UnixStream};
use std::path::PathBuf;
use std::process::{Child, Command, Stdio};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration, Instant};

/// How long to wait for all spawned workers to connect back.
const CONNECT_TIMEOUT: Duration = Duration::from_secs(30);
/// How long to wait for workers to exit after a shutdown request.
const SHUTDOWN_GRACE: Duration = Duration::from_secs(5);

static SPAWN_COUNTER: AtomicU64 = AtomicU64::new(0);

/// One worker connection. The stream is kept **non-blocking** and every
/// wait loops through [`Link::pump`], so the driver keeps draining worker
/// replies even while it is still shipping requests. This is what makes
/// [`crate::Cluster::call_all`]'s send-everything-then-collect pattern
/// safe with large payloads: with blocking writes on both sides, a worker
/// blocked writing a big reply and a driver blocked writing the next big
/// request to the same (full) socket would deadlock permanently.
struct Link {
    stream: UnixStream,
    /// Bytes read off the socket that don't yet form a complete frame.
    rdbuf: Vec<u8>,
    /// Complete frames by tag, counter deltas already applied.
    pending: HashMap<u64, VecDeque<Vec<u8>>>,
}

impl Link {
    /// Drain whatever the socket currently holds into `pending` without
    /// blocking. Returns whether any bytes arrived.
    fn pump(&mut self, rank: usize) -> Result<bool> {
        let mut progress = false;
        let mut buf = [0u8; 64 * 1024];
        loop {
            match self.stream.read(&mut buf) {
                Ok(0) => {
                    return Err(Error::Transport(format!(
                        "rank {rank} closed the connection"
                    )))
                }
                Ok(n) => {
                    self.rdbuf.extend_from_slice(&buf[..n]);
                    progress = true;
                }
                Err(ref e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
                Err(ref e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                Err(e) => return Err(Error::Transport(format!("rank {rank} read: {e}"))),
            }
        }
        // peel complete `[tag][len][payload]` frames out of rdbuf
        while self.rdbuf.len() >= 16 {
            let len = u64::from_le_bytes(self.rdbuf[8..16].try_into().unwrap()) as usize;
            if self.rdbuf.len() < 16 + len {
                break;
            }
            let tag = u64::from_le_bytes(self.rdbuf[..8].try_into().unwrap());
            let payload = self.rdbuf[16..16 + len].to_vec();
            self.rdbuf.drain(..16 + len);
            // strip the worker's counter-delta prefix and replay it into
            // this process's global counters (exactly once per frame)
            let mut d = Dec::new(&payload);
            let flops = d.u64()?;
            let mem = d.u64()?;
            tt_tensor::counter::add_flops(flops);
            tt_tensor::counter::add_mem_traffic(mem);
            self.pending
                .entry(tag)
                .or_default()
                .push_back(payload[16..].to_vec());
        }
        Ok(progress)
    }

    /// Write one frame, pumping incoming replies whenever the socket's
    /// send buffer is full (the deadlock-avoidance half of the contract).
    fn write_pumping(&mut self, rank: usize, tag: u64, msg: &[u8]) -> Result<()> {
        let mut frame = Vec::with_capacity(16 + msg.len());
        frame.extend_from_slice(&tag.to_le_bytes());
        frame.extend_from_slice(&(msg.len() as u64).to_le_bytes());
        frame.extend_from_slice(msg);
        let mut off = 0usize;
        while off < frame.len() {
            match self.stream.write(&frame[off..]) {
                Ok(0) => return Err(Error::Transport(format!("rank {rank} write returned 0"))),
                Ok(n) => off += n,
                Err(ref e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                    if !self.pump(rank)? {
                        std::thread::sleep(Duration::from_micros(200));
                    }
                }
                Err(ref e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                Err(e) => return Err(Error::Transport(format!("rank {rank} write: {e}"))),
            }
        }
        Ok(())
    }
}

/// Multi-process implementation of [`Transport`].
pub struct ProcTransport {
    links: Vec<Link>,
    children: Vec<Child>,
    dir: PathBuf,
    next_tag: u64,
}

fn worker_exe() -> Result<PathBuf> {
    if let Ok(exe) = std::env::var("TT_DIST_WORKER_EXE") {
        let p = PathBuf::from(exe);
        if p.exists() {
            return Ok(p);
        }
        return Err(Error::Transport(format!(
            "TT_DIST_WORKER_EXE points at missing file {}",
            p.display()
        )));
    }
    let me = std::env::current_exe().map_err(|e| Error::Transport(format!("current_exe: {e}")))?;
    let mut candidates = Vec::new();
    if let Some(dir) = me.parent() {
        candidates.push(dir.join("tt-dist-worker"));
        // test binaries live in target/<profile>/deps/
        if let Some(up) = dir.parent() {
            candidates.push(up.join("tt-dist-worker"));
        }
    }
    candidates.into_iter().find(|p| p.exists()).ok_or_else(|| {
        Error::Transport(
            "tt-dist-worker binary not found next to the current executable; \
             build it with `cargo build -p tt-dist --bin tt-dist-worker` or \
             use SpawnSpec::SelfExec"
                .into(),
        )
    })
}

impl ProcTransport {
    /// Spawn `ranks` worker processes and wait for them all to connect.
    pub fn spawn(ranks: usize, spec: &SpawnSpec) -> Result<Self> {
        let ranks = ranks.max(1);
        let dir = std::env::temp_dir().join(format!(
            "tt-dist-{}-{}",
            std::process::id(),
            SPAWN_COUNTER.fetch_add(1, Ordering::Relaxed)
        ));
        std::fs::create_dir_all(&dir)
            .map_err(|e| Error::Transport(format!("create {}: {e}", dir.display())))?;
        let sock = dir.join("hub.sock");
        let listener = UnixListener::bind(&sock)
            .map_err(|e| Error::Transport(format!("bind {}: {e}", sock.display())))?;
        listener
            .set_nonblocking(true)
            .map_err(|e| Error::Transport(format!("listener nonblocking: {e}")))?;

        let mut children = Vec::with_capacity(ranks);
        for rank in 0..ranks {
            let mut cmd = match spec {
                SpawnSpec::WorkerBinary => Command::new(worker_exe()?),
                SpawnSpec::SelfExec(args) => {
                    let me = std::env::current_exe()
                        .map_err(|e| Error::Transport(format!("current_exe: {e}")))?;
                    let mut c = Command::new(me);
                    c.args(args);
                    c
                }
            };
            let child = cmd
                .env(ENV_SOCKET, &sock)
                .env(ENV_RANK, rank.to_string())
                .stdin(Stdio::null())
                // test-harness hosts print their own banner on stdout,
                // which is not part of the protocol (the socket is) —
                // silence it; diagnostics go to the inherited stderr
                .stdout(Stdio::null())
                .spawn()
                .map_err(|e| Error::Transport(format!("spawn worker {rank}: {e}")))?;
            children.push(child);
        }

        // accept connections until every rank said hello
        let mut slots: Vec<Option<Link>> = (0..ranks).map(|_| None).collect();
        let mut connected = 0;
        let deadline = Instant::now() + CONNECT_TIMEOUT;
        while connected < ranks {
            match listener.accept() {
                Ok((mut stream, _)) => {
                    stream
                        .set_nonblocking(false)
                        .map_err(|e| Error::Transport(format!("stream blocking mode: {e}")))?;
                    let (tag, hello) = read_frame(&mut stream)?;
                    if tag != 0 {
                        return Err(Error::Transport("worker hello had nonzero tag".into()));
                    }
                    let rank = super::wire::Dec::new(&hello).u64()? as usize;
                    if rank >= ranks || slots[rank].is_some() {
                        return Err(Error::Transport(format!("bad hello rank {rank}")));
                    }
                    // all further traffic goes through the pumping
                    // non-blocking reader/writer (see Link)
                    stream
                        .set_nonblocking(true)
                        .map_err(|e| Error::Transport(format!("stream nonblocking mode: {e}")))?;
                    slots[rank] = Some(Link {
                        stream,
                        rdbuf: Vec::new(),
                        pending: HashMap::new(),
                    });
                    connected += 1;
                }
                Err(ref e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                    for (rank, child) in children.iter_mut().enumerate() {
                        if let Ok(Some(status)) = child.try_wait() {
                            return Err(Error::Transport(format!(
                                "worker {rank} exited before connecting ({status})"
                            )));
                        }
                    }
                    if Instant::now() > deadline {
                        return Err(Error::Transport(format!(
                            "workers failed to connect within {CONNECT_TIMEOUT:?} \
                             ({connected}/{ranks} connected)"
                        )));
                    }
                    std::thread::sleep(Duration::from_millis(5));
                }
                Err(e) => return Err(Error::Transport(format!("accept: {e}"))),
            }
        }
        let links = slots
            .into_iter()
            .map(|s| s.expect("all connected"))
            .collect();
        Ok(Self {
            links,
            children,
            dir,
            next_tag: 1,
        })
    }

    /// Process ids of the live worker children (diagnostics/tests).
    pub fn worker_pids(&self) -> Vec<u32> {
        self.children.iter().map(|c| c.id()).collect()
    }
}

impl Transport for ProcTransport {
    fn ranks(&self) -> usize {
        self.links.len()
    }

    fn next_tag(&mut self) -> u64 {
        let t = self.next_tag;
        self.next_tag += 1;
        t
    }

    fn send(&mut self, to: usize, tag: u64, msg: &[u8]) -> Result<()> {
        let link = self
            .links
            .get_mut(to)
            .ok_or_else(|| Error::Transport(format!("no rank {to}")))?;
        link.write_pumping(to, tag, msg)
    }

    fn recv(&mut self, from: usize, tag: u64) -> Result<Vec<u8>> {
        let link = self
            .links
            .get_mut(from)
            .ok_or_else(|| Error::Transport(format!("no rank {from}")))?;
        loop {
            if let Some(q) = link.pending.get_mut(&tag) {
                if let Some(msg) = q.pop_front() {
                    return Ok(msg);
                }
            }
            if !link.pump(from)? {
                std::thread::sleep(Duration::from_micros(200));
            }
        }
    }
}

impl Drop for ProcTransport {
    fn drop(&mut self) {
        let shutdown = Request::Shutdown.encode();
        for link in &mut self.links {
            // best-effort (non-blocking stream may refuse); closing the
            // sockets below makes workers exit on EOF regardless
            let _ = write_frame(&mut link.stream, u64::MAX, &shutdown);
        }
        self.links.clear();
        let deadline = Instant::now() + SHUTDOWN_GRACE;
        for child in &mut self.children {
            loop {
                match child.try_wait() {
                    Ok(Some(_)) => break,
                    Ok(None) if Instant::now() > deadline => {
                        let _ = child.kill();
                        let _ = child.wait();
                        break;
                    }
                    Ok(None) => std::thread::sleep(Duration::from_millis(5)),
                    Err(_) => break,
                }
            }
        }
        let _ = std::fs::remove_dir_all(&self.dir);
    }
}

#[cfg(test)]
mod tests {
    use super::super::worker::Reply;
    use super::*;

    /// Self-exec hook: when the lib test binary is re-executed as a
    /// worker, this "test" becomes the serve loop (no-op otherwise).
    #[test]
    fn spawned_worker_entry() {
        super::super::maybe_serve();
    }

    fn spec() -> SpawnSpec {
        SpawnSpec::SelfExec(vec!["spawned_worker_entry".into()])
    }

    #[test]
    fn real_processes_roundtrip_store_and_kernels() {
        let mut t = ProcTransport::spawn(2, &spec()).unwrap();
        assert_eq!(t.ranks(), 2);
        let my_pid = std::process::id();
        for pid in t.worker_pids() {
            assert_ne!(pid, my_pid, "workers must be separate OS processes");
        }
        // per-rank stores are genuinely disjoint address spaces
        for r in 0..2 {
            let tag = t.next_tag();
            t.send(
                r,
                tag,
                &Request::Put {
                    key: 7,
                    data: vec![r as f64 + 0.5],
                }
                .encode(),
            )
            .unwrap();
            assert_eq!(
                Reply::decode(&t.recv(r, tag).unwrap()).unwrap(),
                Reply::Unit
            );
        }
        for r in 0..2 {
            let tag = t.next_tag();
            t.send(r, tag, &Request::Get { key: 7 }.encode()).unwrap();
            assert_eq!(
                Reply::decode(&t.recv(r, tag).unwrap()).unwrap(),
                Reply::F64s(vec![r as f64 + 0.5])
            );
        }
        // complex payloads cross the socket bitwise
        let c = vec![tt_tensor::Complex64::new(1.0 / 3.0, -0.0)];
        let tag = t.next_tag();
        t.send(
            0,
            tag,
            &Request::PutC64 {
                key: 1,
                data: c.clone(),
            }
            .encode(),
        )
        .unwrap();
        t.recv(0, tag).unwrap();
        let tag = t.next_tag();
        t.send(0, tag, &Request::GetC64 { key: 1 }.encode())
            .unwrap();
        let Reply::C64s(back) = Reply::decode(&t.recv(0, tag).unwrap()).unwrap() else {
            panic!("expected complex payload");
        };
        assert_eq!(back[0].re.to_bits(), c[0].re.to_bits());
        assert_eq!(back[0].im.to_bits(), c[0].im.to_bits());
    }

    #[test]
    fn large_pipelined_payloads_do_not_deadlock() {
        // Regression test for the call_all deadlock: ship several large
        // requests to one rank *before* reading any reply, interleaved
        // with requests whose replies are large. With blocking writes on
        // both ends, the worker blocks writing reply 2 (~1.6 MB ≫ the
        // socket buffer) while the driver blocks writing request 3 — the
        // pumping writer must drain replies to make progress.
        let mut t = ProcTransport::spawn(1, &spec()).unwrap();
        let big: Vec<f64> = (0..200_000).map(|i| i as f64 * 0.5).collect();
        let mut tags = Vec::new();
        for round in 0..3u64 {
            let put = t.next_tag();
            t.send(
                0,
                put,
                &Request::Put {
                    key: round,
                    data: big.clone(),
                }
                .encode(),
            )
            .unwrap();
            let get = t.next_tag();
            t.send(0, get, &Request::Get { key: round }.encode())
                .unwrap();
            tags.push((put, get));
        }
        for (put, get) in tags {
            assert_eq!(
                Reply::decode(&t.recv(0, put).unwrap()).unwrap(),
                Reply::Unit
            );
            let Reply::F64s(back) = Reply::decode(&t.recv(0, get).unwrap()).unwrap() else {
                panic!("expected payload");
            };
            assert_eq!(back.len(), big.len());
            assert_eq!(back[123_456].to_bits(), big[123_456].to_bits());
        }
    }

    #[test]
    fn worker_flop_counts_propagate_to_the_driver() {
        // a DenseChunk runs its GEMM in the worker process; the reply's
        // counter-delta prefix must land in this process's global counter
        // (lower bound, not equality: other tests share the global
        // counter and libtest runs them concurrently)
        let mut t = ProcTransport::spawn(1, &spec()).unwrap();
        let (rows, k, n) = (64usize, 64usize, 64usize);
        let guard = tt_tensor::FlopGuard::start();
        let tag = t.next_tag();
        t.send(
            0,
            tag,
            &Request::DenseChunk {
                path: tt_tensor::gemm::GemmPath::Scalar,
                rows,
                k,
                n,
                a: crate::transport::worker::OpF::Inline(vec![1.0; rows * k]),
                b: crate::transport::worker::OpF::Inline(vec![1.0; k * n]),
            }
            .encode(),
        )
        .unwrap();
        t.recv(0, tag).unwrap();
        assert!(guard.elapsed() >= 2 * (rows * k * n) as u64);
    }

    #[test]
    fn out_of_order_replies_are_buffered_by_tag() {
        let mut t = ProcTransport::spawn(1, &spec()).unwrap();
        let t1 = t.next_tag();
        let t2 = t.next_tag();
        t.send(
            0,
            t1,
            &Request::Put {
                key: 1,
                data: vec![1.0],
            }
            .encode(),
        )
        .unwrap();
        t.send(
            0,
            t2,
            &Request::Put {
                key: 2,
                data: vec![2.0],
            }
            .encode(),
        )
        .unwrap();
        // receive the second reply first: the first must be stashed
        assert_eq!(Reply::decode(&t.recv(0, t2).unwrap()).unwrap(), Reply::Unit);
        assert_eq!(Reply::decode(&t.recv(0, t1).unwrap()).unwrap(), Reply::Unit);
    }

    #[test]
    fn worker_task_failure_does_not_kill_the_process() {
        let mut t = ProcTransport::spawn(1, &spec()).unwrap();
        let tag = t.next_tag();
        t.send(0, tag, &Request::Get { key: 404 }.encode()).unwrap();
        assert!(matches!(
            Reply::decode(&t.recv(0, tag).unwrap()).unwrap(),
            Reply::Fail(_)
        ));
        let tag = t.next_tag();
        t.send(0, tag, &Request::Ping.encode()).unwrap();
        assert_eq!(
            Reply::decode(&t.recv(0, tag).unwrap()).unwrap(),
            Reply::Pong
        );
    }
}

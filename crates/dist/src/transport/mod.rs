//! The communication substrate behind the distributed runtime.
//!
//! [`Transport`] abstracts how the driver process talks to `p` rank
//! endpoints: point-to-point `send`/`recv` of framed messages plus the
//! collectives the paper's algorithms lean on (`allreduce`, `allgather`,
//! `scatter`, `barrier`). Two backends implement it:
//!
//! * [`InProcTransport`] — the existing single-address-space simulation:
//!   ranks are in-memory kernel servers, requests execute synchronously,
//!   nothing crosses a process boundary;
//! * [`ProcTransport`] — the multi-process shared-nothing backend: `p`
//!   real OS worker processes connected over Unix-domain sockets, with
//!   hand-rolled little-endian framing for `f64`/`Complex64` tensor
//!   payloads (exact bit round-trip).
//!
//! The topology is a star rooted at the driver — the shape the
//! coordinator-driven [`Executor`](crate::Executor) actually uses. All
//! collectives are deterministic: `allreduce` sums contributions in rank
//! order, so its result is reproducible and identical across backends.
//! A future MPI backend is "swap this trait's implementation": the
//! executor-side routing does not change.

mod inproc;
#[cfg(unix)]
mod process;
pub(crate) mod wire;
pub(crate) mod worker;

pub use inproc::InProcTransport;
#[cfg(unix)]
pub use process::{FaultPlan, ProcOptions, ProcTransport};
pub use worker::maybe_serve;
#[cfg(unix)]
pub use worker::{serve_from_env, worker_loop};

use crate::{Error, Result};
use worker::{Reply, Request};

/// How the multi-process backend launches its worker processes.
#[derive(Clone, Debug)]
pub enum SpawnSpec {
    /// Run the `tt-dist-worker` binary that ships with this crate (looked
    /// up next to the current executable or one directory up, overridable
    /// via `TT_DIST_WORKER_EXE`).
    WorkerBinary,
    /// Re-execute the current executable with these extra arguments; the
    /// host must call [`maybe_serve`] before doing anything else (test
    /// binaries expose a `#[test] fn spawned_worker_entry()` that calls it
    /// and pass `["spawned_worker_entry"]` as the libtest filter).
    SelfExec(Vec<String>),
}

/// A driver-side communicator over `p` rank endpoints.
///
/// `send`/`recv` move encoded worker-protocol messages
/// (`crate::transport::worker`) to and from one rank under a caller-chosen
/// tag; tags let multiple requests be in flight per rank (replies carry
/// the request's tag). The provided collectives operate on each rank's
/// keyed buffer store and are implemented *once*, purely in terms of
/// `send`/`recv`, so every backend shares their semantics by construction.
pub trait Transport: Send {
    /// Number of rank endpoints.
    fn ranks(&self) -> usize;

    /// A fresh, never-reused message tag.
    fn next_tag(&mut self) -> u64;

    /// Queue `msg` for rank `to` under `tag`.
    fn send(&mut self, to: usize, tag: u64, msg: &[u8]) -> Result<()>;

    /// Blocking-receive the reply from rank `from` under `tag`.
    fn recv(&mut self, from: usize, tag: u64) -> Result<Vec<u8>>;

    /// Whether dead ranks can be brought back ([`Transport::respawn`] /
    /// [`Transport::retire`]). When true, the driver-side [`Cluster`]
    /// journals state-mutating requests so a respawned rank's resident
    /// store can be reconstructed; when false (the in-process backend,
    /// whose ranks cannot die) no journal is kept.
    ///
    /// [`Cluster`]: crate::Cluster
    fn supports_recovery(&self) -> bool {
        false
    }

    /// Replace the endpoint serving `rank` with a fresh one (respawn the
    /// worker process), discarding whatever state it held. The caller is
    /// responsible for reconstructing resident state afterwards.
    fn respawn(&mut self, rank: usize) -> Result<()> {
        Err(Error::fault(
            crate::FaultKind::Spawn,
            rank,
            "this transport cannot respawn ranks",
        ))
    }

    /// Permanently retire a failed rank, re-routing its logical id onto a
    /// surviving endpoint (degraded operation: placement, keys and cost
    /// charges all stay in logical rank space). Returns the physical
    /// endpoint index now serving the rank.
    fn retire(&mut self, rank: usize) -> Result<usize> {
        Err(Error::fault(
            crate::FaultKind::Spawn,
            rank,
            "this transport cannot retire ranks",
        ))
    }

    /// The logical ranks served by the same physical endpoint as `rank`
    /// (including `rank` itself). When a worker dies, *all* of its
    /// logical ranks lose their resident state and must be reconstructed;
    /// degradation ([`Transport::retire`]) is what makes this set grow
    /// beyond the singleton.
    fn peers(&self, rank: usize) -> Vec<usize> {
        vec![rank]
    }

    /// Bound every blocking receive (and stalled send) by `deadline`, so a
    /// dead or wedged rank surfaces as a typed [`FaultKind::Timeout`] /
    /// [`FaultKind::WorkerDied`] fault instead of a hang. No-op on
    /// transports whose operations cannot block.
    ///
    /// [`FaultKind::Timeout`]: crate::FaultKind::Timeout
    /// [`FaultKind::WorkerDied`]: crate::FaultKind::WorkerDied
    fn set_deadline(&mut self, _deadline: std::time::Duration) {}

    /// Rendezvous with every rank: each must answer a ping before any
    /// result is returned.
    fn barrier(&mut self) -> Result<()> {
        let tags = send_all_same(self, &Request::Ping)?;
        for (rank, tag) in tags.into_iter().enumerate() {
            match recv_reply(self, rank, tag)? {
                Reply::Pong => {}
                other => {
                    return Err(Error::transport(format!(
                        "barrier: rank {rank} answered {other:?}"
                    )))
                }
            }
        }
        Ok(())
    }

    /// Scatter: store `parts[r]` under `key` on rank `r`. `parts` must
    /// have exactly one entry per rank.
    fn scatter(&mut self, key: u64, parts: &[Vec<f64>]) -> Result<()> {
        if parts.len() != self.ranks() {
            return Err(Error::transport(format!(
                "scatter wants {} parts, got {}",
                self.ranks(),
                parts.len()
            )));
        }
        let mut tags = Vec::with_capacity(parts.len());
        for (rank, part) in parts.iter().enumerate() {
            let tag = self.next_tag();
            self.send(
                rank,
                tag,
                &Request::Put {
                    key,
                    data: part.clone(),
                }
                .encode(),
            )?;
            tags.push(tag);
        }
        for (rank, tag) in tags.into_iter().enumerate() {
            match recv_reply(self, rank, tag)? {
                Reply::Unit => {}
                other => {
                    return Err(Error::transport(format!(
                        "rank {rank}: expected ack, got {other:?}"
                    )))
                }
            }
        }
        Ok(())
    }

    /// Allgather: concatenate every rank's buffer under `key` in rank
    /// order, redistribute the concatenation to all ranks under the same
    /// key, and return it.
    fn allgather(&mut self, key: u64) -> Result<Vec<f64>> {
        let parts = gather_parts(self, key)?;
        let gathered: Vec<f64> = parts.into_iter().flatten().collect();
        let copies = vec![gathered.clone(); self.ranks()];
        self.scatter(key, &copies)?;
        Ok(gathered)
    }

    /// Allreduce: elementwise sum of every rank's buffer under `key`,
    /// accumulated **in rank order** (deterministic), stored back on all
    /// ranks under the same key, and returned.
    fn allreduce(&mut self, key: u64) -> Result<Vec<f64>> {
        let parts = gather_parts(self, key)?;
        let mut sum = parts[0].clone();
        for (rank, part) in parts.iter().enumerate().skip(1) {
            if part.len() != sum.len() {
                return Err(Error::transport(format!(
                    "allreduce: rank {rank} holds {} words, rank 0 holds {}",
                    part.len(),
                    sum.len()
                )));
            }
            for (s, x) in sum.iter_mut().zip(part) {
                *s += x;
            }
        }
        let copies = vec![sum.clone(); self.ranks()];
        self.scatter(key, &copies)?;
        Ok(sum)
    }
}

// -- helpers shared by the provided collectives --------------------------

/// Send the same request to every rank; returns the per-rank tags.
fn send_all_same(t: &mut (impl Transport + ?Sized), req: &Request) -> Result<Vec<u64>> {
    let bytes = req.encode();
    let mut tags = Vec::with_capacity(t.ranks());
    for rank in 0..t.ranks() {
        let tag = t.next_tag();
        t.send(rank, tag, &bytes)?;
        tags.push(tag);
    }
    Ok(tags)
}

/// Receive and decode one reply, surfacing worker-side failures.
fn recv_reply(t: &mut (impl Transport + ?Sized), rank: usize, tag: u64) -> Result<Reply> {
    match Reply::decode(&t.recv(rank, tag)?)? {
        Reply::Fail(msg) => Err(Error::transport(format!("rank {rank}: {msg}"))),
        reply => Ok(reply),
    }
}

/// Fetch every rank's buffer under `key`, in rank order.
fn gather_parts(t: &mut (impl Transport + ?Sized), key: u64) -> Result<Vec<Vec<f64>>> {
    let tags = send_all_same(t, &Request::Get { key })?;
    let mut parts = Vec::with_capacity(tags.len());
    for (rank, tag) in tags.into_iter().enumerate() {
        match recv_reply(t, rank, tag)? {
            Reply::F64s(v) => parts.push(v),
            other => {
                return Err(Error::transport(format!(
                    "rank {rank}: expected buffer, got {other:?}"
                )))
            }
        }
    }
    Ok(parts)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn seed_ranks(t: &mut dyn Transport, key: u64, per_rank: usize) {
        let parts: Vec<Vec<f64>> = (0..t.ranks())
            .map(|r| {
                (0..per_rank)
                    .map(|i| (r * per_rank + i) as f64 + 0.25)
                    .collect()
            })
            .collect();
        t.scatter(key, &parts).unwrap();
    }

    fn exercise_collectives(t: &mut dyn Transport) {
        let p = t.ranks();
        t.barrier().unwrap();

        seed_ranks(t, 10, 3);
        let gathered = t.allgather(10).unwrap();
        assert_eq!(gathered.len(), 3 * p);
        for (i, v) in gathered.iter().enumerate() {
            assert_eq!(*v, i as f64 + 0.25);
        }

        seed_ranks(t, 11, 4);
        let sum = t.allreduce(11).unwrap();
        for (i, v) in sum.iter().enumerate() {
            let expect: f64 = (0..p).map(|r| (r * 4 + i) as f64 + 0.25).sum();
            assert_eq!(v.to_bits(), expect.to_bits(), "rank-order sum is exact");
        }
        // every rank now holds the reduction
        let again = gather_parts(t, 11).unwrap();
        for part in again {
            assert_eq!(part, sum);
        }
    }

    #[test]
    fn in_process_collectives() {
        let mut t = InProcTransport::new(4);
        exercise_collectives(&mut t);
    }

    #[cfg(unix)]
    #[test]
    fn multi_process_collectives_match_in_process() {
        let spec = SpawnSpec::SelfExec(vec!["spawned_worker_entry".into()]);
        let mut mp = ProcTransport::spawn(3, &spec).unwrap();
        exercise_collectives(&mut mp);
        // identical reduction bits across backends
        let mut ip = InProcTransport::new(3);
        seed_ranks(&mut ip, 11, 4);
        let ip_sum = ip.allreduce(11).unwrap();
        seed_ranks(&mut mp, 21, 4);
        let mp_sum = mp.allreduce(21).unwrap();
        assert_eq!(
            ip_sum.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
            mp_sum.iter().map(|v| v.to_bits()).collect::<Vec<_>>()
        );
    }

    #[test]
    fn scatter_arity_is_checked() {
        let mut t = InProcTransport::new(2);
        assert!(t.scatter(1, &[vec![1.0]]).is_err());
    }
}

//! The rank-side task protocol.
//!
//! A worker (one rank of the shared-nothing backend) is a small kernel
//! server: it holds a keyed store of resident buffers and executes the
//! same deterministic chunk kernels as the in-process executor —
//! [`crate::kernels::dense_chunk`], [`crate::kernels::sd_chunk`],
//! [`crate::kernels::ss_chunk`], whole-matrix factorizations and resident
//! SUMMA slab updates. Because both backends run *exactly* this code over
//! *exactly* the same work decomposition, multi-process results are
//! bitwise-identical to the in-process Sequential executor.
//!
//! Every bulk operand of a compute task is an [`OpF`] / [`OpC`] /
//! [`OpCoords`] / [`OpSs`] — either **inline** bytes (the value-passing
//! path) or a **key** into the rank's resident store (the handle path:
//! the operand was pinned by an earlier `Upload*` request and ships zero
//! bytes with the task). The store is refcounted and LRU-bounded:
//! `Upload*` pins (refcount +1), `Release` unpins, `Free` drops
//! outright — the driver's `Executor::free` sends `Free`, since it
//! forgets the buffer homes and could never reference the copies again;
//! `Release` is the unpin primitive a transport that *does* retain homes
//! (e.g. a future MPI backend) would use. Unpinned entries are evicted
//! in deterministic least-recently-used order whenever the store's byte
//! footprint exceeds its cap.
//!
//! The same [`WorkerState`] is driven two ways:
//!
//! * in-process: [`super::InProcTransport`] calls [`WorkerState::handle`]
//!   directly (one address space, no sockets);
//! * multi-process: [`worker_loop`] drives it from framed requests on a
//!   Unix-domain socket, inside a separate OS process spawned by
//!   [`super::ProcTransport`].

use super::wire::{read_frame, write_frame, Dec, Enc};
use crate::kernels;
use crate::{Error, Result};
use std::collections::HashMap;
use std::sync::Arc;
use tt_linalg::TruncSpec;
use tt_tensor::einsum::ContractPlan;
use tt_tensor::gemm::GemmPath;
use tt_tensor::ssmerge::SsBTable;
use tt_tensor::{Complex64, DenseTensor};

/// Environment variable carrying the hub socket path to spawned workers.
pub const ENV_SOCKET: &str = "TT_DIST_WORKER_SOCKET";
/// Environment variable carrying the worker's rank id.
pub const ENV_RANK: &str = "TT_DIST_WORKER_RANK";

/// Default byte cap of a rank's resident store (unpinned entries beyond
/// this are evicted LRU-first; pinned entries are exempt).
pub(crate) const DEFAULT_CACHE_CAP: u64 = 1 << 30;

/// An `f64` buffer operand: inline payload or resident-store key.
#[derive(Clone, Debug, PartialEq)]
pub(crate) enum OpF {
    /// The bytes travel with the task.
    Inline(Vec<f64>),
    /// The operand is resident on the rank under this key.
    Key(u64),
}

/// A [`Complex64`] buffer operand.
#[derive(Clone, Debug, PartialEq)]
pub(crate) enum OpC {
    Inline(Vec<Complex64>),
    Key(u64),
}

/// A sparse-coordinate bucket operand (`(row, col, value)` triples as
/// three parallel arrays).
#[derive(Clone, Debug, PartialEq)]
pub(crate) enum OpCoords {
    Inline {
        rows: Vec<u64>,
        cols: Vec<u64>,
        vals: Vec<f64>,
    },
    Key(u64),
}

/// A grouped sparse-sparse `B` operand (`keys`/`lens` index the flattened
/// `cols`/`vals`, output offsets already resolved).
#[derive(Clone, Debug, PartialEq)]
pub(crate) enum OpSs {
    Inline {
        keys: Vec<u64>,
        lens: Vec<u64>,
        cols: Vec<u64>,
        vals: Vec<f64>,
    },
    Key(u64),
}

/// A request shipped to one rank.
#[derive(Clone, Debug, PartialEq)]
pub(crate) enum Request {
    /// Liveness / barrier probe.
    Ping,
    /// Store an `f64` buffer under `key` (unpinned — evictable).
    Put { key: u64, data: Vec<f64> },
    /// Fetch the `f64` buffer under `key`.
    Get { key: u64 },
    /// Drop the buffer under `key` unconditionally (any payload type).
    Free { key: u64 },
    /// Store a [`Complex64`] buffer under `key` (unpinned).
    PutC64 { key: u64, data: Vec<Complex64> },
    /// Fetch the [`Complex64`] buffer under `key`.
    GetC64 { key: u64 },
    /// Pin an `f64` buffer under `key` (refcount +1).
    Upload { key: u64, data: Vec<f64> },
    /// Pin a [`Complex64`] buffer under `key`.
    UploadC64 { key: u64, data: Vec<Complex64> },
    /// Pin a sparse-coordinate bucket under `key`.
    UploadCoords {
        key: u64,
        rows: Vec<u64>,
        cols: Vec<u64>,
        vals: Vec<f64>,
    },
    /// Pin a grouped sparse-sparse operand table under `key`.
    UploadSs {
        key: u64,
        keys: Vec<u64>,
        lens: Vec<u64>,
        cols: Vec<u64>,
        vals: Vec<f64>,
    },
    /// Unpin `key` (refcount −1); at zero the buffer becomes evictable.
    Release { key: u64 },
    /// Report the store's byte footprint and entry counts.
    CacheStats,
    /// Set the store's LRU byte cap.
    SetCacheCap { bytes: u64 },
    /// One row-slab of a dense TTGT contraction (`a` holds `rows` rows of
    /// the permuted A, `b` the full permuted B). Scatter and compute are
    /// fused: resident operands ship as keys, everything else rides in
    /// this one request.
    DenseChunk {
        path: GemmPath,
        rows: usize,
        k: usize,
        n: usize,
        a: OpF,
        b: OpF,
    },
    /// [`Request::DenseChunk`] over [`Complex64`] operands.
    DenseChunkC64 {
        path: GemmPath,
        rows: usize,
        k: usize,
        n: usize,
        a: OpC,
        b: OpC,
    },
    /// One whole dense contraction (the block-pair fan-out of the list
    /// algorithm ships each pair to a rank).
    DensePair {
        spec: String,
        a_dims: Vec<usize>,
        a: OpF,
        b_dims: Vec<usize>,
        b: OpF,
    },
    /// One volume-balanced sparse-dense bucket over rows `[r0, r1)`.
    SdChunk {
        r0: usize,
        r1: usize,
        n: usize,
        a: OpCoords,
        b: OpF,
    },
    /// One work-balanced sparse-sparse bucket (key-sorted `A` coords over
    /// fused rows `[r0, r1)`) merged against the sorted-run `B` table.
    /// `ax_*` map fused rows and `cx_*` map fused `B` free columns (width
    /// `n`) to output offsets.
    SsChunk {
        a: OpCoords,
        b: OpSs,
        r0: u64,
        r1: u64,
        n: u64,
        ax_dims: Vec<u64>,
        ax_strides: Vec<u64>,
        cx_dims: Vec<u64>,
        cx_strides: Vec<u64>,
        mask: Option<Vec<u64>>,
    },
    /// Thin QR of a `rows × cols` matrix.
    QrThin { rows: usize, cols: usize, a: OpF },
    /// Truncated SVD of a `rows × cols` matrix.
    SvdTrunc {
        rows: usize,
        cols: usize,
        a: OpF,
        max_rank: u64,
        cutoff: f64,
        min_keep: u64,
    },
    /// Allocate a zeroed resident SUMMA slab (`rows × n`) under `key`,
    /// pinned until freed.
    SummaInit { key: u64, rows: usize, n: usize },
    /// Accumulate one `k`-panel product into the resident slab: the
    /// `rows × w` A-slab panel times the `w × n` B panel.
    SummaPanel {
        key: u64,
        rows: usize,
        w: usize,
        n: usize,
        a: Vec<f64>,
        b: Vec<f64>,
    },
    /// One dense chain step: a whole TTGT contraction whose result does
    /// **not** return to the driver — it is written straight into the
    /// rank's resident store under the driver-issued `store` key (pinned).
    /// With `acc` the result is accumulated elementwise into the existing
    /// buffer under `store` (the block-list chains route every partial of
    /// one output block to one rank, in driver enumeration order, so the
    /// accumulation order matches the driver-side value path exactly).
    ChainDense {
        spec: String,
        a_dims: Vec<usize>,
        a: OpF,
        b_dims: Vec<usize>,
        b: OpF,
        store: u64,
        acc: bool,
    },
    /// [`Request::ChainDense`] over [`Complex64`] operands.
    ChainDenseC64 {
        spec: String,
        a_dims: Vec<usize>,
        a: OpC,
        b_dims: Vec<usize>,
        b: OpC,
        store: u64,
        acc: bool,
    },
    /// One sparse-dense chain step: the whole contraction (single bucket
    /// covering all `m` fused rows — bitwise-identical to any row-disjoint
    /// bucketing), with the dense operand permuted worker-side by
    /// `perm_b` and the result permuted to output order by `out_perm`
    /// before being stored under `store` (pinned).
    ChainSd {
        a: OpCoords,
        m: usize,
        n: usize,
        b_dims: Vec<usize>,
        perm_b: Vec<usize>,
        b: OpF,
        nat_dims: Vec<usize>,
        out_perm: Vec<usize>,
        store: u64,
    },
    /// Remove the buffer under `key` from the store and return its
    /// payload — the only value-returning exit of a chain. Unpins
    /// unconditionally (the driver forgets the home).
    Download { key: u64 },
    /// Terminate the worker loop.
    Shutdown,
}

/// A reply from one rank.
#[derive(Clone, Debug, PartialEq)]
pub(crate) enum Reply {
    /// Barrier acknowledgement.
    Pong,
    /// Success with no payload.
    Unit,
    /// An `f64` buffer.
    F64s(Vec<f64>),
    /// A [`Complex64`] buffer.
    C64s(Vec<Complex64>),
    /// Sparse output entries plus the flops the chunk executed.
    Entries {
        offs: Vec<u64>,
        vals: Vec<f64>,
        flops: u64,
    },
    /// A `(Q, R)` factor pair with explicit dimensions.
    Factors {
        q_rows: usize,
        q_cols: usize,
        q: Vec<f64>,
        r_rows: usize,
        r_cols: usize,
        r: Vec<f64>,
    },
    /// A truncated SVD.
    Svd {
        u_rows: usize,
        rank: usize,
        vt_cols: usize,
        u: Vec<f64>,
        s: Vec<f64>,
        vt: Vec<f64>,
        trunc_err: f64,
        n_discarded: u64,
    },
    /// Resident-store footprint and lifetime cache counters.
    Stats {
        bytes: u64,
        entries: u64,
        pinned: u64,
        pinned_bytes: u64,
        hits: u64,
        misses: u64,
        evictions: u64,
    },
    /// The task failed on the worker; the driver surfaces the message.
    Fail(String),
}

fn path_to_u8(p: GemmPath) -> u8 {
    match p {
        GemmPath::Gemv => 0,
        GemmPath::Scalar => 1,
        GemmPath::Packed => 2,
    }
}

fn path_from_u8(v: u8) -> Result<GemmPath> {
    match v {
        0 => Ok(GemmPath::Gemv),
        1 => Ok(GemmPath::Scalar),
        2 => Ok(GemmPath::Packed),
        _ => Err(Error::transport(format!("bad gemm path tag {v}"))),
    }
}

fn put_usizes(e: &mut Enc, v: &[usize]) {
    e.put_usize(v.len());
    for &x in v {
        e.put_usize(x);
    }
}

fn get_usizes(d: &mut Dec) -> Result<Vec<usize>> {
    let n = d.usize()?;
    (0..n).map(|_| d.usize()).collect()
}

impl OpF {
    fn put(&self, e: &mut Enc) {
        match self {
            OpF::Inline(v) => {
                e.put_u8(0);
                e.put_f64s(v);
            }
            OpF::Key(k) => {
                e.put_u8(1);
                e.put_u64(*k);
            }
        }
    }

    fn get(d: &mut Dec) -> Result<Self> {
        Ok(match d.u8()? {
            0 => OpF::Inline(d.f64s()?),
            1 => OpF::Key(d.u64()?),
            t => return Err(Error::transport(format!("bad operand tag {t}"))),
        })
    }
}

impl OpC {
    fn put(&self, e: &mut Enc) {
        match self {
            OpC::Inline(v) => {
                e.put_u8(0);
                e.put_c64s(v);
            }
            OpC::Key(k) => {
                e.put_u8(1);
                e.put_u64(*k);
            }
        }
    }

    fn get(d: &mut Dec) -> Result<Self> {
        Ok(match d.u8()? {
            0 => OpC::Inline(d.c64s()?),
            1 => OpC::Key(d.u64()?),
            t => return Err(Error::transport(format!("bad operand tag {t}"))),
        })
    }
}

impl OpCoords {
    fn put(&self, e: &mut Enc) {
        match self {
            OpCoords::Inline { rows, cols, vals } => {
                e.put_u8(0);
                e.put_u64s(rows);
                e.put_u64s(cols);
                e.put_f64s(vals);
            }
            OpCoords::Key(k) => {
                e.put_u8(1);
                e.put_u64(*k);
            }
        }
    }

    fn get(d: &mut Dec) -> Result<Self> {
        Ok(match d.u8()? {
            0 => OpCoords::Inline {
                rows: d.u64s()?,
                cols: d.u64s()?,
                vals: d.f64s()?,
            },
            1 => OpCoords::Key(d.u64()?),
            t => return Err(Error::transport(format!("bad operand tag {t}"))),
        })
    }
}

impl OpSs {
    fn put(&self, e: &mut Enc) {
        match self {
            OpSs::Inline {
                keys,
                lens,
                cols,
                vals,
            } => {
                e.put_u8(0);
                e.put_u64s(keys);
                e.put_u64s(lens);
                e.put_u64s(cols);
                e.put_f64s(vals);
            }
            OpSs::Key(k) => {
                e.put_u8(1);
                e.put_u64(*k);
            }
        }
    }

    fn get(d: &mut Dec) -> Result<Self> {
        Ok(match d.u8()? {
            0 => OpSs::Inline {
                keys: d.u64s()?,
                lens: d.u64s()?,
                cols: d.u64s()?,
                vals: d.f64s()?,
            },
            1 => OpSs::Key(d.u64()?),
            t => return Err(Error::transport(format!("bad operand tag {t}"))),
        })
    }
}

impl Request {
    /// Operand payload bytes this request carries inline: tensor values,
    /// sparse coordinates, and SUMMA panels — the data-plane volume
    /// [`CostTracker::bytes_operands`](crate::CostTracker) meters. Key
    /// references, dims, specs, and other control framing count zero, so
    /// the meter reads what the driver actually *shipped*, and a request
    /// whose operands are all worker-resident ships nothing.
    pub(crate) fn payload_bytes(&self) -> usize {
        fn f(op: &OpF) -> usize {
            match op {
                OpF::Inline(v) => 8 * v.len(),
                OpF::Key(_) => 0,
            }
        }
        fn c(op: &OpC) -> usize {
            match op {
                OpC::Inline(v) => 16 * v.len(),
                OpC::Key(_) => 0,
            }
        }
        fn coords(op: &OpCoords) -> usize {
            match op {
                OpCoords::Inline { rows, cols, vals } => 8 * (rows.len() + cols.len() + vals.len()),
                OpCoords::Key(_) => 0,
            }
        }
        fn ss(op: &OpSs) -> usize {
            match op {
                OpSs::Inline {
                    keys,
                    lens,
                    cols,
                    vals,
                } => 8 * (keys.len() + lens.len() + cols.len() + vals.len()),
                OpSs::Key(_) => 0,
            }
        }
        match self {
            Request::Put { data, .. } | Request::Upload { data, .. } => 8 * data.len(),
            Request::PutC64 { data, .. } | Request::UploadC64 { data, .. } => 16 * data.len(),
            Request::UploadCoords {
                rows, cols, vals, ..
            } => 8 * (rows.len() + cols.len() + vals.len()),
            Request::UploadSs {
                keys,
                lens,
                cols,
                vals,
                ..
            } => 8 * (keys.len() + lens.len() + cols.len() + vals.len()),
            Request::DenseChunk { a, b, .. } | Request::DensePair { a, b, .. } => f(a) + f(b),
            Request::DenseChunkC64 { a, b, .. } => c(a) + c(b),
            Request::SdChunk { a, b, .. } => coords(a) + f(b),
            Request::SsChunk { a, b, .. } => coords(a) + ss(b),
            Request::QrThin { a, .. } => f(a),
            Request::SvdTrunc { a, .. } => f(a),
            Request::SummaPanel { a, b, .. } => 8 * (a.len() + b.len()),
            Request::ChainDense { a, b, .. } => f(a) + f(b),
            Request::ChainDenseC64 { a, b, .. } => c(a) + c(b),
            Request::ChainSd { a, b, .. } => coords(a) + f(b),
            Request::Ping
            | Request::Get { .. }
            | Request::GetC64 { .. }
            | Request::Free { .. }
            | Request::Release { .. }
            | Request::CacheStats
            | Request::SetCacheCap { .. }
            | Request::SummaInit { .. }
            | Request::Download { .. }
            | Request::Shutdown => 0,
        }
    }

    /// Encode to the wire format.
    pub(crate) fn encode(&self) -> Vec<u8> {
        let mut e = Enc::new();
        match self {
            Request::Ping => e.put_u8(0),
            Request::Put { key, data } => {
                e.put_u8(1);
                e.put_u64(*key);
                e.put_f64s(data);
            }
            Request::Get { key } => {
                e.put_u8(2);
                e.put_u64(*key);
            }
            Request::Free { key } => {
                e.put_u8(3);
                e.put_u64(*key);
            }
            Request::PutC64 { key, data } => {
                e.put_u8(4);
                e.put_u64(*key);
                e.put_c64s(data);
            }
            Request::GetC64 { key } => {
                e.put_u8(5);
                e.put_u64(*key);
            }
            Request::DenseChunk {
                path,
                rows,
                k,
                n,
                a,
                b,
            } => {
                e.put_u8(6);
                e.put_u8(path_to_u8(*path));
                e.put_usize(*rows);
                e.put_usize(*k);
                e.put_usize(*n);
                a.put(&mut e);
                b.put(&mut e);
            }
            Request::DensePair {
                spec,
                a_dims,
                a,
                b_dims,
                b,
            } => {
                e.put_u8(7);
                e.put_str(spec);
                put_usizes(&mut e, a_dims);
                a.put(&mut e);
                put_usizes(&mut e, b_dims);
                b.put(&mut e);
            }
            Request::SdChunk { r0, r1, n, a, b } => {
                e.put_u8(8);
                e.put_usize(*r0);
                e.put_usize(*r1);
                e.put_usize(*n);
                a.put(&mut e);
                b.put(&mut e);
            }
            Request::SsChunk {
                a,
                b,
                r0,
                r1,
                n,
                ax_dims,
                ax_strides,
                cx_dims,
                cx_strides,
                mask,
            } => {
                e.put_u8(9);
                a.put(&mut e);
                b.put(&mut e);
                e.put_u64(*r0);
                e.put_u64(*r1);
                e.put_u64(*n);
                e.put_u64s(ax_dims);
                e.put_u64s(ax_strides);
                e.put_u64s(cx_dims);
                e.put_u64s(cx_strides);
                e.put_bool(mask.is_some());
                if let Some(m) = mask {
                    e.put_u64s(m);
                }
            }
            Request::QrThin { rows, cols, a } => {
                e.put_u8(10);
                e.put_usize(*rows);
                e.put_usize(*cols);
                a.put(&mut e);
            }
            Request::SvdTrunc {
                rows,
                cols,
                a,
                max_rank,
                cutoff,
                min_keep,
            } => {
                e.put_u8(11);
                e.put_usize(*rows);
                e.put_usize(*cols);
                a.put(&mut e);
                e.put_u64(*max_rank);
                e.put_f64(*cutoff);
                e.put_u64(*min_keep);
            }
            Request::SummaInit { key, rows, n } => {
                e.put_u8(12);
                e.put_u64(*key);
                e.put_usize(*rows);
                e.put_usize(*n);
            }
            Request::SummaPanel {
                key,
                rows,
                w,
                n,
                a,
                b,
            } => {
                e.put_u8(13);
                e.put_u64(*key);
                e.put_usize(*rows);
                e.put_usize(*w);
                e.put_usize(*n);
                e.put_f64s(a);
                e.put_f64s(b);
            }
            Request::Shutdown => e.put_u8(14),
            Request::DenseChunkC64 {
                path,
                rows,
                k,
                n,
                a,
                b,
            } => {
                e.put_u8(15);
                e.put_u8(path_to_u8(*path));
                e.put_usize(*rows);
                e.put_usize(*k);
                e.put_usize(*n);
                a.put(&mut e);
                b.put(&mut e);
            }
            Request::Upload { key, data } => {
                e.put_u8(16);
                e.put_u64(*key);
                e.put_f64s(data);
            }
            Request::UploadC64 { key, data } => {
                e.put_u8(17);
                e.put_u64(*key);
                e.put_c64s(data);
            }
            Request::UploadCoords {
                key,
                rows,
                cols,
                vals,
            } => {
                e.put_u8(18);
                e.put_u64(*key);
                e.put_u64s(rows);
                e.put_u64s(cols);
                e.put_f64s(vals);
            }
            Request::UploadSs {
                key,
                keys,
                lens,
                cols,
                vals,
            } => {
                e.put_u8(19);
                e.put_u64(*key);
                e.put_u64s(keys);
                e.put_u64s(lens);
                e.put_u64s(cols);
                e.put_f64s(vals);
            }
            Request::Release { key } => {
                e.put_u8(20);
                e.put_u64(*key);
            }
            Request::CacheStats => e.put_u8(21),
            Request::SetCacheCap { bytes } => {
                e.put_u8(22);
                e.put_u64(*bytes);
            }
            Request::ChainDense {
                spec,
                a_dims,
                a,
                b_dims,
                b,
                store,
                acc,
            } => {
                e.put_u8(23);
                e.put_str(spec);
                put_usizes(&mut e, a_dims);
                a.put(&mut e);
                put_usizes(&mut e, b_dims);
                b.put(&mut e);
                e.put_u64(*store);
                e.put_bool(*acc);
            }
            Request::ChainDenseC64 {
                spec,
                a_dims,
                a,
                b_dims,
                b,
                store,
                acc,
            } => {
                e.put_u8(24);
                e.put_str(spec);
                put_usizes(&mut e, a_dims);
                a.put(&mut e);
                put_usizes(&mut e, b_dims);
                b.put(&mut e);
                e.put_u64(*store);
                e.put_bool(*acc);
            }
            Request::ChainSd {
                a,
                m,
                n,
                b_dims,
                perm_b,
                b,
                nat_dims,
                out_perm,
                store,
            } => {
                e.put_u8(25);
                a.put(&mut e);
                e.put_usize(*m);
                e.put_usize(*n);
                put_usizes(&mut e, b_dims);
                put_usizes(&mut e, perm_b);
                b.put(&mut e);
                put_usizes(&mut e, nat_dims);
                put_usizes(&mut e, out_perm);
                e.put_u64(*store);
            }
            Request::Download { key } => {
                e.put_u8(26);
                e.put_u64(*key);
            }
        }
        e.finish()
    }

    /// Decode from the wire format.
    pub(crate) fn decode(bytes: &[u8]) -> Result<Self> {
        let mut d = Dec::new(bytes);
        let req = match d.u8()? {
            0 => Request::Ping,
            1 => Request::Put {
                key: d.u64()?,
                data: d.f64s()?,
            },
            2 => Request::Get { key: d.u64()? },
            3 => Request::Free { key: d.u64()? },
            4 => Request::PutC64 {
                key: d.u64()?,
                data: d.c64s()?,
            },
            5 => Request::GetC64 { key: d.u64()? },
            6 => Request::DenseChunk {
                path: path_from_u8(d.u8()?)?,
                rows: d.usize()?,
                k: d.usize()?,
                n: d.usize()?,
                a: OpF::get(&mut d)?,
                b: OpF::get(&mut d)?,
            },
            7 => Request::DensePair {
                spec: d.str()?,
                a_dims: get_usizes(&mut d)?,
                a: OpF::get(&mut d)?,
                b_dims: get_usizes(&mut d)?,
                b: OpF::get(&mut d)?,
            },
            8 => Request::SdChunk {
                r0: d.usize()?,
                r1: d.usize()?,
                n: d.usize()?,
                a: OpCoords::get(&mut d)?,
                b: OpF::get(&mut d)?,
            },
            9 => Request::SsChunk {
                a: OpCoords::get(&mut d)?,
                b: OpSs::get(&mut d)?,
                r0: d.u64()?,
                r1: d.u64()?,
                n: d.u64()?,
                ax_dims: d.u64s()?,
                ax_strides: d.u64s()?,
                cx_dims: d.u64s()?,
                cx_strides: d.u64s()?,
                mask: if d.bool()? { Some(d.u64s()?) } else { None },
            },
            10 => Request::QrThin {
                rows: d.usize()?,
                cols: d.usize()?,
                a: OpF::get(&mut d)?,
            },
            11 => Request::SvdTrunc {
                rows: d.usize()?,
                cols: d.usize()?,
                a: OpF::get(&mut d)?,
                max_rank: d.u64()?,
                cutoff: d.f64()?,
                min_keep: d.u64()?,
            },
            12 => Request::SummaInit {
                key: d.u64()?,
                rows: d.usize()?,
                n: d.usize()?,
            },
            13 => Request::SummaPanel {
                key: d.u64()?,
                rows: d.usize()?,
                w: d.usize()?,
                n: d.usize()?,
                a: d.f64s()?,
                b: d.f64s()?,
            },
            14 => Request::Shutdown,
            15 => Request::DenseChunkC64 {
                path: path_from_u8(d.u8()?)?,
                rows: d.usize()?,
                k: d.usize()?,
                n: d.usize()?,
                a: OpC::get(&mut d)?,
                b: OpC::get(&mut d)?,
            },
            16 => Request::Upload {
                key: d.u64()?,
                data: d.f64s()?,
            },
            17 => Request::UploadC64 {
                key: d.u64()?,
                data: d.c64s()?,
            },
            18 => Request::UploadCoords {
                key: d.u64()?,
                rows: d.u64s()?,
                cols: d.u64s()?,
                vals: d.f64s()?,
            },
            19 => Request::UploadSs {
                key: d.u64()?,
                keys: d.u64s()?,
                lens: d.u64s()?,
                cols: d.u64s()?,
                vals: d.f64s()?,
            },
            20 => Request::Release { key: d.u64()? },
            21 => Request::CacheStats,
            22 => Request::SetCacheCap { bytes: d.u64()? },
            23 => Request::ChainDense {
                spec: d.str()?,
                a_dims: get_usizes(&mut d)?,
                a: OpF::get(&mut d)?,
                b_dims: get_usizes(&mut d)?,
                b: OpF::get(&mut d)?,
                store: d.u64()?,
                acc: d.bool()?,
            },
            24 => Request::ChainDenseC64 {
                spec: d.str()?,
                a_dims: get_usizes(&mut d)?,
                a: OpC::get(&mut d)?,
                b_dims: get_usizes(&mut d)?,
                b: OpC::get(&mut d)?,
                store: d.u64()?,
                acc: d.bool()?,
            },
            25 => Request::ChainSd {
                a: OpCoords::get(&mut d)?,
                m: d.usize()?,
                n: d.usize()?,
                b_dims: get_usizes(&mut d)?,
                perm_b: get_usizes(&mut d)?,
                b: OpF::get(&mut d)?,
                nat_dims: get_usizes(&mut d)?,
                out_perm: get_usizes(&mut d)?,
                store: d.u64()?,
            },
            26 => Request::Download { key: d.u64()? },
            op => return Err(Error::transport(format!("unknown request opcode {op}"))),
        };
        Ok(req)
    }
}

impl Reply {
    /// Encode to the wire format.
    pub(crate) fn encode(&self) -> Vec<u8> {
        let mut e = Enc::new();
        match self {
            Reply::Pong => e.put_u8(0),
            Reply::Unit => e.put_u8(1),
            Reply::F64s(v) => {
                e.put_u8(2);
                e.put_f64s(v);
            }
            Reply::C64s(v) => {
                e.put_u8(3);
                e.put_c64s(v);
            }
            Reply::Entries { offs, vals, flops } => {
                e.put_u8(4);
                e.put_u64s(offs);
                e.put_f64s(vals);
                e.put_u64(*flops);
            }
            Reply::Factors {
                q_rows,
                q_cols,
                q,
                r_rows,
                r_cols,
                r,
            } => {
                e.put_u8(5);
                e.put_usize(*q_rows);
                e.put_usize(*q_cols);
                e.put_f64s(q);
                e.put_usize(*r_rows);
                e.put_usize(*r_cols);
                e.put_f64s(r);
            }
            Reply::Svd {
                u_rows,
                rank,
                vt_cols,
                u,
                s,
                vt,
                trunc_err,
                n_discarded,
            } => {
                e.put_u8(6);
                e.put_usize(*u_rows);
                e.put_usize(*rank);
                e.put_usize(*vt_cols);
                e.put_f64s(u);
                e.put_f64s(s);
                e.put_f64s(vt);
                e.put_f64(*trunc_err);
                e.put_u64(*n_discarded);
            }
            Reply::Fail(msg) => {
                e.put_u8(7);
                e.put_str(msg);
            }
            Reply::Stats {
                bytes,
                entries,
                pinned,
                pinned_bytes,
                hits,
                misses,
                evictions,
            } => {
                e.put_u8(8);
                e.put_u64(*bytes);
                e.put_u64(*entries);
                e.put_u64(*pinned);
                e.put_u64(*pinned_bytes);
                e.put_u64(*hits);
                e.put_u64(*misses);
                e.put_u64(*evictions);
            }
        }
        e.finish()
    }

    /// Decode from the wire format.
    pub(crate) fn decode(bytes: &[u8]) -> Result<Self> {
        let mut d = Dec::new(bytes);
        let rep = match d.u8()? {
            0 => Reply::Pong,
            1 => Reply::Unit,
            2 => Reply::F64s(d.f64s()?),
            3 => Reply::C64s(d.c64s()?),
            4 => Reply::Entries {
                offs: d.u64s()?,
                vals: d.f64s()?,
                flops: d.u64()?,
            },
            5 => Reply::Factors {
                q_rows: d.usize()?,
                q_cols: d.usize()?,
                q: d.f64s()?,
                r_rows: d.usize()?,
                r_cols: d.usize()?,
                r: d.f64s()?,
            },
            6 => Reply::Svd {
                u_rows: d.usize()?,
                rank: d.usize()?,
                vt_cols: d.usize()?,
                u: d.f64s()?,
                s: d.f64s()?,
                vt: d.f64s()?,
                trunc_err: d.f64()?,
                n_discarded: d.u64()?,
            },
            7 => Reply::Fail(d.str()?),
            8 => Reply::Stats {
                bytes: d.u64()?,
                entries: d.u64()?,
                pinned: d.u64()?,
                pinned_bytes: d.u64()?,
                hits: d.u64()?,
                misses: d.u64()?,
                evictions: d.u64()?,
            },
            op => return Err(Error::transport(format!("unknown reply opcode {op}"))),
        };
        Ok(rep)
    }
}

/// The grouped sparse-sparse `B` operand in its resident (decoded) form:
/// the flat sorted-run table the merge kernel consumes directly. The wire
/// shape (`keys`/`lens`/`cols`/`vals`) is already the table's internal
/// layout, so decoding is a validation pass plus a prefix-sum — no
/// per-entry tree inserts.
pub(crate) struct SsTable {
    pub(crate) table: SsBTable<f64>,
}

impl SsTable {
    /// Validating constructor for wire data ([`SsBTable::from_runs`] only
    /// `debug_assert`s its invariants; a malformed or malicious frame must
    /// surface as a transport error, not UB-adjacent nonsense).
    fn build(keys: Vec<u64>, lens: &[u64], cols: Vec<u64>, vals: Vec<f64>) -> Result<Self> {
        if cols.len() != vals.len() || keys.len() != lens.len() {
            return Err(Error::transport("ss group table mismatch"));
        }
        let total: u64 = lens.iter().sum();
        if total != cols.len() as u64 {
            return Err(Error::transport("ss group table mismatch"));
        }
        if !keys.windows(2).all(|w| w[0] < w[1]) {
            return Err(Error::transport(
                "ss group table keys not strictly ascending",
            ));
        }
        Ok(Self {
            table: SsBTable::from_runs(keys, lens, cols, vals),
        })
    }
}

/// One resident buffer.
enum Cached {
    F64(Arc<Vec<f64>>),
    C64(Arc<Vec<Complex64>>),
    Coords(Arc<Vec<kernels::Coord>>),
    Ss(Arc<SsTable>),
}

impl Cached {
    /// Deterministic byte accounting of the buffer.
    fn bytes(&self) -> u64 {
        match self {
            Cached::F64(v) => 8 * v.len() as u64,
            Cached::C64(v) => 16 * v.len() as u64,
            Cached::Coords(v) => 24 * v.len() as u64,
            Cached::Ss(t) => 16 * (t.table.n_entries() + t.table.n_keys()) as u64,
        }
    }
}

struct Entry {
    val: Cached,
    /// Pin count: >0 entries are never evicted.
    rc: u32,
    /// Logical LRU timestamp (unique per touch — eviction order is
    /// deterministic given the request sequence).
    last_use: u64,
}

/// One rank's resident state: a keyed buffer store with refcounts and an
/// LRU byte cap.
pub(crate) struct WorkerState {
    store: HashMap<u64, Entry>,
    clock: u64,
    bytes: u64,
    cap: u64,
    /// Keyed lookups served from the store (lifetime).
    hits: u64,
    /// Fresh insertions — key not already resident (lifetime).
    misses: u64,
    /// LRU evictions (lifetime).
    evictions: u64,
}

impl Default for WorkerState {
    fn default() -> Self {
        Self::with_cap(DEFAULT_CACHE_CAP)
    }
}

impl WorkerState {
    /// Fresh state with an empty store and the default byte cap.
    pub(crate) fn new() -> Self {
        Self::default()
    }

    /// Fresh state with an explicit LRU byte cap.
    pub(crate) fn with_cap(cap: u64) -> Self {
        Self {
            store: HashMap::new(),
            clock: 0,
            bytes: 0,
            cap,
            hits: 0,
            misses: 0,
            evictions: 0,
        }
    }

    fn tick(&mut self) -> u64 {
        self.clock += 1;
        self.clock
    }

    /// Insert (or replace) `key`; `pin` adds one to the refcount carried
    /// over from any replaced entry. Evicts LRU unpinned entries if the
    /// cap is now exceeded — but never the entry being inserted, so a
    /// staged buffer (a collective's `Put` part, even one bigger than
    /// the cap) always survives until at least the next insert on this
    /// rank, which is after the request that consumes it.
    fn insert(&mut self, key: u64, val: Cached, pin: bool) {
        let old_rc = match self.store.remove(&key) {
            Some(e) => {
                self.bytes -= e.val.bytes();
                e.rc
            }
            None => {
                self.misses += 1;
                0
            }
        };
        self.bytes += val.bytes();
        let last_use = self.tick();
        self.store.insert(
            key,
            Entry {
                val,
                rc: old_rc + pin as u32,
                last_use,
            },
        );
        self.evict(Some(key));
    }

    /// Evict unpinned entries in ascending last-use order until the store
    /// fits the cap (pinned entries are exempt and may exceed it;
    /// `keep` — the entry an in-flight insert staged — is never a victim).
    fn evict(&mut self, keep: Option<u64>) {
        while self.bytes > self.cap {
            let victim = self
                .store
                .iter()
                .filter(|(&k, e)| e.rc == 0 && Some(k) != keep)
                .min_by_key(|(_, e)| e.last_use)
                .map(|(&k, _)| k);
            match victim {
                Some(k) => {
                    let e = self.store.remove(&k).expect("victim present");
                    self.bytes -= e.val.bytes();
                    self.evictions += 1;
                }
                None => break, // everything left is pinned or staged
            }
        }
    }

    fn touch(&mut self, key: u64) -> Result<&Entry> {
        let stamp = self.tick();
        let e = self
            .store
            .get_mut(&key)
            .ok_or_else(|| Error::transport(format!("no buffer under key {key:#x}")))?;
        e.last_use = stamp;
        self.hits += 1;
        Ok(e)
    }

    fn get_f64(&mut self, key: u64) -> Result<Arc<Vec<f64>>> {
        match &self.touch(key)?.val {
            Cached::F64(v) => Ok(Arc::clone(v)),
            _ => Err(Error::transport(format!("key {key:#x} is not f64 data"))),
        }
    }

    fn get_c64(&mut self, key: u64) -> Result<Arc<Vec<Complex64>>> {
        match &self.touch(key)?.val {
            Cached::C64(v) => Ok(Arc::clone(v)),
            _ => Err(Error::transport(format!(
                "key {key:#x} is not Complex64 data"
            ))),
        }
    }

    fn get_coords(&mut self, key: u64) -> Result<Arc<Vec<kernels::Coord>>> {
        match &self.touch(key)?.val {
            Cached::Coords(v) => Ok(Arc::clone(v)),
            _ => Err(Error::transport(format!(
                "key {key:#x} is not a coordinate bucket"
            ))),
        }
    }

    fn get_ss(&mut self, key: u64) -> Result<Arc<SsTable>> {
        match &self.touch(key)?.val {
            Cached::Ss(v) => Ok(Arc::clone(v)),
            _ => Err(Error::transport(format!(
                "key {key:#x} is not a grouped ss operand"
            ))),
        }
    }

    /// Take a resolved operand by value: moves the buffer out when the
    /// `Arc` is unique (inline operands), copies only when it is shared
    /// (resident buffers, which must stay in the store).
    fn take<T: Clone>(buf: Arc<Vec<T>>) -> Vec<T> {
        Arc::try_unwrap(buf).unwrap_or_else(|a| a.as_ref().clone())
    }

    /// Resolve an [`OpF`] to owned-or-resident f64 data.
    fn opf(&mut self, op: OpF) -> Result<Arc<Vec<f64>>> {
        match op {
            OpF::Inline(v) => Ok(Arc::new(v)),
            OpF::Key(k) => self.get_f64(k),
        }
    }

    fn opc(&mut self, op: OpC) -> Result<Arc<Vec<Complex64>>> {
        match op {
            OpC::Inline(v) => Ok(Arc::new(v)),
            OpC::Key(k) => self.get_c64(k),
        }
    }

    fn opcoords(&mut self, op: OpCoords) -> Result<Arc<Vec<kernels::Coord>>> {
        match op {
            OpCoords::Inline { rows, cols, vals } => {
                if rows.len() != cols.len() || rows.len() != vals.len() {
                    return Err(Error::transport("coordinate arity mismatch"));
                }
                Ok(Arc::new(
                    rows.into_iter()
                        .zip(cols)
                        .zip(vals)
                        .map(|((r, c), v)| (r, c, v))
                        .collect(),
                ))
            }
            OpCoords::Key(k) => self.get_coords(k),
        }
    }

    fn opss(&mut self, op: OpSs) -> Result<Arc<SsTable>> {
        match op {
            OpSs::Inline {
                keys,
                lens,
                cols,
                vals,
            } => Ok(Arc::new(SsTable::build(keys, &lens, cols, vals)?)),
            OpSs::Key(k) => self.get_ss(k),
        }
    }

    /// Store a fresh resident result (pinned), or — with `acc` —
    /// accumulate elementwise into the existing buffer under `key`. The
    /// first partial of an output block is *stored*, not added to zeros
    /// (`-0.0 + 0.0` would flip sign bits), exactly like the driver-side
    /// value path inserts its first partial.
    fn store_f64(&mut self, key: u64, data: Vec<f64>, acc: bool) -> Result<()> {
        if !acc {
            self.insert(key, Cached::F64(Arc::new(data)), true);
            return Ok(());
        }
        let stamp = self.tick();
        let entry = self
            .store
            .get_mut(&key)
            .ok_or_else(|| Error::transport(format!("no chain result under key {key:#x}")))?;
        entry.last_use = stamp;
        let Cached::F64(buf) = &mut entry.val else {
            return Err(Error::transport("chain result has wrong payload type"));
        };
        if buf.len() != data.len() {
            return Err(Error::transport("chain partial shape mismatch"));
        }
        for (c, p) in Arc::make_mut(buf).iter_mut().zip(&data) {
            *c += p;
        }
        Ok(())
    }

    /// [`WorkerState::store_f64`] for [`Complex64`] results.
    fn store_c64(&mut self, key: u64, data: Vec<Complex64>, acc: bool) -> Result<()> {
        if !acc {
            self.insert(key, Cached::C64(Arc::new(data)), true);
            return Ok(());
        }
        let stamp = self.tick();
        let entry = self
            .store
            .get_mut(&key)
            .ok_or_else(|| Error::transport(format!("no chain result under key {key:#x}")))?;
        entry.last_use = stamp;
        let Cached::C64(buf) = &mut entry.val else {
            return Err(Error::transport("chain result has wrong payload type"));
        };
        if buf.len() != data.len() {
            return Err(Error::transport("chain partial shape mismatch"));
        }
        for (c, p) in Arc::make_mut(buf).iter_mut().zip(&data) {
            *c += *p;
        }
        Ok(())
    }

    /// Execute one request. Returns `None` only for [`Request::Shutdown`];
    /// every other request produces exactly one reply (failures become
    /// [`Reply::Fail`], so a worker never dies on a bad task).
    pub(crate) fn handle(&mut self, req: Request) -> Option<Reply> {
        if matches!(req, Request::Shutdown) {
            return None;
        }
        Some(self.run(req).unwrap_or_else(|e| Reply::Fail(e.to_string())))
    }

    fn run(&mut self, req: Request) -> Result<Reply> {
        match req {
            Request::Shutdown => unreachable!("handled in handle()"),
            Request::Ping => Ok(Reply::Pong),
            Request::Put { key, data } => {
                self.insert(key, Cached::F64(Arc::new(data)), false);
                Ok(Reply::Unit)
            }
            Request::Get { key } => Ok(Reply::F64s(self.get_f64(key)?.as_ref().clone())),
            Request::Free { key } => {
                if let Some(e) = self.store.remove(&key) {
                    self.bytes -= e.val.bytes();
                }
                Ok(Reply::Unit)
            }
            Request::PutC64 { key, data } => {
                self.insert(key, Cached::C64(Arc::new(data)), false);
                Ok(Reply::Unit)
            }
            Request::GetC64 { key } => Ok(Reply::C64s(self.get_c64(key)?.as_ref().clone())),
            Request::Upload { key, data } => {
                self.insert(key, Cached::F64(Arc::new(data)), true);
                Ok(Reply::Unit)
            }
            Request::UploadC64 { key, data } => {
                self.insert(key, Cached::C64(Arc::new(data)), true);
                Ok(Reply::Unit)
            }
            Request::UploadCoords {
                key,
                rows,
                cols,
                vals,
            } => {
                let coords = self.opcoords(OpCoords::Inline { rows, cols, vals })?;
                self.insert(key, Cached::Coords(coords), true);
                Ok(Reply::Unit)
            }
            Request::UploadSs {
                key,
                keys,
                lens,
                cols,
                vals,
            } => {
                let table = SsTable::build(keys, &lens, cols, vals)?;
                self.insert(key, Cached::Ss(Arc::new(table)), true);
                Ok(Reply::Unit)
            }
            Request::Release { key } => {
                // lenient: releasing an absent key is a no-op (the entry
                // can only be absent if it was never pinned)
                if let Some(e) = self.store.get_mut(&key) {
                    e.rc = e.rc.saturating_sub(1);
                }
                self.evict(None);
                Ok(Reply::Unit)
            }
            Request::CacheStats => Ok(Reply::Stats {
                bytes: self.bytes,
                entries: self.store.len() as u64,
                pinned: self.store.values().filter(|e| e.rc > 0).count() as u64,
                pinned_bytes: self
                    .store
                    .values()
                    .filter(|e| e.rc > 0)
                    .map(|e| e.val.bytes())
                    .sum(),
                hits: self.hits,
                misses: self.misses,
                evictions: self.evictions,
            }),
            Request::SetCacheCap { bytes } => {
                self.cap = bytes;
                self.evict(None);
                Ok(Reply::Unit)
            }
            Request::DenseChunk {
                path,
                rows,
                k,
                n,
                a,
                b,
            } => {
                let a = self.opf(a)?;
                let b = self.opf(b)?;
                if a.len() != rows * k || b.len() != k * n {
                    return Err(Error::transport("dense chunk operand size mismatch"));
                }
                Ok(Reply::F64s(kernels::dense_chunk(path, rows, k, n, &a, &b)))
            }
            Request::DenseChunkC64 {
                path,
                rows,
                k,
                n,
                a,
                b,
            } => {
                let a = self.opc(a)?;
                let b = self.opc(b)?;
                if a.len() != rows * k || b.len() != k * n {
                    return Err(Error::transport("dense chunk operand size mismatch"));
                }
                Ok(Reply::C64s(kernels::dense_chunk(path, rows, k, n, &a, &b)))
            }
            Request::DensePair {
                spec,
                a_dims,
                a,
                b_dims,
                b,
            } => {
                let plan = ContractPlan::parse(&spec)?;
                let a = self.opf(a)?;
                let b = self.opf(b)?;
                let ta = DenseTensor::from_vec(a_dims, Self::take(a))?;
                let tb = DenseTensor::from_vec(b_dims, Self::take(b))?;
                let c = kernels::dense_contract(&plan, &ta, &tb, None)?;
                Ok(Reply::F64s(c.into_data()))
            }
            Request::SdChunk { r0, r1, n, a, b } => {
                let bucket = self.opcoords(a)?;
                let b = self.opf(b)?;
                Ok(Reply::F64s(kernels::sd_chunk(r0, r1, n, &bucket, &b)))
            }
            Request::SsChunk {
                a,
                b,
                r0,
                r1,
                n,
                ax_dims,
                ax_strides,
                cx_dims,
                cx_strides,
                mask,
            } => {
                let bucket = self.opcoords(a)?;
                let table = self.opss(b)?;
                let row_axes: Vec<(u64, u64)> = ax_dims.into_iter().zip(ax_strides).collect();
                let col_axes: Vec<(u64, u64)> = cx_dims.into_iter().zip(cx_strides).collect();
                let (entries, flops) = kernels::ss_chunk(
                    &bucket,
                    &table.table,
                    r0 as usize,
                    r1 as usize,
                    n,
                    &row_axes,
                    &col_axes,
                    mask.as_deref(),
                );
                let (offs, vals) = entries.into_iter().unzip();
                Ok(Reply::Entries { offs, vals, flops })
            }
            Request::QrThin { rows, cols, a } => {
                let a = self.opf(a)?;
                let (q, r) =
                    tt_linalg::qr_thin(&DenseTensor::from_vec([rows, cols], Self::take(a))?)?;
                Ok(Reply::Factors {
                    q_rows: q.dims()[0],
                    q_cols: q.dims()[1],
                    q: q.into_data(),
                    r_rows: r.dims()[0],
                    r_cols: r.dims()[1],
                    r: r.into_data(),
                })
            }
            Request::SvdTrunc {
                rows,
                cols,
                a,
                max_rank,
                cutoff,
                min_keep,
            } => {
                let spec = TruncSpec {
                    max_rank: max_rank as usize,
                    cutoff,
                    min_keep: min_keep as usize,
                };
                let a = self.opf(a)?;
                let t = tt_linalg::svd_trunc(
                    &DenseTensor::from_vec([rows, cols], Self::take(a))?,
                    spec,
                )?;
                Ok(Reply::Svd {
                    u_rows: t.u.dims()[0],
                    rank: t.s.len(),
                    vt_cols: t.vt.dims()[1],
                    u: t.u.into_data(),
                    s: t.s,
                    vt: t.vt.into_data(),
                    trunc_err: t.trunc_err,
                    n_discarded: t.n_discarded as u64,
                })
            }
            Request::ChainDense {
                spec,
                a_dims,
                a,
                b_dims,
                b,
                store,
                acc,
            } => {
                let plan = ContractPlan::parse(&spec)?;
                let a = self.opf(a)?;
                let b = self.opf(b)?;
                let ta = DenseTensor::from_vec(a_dims, Self::take(a))?;
                let tb = DenseTensor::from_vec(b_dims, Self::take(b))?;
                let c = kernels::dense_contract(&plan, &ta, &tb, None)?;
                self.store_f64(store, c.into_data(), acc)?;
                Ok(Reply::Unit)
            }
            Request::ChainDenseC64 {
                spec,
                a_dims,
                a,
                b_dims,
                b,
                store,
                acc,
            } => {
                let plan = ContractPlan::parse(&spec)?;
                let a = self.opc(a)?;
                let b = self.opc(b)?;
                let ta = DenseTensor::from_vec(a_dims, Self::take(a))?;
                let tb = DenseTensor::from_vec(b_dims, Self::take(b))?;
                let c = kernels::dense_contract(&plan, &ta, &tb, None)?;
                self.store_c64(store, c.into_data(), acc)?;
                Ok(Reply::Unit)
            }
            Request::ChainSd {
                a,
                m,
                n,
                b_dims,
                perm_b,
                b,
                nat_dims,
                out_perm,
                store,
            } => {
                let bucket = self.opcoords(a)?;
                let b = self.opf(b)?;
                let tb = DenseTensor::from_vec(b_dims, Self::take(b))?;
                let b_mat = tb.permute(&perm_b)?.into_data();
                let c = kernels::sd_chunk(0, m, n, &bucket, &b_mat);
                let c = DenseTensor::from_vec(nat_dims, c)?.permute(&out_perm)?;
                self.store_f64(store, c.into_data(), false)?;
                Ok(Reply::Unit)
            }
            Request::Download { key } => {
                let entry = self
                    .store
                    .remove(&key)
                    .ok_or_else(|| Error::transport(format!("no result under key {key:#x}")))?;
                self.bytes -= entry.val.bytes();
                match entry.val {
                    Cached::F64(v) => Ok(Reply::F64s(Self::take(v))),
                    Cached::C64(v) => Ok(Reply::C64s(Self::take(v))),
                    _ => Err(Error::transport(format!(
                        "key {key:#x} does not hold a downloadable dense buffer"
                    ))),
                }
            }
            Request::SummaInit { key, rows, n } => {
                // pinned for the duration of the product; summa_on frees it
                self.insert(key, Cached::F64(Arc::new(vec![0.0f64; rows * n])), true);
                Ok(Reply::Unit)
            }
            Request::SummaPanel {
                key,
                rows,
                w,
                n,
                a,
                b,
            } => {
                if a.len() != rows * w || b.len() != w * n {
                    return Err(Error::transport("summa panel size mismatch"));
                }
                let stamp = self.tick();
                let entry = self
                    .store
                    .get_mut(&key)
                    .ok_or_else(|| Error::transport(format!("no summa slab under key {key}")))?;
                entry.last_use = stamp;
                let Cached::F64(slab) = &mut entry.val else {
                    return Err(Error::transport("summa slab has wrong payload type"));
                };
                if slab.len() != rows * n {
                    return Err(Error::transport("summa slab shape mismatch"));
                }
                tt_tensor::gemm::gemm_acc_slices(
                    rows,
                    w,
                    n,
                    &a,
                    &b,
                    Arc::make_mut(slab).as_mut_slice(),
                );
                Ok(Reply::Unit)
            }
        }
    }
}

/// Drive a [`WorkerState`] from framed requests on `stream` until a
/// [`Request::Shutdown`] arrives or the peer disconnects. Task panics are
/// caught and surfaced as [`Reply::Fail`]; the worker stays alive.
#[cfg(unix)]
pub fn worker_loop(mut stream: std::os::unix::net::UnixStream) -> Result<()> {
    use std::panic::{catch_unwind, AssertUnwindSafe};
    let mut state = WorkerState::new();
    loop {
        let (tag, payload) = match read_frame(&mut stream) {
            Ok(f) => f,
            // driver gone: a clean shutdown from the worker's perspective
            Err(_) => return Ok(()),
        };
        // Every reply frame is prefixed with the flop/memory counter
        // deltas this task added in *this* process; the driver-side
        // transport replays them into its own global counters, so
        // `tt_tensor::counter` totals match the in-process backends
        // exactly (kernels charge in whichever process runs them).
        let flops0 = tt_tensor::counter::flops();
        let mem0 = tt_tensor::counter::mem_traffic();
        let reply = match Request::decode(&payload) {
            Ok(req) => match catch_unwind(AssertUnwindSafe(|| state.handle(req))) {
                Ok(Some(r)) => r,
                Ok(None) => return Ok(()), // Shutdown
                Err(_) => Reply::Fail("worker task panicked".into()),
            },
            Err(e) => Reply::Fail(e.to_string()),
        };
        let mut framed = Enc::new();
        framed.put_u64(tt_tensor::counter::flops().wrapping_sub(flops0));
        framed.put_u64(tt_tensor::counter::mem_traffic().wrapping_sub(mem0));
        let mut payload = framed.finish();
        payload.extend_from_slice(&reply.encode());
        write_frame(&mut stream, tag, &payload)?;
    }
}

/// Connect to the hub socket named by the environment and serve tasks
/// until shutdown. Returns an error if the worker environment variables
/// are missing or the connection fails.
#[cfg(unix)]
pub fn serve_from_env() -> Result<()> {
    let path =
        std::env::var(ENV_SOCKET).map_err(|_| Error::transport(format!("{ENV_SOCKET} not set")))?;
    let rank: u64 = std::env::var(ENV_RANK)
        .ok()
        .and_then(|r| r.parse().ok())
        .ok_or_else(|| Error::transport(format!("{ENV_RANK} not set")))?;
    let mut stream = std::os::unix::net::UnixStream::connect(&path)
        .map_err(|e| Error::transport(format!("connect {path}: {e}")))?;
    // hello frame: tag 0, payload = rank
    let mut e = Enc::new();
    e.put_u64(rank);
    write_frame(&mut stream, 0, &e.finish())?;
    worker_loop(stream)
}

/// Worker entry hook for host binaries that spawn the multi-process
/// backend by re-executing themselves ([`super::SpawnSpec::SelfExec`]):
/// call this before doing anything else in `main` (or from a `#[test]`
/// named `spawned_worker_entry` in test binaries). When the worker
/// environment variables are absent this is a no-op; when present, the
/// process serves tasks and **exits** instead of returning.
pub fn maybe_serve() {
    if std::env::var(ENV_SOCKET).is_err() {
        return;
    }
    #[cfg(unix)]
    match serve_from_env() {
        Ok(()) => std::process::exit(0),
        Err(e) => {
            eprintln!("tt-dist worker failed: {e}");
            std::process::exit(1);
        }
    }
    #[cfg(not(unix))]
    {
        eprintln!("tt-dist worker requested on a non-unix platform");
        std::process::exit(1);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn sample_requests() -> Vec<Request> {
        vec![
            Request::Ping,
            Request::Put {
                key: 9,
                data: vec![1.5, -2.25],
            },
            Request::Get { key: 9 },
            Request::Free { key: 9 },
            Request::PutC64 {
                key: 1,
                data: vec![Complex64::new(0.1, -0.2)],
            },
            Request::GetC64 { key: 1 },
            Request::Upload {
                key: 77,
                data: vec![0.5, -0.0],
            },
            Request::UploadC64 {
                key: 78,
                data: vec![Complex64::I],
            },
            Request::UploadCoords {
                key: 79,
                rows: vec![1, 2],
                cols: vec![3, 4],
                vals: vec![0.5, 0.25],
            },
            Request::UploadSs {
                key: 80,
                keys: vec![2],
                lens: vec![1],
                cols: vec![4],
                vals: vec![5.0],
            },
            Request::Release { key: 77 },
            Request::CacheStats,
            Request::SetCacheCap { bytes: 4096 },
            Request::DenseChunk {
                path: GemmPath::Packed,
                rows: 2,
                k: 3,
                n: 2,
                a: OpF::Inline(vec![1.0; 6]),
                b: OpF::Key(77),
            },
            Request::DenseChunkC64 {
                path: GemmPath::Scalar,
                rows: 1,
                k: 1,
                n: 1,
                a: OpC::Inline(vec![Complex64::new(1.0, -1.0)]),
                b: OpC::Key(78),
            },
            Request::DensePair {
                spec: "ik,kj->ij".into(),
                a_dims: vec![2, 3],
                a: OpF::Inline(vec![0.5; 6]),
                b_dims: vec![3, 2],
                b: OpF::Key(12),
            },
            Request::SdChunk {
                r0: 1,
                r1: 4,
                n: 2,
                a: OpCoords::Inline {
                    rows: vec![1, 3],
                    cols: vec![0, 2],
                    vals: vec![0.5, -0.5],
                },
                b: OpF::Inline(vec![1.0; 6]),
            },
            Request::SsChunk {
                a: OpCoords::Key(42),
                b: OpSs::Inline {
                    keys: vec![2],
                    lens: vec![1],
                    cols: vec![4],
                    vals: vec![5.0],
                },
                r0: 0,
                r1: 7,
                n: 5,
                ax_dims: vec![7],
                ax_strides: vec![5],
                cx_dims: vec![5],
                cx_strides: vec![1],
                mask: Some(vec![4]),
            },
            Request::QrThin {
                rows: 2,
                cols: 2,
                a: OpF::Inline(vec![1.0, 0.0, 0.0, 1.0]),
            },
            Request::SvdTrunc {
                rows: 2,
                cols: 2,
                a: OpF::Key(5),
                max_rank: u64::MAX,
                cutoff: 1e-12,
                min_keep: 1,
            },
            Request::SummaInit {
                key: 3,
                rows: 4,
                n: 2,
            },
            Request::SummaPanel {
                key: 3,
                rows: 4,
                w: 1,
                n: 2,
                a: vec![1.0; 4],
                b: vec![2.0; 2],
            },
            Request::ChainDense {
                spec: "ik,kj->ij".into(),
                a_dims: vec![2, 3],
                a: OpF::Inline(vec![0.5; 6]),
                b_dims: vec![3, 2],
                b: OpF::Key(12),
                store: 900,
                acc: true,
            },
            Request::ChainDenseC64 {
                spec: "ik,kj->ij".into(),
                a_dims: vec![1, 1],
                a: OpC::Inline(vec![Complex64::I]),
                b_dims: vec![1, 1],
                b: OpC::Key(13),
                store: 901,
                acc: false,
            },
            Request::ChainSd {
                a: OpCoords::Key(42),
                m: 4,
                n: 2,
                b_dims: vec![3, 2],
                perm_b: vec![0, 1],
                b: OpF::Key(14),
                nat_dims: vec![4, 2],
                out_perm: vec![1, 0],
                store: 902,
            },
            Request::Download { key: 902 },
            Request::Shutdown,
        ]
    }

    #[test]
    fn requests_and_replies_roundtrip() {
        for req in sample_requests() {
            let back = Request::decode(&req.encode()).unwrap();
            assert_eq!(back, req);
        }
        let reps = vec![
            Reply::Pong,
            Reply::Unit,
            Reply::F64s(vec![1.0, -0.0]),
            Reply::C64s(vec![Complex64::I]),
            Reply::Entries {
                offs: vec![3, 7],
                vals: vec![0.5, 0.25],
                flops: 12,
            },
            Reply::Factors {
                q_rows: 2,
                q_cols: 1,
                q: vec![1.0, 0.0],
                r_rows: 1,
                r_cols: 1,
                r: vec![2.0],
            },
            Reply::Svd {
                u_rows: 2,
                rank: 1,
                vt_cols: 2,
                u: vec![1.0, 0.0],
                s: vec![2.0],
                vt: vec![0.0, 1.0],
                trunc_err: 1e-16,
                n_discarded: 1,
            },
            Reply::Stats {
                bytes: 4096,
                entries: 3,
                pinned: 1,
                pinned_bytes: 2048,
                hits: 17,
                misses: 5,
                evictions: 2,
            },
            Reply::Fail("boom".into()),
        ];
        for rep in reps {
            let back = Reply::decode(&rep.encode()).unwrap();
            assert_eq!(back, rep);
        }
    }

    /// Arbitrary f64 bit patterns (including NaNs, infinities, -0.0).
    fn any_f64s() -> impl Strategy<Value = Vec<f64>> {
        prop::collection::vec(any::<u64>(), 0..24)
            .prop_map(|bits| bits.into_iter().map(f64::from_bits).collect())
    }

    fn any_c64s() -> impl Strategy<Value = Vec<Complex64>> {
        prop::collection::vec((any::<u64>(), any::<u64>()), 0..16).prop_map(|pairs| {
            pairs
                .into_iter()
                .map(|(re, im)| Complex64::new(f64::from_bits(re), f64::from_bits(im)))
                .collect()
        })
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        /// The codec round-trips the handle-bearing request variants with
        /// exact f64/Complex64 bit patterns (NaNs and -0.0 included), so
        /// bitwise equality is compared on the *re-encoded bytes*, not
        /// through float ==.
        #[test]
        fn handle_request_codec_is_bit_exact(
            key in any::<u64>(),
            data in any_f64s(),
            cdata in any_c64s(),
            rows in prop::collection::vec(any::<u64>(), 0..16),
            inline in any::<bool>(),
        ) {
            let vals: Vec<f64> = rows.iter().map(|&r| f64::from_bits(r ^ 0x5a5a)).collect();
            let cols = rows.clone();
            let a = if inline {
                OpCoords::Inline { rows: rows.clone(), cols: cols.clone(), vals: vals.clone() }
            } else {
                OpCoords::Key(key)
            };
            let reqs = vec![
                Request::Upload { key, data: data.clone() },
                Request::UploadC64 { key, data: cdata.clone() },
                Request::UploadCoords { key, rows: rows.clone(), cols, vals: vals.clone() },
                Request::UploadSs {
                    key,
                    keys: rows.clone(),
                    lens: vec![1; rows.len()],
                    cols: rows.clone(),
                    vals: vals.clone(),
                },
                Request::Release { key },
                Request::SetCacheCap { bytes: key },
                Request::DenseChunk {
                    path: GemmPath::Gemv,
                    rows: rows.len(),
                    k: 1,
                    n: 1,
                    a: OpF::Inline(data.clone()),
                    b: OpF::Key(key),
                },
                Request::DenseChunkC64 {
                    path: GemmPath::Packed,
                    rows: 0,
                    k: 2,
                    n: 3,
                    a: OpC::Inline(cdata.clone()),
                    b: OpC::Key(key),
                },
                Request::SdChunk { r0: 0, r1: rows.len(), n: 2, a, b: OpF::Key(key) },
                Request::SsChunk {
                    a: OpCoords::Key(key),
                    b: OpSs::Key(key),
                    r0: 0,
                    r1: key,
                    n: key,
                    ax_dims: rows.clone(),
                    ax_strides: rows.clone(),
                    cx_dims: rows.clone(),
                    cx_strides: rows.clone(),
                    mask: if inline { Some(rows.clone()) } else { None },
                },
            ];
            for req in reqs {
                let bytes = req.encode();
                let back = Request::decode(&bytes).unwrap();
                // re-encode and compare bytes: exact bit round-trip even
                // for NaN payloads (where PartialEq would lie)
                prop_assert_eq!(back.encode(), bytes);
            }
            let reps = vec![
                Reply::F64s(data),
                Reply::C64s(cdata),
                Reply::Stats {
                    bytes: key,
                    entries: 1,
                    pinned: 0,
                    pinned_bytes: 0,
                    hits: key,
                    misses: 1,
                    evictions: 0,
                },
            ];
            for rep in reps {
                let bytes = rep.encode();
                prop_assert_eq!(Reply::decode(&bytes).unwrap().encode(), bytes);
            }
        }

        /// Pure garbage never panics the decoders — a malformed frame from
        /// a misbehaving worker must surface as a typed error, never crash
        /// the driver (and vice versa for requests on the worker side).
        #[test]
        fn garbage_bytes_never_panic_the_decoders(bytes in prop::collection::vec(any::<u8>(), 0..512)) {
            let _ = Request::decode(&bytes);
            let _ = Reply::decode(&bytes);
        }
    }

    /// Every truncation of every valid message decodes to an error (or a
    /// shorter valid message for payload-trailing truncations) without
    /// panicking.
    #[test]
    fn truncated_messages_never_panic() {
        for req in sample_requests() {
            let bytes = req.encode();
            for cut in 0..bytes.len() {
                let _ = Request::decode(&bytes[..cut]);
            }
        }
        let rep = Reply::Entries {
            offs: vec![1, 2, 3],
            vals: vec![0.5, 0.25, 0.125],
            flops: 99,
        }
        .encode();
        for cut in 0..rep.len() {
            let _ = Reply::decode(&rep[..cut]);
        }
    }

    /// Deterministic byte-flip fuzzing: xorshift-driven single- and
    /// multi-byte corruptions of valid encodings must never panic either
    /// decoder (they may decode to a different valid message — corruption
    /// detection beyond framing is not the codec's contract).
    #[test]
    fn bit_flipped_messages_never_panic() {
        let mut state = 0x243F_6A88_85A3_08D3u64; // deterministic seed
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        for req in sample_requests() {
            let bytes = req.encode();
            if bytes.is_empty() {
                continue;
            }
            for _ in 0..64 {
                let mut m = bytes.clone();
                for _ in 0..(1 + next() % 4) {
                    let at = (next() as usize) % m.len();
                    m[at] ^= (next() % 255 + 1) as u8;
                }
                let _ = Request::decode(&m);
                let _ = Reply::decode(&m);
            }
        }
    }

    #[test]
    fn worker_state_store_and_summa_lifecycle() {
        let mut w = WorkerState::new();
        assert_eq!(w.handle(Request::Ping), Some(Reply::Pong));
        assert_eq!(
            w.handle(Request::Put {
                key: 5,
                data: vec![1.0, 2.0]
            }),
            Some(Reply::Unit)
        );
        assert_eq!(
            w.handle(Request::Get { key: 5 }),
            Some(Reply::F64s(vec![1.0, 2.0]))
        );
        // summa: C = A·B accumulated over two 1-wide panels
        w.handle(Request::SummaInit {
            key: 8,
            rows: 2,
            n: 2,
        });
        for kk in 0..2usize {
            let a: Vec<f64> = (0..2).map(|i| (i * 2 + kk) as f64).collect();
            let b: Vec<f64> = (0..2).map(|j| (kk * 2 + j) as f64).collect();
            assert_eq!(
                w.handle(Request::SummaPanel {
                    key: 8,
                    rows: 2,
                    w: 1,
                    n: 2,
                    a,
                    b
                }),
                Some(Reply::Unit)
            );
        }
        let Some(Reply::F64s(c)) = w.handle(Request::Get { key: 8 }) else {
            panic!("expected slab");
        };
        // [[0,1],[2,3]] · [[0,1],[2,3]] = [[2,3],[6,11]]
        assert_eq!(c, vec![2.0, 3.0, 6.0, 11.0]);
        assert_eq!(w.handle(Request::Free { key: 8 }), Some(Reply::Unit));
        assert!(matches!(
            w.handle(Request::Get { key: 8 }),
            Some(Reply::Fail(_))
        ));
        assert_eq!(w.handle(Request::Shutdown), None);
    }

    #[test]
    fn resident_operands_serve_fused_tasks() {
        let mut w = WorkerState::new();
        // pin B, then run a dense chunk against the resident key only
        w.handle(Request::Upload {
            key: 100,
            data: vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0], // 3×2
        });
        let Some(Reply::F64s(c)) = w.handle(Request::DenseChunk {
            path: GemmPath::Scalar,
            rows: 1,
            k: 3,
            n: 2,
            a: OpF::Inline(vec![1.0, 1.0, 1.0]),
            b: OpF::Key(100),
        }) else {
            panic!("expected chunk result");
        };
        assert_eq!(c, vec![9.0, 12.0]);
        // unknown key fails without killing the worker
        assert!(matches!(
            w.handle(Request::DenseChunk {
                path: GemmPath::Scalar,
                rows: 1,
                k: 3,
                n: 2,
                a: OpF::Inline(vec![1.0, 1.0, 1.0]),
                b: OpF::Key(999),
            }),
            Some(Reply::Fail(_))
        ));
        assert_eq!(w.handle(Request::Ping), Some(Reply::Pong));
    }

    #[test]
    fn lru_cap_bounds_unpinned_entries_deterministically() {
        // cap of 4 f64 buffers of 8 values each (8*8*4 = 256 bytes)
        let mut w = WorkerState::with_cap(256);
        for key in 0..8u64 {
            w.handle(Request::Put {
                key,
                data: vec![key as f64; 8],
            });
        }
        let Some(Reply::Stats { bytes, entries, .. }) = w.handle(Request::CacheStats) else {
            panic!("expected stats");
        };
        assert!(bytes <= 256, "footprint stays under the cap: {bytes}");
        assert_eq!(entries, 4);
        // oldest entries evicted in insertion order: 0..4 gone, 4..8 kept
        for key in 0..4u64 {
            assert!(matches!(
                w.handle(Request::Get { key }),
                Some(Reply::Fail(_))
            ));
        }
        // touching key 4 makes key 5 the LRU victim of the next insert
        w.handle(Request::Get { key: 4 });
        w.handle(Request::Put {
            key: 100,
            data: vec![0.0; 8],
        });
        assert!(matches!(
            w.handle(Request::Get { key: 5 }),
            Some(Reply::Fail(_))
        ));
        assert!(matches!(
            w.handle(Request::Get { key: 4 }),
            Some(Reply::F64s(_))
        ));
    }

    #[test]
    fn staged_put_survives_its_own_cap_pressure() {
        // a collective stages parts with Put and Gets them back before
        // any other insert on the rank; even a part bigger than the cap
        // must survive until then (the just-inserted entry is never its
        // own eviction victim)
        let mut w = WorkerState::with_cap(64);
        w.handle(Request::Put {
            key: 1,
            data: vec![1.0; 32], // 256 bytes > 64-byte cap
        });
        assert!(
            matches!(w.handle(Request::Get { key: 1 }), Some(Reply::F64s(_))),
            "staged part must be readable before the next insert"
        );
        // the next insert evicts the over-cap staged entry
        w.handle(Request::Put {
            key: 2,
            data: vec![2.0; 4],
        });
        assert!(matches!(
            w.handle(Request::Get { key: 1 }),
            Some(Reply::Fail(_))
        ));
        assert!(matches!(
            w.handle(Request::Get { key: 2 }),
            Some(Reply::F64s(_))
        ));
    }

    #[test]
    fn pinned_entries_survive_cap_pressure_until_released() {
        let mut w = WorkerState::with_cap(64);
        w.handle(Request::Upload {
            key: 1,
            data: vec![1.0; 16], // 128 bytes > cap, but pinned
        });
        assert!(matches!(
            w.handle(Request::Get { key: 1 }),
            Some(Reply::F64s(_))
        ));
        let Some(Reply::Stats { pinned, .. }) = w.handle(Request::CacheStats) else {
            panic!();
        };
        assert_eq!(pinned, 1);
        // double-pin (second upload of the same content) needs two releases
        w.handle(Request::Upload {
            key: 1,
            data: vec![1.0; 16],
        });
        w.handle(Request::Release { key: 1 });
        assert!(matches!(
            w.handle(Request::Get { key: 1 }),
            Some(Reply::F64s(_))
        ));
        // final release drops the pin; over-cap entry is evicted
        w.handle(Request::Release { key: 1 });
        assert!(matches!(
            w.handle(Request::Get { key: 1 }),
            Some(Reply::Fail(_))
        ));
        let Some(Reply::Stats { bytes, .. }) = w.handle(Request::CacheStats) else {
            panic!();
        };
        assert_eq!(bytes, 0);
    }

    #[test]
    fn chain_steps_store_accumulate_and_download() {
        let mut w = WorkerState::new();
        // C = A·B stored resident, then a second partial accumulated, then
        // downloaded — the only value-returning exit
        let a = vec![1.0, 2.0, 3.0, 4.0]; // 2×2
        let b = vec![1.0, 0.0, 0.0, 1.0]; // identity
        assert_eq!(
            w.handle(Request::ChainDense {
                spec: "ik,kj->ij".into(),
                a_dims: vec![2, 2],
                a: OpF::Inline(a.clone()),
                b_dims: vec![2, 2],
                b: OpF::Inline(b.clone()),
                store: 50,
                acc: false,
            }),
            Some(Reply::Unit)
        );
        assert_eq!(
            w.handle(Request::ChainDense {
                spec: "ik,kj->ij".into(),
                a_dims: vec![2, 2],
                a: OpF::Inline(a.clone()),
                b_dims: vec![2, 2],
                b: OpF::Inline(b),
                store: 50,
                acc: true,
            }),
            Some(Reply::Unit)
        );
        assert_eq!(
            w.handle(Request::Download { key: 50 }),
            Some(Reply::F64s(vec![2.0, 4.0, 6.0, 8.0]))
        );
        // downloaded results are gone
        assert!(matches!(
            w.handle(Request::Download { key: 50 }),
            Some(Reply::Fail(_))
        ));
        // accumulating into an absent key fails cleanly
        assert!(matches!(
            w.handle(Request::ChainDense {
                spec: "ik,kj->ij".into(),
                a_dims: vec![2, 2],
                a: OpF::Inline(a),
                b_dims: vec![2, 2],
                b: OpF::Inline(vec![1.0; 4]),
                store: 51,
                acc: true,
            }),
            Some(Reply::Fail(_))
        ));
    }

    #[test]
    fn chain_results_survive_cap_pressure_until_downloaded() {
        // the LRU pin contract of chained intermediates: a chain's stored
        // results are pinned, so cap pressure evicts everything else but
        // never them; Download removes (unpins) and frees the bytes
        let mut w = WorkerState::with_cap(128);
        let a = vec![1.0; 16]; // 4×4 result = 128 bytes == cap
        w.handle(Request::ChainDense {
            spec: "ik,kj->ij".into(),
            a_dims: vec![4, 4],
            a: OpF::Inline(a),
            b_dims: vec![4, 4],
            b: OpF::Inline(
                (0..16)
                    .map(|i| if i % 5 == 0 { 1.0 } else { 0.0 })
                    .collect(),
            ),
            store: 60,
            acc: false,
        });
        // hammer the store with unpinned puts well past the cap
        for key in 0..6u64 {
            w.handle(Request::Put {
                key,
                data: vec![key as f64; 8],
            });
        }
        let Some(Reply::Stats { pinned, .. }) = w.handle(Request::CacheStats) else {
            panic!("expected stats");
        };
        assert_eq!(pinned, 1, "the chain result is still pinned");
        assert_eq!(
            w.handle(Request::Download { key: 60 }),
            Some(Reply::F64s(vec![1.0; 16])),
            "pinned intermediate survived cap pressure"
        );
        let Some(Reply::Stats { pinned, .. }) = w.handle(Request::CacheStats) else {
            panic!("expected stats");
        };
        assert_eq!(pinned, 0, "download unpins");
        // Free also unpins chain results (the free_result path)
        w.handle(Request::ChainDense {
            spec: "ik,kj->ij".into(),
            a_dims: vec![1, 1],
            a: OpF::Inline(vec![2.0]),
            b_dims: vec![1, 1],
            b: OpF::Inline(vec![3.0]),
            store: 61,
            acc: false,
        });
        w.handle(Request::Free { key: 61 });
        assert!(matches!(
            w.handle(Request::Download { key: 61 }),
            Some(Reply::Fail(_))
        ));
    }

    #[test]
    fn bad_tasks_fail_without_killing_the_worker() {
        let mut w = WorkerState::new();
        assert!(matches!(
            w.handle(Request::DenseChunk {
                path: GemmPath::Scalar,
                rows: 2,
                k: 2,
                n: 2,
                a: OpF::Inline(vec![0.0; 3]), // wrong size
                b: OpF::Inline(vec![0.0; 4]),
            }),
            Some(Reply::Fail(_))
        ));
        assert_eq!(w.handle(Request::Ping), Some(Reply::Pong));
    }
}

//! The rank-side task protocol.
//!
//! A worker (one rank of the shared-nothing backend) is a small kernel
//! server: it holds a keyed store of resident buffers and executes the
//! same deterministic chunk kernels as the in-process executor —
//! [`crate::kernels::dense_chunk`], [`crate::kernels::sd_chunk`],
//! [`crate::kernels::ss_chunk`], whole-matrix factorizations and resident
//! SUMMA slab updates. Because both backends run *exactly* this code over
//! *exactly* the same work decomposition, multi-process results are
//! bitwise-identical to the in-process Sequential executor.
//!
//! The same [`WorkerState`] is driven two ways:
//!
//! * in-process: [`super::InProcTransport`] calls [`WorkerState::handle`]
//!   directly (one address space, no sockets);
//! * multi-process: [`worker_loop`] drives it from framed requests on a
//!   Unix-domain socket, inside a separate OS process spawned by
//!   [`super::ProcTransport`].

use super::wire::{read_frame, write_frame, Dec, Enc};
use crate::kernels;
use crate::{Error, Result};
use std::collections::{BTreeMap, HashMap};
use tt_linalg::TruncSpec;
use tt_tensor::einsum::ContractPlan;
use tt_tensor::gemm::GemmPath;
use tt_tensor::{Complex64, DenseTensor};

/// Environment variable carrying the hub socket path to spawned workers.
pub const ENV_SOCKET: &str = "TT_DIST_WORKER_SOCKET";
/// Environment variable carrying the worker's rank id.
pub const ENV_RANK: &str = "TT_DIST_WORKER_RANK";

/// A request shipped to one rank.
#[derive(Clone, Debug, PartialEq)]
pub(crate) enum Request {
    /// Liveness / barrier probe.
    Ping,
    /// Store an `f64` buffer under `key`.
    Put { key: u64, data: Vec<f64> },
    /// Fetch the `f64` buffer under `key`.
    Get { key: u64 },
    /// Drop the buffers under `key` (both scalar types).
    Free { key: u64 },
    /// Store a [`Complex64`] buffer under `key`.
    PutC64 { key: u64, data: Vec<Complex64> },
    /// Fetch the [`Complex64`] buffer under `key`.
    GetC64 { key: u64 },
    /// One row-slab of a dense TTGT contraction (`a` holds `rows` rows of
    /// the permuted A, `b` the full permuted B).
    DenseChunk {
        path: GemmPath,
        rows: usize,
        k: usize,
        n: usize,
        a: Vec<f64>,
        b: Vec<f64>,
    },
    /// One whole dense contraction (the block-pair fan-out of the list
    /// algorithm ships each pair to a rank).
    DensePair {
        spec: String,
        a_dims: Vec<usize>,
        a: Vec<f64>,
        b_dims: Vec<usize>,
        b: Vec<f64>,
    },
    /// One volume-balanced sparse-dense bucket over rows `[r0, r1)`.
    SdChunk {
        r0: usize,
        r1: usize,
        n: usize,
        rows: Vec<u64>,
        cols: Vec<u64>,
        vals: Vec<f64>,
        b: Vec<f64>,
    },
    /// One volume-balanced sparse-sparse bucket; `b_keys`/`b_lens` +
    /// flattened `b_cols`/`b_vals` carry the grouped B operand.
    SsChunk {
        rows: Vec<u64>,
        ctrs: Vec<u64>,
        vals: Vec<f64>,
        b_keys: Vec<u64>,
        b_lens: Vec<u64>,
        b_cols: Vec<u64>,
        b_vals: Vec<f64>,
        ax_dims: Vec<u64>,
        ax_strides: Vec<u64>,
        mask: Option<Vec<u64>>,
    },
    /// Thin QR of a resident-free `rows × cols` matrix.
    QrThin {
        rows: usize,
        cols: usize,
        a: Vec<f64>,
    },
    /// Truncated SVD of a `rows × cols` matrix.
    SvdTrunc {
        rows: usize,
        cols: usize,
        a: Vec<f64>,
        max_rank: u64,
        cutoff: f64,
        min_keep: u64,
    },
    /// Allocate a zeroed resident SUMMA slab (`rows × n`) under `key`.
    SummaInit { key: u64, rows: usize, n: usize },
    /// Accumulate one `k`-panel product into the resident slab: the
    /// `rows × w` A-slab panel times the `w × n` B panel.
    SummaPanel {
        key: u64,
        rows: usize,
        w: usize,
        n: usize,
        a: Vec<f64>,
        b: Vec<f64>,
    },
    /// Terminate the worker loop.
    Shutdown,
}

/// A reply from one rank.
#[derive(Clone, Debug, PartialEq)]
pub(crate) enum Reply {
    /// Barrier acknowledgement.
    Pong,
    /// Success with no payload.
    Unit,
    /// An `f64` buffer.
    F64s(Vec<f64>),
    /// A [`Complex64`] buffer.
    C64s(Vec<Complex64>),
    /// Sparse output entries plus the flops the chunk executed.
    Entries {
        offs: Vec<u64>,
        vals: Vec<f64>,
        flops: u64,
    },
    /// A `(Q, R)` factor pair with explicit dimensions.
    Factors {
        q_rows: usize,
        q_cols: usize,
        q: Vec<f64>,
        r_rows: usize,
        r_cols: usize,
        r: Vec<f64>,
    },
    /// A truncated SVD.
    Svd {
        u_rows: usize,
        rank: usize,
        vt_cols: usize,
        u: Vec<f64>,
        s: Vec<f64>,
        vt: Vec<f64>,
        trunc_err: f64,
        n_discarded: u64,
    },
    /// The task failed on the worker; the driver surfaces the message.
    Fail(String),
}

fn path_to_u8(p: GemmPath) -> u8 {
    match p {
        GemmPath::Gemv => 0,
        GemmPath::Scalar => 1,
        GemmPath::Packed => 2,
    }
}

fn path_from_u8(v: u8) -> Result<GemmPath> {
    match v {
        0 => Ok(GemmPath::Gemv),
        1 => Ok(GemmPath::Scalar),
        2 => Ok(GemmPath::Packed),
        _ => Err(Error::Transport(format!("bad gemm path tag {v}"))),
    }
}

fn put_usizes(e: &mut Enc, v: &[usize]) {
    e.put_usize(v.len());
    for &x in v {
        e.put_usize(x);
    }
}

fn get_usizes(d: &mut Dec) -> Result<Vec<usize>> {
    let n = d.usize()?;
    (0..n).map(|_| d.usize()).collect()
}

impl Request {
    /// Encode to the wire format.
    pub(crate) fn encode(&self) -> Vec<u8> {
        let mut e = Enc::new();
        match self {
            Request::Ping => e.put_u8(0),
            Request::Put { key, data } => {
                e.put_u8(1);
                e.put_u64(*key);
                e.put_f64s(data);
            }
            Request::Get { key } => {
                e.put_u8(2);
                e.put_u64(*key);
            }
            Request::Free { key } => {
                e.put_u8(3);
                e.put_u64(*key);
            }
            Request::PutC64 { key, data } => {
                e.put_u8(4);
                e.put_u64(*key);
                e.put_c64s(data);
            }
            Request::GetC64 { key } => {
                e.put_u8(5);
                e.put_u64(*key);
            }
            Request::DenseChunk {
                path,
                rows,
                k,
                n,
                a,
                b,
            } => {
                e.put_u8(6);
                e.put_u8(path_to_u8(*path));
                e.put_usize(*rows);
                e.put_usize(*k);
                e.put_usize(*n);
                e.put_f64s(a);
                e.put_f64s(b);
            }
            Request::DensePair {
                spec,
                a_dims,
                a,
                b_dims,
                b,
            } => {
                e.put_u8(7);
                e.put_str(spec);
                put_usizes(&mut e, a_dims);
                e.put_f64s(a);
                put_usizes(&mut e, b_dims);
                e.put_f64s(b);
            }
            Request::SdChunk {
                r0,
                r1,
                n,
                rows,
                cols,
                vals,
                b,
            } => {
                e.put_u8(8);
                e.put_usize(*r0);
                e.put_usize(*r1);
                e.put_usize(*n);
                e.put_u64s(rows);
                e.put_u64s(cols);
                e.put_f64s(vals);
                e.put_f64s(b);
            }
            Request::SsChunk {
                rows,
                ctrs,
                vals,
                b_keys,
                b_lens,
                b_cols,
                b_vals,
                ax_dims,
                ax_strides,
                mask,
            } => {
                e.put_u8(9);
                e.put_u64s(rows);
                e.put_u64s(ctrs);
                e.put_f64s(vals);
                e.put_u64s(b_keys);
                e.put_u64s(b_lens);
                e.put_u64s(b_cols);
                e.put_f64s(b_vals);
                e.put_u64s(ax_dims);
                e.put_u64s(ax_strides);
                e.put_bool(mask.is_some());
                if let Some(m) = mask {
                    e.put_u64s(m);
                }
            }
            Request::QrThin { rows, cols, a } => {
                e.put_u8(10);
                e.put_usize(*rows);
                e.put_usize(*cols);
                e.put_f64s(a);
            }
            Request::SvdTrunc {
                rows,
                cols,
                a,
                max_rank,
                cutoff,
                min_keep,
            } => {
                e.put_u8(11);
                e.put_usize(*rows);
                e.put_usize(*cols);
                e.put_f64s(a);
                e.put_u64(*max_rank);
                e.put_f64(*cutoff);
                e.put_u64(*min_keep);
            }
            Request::SummaInit { key, rows, n } => {
                e.put_u8(12);
                e.put_u64(*key);
                e.put_usize(*rows);
                e.put_usize(*n);
            }
            Request::SummaPanel {
                key,
                rows,
                w,
                n,
                a,
                b,
            } => {
                e.put_u8(13);
                e.put_u64(*key);
                e.put_usize(*rows);
                e.put_usize(*w);
                e.put_usize(*n);
                e.put_f64s(a);
                e.put_f64s(b);
            }
            Request::Shutdown => e.put_u8(14),
        }
        e.finish()
    }

    /// Decode from the wire format.
    pub(crate) fn decode(bytes: &[u8]) -> Result<Self> {
        let mut d = Dec::new(bytes);
        let req = match d.u8()? {
            0 => Request::Ping,
            1 => Request::Put {
                key: d.u64()?,
                data: d.f64s()?,
            },
            2 => Request::Get { key: d.u64()? },
            3 => Request::Free { key: d.u64()? },
            4 => Request::PutC64 {
                key: d.u64()?,
                data: d.c64s()?,
            },
            5 => Request::GetC64 { key: d.u64()? },
            6 => Request::DenseChunk {
                path: path_from_u8(d.u8()?)?,
                rows: d.usize()?,
                k: d.usize()?,
                n: d.usize()?,
                a: d.f64s()?,
                b: d.f64s()?,
            },
            7 => Request::DensePair {
                spec: d.str()?,
                a_dims: get_usizes(&mut d)?,
                a: d.f64s()?,
                b_dims: get_usizes(&mut d)?,
                b: d.f64s()?,
            },
            8 => Request::SdChunk {
                r0: d.usize()?,
                r1: d.usize()?,
                n: d.usize()?,
                rows: d.u64s()?,
                cols: d.u64s()?,
                vals: d.f64s()?,
                b: d.f64s()?,
            },
            9 => Request::SsChunk {
                rows: d.u64s()?,
                ctrs: d.u64s()?,
                vals: d.f64s()?,
                b_keys: d.u64s()?,
                b_lens: d.u64s()?,
                b_cols: d.u64s()?,
                b_vals: d.f64s()?,
                ax_dims: d.u64s()?,
                ax_strides: d.u64s()?,
                mask: if d.bool()? { Some(d.u64s()?) } else { None },
            },
            10 => Request::QrThin {
                rows: d.usize()?,
                cols: d.usize()?,
                a: d.f64s()?,
            },
            11 => Request::SvdTrunc {
                rows: d.usize()?,
                cols: d.usize()?,
                a: d.f64s()?,
                max_rank: d.u64()?,
                cutoff: d.f64()?,
                min_keep: d.u64()?,
            },
            12 => Request::SummaInit {
                key: d.u64()?,
                rows: d.usize()?,
                n: d.usize()?,
            },
            13 => Request::SummaPanel {
                key: d.u64()?,
                rows: d.usize()?,
                w: d.usize()?,
                n: d.usize()?,
                a: d.f64s()?,
                b: d.f64s()?,
            },
            14 => Request::Shutdown,
            op => return Err(Error::Transport(format!("unknown request opcode {op}"))),
        };
        Ok(req)
    }
}

impl Reply {
    /// Encode to the wire format.
    pub(crate) fn encode(&self) -> Vec<u8> {
        let mut e = Enc::new();
        match self {
            Reply::Pong => e.put_u8(0),
            Reply::Unit => e.put_u8(1),
            Reply::F64s(v) => {
                e.put_u8(2);
                e.put_f64s(v);
            }
            Reply::C64s(v) => {
                e.put_u8(3);
                e.put_c64s(v);
            }
            Reply::Entries { offs, vals, flops } => {
                e.put_u8(4);
                e.put_u64s(offs);
                e.put_f64s(vals);
                e.put_u64(*flops);
            }
            Reply::Factors {
                q_rows,
                q_cols,
                q,
                r_rows,
                r_cols,
                r,
            } => {
                e.put_u8(5);
                e.put_usize(*q_rows);
                e.put_usize(*q_cols);
                e.put_f64s(q);
                e.put_usize(*r_rows);
                e.put_usize(*r_cols);
                e.put_f64s(r);
            }
            Reply::Svd {
                u_rows,
                rank,
                vt_cols,
                u,
                s,
                vt,
                trunc_err,
                n_discarded,
            } => {
                e.put_u8(6);
                e.put_usize(*u_rows);
                e.put_usize(*rank);
                e.put_usize(*vt_cols);
                e.put_f64s(u);
                e.put_f64s(s);
                e.put_f64s(vt);
                e.put_f64(*trunc_err);
                e.put_u64(*n_discarded);
            }
            Reply::Fail(msg) => {
                e.put_u8(7);
                e.put_str(msg);
            }
        }
        e.finish()
    }

    /// Decode from the wire format.
    pub(crate) fn decode(bytes: &[u8]) -> Result<Self> {
        let mut d = Dec::new(bytes);
        let rep = match d.u8()? {
            0 => Reply::Pong,
            1 => Reply::Unit,
            2 => Reply::F64s(d.f64s()?),
            3 => Reply::C64s(d.c64s()?),
            4 => Reply::Entries {
                offs: d.u64s()?,
                vals: d.f64s()?,
                flops: d.u64()?,
            },
            5 => Reply::Factors {
                q_rows: d.usize()?,
                q_cols: d.usize()?,
                q: d.f64s()?,
                r_rows: d.usize()?,
                r_cols: d.usize()?,
                r: d.f64s()?,
            },
            6 => Reply::Svd {
                u_rows: d.usize()?,
                rank: d.usize()?,
                vt_cols: d.usize()?,
                u: d.f64s()?,
                s: d.f64s()?,
                vt: d.f64s()?,
                trunc_err: d.f64()?,
                n_discarded: d.u64()?,
            },
            7 => Reply::Fail(d.str()?),
            op => return Err(Error::Transport(format!("unknown reply opcode {op}"))),
        };
        Ok(rep)
    }
}

/// One rank's resident state: keyed buffer stores.
#[derive(Default)]
pub(crate) struct WorkerState {
    store: HashMap<u64, Vec<f64>>,
    store_c64: HashMap<u64, Vec<Complex64>>,
}

impl WorkerState {
    /// Fresh state with empty stores.
    pub(crate) fn new() -> Self {
        Self::default()
    }

    /// Execute one request. Returns `None` only for [`Request::Shutdown`];
    /// every other request produces exactly one reply (failures become
    /// [`Reply::Fail`], so a worker never dies on a bad task).
    pub(crate) fn handle(&mut self, req: Request) -> Option<Reply> {
        if matches!(req, Request::Shutdown) {
            return None;
        }
        Some(self.run(req).unwrap_or_else(|e| Reply::Fail(e.to_string())))
    }

    fn get_f64(&self, key: u64) -> Result<&Vec<f64>> {
        self.store
            .get(&key)
            .ok_or_else(|| Error::Transport(format!("no buffer under key {key}")))
    }

    fn run(&mut self, req: Request) -> Result<Reply> {
        match req {
            Request::Shutdown => unreachable!("handled in handle()"),
            Request::Ping => Ok(Reply::Pong),
            Request::Put { key, data } => {
                self.store.insert(key, data);
                Ok(Reply::Unit)
            }
            Request::Get { key } => Ok(Reply::F64s(self.get_f64(key)?.clone())),
            Request::Free { key } => {
                self.store.remove(&key);
                self.store_c64.remove(&key);
                Ok(Reply::Unit)
            }
            Request::PutC64 { key, data } => {
                self.store_c64.insert(key, data);
                Ok(Reply::Unit)
            }
            Request::GetC64 { key } => self
                .store_c64
                .get(&key)
                .map(|v| Reply::C64s(v.clone()))
                .ok_or_else(|| Error::Transport(format!("no complex buffer under key {key}"))),
            Request::DenseChunk {
                path,
                rows,
                k,
                n,
                a,
                b,
            } => {
                if a.len() != rows * k || b.len() != k * n {
                    return Err(Error::Transport("dense chunk operand size mismatch".into()));
                }
                Ok(Reply::F64s(kernels::dense_chunk(path, rows, k, n, &a, &b)))
            }
            Request::DensePair {
                spec,
                a_dims,
                a,
                b_dims,
                b,
            } => {
                let plan = ContractPlan::parse(&spec)?;
                let ta = DenseTensor::from_vec(a_dims, a)?;
                let tb = DenseTensor::from_vec(b_dims, b)?;
                let c = kernels::dense_contract(&plan, &ta, &tb, None)?;
                Ok(Reply::F64s(c.into_data()))
            }
            Request::SdChunk {
                r0,
                r1,
                n,
                rows,
                cols,
                vals,
                b,
            } => {
                let bucket: Vec<kernels::Coord> = rows
                    .into_iter()
                    .zip(cols)
                    .zip(vals)
                    .map(|((r, c), v)| (r, c, v))
                    .collect();
                Ok(Reply::F64s(kernels::sd_chunk(r0, r1, n, &bucket, &b)))
            }
            Request::SsChunk {
                rows,
                ctrs,
                vals,
                b_keys,
                b_lens,
                b_cols,
                b_vals,
                ax_dims,
                ax_strides,
                mask,
            } => {
                let bucket: Vec<kernels::Coord> = rows
                    .into_iter()
                    .zip(ctrs)
                    .zip(vals)
                    .map(|((r, c), v)| (r, c, v))
                    .collect();
                let mut b_by_ctr: BTreeMap<u64, Vec<(u64, f64)>> = BTreeMap::new();
                let mut off = 0usize;
                for (key, len) in b_keys.iter().zip(&b_lens) {
                    let len = *len as usize;
                    if off + len > b_cols.len() || b_cols.len() != b_vals.len() {
                        return Err(Error::Transport("ss chunk group table mismatch".into()));
                    }
                    let group = b_cols[off..off + len]
                        .iter()
                        .copied()
                        .zip(b_vals[off..off + len].iter().copied())
                        .collect();
                    b_by_ctr.insert(*key, group);
                    off += len;
                }
                let row_axes: Vec<(u64, u64)> = ax_dims.into_iter().zip(ax_strides).collect();
                let (entries, flops) =
                    kernels::ss_chunk(&bucket, &b_by_ctr, &row_axes, mask.as_deref());
                let (offs, vals) = entries.into_iter().unzip();
                Ok(Reply::Entries { offs, vals, flops })
            }
            Request::QrThin { rows, cols, a } => {
                let (q, r) = tt_linalg::qr_thin(&DenseTensor::from_vec([rows, cols], a)?)?;
                Ok(Reply::Factors {
                    q_rows: q.dims()[0],
                    q_cols: q.dims()[1],
                    q: q.into_data(),
                    r_rows: r.dims()[0],
                    r_cols: r.dims()[1],
                    r: r.into_data(),
                })
            }
            Request::SvdTrunc {
                rows,
                cols,
                a,
                max_rank,
                cutoff,
                min_keep,
            } => {
                let spec = TruncSpec {
                    max_rank: max_rank as usize,
                    cutoff,
                    min_keep: min_keep as usize,
                };
                let t = tt_linalg::svd_trunc(&DenseTensor::from_vec([rows, cols], a)?, spec)?;
                Ok(Reply::Svd {
                    u_rows: t.u.dims()[0],
                    rank: t.s.len(),
                    vt_cols: t.vt.dims()[1],
                    u: t.u.into_data(),
                    s: t.s,
                    vt: t.vt.into_data(),
                    trunc_err: t.trunc_err,
                    n_discarded: t.n_discarded as u64,
                })
            }
            Request::SummaInit { key, rows, n } => {
                self.store.insert(key, vec![0.0f64; rows * n]);
                Ok(Reply::Unit)
            }
            Request::SummaPanel {
                key,
                rows,
                w,
                n,
                a,
                b,
            } => {
                if a.len() != rows * w || b.len() != w * n {
                    return Err(Error::Transport("summa panel size mismatch".into()));
                }
                let slab = self
                    .store
                    .get_mut(&key)
                    .ok_or_else(|| Error::Transport(format!("no summa slab under key {key}")))?;
                if slab.len() != rows * n {
                    return Err(Error::Transport("summa slab shape mismatch".into()));
                }
                tt_tensor::gemm::gemm_acc_slices(rows, w, n, &a, &b, slab);
                Ok(Reply::Unit)
            }
        }
    }
}

/// Drive a [`WorkerState`] from framed requests on `stream` until a
/// [`Request::Shutdown`] arrives or the peer disconnects. Task panics are
/// caught and surfaced as [`Reply::Fail`]; the worker stays alive.
#[cfg(unix)]
pub fn worker_loop(mut stream: std::os::unix::net::UnixStream) -> Result<()> {
    use std::panic::{catch_unwind, AssertUnwindSafe};
    let mut state = WorkerState::new();
    loop {
        let (tag, payload) = match read_frame(&mut stream) {
            Ok(f) => f,
            // driver gone: a clean shutdown from the worker's perspective
            Err(_) => return Ok(()),
        };
        // Every reply frame is prefixed with the flop/memory counter
        // deltas this task added in *this* process; the driver-side
        // transport replays them into its own global counters, so
        // `tt_tensor::counter` totals match the in-process backends
        // exactly (kernels charge in whichever process runs them).
        let flops0 = tt_tensor::counter::flops();
        let mem0 = tt_tensor::counter::mem_traffic();
        let reply = match Request::decode(&payload) {
            Ok(req) => match catch_unwind(AssertUnwindSafe(|| state.handle(req))) {
                Ok(Some(r)) => r,
                Ok(None) => return Ok(()), // Shutdown
                Err(_) => Reply::Fail("worker task panicked".into()),
            },
            Err(e) => Reply::Fail(e.to_string()),
        };
        let mut framed = Enc::new();
        framed.put_u64(tt_tensor::counter::flops().wrapping_sub(flops0));
        framed.put_u64(tt_tensor::counter::mem_traffic().wrapping_sub(mem0));
        let mut payload = framed.finish();
        payload.extend_from_slice(&reply.encode());
        write_frame(&mut stream, tag, &payload)?;
    }
}

/// Connect to the hub socket named by the environment and serve tasks
/// until shutdown. Returns an error if the worker environment variables
/// are missing or the connection fails.
#[cfg(unix)]
pub fn serve_from_env() -> Result<()> {
    let path =
        std::env::var(ENV_SOCKET).map_err(|_| Error::Transport(format!("{ENV_SOCKET} not set")))?;
    let rank: u64 = std::env::var(ENV_RANK)
        .ok()
        .and_then(|r| r.parse().ok())
        .ok_or_else(|| Error::Transport(format!("{ENV_RANK} not set")))?;
    let mut stream = std::os::unix::net::UnixStream::connect(&path)
        .map_err(|e| Error::Transport(format!("connect {path}: {e}")))?;
    // hello frame: tag 0, payload = rank
    let mut e = Enc::new();
    e.put_u64(rank);
    write_frame(&mut stream, 0, &e.finish())?;
    worker_loop(stream)
}

/// Worker entry hook for host binaries that spawn the multi-process
/// backend by re-executing themselves ([`super::SpawnSpec::SelfExec`]):
/// call this before doing anything else in `main` (or from a `#[test]`
/// named `spawned_worker_entry` in test binaries). When the worker
/// environment variables are absent this is a no-op; when present, the
/// process serves tasks and **exits** instead of returning.
pub fn maybe_serve() {
    if std::env::var(ENV_SOCKET).is_err() {
        return;
    }
    #[cfg(unix)]
    match serve_from_env() {
        Ok(()) => std::process::exit(0),
        Err(e) => {
            eprintln!("tt-dist worker failed: {e}");
            std::process::exit(1);
        }
    }
    #[cfg(not(unix))]
    {
        eprintln!("tt-dist worker requested on a non-unix platform");
        std::process::exit(1);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn requests_and_replies_roundtrip() {
        let reqs = vec![
            Request::Ping,
            Request::Put {
                key: 9,
                data: vec![1.5, -2.25],
            },
            Request::Get { key: 9 },
            Request::Free { key: 9 },
            Request::PutC64 {
                key: 1,
                data: vec![Complex64::new(0.1, -0.2)],
            },
            Request::GetC64 { key: 1 },
            Request::DenseChunk {
                path: GemmPath::Packed,
                rows: 2,
                k: 3,
                n: 2,
                a: vec![1.0; 6],
                b: vec![2.0; 6],
            },
            Request::DensePair {
                spec: "ik,kj->ij".into(),
                a_dims: vec![2, 3],
                a: vec![0.5; 6],
                b_dims: vec![3, 2],
                b: vec![0.25; 6],
            },
            Request::SdChunk {
                r0: 1,
                r1: 4,
                n: 2,
                rows: vec![1, 3],
                cols: vec![0, 2],
                vals: vec![0.5, -0.5],
                b: vec![1.0; 6],
            },
            Request::SsChunk {
                rows: vec![0],
                ctrs: vec![2],
                vals: vec![3.0],
                b_keys: vec![2],
                b_lens: vec![1],
                b_cols: vec![4],
                b_vals: vec![5.0],
                ax_dims: vec![7],
                ax_strides: vec![1],
                mask: Some(vec![4]),
            },
            Request::QrThin {
                rows: 2,
                cols: 2,
                a: vec![1.0, 0.0, 0.0, 1.0],
            },
            Request::SvdTrunc {
                rows: 2,
                cols: 2,
                a: vec![1.0, 0.0, 0.0, 1.0],
                max_rank: u64::MAX,
                cutoff: 1e-12,
                min_keep: 1,
            },
            Request::SummaInit {
                key: 3,
                rows: 4,
                n: 2,
            },
            Request::SummaPanel {
                key: 3,
                rows: 4,
                w: 1,
                n: 2,
                a: vec![1.0; 4],
                b: vec![2.0; 2],
            },
            Request::Shutdown,
        ];
        for req in reqs {
            let back = Request::decode(&req.encode()).unwrap();
            assert_eq!(back, req);
        }
        let reps = vec![
            Reply::Pong,
            Reply::Unit,
            Reply::F64s(vec![1.0, -0.0]),
            Reply::C64s(vec![Complex64::I]),
            Reply::Entries {
                offs: vec![3, 7],
                vals: vec![0.5, 0.25],
                flops: 12,
            },
            Reply::Factors {
                q_rows: 2,
                q_cols: 1,
                q: vec![1.0, 0.0],
                r_rows: 1,
                r_cols: 1,
                r: vec![2.0],
            },
            Reply::Svd {
                u_rows: 2,
                rank: 1,
                vt_cols: 2,
                u: vec![1.0, 0.0],
                s: vec![2.0],
                vt: vec![0.0, 1.0],
                trunc_err: 1e-16,
                n_discarded: 1,
            },
            Reply::Fail("boom".into()),
        ];
        for rep in reps {
            let back = Reply::decode(&rep.encode()).unwrap();
            assert_eq!(back, rep);
        }
    }

    #[test]
    fn worker_state_store_and_summa_lifecycle() {
        let mut w = WorkerState::new();
        assert_eq!(w.handle(Request::Ping), Some(Reply::Pong));
        assert_eq!(
            w.handle(Request::Put {
                key: 5,
                data: vec![1.0, 2.0]
            }),
            Some(Reply::Unit)
        );
        assert_eq!(
            w.handle(Request::Get { key: 5 }),
            Some(Reply::F64s(vec![1.0, 2.0]))
        );
        // summa: C = A·B accumulated over two 1-wide panels
        w.handle(Request::SummaInit {
            key: 8,
            rows: 2,
            n: 2,
        });
        for kk in 0..2usize {
            let a: Vec<f64> = (0..2).map(|i| (i * 2 + kk) as f64).collect();
            let b: Vec<f64> = (0..2).map(|j| (kk * 2 + j) as f64).collect();
            assert_eq!(
                w.handle(Request::SummaPanel {
                    key: 8,
                    rows: 2,
                    w: 1,
                    n: 2,
                    a,
                    b
                }),
                Some(Reply::Unit)
            );
        }
        let Some(Reply::F64s(c)) = w.handle(Request::Get { key: 8 }) else {
            panic!("expected slab");
        };
        // [[0,1],[2,3]] · [[0,1],[2,3]] = [[2,3],[6,11]]
        assert_eq!(c, vec![2.0, 3.0, 6.0, 11.0]);
        assert_eq!(w.handle(Request::Free { key: 8 }), Some(Reply::Unit));
        assert!(matches!(
            w.handle(Request::Get { key: 8 }),
            Some(Reply::Fail(_))
        ));
        assert_eq!(w.handle(Request::Shutdown), None);
    }

    #[test]
    fn bad_tasks_fail_without_killing_the_worker() {
        let mut w = WorkerState::new();
        assert!(matches!(
            w.handle(Request::DenseChunk {
                path: GemmPath::Scalar,
                rows: 2,
                k: 2,
                n: 2,
                a: vec![0.0; 3], // wrong size
                b: vec![0.0; 4],
            }),
            Some(Reply::Fail(_))
        ));
        assert_eq!(w.handle(Request::Ping), Some(Reply::Pong));
    }
}

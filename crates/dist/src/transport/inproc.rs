//! The in-process transport backend: `p` simulated ranks in one address
//! space.
//!
//! Each rank is a [`WorkerState`](super::worker::WorkerState) owned
//! directly by the transport; [`Transport::send`] executes the request
//! synchronously and queues the reply, so there is no concurrency and no
//! data actually crosses an address-space boundary. Messages still
//! round-trip through the little-endian wire codec — the exact same bytes
//! the multi-process backend puts on its sockets — which keeps one codec
//! path exercised everywhere (and is exact for `f64`/`Complex64` bit
//! patterns).

use super::worker::{Request, WorkerState};
use super::Transport;
use crate::{Error, Result};
use std::collections::{HashMap, VecDeque};

/// In-process implementation of [`Transport`].
pub struct InProcTransport {
    workers: Vec<WorkerState>,
    outbox: Vec<HashMap<u64, VecDeque<Vec<u8>>>>,
    next_tag: u64,
}

impl InProcTransport {
    /// Transport over `ranks` in-process simulated ranks.
    pub fn new(ranks: usize) -> Self {
        let ranks = ranks.max(1);
        Self {
            workers: (0..ranks).map(|_| WorkerState::new()).collect(),
            outbox: vec![HashMap::new(); ranks],
            next_tag: 1,
        }
    }
}

impl Transport for InProcTransport {
    fn ranks(&self) -> usize {
        self.workers.len()
    }

    fn next_tag(&mut self) -> u64 {
        let t = self.next_tag;
        self.next_tag += 1;
        t
    }

    fn send(&mut self, to: usize, tag: u64, msg: &[u8]) -> Result<()> {
        if to >= self.workers.len() {
            return Err(Error::transport(format!("no rank {to}")));
        }
        let req = Request::decode(msg)?;
        if let Some(reply) = self.workers[to].handle(req) {
            self.outbox[to]
                .entry(tag)
                .or_default()
                .push_back(reply.encode());
        }
        Ok(())
    }

    fn recv(&mut self, from: usize, tag: u64) -> Result<Vec<u8>> {
        if from >= self.workers.len() {
            return Err(Error::transport(format!("no rank {from}")));
        }
        self.outbox[from]
            .get_mut(&tag)
            .and_then(|q| q.pop_front())
            .ok_or_else(|| Error::transport(format!("no reply from rank {from} under tag {tag}")))
    }
}

#[cfg(test)]
mod tests {
    use super::super::worker::Reply;
    use super::*;

    #[test]
    fn send_recv_roundtrip() {
        let mut t = InProcTransport::new(3);
        assert_eq!(t.ranks(), 3);
        for r in 0..3 {
            let tag = t.next_tag();
            t.send(
                r,
                tag,
                &Request::Put {
                    key: 1,
                    data: vec![r as f64],
                }
                .encode(),
            )
            .unwrap();
            assert_eq!(
                Reply::decode(&t.recv(r, tag).unwrap()).unwrap(),
                Reply::Unit
            );
            let tag = t.next_tag();
            t.send(r, tag, &Request::Get { key: 1 }.encode()).unwrap();
            assert_eq!(
                Reply::decode(&t.recv(r, tag).unwrap()).unwrap(),
                Reply::F64s(vec![r as f64])
            );
        }
        assert!(t.recv(0, 999).is_err(), "unknown tag must error");
        assert!(t.send(7, 1, &Request::Ping.encode()).is_err());
    }
}

//! Hand-rolled little-endian wire framing.
//!
//! The build environment has no crates.io access, so there is no serde;
//! every message the transports move is encoded with the explicit
//! byte-level codec here. `f64` values round-trip through
//! `to_le_bytes`/`from_le_bytes`, which preserves the exact bit pattern —
//! the property the bitwise-equivalence guarantee of the multi-process
//! backend rests on. [`Complex64`] payloads are framed as `(re, im)` pairs.
//!
//! A frame on a stream is `[tag: u64 LE][len: u64 LE][len bytes]`.

use crate::{Error, Result};
use std::io::{Read, Write};
use tt_tensor::Complex64;

/// Refuse frames larger than this (corrupt headers would otherwise ask the
/// reader to allocate terabytes). Shared with the driver's pumping reader,
/// which peels frames out of its own buffer.
pub(crate) const MAX_FRAME_BYTES: u64 = 1 << 34;

/// Append-only message encoder.
#[derive(Default)]
pub struct Enc {
    buf: Vec<u8>,
}

impl Enc {
    /// Fresh empty encoder.
    pub fn new() -> Self {
        Self::default()
    }

    /// The encoded bytes.
    pub fn finish(self) -> Vec<u8> {
        self.buf
    }

    /// Append a raw byte.
    pub fn put_u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Append a `u64`, little-endian.
    pub fn put_u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Append a `usize` as a `u64`.
    pub fn put_usize(&mut self, v: usize) {
        self.put_u64(v as u64);
    }

    /// Append an `f64` bit pattern, little-endian.
    pub fn put_f64(&mut self, v: f64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Append a bool as one byte.
    pub fn put_bool(&mut self, v: bool) {
        self.put_u8(v as u8);
    }

    /// Append a length-prefixed `f64` slice.
    pub fn put_f64s(&mut self, v: &[f64]) {
        self.put_usize(v.len());
        self.buf.reserve(8 * v.len());
        for &x in v {
            self.buf.extend_from_slice(&x.to_le_bytes());
        }
    }

    /// Append a length-prefixed `u64` slice.
    pub fn put_u64s(&mut self, v: &[u64]) {
        self.put_usize(v.len());
        self.buf.reserve(8 * v.len());
        for &x in v {
            self.buf.extend_from_slice(&x.to_le_bytes());
        }
    }

    /// Append a length-prefixed [`Complex64`] slice as `(re, im)` pairs.
    pub fn put_c64s(&mut self, v: &[Complex64]) {
        self.put_usize(v.len());
        self.buf.reserve(16 * v.len());
        for x in v {
            self.buf.extend_from_slice(&x.re.to_le_bytes());
            self.buf.extend_from_slice(&x.im.to_le_bytes());
        }
    }

    /// Append a length-prefixed UTF-8 string.
    pub fn put_str(&mut self, s: &str) {
        self.put_usize(s.len());
        self.buf.extend_from_slice(s.as_bytes());
    }
}

/// Cursor-style message decoder over an encoded buffer.
pub struct Dec<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Dec<'a> {
    /// Decoder over `buf` starting at offset 0.
    pub fn new(buf: &'a [u8]) -> Self {
        Self { buf, pos: 0 }
    }

    /// `count` elements of `width` bytes, guarding the multiplication.
    fn take_elems(&mut self, count: usize, width: usize) -> Result<&'a [u8]> {
        let bytes = count
            .checked_mul(width)
            .ok_or_else(|| Error::transport(format!("absurd element count {count} in message")))?;
        self.take(bytes)
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8]> {
        let end = self
            .pos
            .checked_add(n)
            .ok_or_else(|| Error::transport("decode offset overflow"))?;
        if end > self.buf.len() {
            return Err(Error::transport(format!(
                "truncated message: wanted {n} bytes at {}, have {}",
                self.pos,
                self.buf.len()
            )));
        }
        let s = &self.buf[self.pos..end];
        self.pos = end;
        Ok(s)
    }

    /// Read one byte.
    pub fn u8(&mut self) -> Result<u8> {
        Ok(self.take(1)?[0])
    }

    /// Read a little-endian `u64`.
    pub fn u64(&mut self) -> Result<u64> {
        let b = self.take(8)?;
        Ok(u64::from_le_bytes(b.try_into().unwrap()))
    }

    /// Read a `u64` and narrow it to `usize`.
    pub fn usize(&mut self) -> Result<usize> {
        usize::try_from(self.u64()?).map_err(|_| Error::transport("length exceeds usize"))
    }

    /// Read a little-endian `f64` (exact bit pattern).
    pub fn f64(&mut self) -> Result<f64> {
        let b = self.take(8)?;
        Ok(f64::from_le_bytes(b.try_into().unwrap()))
    }

    /// Read a one-byte bool.
    pub fn bool(&mut self) -> Result<bool> {
        Ok(self.u8()? != 0)
    }

    /// Read a length-prefixed `f64` slice.
    pub fn f64s(&mut self) -> Result<Vec<f64>> {
        let n = self.usize()?;
        let b = self.take_elems(n, 8)?;
        Ok(b.chunks_exact(8)
            .map(|c| f64::from_le_bytes(c.try_into().unwrap()))
            .collect())
    }

    /// Read a length-prefixed `u64` slice.
    pub fn u64s(&mut self) -> Result<Vec<u64>> {
        let n = self.usize()?;
        let b = self.take_elems(n, 8)?;
        Ok(b.chunks_exact(8)
            .map(|c| u64::from_le_bytes(c.try_into().unwrap()))
            .collect())
    }

    /// Read a length-prefixed [`Complex64`] slice.
    pub fn c64s(&mut self) -> Result<Vec<Complex64>> {
        let n = self.usize()?;
        let b = self.take_elems(n, 16)?;
        Ok(b.chunks_exact(16)
            .map(|c| {
                Complex64::new(
                    f64::from_le_bytes(c[..8].try_into().unwrap()),
                    f64::from_le_bytes(c[8..].try_into().unwrap()),
                )
            })
            .collect())
    }

    /// Read a length-prefixed UTF-8 string.
    pub fn str(&mut self) -> Result<String> {
        let n = self.usize()?;
        let b = self.take(n)?;
        String::from_utf8(b.to_vec()).map_err(|_| Error::transport("invalid UTF-8 string"))
    }
}

/// Write one `[tag][len][payload]` frame (single `write_all`).
pub fn write_frame(w: &mut impl Write, tag: u64, payload: &[u8]) -> Result<()> {
    let mut frame = Vec::with_capacity(16 + payload.len());
    frame.extend_from_slice(&tag.to_le_bytes());
    frame.extend_from_slice(&(payload.len() as u64).to_le_bytes());
    frame.extend_from_slice(payload);
    w.write_all(&frame)
        .and_then(|()| w.flush())
        .map_err(|e| Error::transport(format!("write frame: {e}")))
}

/// Blocking-read one frame; returns `(tag, payload)`.
pub fn read_frame(r: &mut impl Read) -> Result<(u64, Vec<u8>)> {
    let mut header = [0u8; 16];
    r.read_exact(&mut header)
        .map_err(|e| Error::transport(format!("read frame header: {e}")))?;
    let tag = u64::from_le_bytes(header[..8].try_into().unwrap());
    let len = u64::from_le_bytes(header[8..].try_into().unwrap());
    if len > MAX_FRAME_BYTES {
        return Err(Error::transport(format!("frame of {len} bytes refused")));
    }
    let mut payload = vec![0u8; len as usize];
    r.read_exact(&mut payload)
        .map_err(|e| Error::transport(format!("read frame payload: {e}")))?;
    Ok((tag, payload))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_and_slice_roundtrip_is_exact() {
        let mut e = Enc::new();
        e.put_u8(7);
        e.put_u64(u64::MAX - 3);
        e.put_f64(-0.1);
        e.put_bool(true);
        e.put_f64s(&[f64::MIN_POSITIVE, -0.0, f64::INFINITY, 1.0 / 3.0]);
        e.put_u64s(&[0, 1, u64::MAX]);
        e.put_str("ik,kj->ij");
        let bytes = e.finish();
        let mut d = Dec::new(&bytes);
        assert_eq!(d.u8().unwrap(), 7);
        assert_eq!(d.u64().unwrap(), u64::MAX - 3);
        assert_eq!(d.f64().unwrap().to_bits(), (-0.1f64).to_bits());
        assert!(d.bool().unwrap());
        let fs = d.f64s().unwrap();
        assert_eq!(fs[0].to_bits(), f64::MIN_POSITIVE.to_bits());
        assert_eq!(fs[1].to_bits(), (-0.0f64).to_bits());
        assert_eq!(fs[2], f64::INFINITY);
        assert_eq!(fs[3].to_bits(), (1.0f64 / 3.0).to_bits());
        assert_eq!(d.u64s().unwrap(), vec![0, 1, u64::MAX]);
        assert_eq!(d.str().unwrap(), "ik,kj->ij");
    }

    #[test]
    fn complex_payloads_roundtrip_bitwise() {
        let v: Vec<Complex64> = (0..17)
            .map(|i| Complex64::new(1.0 / (i as f64 + 3.0), -(i as f64).sqrt()))
            .collect();
        let mut e = Enc::new();
        e.put_c64s(&v);
        let bytes = e.finish();
        let back = Dec::new(&bytes).c64s().unwrap();
        assert_eq!(back.len(), v.len());
        for (a, b) in v.iter().zip(&back) {
            assert_eq!(a.re.to_bits(), b.re.to_bits());
            assert_eq!(a.im.to_bits(), b.im.to_bits());
        }
    }

    #[test]
    fn truncated_messages_error_instead_of_panicking() {
        let mut e = Enc::new();
        e.put_f64s(&[1.0, 2.0, 3.0]);
        let bytes = e.finish();
        let mut d = Dec::new(&bytes[..bytes.len() - 4]);
        assert!(d.f64s().is_err());
        let mut d = Dec::new(&[0xff; 8]);
        assert!(d.f64s().is_err(), "absurd length prefix must error");
    }

    #[test]
    fn garbage_never_panics_the_primitive_decoders() {
        // deterministic xorshift garbage through every Dec getter: typed
        // errors only, no panics, no absurd allocations
        let mut state = 0x9E37_79B9_7F4A_7C15u64;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        for round in 0..256 {
            let len = (next() % 64) as usize;
            let bytes: Vec<u8> = (0..len).map(|_| next() as u8).collect();
            let mut d = Dec::new(&bytes);
            match round % 8 {
                0 => drop(d.u8()),
                1 => drop(d.u64()),
                2 => drop(d.usize()),
                3 => drop(d.f64()),
                4 => drop(d.f64s()),
                5 => drop(d.u64s()),
                6 => drop(d.c64s()),
                _ => drop(d.str()),
            }
        }
    }

    #[test]
    fn oversized_frame_headers_are_refused() {
        // a corrupt length field must not ask the reader to allocate
        // terabytes — the frame is refused before the payload read
        let mut buf = Vec::new();
        buf.extend_from_slice(&7u64.to_le_bytes());
        buf.extend_from_slice(&(MAX_FRAME_BYTES + 1).to_le_bytes());
        buf.extend_from_slice(&[0u8; 32]);
        assert!(read_frame(&mut &buf[..]).is_err());
    }

    #[test]
    fn frames_roundtrip_over_a_byte_stream() {
        let mut buf = Vec::new();
        write_frame(&mut buf, 42, b"hello").unwrap();
        write_frame(&mut buf, 43, &[]).unwrap();
        let mut r = &buf[..];
        let (tag, payload) = read_frame(&mut r).unwrap();
        assert_eq!((tag, payload.as_slice()), (42, b"hello".as_slice()));
        let (tag, payload) = read_frame(&mut r).unwrap();
        assert_eq!((tag, payload.len()), (43, 0));
        assert!(read_frame(&mut r).is_err(), "EOF must surface as an error");
    }
}

//! Standalone worker process for the multi-process shared-nothing
//! backend: connects to the hub socket named by `TT_DIST_WORKER_SOCKET`
//! (rank from `TT_DIST_WORKER_RANK`) and serves kernel tasks until the
//! driver shuts it down. Spawned by
//! [`SpawnSpec::WorkerBinary`](tt_dist::SpawnSpec::WorkerBinary).

fn main() {
    #[cfg(unix)]
    if let Err(e) = tt_dist::transport::serve_from_env() {
        eprintln!("tt-dist-worker: {e}");
        std::process::exit(1);
    }
    #[cfg(not(unix))]
    {
        eprintln!("tt-dist-worker requires a unix platform");
        std::process::exit(1);
    }
}

//! BSP cost accounting: simulated time, supersteps, critical-path bytes.
//!
//! Besides the shared [`CostTracker`] every executor owns, this module
//! hosts the **job scope** machinery used by the multi-tenant solve
//! service (`tt_dist::service`): a thread-local [`JobScope`] guard that
//! mirrors every charge made on the calling thread into a second,
//! per-job tracker, keeps a per-job *logical charge book* (so a job's
//! miss/hit sequence is exactly what a fresh executor would see — the
//! as-if-run-alone meter), tracks the job's retained operand footprint,
//! and carries an optional per-job request deadline that overrides the
//! transport default. With no scope installed every helper is a no-op
//! passthrough, so single-job callers are unaffected.

use crate::machine::Machine;
use parking_lot::Mutex;
use std::cell::RefCell;
use std::collections::HashSet;
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// Simulated wall time of one run, split into the Fig. 7 categories.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct SimTime {
    /// Dense GEMM compute time.
    pub gemm: f64,
    /// Sparse contraction compute time.
    pub sparse: f64,
    /// TTGT transposition / packing traffic.
    pub transpose: f64,
    /// Communication (α supersteps + β volume).
    pub comm: f64,
    /// Dense SVD/QR time.
    pub svd: f64,
    /// Idle time from uneven tile sizes on the process grid.
    pub imbalance: f64,
    /// Task-mapping and bookkeeping overhead.
    pub other: f64,
}

impl SimTime {
    /// Total simulated seconds.
    pub fn total(&self) -> f64 {
        self.gemm
            + self.sparse
            + self.transpose
            + self.comm
            + self.svd
            + self.imbalance
            + self.other
    }

    /// Percentage breakdown in the paper's Fig. 7 order:
    /// `[svd, imbalance, transposition(+other), communication, gemm+sparse]`.
    pub fn percentages(&self) -> [f64; 5] {
        let t = self.total();
        if t <= 0.0 {
            return [0.0; 5];
        }
        [
            100.0 * self.svd / t,
            100.0 * self.imbalance / t,
            100.0 * (self.transpose + self.other) / t,
            100.0 * self.comm / t,
            100.0 * (self.gemm + self.sparse) / t,
        ]
    }

    /// Accumulate another breakdown into this one.
    pub fn accumulate(&mut self, other: &SimTime) {
        self.gemm += other.gemm;
        self.sparse += other.sparse;
        self.transpose += other.transpose;
        self.comm += other.comm;
        self.svd += other.svd;
        self.imbalance += other.imbalance;
        self.other += other.other;
    }
}

/// Mutable cost state shared (behind a mutex) by everything that charges
/// simulated work: executors, [`crate::Comm`], [`crate::DistMatrix`],
/// [`crate::tsqr`].
#[derive(Clone, Debug)]
pub struct CostTracker {
    /// The machine being simulated.
    pub machine: Machine,
    /// Total ranks participating.
    pub ranks: usize,
    /// Flops executed through the runtime.
    pub flops: u64,
    /// BSP supersteps on the critical path.
    pub supersteps: u64,
    /// Bytes moved along the critical path.
    pub bytes_critical: u64,
    /// Operand bytes the driver actually shipped to workers (request
    /// payloads on the multi-process data plane; zero on the in-process
    /// backends, which move nothing).
    pub bytes_operands: u64,
    /// Result bytes workers actually returned to the driver (reply
    /// payloads on the multi-process data plane).
    pub bytes_results: u64,
    /// Bytes moved only because of fault recovery: journal replay and
    /// re-issued in-flight requests after a worker respawn/retire, plus
    /// undecodable reply frames. Kept separate so `bytes_operands` /
    /// `bytes_results` stay equal to the fault-free run — the
    /// determinism-under-recovery contract.
    pub bytes_recovery: u64,
    /// Simulated time breakdown.
    pub sim: SimTime,
}

impl CostTracker {
    /// Fresh tracker for `ranks` ranks of `machine`.
    pub fn new(machine: Machine, ranks: usize) -> Self {
        Self {
            machine,
            ranks: ranks.max(1),
            flops: 0,
            supersteps: 0,
            bytes_critical: 0,
            bytes_operands: 0,
            bytes_results: 0,
            bytes_recovery: 0,
            sim: SimTime::default(),
        }
    }

    /// Zero all counters (the machine and rank count are kept).
    pub fn reset(&mut self) {
        self.flops = 0;
        self.supersteps = 0;
        self.bytes_critical = 0;
        self.bytes_operands = 0;
        self.bytes_results = 0;
        self.bytes_recovery = 0;
        self.sim = SimTime::default();
    }

    /// Charge one BSP superstep moving `bytes` along the critical path.
    pub fn charge_superstep(&mut self, bytes: u64) {
        self.supersteps += 1;
        self.bytes_critical += bytes;
        self.sim.comm += self.machine.alpha_s + bytes as f64 * self.machine.beta_s_per_byte;
    }

    /// Charge `steps` supersteps that together move `bytes`.
    pub fn charge_supersteps(&mut self, steps: u64, bytes: u64) {
        self.supersteps += steps;
        self.bytes_critical += bytes;
        self.sim.comm +=
            steps as f64 * self.machine.alpha_s + bytes as f64 * self.machine.beta_s_per_byte;
    }
}

/// Live operand-footprint meter for one job: net retained words and the
/// peak, fed by the executor's upload/free paths while a [`JobScope`] is
/// installed. Shared with the service scheduler, which enforces the
/// per-job resident-byte cap against [`ResidentMeter::peak_bytes`].
#[derive(Debug, Default)]
pub struct ResidentMeter {
    words: AtomicI64,
    peak_words: AtomicU64,
}

impl ResidentMeter {
    /// Fresh meter at zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Account a retain (+words) or release (-words).
    fn account(&self, delta_words: i64) {
        let now = self.words.fetch_add(delta_words, Ordering::Relaxed) + delta_words;
        if now > 0 {
            self.peak_words.fetch_max(now as u64, Ordering::Relaxed);
        }
    }

    /// Currently retained operand bytes (8 bytes per word).
    pub fn bytes(&self) -> u64 {
        self.words.load(Ordering::Relaxed).max(0) as u64 * 8
    }

    /// Peak retained operand bytes over the scope's lifetime.
    pub fn peak_bytes(&self) -> u64 {
        self.peak_words.load(Ordering::Relaxed) * 8
    }
}

/// The scope's private mirror of the driver's logical charge book,
/// with the same lifecycle as [`Residency`](crate::handle): lkeys charge
/// once per *resident period* of their content, and the job's final free
/// of a content forgets its lkeys — so a later re-upload re-charges,
/// exactly as it would on a fresh single-tenant executor.
#[derive(Default)]
struct ScopeBook {
    /// Logical derived keys already charged.
    charged: HashSet<u64>,
    /// Per-content upload refcount and the lkeys charged under it.
    contents: std::collections::HashMap<u64, (usize, Vec<u64>)>,
}

impl ScopeBook {
    fn retain(&mut self, content: u64) {
        self.contents.entry(content).or_insert((0, Vec::new())).0 += 1;
    }

    fn observe(&mut self, content: u64, lkey: u64) -> bool {
        if !self.charged.insert(lkey) {
            return false;
        }
        if let Some((_, lkeys)) = self.contents.get_mut(&content) {
            lkeys.push(lkey);
        }
        true
    }

    fn release(&mut self, content: u64) {
        if let Some((rc, lkeys)) = self.contents.get_mut(&content) {
            *rc = rc.saturating_sub(1);
            if *rc == 0 {
                for k in lkeys.drain(..) {
                    self.charged.remove(&k);
                }
                self.contents.remove(&content);
            }
        }
    }
}

struct ScopeState {
    tracker: Arc<Mutex<CostTracker>>,
    book: ScopeBook,
    resident: Arc<ResidentMeter>,
    deadline: Option<Duration>,
}

thread_local! {
    static JOB_SCOPE: RefCell<Option<ScopeState>> = const { RefCell::new(None) };
}

/// RAII guard installing a per-job cost scope on the **current thread**.
///
/// While alive, every α–β / flop / byte charge made on this thread is
/// mirrored into `tracker` (in addition to the executor's shared
/// tracker), operand hit/miss classification consults the scope's own
/// logical charge book instead of the executor-wide one, retained
/// operand words are accounted into `resident`, and blocking transport
/// operations use `deadline` (when set) instead of the fleet default.
///
/// The multi-process backend executes entirely on the calling thread, so
/// thread-local attribution captures a job completely. Scopes do not
/// nest: installing a second scope on the same thread panics.
pub struct JobScope {
    _not_send: std::marker::PhantomData<*const ()>,
}

impl JobScope {
    /// Install a scope on this thread. `tracker` should be fresh
    /// (`CostTracker::new` with the executor's machine and rank count)
    /// so the mirrored charges read as a standalone run.
    pub fn enter(
        tracker: Arc<Mutex<CostTracker>>,
        resident: Arc<ResidentMeter>,
        deadline: Option<Duration>,
    ) -> Self {
        JOB_SCOPE.with(|s| {
            let mut slot = s.borrow_mut();
            assert!(slot.is_none(), "job scopes do not nest");
            *slot = Some(ScopeState {
                tracker,
                book: ScopeBook::default(),
                resident,
                deadline,
            });
        });
        JobScope {
            _not_send: std::marker::PhantomData,
        }
    }
}

impl Drop for JobScope {
    fn drop(&mut self) {
        JOB_SCOPE.with(|s| s.borrow_mut().take());
    }
}

/// Apply `f` to the shared tracker and, when a [`JobScope`] is installed
/// on this thread, to the job's tracker too. The two locks are taken
/// sequentially, never nested.
pub(crate) fn charge(main: &Mutex<CostTracker>, f: impl Fn(&mut CostTracker)) {
    f(&mut main.lock());
    JOB_SCOPE.with(|s| {
        if let Some(state) = s.borrow().as_ref() {
            f(&mut state.tracker.lock());
        }
    });
}

/// When a scope is installed, record one upload of `content` in the
/// job's charge book.
pub(crate) fn scope_retain(content: u64) {
    JOB_SCOPE.with(|s| {
        if let Some(state) = s.borrow_mut().as_mut() {
            state.book.retain(content);
        }
    });
}

/// When a scope is installed, record `lkey` (derived from `content`) in
/// the job's charge book and return `Some(first_sighting)`; `None` means
/// no scope (use the executor-wide book).
pub(crate) fn scope_observe(content: u64, lkey: u64) -> Option<bool> {
    JOB_SCOPE.with(|s| {
        s.borrow_mut()
            .as_mut()
            .map(|state| state.book.observe(content, lkey))
    })
}

/// When a scope is installed, record one free of `content`: the last
/// free forgets the content's charged lkeys, so a re-upload re-charges
/// as it would on a fresh executor.
pub(crate) fn scope_release(content: u64) {
    JOB_SCOPE.with(|s| {
        if let Some(state) = s.borrow_mut().as_mut() {
            state.book.release(content);
        }
    });
}

/// The per-job deadline of the scope installed on this thread, if any.
pub(crate) fn scope_deadline() -> Option<Duration> {
    JOB_SCOPE.with(|s| s.borrow().as_ref().and_then(|state| state.deadline))
}

/// Account retained operand words (+retain / -release) to the scope's
/// resident meter, if one is installed.
pub(crate) fn scope_account(delta_words: i64) {
    JOB_SCOPE.with(|s| {
        if let Some(state) = s.borrow().as_ref() {
            state.resident.account(delta_words);
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percentages_sum_to_100() {
        let sim = SimTime {
            gemm: 1.0,
            sparse: 2.0,
            transpose: 0.5,
            comm: 1.5,
            svd: 3.0,
            imbalance: 1.0,
            other: 1.0,
        };
        let p = sim.percentages();
        assert!((p.iter().sum::<f64>() - 100.0).abs() < 1e-9);
        assert_eq!(SimTime::default().percentages(), [0.0; 5]);
    }

    #[test]
    fn superstep_charging_uses_alpha_beta() {
        let mut t = CostTracker::new(Machine::blue_waters(16), 4);
        t.charge_superstep(9_600);
        assert_eq!(t.supersteps, 1);
        assert_eq!(t.bytes_critical, 9_600);
        let expect = 1.5e-6 + 9_600.0 / 9.6e9;
        assert!((t.sim.comm - expect).abs() < 1e-12);
        t.reset();
        assert_eq!(t.supersteps, 0);
        assert_eq!(t.sim.total(), 0.0);
    }

    #[test]
    fn job_scope_mirrors_charges_and_books_independently() {
        let main = Mutex::new(CostTracker::new(Machine::local(), 2));
        // No scope: helpers are passthrough.
        assert_eq!(scope_observe(1, 7), None);
        assert_eq!(scope_deadline(), None);
        charge(&main, |t| t.flops += 10);
        assert_eq!(main.lock().flops, 10);

        let job = Arc::new(Mutex::new(CostTracker::new(Machine::local(), 2)));
        let meter = Arc::new(ResidentMeter::new());
        {
            let _scope = JobScope::enter(
                Arc::clone(&job),
                Arc::clone(&meter),
                Some(Duration::from_millis(250)),
            );
            charge(&main, |t| {
                t.flops += 5;
                t.charge_superstep(800);
            });
            // The job's book starts empty even though the main side saw 7.
            scope_retain(1);
            assert_eq!(scope_observe(1, 7), Some(true));
            assert_eq!(scope_observe(1, 7), Some(false));
            // A second upload of the content keeps the book entry alive
            // across the first free; the last free forgets it.
            scope_retain(1);
            scope_release(1);
            assert_eq!(scope_observe(1, 7), Some(false));
            scope_release(1);
            assert_eq!(scope_observe(1, 7), Some(true));
            assert_eq!(scope_deadline(), Some(Duration::from_millis(250)));
            scope_account(100);
            scope_account(-40);
            scope_account(60);
        }
        assert_eq!(main.lock().flops, 15);
        assert_eq!(job.lock().flops, 5);
        assert_eq!(job.lock().supersteps, 1);
        assert_eq!(job.lock().bytes_critical, 800);
        assert_eq!(meter.bytes(), 120 * 8);
        assert_eq!(meter.peak_bytes(), 120 * 8);
        // Guard dropped: thread-local cleared.
        assert_eq!(scope_observe(1, 9), None);
        assert_eq!(scope_deadline(), None);
    }
}

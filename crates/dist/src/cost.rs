//! BSP cost accounting: simulated time, supersteps, critical-path bytes.

use crate::machine::Machine;

/// Simulated wall time of one run, split into the Fig. 7 categories.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct SimTime {
    /// Dense GEMM compute time.
    pub gemm: f64,
    /// Sparse contraction compute time.
    pub sparse: f64,
    /// TTGT transposition / packing traffic.
    pub transpose: f64,
    /// Communication (α supersteps + β volume).
    pub comm: f64,
    /// Dense SVD/QR time.
    pub svd: f64,
    /// Idle time from uneven tile sizes on the process grid.
    pub imbalance: f64,
    /// Task-mapping and bookkeeping overhead.
    pub other: f64,
}

impl SimTime {
    /// Total simulated seconds.
    pub fn total(&self) -> f64 {
        self.gemm
            + self.sparse
            + self.transpose
            + self.comm
            + self.svd
            + self.imbalance
            + self.other
    }

    /// Percentage breakdown in the paper's Fig. 7 order:
    /// `[svd, imbalance, transposition(+other), communication, gemm+sparse]`.
    pub fn percentages(&self) -> [f64; 5] {
        let t = self.total();
        if t <= 0.0 {
            return [0.0; 5];
        }
        [
            100.0 * self.svd / t,
            100.0 * self.imbalance / t,
            100.0 * (self.transpose + self.other) / t,
            100.0 * self.comm / t,
            100.0 * (self.gemm + self.sparse) / t,
        ]
    }

    /// Accumulate another breakdown into this one.
    pub fn accumulate(&mut self, other: &SimTime) {
        self.gemm += other.gemm;
        self.sparse += other.sparse;
        self.transpose += other.transpose;
        self.comm += other.comm;
        self.svd += other.svd;
        self.imbalance += other.imbalance;
        self.other += other.other;
    }
}

/// Mutable cost state shared (behind a mutex) by everything that charges
/// simulated work: executors, [`crate::Comm`], [`crate::DistMatrix`],
/// [`crate::tsqr`].
#[derive(Clone, Debug)]
pub struct CostTracker {
    /// The machine being simulated.
    pub machine: Machine,
    /// Total ranks participating.
    pub ranks: usize,
    /// Flops executed through the runtime.
    pub flops: u64,
    /// BSP supersteps on the critical path.
    pub supersteps: u64,
    /// Bytes moved along the critical path.
    pub bytes_critical: u64,
    /// Operand bytes the driver actually shipped to workers (request
    /// payloads on the multi-process data plane; zero on the in-process
    /// backends, which move nothing).
    pub bytes_operands: u64,
    /// Result bytes workers actually returned to the driver (reply
    /// payloads on the multi-process data plane).
    pub bytes_results: u64,
    /// Bytes moved only because of fault recovery: journal replay and
    /// re-issued in-flight requests after a worker respawn/retire, plus
    /// undecodable reply frames. Kept separate so `bytes_operands` /
    /// `bytes_results` stay equal to the fault-free run — the
    /// determinism-under-recovery contract.
    pub bytes_recovery: u64,
    /// Simulated time breakdown.
    pub sim: SimTime,
}

impl CostTracker {
    /// Fresh tracker for `ranks` ranks of `machine`.
    pub fn new(machine: Machine, ranks: usize) -> Self {
        Self {
            machine,
            ranks: ranks.max(1),
            flops: 0,
            supersteps: 0,
            bytes_critical: 0,
            bytes_operands: 0,
            bytes_results: 0,
            bytes_recovery: 0,
            sim: SimTime::default(),
        }
    }

    /// Zero all counters (the machine and rank count are kept).
    pub fn reset(&mut self) {
        self.flops = 0;
        self.supersteps = 0;
        self.bytes_critical = 0;
        self.bytes_operands = 0;
        self.bytes_results = 0;
        self.bytes_recovery = 0;
        self.sim = SimTime::default();
    }

    /// Charge one BSP superstep moving `bytes` along the critical path.
    pub fn charge_superstep(&mut self, bytes: u64) {
        self.supersteps += 1;
        self.bytes_critical += bytes;
        self.sim.comm += self.machine.alpha_s + bytes as f64 * self.machine.beta_s_per_byte;
    }

    /// Charge `steps` supersteps that together move `bytes`.
    pub fn charge_supersteps(&mut self, steps: u64, bytes: u64) {
        self.supersteps += steps;
        self.bytes_critical += bytes;
        self.sim.comm +=
            steps as f64 * self.machine.alpha_s + bytes as f64 * self.machine.beta_s_per_byte;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percentages_sum_to_100() {
        let sim = SimTime {
            gemm: 1.0,
            sparse: 2.0,
            transpose: 0.5,
            comm: 1.5,
            svd: 3.0,
            imbalance: 1.0,
            other: 1.0,
        };
        let p = sim.percentages();
        assert!((p.iter().sum::<f64>() - 100.0).abs() < 1e-9);
        assert_eq!(SimTime::default().percentages(), [0.0; 5]);
    }

    #[test]
    fn superstep_charging_uses_alpha_beta() {
        let mut t = CostTracker::new(Machine::blue_waters(16), 4);
        t.charge_superstep(9_600);
        assert_eq!(t.supersteps, 1);
        assert_eq!(t.bytes_critical, 9_600);
        let expect = 1.5e-6 + 9_600.0 / 9.6e9;
        assert!((t.sim.comm - expect).abs() < 1e-12);
        t.reset();
        assert_eq!(t.supersteps, 0);
        assert_eq!(t.sim.total(), 0.0);
    }
}

//! Communication-avoiding tall-skinny QR (TSQR) on the simulated runtime.
//!
//! Rows are split into one contiguous slab per rank; each slab is factored
//! with [`tt_linalg::qr_thin`], then the `R` factors are merged pairwise up
//! a binary tree — the classic TSQR butterfly. Per tree level the tracker
//! is charged one superstep moving a single `R` (at most `n × n` values),
//! which is what makes TSQR latency-optimal compared to gathering the
//! whole panel.

use crate::cluster::Cluster;
use crate::comm::Comm;
use crate::handle::{derive, OpHandle};
use crate::transport::worker::{OpF, Reply, Request};
use crate::{Error, Executor, Result};
use tt_linalg::qr_thin;
use tt_tensor::gemm::gemm_acc_slices;
use tt_tensor::DenseTensor;

/// Derived-buffer purpose tag for resident TSQR row slabs.
const TAG_TSQR: u64 = 0x7A;

/// TSQR of an `m × n` matrix over `comm`'s ranks: returns `(Q, R)` with
/// `Q` of size `m × min(m, n)` having orthonormal columns.
///
/// Numerically this is a genuine tree QR (not a gathered factorization),
/// so `Q`/`R` match [`qr_thin`] only up to per-column sign.
pub fn tsqr(a: &DenseTensor<f64>, comm: &Comm) -> Result<(DenseTensor<f64>, DenseTensor<f64>)> {
    if a.order() != 2 {
        return Err(crate::Error::Runtime(format!(
            "tsqr wants a matrix, got order {}",
            a.order()
        )));
    }
    let (m, n) = (a.dims()[0], a.dims()[1]);
    let p = comm.ranks().clamp(1, m.max(1));
    if p == 1 {
        return Ok(qr_thin(a)?);
    }

    // Local slab factorizations (one per simulated rank).
    let rows_per = m.div_ceil(p);
    let data = a.data();
    let mut factors: Vec<(DenseTensor<f64>, DenseTensor<f64>)> = Vec::new();
    let mut r0 = 0usize;
    while r0 < m {
        let r1 = (r0 + rows_per).min(m);
        let slab = DenseTensor::from_vec([r1 - r0, n], data[r0 * n..r1 * n].to_vec())?;
        factors.push(qr_thin(&slab)?);
        r0 = r1;
    }
    merge_tree(factors, n, comm)
}

/// TSQR with the slab factorizations executed on a [`Cluster`]'s worker
/// ranks (one `qr_thin` task per slab, round-robin) and the `R`-merge tree
/// run on the driver. Slab boundaries and merge order are identical to
/// [`tsqr`], so the factors are bitwise-identical to the in-process run.
pub fn tsqr_on(
    a: &DenseTensor<f64>,
    comm: &Comm,
    cluster: &mut Cluster,
) -> Result<(DenseTensor<f64>, DenseTensor<f64>)> {
    if a.order() != 2 {
        return Err(crate::Error::Runtime(format!(
            "tsqr wants a matrix, got order {}",
            a.order()
        )));
    }
    let (m, n) = (a.dims()[0], a.dims()[1]);
    let p = comm.ranks().clamp(1, m.max(1));
    let rows_per = m.div_ceil(p);
    let data = a.data();
    let workers = cluster.ranks();
    let mut reqs: Vec<(usize, Request)> = Vec::new();
    let mut r0 = 0usize;
    while r0 < m {
        let r1 = (r0 + rows_per).min(m);
        reqs.push((
            reqs.len() % workers,
            Request::QrThin {
                rows: r1 - r0,
                cols: n,
                a: OpF::Inline(data[r0 * n..r1 * n].to_vec()),
            },
        ));
        r0 = r1;
    }
    let mut factors = Vec::with_capacity(reqs.len());
    for reply in cluster.call_all(reqs)? {
        factors.push(decode_factors(reply)?);
    }
    merge_tree(factors, n, comm)
}

fn decode_factors(reply: Reply) -> Result<(DenseTensor<f64>, DenseTensor<f64>)> {
    match reply {
        Reply::Factors {
            q_rows,
            q_cols,
            q,
            r_rows,
            r_cols,
            r,
        } => Ok((
            DenseTensor::from_vec([q_rows, q_cols], q)?,
            DenseTensor::from_vec([r_rows, r_cols], r)?,
        )),
        other => Err(Error::transport(format!(
            "expected slab factors, got {other:?}"
        ))),
    }
}

/// TSQR of a *resident* panel: the handle's row slabs are pinned on the
/// executor's worker ranks at first use (same lifecycle as every other
/// operand handle — [`Executor::free`] releases them), so repeated TSQR
/// factorizations of the same panel ship zero operand bytes. Slab
/// boundaries and merge order match [`tsqr`], so the factors are
/// bitwise-identical to the value-passing runs; without a cluster the
/// numerics fall back to [`tsqr`] on the handle's payload while the
/// residency charges are still replayed for backend-identical counters.
pub fn tsqr_on_h(
    exec: &Executor,
    h: &OpHandle,
    comm: &Comm,
) -> Result<(DenseTensor<f64>, DenseTensor<f64>)> {
    let a = h.dense()?;
    if a.order() != 2 {
        return Err(crate::Error::Runtime(format!(
            "tsqr wants a matrix, got order {}",
            a.order()
        )));
    }
    let (m, n) = (a.dims()[0], a.dims()[1]);
    let p = comm.ranks().clamp(1, m.max(1));
    // one-time upload charge on first use, identical on every backend
    let lkey = derive(&[h.key(), TAG_TSQR, p as u64]);
    if exec.residency().lock().observe(h.key(), lkey) {
        comm.charge_p2p(8 * (m * n) as u64);
    }
    let factors = exec.with_cluster(|cluster| -> Result<_> {
        let rows_per = m.div_ceil(p);
        let workers = cluster.ranks();
        let mut reqs: Vec<(usize, Request)> = Vec::new();
        let mut slabs = Vec::new();
        let mut r0 = 0usize;
        while r0 < m {
            let r1 = (r0 + rows_per).min(m);
            slabs.push((r0, r1));
            r0 = r1;
        }
        {
            let mut res = exec.residency().lock();
            let data = a.data();
            for (i, &(r0, r1)) in slabs.iter().enumerate() {
                let wkey = derive(&[h.key(), TAG_TSQR, p as u64, slabs.len() as u64, i as u64]);
                if res.add_home(h.key(), wkey, i % workers) {
                    reqs.push((
                        i % workers,
                        Request::Upload {
                            key: wkey,
                            data: data[r0 * n..r1 * n].to_vec(),
                        },
                    ));
                }
            }
        }
        let n_uploads = reqs.len();
        for (i, &(r0, r1)) in slabs.iter().enumerate() {
            let wkey = derive(&[h.key(), TAG_TSQR, p as u64, slabs.len() as u64, i as u64]);
            reqs.push((
                i % workers,
                Request::QrThin {
                    rows: r1 - r0,
                    cols: n,
                    a: OpF::Key(wkey),
                },
            ));
        }
        let mut factors = Vec::with_capacity(slabs.len());
        for reply in cluster.call_all(reqs)?.into_iter().skip(n_uploads) {
            factors.push(decode_factors(reply)?);
        }
        Ok(factors)
    });
    match factors {
        Some(factors) => merge_tree(factors?, n, comm),
        // in-process: the handle is a plain Arc — same slab/merge code
        None => tsqr(a, comm),
    }
}

/// Merge slab `(Q, R)` factors pairwise up the binary tree; one superstep
/// per level, critical path carries one `R` factor (≤ `n×n` words).
fn merge_tree(
    mut factors: Vec<(DenseTensor<f64>, DenseTensor<f64>)>,
    n: usize,
    comm: &Comm,
) -> Result<(DenseTensor<f64>, DenseTensor<f64>)> {
    while factors.len() > 1 {
        let mut next = Vec::with_capacity(factors.len().div_ceil(2));
        let mut max_r_words = 0usize;
        let mut pairs = factors.into_iter();
        while let Some((q1, r1)) = pairs.next() {
            match pairs.next() {
                Some((q2, r2)) => {
                    let k1 = r1.dims()[0];
                    let k2 = r2.dims()[0];
                    max_r_words = max_r_words.max(k2 * n);
                    // Stack [R1; R2] and factor again.
                    let mut stacked = Vec::with_capacity((k1 + k2) * n);
                    stacked.extend_from_slice(r1.data());
                    stacked.extend_from_slice(r2.data());
                    let s = DenseTensor::from_vec([k1 + k2, n], stacked)?;
                    let (qs, r) = qr_thin(&s)?;
                    let kk = qs.dims()[1];
                    // Propagate: Q ← [Q1·Qs_top ; Q2·Qs_bot]. Qs is
                    // row-major, so the two row blocks are contiguous.
                    let qs_data = qs.data();
                    let top = &qs_data[..k1 * kk];
                    let bot = &qs_data[k1 * kk..(k1 + k2) * kk];
                    let m1 = q1.dims()[0];
                    let m2 = q2.dims()[0];
                    let mut q = vec![0.0f64; (m1 + m2) * kk];
                    gemm_acc_slices(m1, k1, kk, q1.data(), top, &mut q[..m1 * kk]);
                    gemm_acc_slices(m2, k2, kk, q2.data(), bot, &mut q[m1 * kk..]);
                    next.push((DenseTensor::from_vec([m1 + m2, kk], q)?, r));
                }
                None => next.push((q1, r1)), // odd leftover rides up a level
            }
        }
        comm.charge_p2p(8 * max_r_words as u64);
        factors = next;
    }
    let (q, r) = factors.pop().expect("non-empty tree");
    Ok((q, r))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cost::CostTracker;
    use crate::exec::ExecMode;
    use crate::machine::Machine;
    use parking_lot::Mutex;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use std::sync::Arc;
    use tt_tensor::{gemm, gemm_f64, Layout};

    fn comm(p: usize) -> Comm {
        let tracker = Arc::new(Mutex::new(CostTracker::new(Machine::blue_waters(16), p)));
        Comm::new(p, ExecMode::Sequential, tracker)
    }

    #[test]
    fn reconstructs_and_is_orthonormal() {
        let mut rng = StdRng::seed_from_u64(51);
        let a = DenseTensor::<f64>::random([96, 7], &mut rng);
        for p in [2usize, 3, 4, 8] {
            let c = comm(p);
            let (q, r) = tsqr(&a, &c).unwrap();
            assert_eq!(q.dims(), &[96, 7]);
            assert_eq!(r.dims(), &[7, 7]);
            assert!(gemm_f64(&q, &r).unwrap().allclose(&a, 1e-10), "p={p}");
            let qtq = gemm(&q, Layout::Transposed, &q, Layout::Normal).unwrap();
            assert!(qtq.allclose(&DenseTensor::eye(7), 1e-10), "p={p}");
            let t = c.tracker().lock();
            assert!(t.supersteps >= (p as f64).log2().ceil() as u64);
            assert!(t.bytes_critical > 0);
        }
    }

    #[test]
    fn matches_qr_thin_up_to_sign() {
        let mut rng = StdRng::seed_from_u64(52);
        let a = DenseTensor::<f64>::random([64, 5], &mut rng);
        let (q_ref, r_ref) = qr_thin(&a).unwrap();
        let c = comm(4);
        let (q, r) = tsqr(&a, &c).unwrap();
        for j in 0..5 {
            // Column sign fixed by comparing the leading R entries.
            let sign = (r.at(&[j, j]) * r_ref.at(&[j, j])).signum();
            for i in 0..64 {
                assert!(
                    (q.at(&[i, j]) - sign * q_ref.at(&[i, j])).abs() < 1e-9,
                    "Q column {j} differs beyond sign"
                );
            }
            for jj in j..5 {
                assert!((r.at(&[j, jj]) - sign * r_ref.at(&[j, jj])).abs() < 1e-9);
            }
        }
    }

    #[test]
    fn single_rank_degenerates_to_qr_thin() {
        let mut rng = StdRng::seed_from_u64(53);
        let a = DenseTensor::<f64>::random([20, 4], &mut rng);
        let c = comm(1);
        let (q, r) = tsqr(&a, &c).unwrap();
        let (q2, r2) = qr_thin(&a).unwrap();
        assert_eq!(q.data(), q2.data());
        assert_eq!(r.data(), r2.data());
        assert_eq!(c.tracker().lock().supersteps, 0);
    }

    #[test]
    fn tsqr_on_cluster_is_bitwise_identical() {
        let mut rng = StdRng::seed_from_u64(55);
        let a = DenseTensor::<f64>::random([96, 7], &mut rng);
        for p in [1usize, 2, 4, 5] {
            let c_ref = comm(p);
            let (q_ref, r_ref) = tsqr(&a, &c_ref).unwrap();
            let mut cl = crate::Cluster::in_process(3);
            let c = comm(p);
            let (q, r) = tsqr_on(&a, &c, &mut cl).unwrap();
            assert_eq!(q.data(), q_ref.data(), "p={p}");
            assert_eq!(r.data(), r_ref.data(), "p={p}");
            assert_eq!(
                c.tracker().lock().supersteps,
                c_ref.tracker().lock().supersteps
            );
        }
    }

    #[cfg(unix)]
    #[test]
    fn tsqr_on_real_processes_is_bitwise() {
        let mut rng = StdRng::seed_from_u64(56);
        let a = DenseTensor::<f64>::random([64, 5], &mut rng);
        let c_ref = comm(4);
        let (q_ref, r_ref) = tsqr(&a, &c_ref).unwrap();
        let spawn = crate::transport::SpawnSpec::SelfExec(vec!["spawned_worker_entry".into()]);
        let mut cl = crate::Cluster::multi_process(2, &spawn).unwrap();
        let c = comm(4);
        let (q, r) = tsqr_on(&a, &c, &mut cl).unwrap();
        assert_eq!(q.data(), q_ref.data());
        assert_eq!(r.data(), r_ref.data());
    }

    #[test]
    fn tsqr_on_h_in_process_matches_tsqr_bitwise() {
        use crate::exec::ExecMode;
        let mut rng = StdRng::seed_from_u64(57);
        let a = DenseTensor::<f64>::random([80, 6], &mut rng);
        let exec = crate::Executor::with_machine(Machine::blue_waters(2), 2, ExecMode::Sequential);
        let h = exec.upload(&a);
        let c_ref = comm(4);
        let (q_ref, r_ref) = tsqr(&a, &c_ref).unwrap();
        let c = comm(4);
        let (q, r) = tsqr_on_h(&exec, &h, &c).unwrap();
        assert_eq!(q.data(), q_ref.data());
        assert_eq!(r.data(), r_ref.data());
        // the first use charges the one-time panel upload on top of the
        // merge-tree supersteps; the second (cache hit) does not
        let first = c.tracker().lock().bytes_critical;
        let (q2, _) = tsqr_on_h(&exec, &h, &c).unwrap();
        assert_eq!(q2.data(), q_ref.data());
        let second = c.tracker().lock().bytes_critical - first;
        assert!(second < first, "hit must charge less: {second} vs {first}");
        exec.free(&h).unwrap();
    }

    #[cfg(unix)]
    #[test]
    fn tsqr_on_h_over_processes_reuses_resident_slabs() {
        let mut rng = StdRng::seed_from_u64(58);
        let a = DenseTensor::<f64>::random([72, 5], &mut rng);
        let c_ref = comm(4);
        let (q_ref, r_ref) = tsqr(&a, &c_ref).unwrap();
        let spawn = crate::transport::SpawnSpec::SelfExec(vec!["spawned_worker_entry".into()]);
        let mp = crate::Executor::multi_process(Machine::blue_waters(2), 2, 2, spawn).unwrap();
        let h = mp.upload(&a);
        let c = comm(4);
        let (q, r) = tsqr_on_h(&mp, &h, &c).unwrap();
        assert_eq!(q.data(), q_ref.data());
        assert_eq!(r.data(), r_ref.data());
        let first = mp.operand_bytes();
        let (q2, r2) = tsqr_on_h(&mp, &h, &c).unwrap();
        let repeat = mp.operand_bytes() - first;
        assert_eq!(q2.data(), q_ref.data());
        assert_eq!(r2.data(), r_ref.data());
        // the repeat ships only task headers against the resident slabs
        assert!(
            repeat * 4 < first,
            "resident panel must not re-ship: first {first}, repeat {repeat}"
        );
        mp.free(&h).unwrap();
    }

    #[test]
    fn wide_matrix_still_factors() {
        let mut rng = StdRng::seed_from_u64(54);
        let a = DenseTensor::<f64>::random([6, 10], &mut rng);
        let c = comm(3);
        let (q, r) = tsqr(&a, &c).unwrap();
        assert!(gemm_f64(&q, &r).unwrap().allclose(&a, 1e-10));
    }
}

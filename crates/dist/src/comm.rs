//! Collective-communication volume accounting.
//!
//! A [`Comm`] represents a communicator over `ranks` simulated processes.
//! Its methods do no data movement — they charge the [`CostTracker`] with
//! the supersteps and critical-path bytes the corresponding MPI collective
//! would cost under the α–β model (tree collectives: `⌈log₂ p⌉`
//! supersteps).

use crate::cost::{self, CostTracker};
use crate::exec::ExecMode;
use parking_lot::Mutex;
use std::sync::Arc;

/// A simulated communicator: rank count, execution mode and the shared
/// cost tracker collectives charge into.
#[derive(Clone)]
pub struct Comm {
    ranks: usize,
    mode: ExecMode,
    tracker: Arc<Mutex<CostTracker>>,
}

impl Comm {
    /// Communicator over `ranks` processes charging into `tracker`.
    pub fn new(ranks: usize, mode: ExecMode, tracker: Arc<Mutex<CostTracker>>) -> Self {
        Self {
            ranks: ranks.max(1),
            mode,
            tracker,
        }
    }

    /// Number of participating ranks.
    pub fn ranks(&self) -> usize {
        self.ranks
    }

    /// The communicator's execution mode.
    pub fn mode(&self) -> ExecMode {
        self.mode
    }

    /// The shared cost tracker.
    pub fn tracker(&self) -> &Arc<Mutex<CostTracker>> {
        &self.tracker
    }

    /// Operand bytes the driver actually shipped to workers since the
    /// last reset (multi-process data plane; zero in-process). Together
    /// with [`Comm::result_bytes`] this is the per-category bytes-shipped
    /// observability the resident-operand cache is measured by.
    pub fn operand_bytes(&self) -> u64 {
        self.tracker.lock().bytes_operands
    }

    /// Result bytes workers returned to the driver since the last reset.
    pub fn result_bytes(&self) -> u64 {
        self.tracker.lock().bytes_results
    }

    /// Depth of a binomial collective tree over the ranks.
    fn tree_depth(&self) -> u64 {
        (usize::BITS - (self.ranks - 1).leading_zeros()) as u64
    }

    /// Point-to-point message of `bytes`: one superstep, full volume.
    pub fn charge_p2p(&self, bytes: u64) {
        cost::charge(&self.tracker, |t| t.charge_superstep(bytes));
    }

    /// Allreduce of `words` f64 values: `⌈log₂ p⌉` supersteps, ~2·bytes on
    /// the critical path (reduce-scatter + allgather).
    pub fn allreduce(&self, words: u64) {
        if self.ranks <= 1 {
            return;
        }
        let bytes = 2 * 8 * words;
        cost::charge(&self.tracker, |t| {
            t.charge_supersteps(self.tree_depth(), bytes)
        });
    }

    /// Allgather where each rank contributes `words_per_rank` f64 values:
    /// `⌈log₂ p⌉` supersteps, `(p−1)/p` of the gathered volume per rank.
    pub fn allgather(&self, words_per_rank: u64) {
        if self.ranks <= 1 {
            return;
        }
        let p = self.ranks as u64;
        let bytes = 8 * words_per_rank * (p - 1);
        cost::charge(&self.tracker, |t| {
            t.charge_supersteps(self.tree_depth(), bytes)
        });
    }

    /// Scatter of `words_total` f64 values from one root: `⌈log₂ p⌉`
    /// supersteps, the root injects all but its own share.
    pub fn scatter(&self, words_total: u64) {
        if self.ranks <= 1 {
            return;
        }
        let p = self.ranks as u64;
        let bytes = 8 * words_total * (p - 1) / p;
        cost::charge(&self.tracker, |t| {
            t.charge_supersteps(self.tree_depth(), bytes)
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::machine::Machine;

    fn comm(p: usize) -> Comm {
        let tracker = Arc::new(Mutex::new(CostTracker::new(Machine::blue_waters(16), p)));
        Comm::new(p, ExecMode::Sequential, tracker)
    }

    #[test]
    fn single_rank_collectives_are_free() {
        let c = comm(1);
        c.allreduce(1000);
        c.allgather(1000);
        c.scatter(1000);
        let t = c.tracker().lock();
        assert_eq!(t.supersteps, 0);
        assert_eq!(t.bytes_critical, 0);
        assert_eq!(t.sim.comm, 0.0);
    }

    #[test]
    fn tree_collectives_charge_log_supersteps() {
        let c = comm(8);
        c.allreduce(100);
        assert_eq!(c.tracker().lock().supersteps, 3);
        c.charge_p2p(64);
        let t = c.tracker().lock();
        assert_eq!(t.supersteps, 4);
        assert!(t.bytes_critical > 0 && t.sim.comm > 0.0);
    }

    /// `⌈log₂ p⌉` — the tree depth every collective charges.
    fn depth(p: usize) -> u64 {
        (p as f64).log2().ceil() as u64
    }

    /// The α–β time `steps` supersteps moving `bytes` must cost, written
    /// with the same expression shape as `CostTracker::charge_supersteps`
    /// so the comparison can be exact (`to_bits`), not approximate.
    fn alpha_beta(c: &Comm, steps: u64, bytes: u64) -> f64 {
        let m = &c.tracker().lock().machine;
        steps as f64 * m.alpha_s + bytes as f64 * m.beta_s_per_byte
    }

    #[test]
    fn allreduce_charges_exact_alpha_beta_costs() {
        for p in [2usize, 4, 7, 8, 16, 64] {
            for words in [1u64, 17, 1000, 65536] {
                let c = comm(p);
                c.allreduce(words);
                // reduce-scatter + allgather: ~2× the payload on the
                // critical path, one tree sweep of supersteps
                let bytes = 2 * 8 * words;
                let t = c.tracker().lock();
                assert_eq!(t.supersteps, depth(p), "p={p}");
                assert_eq!(t.bytes_critical, bytes, "p={p} words={words}");
                drop(t);
                let expect = alpha_beta(&c, depth(p), bytes);
                assert_eq!(
                    c.tracker().lock().sim.comm.to_bits(),
                    expect.to_bits(),
                    "p={p} words={words}"
                );
            }
        }
    }

    #[test]
    fn allgather_charges_exact_alpha_beta_costs() {
        for p in [2usize, 4, 6, 32] {
            for words_per_rank in [3u64, 128, 4096] {
                let c = comm(p);
                c.allgather(words_per_rank);
                // each rank receives the other p−1 contributions
                let bytes = 8 * words_per_rank * (p as u64 - 1);
                let t = c.tracker().lock();
                assert_eq!(t.supersteps, depth(p));
                assert_eq!(t.bytes_critical, bytes);
                drop(t);
                let expect = alpha_beta(&c, depth(p), bytes);
                assert_eq!(c.tracker().lock().sim.comm.to_bits(), expect.to_bits());
            }
        }
    }

    #[test]
    fn scatter_charges_exact_alpha_beta_costs() {
        for p in [2usize, 5, 8, 16] {
            for words_total in [10u64, 1024, 100_000] {
                let c = comm(p);
                c.scatter(words_total);
                // the root keeps its own 1/p share
                let bytes = 8 * words_total * (p as u64 - 1) / p as u64;
                let t = c.tracker().lock();
                assert_eq!(t.supersteps, depth(p));
                assert_eq!(t.bytes_critical, bytes);
                drop(t);
                let expect = alpha_beta(&c, depth(p), bytes);
                assert_eq!(c.tracker().lock().sim.comm.to_bits(), expect.to_bits());
            }
        }
    }

    #[test]
    fn collective_costs_scale_with_machine_parameters() {
        // same collective, different machine → different α–β charge
        let mk = |machine: Machine, p: usize| {
            let tracker = Arc::new(Mutex::new(CostTracker::new(machine, p)));
            Comm::new(p, ExecMode::Sequential, tracker)
        };
        let bw = mk(Machine::blue_waters(16), 8);
        let s2 = mk(Machine::stampede2(64), 8);
        bw.allreduce(4096);
        s2.allreduce(4096);
        let (tb, ts) = (bw.tracker().lock(), s2.tracker().lock());
        assert_eq!(tb.supersteps, ts.supersteps, "same tree depth");
        assert_eq!(tb.bytes_critical, ts.bytes_critical, "same volume");
        assert_ne!(tb.sim.comm, ts.sim.comm, "different α/β, different time");
    }
}

//! Machine models: flop rooflines and α–β network parameters.
//!
//! The two named machines are the paper's platforms. Parameters are
//! per-node peaks and interconnect figures from the public system specs
//! (Blue Waters Cray XE6 / Gemini, Stampede2 KNL / Omni-Path), not
//! calibrated fits; the roofline shape (`n / (n + n_half)`) mirrors how the
//! paper's model derates GEMM throughput at small block dimensions.

/// A distributed-memory machine model.
///
/// All rates are *per node*; per-rank quantities divide by
/// [`Machine::procs_per_node`]. Setting `alpha_s` and `beta_s_per_byte` to
/// zero (the [`Machine::local`] model) makes communication free, so a
/// serial run reports zero communication time.
#[derive(Clone, Debug, PartialEq)]
pub struct Machine {
    /// Human-readable machine name (used in report tables).
    pub name: String,
    /// MPI ranks (processes) per node.
    pub procs_per_node: usize,
    /// Peak double-precision rate of one node, GFlop/s.
    pub node_peak_gflops: f64,
    /// GEMM dimension at which a rank reaches half its peak rate.
    pub gemm_half_dim: f64,
    /// Network message latency, seconds (the BSP α).
    pub alpha_s: f64,
    /// Inverse injection bandwidth, seconds per byte (the BSP β).
    pub beta_s_per_byte: f64,
    /// Per-node memory bandwidth, GB/s (prices transpose/packing traffic).
    pub mem_bw_gbs: f64,
    /// Memory per node, GB (feasibility checks in the scaling studies).
    pub mem_per_node_gb: f64,
    /// Fraction of the dense roofline reachable by sparse kernels.
    pub sparse_derate: f64,
}

impl Machine {
    /// Blue Waters (Cray XE6): 2× AMD Interlagos per node, Gemini torus.
    pub fn blue_waters(procs_per_node: usize) -> Self {
        Self {
            name: "BlueWaters".into(),
            procs_per_node: procs_per_node.max(1),
            node_peak_gflops: 313.6,
            gemm_half_dim: 112.0,
            alpha_s: 1.5e-6,
            beta_s_per_byte: 1.0 / 9.6e9,
            mem_bw_gbs: 102.0,
            mem_per_node_gb: 64.0,
            sparse_derate: 0.06,
        }
    }

    /// Stampede2 (KNL): one 68-core Xeon Phi 7250 per node, Omni-Path.
    pub fn stampede2(procs_per_node: usize) -> Self {
        Self {
            name: "Stampede2".into(),
            procs_per_node: procs_per_node.max(1),
            node_peak_gflops: 3046.4,
            gemm_half_dim: 512.0,
            alpha_s: 1.0e-6,
            beta_s_per_byte: 1.0 / 12.5e9,
            mem_bw_gbs: 90.0,
            mem_per_node_gb: 96.0,
            sparse_derate: 0.04,
        }
    }

    /// A serial laptop-scale machine with free communication: the baseline
    /// every distributed run is validated against.
    pub fn local() -> Self {
        Self {
            name: "local".into(),
            procs_per_node: 1,
            node_peak_gflops: 50.0,
            gemm_half_dim: 48.0,
            alpha_s: 0.0,
            beta_s_per_byte: 0.0,
            mem_bw_gbs: 20.0,
            mem_per_node_gb: 16.0,
            sparse_derate: 0.08,
        }
    }

    /// Peak rate of a single rank, flop/s.
    pub fn rank_peak_flops(&self) -> f64 {
        self.node_peak_gflops * 1e9 / self.procs_per_node as f64
    }

    /// Achievable dense GEMM rate (flop/s) of one rank at local matrix
    /// dimension `n` — a roofline that halves at `gemm_half_dim`.
    pub fn dense_rate(&self, n: f64) -> f64 {
        let n = n.max(1.0);
        self.rank_peak_flops() * n / (n + self.gemm_half_dim)
    }

    /// Achievable sparse-kernel rate (flop/s) of one rank at local
    /// dimension `n`; memory-bound, hence heavily derated.
    pub fn sparse_rate(&self, n: f64) -> f64 {
        self.dense_rate(n) * self.sparse_derate
    }

    /// Per-rank memory bandwidth, bytes/s.
    pub fn rank_mem_bw(&self) -> f64 {
        self.mem_bw_gbs * 1e9 / self.procs_per_node as f64
    }
}

#[cfg(test)]
mod tests {
    use super::Machine;

    #[test]
    fn rooflines_saturate() {
        let m = Machine::blue_waters(16);
        assert!(m.dense_rate(8.0) < m.dense_rate(1024.0));
        assert!(m.dense_rate(1e9) <= m.rank_peak_flops());
        // half-peak at the half dimension
        let half = m.dense_rate(m.gemm_half_dim);
        assert!((half - 0.5 * m.rank_peak_flops()).abs() < 1e-3 * m.rank_peak_flops());
        assert!(m.sparse_rate(256.0) < m.dense_rate(256.0));
    }

    #[test]
    fn machines_differ() {
        let bw = Machine::blue_waters(16);
        let s2 = Machine::stampede2(64);
        assert_ne!(bw.node_peak_gflops, s2.node_peak_gflops);
        assert_ne!(bw.alpha_s, s2.alpha_s);
        assert!(Machine::local().alpha_s == 0.0 && Machine::local().beta_s_per_byte == 0.0);
    }
}

//! `tt-dist` — the simulated distributed-memory execution runtime.
//!
//! This crate plays the role that MPI + Cyclops (CTF) + ScaLAPACK play in
//! the paper: every block-sparse contraction, SVD/QR and TSQR in the
//! workspace is dispatched through an [`Executor`] that
//!
//! * computes the *exact* same numbers as the serial code (the simulated
//!   runtime is bit-for-bit deterministic, including under
//!   [`ExecMode::Threaded`]),
//! * charges an α–β (latency–bandwidth) BSP cost model for the
//!   communication the operation *would* perform on `p` ranks of a real
//!   [`Machine`], accumulating [`SimTime`] / superstep / flop counters in a
//!   shared [`CostTracker`].
//!
//! Layout:
//!
//! * [`Machine`] — machine models (Blue Waters, Stampede2, a laptop-scale
//!   `local`) with flop rooflines and α/β network parameters,
//! * [`SimTime`] / [`CostTracker`] — the Fig. 7 cost categories,
//! * [`Comm`] — collective volume accounting (allreduce/allgather/scatter,
//!   point-to-point), shared by [`DistMatrix`] and [`tsqr`],
//! * [`Executor`] — `contract` / `contract_sd` / `contract_ss` /
//!   `svd_trunc` / `qr` entry points used by `tt-blocks` and everything
//!   above it,
//! * [`DistMatrix`] — a block-cyclically distributed dense matrix with a
//!   SUMMA product,
//! * [`tsqr`] — communication-avoiding tall-skinny QR built on
//!   [`tt_linalg::qr_thin`].

mod cluster;
mod comm;
mod cost;
mod exec;
mod handle;
mod kernels;
mod machine;
mod pool;
#[cfg(unix)]
pub mod service;
mod summa;
pub mod transport;
mod tsqr;

pub use cluster::Cluster;
pub use comm::Comm;
pub use cost::{CostTracker, JobScope, ResidentMeter, SimTime};
pub use exec::{
    Backend, ChainSrc, ChainStep, DenseOp, DenseOpC, DenseOpT, ExecMode, Executor, RankCacheStats,
    SparseOp,
};
pub use handle::{OpHandle, ResultHandle, ResultKind};
pub use machine::Machine;
pub use pool::ThreadPool;
pub use summa::DistMatrix;
#[cfg(unix)]
pub use transport::ProcTransport;
pub use transport::{maybe_serve, InProcTransport, SpawnSpec, Transport};
#[cfg(unix)]
pub use transport::{FaultPlan, ProcOptions};
pub use tsqr::{tsqr, tsqr_on, tsqr_on_h};

// DistError / FaultKind are defined below and exported from the crate
// root alongside Error/Result.

/// Crate-wide result type.
pub type Result<T> = std::result::Result<T, Error>;

/// What class of transport-layer fault occurred — the driver's typed view
/// of "something went wrong talking to a rank", precise enough for the
/// recovery machinery to pick a response (respawn, retire, retry, abort).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// The worker process exited or closed its connection.
    WorkerDied,
    /// A read or write missed its deadline (wedged rank).
    Timeout,
    /// A frame or message failed to decode (corruption, protocol skew).
    Decode,
    /// Socket- or OS-level I/O failure.
    Io,
    /// Spawning (or respawning) a worker process failed.
    Spawn,
    /// The task itself failed on a healthy worker ([`Reply::Fail`] —
    /// not a transport fault; never triggers recovery).
    Task,
}

impl std::fmt::Display for FaultKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            FaultKind::WorkerDied => "worker died",
            FaultKind::Timeout => "timeout",
            FaultKind::Decode => "decode",
            FaultKind::Io => "io",
            FaultKind::Spawn => "spawn",
            FaultKind::Task => "task",
        };
        f.write_str(s)
    }
}

impl FaultKind {
    /// Whether this fault means the rank's resident state is suspect and
    /// the recovery machinery should respawn/replay (task failures and
    /// plain config errors are not recoverable-by-respawn).
    pub fn is_rank_fault(&self) -> bool {
        matches!(
            self,
            FaultKind::WorkerDied | FaultKind::Timeout | FaultKind::Decode
        )
    }
}

/// A typed transport-layer failure: what happened, on which rank.
#[derive(Debug, Clone, PartialEq)]
pub struct DistError {
    /// Fault classification.
    pub kind: FaultKind,
    /// The logical rank the fault concerns, when attributable.
    pub rank: Option<usize>,
    /// Human-readable detail.
    pub detail: String,
}

impl DistError {
    /// A fault of `kind` on `rank`.
    pub fn new(kind: FaultKind, rank: Option<usize>, detail: impl Into<String>) -> Self {
        Self {
            kind,
            rank,
            detail: detail.into(),
        }
    }
}

impl std::fmt::Display for DistError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self.rank {
            Some(r) => write!(f, "{} (rank {r}): {}", self.kind, self.detail),
            None => write!(f, "{}: {}", self.kind, self.detail),
        }
    }
}

impl From<DistError> for Error {
    fn from(e: DistError) -> Self {
        Error::Transport(e)
    }
}

/// Errors from the distributed runtime.
#[derive(Debug, Clone, PartialEq)]
pub enum Error {
    /// Error bubbled up from a local tensor kernel.
    Tensor(tt_tensor::Error),
    /// Error bubbled up from a dense linear-algebra routine.
    Linalg(tt_linalg::Error),
    /// Invalid runtime configuration or operand (rank counts, distributions).
    Runtime(String),
    /// Transport-layer failure: spawn, socket, framing, timeout, or a task
    /// that failed on a worker process.
    Transport(DistError),
}

impl Error {
    /// Generic transport failure with no rank attribution ([`FaultKind::Io`]).
    pub(crate) fn transport(detail: impl Into<String>) -> Self {
        Error::Transport(DistError::new(FaultKind::Io, None, detail))
    }

    /// A classified fault on a specific rank.
    pub(crate) fn fault(kind: FaultKind, rank: usize, detail: impl Into<String>) -> Self {
        Error::Transport(DistError::new(kind, Some(rank), detail))
    }

    /// The transport fault inside, if this is one.
    pub fn as_fault(&self) -> Option<&DistError> {
        match self {
            Error::Transport(e) => Some(e),
            _ => None,
        }
    }
}

impl From<tt_tensor::Error> for Error {
    fn from(e: tt_tensor::Error) -> Self {
        Error::Tensor(e)
    }
}

impl From<tt_linalg::Error> for Error {
    fn from(e: tt_linalg::Error) -> Self {
        Error::Linalg(e)
    }
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Error::Tensor(e) => write!(f, "tensor kernel: {e}"),
            Error::Linalg(e) => write!(f, "linear algebra: {e}"),
            Error::Runtime(s) => write!(f, "runtime: {s}"),
            Error::Transport(e) => write!(f, "transport: {e}"),
        }
    }
}

impl std::error::Error for Error {}

/// Factor `p` into the most-square `(rows, cols)` process grid with
/// `rows * cols == p` — the grid SUMMA and the cost model assume.
pub(crate) fn process_grid(p: usize) -> (usize, usize) {
    let p = p.max(1);
    let mut rows = (p as f64).sqrt() as usize;
    while rows > 1 && !p.is_multiple_of(rows) {
        rows -= 1;
    }
    (rows.max(1), p / rows.max(1))
}

#[cfg(test)]
mod grid_tests {
    use super::process_grid;

    #[test]
    fn grids_are_factorizations() {
        for p in 1..=64 {
            let (r, c) = process_grid(p);
            assert_eq!(r * c, p);
            assert!(r <= c);
        }
        assert_eq!(process_grid(16), (4, 4));
        assert_eq!(process_grid(12), (3, 4));
        assert_eq!(process_grid(7), (1, 7));
    }
}

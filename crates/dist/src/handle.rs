//! Distributed operand handles: content-keyed references to tensors that
//! stay *resident* on the runtime instead of being re-shipped with every
//! task.
//!
//! An [`OpHandle`] is created by [`crate::Executor::upload`] (or the
//! `upload_c64` / `upload_sparse` variants) and freed by
//! [`crate::Executor::free`]. The handle's key is a content hash of the
//! tensor (dims + exact value bit patterns), so two uploads of identical
//! data share one key — and one refcount, one set of resident buffers.
//!
//! Residency itself is *lazy*: nothing ships at upload time. The first
//! contraction that consumes a handle derives the operand buffer it needs
//! (a permuted matrix, per-rank row slabs, volume-balanced coordinate
//! buckets, a grouped sparse table) and pins it in the worker stores; every
//! later contraction that derives the same buffer ships **zero operand
//! bytes** for it. On [`crate::Backend::InProcess`] handles are plain
//! `Arc`s around the tensor — numerics take the exact same kernel path as
//! the value-passing API — while the driver-side [`Residency`] registry is
//! still consulted so the α–β cost charges are bitwise-identical across
//! backends.

use crate::{Error, Result};
use std::collections::HashMap;
use std::sync::Arc;
use tt_tensor::{Complex64, DenseTensor, SparseTensor};

/// FNV-1a 64-bit offset basis.
const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
/// FNV-1a 64-bit prime.
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// Running FNV-1a hash state.
#[derive(Clone, Copy)]
pub(crate) struct Fnv(u64);

impl Fnv {
    pub(crate) fn new() -> Self {
        Fnv(FNV_OFFSET)
    }

    pub(crate) fn u8(mut self, b: u8) -> Self {
        self.0 = (self.0 ^ b as u64).wrapping_mul(FNV_PRIME);
        self
    }

    pub(crate) fn u64(mut self, v: u64) -> Self {
        for b in v.to_le_bytes() {
            self = self.u8(b);
        }
        self
    }

    pub(crate) fn u64s(mut self, vs: impl IntoIterator<Item = u64>) -> Self {
        for v in vs {
            self = self.u64(v);
        }
        self
    }

    pub(crate) fn finish(self) -> u64 {
        self.0
    }
}

/// Derive a buffer key from mixed-in context components (content key,
/// purpose tag, permutation/positions, chunk index, …). Purely a hash —
/// derivation is deterministic and backend-independent, which is what lets
/// the in-process backend replay the exact charge sequence of the
/// multi-process one.
pub(crate) fn derive(parts: &[u64]) -> u64 {
    Fnv::new().u64s(parts.iter().copied()).finish()
}

/// Hash a `usize` sequence (an axis permutation, mode positions, …) into
/// one derivation component.
pub(crate) fn hseq(vals: &[usize]) -> u64 {
    Fnv::new().u64s(vals.iter().map(|&v| v as u64)).finish()
}

/// The tensor a handle refers to. Payloads are `Arc`-backed so an upload
/// of an already-shared tensor (an `Arc`-stored block of a
/// `BlockSparseTensor`, say) shares storage instead of cloning the data —
/// only the content hash is recomputed.
#[derive(Clone)]
pub(crate) enum Payload {
    /// A dense `f64` tensor.
    F64(Arc<DenseTensor<f64>>),
    /// A dense [`Complex64`] tensor.
    C64(Arc<DenseTensor<Complex64>>),
    /// A flattened sparse `f64` tensor.
    Sparse(Arc<SparseTensor<f64>>),
}

impl Payload {
    /// Content key: tag + dims + exact value bit patterns.
    fn content_key(&self) -> u64 {
        match self {
            Payload::F64(t) => Fnv::new()
                .u8(1)
                .u64s(t.dims().iter().map(|&d| d as u64))
                .u64s(t.data().iter().map(|v| v.to_bits()))
                .finish(),
            Payload::C64(t) => Fnv::new()
                .u8(2)
                .u64s(t.dims().iter().map(|&d| d as u64))
                .u64s(
                    t.data()
                        .iter()
                        .flat_map(|v| [v.re.to_bits(), v.im.to_bits()]),
                )
                .finish(),
            Payload::Sparse(t) => Fnv::new()
                .u8(3)
                .u64s(t.dims().iter().map(|&d| d as u64))
                .u64s(t.entries().flat_map(|(off, v)| [off, v.to_bits()]))
                .finish(),
        }
    }

    /// Stored words (8-byte units) — the β volume an upload of this
    /// payload moves.
    fn words(&self) -> usize {
        match self {
            Payload::F64(t) => t.len(),
            Payload::C64(t) => 2 * t.len(),
            // offset + value per stored entry
            Payload::Sparse(t) => 2 * t.nnz(),
        }
    }
}

/// A content-keyed, refcounted handle on a distributed operand.
///
/// Cloning a handle is cheap (it shares the payload `Arc`) and does *not*
/// change the refcount: each [`crate::Executor::upload`] must be matched
/// by exactly one [`crate::Executor::free`].
#[derive(Clone)]
pub struct OpHandle {
    key: u64,
    words: usize,
    payload: Payload,
}

impl OpHandle {
    pub(crate) fn new(payload: Payload) -> Self {
        let key = payload.content_key();
        let words = payload.words();
        Self {
            key,
            words,
            payload,
        }
    }

    /// The content key (a hash of dims + exact value bits).
    pub fn key(&self) -> u64 {
        self.key
    }

    /// Stored words (8-byte units) of the payload.
    pub fn words(&self) -> usize {
        self.words
    }

    pub(crate) fn dense(&self) -> Result<&DenseTensor<f64>> {
        match &self.payload {
            Payload::F64(t) => Ok(t),
            _ => Err(Error::Runtime(
                "operand handle does not hold a dense f64 tensor".into(),
            )),
        }
    }

    pub(crate) fn dense_c64(&self) -> Result<&DenseTensor<Complex64>> {
        match &self.payload {
            Payload::C64(t) => Ok(t),
            _ => Err(Error::Runtime(
                "operand handle does not hold a dense Complex64 tensor".into(),
            )),
        }
    }

    pub(crate) fn sparse(&self) -> Result<&SparseTensor<f64>> {
        match &self.payload {
            Payload::Sparse(t) => Ok(t),
            _ => Err(Error::Runtime(
                "operand handle does not hold a sparse tensor".into(),
            )),
        }
    }
}

/// The scalar kind of a resident contraction result.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ResultKind {
    /// Dense `f64` buffer.
    F64,
    /// Dense [`Complex64`] buffer.
    C64,
}

/// The value of an in-process resident result (the in-process backend has
/// no worker stores — the "resident" buffer is the driver's own `Arc`).
#[derive(Clone)]
pub(crate) enum LocalResult {
    F64(Arc<DenseTensor<f64>>),
    C64(Arc<DenseTensor<Complex64>>),
}

/// A handle on a contraction *result* that stayed resident on the runtime
/// instead of returning to the driver — produced by
/// [`crate::Executor::contract_to_h`] and friends, or by a
/// [`crate::Executor::chain`] superstep. Unlike [`OpHandle`] the key is
/// driver-issued (the driver never sees the bytes, so it cannot content-
/// hash them) and ownership is linear: every handle must be consumed by
/// exactly one [`crate::Executor::download`] or
/// [`crate::Executor::free_result`].
pub struct ResultHandle {
    pub(crate) key: u64,
    pub(crate) dims: Vec<usize>,
    pub(crate) kind: ResultKind,
    pub(crate) words: usize,
    pub(crate) local: Option<LocalResult>,
}

impl ResultHandle {
    /// The driver-issued store key.
    pub fn key(&self) -> u64 {
        self.key
    }

    /// The result tensor's dimensions.
    pub fn dims(&self) -> &[usize] {
        &self.dims
    }

    /// The result's scalar kind.
    pub fn kind(&self) -> ResultKind {
        self.kind
    }

    /// Stored words (8-byte units).
    pub fn words(&self) -> usize {
        self.words
    }
}

impl std::fmt::Debug for ResultHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "ResultHandle({:#018x}, {:?} {:?})",
            self.key, self.kind, self.dims
        )
    }
}

impl std::fmt::Debug for OpHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "OpHandle({:#018x}, {} words)", self.key, self.words)
    }
}

/// Buffers a freed handle leaves behind on the workers, to be released
/// (made evictable) by the executor.
pub(crate) struct Leftovers {
    /// `(worker key, home ranks)` of every physical buffer derived from
    /// the handle.
    pub(crate) physical: Vec<(u64, Vec<usize>)>,
}

#[derive(Default)]
struct HandleState {
    /// Outstanding uploads (decremented by `free`).
    rc: usize,
    /// Logical derived keys whose one-time upload charge was applied.
    logical: Vec<u64>,
    /// Worker keys of physical buffers derived from this handle.
    physical: Vec<u64>,
}

/// Driver-side registry of everything resident (or charged as resident).
///
/// Two parallel books are kept:
///
/// * **logical** — which derived buffers have been *charged* as uploaded.
///   Consulted by the cost model on every backend, so the charge sequence
///   (and therefore `SimTime`, superstep and critical-byte counters) is
///   bitwise-identical between `InProcess` and `MultiProcess`.
/// * **physical** — which worker key lives on which ranks. Only the
///   multi-process data plane reads this; it gates actual `Upload`
///   shipping and routes whole-operand tasks to the rank that already
///   holds them.
#[derive(Default)]
pub(crate) struct Residency {
    handles: HashMap<u64, HandleState>,
    /// Logical derived keys already charged (across all handles).
    charged: std::collections::HashSet<u64>,
    /// Worker key → home ranks.
    homes: HashMap<u64, (u64, Vec<usize>)>,
    /// Resident contraction results: worker key → placement + provenance.
    results: HashMap<u64, ResultInfo>,
}

/// Driver-side record of one resident contraction result.
#[derive(Clone, Copy, Debug)]
pub(crate) struct ResultInfo {
    /// The rank the buffer lives on (0 in-process).
    pub(crate) home: usize,
    /// Stored words (8-byte units) — what a redistribute moves.
    pub(crate) words: usize,
    /// Provenance: hash of the producing step (spec + input keys), for
    /// diagnostics and for derived-buffer keys of downstream consumers.
    pub(crate) produced_by: u64,
}

impl Residency {
    /// Record one more upload of `content`.
    pub(crate) fn retain(&mut self, content: u64) {
        self.handles.entry(content).or_default().rc += 1;
    }

    /// Record one free of `content`. When the refcount reaches zero the
    /// handle's derived buffers are forgotten and returned for release.
    pub(crate) fn release(&mut self, content: u64) -> Result<Option<Leftovers>> {
        let Some(st) = self.handles.get_mut(&content) else {
            return Err(Error::Runtime(format!(
                "free of unknown operand handle {content:#x}"
            )));
        };
        if st.rc == 0 {
            return Err(Error::Runtime(format!(
                "operand handle {content:#x} freed more times than uploaded"
            )));
        }
        st.rc -= 1;
        if st.rc > 0 {
            return Ok(None);
        }
        let st = self.handles.remove(&content).expect("present");
        for k in &st.logical {
            self.charged.remove(k);
        }
        let mut physical = Vec::with_capacity(st.physical.len());
        for k in st.physical {
            if let Some((_, ranks)) = self.homes.remove(&k) {
                physical.push((k, ranks));
            }
        }
        Ok(Some(Leftovers { physical }))
    }

    /// Observe one logical use of derived buffer `lkey` of `content`.
    /// Returns `true` exactly once per resident period — the caller
    /// charges the one-time upload then.
    pub(crate) fn observe(&mut self, content: u64, lkey: u64) -> bool {
        if !self.charged.insert(lkey) {
            return false;
        }
        self.handles.entry(content).or_default().logical.push(lkey);
        true
    }

    /// Ranks already holding worker buffer `wkey`, if any.
    pub(crate) fn homes(&self, wkey: u64) -> Option<&[usize]> {
        self.homes.get(&wkey).map(|(_, r)| r.as_slice())
    }

    /// Record that worker buffer `wkey` (derived from `content`) now lives
    /// on `rank`. Returns `false` if it was already there.
    pub(crate) fn add_home(&mut self, content: u64, wkey: u64, rank: usize) -> bool {
        let entry = self.homes.entry(wkey).or_insert_with(|| {
            self.handles.entry(content).or_default().physical.push(wkey);
            (content, Vec::new())
        });
        if entry.1.contains(&rank) {
            false
        } else {
            entry.1.push(rank);
            true
        }
    }

    // -- resident results -------------------------------------------------

    /// Record a freshly produced resident result.
    pub(crate) fn record_result(&mut self, key: u64, info: ResultInfo) {
        self.results.insert(key, info);
    }

    /// Placement + provenance of a resident result, if known.
    pub(crate) fn result(&self, key: u64) -> Option<ResultInfo> {
        self.results.get(&key).copied()
    }

    /// Move a resident result to a new home rank (a redistribute).
    pub(crate) fn move_result(&mut self, key: u64, home: usize) {
        if let Some(info) = self.results.get_mut(&key) {
            info.home = home;
        }
    }

    /// Forget a resident result (it was downloaded or freed).
    pub(crate) fn forget_result(&mut self, key: u64) -> Option<ResultInfo> {
        self.results.remove(&key)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn content_keys_are_content_keyed() {
        let a = DenseTensor::from_vec([2, 2], vec![1.0, 2.0, 3.0, 4.0]).unwrap();
        let b = DenseTensor::from_vec([2, 2], vec![1.0, 2.0, 3.0, 4.0]).unwrap();
        let c = DenseTensor::from_vec([4], vec![1.0, 2.0, 3.0, 4.0]).unwrap();
        let d = DenseTensor::from_vec([2, 2], vec![1.0, 2.0, 3.0, -4.0]).unwrap();
        let (ha, hb) = (
            OpHandle::new(Payload::F64(Arc::new(a))),
            OpHandle::new(Payload::F64(Arc::new(b))),
        );
        assert_eq!(ha.key(), hb.key(), "same content, same key");
        assert_ne!(
            ha.key(),
            OpHandle::new(Payload::F64(Arc::new(c))).key(),
            "dims count"
        );
        assert_ne!(
            ha.key(),
            OpHandle::new(Payload::F64(Arc::new(d))).key(),
            "values count"
        );
        // scalar type is part of the key
        let cx = DenseTensor::from_vec(
            [2, 2],
            vec![
                Complex64::new(1.0, 0.0),
                Complex64::new(2.0, 0.0),
                Complex64::new(3.0, 0.0),
                Complex64::new(4.0, 0.0),
            ],
        )
        .unwrap();
        assert_ne!(ha.key(), OpHandle::new(Payload::C64(Arc::new(cx))).key());
    }

    #[test]
    fn result_book_tracks_homes_and_provenance() {
        let mut r = Residency::default();
        r.record_result(
            10,
            ResultInfo {
                home: 2,
                words: 64,
                produced_by: 0xbeef,
            },
        );
        let info = r.result(10).expect("recorded");
        assert_eq!(info.home, 2);
        assert_eq!(info.produced_by, 0xbeef);
        r.move_result(10, 0);
        assert_eq!(r.result(10).unwrap().home, 0, "redistribute moves home");
        assert_eq!(r.forget_result(10).unwrap().words, 64);
        assert!(r.result(10).is_none(), "downloaded results are forgotten");
    }

    #[test]
    fn residency_refcount_and_observation() {
        let mut r = Residency::default();
        r.retain(7);
        r.retain(7); // second upload of identical content
        assert!(r.observe(7, 100), "first use is a miss");
        assert!(!r.observe(7, 100), "second use hits");
        assert!(r.add_home(7, 100, 1));
        assert!(!r.add_home(7, 100, 1));
        assert!(r.add_home(7, 100, 2));
        assert!(r.release(7).unwrap().is_none(), "rc 2 -> 1 keeps residency");
        let left = r.release(7).unwrap().expect("last free returns leftovers");
        assert_eq!(left.physical, vec![(100, vec![1, 2])]);
        assert!(r.release(7).is_err(), "double free surfaces");
        // after the last free the logical charge comes back
        r.retain(7);
        assert!(r.observe(7, 100), "fresh resident period re-charges");
    }
}

//! A small persistent worker pool.
//!
//! [`ExecMode::Threaded`](crate::ExecMode) executors dispatch their
//! block/row-chunked kernel work onto this pool. Workers survive panics in
//! individual jobs, and [`ThreadPool::run`] returns results in submission
//! order so callers can rely on deterministic assembly.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::mpsc::{channel, Receiver, Sender};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;

type Job = Box<dyn FnOnce() + Send + 'static>;

/// Fixed-size pool of worker threads consuming a shared job queue.
pub struct ThreadPool {
    tx: Option<Sender<Job>>,
    workers: Vec<JoinHandle<()>>,
    threads: usize,
}

impl ThreadPool {
    /// Spawn `threads` workers (clamped to at least one).
    pub fn new(threads: usize) -> Self {
        let threads = threads.max(1);
        let (tx, rx) = channel::<Job>();
        let rx = Arc::new(Mutex::new(rx));
        let workers = (0..threads)
            .map(|i| {
                let rx = Arc::clone(&rx);
                std::thread::Builder::new()
                    .name(format!("tt-dist-worker-{i}"))
                    .spawn(move || worker_loop(rx))
                    .expect("spawn worker")
            })
            .collect();
        Self {
            tx: Some(tx),
            workers,
            threads,
        }
    }

    /// Pool sized to the host's available parallelism (capped at 8 — the
    /// kernels here saturate memory bandwidth well before that).
    pub fn default_size() -> Self {
        let n = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(4)
            .min(8);
        Self::new(n)
    }

    /// Number of worker threads.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Run `jobs` on the pool and collect their results in submission
    /// order. Blocks until all jobs finish.
    pub fn run<T: Send + 'static>(
        &self,
        jobs: Vec<Box<dyn FnOnce() -> T + Send + 'static>>,
    ) -> Vec<T> {
        let n = jobs.len();
        let (rtx, rrx) = channel::<(usize, T)>();
        for (i, job) in jobs.into_iter().enumerate() {
            let rtx = rtx.clone();
            let wrapped: Job = Box::new(move || {
                let out = job();
                let _ = rtx.send((i, out));
            });
            self.tx
                .as_ref()
                .expect("pool alive")
                .send(wrapped)
                .expect("workers alive");
        }
        drop(rtx);
        let mut slots: Vec<Option<T>> = (0..n).map(|_| None).collect();
        for (i, out) in rrx.iter() {
            slots[i] = Some(out);
        }
        slots
            .into_iter()
            .map(|s| s.expect("job completed without result (worker panicked)"))
            .collect()
    }
}

fn worker_loop(rx: Arc<Mutex<Receiver<Job>>>) {
    loop {
        let job = match rx.lock() {
            Ok(guard) => guard.recv(),
            Err(_) => return,
        };
        match job {
            Ok(job) => {
                // A panicking job must not take the worker down with it;
                // the submitter sees the missing result instead.
                let _ = catch_unwind(AssertUnwindSafe(job));
            }
            Err(_) => return, // queue closed
        }
    }
}

impl Drop for ThreadPool {
    fn drop(&mut self) {
        drop(self.tx.take());
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::ThreadPool;

    #[test]
    fn results_in_submission_order() {
        let pool = ThreadPool::new(4);
        let jobs: Vec<Box<dyn FnOnce() -> usize + Send>> = (0..32)
            .map(|i| {
                let f: Box<dyn FnOnce() -> usize + Send> = Box::new(move || i * i);
                f
            })
            .collect();
        let out = pool.run(jobs);
        assert_eq!(out, (0..32).map(|i| i * i).collect::<Vec<_>>());
    }

    #[test]
    fn pool_survives_reuse() {
        let pool = ThreadPool::new(2);
        for round in 0..5 {
            let jobs: Vec<Box<dyn FnOnce() -> usize + Send>> = (0..8)
                .map(|i| {
                    let f: Box<dyn FnOnce() -> usize + Send> = Box::new(move || round + i);
                    f
                })
                .collect();
            assert_eq!(pool.run(jobs).len(), 8);
        }
    }
}

//! Block-cyclically distributed dense matrices and the SUMMA product.
//!
//! The simulated [`DistMatrix`] keeps the global matrix resident (one
//! address space) but carries a cyclic distribution over the communicator's
//! process grid, and its [`DistMatrix::summa`] charges exactly the
//! panel-broadcast communication the real algorithm performs: one superstep
//! per `k`-panel, each moving an `m/pr × b` A-panel and a `b × n/pc`
//! B-panel per rank.

use crate::cluster::Cluster;
use crate::comm::Comm;
use crate::transport::worker::{Reply, Request};
use crate::{process_grid, Error, Result};
use tt_tensor::gemm::gemm_acc_slices;
use tt_tensor::DenseTensor;

/// A dense matrix with a block-cyclic distribution over a process grid.
#[derive(Clone, Debug)]
pub struct DistMatrix {
    global: DenseTensor<f64>,
    ranks: usize,
    grid: (usize, usize),
    block: usize,
}

impl DistMatrix {
    /// Distribute `a` over `comm`'s ranks with cyclic blocks of `block`
    /// rows/columns. Charges the initial scatter.
    pub fn from_global(a: &DenseTensor<f64>, comm: &Comm, block: usize) -> Result<Self> {
        if a.order() != 2 {
            return Err(Error::Runtime(format!(
                "DistMatrix wants a matrix, got order {}",
                a.order()
            )));
        }
        if block == 0 {
            return Err(Error::Runtime("block size must be positive".into()));
        }
        comm.scatter(a.len() as u64);
        Ok(Self {
            global: a.clone(),
            ranks: comm.ranks(),
            grid: process_grid(comm.ranks()),
            block,
        })
    }

    /// Global row/column dimensions.
    pub fn dims(&self) -> (usize, usize) {
        (self.global.dims()[0], self.global.dims()[1])
    }

    /// The cyclic block size.
    pub fn block(&self) -> usize {
        self.block
    }

    /// The process grid `(rows, cols)`.
    pub fn grid(&self) -> (usize, usize) {
        self.grid
    }

    /// Owning rank of global element `(i, j)` under the block-cyclic map.
    pub fn owner(&self, i: usize, j: usize) -> usize {
        let (pr, pc) = self.grid;
        let gr = (i / self.block) % pr;
        let gc = (j / self.block) % pc;
        gr * pc + gc
    }

    /// Number of elements stored on `rank`.
    pub fn local_elements(&self, rank: usize) -> usize {
        let (m, n) = self.dims();
        let (pr, pc) = self.grid;
        let (gr, gc) = (rank / pc, rank % pc);
        let rows = cyclic_count(m, self.block, pr, gr);
        let cols = cyclic_count(n, self.block, pc, gc);
        rows * cols
    }

    /// Gather the matrix to every rank (charges an allgather) and return it.
    pub fn to_global(&self, comm: &Comm) -> DenseTensor<f64> {
        comm.allgather((self.global.len() / self.ranks.max(1)) as u64);
        self.global.clone()
    }

    /// Borrow the resident global values without communication charges.
    pub fn as_dense(&self) -> &DenseTensor<f64> {
        &self.global
    }

    /// SUMMA matrix product `self · other`: panel-by-panel broadcasts with
    /// one superstep per `k`-panel of width `block`.
    pub fn summa(&self, other: &DistMatrix, comm: &Comm) -> Result<DistMatrix> {
        let (m, ka) = self.dims();
        let (kb, n) = other.dims();
        if ka != kb {
            return Err(Error::Runtime(format!("summa inner dims {ka} != {kb}")));
        }
        let (pr, pc) = self.grid;
        let b = self.block.min(ka.max(1));
        let a_data = self.global.data();
        let b_data = other.global.data();
        let mut c = vec![0.0f64; m * n];
        let mut kb0 = 0usize;
        while kb0 < ka {
            let w = b.min(ka - kb0);
            // Pack the A column-panel (m × w) and B row-panel (w × n).
            let mut a_panel = vec![0.0f64; m * w];
            for i in 0..m {
                a_panel[i * w..(i + 1) * w]
                    .copy_from_slice(&a_data[i * ka + kb0..i * ka + kb0 + w]);
            }
            let b_panel = &b_data[kb0 * n..(kb0 + w) * n];
            gemm_acc_slices(m, w, n, &a_panel, b_panel, &mut c);
            // Each rank receives its A-panel tile along the row and its
            // B-panel tile along the column of the grid.
            let words = (m.div_ceil(pr) * w + w * n.div_ceil(pc)) as u64;
            comm.charge_p2p(8 * words);
            kb0 += w;
        }
        Ok(DistMatrix {
            global: DenseTensor::from_vec([m, n], c)?,
            ranks: self.ranks,
            grid: self.grid,
            block: self.block,
        })
    }

    /// SUMMA over a [`Cluster`]: every rank holds a resident MC-aligned
    /// row slab of `C` in its own address space; per `k`-panel the driver
    /// broadcasts the `B` panel and scatters each rank's `A` slab panel,
    /// and ranks accumulate locally. The slabs only travel back at the
    /// end — per-superstep traffic is panels, exactly like the real
    /// algorithm. Charges the same communication as [`DistMatrix::summa`]
    /// and produces bitwise-identical values (row-disjoint slabs with
    /// MC-aligned boundaries preserve every accumulation order).
    pub fn summa_on(
        &self,
        other: &DistMatrix,
        comm: &Comm,
        cluster: &mut Cluster,
    ) -> Result<DistMatrix> {
        let (m, ka) = self.dims();
        let (kb, n) = other.dims();
        if ka != kb {
            return Err(Error::Runtime(format!("summa inner dims {ka} != {kb}")));
        }
        let (pr, pc) = self.grid;
        let b = self.block.min(ka.max(1));
        let a_data = self.global.data();
        let b_data = other.global.data();

        let p = cluster.ranks();
        let slabs = crate::kernels::mc_aligned_ranges(m, p);
        // slab keys come from the cluster's allocator and live as *pinned*
        // store entries (same lifecycle as uploaded operand handles:
        // pinned while in use, dropped by the explicit free below)
        let keys: Vec<u64> = slabs.iter().map(|_| cluster.fresh_key()).collect();
        let init: Vec<(usize, Request)> = slabs
            .iter()
            .zip(&keys)
            .enumerate()
            .map(|(i, (&(r0, r1), &key))| {
                (
                    i % p,
                    Request::SummaInit {
                        key,
                        rows: r1 - r0,
                        n,
                    },
                )
            })
            .collect();
        cluster.call_all(init)?;

        let mut kb0 = 0usize;
        while kb0 < ka {
            let w = b.min(ka - kb0);
            let b_panel = b_data[kb0 * n..(kb0 + w) * n].to_vec();
            let panel: Vec<(usize, Request)> = slabs
                .iter()
                .zip(&keys)
                .enumerate()
                .map(|(i, (&(r0, r1), &key))| {
                    // pack this slab's rows of the A column-panel (rows × w)
                    let mut a_panel = vec![0.0f64; (r1 - r0) * w];
                    for (local, i_glob) in (r0..r1).enumerate() {
                        a_panel[local * w..(local + 1) * w]
                            .copy_from_slice(&a_data[i_glob * ka + kb0..i_glob * ka + kb0 + w]);
                    }
                    (
                        i % p,
                        Request::SummaPanel {
                            key,
                            rows: r1 - r0,
                            w,
                            n,
                            a: a_panel,
                            b: b_panel.clone(),
                        },
                    )
                })
                .collect();
            cluster.call_all(panel)?;
            // same per-panel charge as the in-process loop
            let words = (m.div_ceil(pr) * w + w * n.div_ceil(pc)) as u64;
            comm.charge_p2p(8 * words);
            kb0 += w;
        }

        // gather the resident slabs in row order, then free them
        let gets: Vec<(usize, Request)> = keys
            .iter()
            .enumerate()
            .map(|(i, &key)| (i % p, Request::Get { key }))
            .collect();
        let mut c = Vec::with_capacity(m * n);
        for reply in cluster.call_all(gets)? {
            match reply {
                Reply::F64s(v) => c.extend_from_slice(&v),
                other => {
                    return Err(Error::transport(format!(
                        "expected summa slab, got {other:?}"
                    )))
                }
            }
        }
        let frees: Vec<(usize, Request)> = keys
            .iter()
            .enumerate()
            .map(|(i, &key)| (i % p, Request::Free { key }))
            .collect();
        cluster.call_all(frees)?;

        Ok(DistMatrix {
            global: DenseTensor::from_vec([m, n], c)?,
            ranks: self.ranks,
            grid: self.grid,
            block: self.block,
        })
    }
}

/// Elements of a length-`n` axis owned by grid coordinate `g` of `p`
/// processes under cyclic blocks of `b`.
fn cyclic_count(n: usize, b: usize, p: usize, g: usize) -> usize {
    let full_rounds = n / (b * p);
    let rem = n - full_rounds * b * p;
    let mine = rem.saturating_sub(g * b).min(b);
    full_rounds * b + mine
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cost::CostTracker;
    use crate::exec::ExecMode;
    use crate::machine::Machine;
    use parking_lot::Mutex;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use std::sync::Arc;

    fn comm(p: usize) -> Comm {
        let tracker = Arc::new(Mutex::new(CostTracker::new(Machine::blue_waters(16), p)));
        Comm::new(p, ExecMode::Sequential, tracker)
    }

    #[test]
    fn summa_matches_gemm() {
        let mut rng = StdRng::seed_from_u64(31);
        let a = DenseTensor::<f64>::random([33, 29], &mut rng);
        let b = DenseTensor::<f64>::random([29, 21], &mut rng);
        let c = comm(4);
        let da = DistMatrix::from_global(&a, &c, 8).unwrap();
        let db = DistMatrix::from_global(&b, &c, 8).unwrap();
        let dc = da.summa(&db, &c).unwrap();
        let reference = tt_tensor::gemm_f64(&a, &b).unwrap();
        assert!(dc.as_dense().allclose(&reference, 1e-11));
    }

    #[test]
    fn panel_width_trades_supersteps_for_volume() {
        let mut rng = StdRng::seed_from_u64(32);
        let a = DenseTensor::<f64>::random([32, 32], &mut rng);
        let b = DenseTensor::<f64>::random([32, 32], &mut rng);
        let mut steps = Vec::new();
        for block in [4usize, 16] {
            let c = comm(4);
            let da = DistMatrix::from_global(&a, &c, block).unwrap();
            let db = DistMatrix::from_global(&b, &c, block).unwrap();
            let _ = da.summa(&db, &c).unwrap();
            steps.push(c.tracker().lock().supersteps);
        }
        assert!(steps[0] > steps[1], "narrow panels need more supersteps");
    }

    #[test]
    fn cyclic_ownership_partitions_the_matrix() {
        let a = DenseTensor::<f64>::zeros([13, 9]);
        let c = comm(6);
        let d = DistMatrix::from_global(&a, &c, 2).unwrap();
        let total: usize = (0..6).map(|r| d.local_elements(r)).sum();
        assert_eq!(total, 13 * 9);
        for i in 0..13 {
            for j in 0..9 {
                assert!(d.owner(i, j) < 6);
            }
        }
    }

    #[test]
    fn summa_on_cluster_is_bitwise_and_charges_identically() {
        let mut rng = StdRng::seed_from_u64(33);
        let a = DenseTensor::<f64>::random([70, 41], &mut rng);
        let b = DenseTensor::<f64>::random([41, 23], &mut rng);
        let reference = {
            let c = comm(4);
            let da = DistMatrix::from_global(&a, &c, 8).unwrap();
            let db = DistMatrix::from_global(&b, &c, 8).unwrap();
            let dc = da.summa(&db, &c).unwrap();
            let tracker = c.tracker().lock().clone();
            (dc, tracker)
        };
        let mut cl = Cluster::in_process(3);
        let c = comm(4);
        let da = DistMatrix::from_global(&a, &c, 8).unwrap();
        let db = DistMatrix::from_global(&b, &c, 8).unwrap();
        let dc = da.summa_on(&db, &c, &mut cl).unwrap();
        assert_eq!(
            dc.as_dense().data(),
            reference.0.as_dense().data(),
            "summa over the cluster must be bitwise-identical"
        );
        let t = c.tracker().lock();
        assert_eq!(t.supersteps, reference.1.supersteps);
        assert_eq!(t.bytes_critical, reference.1.bytes_critical);
        assert_eq!(t.sim.comm.to_bits(), reference.1.sim.comm.to_bits());
    }

    #[cfg(unix)]
    #[test]
    fn summa_on_real_processes_is_bitwise() {
        let mut rng = StdRng::seed_from_u64(34);
        let a = DenseTensor::<f64>::random([47, 29], &mut rng);
        let b = DenseTensor::<f64>::random([29, 31], &mut rng);
        let c = comm(4);
        let da = DistMatrix::from_global(&a, &c, 8).unwrap();
        let db = DistMatrix::from_global(&b, &c, 8).unwrap();
        let reference = da.summa(&db, &c).unwrap();
        let spawn = crate::transport::SpawnSpec::SelfExec(vec!["spawned_worker_entry".into()]);
        let mut cl = Cluster::multi_process(2, &spawn).unwrap();
        let dc = da.summa_on(&db, &c, &mut cl).unwrap();
        assert_eq!(dc.as_dense().data(), reference.as_dense().data());
    }

    #[test]
    fn shape_errors() {
        let c = comm(2);
        let v = DenseTensor::<f64>::zeros([4]);
        assert!(DistMatrix::from_global(&v, &c, 2).is_err());
        let a = DenseTensor::<f64>::zeros([4, 4]);
        assert!(DistMatrix::from_global(&a, &c, 0).is_err());
        let da = DistMatrix::from_global(&a, &c, 2).unwrap();
        let b = DenseTensor::<f64>::zeros([5, 4]);
        let db = DistMatrix::from_global(&b, &c, 2).unwrap();
        assert!(da.summa(&db, &c).is_err());
    }
}

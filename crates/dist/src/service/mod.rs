//! The multi-tenant solve service: a persistent driver daemon serving
//! concurrent DMRG / contraction jobs over **one** shared worker fleet.
//!
//! A [`Service`] owns a multi-process [`Executor`] (the `ProcTransport`
//! fleet, recovery enabled) and accepts jobs over a Unix-domain socket
//! speaking the [`wire`] frames. Each connection may submit any number of
//! jobs; results stream back as [`JobEvent`]s tagged with the job id.
//!
//! The pieces that make multi-tenancy safe and observable:
//!
//! * **Admission control** — at most `max_queued` jobs wait at a time
//!   (later submissions are [`JobEvent::Rejected`]), at most
//!   `max_concurrent` run, and every job carries a resident-operand byte
//!   cap enforced at sweep boundaries.
//! * **Per-job metering** — each runner thread installs a
//!   [`JobScope`](crate::JobScope), so the job's flop / superstep /
//!   operand / result / recovery counters and its miss/hit charge book
//!   read exactly as if the job ran alone on a fresh executor: the
//!   reported [`JobMeter`] is bitwise-equal to a serial in-process run.
//! * **Cross-job dedup** — operands are content-keyed, so two tenants
//!   solving the same Hamiltonian share worker-resident buffers; the
//!   executor's retention cache (`Executor::set_retention_cap`) keeps
//!   recently-uploaded contents resident past their uploader's `free`,
//!   collapsing the second tenant's shipped operand bytes.
//! * **Fault isolation** — worker recovery (journal replay) happens under
//!   whichever job's request hit the fault; the recovered bytes are
//!   metered to that job's `bytes_recovery` and no other job observes the
//!   fault.
//!
//! DMRG solves are delegated to a [`SolveRunner`] implementation (the
//! `dmrg` crate provides one — this crate cannot depend on it);
//! contraction chains execute natively via [`Executor::chain`].

pub mod wire;

pub use wire::{
    AlgoSpec, ChainJobSpec, ChainOperand, ChainStepSpec, DavidsonSpec, DmrgJobSpec, JobEvent,
    JobMeter, JobReport, JobRequest, ModelSpec, StatusReport,
};

use crate::cost::{CostTracker, JobScope, ResidentMeter};
use crate::exec::RankCacheStats;
use crate::transport::wire::{read_frame, write_frame};
use crate::{ChainSrc, ChainStep, Error, Executor, Machine, ProcOptions, Result, SpawnSpec};
use parking_lot::Mutex;
use std::collections::{HashMap, VecDeque};
use std::os::unix::net::{UnixListener, UnixStream};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicU8, Ordering};
use std::sync::{Arc, Condvar, Mutex as StdMutex};
use std::time::{Duration, Instant};
use tt_tensor::DenseTensor;
use wire::{FRAME_EVENT, FRAME_REQUEST};

/// Why a job stopped before producing a result.
#[derive(Clone, Debug, PartialEq)]
pub enum JobError {
    /// The job was cancelled (client request, disconnect, shutdown, or a
    /// blown resident budget surfaces as `Failed`, not this).
    Cancelled,
    /// The job failed; human-readable reason.
    Failed(String),
}

impl From<Error> for JobError {
    fn from(e: Error) -> Self {
        JobError::Failed(e.to_string())
    }
}

/// What a finished job hands back to the service.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct SolveOutcome {
    /// Final energy (DMRG).
    pub energy: f64,
    /// Per-sweep energies in execution order (DMRG).
    pub energies: Vec<f64>,
    /// Dense result (chain jobs).
    pub dense_dims: Vec<u64>,
    pub dense_vals: Vec<f64>,
}

/// Executes DMRG solve jobs for the service. Implemented by the `dmrg`
/// crate; the daemon is generic over it so the wire layer and scheduler
/// stay free of physics.
pub trait SolveRunner: Send + Sync + 'static {
    /// Run `spec` on `exec`, reporting progress and honouring
    /// cancellation/budget through `ctx` ([`JobCtx::checkpoint`] between
    /// sweeps, [`JobCtx::sweep_done`] after each).
    fn run(
        &self,
        spec: &DmrgJobSpec,
        exec: &Executor,
        ctx: &JobCtx,
    ) -> std::result::Result<SolveOutcome, JobError>;
}

/// Per-job context handed to a [`SolveRunner`]: cancellation flag,
/// resident-budget checks and the event stream back to the client.
pub struct JobCtx {
    job: Arc<Job>,
    resident: Arc<ResidentMeter>,
    cap: u64,
}

impl JobCtx {
    /// True once the job has been cancelled.
    pub fn cancelled(&self) -> bool {
        self.job.cancel.load(Ordering::Relaxed)
    }

    /// Call between sweeps: surfaces cancellation and a blown
    /// resident-operand budget as errors.
    pub fn checkpoint(&self) -> std::result::Result<(), JobError> {
        if self.cancelled() {
            return Err(JobError::Cancelled);
        }
        let held = self.resident.bytes();
        if held > self.cap {
            return Err(JobError::Failed(format!(
                "resident operand budget exceeded: {held} bytes held, cap {}",
                self.cap
            )));
        }
        Ok(())
    }

    /// Record one finished sweep and stream it to the client.
    pub fn sweep_done(&self, energy: f64, max_bond: u64) {
        let index = self.job.sweeps.fetch_add(1, Ordering::Relaxed);
        self.job.sink.send(&JobEvent::Sweep {
            job: self.job.id,
            index,
            energy,
            max_bond,
        });
    }
}

/// Daemon configuration.
#[derive(Clone, Debug)]
pub struct ServiceConfig {
    /// Unix-domain socket path the daemon listens on (a stale file at
    /// this path is removed on start).
    pub socket: PathBuf,
    /// Simulated machine model of the fleet.
    pub machine: Machine,
    /// Simulated node count.
    pub nodes: usize,
    /// Real worker processes in the fleet.
    pub workers: usize,
    /// How workers are launched.
    pub spawn: SpawnSpec,
    /// Transport options (fault plan, default deadline, respawn budget).
    pub opts: ProcOptions,
    /// Runner threads — jobs executing at once.
    pub max_concurrent: usize,
    /// Jobs allowed to wait in the queue; submissions beyond this are
    /// rejected.
    pub max_queued: usize,
    /// Default per-job resident-operand byte cap (a job spec's
    /// `resident_cap_bytes` overrides it).
    pub default_resident_cap: u64,
    /// Byte budget of the cross-job retention cache
    /// ([`Executor::set_retention_cap`]); `0` disables dedup-by-retention.
    pub retention_bytes: u64,
    /// Worker-side LRU cache cap override, if any.
    pub worker_cache_cap: Option<u64>,
}

impl ServiceConfig {
    /// Laptop-scale defaults: local machine model, `workers` worker
    /// processes, two concurrent jobs, 256 MiB retention.
    pub fn new(socket: impl Into<PathBuf>, workers: usize) -> Self {
        Self {
            socket: socket.into(),
            machine: Machine::local(),
            nodes: 1,
            workers,
            spawn: SpawnSpec::WorkerBinary,
            opts: ProcOptions::default(),
            max_concurrent: 2,
            max_queued: 16,
            default_resident_cap: 1 << 34,
            retention_bytes: 256 << 20,
            worker_cache_cap: None,
        }
    }
}

enum Payload {
    Dmrg(DmrgJobSpec),
    Chain(ChainJobSpec),
}

const STATE_QUEUED: u8 = 0;
const STATE_RUNNING: u8 = 1;
const STATE_FINISHED: u8 = 2;

struct Job {
    id: u64,
    payload: Payload,
    sink: Sink,
    cancel: AtomicBool,
    sweeps: AtomicU64,
    state: AtomicU8,
}

/// Shared write side of one client connection; events from any runner
/// thread serialize through the mutex so frames never interleave.
#[derive(Clone)]
struct Sink(Arc<StdMutex<UnixStream>>);

impl Sink {
    fn send(&self, ev: &JobEvent) {
        // best-effort: a vanished client must not wedge the runner
        if let Ok(mut s) = self.0.lock() {
            let _ = write_frame(&mut *s, FRAME_EVENT, &ev.encode());
        }
    }
}

struct Inner {
    exec: Executor,
    runner: Option<Arc<dyn SolveRunner>>,
    queue: StdMutex<VecDeque<Arc<Job>>>,
    cv: Condvar,
    jobs: StdMutex<HashMap<u64, Arc<Job>>>,
    next_id: AtomicU64,
    stop: AtomicBool,
    max_queued: usize,
    default_resident_cap: u64,
}

impl Inner {
    fn status(&self) -> StatusReport {
        let queued = self.queue.lock().expect("queue lock").len() as u64;
        let mut running: Vec<(u64, u64)> = self
            .jobs
            .lock()
            .expect("jobs lock")
            .values()
            .filter(|j| j.state.load(Ordering::Relaxed) == STATE_RUNNING)
            .map(|j| (j.id, j.sweeps.load(Ordering::Relaxed)))
            .collect();
        running.sort_unstable();
        let fleet: Vec<RankCacheStats> = self.exec.cache_stats().unwrap_or_default();
        StatusReport {
            queued,
            running,
            fleet,
        }
    }

    fn initiate_stop(&self) {
        self.stop.store(true, Ordering::SeqCst);
        for job in self.jobs.lock().expect("jobs lock").values() {
            job.cancel.store(true, Ordering::Relaxed);
        }
        self.cv.notify_all();
    }
}

/// A running solve-service daemon. Dropping (or [`Service::stop`]) shuts
/// it down: every job is cancelled, runner threads drain, the socket file
/// is removed and the worker fleet exits with the executor.
pub struct Service {
    inner: Arc<Inner>,
    threads: Vec<std::thread::JoinHandle<()>>,
    socket: PathBuf,
}

impl Service {
    /// Start a daemon: spawn the fleet, bind the socket, launch the
    /// accept loop and `max_concurrent` runner threads. `runner` executes
    /// DMRG jobs; pass `None` for a chains-only daemon.
    pub fn start(cfg: ServiceConfig, runner: Option<Arc<dyn SolveRunner>>) -> Result<Service> {
        let exec = Executor::multi_process_opts(
            cfg.machine.clone(),
            cfg.nodes,
            cfg.workers,
            cfg.spawn.clone(),
            cfg.opts.clone(),
        )?;
        if let Some(cap) = cfg.worker_cache_cap {
            exec.set_worker_cache_cap(cap)?;
        }
        exec.set_retention_cap(cfg.retention_bytes)?;

        let _ = std::fs::remove_file(&cfg.socket);
        let listener = UnixListener::bind(&cfg.socket)
            .map_err(|e| Error::transport(format!("bind {}: {e}", cfg.socket.display())))?;
        listener
            .set_nonblocking(true)
            .map_err(|e| Error::transport(format!("set_nonblocking: {e}")))?;

        let inner = Arc::new(Inner {
            exec,
            runner,
            queue: StdMutex::new(VecDeque::new()),
            cv: Condvar::new(),
            jobs: StdMutex::new(HashMap::new()),
            next_id: AtomicU64::new(1),
            stop: AtomicBool::new(false),
            max_queued: cfg.max_queued,
            default_resident_cap: cfg.default_resident_cap.max(1),
        });

        let mut threads = Vec::new();
        {
            let inner = Arc::clone(&inner);
            threads.push(
                std::thread::Builder::new()
                    .name("tt-serve-accept".into())
                    .spawn(move || accept_loop(inner, listener))
                    .map_err(|e| Error::transport(format!("spawn accept loop: {e}")))?,
            );
        }
        for i in 0..cfg.max_concurrent.max(1) {
            let inner = Arc::clone(&inner);
            threads.push(
                std::thread::Builder::new()
                    .name(format!("tt-serve-run{i}"))
                    .spawn(move || runner_loop(inner))
                    .map_err(|e| Error::transport(format!("spawn runner: {e}")))?,
            );
        }
        Ok(Service {
            inner,
            threads,
            socket: cfg.socket,
        })
    }

    /// The socket path clients connect to.
    pub fn socket(&self) -> &Path {
        &self.socket
    }

    /// The shared executor (fleet-wide counters, cache stats).
    pub fn executor(&self) -> &Executor {
        &self.inner.exec
    }

    /// Fleet + queue status, as a client's `Status` request would see it.
    pub fn status(&self) -> StatusReport {
        self.inner.status()
    }

    /// Block until a client's `Shutdown` request stops the daemon, then
    /// tear down.
    pub fn wait(mut self) {
        while !self.inner.stop.load(Ordering::SeqCst) {
            std::thread::sleep(Duration::from_millis(50));
        }
        self.teardown();
    }

    /// Shut the daemon down: cancel everything, drain threads, remove the
    /// socket file.
    pub fn stop(mut self) {
        self.teardown();
    }

    fn teardown(&mut self) {
        self.inner.initiate_stop();
        for t in self.threads.drain(..) {
            let _ = t.join();
        }
        let _ = std::fs::remove_file(&self.socket);
    }
}

impl Drop for Service {
    fn drop(&mut self) {
        self.teardown();
    }
}

fn accept_loop(inner: Arc<Inner>, listener: UnixListener) {
    loop {
        if inner.stop.load(Ordering::SeqCst) {
            return;
        }
        match listener.accept() {
            Ok((stream, _)) => {
                let _ = stream.set_nonblocking(false);
                let inner = Arc::clone(&inner);
                // connection readers are detached: they exit on client EOF
                let _ = std::thread::Builder::new()
                    .name("tt-serve-conn".into())
                    .spawn(move || serve_connection(inner, stream));
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(5));
            }
            Err(_) => return,
        }
    }
}

fn serve_connection(inner: Arc<Inner>, stream: UnixStream) {
    let sink = match stream.try_clone() {
        Ok(w) => Sink(Arc::new(StdMutex::new(w))),
        Err(_) => return,
    };
    let mut reader = stream;
    let mut my_jobs: Vec<u64> = Vec::new();
    // stop on EOF, corruption, or a wrong frame kind
    while let Ok((FRAME_REQUEST, payload)) = read_frame(&mut reader) {
        let req = match JobRequest::decode(&payload) {
            Ok(r) => r,
            Err(e) => {
                sink.send(&JobEvent::Rejected {
                    reason: format!("undecodable request: {e}"),
                });
                continue;
            }
        };
        match req {
            JobRequest::SubmitDmrg(spec) => {
                if let Some(id) = submit(&inner, Payload::Dmrg(spec), &sink) {
                    my_jobs.push(id);
                }
            }
            JobRequest::SubmitChain(spec) => {
                if let Some(id) = submit(&inner, Payload::Chain(spec), &sink) {
                    my_jobs.push(id);
                }
            }
            JobRequest::Cancel { job } => {
                if let Some(j) = inner.jobs.lock().expect("jobs lock").get(&job) {
                    j.cancel.store(true, Ordering::Relaxed);
                }
            }
            JobRequest::Status => sink.send(&JobEvent::Status(inner.status())),
            JobRequest::Shutdown => {
                inner.initiate_stop();
                break;
            }
        }
    }
    // a vanished client's unfinished jobs are cancelled, not orphaned
    let jobs = inner.jobs.lock().expect("jobs lock");
    for id in my_jobs {
        if let Some(j) = jobs.get(&id) {
            if j.state.load(Ordering::Relaxed) != STATE_FINISHED {
                j.cancel.store(true, Ordering::Relaxed);
            }
        }
    }
}

/// Admission control: reject when shutting down or the queue is full,
/// otherwise register + enqueue the job and ack with `Accepted`.
fn submit(inner: &Arc<Inner>, payload: Payload, sink: &Sink) -> Option<u64> {
    if inner.stop.load(Ordering::SeqCst) {
        sink.send(&JobEvent::Rejected {
            reason: "daemon is shutting down".into(),
        });
        return None;
    }
    let mut q = inner.queue.lock().expect("queue lock");
    if q.len() >= inner.max_queued {
        sink.send(&JobEvent::Rejected {
            reason: format!("queue full ({} jobs waiting)", q.len()),
        });
        return None;
    }
    let id = inner.next_id.fetch_add(1, Ordering::Relaxed);
    let job = Arc::new(Job {
        id,
        payload,
        sink: sink.clone(),
        cancel: AtomicBool::new(false),
        sweeps: AtomicU64::new(0),
        state: AtomicU8::new(STATE_QUEUED),
    });
    inner
        .jobs
        .lock()
        .expect("jobs lock")
        .insert(id, Arc::clone(&job));
    sink.send(&JobEvent::Accepted {
        job: id,
        ahead: q.len() as u64,
    });
    q.push_back(job);
    drop(q);
    inner.cv.notify_one();
    Some(id)
}

fn runner_loop(inner: Arc<Inner>) {
    loop {
        let job = {
            let mut q = inner.queue.lock().expect("queue lock");
            loop {
                if inner.stop.load(Ordering::SeqCst) {
                    // drain: cancelled-at-shutdown jobs still get a
                    // terminal event
                    match q.pop_front() {
                        Some(j) => break j,
                        None => return,
                    }
                }
                match q.pop_front() {
                    Some(j) => break j,
                    None => q = inner.cv.wait(q).expect("queue lock"),
                }
            }
        };
        run_job(&inner, &job);
        inner.jobs.lock().expect("jobs lock").remove(&job.id);
    }
}

/// Execute one job under its own cost scope and stream the outcome.
fn run_job(inner: &Arc<Inner>, job: &Arc<Job>) {
    job.state.store(STATE_RUNNING, Ordering::Relaxed);
    if job.cancel.load(Ordering::Relaxed) {
        job.state.store(STATE_FINISHED, Ordering::Relaxed);
        job.sink.send(&JobEvent::Cancelled { job: job.id });
        return;
    }
    job.sink.send(&JobEvent::Started { job: job.id });

    // A fresh tracker with the fleet's machine/ranks: the scope mirrors
    // this job's charges into it, so the meter reads as a standalone run.
    let tracker = Arc::new(Mutex::new(CostTracker::new(
        inner.exec.machine().clone(),
        inner.exec.ranks(),
    )));
    let resident = Arc::new(ResidentMeter::new());
    let (deadline, cap) = match &job.payload {
        Payload::Dmrg(s) => (
            (s.timeout_ms > 0).then(|| Duration::from_millis(s.timeout_ms)),
            if s.resident_cap_bytes > 0 {
                s.resident_cap_bytes
            } else {
                inner.default_resident_cap
            },
        ),
        Payload::Chain(_) => (None, inner.default_resident_cap),
    };
    let ctx = JobCtx {
        job: Arc::clone(job),
        resident: Arc::clone(&resident),
        cap,
    };

    let scope = JobScope::enter(Arc::clone(&tracker), Arc::clone(&resident), deadline);
    let outcome = match &job.payload {
        Payload::Dmrg(spec) => match &inner.runner {
            Some(r) => r.run(spec, &inner.exec, &ctx),
            None => Err(JobError::Failed(
                "this daemon has no DMRG runner (chains only)".into(),
            )),
        },
        Payload::Chain(spec) => run_chain(&inner.exec, spec, &ctx),
    };
    drop(scope);

    job.state.store(STATE_FINISHED, Ordering::Relaxed);
    match outcome {
        Ok(out) => {
            let meter = {
                let t = tracker.lock();
                JobMeter {
                    flops: t.flops,
                    supersteps: t.supersteps,
                    bytes_critical: t.bytes_critical,
                    bytes_operands: t.bytes_operands,
                    bytes_results: t.bytes_results,
                    bytes_recovery: t.bytes_recovery,
                    sim_seconds: t.sim.total(),
                }
            };
            job.sink.send(&JobEvent::Done {
                job: job.id,
                report: JobReport {
                    energy: out.energy,
                    energies: out.energies,
                    meter,
                    resident_peak_bytes: resident.peak_bytes(),
                    dense_dims: out.dense_dims,
                    dense_vals: out.dense_vals,
                },
            });
        }
        Err(JobError::Cancelled) => job.sink.send(&JobEvent::Cancelled { job: job.id }),
        Err(JobError::Failed(reason)) => job.sink.send(&JobEvent::Failed {
            job: job.id,
            reason,
        }),
    }
}

/// Execute a contraction-chain job natively: one worker-side chain, last
/// result downloaded into the report.
fn run_chain(
    exec: &Executor,
    spec: &ChainJobSpec,
    ctx: &JobCtx,
) -> std::result::Result<SolveOutcome, JobError> {
    ctx.checkpoint()?;
    if spec.steps.is_empty() {
        return Err(JobError::Failed("empty chain".into()));
    }
    // materialize inline operands first so chain steps can borrow them
    enum Slot {
        Owned(usize),
        Prev(usize),
    }
    let mut owned: Vec<DenseTensor<f64>> = Vec::new();
    let mut slots: Vec<(Slot, Slot, Option<usize>)> = Vec::new();
    for (i, step) in spec.steps.iter().enumerate() {
        let mut slot = |op: &ChainOperand| -> std::result::Result<Slot, JobError> {
            match op {
                ChainOperand::Dense { dims, vals } => {
                    let dims: Vec<usize> = dims.iter().map(|&d| d as usize).collect();
                    let t = DenseTensor::from_vec(dims, vals.clone())
                        .map_err(|e| JobError::Failed(format!("step {i}: {e}")))?;
                    owned.push(t);
                    Ok(Slot::Owned(owned.len() - 1))
                }
                ChainOperand::Prev { step } => {
                    if *step as usize >= i {
                        return Err(JobError::Failed(format!(
                            "step {i}: operand references step {step}, which has not run"
                        )));
                    }
                    Ok(Slot::Prev(*step as usize))
                }
            }
        };
        let a = slot(&step.a)?;
        let b = slot(&step.b)?;
        slots.push((a, b, step.acc.map(|x| x as usize)));
    }
    let steps: Vec<ChainStep> = spec
        .steps
        .iter()
        .zip(&slots)
        .map(|(s, (a, b, acc))| {
            let src = |slot: &Slot| match slot {
                Slot::Owned(i) => ChainSrc::Dense((&owned[*i]).into()),
                Slot::Prev(i) => ChainSrc::Prev(*i),
            };
            ChainStep {
                spec: &s.spec,
                a: src(a),
                b: src(b),
                acc: *acc,
            }
        })
        .collect();
    let handles = exec.chain(&steps)?;
    let mut hs: Vec<_> = handles.into_iter().flatten().collect();
    let last = hs
        .pop()
        .ok_or_else(|| JobError::Failed("chain produced no result".into()))?;
    exec.free_results(hs)?;
    let t = exec.download(last)?;
    ctx.checkpoint()?;
    Ok(SolveOutcome {
        energy: 0.0,
        energies: Vec::new(),
        dense_dims: t.dims().iter().map(|&d| d as u64).collect(),
        dense_vals: t.data().to_vec(),
    })
}

// -- client --------------------------------------------------------------

/// A blocking client of one solve-service daemon. One connection can
/// carry many jobs; events for jobs other than the one being waited on
/// are buffered and replayed to later waits.
pub struct ServiceClient {
    stream: UnixStream,
    pending: VecDeque<JobEvent>,
}

impl ServiceClient {
    /// Connect, retrying until the daemon's socket appears (up to
    /// `timeout`).
    pub fn connect(path: impl AsRef<Path>, timeout: Duration) -> Result<Self> {
        let path = path.as_ref();
        let start = Instant::now();
        loop {
            match UnixStream::connect(path) {
                Ok(stream) => {
                    return Ok(Self {
                        stream,
                        pending: VecDeque::new(),
                    })
                }
                Err(e) if start.elapsed() < timeout => {
                    let _ = e;
                    std::thread::sleep(Duration::from_millis(20));
                }
                Err(e) => return Err(Error::transport(format!("connect {}: {e}", path.display()))),
            }
        }
    }

    fn send(&mut self, req: &JobRequest) -> Result<()> {
        write_frame(&mut self.stream, FRAME_REQUEST, &req.encode())
    }

    fn next_event(&mut self) -> Result<JobEvent> {
        if let Some(ev) = self.pending.pop_front() {
            return Ok(ev);
        }
        let (tag, payload) = read_frame(&mut self.stream)?;
        if tag != FRAME_EVENT {
            return Err(Error::transport(format!("unexpected frame tag {tag:#x}")));
        }
        JobEvent::decode(&payload)
    }

    /// Submit a DMRG solve; returns the job id (or the rejection reason
    /// as an error).
    pub fn submit_dmrg(&mut self, spec: &DmrgJobSpec) -> Result<u64> {
        self.send(&JobRequest::SubmitDmrg(spec.clone()))?;
        self.await_admission()
    }

    /// Submit a contraction chain; returns the job id.
    pub fn submit_chain(&mut self, spec: &ChainJobSpec) -> Result<u64> {
        self.send(&JobRequest::SubmitChain(spec.clone()))?;
        self.await_admission()
    }

    fn await_admission(&mut self) -> Result<u64> {
        // scan buffered then fresh events for this submission's verdict;
        // anything else belongs to other in-flight jobs
        let mut unrelated = VecDeque::new();
        let verdict = loop {
            match self.next_event()? {
                JobEvent::Accepted { job, .. } => break Ok(job),
                JobEvent::Rejected { reason } => {
                    break Err(Error::Runtime(format!("job rejected: {reason}")))
                }
                other => unrelated.push_back(other),
            }
        };
        unrelated.append(&mut self.pending);
        self.pending = unrelated;
        verdict
    }

    /// Wait for `job` to finish, feeding every event of that job (sweeps
    /// included) to `on_event`. Returns the final report; cancellation
    /// and failure surface as errors.
    pub fn wait_with(
        &mut self,
        job: u64,
        mut on_event: impl FnMut(&JobEvent),
    ) -> Result<JobReport> {
        let mut unrelated = VecDeque::new();
        let outcome = loop {
            let ev = self.next_event()?;
            let mine = matches!(
                &ev,
                JobEvent::Started { job: j }
                    | JobEvent::Sweep { job: j, .. }
                    | JobEvent::Done { job: j, .. }
                    | JobEvent::Failed { job: j, .. }
                    | JobEvent::Cancelled { job: j }
                    if *j == job
            );
            if !mine {
                unrelated.push_back(ev);
                continue;
            }
            on_event(&ev);
            match ev {
                JobEvent::Done { report, .. } => break Ok(report),
                JobEvent::Failed { reason, .. } => {
                    break Err(Error::Runtime(format!("job {job} failed: {reason}")))
                }
                JobEvent::Cancelled { .. } => {
                    break Err(Error::Runtime(format!("job {job} was cancelled")))
                }
                _ => {}
            }
        };
        unrelated.append(&mut self.pending);
        self.pending = unrelated;
        outcome
    }

    /// Wait for `job` to finish, discarding progress events.
    pub fn wait(&mut self, job: u64) -> Result<JobReport> {
        self.wait_with(job, |_| {})
    }

    /// Ask the daemon for a status snapshot.
    pub fn status(&mut self) -> Result<StatusReport> {
        self.send(&JobRequest::Status)?;
        let mut unrelated = VecDeque::new();
        let report = loop {
            match self.next_event()? {
                JobEvent::Status(s) => break s,
                other => unrelated.push_back(other),
            }
        };
        unrelated.append(&mut self.pending);
        self.pending = unrelated;
        Ok(report)
    }

    /// Request cancellation of `job` (takes effect at its next sweep
    /// boundary).
    pub fn cancel(&mut self, job: u64) -> Result<()> {
        self.send(&JobRequest::Cancel { job })
    }

    /// Ask the daemon to shut down (cancels every tenant's jobs).
    pub fn shutdown_server(&mut self) -> Result<()> {
        self.send(&JobRequest::Shutdown)
    }
}

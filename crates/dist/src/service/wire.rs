//! Wire frames of the solve-service socket protocol.
//!
//! The service speaks the same hand-rolled little-endian codec as the
//! worker protocol ([`crate::transport::wire`]): each socket message is
//! one `[tag u64][len u64][payload]` frame whose payload is an encoded
//! [`JobRequest`] (client → daemon, frame tag [`FRAME_REQUEST`]) or
//! [`JobEvent`] (daemon → client, frame tag [`FRAME_EVENT`]). Decoders
//! never panic on malformed input — every length is validated against
//! the remaining bytes, exactly like the worker-protocol decoders, and
//! the same roundtrip / truncation / bit-flip fuzz harness covers every
//! frame below.

use crate::exec::RankCacheStats;
use crate::transport::wire::{Dec, Enc};
use crate::{Error, Result};

/// Frame tag of client → daemon [`JobRequest`] messages.
pub const FRAME_REQUEST: u64 = 0x4a52; // "JR"
/// Frame tag of daemon → client [`JobEvent`] messages.
pub const FRAME_EVENT: u64 = 0x4a45; // "JE"

/// The physical model of a DMRG solve job, in plain data (the daemon
/// builds the MPO/MPS; clients never ship tensors for solves).
#[derive(Clone, Debug, PartialEq)]
pub enum ModelSpec {
    /// Heisenberg J₁–J₂ chain of `n` sites, J₁ = 1.
    HeisenbergChain { n: u64, j2: f64 },
    /// Hubbard chain of `n` sites, t = 1, on-site `u`.
    HubbardChain { n: u64, u: f64 },
}

/// Which contraction algorithm family the solve uses.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum AlgoSpec {
    /// Dense block-list contractions.
    List,
    /// Sparse-dense kernels.
    SparseDense,
    /// Sparse-sparse kernels.
    SparseSparse,
}

/// Davidson eigensolver parameters (deterministic: seeded start vector).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct DavidsonSpec {
    pub max_iter: u64,
    pub max_subspace: u64,
    pub tol: f64,
    pub seed: u64,
}

/// A complete DMRG solve job: model, algorithm, bond-dimension ramp and
/// per-job runtime limits.
#[derive(Clone, Debug, PartialEq)]
pub struct DmrgJobSpec {
    pub model: ModelSpec,
    pub algo: AlgoSpec,
    /// Bond-dimension ramp; each entry runs `sweeps_per_m` sweeps.
    pub ms: Vec<u64>,
    pub sweeps_per_m: u64,
    pub cutoff: f64,
    /// Noise injected on every ramp stage except the last.
    pub noise: f64,
    pub davidson: DavidsonSpec,
    /// Per-job transport deadline in milliseconds; `0` = fleet default.
    pub timeout_ms: u64,
    /// Per-job resident-operand byte cap; `0` = service default.
    pub resident_cap_bytes: u64,
}

/// One operand of a contraction-chain job step.
#[derive(Clone, Debug, PartialEq)]
pub enum ChainOperand {
    /// An inline dense `f64` tensor.
    Dense { dims: Vec<u64>, vals: Vec<f64> },
    /// The output of an earlier step of the same job.
    Prev { step: u64 },
}

/// One step of a contraction-chain job.
#[derive(Clone, Debug, PartialEq)]
pub struct ChainStepSpec {
    /// Einsum grammar of the step.
    pub spec: String,
    pub a: ChainOperand,
    pub b: ChainOperand,
    /// Accumulate into the output of step `acc` instead of producing a
    /// fresh result.
    pub acc: Option<u64>,
}

/// A contraction-chain job: the steps run as one worker-side chain; the
/// last non-accumulate step's result is downloaded and returned in the
/// job report.
#[derive(Clone, Debug, PartialEq)]
pub struct ChainJobSpec {
    pub steps: Vec<ChainStepSpec>,
}

/// Client → daemon messages.
#[derive(Clone, Debug, PartialEq)]
pub enum JobRequest {
    /// Submit a DMRG solve.
    SubmitDmrg(DmrgJobSpec),
    /// Submit a contraction chain.
    SubmitChain(ChainJobSpec),
    /// Cancel a job (queued: dropped; running: stops at the next sweep
    /// boundary).
    Cancel { job: u64 },
    /// Ask for a [`StatusReport`].
    Status,
    /// Stop the daemon: cancels every job and shuts the fleet down.
    Shutdown,
}

/// Per-job cost meter, mirrored from the job's scoped [`CostTracker`]
/// — for a given spec these are bitwise-identical to the same solve run
/// serially on a fresh executor, regardless of what other tenants do.
///
/// [`CostTracker`]: crate::CostTracker
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct JobMeter {
    pub flops: u64,
    pub supersteps: u64,
    pub bytes_critical: u64,
    /// Operand bytes the driver actually shipped for this job — the
    /// cross-job dedup observable (collapses when another tenant already
    /// made the same contents resident).
    pub bytes_operands: u64,
    pub bytes_results: u64,
    pub bytes_recovery: u64,
    /// Simulated α–β model seconds.
    pub sim_seconds: f64,
}

/// Final result of a finished job.
#[derive(Clone, Debug, PartialEq)]
pub struct JobReport {
    /// Final energy (DMRG jobs; `0` for chains).
    pub energy: f64,
    /// Per-sweep energies in execution order (DMRG jobs).
    pub energies: Vec<f64>,
    pub meter: JobMeter,
    /// Peak retained operand bytes over the job's lifetime.
    pub resident_peak_bytes: u64,
    /// Dense result of a chain job (empty for DMRG jobs).
    pub dense_dims: Vec<u64>,
    pub dense_vals: Vec<f64>,
}

/// Daemon-wide status snapshot.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct StatusReport {
    /// Jobs waiting in the queue.
    pub queued: u64,
    /// Running jobs as `(job id, sweeps completed)`.
    pub running: Vec<(u64, u64)>,
    /// Per-rank worker cache counters for the shared fleet.
    pub fleet: Vec<RankCacheStats>,
}

/// Daemon → client messages. Every event names its job, so one
/// connection can multiplex many jobs.
#[derive(Clone, Debug, PartialEq)]
pub enum JobEvent {
    /// The job was admitted; `ahead` jobs are queued in front of it.
    Accepted { job: u64, ahead: u64 },
    /// Admission control turned the submission away.
    Rejected { reason: String },
    /// The job left the queue and started executing.
    Started { job: u64 },
    /// One DMRG sweep finished.
    Sweep {
        job: u64,
        index: u64,
        energy: f64,
        max_bond: u64,
    },
    /// The job finished; final report attached.
    Done { job: u64, report: JobReport },
    /// The job failed; human-readable reason attached.
    Failed { job: u64, reason: String },
    /// The job was cancelled (client request, disconnect, or shutdown).
    Cancelled { job: u64 },
    /// Reply to [`JobRequest::Status`].
    Status(StatusReport),
}

// -- encoders ------------------------------------------------------------

fn put_model(e: &mut Enc, m: &ModelSpec) {
    match m {
        ModelSpec::HeisenbergChain { n, j2 } => {
            e.put_u8(0);
            e.put_u64(*n);
            e.put_f64(*j2);
        }
        ModelSpec::HubbardChain { n, u } => {
            e.put_u8(1);
            e.put_u64(*n);
            e.put_f64(*u);
        }
    }
}

fn get_model(d: &mut Dec) -> Result<ModelSpec> {
    Ok(match d.u8()? {
        0 => ModelSpec::HeisenbergChain {
            n: d.u64()?,
            j2: d.f64()?,
        },
        1 => ModelSpec::HubbardChain {
            n: d.u64()?,
            u: d.f64()?,
        },
        t => return Err(Error::transport(format!("unknown model tag {t}"))),
    })
}

fn put_algo(e: &mut Enc, a: AlgoSpec) {
    e.put_u8(match a {
        AlgoSpec::List => 0,
        AlgoSpec::SparseDense => 1,
        AlgoSpec::SparseSparse => 2,
    });
}

fn get_algo(d: &mut Dec) -> Result<AlgoSpec> {
    Ok(match d.u8()? {
        0 => AlgoSpec::List,
        1 => AlgoSpec::SparseDense,
        2 => AlgoSpec::SparseSparse,
        t => return Err(Error::transport(format!("unknown algorithm tag {t}"))),
    })
}

fn put_dmrg(e: &mut Enc, s: &DmrgJobSpec) {
    put_model(e, &s.model);
    put_algo(e, s.algo);
    e.put_u64s(&s.ms);
    e.put_u64(s.sweeps_per_m);
    e.put_f64(s.cutoff);
    e.put_f64(s.noise);
    e.put_u64(s.davidson.max_iter);
    e.put_u64(s.davidson.max_subspace);
    e.put_f64(s.davidson.tol);
    e.put_u64(s.davidson.seed);
    e.put_u64(s.timeout_ms);
    e.put_u64(s.resident_cap_bytes);
}

fn get_dmrg(d: &mut Dec) -> Result<DmrgJobSpec> {
    Ok(DmrgJobSpec {
        model: get_model(d)?,
        algo: get_algo(d)?,
        ms: d.u64s()?,
        sweeps_per_m: d.u64()?,
        cutoff: d.f64()?,
        noise: d.f64()?,
        davidson: DavidsonSpec {
            max_iter: d.u64()?,
            max_subspace: d.u64()?,
            tol: d.f64()?,
            seed: d.u64()?,
        },
        timeout_ms: d.u64()?,
        resident_cap_bytes: d.u64()?,
    })
}

fn put_operand(e: &mut Enc, op: &ChainOperand) {
    match op {
        ChainOperand::Dense { dims, vals } => {
            e.put_u8(0);
            e.put_u64s(dims);
            e.put_f64s(vals);
        }
        ChainOperand::Prev { step } => {
            e.put_u8(1);
            e.put_u64(*step);
        }
    }
}

fn get_operand(d: &mut Dec) -> Result<ChainOperand> {
    Ok(match d.u8()? {
        0 => ChainOperand::Dense {
            dims: d.u64s()?,
            vals: d.f64s()?,
        },
        1 => ChainOperand::Prev { step: d.u64()? },
        t => return Err(Error::transport(format!("unknown operand tag {t}"))),
    })
}

fn put_chain(e: &mut Enc, s: &ChainJobSpec) {
    e.put_usize(s.steps.len());
    for step in &s.steps {
        e.put_str(&step.spec);
        put_operand(e, &step.a);
        put_operand(e, &step.b);
        match step.acc {
            Some(i) => {
                e.put_u8(1);
                e.put_u64(i);
            }
            None => e.put_u8(0),
        }
    }
}

/// Ceiling on decoded chain-step counts — a corrupt length field must
/// not drive a huge allocation.
const MAX_CHAIN_STEPS: usize = 1 << 20;

fn get_chain(d: &mut Dec) -> Result<ChainJobSpec> {
    let n = d.usize()?;
    if n > MAX_CHAIN_STEPS {
        return Err(Error::transport(format!("chain of {n} steps")));
    }
    let mut steps = Vec::with_capacity(n.min(1024));
    for _ in 0..n {
        steps.push(ChainStepSpec {
            spec: d.str()?,
            a: get_operand(d)?,
            b: get_operand(d)?,
            acc: match d.u8()? {
                0 => None,
                1 => Some(d.u64()?),
                t => return Err(Error::transport(format!("unknown acc tag {t}"))),
            },
        });
    }
    Ok(ChainJobSpec { steps })
}

fn put_meter(e: &mut Enc, m: &JobMeter) {
    e.put_u64(m.flops);
    e.put_u64(m.supersteps);
    e.put_u64(m.bytes_critical);
    e.put_u64(m.bytes_operands);
    e.put_u64(m.bytes_results);
    e.put_u64(m.bytes_recovery);
    e.put_f64(m.sim_seconds);
}

fn get_meter(d: &mut Dec) -> Result<JobMeter> {
    Ok(JobMeter {
        flops: d.u64()?,
        supersteps: d.u64()?,
        bytes_critical: d.u64()?,
        bytes_operands: d.u64()?,
        bytes_results: d.u64()?,
        bytes_recovery: d.u64()?,
        sim_seconds: d.f64()?,
    })
}

fn put_report(e: &mut Enc, r: &JobReport) {
    e.put_f64(r.energy);
    e.put_f64s(&r.energies);
    put_meter(e, &r.meter);
    e.put_u64(r.resident_peak_bytes);
    e.put_u64s(&r.dense_dims);
    e.put_f64s(&r.dense_vals);
}

fn get_report(d: &mut Dec) -> Result<JobReport> {
    Ok(JobReport {
        energy: d.f64()?,
        energies: d.f64s()?,
        meter: get_meter(d)?,
        resident_peak_bytes: d.u64()?,
        dense_dims: d.u64s()?,
        dense_vals: d.f64s()?,
    })
}

/// Ceiling on decoded per-rank stats counts.
const MAX_STATUS_RANKS: usize = 1 << 20;

fn put_status(e: &mut Enc, s: &StatusReport) {
    e.put_u64(s.queued);
    e.put_usize(s.running.len());
    for (job, sweeps) in &s.running {
        e.put_u64(*job);
        e.put_u64(*sweeps);
    }
    e.put_usize(s.fleet.len());
    for r in &s.fleet {
        e.put_u64(r.bytes);
        e.put_u64(r.entries);
        e.put_u64(r.pinned);
        e.put_u64(r.pinned_bytes);
        e.put_u64(r.hits);
        e.put_u64(r.misses);
        e.put_u64(r.evictions);
    }
}

fn get_status(d: &mut Dec) -> Result<StatusReport> {
    let queued = d.u64()?;
    let n = d.usize()?;
    if n > MAX_STATUS_RANKS {
        return Err(Error::transport(format!("{n} running jobs")));
    }
    let mut running = Vec::with_capacity(n.min(1024));
    for _ in 0..n {
        running.push((d.u64()?, d.u64()?));
    }
    let n = d.usize()?;
    if n > MAX_STATUS_RANKS {
        return Err(Error::transport(format!("{n} fleet ranks")));
    }
    let mut fleet = Vec::with_capacity(n.min(1024));
    for _ in 0..n {
        fleet.push(RankCacheStats {
            bytes: d.u64()?,
            entries: d.u64()?,
            pinned: d.u64()?,
            pinned_bytes: d.u64()?,
            hits: d.u64()?,
            misses: d.u64()?,
            evictions: d.u64()?,
        });
    }
    Ok(StatusReport {
        queued,
        running,
        fleet,
    })
}

impl JobRequest {
    /// Encode to the wire format.
    pub fn encode(&self) -> Vec<u8> {
        let mut e = Enc::new();
        match self {
            JobRequest::SubmitDmrg(s) => {
                e.put_u8(0);
                put_dmrg(&mut e, s);
            }
            JobRequest::SubmitChain(s) => {
                e.put_u8(1);
                put_chain(&mut e, s);
            }
            JobRequest::Cancel { job } => {
                e.put_u8(2);
                e.put_u64(*job);
            }
            JobRequest::Status => e.put_u8(3),
            JobRequest::Shutdown => e.put_u8(4),
        }
        e.finish()
    }

    /// Decode from the wire format.
    pub fn decode(bytes: &[u8]) -> Result<Self> {
        let mut d = Dec::new(bytes);
        Ok(match d.u8()? {
            0 => JobRequest::SubmitDmrg(get_dmrg(&mut d)?),
            1 => JobRequest::SubmitChain(get_chain(&mut d)?),
            2 => JobRequest::Cancel { job: d.u64()? },
            3 => JobRequest::Status,
            4 => JobRequest::Shutdown,
            op => return Err(Error::transport(format!("unknown request opcode {op}"))),
        })
    }
}

impl JobEvent {
    /// Encode to the wire format.
    pub fn encode(&self) -> Vec<u8> {
        let mut e = Enc::new();
        match self {
            JobEvent::Accepted { job, ahead } => {
                e.put_u8(0);
                e.put_u64(*job);
                e.put_u64(*ahead);
            }
            JobEvent::Rejected { reason } => {
                e.put_u8(1);
                e.put_str(reason);
            }
            JobEvent::Started { job } => {
                e.put_u8(2);
                e.put_u64(*job);
            }
            JobEvent::Sweep {
                job,
                index,
                energy,
                max_bond,
            } => {
                e.put_u8(3);
                e.put_u64(*job);
                e.put_u64(*index);
                e.put_f64(*energy);
                e.put_u64(*max_bond);
            }
            JobEvent::Done { job, report } => {
                e.put_u8(4);
                e.put_u64(*job);
                put_report(&mut e, report);
            }
            JobEvent::Failed { job, reason } => {
                e.put_u8(5);
                e.put_u64(*job);
                e.put_str(reason);
            }
            JobEvent::Cancelled { job } => {
                e.put_u8(6);
                e.put_u64(*job);
            }
            JobEvent::Status(s) => {
                e.put_u8(7);
                put_status(&mut e, s);
            }
        }
        e.finish()
    }

    /// Decode from the wire format.
    pub fn decode(bytes: &[u8]) -> Result<Self> {
        let mut d = Dec::new(bytes);
        Ok(match d.u8()? {
            0 => JobEvent::Accepted {
                job: d.u64()?,
                ahead: d.u64()?,
            },
            1 => JobEvent::Rejected { reason: d.str()? },
            2 => JobEvent::Started { job: d.u64()? },
            3 => JobEvent::Sweep {
                job: d.u64()?,
                index: d.u64()?,
                energy: d.f64()?,
                max_bond: d.u64()?,
            },
            4 => JobEvent::Done {
                job: d.u64()?,
                report: get_report(&mut d)?,
            },
            5 => JobEvent::Failed {
                job: d.u64()?,
                reason: d.str()?,
            },
            6 => JobEvent::Cancelled { job: d.u64()? },
            7 => JobEvent::Status(get_status(&mut d)?),
            op => return Err(Error::transport(format!("unknown event opcode {op}"))),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn sample_requests() -> Vec<JobRequest> {
        vec![
            JobRequest::SubmitDmrg(DmrgJobSpec {
                model: ModelSpec::HeisenbergChain { n: 8, j2: 0.5 },
                algo: AlgoSpec::SparseDense,
                ms: vec![8, 16, 32],
                sweeps_per_m: 2,
                cutoff: 1e-8,
                noise: 1e-5,
                davidson: DavidsonSpec {
                    max_iter: 4,
                    max_subspace: 8,
                    tol: 1e-9,
                    seed: 11,
                },
                timeout_ms: 30_000,
                resident_cap_bytes: 1 << 28,
            }),
            JobRequest::SubmitDmrg(DmrgJobSpec {
                model: ModelSpec::HubbardChain { n: 6, u: 8.5 },
                algo: AlgoSpec::SparseSparse,
                ms: vec![12],
                sweeps_per_m: 1,
                cutoff: 1e-13,
                noise: 0.0,
                davidson: DavidsonSpec {
                    max_iter: 2,
                    max_subspace: 4,
                    tol: 1e-10,
                    seed: 7,
                },
                timeout_ms: 0,
                resident_cap_bytes: 0,
            }),
            JobRequest::SubmitChain(ChainJobSpec {
                steps: vec![
                    ChainStepSpec {
                        spec: "ij,jk->ik".into(),
                        a: ChainOperand::Dense {
                            dims: vec![2, 3],
                            vals: vec![1.0, -2.0, 3.5, 0.0, 4.0, 5.0],
                        },
                        b: ChainOperand::Dense {
                            dims: vec![3, 2],
                            vals: vec![1.0; 6],
                        },
                        acc: None,
                    },
                    ChainStepSpec {
                        spec: "ij,jk->ik".into(),
                        a: ChainOperand::Prev { step: 0 },
                        b: ChainOperand::Dense {
                            dims: vec![2, 2],
                            vals: vec![0.5; 4],
                        },
                        acc: Some(0),
                    },
                ],
            }),
            JobRequest::Cancel { job: 42 },
            JobRequest::Status,
            JobRequest::Shutdown,
        ]
    }

    fn sample_events() -> Vec<JobEvent> {
        vec![
            JobEvent::Accepted { job: 1, ahead: 3 },
            JobEvent::Rejected {
                reason: "queue full".into(),
            },
            JobEvent::Started { job: 1 },
            JobEvent::Sweep {
                job: 1,
                index: 2,
                energy: -3.736,
                max_bond: 16,
            },
            JobEvent::Done {
                job: 1,
                report: JobReport {
                    energy: -3.736,
                    energies: vec![-3.2, -3.7, -3.736],
                    meter: JobMeter {
                        flops: 123_456,
                        supersteps: 789,
                        bytes_critical: 4096,
                        bytes_operands: 2048,
                        bytes_results: 1024,
                        bytes_recovery: 0,
                        sim_seconds: 0.125,
                    },
                    resident_peak_bytes: 1 << 20,
                    dense_dims: vec![2, 2],
                    dense_vals: vec![1.0, 0.0, 0.0, 1.0],
                },
            },
            JobEvent::Failed {
                job: 2,
                reason: "worker died".into(),
            },
            JobEvent::Cancelled { job: 3 },
            JobEvent::Status(StatusReport {
                queued: 2,
                running: vec![(1, 4), (5, 0)],
                fleet: vec![RankCacheStats {
                    bytes: 4096,
                    entries: 7,
                    pinned: 2,
                    pinned_bytes: 512,
                    hits: 100,
                    misses: 9,
                    evictions: 1,
                }],
            }),
        ]
    }

    #[test]
    fn requests_and_events_roundtrip() {
        for req in sample_requests() {
            let back = JobRequest::decode(&req.encode()).unwrap();
            assert_eq!(back, req);
        }
        for ev in sample_events() {
            let back = JobEvent::decode(&ev.encode()).unwrap();
            assert_eq!(back, ev);
        }
    }

    #[test]
    fn truncated_messages_never_panic() {
        let mut frames: Vec<Vec<u8>> = sample_requests().iter().map(|r| r.encode()).collect();
        frames.extend(sample_events().iter().map(|e| e.encode()));
        for bytes in frames {
            for cut in 0..bytes.len() {
                let _ = JobRequest::decode(&bytes[..cut]);
                let _ = JobEvent::decode(&bytes[..cut]);
            }
        }
    }

    #[test]
    fn bit_flipped_messages_never_panic() {
        // deterministic xorshift — same harness as the worker-protocol
        // decoder fuzz
        let mut state: u64 = 0x243F_6A88_85A3_08D3;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        let mut frames: Vec<Vec<u8>> = sample_requests().iter().map(|r| r.encode()).collect();
        frames.extend(sample_events().iter().map(|e| e.encode()));
        for _ in 0..64 {
            for original in &frames {
                let mut bytes = original.clone();
                let flips = 1 + (next() as usize) % 4;
                for _ in 0..flips {
                    let pos = (next() as usize) % bytes.len();
                    bytes[pos] ^= (next() % 255 + 1) as u8;
                }
                let _ = JobRequest::decode(&bytes);
                let _ = JobEvent::decode(&bytes);
            }
        }
    }

    /// Arbitrary f64 bit patterns (including NaNs, infinities, -0.0).
    fn any_f64s(max: usize) -> impl Strategy<Value = Vec<f64>> {
        prop::collection::vec(any::<u64>(), 0..max)
            .prop_map(|bits| bits.into_iter().map(f64::from_bits).collect())
    }

    proptest! {
        /// Bit-exact roundtrip even for NaN payloads (re-encoded bytes
        /// compared, where PartialEq would lie).
        #[test]
        fn codec_is_bit_exact(
            energy_bits in any::<u64>(),
            energies in any_f64s(16),
            vals in any_f64s(64),
            job in any::<u64>(),
        ) {
            let energy = f64::from_bits(energy_bits);
            let ev = JobEvent::Done {
                job,
                report: JobReport {
                    energy,
                    energies,
                    meter: JobMeter { sim_seconds: energy, ..JobMeter::default() },
                    resident_peak_bytes: job,
                    dense_dims: vec![vals.len() as u64],
                    dense_vals: vals,
                },
            };
            let bytes = ev.encode();
            prop_assert_eq!(JobEvent::decode(&bytes).unwrap().encode(), bytes);
        }

        /// Pure garbage never panics either decoder.
        #[test]
        fn garbage_bytes_never_panic(bytes in prop::collection::vec(any::<u8>(), 0..512)) {
            let _ = JobRequest::decode(&bytes);
            let _ = JobEvent::decode(&bytes);
        }
    }
}

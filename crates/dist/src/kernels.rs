//! Deterministic, chunkable local contraction kernels.
//!
//! The executor's two modes must produce **bitwise-identical** results, so
//! every kernel here partitions work by *disjoint output rows*: for a fixed
//! output element the accumulation order never depends on how many chunks
//! (threads) the row space was split into. Sequential execution is the
//! single-chunk special case of the same code path.
//!
//! Two load-balancing strategies coexist:
//!
//! * the dense kernel parallelizes **inside** the GEMM — `B` is packed
//!   once (shared across the pool), then [`MC`]-aligned row panels of the
//!   packed microkernel run as independent jobs;
//! * the sparse kernels split rows by **work volume** — a prefix sum of
//!   per-row flops picks the chunk boundaries, so a handful of dense rows
//!   (the skewed patterns block-sparse flattening produces) no longer
//!   serializes onto one worker the way a uniform row split did.

use crate::pool::ThreadPool;
use crate::Result;
use std::sync::Arc;
use tt_tensor::einsum::ContractPlan;
use tt_tensor::gemm::{
    gemm_acc_packed_rows, gemm_acc_slices, gemm_path, gemv_acc_rows, GemmPath, PackedB, MC,
};
use tt_tensor::ssmerge::{merge_chunk, SsBTable};
use tt_tensor::{DenseTensor, Scalar, Shape, SparseTensor};

/// Work volume (flops) below which the sparse kernels stay on a single
/// worker: at small sizes the pool dispatch overhead (job boxing, channel
/// wakeups, shared-queue contention) costs more than the kernel itself —
/// `BENCH_kernels.json` measured `sd_contract_threaded` at 512×128×64
/// (~5.6 MFlop) *slower* than sequential before this gate existed.
pub(crate) const SPARSE_PAR_MIN_FLOPS: u64 = 16_000_000;

/// Split `m` rows into at most `chunks` contiguous ranges. Always returns
/// at least one (possibly empty) range so zero-extent outputs flow through
/// the same chunked path instead of panicking downstream.
pub(crate) fn row_ranges(m: usize, chunks: usize) -> Vec<(usize, usize)> {
    if m == 0 {
        return vec![(0, 0)];
    }
    let chunks = chunks.clamp(1, m);
    let per = m.div_ceil(chunks);
    (0..m)
        .step_by(per.max(1))
        .map(|r0| (r0, (r0 + per).min(m)))
        .collect()
}

/// Split `m` rows into at most `chunks` ranges whose boundaries are
/// [`MC`]-aligned, so every chunking packs exactly the same `A` panels as
/// the sequential single-chunk run (GEMM-level parallelism contract).
pub(crate) fn mc_aligned_ranges(m: usize, chunks: usize) -> Vec<(usize, usize)> {
    if m == 0 {
        return vec![(0, 0)];
    }
    let panels = m.div_ceil(MC);
    let chunks = chunks.clamp(1, panels);
    let per = panels.div_ceil(chunks);
    (0..panels)
        .step_by(per)
        .map(|p0| (p0 * MC, ((p0 + per) * MC).min(m)))
        .collect()
}

/// Split `m` rows into at most `chunks` ranges of approximately equal
/// total `weights` (per-row work), via prefix sums. Ranges may have wildly
/// different widths; empty ranges are possible when the distribution is
/// extreme.
fn volume_ranges(weights: &[u64], chunks: usize) -> Vec<(usize, usize)> {
    let m = weights.len();
    if m == 0 {
        return vec![(0, 0)];
    }
    let chunks = chunks.clamp(1, m);
    let total: u128 = weights.iter().map(|&w| w as u128).sum();
    if chunks == 1 || total == 0 {
        return vec![(0, m)];
    }
    let mut prefix: Vec<u128> = Vec::with_capacity(m + 1);
    prefix.push(0);
    for &w in weights {
        prefix.push(prefix.last().unwrap() + w as u128);
    }
    let mut ranges = Vec::with_capacity(chunks);
    let mut r0 = 0usize;
    for c in 1..=chunks {
        let target = total * c as u128 / chunks as u128;
        // first row index whose prefix reaches the target share
        let r1 = if c == chunks {
            m
        } else {
            prefix.partition_point(|&p| p < target).min(m).max(r0)
        };
        ranges.push((r0, r1));
        r0 = r1;
    }
    ranges
}

/// Run `make_job(range)` over the row ranges — on the pool when one is
/// given, inline otherwise — and return per-range results in row order.
fn run_chunked<T: Send + 'static>(
    pool: Option<&ThreadPool>,
    ranges: Vec<(usize, usize)>,
    make_job: impl Fn((usize, usize)) -> Box<dyn FnOnce() -> T + Send + 'static>,
) -> Vec<T> {
    match pool {
        Some(pool) if ranges.len() > 1 => {
            let jobs = ranges.into_iter().map(&make_job).collect();
            pool.run(jobs)
        }
        _ => ranges.into_iter().map(|r| make_job(r)()).collect(),
    }
}

/// Fused dimensions of a contraction: output rows `m`, contracted `k`,
/// output cols `n`.
pub(crate) fn fused_dims(
    plan: &ContractPlan,
    a_dims: &[usize],
    b_dims: &[usize],
) -> (usize, usize, usize) {
    let m = plan.free_a_positions().iter().map(|&i| a_dims[i]).product();
    let k = plan.ctr_a_positions().iter().map(|&i| a_dims[i]).product();
    let n = plan.free_b_positions().iter().map(|&j| b_dims[j]).product();
    (m, k, n)
}

pub(crate) fn natural_dims(plan: &ContractPlan, a_dims: &[usize], b_dims: &[usize]) -> Vec<usize> {
    plan.free_a_positions()
        .iter()
        .map(|&i| a_dims[i])
        .chain(plan.free_b_positions().iter().map(|&j| b_dims[j]))
        .collect()
}

/// Dense × dense contraction (TTGT), parallel at the GEMM level: the
/// kernel path comes from [`gemm_path`]`(k, n)` (invariant under row
/// chunking), `B` is packed once and shared, and row-disjoint panels fan
/// out over the pool.
pub(crate) fn dense_contract<T: Scalar>(
    plan: &ContractPlan,
    a: &DenseTensor<T>,
    b: &DenseTensor<T>,
    pool: Option<&ThreadPool>,
) -> Result<DenseTensor<T>> {
    plan.output_dims(a.dims(), b.dims())?; // validates shapes
    let (m, k, n) = fused_dims(plan, a.dims(), b.dims());

    let mut perm_a: Vec<usize> = plan.free_a_positions().to_vec();
    perm_a.extend_from_slice(plan.ctr_a_positions());
    let mut perm_b: Vec<usize> = plan.ctr_b_positions().to_vec();
    perm_b.extend_from_slice(plan.free_b_positions());

    let a_mat: Arc<Vec<T>> = Arc::new(a.permute(&perm_a)?.into_data());
    let b_mat: Arc<Vec<T>> = Arc::new(b.permute(&perm_b)?.into_data());

    let nthreads = pool.map(|p| p.threads()).unwrap_or(1);
    let chunks = match gemm_path(k, n) {
        GemmPath::Gemv => {
            // Davidson matvec shape: skip the blocked machinery entirely
            run_chunked(pool, row_ranges(m, nthreads), |(r0, r1)| {
                let a_mat = Arc::clone(&a_mat);
                let b_mat = Arc::clone(&b_mat);
                Box::new(move || {
                    let mut c = vec![T::zero(); r1 - r0];
                    gemv_acc_rows(r0, r1, k, &a_mat, &b_mat, 1, &mut c);
                    c
                })
            })
        }
        GemmPath::Scalar => run_chunked(pool, row_ranges(m, nthreads), |(r0, r1)| {
            let a_mat = Arc::clone(&a_mat);
            let b_mat = Arc::clone(&b_mat);
            Box::new(move || {
                let rows = r1 - r0;
                let mut c = vec![T::zero(); rows * n];
                gemm_acc_slices(rows, k, n, &a_mat[r0 * k..r1 * k], &b_mat, &mut c);
                c
            })
        }),
        GemmPath::Packed => {
            // pack B across the pool, one KC-deep block per job — blocks
            // are independent and reassemble to the exact bytes of a
            // monolithic pack — then every worker drives the microkernel
            // over its own MC-aligned row panels against the shared
            // packed operand
            let blk_ranges: Vec<(usize, usize)> = (0..PackedB::<T>::block_count(k))
                .map(|blk| (blk, blk + 1))
                .collect();
            let blocks = run_chunked(pool, blk_ranges, |(blk, _)| {
                let b_mat = Arc::clone(&b_mat);
                Box::new(move || PackedB::<T>::pack_block(k, n, &b_mat, n, 1, blk))
            });
            let pb: Arc<PackedB<T>> = Arc::new(PackedB::from_blocks(k, n, blocks));
            run_chunked(pool, mc_aligned_ranges(m, nthreads), |(r0, r1)| {
                let a_mat = Arc::clone(&a_mat);
                let pb = Arc::clone(&pb);
                Box::new(move || {
                    let mut c = vec![T::zero(); (r1 - r0) * n];
                    gemm_acc_packed_rows(r0, r1, &a_mat, k, 1, &pb, &mut c);
                    c
                })
            })
        }
    };

    let mut c = Vec::with_capacity(m * n);
    for chunk in chunks {
        c.extend_from_slice(&chunk);
    }
    let c = DenseTensor::from_vec(natural_dims(plan, a.dims(), b.dims()), c)?;
    Ok(c.permute(plan.output_permutation())?)
}

/// One dense chunk computed from a *local* row slab: the shared-nothing
/// form of the per-range jobs in [`dense_contract`], used by the
/// multi-process worker. `a_slab` holds `rows` rows of the permuted `A`
/// matrix and `b_mat` the full permuted `B`; for the packed path the
/// worker packs `B` itself (identical `PackedB` contents every time, so
/// results stay bitwise-equal to the in-process kernels — provided the
/// slab's first row is [`MC`]-aligned in the global matrix, which keeps
/// the `A`-panel blocking identical).
pub(crate) fn dense_chunk<T: Scalar>(
    path: GemmPath,
    rows: usize,
    k: usize,
    n: usize,
    a_slab: &[T],
    b_mat: &[T],
) -> Vec<T> {
    match path {
        GemmPath::Gemv => {
            let mut c = vec![T::zero(); rows];
            gemv_acc_rows(0, rows, k, a_slab, b_mat, 1, &mut c);
            c
        }
        GemmPath::Scalar => {
            let mut c = vec![T::zero(); rows * n];
            gemm_acc_slices(rows, k, n, a_slab, b_mat, &mut c);
            c
        }
        GemmPath::Packed => {
            let mut c = vec![T::zero(); rows * n];
            if rows > 0 {
                let pb = PackedB::pack(k, n, b_mat, n, 1);
                gemm_acc_packed_rows(0, rows, a_slab, k, 1, &pb, &mut c);
            }
            c
        }
    }
}

/// `(fused output row, fused contracted col, value)` triples of a sparse
/// operand, in stored-offset order.
pub(crate) fn sparse_coords(
    t: &SparseTensor<f64>,
    row_modes: &[usize],
    col_modes: &[usize],
) -> Vec<Coord> {
    let dims = t.dims();
    let shape = t.shape().clone();
    t.entries()
        .map(|(off, v)| {
            let idx = shape.unoffset(off as usize);
            let mut row = 0u64;
            for &mm in row_modes {
                row = row * dims[mm] as u64 + idx[mm] as u64;
            }
            let mut col = 0u64;
            for &mm in col_modes {
                col = col * dims[mm] as u64 + idx[mm] as u64;
            }
            (row, col, v)
        })
        .collect()
}

/// A `(fused row, fused col, value)` sparse coordinate.
pub(crate) type Coord = (u64, u64, f64);

/// A chunk job producing `(output entries, flops executed)`.
type SsJob = Box<dyn FnOnce() -> (Vec<(u64, f64)>, u64) + Send>;

/// Decompose a row-major fused index over `axes` (`(dimension, output
/// stride)` pairs, most-significant first) and re-fuse it with the output
/// strides. The row and column halves of an output offset add.
fn unfuse_to_out(fused: u64, axes: &[(u64, u64)]) -> u64 {
    let mut rem = fused;
    let mut off = 0u64;
    for &(dim, stride) in axes.iter().rev() {
        off += (rem % dim) * stride;
        rem /= dim;
    }
    off
}

/// Bucket coords into work-balanced row ranges, preserving scan order
/// inside each bucket (the property that makes chunked accumulation
/// bitwise-stable: every output row lives in exactly one bucket, and its
/// coords keep their stored order there).
///
/// `coord_work` gives each coordinate's flop weight; per-row weights are
/// their sum. Bucket lookup binary-searches the range starts — ranges are
/// *not* uniform in width, so the old `row / first_range_width` indexing
/// would misbucket everything past the first boundary.
pub(crate) fn bucket_by_volume(
    coords: Vec<Coord>,
    m: usize,
    chunks: usize,
    coord_work: impl Fn(&Coord) -> u64,
) -> (Vec<(usize, usize)>, Vec<Vec<Coord>>) {
    let mut weights = vec![0u64; m];
    for c in &coords {
        weights[c.0 as usize] += coord_work(c);
    }
    let ranges = volume_ranges(&weights, chunks);
    let starts: Vec<usize> = ranges.iter().map(|&(r0, _)| r0).collect();
    let mut buckets: Vec<Vec<Coord>> = vec![Vec::new(); ranges.len()];
    for c in coords {
        // last range whose start is <= row; empty ranges share a start
        // with their successor, and partition_point picks the last of the
        // run — the one that actually contains the row
        let b = starts.partition_point(|&s| s <= c.0 as usize) - 1;
        buckets[b].push(c);
    }
    (ranges, buckets)
}

/// One sparse-dense chunk: accumulate `bucket`'s entries (all with fused
/// rows in `[r0, r1)`) against dense `b_mat` into the chunk's local rows.
/// Shared by the pool jobs and the multi-process worker — the accumulation
/// order per output element is the stored-entry order either way. Charges
/// the global flop counter here (not in the wrapper) so the count lands
/// in whichever process actually ran the chunk; the transport propagates
/// worker-side counts back to the driver.
pub(crate) fn sd_chunk(
    r0: usize,
    r1: usize,
    n: usize,
    bucket: &[Coord],
    b_mat: &[f64],
) -> Vec<f64> {
    tt_tensor::counter::add_flops(2 * bucket.len() as u64 * n as u64);
    let mut c = vec![0.0f64; (r1 - r0) * n];
    if n == 1 {
        // gemv-shaped: each entry contributes one scalar product
        for &(row, col, v) in bucket {
            c[row as usize - r0] += v * b_mat[col as usize];
        }
    } else {
        for &(row, col, v) in bucket {
            let local = (row as usize - r0) * n;
            let brow = &b_mat[col as usize * n..(col as usize + 1) * n];
            for (cj, &bj) in c[local..local + n].iter_mut().zip(brow) {
                *cj += v * bj;
            }
        }
    }
    c
}

/// Sparse × dense contraction producing a dense tensor, row-chunked with
/// volume-balanced (nnz·n) chunk boundaries. Work below `min_par_flops`
/// stays on one worker (pool dispatch would cost more than it saves).
pub(crate) fn sd_contract(
    plan: &ContractPlan,
    a: &SparseTensor<f64>,
    b: &DenseTensor<f64>,
    pool: Option<&ThreadPool>,
    min_par_flops: u64,
) -> Result<(DenseTensor<f64>, u64)> {
    plan.output_dims(a.dims(), b.dims())?;
    let (m, _k, n) = fused_dims(plan, a.dims(), b.dims());

    let mut perm_b: Vec<usize> = plan.ctr_b_positions().to_vec();
    perm_b.extend_from_slice(plan.free_b_positions());
    let b_mat: Arc<Vec<f64>> = Arc::new(b.permute(&perm_b)?.into_data());

    let coords = sparse_coords(a, plan.free_a_positions(), plan.ctr_a_positions());
    let flops = 2 * coords.len() as u64 * n as u64;
    let nthreads = pool.map(|p| p.threads()).unwrap_or(1);
    let chunks = if flops < min_par_flops { 1 } else { nthreads };
    // every stored entry costs one n-wide axpy
    let (ranges, buckets) = bucket_by_volume(coords, m, chunks, |_| n as u64);

    let mut jobs: Vec<Box<dyn FnOnce() -> Vec<f64> + Send>> = Vec::new();
    for ((r0, r1), bucket) in ranges.iter().copied().zip(buckets) {
        let b_mat = Arc::clone(&b_mat);
        jobs.push(Box::new(move || sd_chunk(r0, r1, n, &bucket, &b_mat)));
    }
    let chunks = match pool {
        Some(pool) if jobs.len() > 1 => pool.run(jobs),
        _ => jobs.into_iter().map(|j| j()).collect(),
    };

    let mut c = Vec::with_capacity(m * n);
    for chunk in chunks {
        c.extend_from_slice(&chunk);
    }
    let c = DenseTensor::from_vec(natural_dims(plan, a.dims(), b.dims()), c)?;
    Ok((c.permute(plan.output_permutation())?, flops))
}

/// Driver-side preparation for a sparse × sparse contraction: everything
/// the per-chunk jobs consume, computed once. Shared by the in-process
/// kernel and the multi-process executor (which ships the pieces to its
/// workers over the transport).
pub(crate) struct SsPrep {
    /// Output tensor shape (already permuted to the spec's output order).
    pub(crate) out_shape: Shape,
    /// Fused output row count.
    pub(crate) m: usize,
    /// Fused free-`B` width (the merge kernel's panel width).
    pub(crate) n: u64,
    /// `(dimension, output stride)` pairs for the fused row index.
    pub(crate) row_axes: Vec<(u64, u64)>,
    /// `(dimension, output stride)` pairs for the fused column index,
    /// applied at entry-extraction time (the grouped `B` table itself
    /// stores *fused* free indices, so it is independent of the other
    /// operand's dims and the output permutation — a cached resident table
    /// is reusable across contractions).
    pub(crate) col_axes: Vec<(u64, u64)>,
    /// `B` grouped by contracted key: sorted key runs over flat arrays.
    pub(crate) btab: SsBTable<f64>,
    /// Sorted output-sparsity mask, when given.
    pub(crate) mask_sorted: Option<Vec<u64>>,
    /// `A`'s `(fused row, contracted key, value)` coords in stored order.
    pub(crate) coords: Vec<Coord>,
}

/// Build the shared [`SsPrep`] state for `a ·spec· b`.
pub(crate) fn ss_prepare(
    plan: &ContractPlan,
    a: &SparseTensor<f64>,
    b: &SparseTensor<f64>,
    mask: Option<&[u64]>,
) -> Result<SsPrep> {
    let out_dims = plan.output_dims(a.dims(), b.dims())?;
    let out_shape = Shape::from(out_dims);
    let (m, _k, n) = fused_dims(plan, a.dims(), b.dims());

    // Precompute the linear map from fused (row, col) coordinates to
    // output offsets: for each natural axis, its dimension and its stride
    // in the (permuted) output. Row and column contributions are then
    // independent sums — no per-product index vectors.
    let ra = plan.free_a_positions().len();
    let nat_dims = natural_dims(plan, a.dims(), b.dims());
    let out_strides = out_shape.strides();
    let mut out_stride_of_nat = vec![0u64; nat_dims.len()];
    for (j, &p) in plan.output_permutation().iter().enumerate() {
        out_stride_of_nat[p] = out_strides[j] as u64;
    }
    let axes = |range: std::ops::Range<usize>| -> Vec<(u64, u64)> {
        range
            .map(|q| (nat_dims[q] as u64, out_stride_of_nat[q]))
            .collect()
    };
    let row_axes = axes(0..ra);
    let col_axes: Vec<(u64, u64)> = axes(ra..nat_dims.len());

    // B grouped by contracted key: one stable sort, flat run arrays. Runs
    // keep stored order, so accumulation is deterministic.
    let btab = SsBTable::build(sparse_coords(
        b,
        plan.ctr_b_positions(),
        plan.free_b_positions(),
    ));

    let mask_sorted = mask.map(|ms| {
        let mut v = ms.to_vec();
        v.sort_unstable();
        v
    });

    let coords = sparse_coords(a, plan.free_a_positions(), plan.ctr_a_positions());
    Ok(SsPrep {
        out_shape,
        m,
        n: n as u64,
        row_axes,
        col_axes,
        btab,
        mask_sorted,
        coords,
    })
}

/// One sparse-sparse chunk: two-pointer merge of the chunk's key-sorted
/// `A` entries against the grouped `B` table, dense-panel accumulation
/// ([`tt_tensor::ssmerge::merge_chunk`]), then resolution of fused
/// `(row, col)` pairs to output offsets and mask filtering at extraction
/// (each output element accumulates independently, so late masking is
/// value-identical to per-product masking). Shared by the pool jobs and
/// the multi-process worker.
///
/// `bucket_sorted` must be stably sorted by contracted key — per output
/// element the products then apply in ascending key order regardless of
/// how rows were chunked, which is what keeps Sequential ≡ Threaded ≡
/// MultiProcess bitwise.
#[allow(clippy::too_many_arguments)]
pub(crate) fn ss_chunk(
    bucket_sorted: &[Coord],
    btab: &SsBTable<f64>,
    r0: usize,
    r1: usize,
    n: u64,
    row_axes: &[(u64, u64)],
    col_axes: &[(u64, u64)],
    mask_sorted: Option<&[u64]>,
) -> (Vec<(u64, f64)>, u64) {
    let (triples, flops) = merge_chunk(bucket_sorted, btab, r0 as u64, r1 as u64, n);
    // triples arrive (row, col)-sorted: cache the row → output-offset
    // resolution across the run of each row
    let mut entries = Vec::with_capacity(triples.len());
    let mut last_row = u64::MAX;
    let mut last_row_out = 0u64;
    for (row, col, v) in triples {
        if row != last_row {
            last_row = row;
            last_row_out = unfuse_to_out(row, row_axes);
        }
        let out_off = last_row_out + unfuse_to_out(col, col_axes);
        if let Some(ms) = mask_sorted {
            if ms.binary_search(&out_off).is_err() {
                continue;
            }
        }
        entries.push((out_off, v));
    }
    // charge the flop counter in the process that ran the chunk (the
    // transport propagates worker-side counts back to the driver)
    tt_tensor::counter::add_flops(flops);
    (entries, flops)
}

/// Stable sort of a chunk's coords by contracted key — the order
/// [`ss_chunk`] requires. Split out so the driver can pre-sort buckets
/// before uploading them as resident derived buffers (sorting then
/// amortizes across Davidson iterations like the `B` table build).
pub(crate) fn sort_bucket_by_key(bucket: &mut [Coord]) {
    bucket.sort_by_key(|c| c.1);
}

/// Sparse × sparse contraction with an optional pre-computed output-
/// sparsity mask: sorted-merge join + dense-panel accumulation per chunk,
/// row-chunked with exact per-row work weights (each `A` entry is weighted
/// by its matching `B` key-run length) and fully deterministic (per output
/// element, products apply in ascending contracted-key order independent
/// of chunking). Work below `min_par_flops` stays on one worker.
pub(crate) fn ss_contract(
    plan: &ContractPlan,
    a: &SparseTensor<f64>,
    b: &SparseTensor<f64>,
    mask: Option<&[u64]>,
    pool: Option<&ThreadPool>,
    min_par_flops: u64,
) -> Result<(SparseTensor<f64>, u64)> {
    let prep = ss_prepare(plan, a, b, mask)?;
    let SsPrep {
        out_shape,
        m,
        n,
        row_axes,
        col_axes,
        btab,
        mask_sorted,
        coords,
    } = prep;
    let row_axes = Arc::new(row_axes);
    let col_axes = Arc::new(col_axes);
    let btab = Arc::new(btab);
    let mask_sorted = mask_sorted.map(Arc::new);

    let nthreads = pool.map(|p| p.threads()).unwrap_or(1);
    // exact work model: an A entry costs one multiply-add per entry of its
    // matching B key run (zero when no run matches)
    let coord_work = |c: &Coord| btab.run_len(c.1) as u64;
    let total_work: u64 = coords.iter().map(&coord_work).sum();
    let chunks = if 2 * total_work < min_par_flops {
        1
    } else {
        nthreads
    };
    let (ranges, buckets) = bucket_by_volume(coords, m, chunks, coord_work);

    let mut jobs: Vec<SsJob> = Vec::new();
    for ((r0, r1), mut bucket) in ranges.into_iter().zip(buckets) {
        let btab = Arc::clone(&btab);
        let row_axes = Arc::clone(&row_axes);
        let col_axes = Arc::clone(&col_axes);
        let mask_sorted = mask_sorted.clone();
        sort_bucket_by_key(&mut bucket);
        jobs.push(Box::new(move || {
            ss_chunk(
                &bucket,
                &btab,
                r0,
                r1,
                n,
                &row_axes,
                &col_axes,
                mask_sorted.as_ref().map(|m| m.as_slice()),
            )
        }));
    }
    let chunk_results = match pool {
        Some(pool) if jobs.len() > 1 => pool.run(jobs),
        _ => jobs.into_iter().map(|j| j()).collect(),
    };

    // Distinct output rows per chunk ⇒ entry sets are disjoint; the union
    // is just a concatenation that from_entries re-sorts.
    let mut entries = Vec::new();
    let mut flops = 0u64;
    for (chunk, f) in chunk_results {
        entries.extend(chunk);
        flops += f;
    }
    Ok((SparseTensor::from_entries(out_shape, entries)?, flops))
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn random_sparse(dims: &[usize], density: f64, seed: u64) -> SparseTensor<f64> {
        let mut rng = StdRng::seed_from_u64(seed);
        let dense = DenseTensor::<f64>::from_fn(dims, |_| {
            if rng.gen_bool(density) {
                rng.gen_range(-1.0..1.0)
            } else {
                0.0
            }
        });
        SparseTensor::from_dense(&dense, 0.0)
    }

    #[test]
    fn dense_kernel_matches_einsum_any_chunking() {
        let mut rng = StdRng::seed_from_u64(5);
        let a = DenseTensor::<f64>::random([7, 3, 9], &mut rng);
        let b = DenseTensor::<f64>::random([9, 3, 5], &mut rng);
        let plan = ContractPlan::parse("ajk,kjc->ca").unwrap();
        let seq = dense_contract(&plan, &a, &b, None).unwrap();
        let pool = ThreadPool::new(3);
        let par = dense_contract(&plan, &a, &b, Some(&pool)).unwrap();
        assert_eq!(seq.data(), par.data(), "threaded must be bitwise identical");
        let reference = tt_tensor::einsum("ajk,kjc->ca", &a, &b).unwrap();
        assert_eq!(seq.data(), reference.data());
    }

    #[test]
    fn dense_kernel_packed_path_bitwise_across_chunkings() {
        // large enough for GemmPath::Packed, with m spanning several MC
        // panels: pool-parallel GEMM must equal sequential bit for bit
        let mut rng = StdRng::seed_from_u64(51);
        let a = DenseTensor::<f64>::random([2 * MC + 37, 65], &mut rng);
        let b = DenseTensor::<f64>::random([65, 70], &mut rng);
        assert_eq!(gemm_path(65, 70), GemmPath::Packed);
        let plan = ContractPlan::parse("ik,kj->ij").unwrap();
        let seq = dense_contract(&plan, &a, &b, None).unwrap();
        for threads in [2, 3, 5, 8] {
            let pool = ThreadPool::new(threads);
            let par = dense_contract(&plan, &a, &b, Some(&pool)).unwrap();
            assert_eq!(seq.data(), par.data(), "threads={threads}");
        }
        let reference = tt_tensor::einsum("ik,kj->ij", &a, &b).unwrap();
        assert_eq!(seq.data(), reference.data());
    }

    #[test]
    fn dense_kernel_gemv_path_used_and_bitwise() {
        // fused n == 1 (Davidson matvec shape)
        let mut rng = StdRng::seed_from_u64(52);
        let a = DenseTensor::<f64>::random([40, 30], &mut rng);
        let x = DenseTensor::<f64>::random([30, 1], &mut rng);
        assert_eq!(gemm_path(30, 1), GemmPath::Gemv);
        let plan = ContractPlan::parse("ik,kj->ij").unwrap();
        let seq = dense_contract(&plan, &a, &x, None).unwrap();
        let pool = ThreadPool::new(4);
        let par = dense_contract(&plan, &a, &x, Some(&pool)).unwrap();
        assert_eq!(seq.data(), par.data());
        let reference = tt_tensor::einsum("ik,kj->ij", &a, &x).unwrap();
        assert_eq!(seq.data(), reference.data());
    }

    #[test]
    fn mc_ranges_cover_and_align() {
        for (m, chunks) in [(1, 4), (MC, 2), (3 * MC + 7, 4), (10 * MC, 3)] {
            let ranges = mc_aligned_ranges(m, chunks);
            assert_eq!(ranges.first().unwrap().0, 0);
            assert_eq!(ranges.last().unwrap().1, m);
            for w in ranges.windows(2) {
                assert_eq!(w[0].1, w[1].0, "contiguous");
            }
            for &(r0, _) in &ranges {
                assert_eq!(r0 % MC, 0, "start must be MC-aligned");
            }
        }
    }

    #[test]
    fn volume_ranges_balance_skewed_rows() {
        // first row carries almost all the work; uniform splitting would
        // put rows [0, m/2) on one chunk
        let mut weights = vec![1u64; 64];
        weights[0] = 10_000;
        let ranges = volume_ranges(&weights, 4);
        assert_eq!(ranges.first().unwrap().0, 0);
        assert_eq!(ranges.last().unwrap().1, 64);
        // the heavy row must be alone in its range
        assert_eq!(ranges[0], (0, 1), "heavy row isolated: {ranges:?}");
        // and ranges are non-uniform in width (the latent bug trigger)
        let widths: Vec<usize> = ranges.iter().map(|&(a, b)| b - a).collect();
        assert!(widths.windows(2).any(|w| w[0] != w[1]), "{widths:?}");
    }

    #[test]
    fn volume_buckets_respect_nonuniform_ranges() {
        // rows with equal nnz except one giant row → uneven ranges; every
        // coord must land in the bucket whose range contains its row
        let m = 32;
        let mut coords: Vec<Coord> = Vec::new();
        for r in 0..m as u64 {
            coords.push((r, 0, 1.0));
        }
        for _ in 0..100 {
            coords.push((3, 1, 2.0)); // row 3 is hot
        }
        let (ranges, buckets) = bucket_by_volume(coords, m, 4, |_| 1);
        for (range, bucket) in ranges.iter().zip(&buckets) {
            for c in bucket {
                assert!(
                    (c.0 as usize) >= range.0 && (c.0 as usize) < range.1,
                    "coord row {} outside range {range:?}",
                    c.0
                );
            }
        }
        // scan order within each bucket is preserved per row
        for bucket in &buckets {
            let rows3: Vec<f64> = bucket.iter().filter(|c| c.0 == 3).map(|c| c.2).collect();
            if !rows3.is_empty() {
                assert_eq!(rows3[0], 1.0, "stored-order first");
            }
        }
    }

    #[test]
    fn sd_kernel_matches_dense_reference() {
        let mut rng = StdRng::seed_from_u64(6);
        let a = random_sparse(&[6, 4, 5], 0.4, 7);
        let b = DenseTensor::<f64>::random([5, 4, 3], &mut rng);
        let plan = ContractPlan::parse("ajk,kjc->ac").unwrap();
        let (seq, flops) = sd_contract(&plan, &a, &b, None, 0).unwrap();
        assert!(flops > 0);
        let pool = ThreadPool::new(4);
        let (par, _) = sd_contract(&plan, &a, &b, Some(&pool), 0).unwrap();
        assert_eq!(seq.data(), par.data());
        let reference = tt_tensor::einsum("ajk,kjc->ac", &a.to_dense(), &b).unwrap();
        assert!(seq.allclose(&reference, 1e-12));
    }

    #[test]
    fn sd_kernel_skewed_rows_bitwise() {
        // highly rectangular + row-skewed sparse operand: the shape that
        // used to land entirely in one uniform bucket
        let dense = DenseTensor::<f64>::from_fn([80, 12], |idx| {
            if idx[0] < 3 || idx[1] == 0 {
                (idx[0] * 13 + idx[1]) as f64 * 0.01 - 0.3
            } else {
                0.0
            }
        });
        let a = SparseTensor::from_dense(&dense, 0.0);
        let mut rng = StdRng::seed_from_u64(8);
        let b = DenseTensor::<f64>::random([12, 7], &mut rng);
        let plan = ContractPlan::parse("ik,kj->ij").unwrap();
        let (seq, _) = sd_contract(&plan, &a, &b, None, 0).unwrap();
        for threads in [2, 3, 8] {
            let pool = ThreadPool::new(threads);
            let (par, _) = sd_contract(&plan, &a, &b, Some(&pool), 0).unwrap();
            assert_eq!(seq.data(), par.data(), "threads={threads}");
        }
        let reference = tt_tensor::einsum("ik,kj->ij", &a.to_dense(), &b).unwrap();
        assert!(seq.allclose(&reference, 1e-12));
    }

    #[test]
    fn zero_extent_outputs_do_not_panic() {
        // A zero-dimension free mode gives an empty output; the sparse
        // kernels must flow through the chunked path instead of panicking.
        let a = SparseTensor::<f64>::from_dense(&DenseTensor::zeros([0, 3]), 0.0);
        let b = DenseTensor::<f64>::zeros([3, 2]);
        let plan = ContractPlan::parse("ik,kj->ij").unwrap();
        let (c, flops) = sd_contract(&plan, &a, &b, None, 0).unwrap();
        assert_eq!(c.dims(), &[0, 2]);
        assert_eq!(flops, 0);
        let sb = SparseTensor::<f64>::from_dense(&b, 0.0);
        let (cs, _) = ss_contract(&plan, &a, &sb, None, None, 0).unwrap();
        assert_eq!(cs.dims(), &[0, 2]);
        assert_eq!(cs.nnz(), 0);
    }

    #[test]
    fn ss_kernel_matches_dense_reference_and_respects_mask() {
        let a = random_sparse(&[5, 6], 0.5, 8);
        let b = random_sparse(&[6, 4], 0.5, 9);
        let plan = ContractPlan::parse("ik,kj->ji").unwrap();
        let (seq, _) = ss_contract(&plan, &a, &b, None, None, 0).unwrap();
        let pool = ThreadPool::new(4);
        let (par, _) = ss_contract(&plan, &a, &b, None, Some(&pool), 0).unwrap();
        assert_eq!(seq.to_dense().data(), par.to_dense().data());
        let reference = tt_tensor::einsum("ik,kj->ji", &a.to_dense(), &b.to_dense()).unwrap();
        assert!(seq.to_dense().allclose(&reference, 1e-12));

        // mask restricts the output pattern
        let mask: Vec<u64> = (0..4).map(|i| i * 5 + i).collect();
        let (masked, _) = ss_contract(&plan, &a, &b, Some(&mask), None, 0).unwrap();
        for (off, _) in masked.entries() {
            assert!(mask.contains(&off));
        }
    }

    mod ss_props {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            #![proptest_config(ProptestConfig::with_cases(24))]

            /// The merge-join ss kernel agrees with the dense einsum
            /// reference on arbitrary odd shapes/densities, every chunk
            /// count is bitwise identical to sequential, and a mask is
            /// exactly an extraction-time filter of the unmasked result.
            #[test]
            fn ss_contract_matches_naive_any_chunking(
                m in 1usize..10,
                kk in 1usize..8,
                n in 1usize..9,
                da in 0.1f64..0.9,
                db in 0.1f64..0.9,
                seed in 0u64..10_000,
            ) {
                let a = random_sparse(&[m, kk], da, seed);
                let b = random_sparse(&[kk, n], db, seed.wrapping_add(1));
                let plan = ContractPlan::parse("ik,kj->ji").unwrap();
                let (seq, _) = ss_contract(&plan, &a, &b, None, None, 0).unwrap();
                let seq_dense = seq.to_dense();
                for threads in [2usize, 5] {
                    let pool = ThreadPool::new(threads);
                    let (par, _) = ss_contract(&plan, &a, &b, None, Some(&pool), 0).unwrap();
                    let par_dense = par.to_dense();
                    prop_assert_eq!(seq_dense.data(), par_dense.data());
                }
                let reference =
                    tt_tensor::einsum("ik,kj->ji", &a.to_dense(), &b.to_dense()).unwrap();
                prop_assert!(seq.to_dense().allclose(&reference, 1e-12));

                // masked run (threaded) == unmasked result filtered to the
                // mask pattern, value for value
                let mask: Vec<u64> = (0..(m * n) as u64).filter(|o| o % 3 != 0).collect();
                let pool = ThreadPool::new(3);
                let (masked, _) =
                    ss_contract(&plan, &a, &b, Some(&mask), Some(&pool), 0).unwrap();
                let expect: Vec<(u64, f64)> = seq
                    .entries()
                    .filter(|(off, _)| mask.binary_search(off).is_ok())
                    .collect();
                let got: Vec<(u64, f64)> = masked.entries().collect();
                prop_assert_eq!(got, expect);
            }
        }
    }

    #[test]
    fn ss_kernel_rectangular_skewed_bitwise() {
        // tall-skinny output with clustered rows — exercises the exact
        // per-entry work weights and non-uniform chunk boundaries
        let dense = DenseTensor::<f64>::from_fn([120, 6], |idx| {
            if idx[0] % 17 == 0 || idx[0] < 2 {
                0.3 - (idx[0] + 2 * idx[1]) as f64 * 0.007
            } else {
                0.0
            }
        });
        let a = SparseTensor::from_dense(&dense, 0.0);
        let b = random_sparse(&[6, 9], 0.6, 11);
        let plan = ContractPlan::parse("ik,kj->ij").unwrap();
        let (seq, _) = ss_contract(&plan, &a, &b, None, None, 0).unwrap();
        for threads in [2, 5, 8] {
            let pool = ThreadPool::new(threads);
            let (par, _) = ss_contract(&plan, &a, &b, None, Some(&pool), 0).unwrap();
            assert_eq!(
                seq.to_dense().data(),
                par.to_dense().data(),
                "threads={threads}"
            );
        }
    }
}

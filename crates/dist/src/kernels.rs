//! Deterministic, chunkable local contraction kernels.
//!
//! The executor's two modes must produce **bitwise-identical** results, so
//! every kernel here partitions work by *disjoint output rows*: for a fixed
//! output element the accumulation order never depends on how many chunks
//! (threads) the row space was split into. Sequential execution is the
//! single-chunk special case of the same code path.

use crate::pool::ThreadPool;
use crate::Result;
use std::sync::Arc;
use tt_tensor::einsum::ContractPlan;
use tt_tensor::gemm::gemm_acc_slices;
use tt_tensor::{DenseTensor, Shape, SparseTensor};

/// Split `m` rows into at most `chunks` contiguous ranges. Always returns
/// at least one (possibly empty) range so zero-extent outputs flow through
/// the same chunked path instead of panicking downstream.
fn row_ranges(m: usize, chunks: usize) -> Vec<(usize, usize)> {
    if m == 0 {
        return vec![(0, 0)];
    }
    let chunks = chunks.clamp(1, m);
    let per = m.div_ceil(chunks);
    (0..m)
        .step_by(per.max(1))
        .map(|r0| (r0, (r0 + per).min(m)))
        .collect()
}

/// Run `make_job(range)` over the row ranges — on the pool when one is
/// given, inline otherwise — and return per-range results in row order.
fn run_chunked<T: Send + 'static>(
    pool: Option<&ThreadPool>,
    m: usize,
    make_job: impl Fn((usize, usize)) -> Box<dyn FnOnce() -> T + Send + 'static>,
) -> Vec<T> {
    match pool {
        Some(pool) if m > 1 => {
            let jobs = row_ranges(m, pool.threads())
                .into_iter()
                .map(&make_job)
                .collect();
            pool.run(jobs)
        }
        _ => row_ranges(m, 1).into_iter().map(|r| make_job(r)()).collect(),
    }
}

/// Fused dimensions of a contraction: output rows `m`, contracted `k`,
/// output cols `n`.
pub(crate) fn fused_dims(plan: &ContractPlan, a_dims: &[usize], b_dims: &[usize]) -> (usize, usize, usize) {
    let m = plan.free_a_positions().iter().map(|&i| a_dims[i]).product();
    let k = plan.ctr_a_positions().iter().map(|&i| a_dims[i]).product();
    let n = plan.free_b_positions().iter().map(|&j| b_dims[j]).product();
    (m, k, n)
}

fn natural_dims(plan: &ContractPlan, a_dims: &[usize], b_dims: &[usize]) -> Vec<usize> {
    plan.free_a_positions()
        .iter()
        .map(|&i| a_dims[i])
        .chain(plan.free_b_positions().iter().map(|&j| b_dims[j]))
        .collect()
}

/// Dense × dense contraction (TTGT), row-chunked.
pub(crate) fn dense_contract(
    plan: &ContractPlan,
    a: &DenseTensor<f64>,
    b: &DenseTensor<f64>,
    pool: Option<&ThreadPool>,
) -> Result<DenseTensor<f64>> {
    plan.output_dims(a.dims(), b.dims())?; // validates shapes
    let (m, k, n) = fused_dims(plan, a.dims(), b.dims());

    let mut perm_a: Vec<usize> = plan.free_a_positions().to_vec();
    perm_a.extend_from_slice(plan.ctr_a_positions());
    let mut perm_b: Vec<usize> = plan.ctr_b_positions().to_vec();
    perm_b.extend_from_slice(plan.free_b_positions());

    let a_mat: Arc<Vec<f64>> = Arc::new(a.permute(&perm_a)?.into_data());
    let b_mat: Arc<Vec<f64>> = Arc::new(b.permute(&perm_b)?.into_data());

    let chunks = run_chunked(pool, m, |(r0, r1)| {
        let a_mat = Arc::clone(&a_mat);
        let b_mat = Arc::clone(&b_mat);
        Box::new(move || {
            let rows = r1 - r0;
            let mut c = vec![0.0f64; rows * n];
            gemm_acc_slices(rows, k, n, &a_mat[r0 * k..r1 * k], &b_mat, &mut c);
            c
        })
    });

    let mut c = Vec::with_capacity(m * n);
    for chunk in chunks {
        c.extend_from_slice(&chunk);
    }
    let c = DenseTensor::from_vec(natural_dims(plan, a.dims(), b.dims()), c)?;
    Ok(c.permute(plan.output_permutation())?)
}

/// `(fused output row, fused contracted col, value)` triples of a sparse
/// operand, in stored-offset order.
fn sparse_coords(
    t: &SparseTensor<f64>,
    row_modes: &[usize],
    col_modes: &[usize],
) -> Vec<Coord> {
    let dims = t.dims();
    let shape = t.shape().clone();
    t.entries()
        .map(|(off, v)| {
            let idx = shape.unoffset(off as usize);
            let mut row = 0u64;
            for &mm in row_modes {
                row = row * dims[mm] as u64 + idx[mm] as u64;
            }
            let mut col = 0u64;
            for &mm in col_modes {
                col = col * dims[mm] as u64 + idx[mm] as u64;
            }
            (row, col, v)
        })
        .collect()
}

/// A `(fused row, fused col, value)` sparse coordinate.
type Coord = (u64, u64, f64);

/// A chunk job producing `(output entries, flops executed)`.
type SsJob = Box<dyn FnOnce() -> (Vec<(u64, f64)>, u64) + Send>;

/// Decompose a row-major fused index over `axes` (`(dimension, output
/// stride)` pairs, most-significant first) and re-fuse it with the output
/// strides. The row and column halves of an output offset add.
fn unfuse_to_out(fused: u64, axes: &[(u64, u64)]) -> u64 {
    let mut rem = fused;
    let mut off = 0u64;
    for &(dim, stride) in axes.iter().rev() {
        off += (rem % dim) * stride;
        rem /= dim;
    }
    off
}

/// Bucket coords by output-row chunk, preserving scan order inside each
/// bucket (the property that makes chunked accumulation bitwise-stable).
fn bucket_by_row(
    coords: Vec<Coord>,
    m: usize,
    chunks: usize,
) -> (Vec<(usize, usize)>, Vec<Vec<Coord>>) {
    let ranges = row_ranges(m, chunks);
    let per = ranges[0].1 - ranges[0].0;
    let mut buckets: Vec<Vec<(u64, u64, f64)>> = vec![Vec::new(); ranges.len()];
    for c in coords {
        buckets[(c.0 as usize) / per.max(1)].push(c);
    }
    (ranges, buckets)
}

/// Sparse × dense contraction producing a dense tensor, row-chunked.
pub(crate) fn sd_contract(
    plan: &ContractPlan,
    a: &SparseTensor<f64>,
    b: &DenseTensor<f64>,
    pool: Option<&ThreadPool>,
) -> Result<(DenseTensor<f64>, u64)> {
    plan.output_dims(a.dims(), b.dims())?;
    let (m, _k, n) = fused_dims(plan, a.dims(), b.dims());

    let mut perm_b: Vec<usize> = plan.ctr_b_positions().to_vec();
    perm_b.extend_from_slice(plan.free_b_positions());
    let b_mat: Arc<Vec<f64>> = Arc::new(b.permute(&perm_b)?.into_data());

    let coords = sparse_coords(a, plan.free_a_positions(), plan.ctr_a_positions());
    let flops = 2 * coords.len() as u64 * n as u64;
    let nthreads = pool.map(|p| p.threads()).unwrap_or(1);
    let (ranges, buckets) = bucket_by_row(coords, m, nthreads);

    let mut jobs: Vec<Box<dyn FnOnce() -> Vec<f64> + Send>> = Vec::new();
    for ((r0, r1), bucket) in ranges.iter().copied().zip(buckets) {
        let b_mat = Arc::clone(&b_mat);
        jobs.push(Box::new(move || {
            let mut c = vec![0.0f64; (r1 - r0) * n];
            for (row, col, v) in bucket {
                let local = (row as usize - r0) * n;
                let brow = &b_mat[col as usize * n..(col as usize + 1) * n];
                for (cj, &bj) in c[local..local + n].iter_mut().zip(brow) {
                    *cj += v * bj;
                }
            }
            c
        }));
    }
    let chunks = match pool {
        Some(pool) if jobs.len() > 1 => pool.run(jobs),
        _ => jobs.into_iter().map(|j| j()).collect(),
    };

    let mut c = Vec::with_capacity(m * n);
    for chunk in chunks {
        c.extend_from_slice(&chunk);
    }
    tt_tensor::counter::add_flops(flops);
    let c = DenseTensor::from_vec(natural_dims(plan, a.dims(), b.dims()), c)?;
    Ok((c.permute(plan.output_permutation())?, flops))
}

/// Sparse × sparse contraction with an optional pre-computed output-
/// sparsity mask, row-chunked and fully deterministic (ordered maps only —
/// no hash-iteration order leaks into floating-point accumulation).
pub(crate) fn ss_contract(
    plan: &ContractPlan,
    a: &SparseTensor<f64>,
    b: &SparseTensor<f64>,
    mask: Option<&[u64]>,
    pool: Option<&ThreadPool>,
) -> Result<(SparseTensor<f64>, u64)> {
    let out_dims = plan.output_dims(a.dims(), b.dims())?;
    let out_shape = Shape::from(out_dims);
    let (m, _k, _n) = fused_dims(plan, a.dims(), b.dims());

    // Precompute the linear map from fused (row, col) coordinates to
    // output offsets: for each natural axis, its dimension and its stride
    // in the (permuted) output. Row and column contributions are then
    // independent sums — no per-product index vectors.
    let ra = plan.free_a_positions().len();
    let nat_dims = natural_dims(plan, a.dims(), b.dims());
    let out_strides = out_shape.strides();
    let mut out_stride_of_nat = vec![0u64; nat_dims.len()];
    for (j, &p) in plan.output_permutation().iter().enumerate() {
        out_stride_of_nat[p] = out_strides[j] as u64;
    }
    let axes = |range: std::ops::Range<usize>| -> Vec<(u64, u64)> {
        range.map(|q| (nat_dims[q] as u64, out_stride_of_nat[q])).collect()
    };
    let row_axes: Arc<Vec<(u64, u64)>> = Arc::new(axes(0..ra));
    let col_axes: Vec<(u64, u64)> = axes(ra..nat_dims.len());

    // B grouped by contracted key with each entry's output contribution
    // resolved up front; groups keep stored order, so accumulation is
    // deterministic.
    let b_coords = sparse_coords(b, plan.ctr_b_positions(), plan.free_b_positions());
    let mut b_by_ctr: std::collections::BTreeMap<u64, Vec<(u64, f64)>> = Default::default();
    for (ctr, free, v) in b_coords {
        b_by_ctr
            .entry(ctr)
            .or_default()
            .push((unfuse_to_out(free, &col_axes), v));
    }
    let b_by_ctr = Arc::new(b_by_ctr);

    let mask_sorted: Option<Arc<Vec<u64>>> = mask.map(|ms| {
        let mut v = ms.to_vec();
        v.sort_unstable();
        Arc::new(v)
    });

    let coords = sparse_coords(a, plan.free_a_positions(), plan.ctr_a_positions());
    let nthreads = pool.map(|p| p.threads()).unwrap_or(1);
    let (_ranges, buckets) = bucket_by_row(coords, m, nthreads);

    let mut jobs: Vec<SsJob> = Vec::new();
    for bucket in buckets {
        let b_by_ctr = Arc::clone(&b_by_ctr);
        let row_axes = Arc::clone(&row_axes);
        let mask_sorted = mask_sorted.clone();
        jobs.push(Box::new(move || {
            let mut acc: std::collections::BTreeMap<u64, f64> = Default::default();
            let mut flops = 0u64;
            for (row, ctr, va) in bucket {
                let Some(b_list) = b_by_ctr.get(&ctr) else {
                    continue;
                };
                flops += 2 * b_list.len() as u64;
                let row_out = unfuse_to_out(row, &row_axes);
                for &(col_out, vb) in b_list {
                    let out_off = row_out + col_out;
                    if let Some(ref ms) = mask_sorted {
                        if ms.binary_search(&out_off).is_err() {
                            continue;
                        }
                    }
                    *acc.entry(out_off).or_insert(0.0) += va * vb;
                }
            }
            (acc.into_iter().collect(), flops)
        }));
    }
    let chunk_results = match pool {
        Some(pool) if jobs.len() > 1 => pool.run(jobs),
        _ => jobs.into_iter().map(|j| j()).collect(),
    };

    // Distinct output rows per chunk ⇒ entry sets are disjoint; the union
    // is just a concatenation that from_entries re-sorts.
    let mut entries = Vec::new();
    let mut flops = 0u64;
    for (chunk, f) in chunk_results {
        entries.extend(chunk);
        flops += f;
    }
    tt_tensor::counter::add_flops(flops);
    Ok((SparseTensor::from_entries(out_shape, entries)?, flops))
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn random_sparse(dims: &[usize], density: f64, seed: u64) -> SparseTensor<f64> {
        let mut rng = StdRng::seed_from_u64(seed);
        let dense = DenseTensor::<f64>::from_fn(dims, |_| {
            if rng.gen_bool(density) {
                rng.gen_range(-1.0..1.0)
            } else {
                0.0
            }
        });
        SparseTensor::from_dense(&dense, 0.0)
    }

    #[test]
    fn dense_kernel_matches_einsum_any_chunking() {
        let mut rng = StdRng::seed_from_u64(5);
        let a = DenseTensor::<f64>::random([7, 3, 9], &mut rng);
        let b = DenseTensor::<f64>::random([9, 3, 5], &mut rng);
        let plan = ContractPlan::parse("ajk,kjc->ca").unwrap();
        let seq = dense_contract(&plan, &a, &b, None).unwrap();
        let pool = ThreadPool::new(3);
        let par = dense_contract(&plan, &a, &b, Some(&pool)).unwrap();
        assert_eq!(seq.data(), par.data(), "threaded must be bitwise identical");
        let reference = tt_tensor::einsum("ajk,kjc->ca", &a, &b).unwrap();
        assert_eq!(seq.data(), reference.data());
    }

    #[test]
    fn sd_kernel_matches_dense_reference() {
        let mut rng = StdRng::seed_from_u64(6);
        let a = random_sparse(&[6, 4, 5], 0.4, 7);
        let b = DenseTensor::<f64>::random([5, 4, 3], &mut rng);
        let plan = ContractPlan::parse("ajk,kjc->ac").unwrap();
        let (seq, flops) = sd_contract(&plan, &a, &b, None).unwrap();
        assert!(flops > 0);
        let pool = ThreadPool::new(4);
        let (par, _) = sd_contract(&plan, &a, &b, Some(&pool)).unwrap();
        assert_eq!(seq.data(), par.data());
        let reference = tt_tensor::einsum("ajk,kjc->ac", &a.to_dense(), &b).unwrap();
        assert!(seq.allclose(&reference, 1e-12));
    }

    #[test]
    fn zero_extent_outputs_do_not_panic() {
        // A zero-dimension free mode gives an empty output; the sparse
        // kernels must flow through the chunked path instead of panicking.
        let a = SparseTensor::<f64>::from_dense(&DenseTensor::zeros([0, 3]), 0.0);
        let b = DenseTensor::<f64>::zeros([3, 2]);
        let plan = ContractPlan::parse("ik,kj->ij").unwrap();
        let (c, flops) = sd_contract(&plan, &a, &b, None).unwrap();
        assert_eq!(c.dims(), &[0, 2]);
        assert_eq!(flops, 0);
        let sb = SparseTensor::<f64>::from_dense(&b, 0.0);
        let (cs, _) = ss_contract(&plan, &a, &sb, None, None).unwrap();
        assert_eq!(cs.dims(), &[0, 2]);
        assert_eq!(cs.nnz(), 0);
    }

    #[test]
    fn ss_kernel_matches_dense_reference_and_respects_mask() {
        let a = random_sparse(&[5, 6], 0.5, 8);
        let b = random_sparse(&[6, 4], 0.5, 9);
        let plan = ContractPlan::parse("ik,kj->ji").unwrap();
        let (seq, _) = ss_contract(&plan, &a, &b, None, None).unwrap();
        let pool = ThreadPool::new(4);
        let (par, _) = ss_contract(&plan, &a, &b, None, Some(&pool)).unwrap();
        assert_eq!(seq.to_dense().data(), par.to_dense().data());
        let reference = tt_tensor::einsum("ik,kj->ji", &a.to_dense(), &b.to_dense()).unwrap();
        assert!(seq.to_dense().allclose(&reference, 1e-12));

        // mask restricts the output pattern
        let mask: Vec<u64> = (0..4).map(|i| i * 5 + i).collect();
        let (masked, _) = ss_contract(&plan, &a, &b, Some(&mask), None).unwrap();
        for (off, _) in masked.entries() {
            assert!(mask.contains(&off));
        }
    }
}

//! Driver-side task dispatch over a [`Transport`].
//!
//! A [`Cluster`] wraps a transport endpoint and gives the executor a
//! typed request/reply interface. [`Cluster::call_all`] ships every
//! request before collecting any reply, so with the multi-process backend
//! the worker processes genuinely overlap; replies always come back in
//! submission order, which is what keeps result assembly (and cost
//! charging) bitwise-deterministic.
//!
//! The cluster is also the data plane's **byte meter**: every encoded
//! request payload is counted as *operand bytes shipped* and every reply
//! payload as *result bytes returned*, into the attached
//! [`CostTracker`]'s `bytes_operands` / `bytes_results` counters (see
//! [`crate::Comm::operand_bytes`]). These count what the driver actually
//! moved — they are how the resident-operand cache win is measured and
//! regression-tested.
//!
//! ## Fault recovery
//!
//! When the transport supports recovery (the multi-process backend), the
//! cluster additionally keeps a per-rank **journal**: the encoded bytes of
//! every state-mutating request (`Put*`, `Upload*`, `Summa*`, `Chain*`,
//! `SetCacheCap`) the rank has *acknowledged*. A rank fault
//! ([`crate::FaultKind::is_rank_fault`]) triggers, transparently inside
//! [`Cluster::call`]/[`Cluster::call_all`]:
//!
//! 1. **respawn** — a fresh worker process for the failed rank (the
//!    transport retries with capped exponential backoff), falling back to
//!    **retire** (re-route the logical rank onto a surviving worker) when
//!    respawn is exhausted or vetoed;
//! 2. **replay** — the acked journal is re-sent in order, reconstructing
//!    the rank's resident store exactly (all content is driver-issued:
//!    operands re-upload from the journaled bytes, derived buffers and
//!    chain results re-derive from their journaled producing requests);
//! 3. **re-issue** — every request that was in flight (sent, not yet
//!    acked) is re-sent in order under fresh tags, and the awaited tags
//!    are remapped, so the interrupted superstep simply retries.
//!
//! A respawned worker starts empty and replay restores precisely the
//! acked prefix, so requests apply exactly once without sequence numbers.
//! Journal hygiene is dependency-aware: a `Free`/`Download`/`Release` ack
//! deletes the key's producing entries unless a later journaled request
//! references the key as an operand — then a `Free` fixup entry is
//! appended instead, keeping replay order-correct. All recovery traffic is
//! metered under [`CostTracker::bytes_recovery`], keeping
//! `bytes_operands`/`bytes_results` equal to the fault-free run.

use crate::cost::CostTracker;
use crate::transport::worker::{OpC, OpCoords, OpF, Reply, Request};
use crate::transport::{InProcTransport, Transport};
use crate::{Error, FaultKind, Result};
use parking_lot::Mutex;
use std::collections::{HashMap, VecDeque};
use std::sync::Arc;

/// How many successive recoveries one reply wait may attempt before the
/// fault is surfaced to the caller (covers a respawned rank dying again
/// mid-replay without looping forever).
const MAX_RECOVERY_ROUNDS: usize = 3;

/// One acked journal entry: the encoded request that (re)creates worker
/// state, the store key it produces (`op`), the resident keys it reads
/// (`deps`), and — for `Free` fixups — the key it removes.
struct JEntry {
    op: Option<u64>,
    deps: Vec<u64>,
    frees: Option<u64>,
    bytes: Arc<Vec<u8>>,
}

/// How a request interacts with the journal.
enum JClass {
    /// No worker state mutated (probe, fetch, pure compute).
    Skip,
    /// Creates/mutates worker state: journal on ack.
    Store { op: Option<u64>, deps: Vec<u64> },
    /// Removes worker state under `key`: prune the journal on ack.
    Remove { key: u64 },
}

/// A sent-but-unacked request (re-issued verbatim after recovery).
struct Inflight {
    tag: u64,
    bytes: Arc<Vec<u8>>,
    class: JClass,
}

/// Per-rank recovery books.
#[derive(Default)]
struct RankLog {
    acked: Vec<JEntry>,
    inflight: VecDeque<Inflight>,
}

/// Classify a request for the journal. Operand `Key`s become dependency
/// edges; `store` keys (and uploaded keys) become the entry's `op`.
fn journal_class(req: &Request) -> JClass {
    fn f(op: &OpF, deps: &mut Vec<u64>) {
        if let OpF::Key(k) = op {
            deps.push(*k);
        }
    }
    fn c(op: &OpC, deps: &mut Vec<u64>) {
        if let OpC::Key(k) = op {
            deps.push(*k);
        }
    }
    fn coords(op: &OpCoords, deps: &mut Vec<u64>) {
        if let OpCoords::Key(k) = op {
            deps.push(*k);
        }
    }
    let store = |key: u64| JClass::Store {
        op: Some(key),
        deps: Vec::new(),
    };
    match req {
        Request::Put { key, .. }
        | Request::PutC64 { key, .. }
        | Request::Upload { key, .. }
        | Request::UploadC64 { key, .. }
        | Request::UploadCoords { key, .. }
        | Request::UploadSs { key, .. }
        | Request::SummaInit { key, .. }
        | Request::SummaPanel { key, .. } => store(*key),
        Request::SetCacheCap { .. } => JClass::Store {
            op: None,
            deps: Vec::new(),
        },
        Request::ChainDense { a, b, store, .. } => {
            let mut deps = Vec::new();
            f(a, &mut deps);
            f(b, &mut deps);
            JClass::Store {
                op: Some(*store),
                deps,
            }
        }
        Request::ChainDenseC64 { a, b, store, .. } => {
            let mut deps = Vec::new();
            c(a, &mut deps);
            c(b, &mut deps);
            JClass::Store {
                op: Some(*store),
                deps,
            }
        }
        Request::ChainSd { a, b, store, .. } => {
            let mut deps = Vec::new();
            coords(a, &mut deps);
            f(b, &mut deps);
            JClass::Store {
                op: Some(*store),
                deps,
            }
        }
        Request::Free { key } | Request::Release { key } | Request::Download { key } => {
            JClass::Remove { key: *key }
        }
        // pure probes, fetches and value-returning compute: nothing to
        // reconstruct (their operands, when keyed, are journaled by the
        // uploads that pinned them)
        Request::Ping
        | Request::Get { .. }
        | Request::GetC64 { .. }
        | Request::CacheStats
        | Request::DenseChunk { .. }
        | Request::DenseChunkC64 { .. }
        | Request::DensePair { .. }
        | Request::SdChunk { .. }
        | Request::SsChunk { .. }
        | Request::QrThin { .. }
        | Request::SvdTrunc { .. }
        | Request::Shutdown => JClass::Skip,
    }
}

/// A handle on `p` rank endpoints, ready to execute tasks.
pub struct Cluster {
    transport: Box<dyn Transport>,
    tracker: Option<Arc<Mutex<CostTracker>>>,
    next_key: u64,
    /// Per-rank journal + in-flight books; empty when the transport
    /// cannot recover ranks (the in-process backends).
    logs: Vec<RankLog>,
    /// `(rank, original tag)` → re-issued tag, for replies awaited across
    /// a recovery. Tags are never reused, so stale entries are inert.
    remap: HashMap<(usize, u64), u64>,
}

impl Cluster {
    /// Cluster over an arbitrary transport.
    pub fn new(transport: Box<dyn Transport>) -> Self {
        let logs = if transport.supports_recovery() {
            (0..transport.ranks()).map(|_| RankLog::default()).collect()
        } else {
            Vec::new()
        };
        Self {
            transport,
            tracker: None,
            // resident-buffer keys allocated by this cluster (SUMMA slabs
            // and friends) live far above small test/user keys; hashed
            // handle keys occupy the full 64-bit space and collide with
            // neither in practice
            next_key: 1 << 32,
            logs,
            remap: HashMap::new(),
        }
    }

    /// Cluster over `ranks` in-process simulated ranks.
    pub fn in_process(ranks: usize) -> Self {
        Self::new(Box::new(InProcTransport::new(ranks)))
    }

    /// Cluster over `ranks` real worker processes.
    #[cfg(unix)]
    pub fn multi_process(ranks: usize, spec: &crate::transport::SpawnSpec) -> Result<Self> {
        Ok(Self::new(Box::new(crate::transport::ProcTransport::spawn(
            ranks, spec,
        )?)))
    }

    /// Cluster over `ranks` real worker processes with explicit
    /// [`ProcOptions`](crate::ProcOptions) (fault injection, deadline,
    /// respawn budget).
    #[cfg(unix)]
    pub fn multi_process_with(
        ranks: usize,
        spec: &crate::transport::SpawnSpec,
        opts: crate::ProcOptions,
    ) -> Result<Self> {
        Ok(Self::new(Box::new(
            crate::transport::ProcTransport::spawn_with(ranks, spec, opts)?,
        )))
    }

    /// Meter this cluster's data-plane traffic into `tracker`'s
    /// `bytes_operands` / `bytes_results` counters.
    pub fn attach_tracker(&mut self, tracker: Arc<Mutex<CostTracker>>) {
        self.tracker = Some(tracker);
    }

    /// A fresh worker-store key, unique within this cluster's lifetime —
    /// the allocator behind resident SUMMA slabs and other driver-managed
    /// buffers.
    pub(crate) fn fresh_key(&mut self) -> u64 {
        let k = self.next_key;
        self.next_key += 1;
        k
    }

    /// Number of rank endpoints.
    pub fn ranks(&self) -> usize {
        self.transport.ranks()
    }

    /// The underlying transport (collectives, diagnostics).
    pub fn transport_mut(&mut self) -> &mut dyn Transport {
        &mut *self.transport
    }

    fn count_operand(&self, bytes: usize) {
        if let Some(t) = &self.tracker {
            crate::cost::charge(t, |tr| tr.bytes_operands += bytes as u64);
        }
    }

    fn count_result(&self, bytes: usize) {
        if let Some(t) = &self.tracker {
            crate::cost::charge(t, |tr| tr.bytes_results += bytes as u64);
        }
    }

    fn count_recovery(&self, bytes: usize) {
        if let Some(t) = &self.tracker {
            crate::cost::charge(t, |tr| tr.bytes_recovery += bytes as u64);
        }
    }

    /// Cheap liveness probe: ping `rank` and await its pong (faults
    /// surface typed, and trigger recovery, exactly like any other call).
    pub fn probe(&mut self, rank: usize) -> Result<()> {
        match self.call(rank, &Request::Ping)? {
            Reply::Pong => Ok(()),
            other => Err(Error::transport(format!(
                "rank {rank}: probe answered {other:?}"
            ))),
        }
    }

    /// Execute one request on one rank and wait for its reply.
    pub(crate) fn call(&mut self, rank: usize, req: &Request) -> Result<Reply> {
        let tag = self.dispatch(rank, req)?;
        self.reply(rank, tag)
    }

    /// Execute many requests — all shipped before any reply is awaited —
    /// and return the replies in submission order.
    pub(crate) fn call_all(&mut self, reqs: Vec<(usize, Request)>) -> Result<Vec<Reply>> {
        let mut routes = Vec::with_capacity(reqs.len());
        for (rank, req) in reqs {
            let tag = self.dispatch(rank, &req)?;
            routes.push((rank, tag));
        }
        routes
            .into_iter()
            .map(|(rank, tag)| self.reply(rank, tag))
            .collect()
    }

    /// Encode, meter, book and send one request; returns the tag to await.
    /// A rank fault during the send triggers recovery — the request is
    /// already booked in flight, so the recovery re-issue delivers it.
    fn dispatch(&mut self, rank: usize, req: &Request) -> Result<u64> {
        let tag = self.transport.next_tag();
        let bytes = Arc::new(req.encode());
        // operand metering counts the payload the request actually
        // carries — a task whose operands are all worker-resident ships
        // control framing only, and meters zero
        self.count_operand(req.payload_bytes());
        if !self.logs.is_empty() {
            let class = journal_class(req);
            self.logs[rank].inflight.push_back(Inflight {
                tag,
                bytes: Arc::clone(&bytes),
                class,
            });
        }
        if let Err(e) = self.transport.send(rank, tag, &bytes) {
            self.recover_from(e)?;
        }
        Ok(tag)
    }

    /// Await the reply for `tag` from `rank`, recovering from rank faults
    /// (bounded rounds) by respawn/retire + journal replay + re-issue.
    fn reply(&mut self, rank: usize, tag: u64) -> Result<Reply> {
        let mut rounds = 0;
        loop {
            match self.try_reply(rank, tag) {
                Ok(reply) => return Ok(reply),
                Err(e) if rounds < MAX_RECOVERY_ROUNDS => {
                    rounds += 1;
                    self.recover_from(e)?;
                }
                Err(e) => return Err(e),
            }
        }
    }

    /// One receive attempt (tag remapped across recoveries). Successful
    /// decodes ack the in-flight request and update the journal; a frame
    /// that fails to decode is a [`FaultKind::Decode`] rank fault.
    fn try_reply(&mut self, rank: usize, tag: u64) -> Result<Reply> {
        // follow the remap chain: each recovery re-issues under a new tag
        let mut tag = tag;
        while let Some(&t) = self.remap.get(&(rank, tag)) {
            tag = t;
        }
        let bytes = self.transport.recv(rank, tag)?;
        match Reply::decode(&bytes) {
            Ok(reply) => {
                self.count_result(bytes.len());
                self.ack(rank, tag, matches!(reply, Reply::Fail(_)));
                match reply {
                    Reply::Fail(msg) => Err(Error::fault(
                        FaultKind::Task,
                        rank,
                        format!("rank {rank}: {msg}"),
                    )),
                    reply => Ok(reply),
                }
            }
            Err(_) => {
                // the bytes moved, but only because of the fault
                self.count_recovery(bytes.len());
                Err(Error::fault(
                    FaultKind::Decode,
                    rank,
                    "reply frame failed to decode",
                ))
            }
        }
    }

    /// Acknowledge the in-flight request awaited under `tag`: drop it from
    /// the in-flight queue and fold it into the journal. `Fail` replies
    /// ack (the worker processed and refused the request deterministically)
    /// but never journal — replaying a refused request would refuse again.
    fn ack(&mut self, rank: usize, tag: u64, failed: bool) {
        if self.logs.is_empty() {
            return;
        }
        let log = &mut self.logs[rank];
        let Some(i) = log.inflight.iter().position(|f| f.tag == tag) else {
            return;
        };
        let fl = log.inflight.remove(i).expect("index just found");
        if failed {
            return;
        }
        match fl.class {
            JClass::Skip => {}
            JClass::Store { op, deps } => log.acked.push(JEntry {
                op,
                deps,
                frees: None,
                bytes: fl.bytes,
            }),
            JClass::Remove { key } => {
                if log.acked.iter().any(|e| e.deps.contains(&key)) {
                    // a journaled request reads this key: keep its
                    // producers and append a Free fixup so replay still
                    // ends with the key absent, in the right order
                    log.acked.push(JEntry {
                        op: None,
                        deps: Vec::new(),
                        frees: Some(key),
                        bytes: Arc::new(Request::Free { key }.encode()),
                    });
                } else {
                    log.acked
                        .retain(|e| e.op != Some(key) && e.frees != Some(key));
                }
            }
        }
    }

    /// Attempt recovery from `err`; `Ok(())` means the fault was handled
    /// (respawn or retire + replay + re-issue) and the caller may retry.
    fn recover_from(&mut self, err: Error) -> Result<()> {
        let recoverable = !self.logs.is_empty()
            && err
                .as_fault()
                .is_some_and(|f| f.kind.is_rank_fault() && f.rank.is_some());
        if !recoverable {
            return Err(err);
        }
        let rank = err.as_fault().and_then(|f| f.rank).expect("checked above");
        // every logical rank served by the failed physical worker loses
        // its state; all of them replay (after a retire, onto the
        // surviving worker the transport re-routed them to)
        let affected = self.transport.peers(rank);
        if self.transport.respawn(rank).is_err() {
            self.transport.retire(rank)?;
        }
        for r in affected {
            self.replay(r)?;
            self.reissue(r)?;
        }
        Ok(())
    }

    /// Re-send rank `r`'s acked journal in order, awaiting each ack —
    /// reconstructing its resident store bit-for-bit.
    fn replay(&mut self, r: usize) -> Result<()> {
        let entries: Vec<Arc<Vec<u8>>> = self.logs[r]
            .acked
            .iter()
            .map(|e| Arc::clone(&e.bytes))
            .collect();
        for bytes in entries {
            let tag = self.transport.next_tag();
            self.count_recovery(bytes.len());
            self.transport.send(r, tag, &bytes)?;
            let reply = self.transport.recv(r, tag)?;
            self.count_recovery(reply.len());
            if let Reply::Fail(msg) = Reply::decode(&reply)? {
                return Err(Error::fault(
                    FaultKind::Task,
                    r,
                    format!("journal replay refused: {msg}"),
                ));
            }
        }
        Ok(())
    }

    /// Re-send rank `r`'s in-flight requests in order under fresh tags,
    /// remapping the tags their callers await. First-send bytes were
    /// already metered as operands; the duplicates are recovery traffic.
    fn reissue(&mut self, r: usize) -> Result<()> {
        for i in 0..self.logs[r].inflight.len() {
            let new_tag = self.transport.next_tag();
            let (old_tag, bytes) = {
                let fl = &mut self.logs[r].inflight[i];
                let old = fl.tag;
                fl.tag = new_tag;
                (old, Arc::clone(&fl.bytes))
            };
            self.remap.insert((r, old_tag), new_tag);
            self.count_recovery(bytes.len());
            self.transport.send(r, new_tag, &bytes)?;
        }
        Ok(())
    }
}

/// Deterministic task placement with residency awareness: a task bearing a
/// resident operand goes to the (first) rank that already holds it;
/// everything else falls back to a round-robin cursor. Pure driver-side
/// state — given the same submission sequence the placement is identical
/// on every run.
pub(crate) struct Placement {
    ranks: usize,
    rr: usize,
}

impl Placement {
    pub(crate) fn new(ranks: usize) -> Self {
        Self {
            ranks: ranks.max(1),
            rr: 0,
        }
    }

    /// Pick the rank for a task whose operands are resident on
    /// `preferred` ranks (checked in order) — round-robin when none is.
    pub(crate) fn place(&mut self, preferred: impl IntoIterator<Item = Option<usize>>) -> usize {
        if let Some(p) = preferred.into_iter().flatten().next() {
            return p;
        }
        let r = self.rr % self.ranks;
        self.rr += 1;
        r
    }

    /// Pick the rank for a chain step from its resident inputs' weighted
    /// homes (`(rank, stored words)` per resident buffer copy): the rank
    /// holding the largest total resident volume wins, ties to the lowest
    /// rank — so the step runs where its biggest input already lives and
    /// only the smaller inputs redistribute. With nothing resident, fall
    /// back to `anchor` (a chain keeps its unanchored steps together —
    /// one cursor advance per chain, not per step) or the round-robin
    /// cursor.
    pub(crate) fn place_weighted(
        &mut self,
        weighted: impl IntoIterator<Item = (usize, u64)>,
        anchor: Option<usize>,
    ) -> usize {
        let mut by_rank: Vec<u64> = vec![0; self.ranks];
        let mut any = false;
        for (rank, words) in weighted {
            if rank < self.ranks {
                by_rank[rank] += words.max(1);
                any = true;
            }
        }
        if any {
            let mut best = 0usize;
            for (r, &w) in by_rank.iter().enumerate() {
                if w > by_rank[best] {
                    best = r;
                }
            }
            return best;
        }
        if let Some(a) = anchor {
            return a % self.ranks;
        }
        let r = self.rr % self.ranks;
        self.rr += 1;
        r
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::machine::Machine;

    #[test]
    fn call_all_returns_in_submission_order() {
        let mut cl = Cluster::in_process(3);
        let reqs: Vec<(usize, Request)> = (0..9)
            .map(|i| {
                (
                    i % 3,
                    Request::Put {
                        key: i as u64,
                        data: vec![i as f64],
                    },
                )
            })
            .collect();
        for rep in cl.call_all(reqs).unwrap() {
            assert_eq!(rep, Reply::Unit);
        }
        let gets: Vec<(usize, Request)> = (0..9)
            .map(|i| (i % 3, Request::Get { key: i as u64 }))
            .collect();
        let reps = cl.call_all(gets).unwrap();
        for (i, rep) in reps.into_iter().enumerate() {
            assert_eq!(rep, Reply::F64s(vec![i as f64]));
        }
    }

    #[test]
    fn worker_failures_surface_as_errors() {
        let mut cl = Cluster::in_process(1);
        assert!(cl.call(0, &Request::Get { key: 42 }).is_err());
    }

    #[test]
    fn traffic_is_metered_into_the_tracker() {
        let tracker = Arc::new(Mutex::new(CostTracker::new(Machine::local(), 2)));
        let mut cl = Cluster::in_process(2);
        cl.attach_tracker(Arc::clone(&tracker));
        cl.call(
            0,
            &Request::Put {
                key: 1,
                data: vec![1.0; 100],
            },
        )
        .unwrap();
        let (ops, res) = {
            let t = tracker.lock();
            (t.bytes_operands, t.bytes_results)
        };
        assert!(ops >= 800, "the 100-word payload is counted: {ops}");
        assert!(res >= 1, "the ack reply is counted: {res}");
        cl.call(0, &Request::Get { key: 1 }).unwrap();
        let t = tracker.lock();
        assert!(
            t.bytes_results >= 800,
            "the fetched buffer counts as result"
        );
    }

    #[test]
    fn placement_prefers_residency_then_round_robins() {
        let mut p = Placement::new(3);
        assert_eq!(p.place([None, None]), 0);
        assert_eq!(p.place([None]), 1);
        assert_eq!(p.place([Some(0), Some(2)]), 0, "first resident rank wins");
        assert_eq!(p.place([None, Some(2)]), 2);
        assert_eq!(p.place([None, None]), 2, "cursor resumes after 0, 1");
        assert_eq!(p.place([None]), 0);
    }

    #[test]
    fn weighted_placement_follows_the_largest_resident_input() {
        let mut p = Placement::new(4);
        // largest total resident volume wins
        assert_eq!(p.place_weighted([(1, 100), (3, 40), (3, 70)], None), 3);
        // ties break to the lowest rank
        assert_eq!(p.place_weighted([(2, 50), (0, 50)], None), 0);
        // nothing resident: the anchor keeps a chain's steps together
        assert_eq!(p.place_weighted([], Some(2)), 2);
        assert_eq!(p.place_weighted([], Some(2)), 2);
        // no anchor either: round-robin cursor
        assert_eq!(p.place_weighted([], None), 0);
        assert_eq!(p.place_weighted([], None), 1);
    }

    #[test]
    fn fresh_keys_are_unique() {
        let mut cl = Cluster::in_process(1);
        let a = cl.fresh_key();
        let b = cl.fresh_key();
        assert_ne!(a, b);
        assert!(a >= 1 << 32);
    }

    #[test]
    fn probe_answers_on_a_live_rank() {
        let mut cl = Cluster::in_process(2);
        cl.probe(0).unwrap();
        cl.probe(1).unwrap();
    }

    #[cfg(unix)]
    mod recovery {
        use super::*;
        use crate::transport::SpawnSpec;
        use crate::{FaultKind, FaultPlan, ProcOptions};
        use std::time::Duration;

        fn spec() -> SpawnSpec {
            SpawnSpec::SelfExec(vec!["spawned_worker_entry".into()])
        }

        fn cluster_with(ranks: usize, plan: &str) -> (Cluster, Arc<Mutex<CostTracker>>) {
            let opts = ProcOptions {
                plan: Some(FaultPlan::parse(plan).unwrap()),
                deadline: Some(Duration::from_secs(20)),
                ..Default::default()
            };
            let mut cl = Cluster::multi_process_with(ranks, &spec(), opts).unwrap();
            let tracker = Arc::new(Mutex::new(CostTracker::new(Machine::local(), ranks)));
            cl.attach_tracker(Arc::clone(&tracker));
            (cl, tracker)
        }

        #[test]
        fn killed_rank_recovers_resident_state_transparently() {
            let (mut cl, tracker) = cluster_with(2, "kill:1@3");
            cl.call(
                1,
                &Request::Upload {
                    key: 5,
                    data: vec![1.0, 2.0],
                },
            )
            .unwrap();
            cl.call(
                1,
                &Request::Put {
                    key: 6,
                    data: vec![3.0],
                },
            )
            .unwrap();
            // the third send kills the worker; recovery respawns it,
            // replays both journaled stores and re-issues this Get
            assert_eq!(
                cl.call(1, &Request::Get { key: 5 }).unwrap(),
                Reply::F64s(vec![1.0, 2.0])
            );
            assert_eq!(
                cl.call(1, &Request::Get { key: 6 }).unwrap(),
                Reply::F64s(vec![3.0])
            );
            let t = tracker.lock();
            assert!(t.bytes_recovery > 0, "replay traffic is metered apart");
        }

        #[test]
        fn exhausted_respawn_degrades_onto_a_survivor() {
            let (mut cl, _) = cluster_with(2, "kill:1@2,nospawn:1");
            cl.call(
                1,
                &Request::Upload {
                    key: 7,
                    data: vec![4.5],
                },
            )
            .unwrap();
            // kill fires; respawn is vetoed, so rank 1 retires onto the
            // survivor — with its journal replayed there
            assert_eq!(
                cl.call(1, &Request::Get { key: 7 }).unwrap(),
                Reply::F64s(vec![4.5])
            );
            // both logical ranks stay serviceable
            cl.probe(0).unwrap();
            cl.probe(1).unwrap();
        }

        #[test]
        fn corrupted_reply_triggers_decode_recovery() {
            let (mut cl, tracker) = cluster_with(1, "corrupt:0@2");
            cl.call(
                0,
                &Request::Upload {
                    key: 9,
                    data: vec![0.25],
                },
            )
            .unwrap();
            // this reply arrives corrupted → Decode fault → respawn +
            // replay + re-issue → the retried Get answers correctly
            assert_eq!(
                cl.call(0, &Request::Get { key: 9 }).unwrap(),
                Reply::F64s(vec![0.25])
            );
            assert!(tracker.lock().bytes_recovery > 0);
        }

        #[test]
        fn freed_keys_leave_the_journal() {
            let (mut cl, _) = cluster_with(1, "kill:0@4");
            cl.call(
                0,
                &Request::Upload {
                    key: 11,
                    data: vec![1.0],
                },
            )
            .unwrap();
            cl.call(0, &Request::Free { key: 11 }).unwrap();
            cl.call(
                0,
                &Request::Upload {
                    key: 12,
                    data: vec![2.0],
                },
            )
            .unwrap();
            // kill + recovery: replay must not resurrect the freed key
            assert_eq!(
                cl.call(0, &Request::Get { key: 12 }).unwrap(),
                Reply::F64s(vec![2.0])
            );
            let err = cl.call(0, &Request::Get { key: 11 }).unwrap_err();
            assert!(
                matches!(err.as_fault().map(|f| f.kind), Some(FaultKind::Task)),
                "freed key must stay absent after replay: {err:?}"
            );
        }

        #[test]
        fn task_failures_do_not_trigger_recovery() {
            let (mut cl, tracker) = cluster_with(1, "");
            let err = cl.call(0, &Request::Get { key: 404 }).unwrap_err();
            assert!(matches!(
                err.as_fault().map(|f| f.kind),
                Some(FaultKind::Task)
            ));
            assert_eq!(tracker.lock().bytes_recovery, 0);
            cl.probe(0).unwrap();
        }
    }
}

//! Driver-side task dispatch over a [`Transport`].
//!
//! A [`Cluster`] wraps a transport endpoint and gives the executor a
//! typed request/reply interface. [`Cluster::call_all`] ships every
//! request before collecting any reply, so with the multi-process backend
//! the worker processes genuinely overlap; replies always come back in
//! submission order, which is what keeps result assembly (and cost
//! charging) bitwise-deterministic.

use crate::transport::worker::{Reply, Request};
use crate::transport::{InProcTransport, Transport};
use crate::{Error, Result};

/// A handle on `p` rank endpoints, ready to execute tasks.
pub struct Cluster {
    transport: Box<dyn Transport>,
}

impl Cluster {
    /// Cluster over an arbitrary transport.
    pub fn new(transport: Box<dyn Transport>) -> Self {
        Self { transport }
    }

    /// Cluster over `ranks` in-process simulated ranks.
    pub fn in_process(ranks: usize) -> Self {
        Self::new(Box::new(InProcTransport::new(ranks)))
    }

    /// Cluster over `ranks` real worker processes.
    #[cfg(unix)]
    pub fn multi_process(ranks: usize, spec: &crate::transport::SpawnSpec) -> Result<Self> {
        Ok(Self::new(Box::new(crate::transport::ProcTransport::spawn(
            ranks, spec,
        )?)))
    }

    /// Number of rank endpoints.
    pub fn ranks(&self) -> usize {
        self.transport.ranks()
    }

    /// The underlying transport (collectives, diagnostics).
    pub fn transport_mut(&mut self) -> &mut dyn Transport {
        &mut *self.transport
    }

    /// Execute one request on one rank and wait for its reply.
    pub(crate) fn call(&mut self, rank: usize, req: &Request) -> Result<Reply> {
        let tag = self.transport.next_tag();
        self.transport.send(rank, tag, &req.encode())?;
        self.reply(rank, tag)
    }

    /// Execute many requests — all shipped before any reply is awaited —
    /// and return the replies in submission order.
    pub(crate) fn call_all(&mut self, reqs: Vec<(usize, Request)>) -> Result<Vec<Reply>> {
        let mut routes = Vec::with_capacity(reqs.len());
        for (rank, req) in reqs {
            let tag = self.transport.next_tag();
            self.transport.send(rank, tag, &req.encode())?;
            routes.push((rank, tag));
        }
        routes
            .into_iter()
            .map(|(rank, tag)| self.reply(rank, tag))
            .collect()
    }

    fn reply(&mut self, rank: usize, tag: u64) -> Result<Reply> {
        match Reply::decode(&self.transport.recv(rank, tag)?)? {
            Reply::Fail(msg) => Err(Error::Transport(format!("rank {rank}: {msg}"))),
            reply => Ok(reply),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn call_all_returns_in_submission_order() {
        let mut cl = Cluster::in_process(3);
        let reqs: Vec<(usize, Request)> = (0..9)
            .map(|i| {
                (
                    i % 3,
                    Request::Put {
                        key: i as u64,
                        data: vec![i as f64],
                    },
                )
            })
            .collect();
        for rep in cl.call_all(reqs).unwrap() {
            assert_eq!(rep, Reply::Unit);
        }
        let gets: Vec<(usize, Request)> = (0..9)
            .map(|i| (i % 3, Request::Get { key: i as u64 }))
            .collect();
        let reps = cl.call_all(gets).unwrap();
        for (i, rep) in reps.into_iter().enumerate() {
            assert_eq!(rep, Reply::F64s(vec![i as f64]));
        }
    }

    #[test]
    fn worker_failures_surface_as_errors() {
        let mut cl = Cluster::in_process(1);
        assert!(cl.call(0, &Request::Get { key: 42 }).is_err());
    }
}

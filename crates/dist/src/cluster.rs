//! Driver-side task dispatch over a [`Transport`].
//!
//! A [`Cluster`] wraps a transport endpoint and gives the executor a
//! typed request/reply interface. [`Cluster::call_all`] ships every
//! request before collecting any reply, so with the multi-process backend
//! the worker processes genuinely overlap; replies always come back in
//! submission order, which is what keeps result assembly (and cost
//! charging) bitwise-deterministic.
//!
//! The cluster is also the data plane's **byte meter**: every encoded
//! request payload is counted as *operand bytes shipped* and every reply
//! payload as *result bytes returned*, into the attached
//! [`CostTracker`]'s `bytes_operands` / `bytes_results` counters (see
//! [`crate::Comm::operand_bytes`]). These count what the driver actually
//! moved — they are how the resident-operand cache win is measured and
//! regression-tested.

use crate::cost::CostTracker;
use crate::transport::worker::{Reply, Request};
use crate::transport::{InProcTransport, Transport};
use crate::{Error, Result};
use parking_lot::Mutex;
use std::sync::Arc;

/// A handle on `p` rank endpoints, ready to execute tasks.
pub struct Cluster {
    transport: Box<dyn Transport>,
    tracker: Option<Arc<Mutex<CostTracker>>>,
    next_key: u64,
}

impl Cluster {
    /// Cluster over an arbitrary transport.
    pub fn new(transport: Box<dyn Transport>) -> Self {
        Self {
            transport,
            tracker: None,
            // resident-buffer keys allocated by this cluster (SUMMA slabs
            // and friends) live far above small test/user keys; hashed
            // handle keys occupy the full 64-bit space and collide with
            // neither in practice
            next_key: 1 << 32,
        }
    }

    /// Cluster over `ranks` in-process simulated ranks.
    pub fn in_process(ranks: usize) -> Self {
        Self::new(Box::new(InProcTransport::new(ranks)))
    }

    /// Cluster over `ranks` real worker processes.
    #[cfg(unix)]
    pub fn multi_process(ranks: usize, spec: &crate::transport::SpawnSpec) -> Result<Self> {
        Ok(Self::new(Box::new(crate::transport::ProcTransport::spawn(
            ranks, spec,
        )?)))
    }

    /// Meter this cluster's data-plane traffic into `tracker`'s
    /// `bytes_operands` / `bytes_results` counters.
    pub fn attach_tracker(&mut self, tracker: Arc<Mutex<CostTracker>>) {
        self.tracker = Some(tracker);
    }

    /// A fresh worker-store key, unique within this cluster's lifetime —
    /// the allocator behind resident SUMMA slabs and other driver-managed
    /// buffers.
    pub(crate) fn fresh_key(&mut self) -> u64 {
        let k = self.next_key;
        self.next_key += 1;
        k
    }

    /// Number of rank endpoints.
    pub fn ranks(&self) -> usize {
        self.transport.ranks()
    }

    /// The underlying transport (collectives, diagnostics).
    pub fn transport_mut(&mut self) -> &mut dyn Transport {
        &mut *self.transport
    }

    fn count_operand(&self, bytes: usize) {
        if let Some(t) = &self.tracker {
            t.lock().bytes_operands += bytes as u64;
        }
    }

    fn count_result(&self, bytes: usize) {
        if let Some(t) = &self.tracker {
            t.lock().bytes_results += bytes as u64;
        }
    }

    /// Execute one request on one rank and wait for its reply.
    pub(crate) fn call(&mut self, rank: usize, req: &Request) -> Result<Reply> {
        let tag = self.transport.next_tag();
        let bytes = req.encode();
        self.count_operand(bytes.len());
        self.transport.send(rank, tag, &bytes)?;
        self.reply(rank, tag)
    }

    /// Execute many requests — all shipped before any reply is awaited —
    /// and return the replies in submission order.
    pub(crate) fn call_all(&mut self, reqs: Vec<(usize, Request)>) -> Result<Vec<Reply>> {
        let mut routes = Vec::with_capacity(reqs.len());
        for (rank, req) in reqs {
            let tag = self.transport.next_tag();
            let bytes = req.encode();
            self.count_operand(bytes.len());
            self.transport.send(rank, tag, &bytes)?;
            routes.push((rank, tag));
        }
        routes
            .into_iter()
            .map(|(rank, tag)| self.reply(rank, tag))
            .collect()
    }

    fn reply(&mut self, rank: usize, tag: u64) -> Result<Reply> {
        let bytes = self.transport.recv(rank, tag)?;
        self.count_result(bytes.len());
        match Reply::decode(&bytes)? {
            Reply::Fail(msg) => Err(Error::Transport(format!("rank {rank}: {msg}"))),
            reply => Ok(reply),
        }
    }
}

/// Deterministic task placement with residency awareness: a task bearing a
/// resident operand goes to the (first) rank that already holds it;
/// everything else falls back to a round-robin cursor. Pure driver-side
/// state — given the same submission sequence the placement is identical
/// on every run.
pub(crate) struct Placement {
    ranks: usize,
    rr: usize,
}

impl Placement {
    pub(crate) fn new(ranks: usize) -> Self {
        Self {
            ranks: ranks.max(1),
            rr: 0,
        }
    }

    /// Pick the rank for a task whose operands are resident on
    /// `preferred` ranks (checked in order) — round-robin when none is.
    pub(crate) fn place(&mut self, preferred: impl IntoIterator<Item = Option<usize>>) -> usize {
        if let Some(p) = preferred.into_iter().flatten().next() {
            return p;
        }
        let r = self.rr % self.ranks;
        self.rr += 1;
        r
    }

    /// Pick the rank for a chain step from its resident inputs' weighted
    /// homes (`(rank, stored words)` per resident buffer copy): the rank
    /// holding the largest total resident volume wins, ties to the lowest
    /// rank — so the step runs where its biggest input already lives and
    /// only the smaller inputs redistribute. With nothing resident, fall
    /// back to `anchor` (a chain keeps its unanchored steps together —
    /// one cursor advance per chain, not per step) or the round-robin
    /// cursor.
    pub(crate) fn place_weighted(
        &mut self,
        weighted: impl IntoIterator<Item = (usize, u64)>,
        anchor: Option<usize>,
    ) -> usize {
        let mut by_rank: Vec<u64> = vec![0; self.ranks];
        let mut any = false;
        for (rank, words) in weighted {
            if rank < self.ranks {
                by_rank[rank] += words.max(1);
                any = true;
            }
        }
        if any {
            let mut best = 0usize;
            for (r, &w) in by_rank.iter().enumerate() {
                if w > by_rank[best] {
                    best = r;
                }
            }
            return best;
        }
        if let Some(a) = anchor {
            return a % self.ranks;
        }
        let r = self.rr % self.ranks;
        self.rr += 1;
        r
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::machine::Machine;

    #[test]
    fn call_all_returns_in_submission_order() {
        let mut cl = Cluster::in_process(3);
        let reqs: Vec<(usize, Request)> = (0..9)
            .map(|i| {
                (
                    i % 3,
                    Request::Put {
                        key: i as u64,
                        data: vec![i as f64],
                    },
                )
            })
            .collect();
        for rep in cl.call_all(reqs).unwrap() {
            assert_eq!(rep, Reply::Unit);
        }
        let gets: Vec<(usize, Request)> = (0..9)
            .map(|i| (i % 3, Request::Get { key: i as u64 }))
            .collect();
        let reps = cl.call_all(gets).unwrap();
        for (i, rep) in reps.into_iter().enumerate() {
            assert_eq!(rep, Reply::F64s(vec![i as f64]));
        }
    }

    #[test]
    fn worker_failures_surface_as_errors() {
        let mut cl = Cluster::in_process(1);
        assert!(cl.call(0, &Request::Get { key: 42 }).is_err());
    }

    #[test]
    fn traffic_is_metered_into_the_tracker() {
        let tracker = Arc::new(Mutex::new(CostTracker::new(Machine::local(), 2)));
        let mut cl = Cluster::in_process(2);
        cl.attach_tracker(Arc::clone(&tracker));
        cl.call(
            0,
            &Request::Put {
                key: 1,
                data: vec![1.0; 100],
            },
        )
        .unwrap();
        let (ops, res) = {
            let t = tracker.lock();
            (t.bytes_operands, t.bytes_results)
        };
        assert!(ops >= 800, "the 100-word payload is counted: {ops}");
        assert!(res >= 1, "the ack reply is counted: {res}");
        cl.call(0, &Request::Get { key: 1 }).unwrap();
        let t = tracker.lock();
        assert!(
            t.bytes_results >= 800,
            "the fetched buffer counts as result"
        );
    }

    #[test]
    fn placement_prefers_residency_then_round_robins() {
        let mut p = Placement::new(3);
        assert_eq!(p.place([None, None]), 0);
        assert_eq!(p.place([None]), 1);
        assert_eq!(p.place([Some(0), Some(2)]), 0, "first resident rank wins");
        assert_eq!(p.place([None, Some(2)]), 2);
        assert_eq!(p.place([None, None]), 2, "cursor resumes after 0, 1");
        assert_eq!(p.place([None]), 0);
    }

    #[test]
    fn weighted_placement_follows_the_largest_resident_input() {
        let mut p = Placement::new(4);
        // largest total resident volume wins
        assert_eq!(p.place_weighted([(1, 100), (3, 40), (3, 70)], None), 3);
        // ties break to the lowest rank
        assert_eq!(p.place_weighted([(2, 50), (0, 50)], None), 0);
        // nothing resident: the anchor keeps a chain's steps together
        assert_eq!(p.place_weighted([], Some(2)), 2);
        assert_eq!(p.place_weighted([], Some(2)), 2);
        // no anchor either: round-robin cursor
        assert_eq!(p.place_weighted([], None), 0);
        assert_eq!(p.place_weighted([], None), 1);
    }

    #[test]
    fn fresh_keys_are_unique() {
        let mut cl = Cluster::in_process(1);
        let a = cl.fresh_key();
        let b = cl.fresh_key();
        assert_ne!(a, b);
        assert!(a >= 1 << 32);
    }
}

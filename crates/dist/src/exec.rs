//! The execution front-end: every distributed-capable operation in the
//! workspace goes through an [`Executor`].
//!
//! Numerics are exact (the executor computes locally with deterministic
//! kernels); the *cost* of running the operation on `p` ranks of the
//! configured [`Machine`] is charged to the shared [`CostTracker`]: a
//! 2-D-grid SUMMA volume per contraction, TTGT packing traffic, roofline
//! compute time, tile-imbalance idle time and per-operation supersteps.
//!
//! # Resident operands
//!
//! The hot entry points accept operands either **by value** (a tensor
//! reference — shipped with every task on the multi-process backend) or
//! **by handle** ([`OpHandle`], created with [`Executor::upload`] /
//! [`Executor::upload_c64`] / [`Executor::upload_sparse`], freed with
//! [`Executor::free`]). A handle's derived buffers (permuted matrices,
//! row slabs, coordinate buckets, grouped sparse tables) are pinned in
//! the worker stores on first use, so every later contraction against the
//! same handle ships **zero operand bytes**: scatter and compute are
//! fused into one superstep per chunk, and the chunk request carries only
//! a store key. The α–β charges follow the same discipline — a one-time
//! upload charge on first use (miss), no β charge on a hit — and are
//! computed from driver-side registry state only, so the charge sequence
//! is bitwise-identical on every backend. On [`Backend::InProcess`]
//! handles are plain `Arc`s around the tensor and the numerics take the
//! exact same kernel path as the value-passing API.

use crate::cluster::{Cluster, Placement};
use crate::comm::Comm;
use crate::cost::{self, CostTracker, SimTime};
use crate::handle::{
    derive, hseq, Fnv, LocalResult, OpHandle, Payload, Residency, ResultHandle, ResultInfo,
    ResultKind,
};
use crate::kernels;
use crate::machine::Machine;
use crate::pool::ThreadPool;
use crate::transport::worker::{OpC, OpCoords, OpF, OpSs, Reply, Request};
use crate::transport::SpawnSpec;
use crate::{process_grid, Error, Result};
use parking_lot::Mutex;
use std::sync::Arc;
use tt_linalg::{TruncSpec, TruncatedSvd};
use tt_tensor::einsum::ContractPlan;
use tt_tensor::gemm::{gemm_path, GemmPath};
use tt_tensor::{Complex64, DenseTensor, Scalar, SparseTensor};

/// How the executor runs its local kernels.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum ExecMode {
    /// Single-threaded reference execution.
    Sequential,
    /// Kernels row-chunked across a worker pool; results are
    /// bitwise-identical to [`ExecMode::Sequential`].
    Threaded,
}

/// Which execution substrate an [`Executor`] runs on.
#[derive(Clone, Debug)]
pub enum Backend {
    /// The simulated single-address-space runtime (the seed behavior):
    /// exact local kernels, optionally thread-pool parallel, with
    /// communication only *charged*, never performed.
    InProcess(ExecMode),
    /// The shared-nothing runtime: `workers` real OS processes execute
    /// the kernel chunks and the driver moves operand/result payloads
    /// over the socket transport. Results are bitwise-identical to
    /// [`Backend::InProcess`] with [`ExecMode::Sequential`].
    MultiProcess {
        /// Number of worker processes to spawn.
        workers: usize,
        /// How to launch them.
        spawn: SpawnSpec,
    },
}

/// A dense operand of scalar type `T`: by value or by resident handle.
/// [`DenseOp`] and [`DenseOpC`] are the `f64` / [`Complex64`] instances —
/// every dense executor path is generic over [`WireScalar`], which is what
/// lets one cluster driver serve both scalar types.
pub enum DenseOpT<'a, T: Scalar> {
    /// Shipped with every task.
    Value(&'a DenseTensor<T>),
    /// Resident on the runtime after first use.
    Handle(&'a OpHandle),
}

/// A dense `f64` operand: by value or by resident handle.
pub type DenseOp<'a> = DenseOpT<'a, f64>;
/// A dense [`Complex64`] operand: by value or by resident handle.
pub type DenseOpC<'a> = DenseOpT<'a, Complex64>;

impl<T: Scalar> Copy for DenseOpT<'_, T> {}
impl<T: Scalar> Clone for DenseOpT<'_, T> {
    fn clone(&self) -> Self {
        *self
    }
}

impl<'a, T: Scalar> From<&'a DenseTensor<T>> for DenseOpT<'a, T> {
    fn from(t: &'a DenseTensor<T>) -> Self {
        DenseOpT::Value(t)
    }
}

impl<'a, T: Scalar> From<&'a OpHandle> for DenseOpT<'a, T> {
    fn from(h: &'a OpHandle) -> Self {
        DenseOpT::Handle(h)
    }
}

// the WireScalar bound is an internal wiring detail of the public operand
// type — the trait itself is not part of the API surface
#[allow(private_bounds)]
impl<'a, T: WireScalar> DenseOpT<'a, T> {
    fn tensor(&self) -> Result<&'a DenseTensor<T>> {
        match self {
            DenseOpT::Value(t) => Ok(t),
            DenseOpT::Handle(h) => T::from_handle(h),
        }
    }

    fn handle(&self) -> Option<&'a OpHandle> {
        match self {
            DenseOpT::Value(_) => None,
            DenseOpT::Handle(h) => Some(h),
        }
    }
}

/// A sparse `f64` operand: by value or by resident handle.
#[derive(Clone, Copy)]
pub enum SparseOp<'a> {
    /// Shipped with every task.
    Value(&'a SparseTensor<f64>),
    /// Resident on the runtime after first use.
    Handle(&'a OpHandle),
}

impl<'a> From<&'a SparseTensor<f64>> for SparseOp<'a> {
    fn from(t: &'a SparseTensor<f64>) -> Self {
        SparseOp::Value(t)
    }
}

impl<'a> From<&'a OpHandle> for SparseOp<'a> {
    fn from(h: &'a OpHandle) -> Self {
        SparseOp::Handle(h)
    }
}

impl<'a> SparseOp<'a> {
    fn tensor(&self) -> Result<&'a SparseTensor<f64>> {
        match self {
            SparseOp::Value(t) => Ok(t),
            SparseOp::Handle(h) => h.sparse(),
        }
    }

    fn handle(&self) -> Option<&'a OpHandle> {
        match self {
            SparseOp::Value(_) => None,
            SparseOp::Handle(h) => Some(h),
        }
    }
}

/// Wire-level behavior of a dense scalar type: operand encoding, upload /
/// chunk / chain request construction, reply decoding, and handle payload
/// extraction. The two implementations (for `f64` and [`Complex64`]) are
/// the *only* scalar-specific code in the dense data plane — everything
/// else is one generic driver (mirroring `kernels::dense_contract<T>`).
pub(crate) trait WireScalar: Scalar {
    /// The wire operand representation ([`OpF`] or [`OpC`]).
    type Op: Clone + Send;
    /// Stored `f64` words per element (1 for `f64`, 2 for [`Complex64`]).
    const WORDS: usize;
    /// Derived-buffer purpose tag for slab-partitioned permuted `A`.
    const TAG_A: u64;
    /// Derived-buffer purpose tag for the replicated permuted `B` matrix.
    const TAG_B: u64;
    fn op_inline(data: Vec<Self>) -> Self::Op;
    fn op_key(key: u64) -> Self::Op;
    fn upload_req(key: u64, data: Vec<Self>) -> Request;
    fn chunk_req(
        path: GemmPath,
        rows: usize,
        k: usize,
        n: usize,
        a: Self::Op,
        b: Self::Op,
    ) -> Request;
    fn expect(reply: Reply) -> Result<Vec<Self>>;
    fn from_handle(h: &OpHandle) -> Result<&DenseTensor<Self>>;
    fn payload(t: &DenseTensor<Self>) -> Payload;
}

impl WireScalar for f64 {
    type Op = OpF;
    const WORDS: usize = 1;
    const TAG_A: u64 = TAG_DENSE_A;
    const TAG_B: u64 = TAG_MAT_B;

    fn op_inline(data: Vec<Self>) -> OpF {
        OpF::Inline(data)
    }

    fn op_key(key: u64) -> OpF {
        OpF::Key(key)
    }

    fn upload_req(key: u64, data: Vec<Self>) -> Request {
        Request::Upload { key, data }
    }

    fn chunk_req(path: GemmPath, rows: usize, k: usize, n: usize, a: OpF, b: OpF) -> Request {
        Request::DenseChunk {
            path,
            rows,
            k,
            n,
            a,
            b,
        }
    }

    fn expect(reply: Reply) -> Result<Vec<Self>> {
        expect_f64s(reply)
    }

    fn from_handle(h: &OpHandle) -> Result<&DenseTensor<Self>> {
        h.dense()
    }

    fn payload(t: &DenseTensor<Self>) -> Payload {
        Payload::F64(Arc::new(t.clone()))
    }
}

impl WireScalar for Complex64 {
    type Op = OpC;
    const WORDS: usize = 2;
    const TAG_A: u64 = TAG_C64_A;
    const TAG_B: u64 = TAG_C64_B;

    fn op_inline(data: Vec<Self>) -> OpC {
        OpC::Inline(data)
    }

    fn op_key(key: u64) -> OpC {
        OpC::Key(key)
    }

    fn upload_req(key: u64, data: Vec<Self>) -> Request {
        Request::UploadC64 { key, data }
    }

    fn chunk_req(path: GemmPath, rows: usize, k: usize, n: usize, a: OpC, b: OpC) -> Request {
        Request::DenseChunkC64 {
            path,
            rows,
            k,
            n,
            a,
            b,
        }
    }

    fn expect(reply: Reply) -> Result<Vec<Self>> {
        match reply {
            Reply::C64s(v) => Ok(v),
            other => Err(Error::transport(format!(
                "expected Complex64 payload, got {other:?}"
            ))),
        }
    }

    fn from_handle(h: &OpHandle) -> Result<&DenseTensor<Self>> {
        h.dense_c64()
    }

    fn payload(t: &DenseTensor<Self>) -> Payload {
        Payload::C64(Arc::new(t.clone()))
    }
}

/// One operand of a [`Executor::chain`] step.
pub enum ChainSrc<'a> {
    /// A dense `f64` operand (by value or by resident operand handle).
    Dense(DenseOp<'a>),
    /// A dense [`Complex64`] operand.
    DenseC(DenseOpC<'a>),
    /// A sparse `f64` operand — only valid as the first (`a`) side of a
    /// step, selecting the sparse-dense kernel.
    Sparse(SparseOp<'a>),
    /// The resident output of step `i` of this chain (must be a
    /// non-accumulate step).
    Prev(usize),
    /// The resident output of an earlier chain on the same executor.
    Res(&'a ResultHandle),
}

/// One contraction of a worker-side chain superstep.
pub struct ChainStep<'a> {
    /// Einsum grammar of the step.
    pub spec: &'a str,
    /// First operand (the sparse/structural side for sd steps).
    pub a: ChainSrc<'a>,
    /// Second operand.
    pub b: ChainSrc<'a>,
    /// Accumulate elementwise into the output of step `i` (in submission
    /// order — the first partial of an output is always a plain store)
    /// instead of producing a fresh result.
    pub acc: Option<usize>,
}

/// The kernel family of a planned chain step.
enum StepKind {
    Dense,
    DenseC,
    Sd,
}

/// Static per-step plan of a chain: everything derivable driver-side from
/// dims alone.
struct PlannedStep {
    kind: StepKind,
    plan: ContractPlan,
    a_dims: Vec<usize>,
    b_dims: Vec<usize>,
    out_dims: Vec<usize>,
    m: usize,
    k: usize,
    n: usize,
    flops: u64,
    words_c: usize,
    /// The step whose output slot this step writes (self for non-acc).
    base: usize,
    /// Result store key (the base's key for accumulate steps).
    key: u64,
}

impl PlannedStep {
    fn result_kind(&self) -> ResultKind {
        result_kind_of(&self.kind)
    }
}

fn result_kind_of(kind: &StepKind) -> ResultKind {
    match kind {
        StepKind::DenseC => ResultKind::C64,
        _ => ResultKind::F64,
    }
}

/// The scalar family of a chain-step operand at planning time.
#[derive(Clone, Copy, PartialEq, Eq)]
enum SrcKind {
    F64,
    C64,
    Sparse,
}

/// A resolved wire operand of a chain step.
enum WireIn {
    F(OpF),
    C(OpC),
    Coords(OpCoords),
}

impl WireIn {
    fn f64(self) -> Result<OpF> {
        match self {
            WireIn::F(op) => Ok(op),
            _ => Err(Error::Runtime("chain step operand kind mismatch".into())),
        }
    }

    fn c64(self) -> Result<OpC> {
        match self {
            WireIn::C(op) => Ok(op),
            _ => Err(Error::Runtime("chain step operand kind mismatch".into())),
        }
    }

    fn coords(self) -> Result<OpCoords> {
        match self {
            WireIn::Coords(op) => Ok(op),
            _ => Err(Error::Runtime("chain step operand kind mismatch".into())),
        }
    }
}

/// How one operand participates in a contraction's cost charges.
#[derive(Clone, Copy, Debug)]
enum OpCharge {
    /// Shipped by value: full TTGT + SUMMA β share, as always.
    Value(usize),
    /// First use of a resident buffer: a one-time upload superstep moves
    /// the full operand, and the driver packs it once.
    Miss(usize),
    /// Resident reuse: no β charge, no packing traffic.
    Hit,
}

impl OpCharge {
    /// Words the driver packs/permutes for this contraction.
    fn local_words(&self) -> usize {
        match self {
            OpCharge::Value(w) | OpCharge::Miss(w) => *w,
            OpCharge::Hit => 0,
        }
    }

    /// Words travelling in this contraction's SUMMA superstep.
    fn beta_words(&self) -> usize {
        match self {
            OpCharge::Value(w) => *w,
            _ => 0,
        }
    }
}

// Derived-buffer purpose tags (mixed into worker/logical keys).
const TAG_DENSE_A: u64 = 0xA1; // slab-partitioned permuted f64 A
const TAG_MAT_B: u64 = 0xB1; // replicated permuted f64 matrix
const TAG_C64_A: u64 = 0xA2; // slab-partitioned permuted Complex64 A
const TAG_C64_B: u64 = 0xB2; // replicated permuted Complex64 matrix
const TAG_SD_A: u64 = 0x5D; // volume-bucketed sparse-dense coords
const TAG_SS_A: u64 = 0x55; // row-bucketed sparse-sparse coords
const TAG_SS_B: u64 = 0x56; // grouped sparse-sparse B table
const TAG_WHOLE: u64 = 0xF0; // whole tensor (pairs, SVD/QR inputs)

/// Per-operation task-mapping overhead (seconds) — the CTF-style cost of
/// building the contraction mapping, visible as "%map" in Fig. 7.
const MAP_OVERHEAD_S: f64 = 2.0e-7;

/// Aspect ratio (rows / cols) at which a factorization panel counts as
/// *tall* and routes through the TSQR tree instead of the direct
/// single-matrix factorization.
pub(crate) const TSQR_MIN_ASPECT: usize = 8;

/// Row floor below which even a high-aspect panel stays on the direct
/// path (the tree's slab bookkeeping isn't worth it).
const TSQR_MIN_ROWS: usize = 32;

/// True when `dims` is a tall matrix panel that should take the TSQR
/// route. Purely dims-driven, so the routing decision is identical on
/// every backend and in every mode.
fn tall_panel(dims: &[usize]) -> bool {
    dims.len() == 2
        && dims[1] > 0
        && dims[0] >= TSQR_MIN_ROWS
        && dims[0] >= TSQR_MIN_ASPECT * dims[1]
}

/// The distributed executor.
pub struct Executor {
    machine: Machine,
    nodes: usize,
    ranks: usize,
    mode: ExecMode,
    backend: Backend,
    tracker: Arc<Mutex<CostTracker>>,
    pool: Option<Arc<ThreadPool>>,
    cluster: Option<Mutex<Cluster>>,
    residency: Mutex<Residency>,
    /// Allocator for driver-issued result keys (chain outputs). Starts far
    /// above the cluster's SUMMA-slab key range.
    next_result: Mutex<u64>,
    /// Round-robin anchor cursor for chains with no resident inputs —
    /// advanced once per [`Executor::chain`] call, so one chain's
    /// unanchored steps stay together on one rank.
    chain_cursor: Mutex<usize>,
    /// Cross-job retention cache (see [`Executor::set_retention_cap`]).
    retention: Mutex<Retention>,
}

/// LRU book of contents the executor keeps resident beyond their
/// uploaders' lifetimes so identical re-uploads (other tenants, later
/// solves) hit the worker stores instead of re-shipping bytes. Holds one
/// registry refcount per entry; front of `held` is the eviction victim.
#[derive(Default)]
struct Retention {
    cap_bytes: u64,
    bytes: u64,
    held: Vec<(u64, u64)>,
}

impl Retention {
    /// Pop oldest entries until within budget; returns the keys to release.
    fn evict_over_cap(&mut self) -> Vec<u64> {
        let mut out = Vec::new();
        while self.bytes > self.cap_bytes && !self.held.is_empty() {
            let (key, b) = self.held.remove(0);
            self.bytes -= b;
            out.push(key);
        }
        out
    }
}

/// One rank's resident-store cache counters, as returned by
/// [`Executor::cache_stats`]: footprint (`bytes`/`entries`), the pinned
/// subset (refcounted by live result handles — exempt from LRU
/// eviction), and the lifetime hit/miss/eviction counters that make
/// cross-job operand dedup observable.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct RankCacheStats {
    /// Resident bytes in the store.
    pub bytes: u64,
    /// Resident entries in the store.
    pub entries: u64,
    /// Entries currently pinned (nonzero refcount).
    pub pinned: u64,
    /// Bytes held by pinned entries.
    pub pinned_bytes: u64,
    /// Keyed lookups served from the store since worker start.
    pub hits: u64,
    /// Fresh insertions (content not already resident) since start.
    pub misses: u64,
    /// LRU evictions since start.
    pub evictions: u64,
}

impl Executor {
    /// Serial baseline: one rank of the free-communication local machine.
    pub fn local() -> Self {
        Self::with_machine(Machine::local(), 1, ExecMode::Sequential)
    }

    /// Executor over `nodes` nodes of `machine` (total ranks =
    /// `nodes × machine.procs_per_node`) in the given in-process mode.
    pub fn with_machine(machine: Machine, nodes: usize, mode: ExecMode) -> Self {
        Self::with_backend(machine, nodes, Backend::InProcess(mode))
            .expect("in-process backend construction is infallible")
    }

    /// Executor over `nodes` simulated nodes of `machine`, running on the
    /// given [`Backend`]. Spawning the multi-process backend can fail
    /// (worker binary missing, socket errors).
    pub fn with_backend(machine: Machine, nodes: usize, backend: Backend) -> Result<Self> {
        let nodes = nodes.max(1);
        let ranks = nodes * machine.procs_per_node.max(1);
        let tracker = Arc::new(Mutex::new(CostTracker::new(machine.clone(), ranks)));
        let (mode, pool, cluster) = match &backend {
            Backend::InProcess(ExecMode::Sequential) => (ExecMode::Sequential, None, None),
            Backend::InProcess(ExecMode::Threaded) => (
                ExecMode::Threaded,
                Some(Arc::new(ThreadPool::default_size())),
                None,
            ),
            #[cfg(unix)]
            Backend::MultiProcess { workers, spawn } => {
                let mut cl = Cluster::multi_process(*workers, spawn)?;
                cl.attach_tracker(Arc::clone(&tracker));
                (ExecMode::Sequential, None, Some(Mutex::new(cl)))
            }
            #[cfg(not(unix))]
            Backend::MultiProcess { .. } => {
                return Err(Error::Runtime(
                    "the multi-process backend requires a unix platform".into(),
                ))
            }
        };
        Ok(Self {
            machine,
            nodes,
            ranks,
            mode,
            backend,
            tracker,
            pool,
            cluster,
            residency: Mutex::new(Residency::default()),
            next_result: Mutex::new(1 << 48),
            chain_cursor: Mutex::new(0),
            retention: Mutex::new(Retention::default()),
        })
    }

    /// Convenience: executor over the multi-process shared-nothing
    /// backend with `workers` real worker processes.
    pub fn multi_process(
        machine: Machine,
        nodes: usize,
        workers: usize,
        spawn: SpawnSpec,
    ) -> Result<Self> {
        Self::with_backend(machine, nodes, Backend::MultiProcess { workers, spawn })
    }

    /// Multi-process executor with explicit [`ProcOptions`] — detection
    /// deadline, respawn budget and the [`FaultPlan`] injection layer
    /// (both types re-exported at the crate root).
    ///
    /// [`ProcOptions`]: crate::ProcOptions
    /// [`FaultPlan`]: crate::FaultPlan
    #[cfg(unix)]
    pub fn multi_process_opts(
        machine: Machine,
        nodes: usize,
        workers: usize,
        spawn: SpawnSpec,
        opts: crate::ProcOptions,
    ) -> Result<Self> {
        let nodes = nodes.max(1);
        let ranks = nodes * machine.procs_per_node.max(1);
        let tracker = Arc::new(Mutex::new(CostTracker::new(machine.clone(), ranks)));
        let mut cl = Cluster::multi_process_with(workers, &spawn, opts)?;
        cl.attach_tracker(Arc::clone(&tracker));
        Ok(Self {
            machine,
            nodes,
            ranks,
            mode: ExecMode::Sequential,
            backend: Backend::MultiProcess { workers, spawn },
            tracker,
            pool: None,
            cluster: Some(Mutex::new(cl)),
            residency: Mutex::new(Residency::default()),
            next_result: Mutex::new(1 << 48),
            chain_cursor: Mutex::new(0),
            retention: Mutex::new(Retention::default()),
        })
    }

    /// The machine model being simulated.
    pub fn machine(&self) -> &Machine {
        &self.machine
    }

    /// Simulated node count.
    pub fn nodes(&self) -> usize {
        self.nodes
    }

    /// Total simulated ranks.
    pub fn ranks(&self) -> usize {
        self.ranks
    }

    /// Execution mode.
    pub fn mode(&self) -> ExecMode {
        self.mode
    }

    /// The backend this executor runs on.
    pub fn backend(&self) -> &Backend {
        &self.backend
    }

    /// Run `f` with the multi-process cluster handle, when this executor
    /// has one (e.g. to drive [`crate::DistMatrix::summa_on`] or
    /// [`crate::tsqr_on`] over the same worker set).
    pub fn with_cluster<R>(&self, f: impl FnOnce(&mut Cluster) -> R) -> Option<R> {
        self.cluster.as_ref().map(|cl| f(&mut cl.lock()))
    }

    /// The driver-side residency registry (for sibling modules that
    /// manage resident buffers through the same lifecycle).
    pub(crate) fn residency(&self) -> &Mutex<Residency> {
        &self.residency
    }

    /// The shared cost tracker.
    pub fn tracker(&self) -> &Arc<Mutex<CostTracker>> {
        &self.tracker
    }

    /// A communicator over this executor's ranks charging into its tracker.
    pub fn comm(&self) -> Comm {
        Comm::new(self.ranks, self.mode, Arc::clone(&self.tracker))
    }

    /// Flops executed through this executor since the last reset.
    pub fn total_flops(&self) -> u64 {
        self.tracker.lock().flops
    }

    /// BSP supersteps on the critical path since the last reset.
    pub fn supersteps(&self) -> u64 {
        self.tracker.lock().supersteps
    }

    /// Simulated time breakdown since the last reset.
    pub fn sim_time(&self) -> SimTime {
        self.tracker.lock().sim
    }

    /// Operand bytes the driver actually shipped to workers since the
    /// last reset (multi-process data plane; zero in-process).
    pub fn operand_bytes(&self) -> u64 {
        self.tracker.lock().bytes_operands
    }

    /// Result bytes workers actually returned since the last reset.
    pub fn result_bytes(&self) -> u64 {
        self.tracker.lock().bytes_results
    }

    /// Bytes moved only because of fault recovery (journal replay and
    /// re-issued in-flight requests) since the last reset. Zero on a
    /// fault-free run; `operand_bytes`/`result_bytes` stay equal to the
    /// fault-free run regardless.
    pub fn recovery_bytes(&self) -> u64 {
        self.tracker.lock().bytes_recovery
    }

    /// Zero all cost counters.
    pub fn reset_costs(&self) {
        self.tracker.lock().reset();
    }

    fn pool(&self) -> Option<&ThreadPool> {
        self.pool.as_deref()
    }

    // -- resident-operand lifecycle --------------------------------------

    /// Upload a dense `f64` tensor, returning a content-keyed handle.
    /// Residency is lazy: buffers derived from the handle are pinned on
    /// the workers by the first contraction that needs them. Each upload
    /// must be matched by one [`Executor::free`].
    pub fn upload(&self, t: &DenseTensor<f64>) -> OpHandle {
        self.upload_shared(&Arc::new(t.clone()))
    }

    /// Upload an `Arc`-shared dense `f64` tensor without cloning its
    /// storage — the handle shares the caller's allocation (only the
    /// content hash is computed). This is what lets `tt-blocks`' transient
    /// per-block uploads and chain-step enqueues stop paying a full clone
    /// per block.
    pub fn upload_shared(&self, t: &Arc<DenseTensor<f64>>) -> OpHandle {
        let h = OpHandle::new(Payload::F64(Arc::clone(t)));
        self.finish_upload(&h);
        h
    }

    /// Upload a dense [`Complex64`] tensor.
    pub fn upload_c64(&self, t: &DenseTensor<Complex64>) -> OpHandle {
        let h = OpHandle::new(Payload::C64(Arc::new(t.clone())));
        self.finish_upload(&h);
        h
    }

    /// Upload a flattened sparse `f64` tensor.
    pub fn upload_sparse(&self, t: &SparseTensor<f64>) -> OpHandle {
        let h = OpHandle::new(Payload::Sparse(Arc::new(t.clone())));
        self.finish_upload(&h);
        h
    }

    /// Common upload tail: register the refcount, account the retained
    /// words to the current job scope (if any), and note the content in
    /// the cross-job retention cache.
    fn finish_upload(&self, h: &OpHandle) {
        self.residency.lock().retain(h.key());
        cost::scope_retain(h.key());
        cost::scope_account(h.words() as i64);
        self.note_retention(h);
    }

    /// A fresh driver-issued key for a resident contraction result.
    fn fresh_result_key(&self) -> u64 {
        let mut k = self.next_result.lock();
        let key = *k;
        *k += 1;
        key
    }

    /// Release one upload of `h`. When the last upload of the same
    /// content is freed, every worker buffer derived from the handle is
    /// dropped outright: the driver forgets the buffer homes on the last
    /// free, so the copies could never be referenced again — keeping
    /// them merely evictable would let unreachable garbage linger up to
    /// the LRU cap.
    pub fn free(&self, h: &OpHandle) -> Result<()> {
        cost::scope_release(h.key());
        cost::scope_account(-(h.words() as i64));
        self.release_key(h.key())
    }

    /// Drop one refcount of a resident content key, issuing worker-side
    /// frees if it was the last. The cluster lock is taken *before* the
    /// registry release and held across the `Free` requests, so a
    /// concurrent job re-uploading the same content cannot interleave
    /// between the registry drop and the worker-side frees (which would
    /// delete the other job's live buffers).
    fn release_key(&self, key: u64) -> Result<()> {
        match &self.cluster {
            Some(cl) => {
                let mut cl = cl.lock();
                if let Some(left) = self.residency.lock().release(key)? {
                    let reqs: Vec<(usize, Request)> = left
                        .physical
                        .iter()
                        .flat_map(|(wkey, ranks)| {
                            ranks
                                .iter()
                                .map(move |&r| (r, Request::Free { key: *wkey }))
                        })
                        .collect();
                    if !reqs.is_empty() {
                        cl.call_all(reqs)?;
                    }
                }
            }
            None => {
                self.residency.lock().release(key)?;
            }
        }
        Ok(())
    }

    /// Byte budget for the cross-job **retention cache**: an executor-held
    /// LRU of recently-uploaded contents, each pinned with one extra
    /// registry refcount so its worker-side buffers outlive the
    /// uploader's `free`. A later upload of identical content (same
    /// content key — e.g. a second tenant solving the same Hamiltonian)
    /// then finds every derived buffer already resident and ships zero
    /// operand bytes. `0` (the default) disables retention; shrinking the
    /// budget evicts oldest-first through the normal free path. Size it
    /// below the worker LRU cap ([`Executor::set_worker_cache_cap`]) —
    /// retained buffers are pinned and the worker LRU cannot evict them.
    pub fn set_retention_cap(&self, bytes: u64) -> Result<()> {
        let evict: Vec<u64> = {
            let mut r = self.retention.lock();
            r.cap_bytes = bytes;
            r.evict_over_cap()
        };
        for key in evict {
            self.release_key(key)?;
        }
        Ok(())
    }

    /// Record an uploaded content in the retention cache (refresh on
    /// re-upload), evicting oldest entries beyond the byte budget.
    /// Returns whether the cache holds the content afterwards.
    fn note_retention(&self, h: &OpHandle) -> bool {
        let evict: Vec<u64> = {
            let mut r = self.retention.lock();
            if r.cap_bytes == 0 {
                return false;
            }
            let bytes = 8 * h.words() as u64;
            if let Some(pos) = r.held.iter().position(|&(k, _)| k == h.key()) {
                let entry = r.held.remove(pos);
                r.held.push(entry);
            } else if bytes <= r.cap_bytes {
                self.residency.lock().retain(h.key());
                r.held.push((h.key(), bytes));
                r.bytes += bytes;
            } else {
                return false;
            }
            r.evict_over_cap()
        };
        for key in evict {
            // Best-effort: eviction failure must not fail the upload.
            let _ = self.release_key(key);
        }
        true
    }

    /// Whether the cross-job retention cache is active (real cluster,
    /// nonzero byte budget) — the gate for value-operand auto-residency.
    fn retention_enabled(&self) -> bool {
        self.cluster.is_some() && self.retention.lock().cap_bytes > 0
    }

    /// Content-key a *value* operand through the retention cache so its
    /// worker-side buffers persist and dedup across calls (and jobs)
    /// exactly like uploaded handles. Purely physical: the caller must
    /// keep charging the logical cost model on the value path. Returns
    /// `None` (ship inline, as without retention) when the cache is off
    /// or the tensor exceeds its budget. The returned handle carries one
    /// registry refcount guarding the contraction in flight; pass it to
    /// [`Executor::finish_auto`] when the requests have been answered.
    fn auto_handle<T: WireScalar>(&self, op: &DenseOpT<T>, t: &DenseTensor<T>) -> Option<OpHandle> {
        if op.handle().is_some() || !self.retention_enabled() {
            return None;
        }
        let h = OpHandle::new(T::payload(t));
        self.residency.lock().retain(h.key());
        if self.note_retention(&h) {
            Some(h)
        } else {
            let _ = self.release_key(h.key());
            None
        }
    }

    /// Drop an auto-residency guard taken by [`Executor::auto_handle`]:
    /// the retention cache keeps its own pin, so the content stays
    /// resident until evicted.
    fn finish_auto(&self, h: Option<OpHandle>) {
        if let Some(h) = h {
            let _ = self.release_key(h.key());
        }
    }

    /// Set the worker-side resident-store LRU byte cap on every rank
    /// (multi-process backend only; a no-op in-process).
    pub fn set_worker_cache_cap(&self, bytes: u64) -> Result<()> {
        if let Some(cl) = &self.cluster {
            let mut cl = cl.lock();
            let reqs = (0..cl.ranks())
                .map(|r| (r, Request::SetCacheCap { bytes }))
                .collect();
            cl.call_all(reqs)?;
        }
        Ok(())
    }

    /// Worker resident-store footprint as `(bytes, entries, pinned)` per
    /// rank (empty in-process). Compatibility shim over
    /// [`Executor::cache_stats`].
    pub fn worker_cache_stats(&self) -> Result<Vec<(u64, u64, u64)>> {
        Ok(self
            .cache_stats()?
            .into_iter()
            .map(|s| (s.bytes, s.entries, s.pinned))
            .collect())
    }

    /// Per-rank resident-store cache counters (empty in-process): the
    /// footprint plus the lifetime hit/miss/eviction counts the solve
    /// service reports as fleet-wide residency stats.
    pub fn cache_stats(&self) -> Result<Vec<RankCacheStats>> {
        let Some(cl) = &self.cluster else {
            return Ok(Vec::new());
        };
        let mut cl = cl.lock();
        let reqs = (0..cl.ranks()).map(|r| (r, Request::CacheStats)).collect();
        cl.call_all(reqs)?
            .into_iter()
            .map(|rep| match rep {
                Reply::Stats {
                    bytes,
                    entries,
                    pinned,
                    pinned_bytes,
                    hits,
                    misses,
                    evictions,
                } => Ok(RankCacheStats {
                    bytes,
                    entries,
                    pinned,
                    pinned_bytes,
                    hits,
                    misses,
                    evictions,
                }),
                other => Err(Error::transport(format!("expected stats, got {other:?}"))),
            })
            .collect()
    }

    /// Resolve a handle operand's charge state: the first observation of
    /// `lkey` in a resident period is a [`OpCharge::Miss`], later ones are
    /// hits. Value operands charge in full.
    fn op_state(&self, handle: Option<&OpHandle>, lkey: u64, words: usize) -> OpCharge {
        match handle {
            None => OpCharge::Value(words),
            Some(h) => {
                if self.observe_logical(h.key(), lkey) {
                    OpCharge::Miss(words)
                } else {
                    OpCharge::Hit
                }
            }
        }
    }

    /// First-sighting test for a logical operand key. With a per-job
    /// [`cost::JobScope`] on this thread, the *job's* charge book decides
    /// (so a multi-tenant job's miss/hit sequence reads as if it ran
    /// alone), while the executor-wide book is still updated for
    /// release-time cleanup; without a scope, the executor-wide book
    /// decides as before.
    fn observe_logical(&self, content: u64, lkey: u64) -> bool {
        let shared = self.residency.lock().observe(content, lkey);
        match cost::scope_observe(content, lkey) {
            Some(first) => first,
            None => shared,
        }
    }

    /// Charge compute + imbalance + transpose + SUMMA communication for a
    /// contraction whose operands participate as `a`/`b` (value words,
    /// one-time resident upload, or cache hit) with `words_c` stored
    /// result words over an `m × n` fused output grid, executing `flops`
    /// flops. `sparse` selects the sparse roofline and time bucket.
    ///
    /// Value-only charges are bit-identical to the historical formula;
    /// resident operands drop their packing traffic and SUMMA β share
    /// (cache hit ⇒ no β), with a one-time full-volume upload superstep
    /// on first use. The fused scatter+compute superstep costs one α
    /// regardless.
    #[allow(clippy::too_many_arguments)]
    fn charge_contraction(
        &self,
        a: OpCharge,
        b: OpCharge,
        words_c: usize,
        m: usize,
        n: usize,
        flops: u64,
        sparse: bool,
    ) {
        let p = self.ranks as f64;
        let n_eff = ((flops.max(2) as f64) / 2.0).cbrt();
        let n_loc = (n_eff / p.sqrt()).max(1.0);
        let rate = if sparse {
            self.machine.sparse_rate(n_loc)
        } else {
            self.machine.dense_rate(n_loc)
        };
        let t_compute = flops as f64 / (rate * p);

        cost::charge(&self.tracker, |tr| {
            if self.ranks > 1 {
                // one-time resident-operand uploads: one superstep each,
                // moving the operand's full stored volume
                for op in [a, b] {
                    if let OpCharge::Miss(w) = op {
                        tr.charge_superstep(8 * w as u64);
                    }
                }
            }
            tr.flops += flops;
            if sparse {
                tr.sim.sparse += t_compute;
            } else {
                tr.sim.gemm += t_compute;
            }

            // TTGT packing: locally-handled operands + result through memory
            // twice (resident reuse skips the pack).
            let moved_bytes = 8.0 * 2.0 * (a.local_words() + b.local_words() + words_c) as f64;
            tr.sim.transpose += moved_bytes / (self.machine.rank_mem_bw() * p);
            tr.sim.other += MAP_OVERHEAD_S;

            if self.ranks > 1 {
                // Tile imbalance on the process grid.
                let (pr, pc) = process_grid(self.ranks);
                let lambda = (m.div_ceil(pr) * pr) as f64 / m.max(1) as f64
                    * ((n.div_ceil(pc) * pc) as f64 / n.max(1) as f64)
                    - 1.0;
                tr.sim.imbalance += t_compute * lambda.max(0.0);

                // SUMMA: value operand panels travel √p-reduced, resident
                // operands move nothing, the result is reduced once — all in
                // the one fused scatter+compute superstep.
                let words = ((a.beta_words() + b.beta_words()) as f64 / p.sqrt()
                    + words_c as f64 / p) as u64;
                tr.charge_superstep(8 * words);
            }
        });
    }

    /// Distributed dense × dense contraction (einsum grammar).
    pub fn contract(
        &self,
        spec: &str,
        a: &DenseTensor<f64>,
        b: &DenseTensor<f64>,
    ) -> Result<DenseTensor<f64>> {
        self.contract_h(spec, a.into(), b.into())
    }

    /// Dense × dense contraction with value-or-handle operands. Results
    /// are bitwise-identical to [`Executor::contract`] on every backend.
    pub fn contract_h(&self, spec: &str, a: DenseOp, b: DenseOp) -> Result<DenseTensor<f64>> {
        self.contract_dense_t(spec, a, b)
    }

    /// Dense × dense [`Complex64`] contraction with value-or-handle
    /// operands, bitwise-deterministic across backends exactly like the
    /// `f64` path (the wire codec round-trips complex values bit-exactly).
    pub fn contract_c64(
        &self,
        spec: &str,
        a: DenseOpC,
        b: DenseOpC,
    ) -> Result<DenseTensor<Complex64>> {
        self.contract_dense_t(spec, a, b)
    }

    /// The scalar-generic dense contraction driver behind
    /// [`Executor::contract_h`] and [`Executor::contract_c64`]: identical
    /// decomposition, residency derivation and α–β charges for both
    /// scalar types (element words scale by [`WireScalar::WORDS`]).
    fn contract_dense_t<T: WireScalar>(
        &self,
        spec: &str,
        a: DenseOpT<T>,
        b: DenseOpT<T>,
    ) -> Result<DenseTensor<T>> {
        let plan = ContractPlan::parse(spec)?;
        let (at, bt) = (a.tensor()?, b.tensor()?);
        // Value-operand auto-residency: with the retention cache enabled
        // the physical dispatch sees content-keyed handles (payloads ship
        // once fleet-wide, then dedup), while the logical α–β charges
        // below still see the original value operands — simulated cost is
        // unchanged, only the bytes actually shipped shrink.
        let auto_a = self.auto_handle(&a, at);
        let auto_b = self.auto_handle(&b, bt);
        let c = if let Some(cl) = &self.cluster {
            let a_phys = auto_a.as_ref().map(DenseOpT::from).unwrap_or(a);
            let b_phys = auto_b.as_ref().map(DenseOpT::from).unwrap_or(b);
            self.dense_over_cluster(&mut cl.lock(), &plan, &a_phys, &b_phys)?
        } else {
            kernels::dense_contract(&plan, at, bt, self.pool())?
        };
        self.finish_auto(auto_a);
        self.finish_auto(auto_b);
        let (m, k, n) = kernels::fused_dims(&plan, at.dims(), bt.dims());
        let flops = plan.flop_count(at.dims(), bt.dims());
        let (perm_a, perm_b) = operand_perms(&plan);
        // the A-slab contents depend on the kernel path (MC-aligned vs
        // uniform ranges), so the logical charge key tracks it too — a
        // path change is a genuine re-upload, not a cache hit
        let path = gemm_path(k, n);
        let sa = self.op_state(
            a.handle(),
            a.handle()
                .map(|h| derive(&[h.key(), T::TAG_A, hseq(&perm_a), path as u64]))
                .unwrap_or_default(),
            T::WORDS * m * k,
        );
        let sb = self.op_state(
            b.handle(),
            b.handle()
                .map(|h| derive(&[h.key(), T::TAG_B, hseq(&perm_b)]))
                .unwrap_or_default(),
            T::WORDS * k * n,
        );
        self.charge_contraction(sa, sb, T::WORDS * m * n, m, n, flops, false);
        Ok(c)
    }

    /// Dense contraction over the worker processes: the driver permutes
    /// the operands, scatters MC-aligned (packed path) or uniform row
    /// slabs of `A` plus the full `B` to the ranks, and concatenates the
    /// returned row panels in submission order. Handle operands resolve
    /// to resident store keys instead of inline payloads — any upload a
    /// miss requires rides in the same superstep as the chunk tasks. The
    /// decomposition is row-disjoint with an invariant kernel path, so
    /// the result is bitwise-identical to the sequential in-process
    /// kernel. Generic over the scalar type — one driver serves `f64`
    /// and [`Complex64`].
    fn dense_over_cluster<T: WireScalar>(
        &self,
        cl: &mut Cluster,
        plan: &ContractPlan,
        a: &DenseOpT<T>,
        b: &DenseOpT<T>,
    ) -> Result<DenseTensor<T>> {
        let (at, bt) = (a.tensor()?, b.tensor()?);
        plan.output_dims(at.dims(), bt.dims())?; // validates shapes
        let (m, k, n) = kernels::fused_dims(plan, at.dims(), bt.dims());
        let (perm_a, perm_b) = operand_perms(plan);

        let path = gemm_path(k, n);
        let p = cl.ranks();
        let ranges = match path {
            GemmPath::Packed => kernels::mc_aligned_ranges(m, p),
            _ => kernels::row_ranges(m, p),
        };
        let nchunks = ranges.len();
        let mut reqs: Vec<(usize, Request)> = Vec::new();

        // B: replicated permuted matrix, resident for handles
        let b_field = match b.handle() {
            None => T::op_inline(bt.permute(&perm_b)?.into_data()),
            Some(h) => {
                let wkey = derive(&[h.key(), T::TAG_B, hseq(&perm_b)]);
                let mut b_mat: Option<Vec<T>> = None;
                replicate_to_missing(
                    &mut self.residency.lock(),
                    h.key(),
                    wkey,
                    nchunks.min(p),
                    &mut reqs,
                    || {
                        let data = match &b_mat {
                            Some(d) => d.clone(),
                            None => {
                                let d = bt.permute(&perm_b)?.into_data();
                                b_mat = Some(d.clone());
                                d
                            }
                        };
                        Ok(T::upload_req(wkey, data))
                    },
                )?;
                T::op_key(wkey)
            }
        };

        // A: row slabs, one resident buffer per chunk for handles
        let a_fields = slab_fields(
            &mut self.residency.lock(),
            a,
            at,
            &perm_a,
            path,
            &ranges,
            k,
            p,
            &mut reqs,
        )?;

        let n_uploads = reqs.len();
        for (i, &(r0, r1)) in ranges.iter().enumerate() {
            let a_field = match &a_fields {
                AFields::Inline(mat) => T::op_inline(mat[r0 * k..r1 * k].to_vec()),
                AFields::Keys(keys) => T::op_key(keys[i]),
            };
            reqs.push((
                i % p,
                T::chunk_req(path, r1 - r0, k, n, a_field, b_field.clone()),
            ));
        }
        let mut c = Vec::with_capacity(m * n);
        for reply in cl.call_all(reqs)?.into_iter().skip(n_uploads) {
            c.extend_from_slice(&T::expect(reply)?);
        }
        // (worker-side kernel flop counts travel back with every reply —
        // see the counter-delta prefix in transport::process — so the
        // driver's global counter matches the in-process backends)
        let c = DenseTensor::from_vec(kernels::natural_dims(plan, at.dims(), bt.dims()), c)?;
        Ok(c.permute(plan.output_permutation())?)
    }

    // -- result residency: handle-returning contractions and chains ------

    /// Dense × dense contraction that *produces a handle*: the result
    /// stays pinned in the worker store of the rank that computed it and
    /// never returns to the driver. [`Executor::download`] is the only
    /// value-returning exit; [`Executor::free_result`] discards.
    pub fn contract_to_h(&self, spec: &str, a: DenseOp, b: DenseOp) -> Result<ResultHandle> {
        let mut out = self.chain(&[ChainStep {
            spec,
            a: ChainSrc::Dense(a),
            b: ChainSrc::Dense(b),
            acc: None,
        }])?;
        Ok(out.pop().flatten().expect("single non-accumulate step"))
    }

    /// [`Executor::contract_to_h`] for [`Complex64`] operands.
    pub fn contract_c64_to_h(&self, spec: &str, a: DenseOpC, b: DenseOpC) -> Result<ResultHandle> {
        let mut out = self.chain(&[ChainStep {
            spec,
            a: ChainSrc::DenseC(a),
            b: ChainSrc::DenseC(b),
            acc: None,
        }])?;
        Ok(out.pop().flatten().expect("single non-accumulate step"))
    }

    /// Sparse × dense contraction producing a resident handle.
    pub fn contract_sd_to_h(&self, spec: &str, a: SparseOp, b: DenseOp) -> Result<ResultHandle> {
        let mut out = self.chain(&[ChainStep {
            spec,
            a: ChainSrc::Sparse(a),
            b: ChainSrc::Dense(b),
            acc: None,
        }])?;
        Ok(out.pop().flatten().expect("single non-accumulate step"))
    }

    /// Run an ordered list of contraction steps **worker-side**: each step
    /// may consume prior steps' resident outputs ([`ChainSrc::Prev`]) or
    /// the outputs of earlier chains ([`ChainSrc::Res`]), and no
    /// intermediate ever round-trips through the driver. Returns one
    /// [`ResultHandle`] per non-accumulate step (in step order; `None` for
    /// accumulate steps, which fold into their target's handle).
    ///
    /// Placement: a step runs on the rank holding its largest resident
    /// input; when inputs live on different ranks the smaller ones move
    /// in an explicit redistribute superstep (`Download` + re-`Upload`,
    /// metered in the byte counters but — like every p-dependent physical
    /// re-ship — not α–β-charged, so the cost counters stay bitwise-equal
    /// across backends). Steps with no resident input anchor to one
    /// round-robin rank per chain call.
    ///
    /// Numerics are bitwise-identical to running the equivalent
    /// value-returning contractions on any backend: every kernel is the
    /// same row-disjoint code, and accumulate steps add partials in
    /// submission order exactly like the driver-side value path.
    pub fn chain(&self, steps: &[ChainStep]) -> Result<Vec<Option<ResultHandle>>> {
        let planned = self.plan_chain(steps)?;
        let mut locals: Vec<Option<LocalResult>> = (0..steps.len()).map(|_| None).collect();
        let homes = if let Some(cl) = &self.cluster {
            match self.chain_over_cluster(&mut cl.lock(), steps, &planned) {
                Ok(homes) => homes,
                Err(e) => {
                    // a mid-chain failure may have left earlier steps'
                    // results pinned (flushed supersteps execute eagerly)
                    // with no handle to free them through — sweep every
                    // key this chain could have stored, best-effort
                    // (Free of an absent key is a worker no-op)
                    let mut cl = cl.lock();
                    let reqs: Vec<(usize, Request)> = planned
                        .iter()
                        .enumerate()
                        .filter(|&(i, pl)| pl.base == i)
                        .flat_map(|(_, pl)| {
                            (0..cl.ranks()).map(move |r| (r, Request::Free { key: pl.key }))
                        })
                        .collect();
                    let _ = cl.call_all(reqs);
                    return Err(e);
                }
            }
        } else {
            self.chain_local(steps, &planned, &mut locals)?;
            vec![0; steps.len()]
        };
        // charge every step in submission order, from driver-side registry
        // state only — the charge sequence is bitwise-identical on every
        // backend
        for (st, pl) in steps.iter().zip(&planned) {
            let sa = self.chain_charge(&st.a, pl, true)?;
            let sb = self.chain_charge(&st.b, pl, false)?;
            self.charge_contraction(
                sa,
                sb,
                pl.words_c,
                pl.m,
                pl.n,
                pl.flops,
                matches!(pl.kind, StepKind::Sd),
            );
        }
        let mut out = Vec::with_capacity(steps.len());
        let mut res = self.residency.lock();
        for (i, pl) in planned.iter().enumerate() {
            if pl.base != i {
                out.push(None);
                continue;
            }
            let produced_by = derive(&[
                hash_spec(steps[i].spec),
                src_provenance(&steps[i].a, &planned),
                src_provenance(&steps[i].b, &planned),
            ]);
            res.record_result(
                pl.key,
                ResultInfo {
                    home: homes[i],
                    words: pl.words_c,
                    produced_by,
                },
            );
            out.push(Some(ResultHandle {
                key: pl.key,
                dims: pl.out_dims.clone(),
                kind: pl.result_kind(),
                words: pl.words_c,
                local: locals[i].take(),
            }));
        }
        Ok(out)
    }

    /// Validate a chain and compute every step's static plan (kind, dims,
    /// fused sizes, flops, output slot and store key).
    fn plan_chain(&self, steps: &[ChainStep]) -> Result<Vec<PlannedStep>> {
        let mut planned: Vec<PlannedStep> = Vec::with_capacity(steps.len());
        for (i, st) in steps.iter().enumerate() {
            let (a_dims, ak) = src_info(&st.a, &planned)?;
            let (b_dims, bk) = src_info(&st.b, &planned)?;
            let kind = match (ak, bk) {
                (SrcKind::Sparse, SrcKind::F64) => StepKind::Sd,
                (SrcKind::Sparse, _) | (_, SrcKind::Sparse) => {
                    return Err(Error::Runtime(
                        "only sparse × dense chain steps are supported (sparse operand first)"
                            .into(),
                    ))
                }
                (SrcKind::C64, SrcKind::C64) => StepKind::DenseC,
                (SrcKind::F64, SrcKind::F64) => StepKind::Dense,
                _ => {
                    return Err(Error::Runtime(
                        "chain step mixes f64 and Complex64 operands".into(),
                    ))
                }
            };
            let plan = ContractPlan::parse(st.spec)?;
            let out_dims = plan.output_dims(&a_dims, &b_dims)?;
            let (m, k, n) = kernels::fused_dims(&plan, &a_dims, &b_dims);
            let flops = match (&kind, &st.a) {
                (StepKind::Sd, ChainSrc::Sparse(op)) => 2 * op.tensor()?.nnz() as u64 * n as u64,
                _ => plan.flop_count(&a_dims, &b_dims),
            };
            let words_el = if matches!(kind, StepKind::DenseC) {
                2
            } else {
                1
            };
            let words_c = words_el * out_dims.iter().product::<usize>();
            let (base, key) = match st.acc {
                None => (i, self.fresh_result_key()),
                Some(t) => {
                    let tgt = planned.get(t).ok_or_else(|| {
                        Error::Runtime(format!("step {i} accumulates into future step {t}"))
                    })?;
                    if tgt.base != t {
                        return Err(Error::Runtime(format!(
                            "step {i} accumulates into step {t}, itself an accumulate step"
                        )));
                    }
                    if !matches!(kind, StepKind::Dense | StepKind::DenseC) {
                        return Err(Error::Runtime(
                            "accumulate is only supported for dense chain steps".into(),
                        ));
                    }
                    if tgt.out_dims != out_dims || tgt.result_kind() != result_kind_of(&kind) {
                        return Err(Error::Runtime(format!(
                            "step {i} accumulate target has mismatched shape or kind"
                        )));
                    }
                    (t, tgt.key)
                }
            };
            planned.push(PlannedStep {
                kind,
                plan,
                a_dims,
                b_dims,
                out_dims,
                m,
                k,
                n,
                flops,
                words_c,
                base,
                key,
            });
        }
        Ok(planned)
    }

    /// The cluster leg of [`Executor::chain`]: place each step, move
    /// misplaced resident inputs (redistribute supersteps), and ship the
    /// fused chain superstep(s). Returns the home rank per step.
    fn chain_over_cluster(
        &self,
        cl: &mut Cluster,
        steps: &[ChainStep],
        planned: &[PlannedStep],
    ) -> Result<Vec<usize>> {
        let p = cl.ranks();
        let mut placement = Placement::new(p);
        let anchor = {
            let mut cur = self.chain_cursor.lock();
            let a = *cur % p.max(1);
            *cur = cur.wrapping_add(1);
            a
        };
        let mut homes: Vec<usize> = vec![0; steps.len()];
        let mut pending: Vec<(usize, Request)> = Vec::new();
        for (i, (st, pl)) in steps.iter().zip(planned).enumerate() {
            let rank = if pl.base != i {
                homes[pl.base]
            } else {
                let mut weighted: Vec<(usize, u64)> = Vec::new();
                {
                    let res = self.residency.lock();
                    for src in [&st.a, &st.b] {
                        collect_weights(src, pl, &res, &homes, planned, &mut weighted);
                    }
                }
                placement.place_weighted(weighted, Some(anchor))
            };
            homes[i] = rank;
            let a_field =
                self.wire_input(cl, rank, &st.a, pl, &mut homes, planned, &mut pending)?;
            let b_field =
                self.wire_input(cl, rank, &st.b, pl, &mut homes, planned, &mut pending)?;
            let req = match pl.kind {
                StepKind::Dense => Request::ChainDense {
                    spec: st.spec.to_string(),
                    a_dims: pl.a_dims.clone(),
                    a: a_field.f64()?,
                    b_dims: pl.b_dims.clone(),
                    b: b_field.f64()?,
                    store: pl.key,
                    acc: pl.base != i,
                },
                StepKind::DenseC => Request::ChainDenseC64 {
                    spec: st.spec.to_string(),
                    a_dims: pl.a_dims.clone(),
                    a: a_field.c64()?,
                    b_dims: pl.b_dims.clone(),
                    b: b_field.c64()?,
                    store: pl.key,
                    acc: pl.base != i,
                },
                StepKind::Sd => Request::ChainSd {
                    a: a_field.coords()?,
                    m: pl.m,
                    n: pl.n,
                    b_dims: pl.b_dims.clone(),
                    perm_b: operand_perms(&pl.plan).1,
                    b: b_field.f64()?,
                    nat_dims: kernels::natural_dims(&pl.plan, &pl.a_dims, &pl.b_dims),
                    out_perm: pl.plan.output_permutation().to_vec(),
                    store: pl.key,
                },
            };
            pending.push((rank, req));
        }
        if !pending.is_empty() {
            cl.call_all(pending)?;
        }
        Ok(homes)
    }

    /// Resolve one chain-step operand to its wire form on `rank`,
    /// uploading missing resident operands and moving misplaced resident
    /// results (the explicit redistribute superstep).
    #[allow(clippy::too_many_arguments)]
    fn wire_input(
        &self,
        cl: &mut Cluster,
        rank: usize,
        src: &ChainSrc,
        pl: &PlannedStep,
        homes: &mut [usize],
        planned: &[PlannedStep],
        pending: &mut Vec<(usize, Request)>,
    ) -> Result<WireIn> {
        Ok(match src {
            ChainSrc::Dense(DenseOpT::Value(t)) => WireIn::F(OpF::Inline(t.data().to_vec())),
            ChainSrc::Dense(DenseOpT::Handle(h)) => {
                let wkey = derive(&[h.key(), TAG_WHOLE]);
                if self.residency.lock().add_home(h.key(), wkey, rank) {
                    pending.push((
                        rank,
                        Request::Upload {
                            key: wkey,
                            data: h.dense()?.data().to_vec(),
                        },
                    ));
                }
                WireIn::F(OpF::Key(wkey))
            }
            ChainSrc::DenseC(DenseOpT::Value(t)) => WireIn::C(OpC::Inline(t.data().to_vec())),
            ChainSrc::DenseC(DenseOpT::Handle(h)) => {
                let wkey = derive(&[h.key(), TAG_WHOLE]);
                if self.residency.lock().add_home(h.key(), wkey, rank) {
                    pending.push((
                        rank,
                        Request::UploadC64 {
                            key: wkey,
                            data: h.dense_c64()?.data().to_vec(),
                        },
                    ));
                }
                WireIn::C(OpC::Key(wkey))
            }
            ChainSrc::Sparse(op) => {
                let at = op.tensor()?;
                match op.handle() {
                    None => {
                        let coords = kernels::sparse_coords(
                            at,
                            pl.plan.free_a_positions(),
                            pl.plan.ctr_a_positions(),
                        );
                        let (rows, cols, vals) = split_coords(coords);
                        WireIn::Coords(OpCoords::Inline { rows, cols, vals })
                    }
                    Some(h) => {
                        let wkey = sd_whole_key(h, &pl.plan, pl.n);
                        if self.residency.lock().add_home(h.key(), wkey, rank) {
                            let coords = kernels::sparse_coords(
                                at,
                                pl.plan.free_a_positions(),
                                pl.plan.ctr_a_positions(),
                            );
                            let (rows, cols, vals) = split_coords(coords);
                            pending.push((
                                rank,
                                Request::UploadCoords {
                                    key: wkey,
                                    rows,
                                    cols,
                                    vals,
                                },
                            ));
                        }
                        WireIn::Coords(OpCoords::Key(wkey))
                    }
                }
            }
            ChainSrc::Prev(j) => {
                let key = planned[*j].key;
                if homes[*j] != rank {
                    self.chain_move(cl, key, homes[*j], rank, planned[*j].result_kind(), pending)?;
                    homes[*j] = rank;
                }
                match planned[*j].result_kind() {
                    ResultKind::F64 => WireIn::F(OpF::Key(key)),
                    ResultKind::C64 => WireIn::C(OpC::Key(key)),
                }
            }
            ChainSrc::Res(h) => {
                let info = self.residency.lock().result(h.key).ok_or_else(|| {
                    Error::Runtime(format!("unknown or already-consumed result {h:?}"))
                })?;
                if info.home != rank {
                    self.chain_move(cl, h.key, info.home, rank, h.kind, pending)?;
                    self.residency.lock().move_result(h.key, rank);
                }
                match h.kind {
                    ResultKind::F64 => WireIn::F(OpF::Key(h.key)),
                    ResultKind::C64 => WireIn::C(OpC::Key(h.key)),
                }
            }
        })
    }

    /// Move a resident result from `from` to `to`: flush any pending
    /// superstep (whose tasks could produce or reference the buffer —
    /// conservative, but moves are rare on anchored chains), download the
    /// buffer off its old home, and re-upload (pinned) on the new one.
    /// This is the explicit redistribute superstep of the chain protocol
    /// — metered, never α–β-charged.
    fn chain_move(
        &self,
        cl: &mut Cluster,
        key: u64,
        from: usize,
        to: usize,
        kind: ResultKind,
        pending: &mut Vec<(usize, Request)>,
    ) -> Result<()> {
        if !pending.is_empty() {
            cl.call_all(std::mem::take(pending))?;
        }
        let reply = cl.call(from, &Request::Download { key })?;
        match (kind, reply) {
            (ResultKind::F64, Reply::F64s(data)) => {
                pending.push((to, Request::Upload { key, data }))
            }
            (ResultKind::C64, Reply::C64s(data)) => {
                pending.push((to, Request::UploadC64 { key, data }))
            }
            (_, other) => {
                return Err(Error::transport(format!(
                    "redistribute of {key:#x} returned {other:?}"
                )))
            }
        }
        Ok(())
    }

    /// The in-process leg of [`Executor::chain`]: run every step locally
    /// with the exact same kernels as the value paths, accumulating
    /// partials in submission order.
    fn chain_local(
        &self,
        steps: &[ChainStep],
        planned: &[PlannedStep],
        outs: &mut [Option<LocalResult>],
    ) -> Result<()> {
        for (i, (st, pl)) in steps.iter().zip(planned).enumerate() {
            enum Partial {
                F(DenseTensor<f64>),
                C(DenseTensor<Complex64>),
            }
            let partial = match pl.kind {
                StepKind::Dense => {
                    let ta = resolve_local_f64(&st.a, outs)?;
                    let tb = resolve_local_f64(&st.b, outs)?;
                    Partial::F(kernels::dense_contract(&pl.plan, ta, tb, self.pool())?)
                }
                StepKind::DenseC => {
                    let ta = resolve_local_c64(&st.a, outs)?;
                    let tb = resolve_local_c64(&st.b, outs)?;
                    Partial::C(kernels::dense_contract(&pl.plan, ta, tb, self.pool())?)
                }
                StepKind::Sd => {
                    let ChainSrc::Sparse(op) = &st.a else {
                        unreachable!("validated by plan_chain");
                    };
                    let tb = resolve_local_f64(&st.b, outs)?;
                    let (c, _flops) = kernels::sd_contract(
                        &pl.plan,
                        op.tensor()?,
                        tb,
                        self.pool(),
                        kernels::SPARSE_PAR_MIN_FLOPS,
                    )?;
                    Partial::F(c)
                }
            };
            if pl.base == i {
                outs[i] = Some(match partial {
                    Partial::F(c) => LocalResult::F64(Arc::new(c)),
                    Partial::C(c) => LocalResult::C64(Arc::new(c)),
                });
            } else {
                match (partial, &mut outs[pl.base]) {
                    (Partial::F(c), Some(LocalResult::F64(acc))) => {
                        Arc::make_mut(acc).axpy(1.0, &c)?
                    }
                    (Partial::C(c), Some(LocalResult::C64(acc))) => {
                        Arc::make_mut(acc).axpy(Complex64::new(1.0, 0.0), &c)?
                    }
                    _ => {
                        return Err(Error::Runtime(
                            "accumulate target missing or mismatched".into(),
                        ))
                    }
                }
            }
        }
        Ok(())
    }

    /// The α–β charge state of one chain-step operand: value operands
    /// charge in full, resident operands follow the one-time-upload /
    /// cache-hit discipline (whole-tensor buffers — chains run whole
    /// contractions), and resident results are always hits (they were
    /// produced in place and never move on the charged path).
    fn chain_charge(&self, src: &ChainSrc, pl: &PlannedStep, is_a: bool) -> Result<OpCharge> {
        let elems = if is_a { pl.m * pl.k } else { pl.k * pl.n };
        let words_el = if matches!(pl.kind, StepKind::DenseC) {
            2
        } else {
            1
        };
        Ok(match src {
            ChainSrc::Dense(op) => self.op_state(
                op.handle(),
                op.handle()
                    .map(|h| derive(&[h.key(), TAG_WHOLE]))
                    .unwrap_or_default(),
                words_el * elems,
            ),
            ChainSrc::DenseC(op) => self.op_state(
                op.handle(),
                op.handle()
                    .map(|h| derive(&[h.key(), TAG_WHOLE]))
                    .unwrap_or_default(),
                words_el * elems,
            ),
            ChainSrc::Sparse(op) => {
                let words = 2 * op.tensor()?.nnz();
                self.op_state(
                    op.handle(),
                    op.handle()
                        .map(|h| {
                            derive(&[
                                h.key(),
                                TAG_SD_A,
                                hseq(pl.plan.free_a_positions()),
                                hseq(pl.plan.ctr_a_positions()),
                                pl.n as u64,
                            ])
                        })
                        .unwrap_or_default(),
                    words,
                )
            }
            ChainSrc::Prev(_) | ChainSrc::Res(_) => OpCharge::Hit,
        })
    }

    /// Download a resident `f64` result — the only value-returning exit
    /// of a chain. Consumes the handle: the buffer leaves (unpins from)
    /// its home rank's store and the driver forgets it.
    pub fn download(&self, h: ResultHandle) -> Result<DenseTensor<f64>> {
        Ok(self
            .download_many(vec![h])?
            .pop()
            .expect("one handle in, one tensor out"))
    }

    /// Download many resident `f64` results in one superstep.
    pub fn download_many(&self, hs: Vec<ResultHandle>) -> Result<Vec<DenseTensor<f64>>> {
        if let Some(h) = hs.iter().find(|h| h.kind != ResultKind::F64) {
            return Err(Error::Runtime(format!("f64 download of {h:?}")));
        }
        if let Some(cl) = &self.cluster {
            let reqs = {
                let res = self.residency.lock();
                hs.iter()
                    .map(|h| {
                        let info = res.result(h.key).ok_or_else(|| {
                            Error::Runtime(format!("unknown or already-consumed result {h:?}"))
                        })?;
                        Ok((info.home, Request::Download { key: h.key }))
                    })
                    .collect::<Result<Vec<_>>>()?
            };
            let replies = cl.lock().call_all(reqs)?;
            let mut res = self.residency.lock();
            let mut out = Vec::with_capacity(hs.len());
            for (h, reply) in hs.iter().zip(replies) {
                res.forget_result(h.key);
                out.push(DenseTensor::from_vec(h.dims.clone(), expect_f64s(reply)?)?);
            }
            Ok(out)
        } else {
            let mut res = self.residency.lock();
            hs.into_iter()
                .map(|mut h| {
                    res.forget_result(h.key);
                    match h.local.take() {
                        Some(LocalResult::F64(t)) => {
                            Ok(Arc::try_unwrap(t).unwrap_or_else(|a| (*a).clone()))
                        }
                        _ => Err(Error::Runtime(
                            "result handle has no in-process payload".into(),
                        )),
                    }
                })
                .collect()
        }
    }

    /// Download a resident [`Complex64`] result (consuming the handle).
    pub fn download_c64(&self, mut h: ResultHandle) -> Result<DenseTensor<Complex64>> {
        if h.kind != ResultKind::C64 {
            return Err(Error::Runtime(format!("Complex64 download of {h:?}")));
        }
        if let Some(cl) = &self.cluster {
            let info = self.residency.lock().result(h.key).ok_or_else(|| {
                Error::Runtime(format!("unknown or already-consumed result {h:?}"))
            })?;
            let reply = cl
                .lock()
                .call(info.home, &Request::Download { key: h.key })?;
            self.residency.lock().forget_result(h.key);
            match reply {
                Reply::C64s(v) => Ok(DenseTensor::from_vec(h.dims.clone(), v)?),
                other => Err(Error::transport(format!(
                    "expected Complex64 payload, got {other:?}"
                ))),
            }
        } else {
            self.residency.lock().forget_result(h.key);
            match h.local.take() {
                Some(LocalResult::C64(t)) => {
                    Ok(Arc::try_unwrap(t).unwrap_or_else(|a| (*a).clone()))
                }
                _ => Err(Error::Runtime(
                    "result handle has no in-process payload".into(),
                )),
            }
        }
    }

    /// The provenance key of a resident result — a hash of the producing
    /// step (spec + input keys), recorded in the driver's residency book.
    /// `None` once the result has been downloaded or freed.
    pub fn result_provenance(&self, h: &ResultHandle) -> Option<u64> {
        self.residency.lock().result(h.key).map(|i| i.produced_by)
    }

    /// Discard a resident result without downloading it.
    pub fn free_result(&self, h: ResultHandle) -> Result<()> {
        self.free_results(vec![h])
    }

    /// Discard many resident results in one superstep.
    pub fn free_results(&self, hs: Vec<ResultHandle>) -> Result<()> {
        let reqs = {
            let mut res = self.residency.lock();
            let mut reqs = Vec::new();
            for h in &hs {
                if let Some(info) = res.forget_result(h.key) {
                    reqs.push((info.home, Request::Free { key: h.key }));
                }
            }
            reqs
        };
        if let (Some(cl), false) = (&self.cluster, reqs.is_empty()) {
            cl.lock().call_all(reqs)?;
        }
        Ok(())
    }

    /// Contract many independent operand pairs with one spec — the
    /// block-pair fan-out of the list algorithm.
    ///
    /// In [`ExecMode::Threaded`] every pair runs as its own pool job
    /// (each internally sequential: pair-level parallelism replaces
    /// row-level parallelism, so per-element accumulation order is
    /// unchanged). Results come back in submission order and costs are
    /// charged in that same order on the caller thread, keeping both the
    /// numerics and the cost counters bitwise-deterministic.
    pub fn contract_batch(
        &self,
        spec: &str,
        pairs: &[(&DenseTensor<f64>, &DenseTensor<f64>)],
    ) -> Result<Vec<DenseTensor<f64>>> {
        let ops: Vec<(DenseOp, DenseOp)> = pairs
            .iter()
            .map(|&(a, b)| (DenseOp::Value(a), DenseOp::Value(b)))
            .collect();
        self.contract_batch_h(spec, &ops)
    }

    /// [`Executor::contract_batch`] with value-or-handle operands. On the
    /// multi-process backend a handle-bearing pair is routed to the rank
    /// already holding one of its operands (deterministically; round-robin
    /// otherwise), and whole-tensor uploads a miss requires ride in the
    /// same superstep as the pair tasks.
    pub fn contract_batch_h(
        &self,
        spec: &str,
        pairs: &[(DenseOp, DenseOp)],
    ) -> Result<Vec<DenseTensor<f64>>> {
        let plan = Arc::new(ContractPlan::parse(spec)?);
        // validate every pair up front (fused_dims/flop_count index by
        // plan positions and would panic on mismatched operand orders),
        // and snapshot the cost parameters
        let mut charges = Vec::with_capacity(pairs.len());
        for (a, b) in pairs {
            let (at, bt) = (a.tensor()?, b.tensor()?);
            plan.output_dims(at.dims(), bt.dims())?;
            let (m, k, n) = kernels::fused_dims(&plan, at.dims(), bt.dims());
            charges.push((m, k, n, plan.flop_count(at.dims(), bt.dims())));
        }
        let charge_pair = |(a, b): &(DenseOp, DenseOp), (m, k, n, flops): (_, _, _, u64)| {
            let sa = self.op_state(
                a.handle(),
                a.handle()
                    .map(|h| derive(&[h.key(), TAG_WHOLE]))
                    .unwrap_or_default(),
                m * k,
            );
            let sb = self.op_state(
                b.handle(),
                b.handle()
                    .map(|h| derive(&[h.key(), TAG_WHOLE]))
                    .unwrap_or_default(),
                k * n,
            );
            self.charge_contraction(sa, sb, m * n, m, n, flops, false);
        };
        if let Some(cl) = &self.cluster {
            // one whole pair per rank: pair-level parallelism across
            // worker processes, residency-aware placement, replies in
            // submission order
            let mut cl = cl.lock();
            let p = cl.ranks();
            let mut placement = Placement::new(p);
            let mut reqs: Vec<(usize, Request)> = Vec::new();
            let mut is_pair: Vec<bool> = Vec::new();
            {
                let mut res = self.residency.lock();
                for (a, b) in pairs {
                    let (at, bt) = (a.tensor()?, b.tensor()?);
                    let akey = a.handle().map(|h| (h, derive(&[h.key(), TAG_WHOLE])));
                    let bkey = b.handle().map(|h| (h, derive(&[h.key(), TAG_WHOLE])));
                    // the B operand's home wins: in the block-pair fan-out
                    // B is the short-lived operand (a Davidson vector
                    // block), so following it keeps every transient block
                    // on one rank while the long-lived A operands spread
                    // to at most one extra home per pair rank
                    let rank = placement.place([
                        bkey.and_then(|(_, w)| res.homes(w).and_then(|r| r.first().copied())),
                        akey.and_then(|(_, w)| res.homes(w).and_then(|r| r.first().copied())),
                    ]);
                    let field = |op: Option<(&OpHandle, u64)>,
                                 t: &DenseTensor<f64>,
                                 res: &mut Residency,
                                 reqs: &mut Vec<(usize, Request)>,
                                 is_pair: &mut Vec<bool>|
                     -> OpF {
                        match op {
                            None => OpF::Inline(t.data().to_vec()),
                            Some((h, wkey)) => {
                                if res.add_home(h.key(), wkey, rank) {
                                    reqs.push((
                                        rank,
                                        Request::Upload {
                                            key: wkey,
                                            data: t.data().to_vec(),
                                        },
                                    ));
                                    is_pair.push(false);
                                }
                                OpF::Key(wkey)
                            }
                        }
                    };
                    let a_field = field(akey, at, &mut res, &mut reqs, &mut is_pair);
                    let b_field = field(bkey, bt, &mut res, &mut reqs, &mut is_pair);
                    reqs.push((
                        rank,
                        Request::DensePair {
                            spec: spec.to_string(),
                            a_dims: at.dims().to_vec(),
                            a: a_field,
                            b_dims: bt.dims().to_vec(),
                            b: b_field,
                        },
                    ));
                    is_pair.push(true);
                }
            }
            let replies = cl.call_all(reqs)?;
            drop(cl);
            let mut out = Vec::with_capacity(pairs.len());
            let mut pair_replies = replies
                .into_iter()
                .zip(is_pair)
                .filter_map(|(rep, keep)| keep.then_some(rep));
            for (pair, &chg) in pairs.iter().zip(&charges) {
                let reply = pair_replies
                    .next()
                    .ok_or_else(|| Error::transport("missing pair reply in batch"))?;
                let (at, bt) = (pair.0.tensor()?, pair.1.tensor()?);
                let dims = plan.output_dims(at.dims(), bt.dims())?;
                out.push(DenseTensor::from_vec(dims, expect_f64s(reply)?)?);
                charge_pair(pair, chg);
            }
            return Ok(out);
        }
        let results: Vec<Result<DenseTensor<f64>>> = match self.pool() {
            Some(pool) if pairs.len() > 1 => {
                // jobs need owned operands ('static); the clone is the
                // price of pair-level parallelism, paid only here
                let jobs = pairs
                    .iter()
                    .map(|(a, b)| {
                        let (a, b) = (a.tensor()?.clone(), b.tensor()?.clone());
                        let plan = Arc::clone(&plan);
                        let job: Box<dyn FnOnce() -> Result<DenseTensor<f64>> + Send> =
                            Box::new(move || kernels::dense_contract(&plan, &a, &b, None));
                        Ok(job)
                    })
                    .collect::<Result<Vec<_>>>()?;
                pool.run(jobs)
            }
            // sequential mode, or a single pair: no copies; row-level
            // parallelism (bitwise-identical by construction) still
            // applies if a pool is present
            _ => pairs
                .iter()
                .map(|(a, b)| kernels::dense_contract(&plan, a.tensor()?, b.tensor()?, self.pool()))
                .collect(),
        };
        let mut out = Vec::with_capacity(results.len());
        for ((r, pair), &chg) in results.into_iter().zip(pairs).zip(&charges) {
            out.push(r?);
            charge_pair(pair, chg);
        }
        Ok(out)
    }

    /// Distributed sparse × dense contraction (the *sparse-dense*
    /// algorithm's kernel): flattened-sparse `a` against densified `b`.
    pub fn contract_sd(
        &self,
        spec: &str,
        a: &SparseTensor<f64>,
        b: &DenseTensor<f64>,
    ) -> Result<DenseTensor<f64>> {
        self.contract_sd_h(spec, a.into(), b.into())
    }

    /// Sparse × dense contraction with value-or-handle operands. A handle
    /// on `a` keeps its volume-balanced coordinate buckets resident per
    /// rank; a handle on `b` keeps the permuted dense matrix resident.
    pub fn contract_sd_h(&self, spec: &str, a: SparseOp, b: DenseOp) -> Result<DenseTensor<f64>> {
        let plan = ContractPlan::parse(spec)?;
        let (at, bt) = (a.tensor()?, b.tensor()?);
        let (c, flops) = if let Some(cl) = &self.cluster {
            self.sd_over_cluster(&mut cl.lock(), &plan, &a, &b)?
        } else {
            kernels::sd_contract(&plan, at, bt, self.pool(), kernels::SPARSE_PAR_MIN_FLOPS)?
        };
        let (m, k, n) = kernels::fused_dims(&plan, at.dims(), bt.dims());
        let mut perm_b: Vec<usize> = plan.ctr_b_positions().to_vec();
        perm_b.extend_from_slice(plan.free_b_positions());
        // The sparse operand moves its stored entries (offset + value),
        // the dense operand and result their full volume.
        //
        // The logical charge key is deliberately coarser than the
        // physical worker keys in one respect: it omits the chunk count,
        // which depends on the worker count (backend-independent charging
        // requires p-free keys). A re-bucketing caused by the work-volume
        // threshold flipping re-ships physically (metered in
        // `bytes_operands`) without an extra α–β upload charge.
        let sa = self.op_state(
            a.handle(),
            a.handle()
                .map(|h| {
                    derive(&[
                        h.key(),
                        TAG_SD_A,
                        hseq(plan.free_a_positions()),
                        hseq(plan.ctr_a_positions()),
                        n as u64,
                    ])
                })
                .unwrap_or_default(),
            2 * at.nnz(),
        );
        let sb = self.op_state(
            b.handle(),
            b.handle()
                .map(|h| derive(&[h.key(), TAG_MAT_B, hseq(&perm_b)]))
                .unwrap_or_default(),
            k * n,
        );
        self.charge_contraction(sa, sb, m * n, m, n, flops, true);
        Ok(c)
    }

    /// Sparse-dense contraction over the worker processes: the driver
    /// buckets the sparse coords by work volume (same boundaries as the
    /// in-process kernel) and ships each bucket plus the dense operand to
    /// a rank; row panels concatenate in submission order. Handle
    /// operands resolve to resident buckets / matrices instead.
    fn sd_over_cluster(
        &self,
        cl: &mut Cluster,
        plan: &ContractPlan,
        a: &SparseOp,
        b: &DenseOp,
    ) -> Result<(DenseTensor<f64>, u64)> {
        let (at, bt) = (a.tensor()?, b.tensor()?);
        plan.output_dims(at.dims(), bt.dims())?;
        let (m, _k, n) = kernels::fused_dims(plan, at.dims(), bt.dims());
        let mut perm_b: Vec<usize> = plan.ctr_b_positions().to_vec();
        perm_b.extend_from_slice(plan.free_b_positions());

        let coords = kernels::sparse_coords(at, plan.free_a_positions(), plan.ctr_a_positions());
        let flops = 2 * coords.len() as u64 * n as u64;
        let chunks = if flops < kernels::SPARSE_PAR_MIN_FLOPS {
            1
        } else {
            cl.ranks()
        };
        let (ranges, buckets) = kernels::bucket_by_volume(coords, m, chunks, |_| n as u64);
        let p = cl.ranks();
        let mut reqs: Vec<(usize, Request)> = Vec::new();

        let b_field = match b.handle() {
            None => OpF::Inline(bt.permute(&perm_b)?.into_data()),
            Some(h) => {
                let wkey = derive(&[h.key(), TAG_MAT_B, hseq(&perm_b)]);
                let mut b_mat: Option<Vec<f64>> = None;
                replicate_to_missing(
                    &mut self.residency.lock(),
                    h.key(),
                    wkey,
                    ranges.len().min(p),
                    &mut reqs,
                    || {
                        let data = match &b_mat {
                            Some(d) => d.clone(),
                            None => {
                                let d = bt.permute(&perm_b)?.into_data();
                                b_mat = Some(d.clone());
                                d
                            }
                        };
                        Ok(Request::Upload { key: wkey, data })
                    },
                )?;
                OpF::Key(wkey)
            }
        };

        let a_keys: Option<Vec<u64>> = match a.handle() {
            None => None,
            Some(h) => {
                let mut res = self.residency.lock();
                let mut keys = Vec::with_capacity(buckets.len());
                for (i, bucket) in buckets.iter().enumerate() {
                    let wkey = derive(&[
                        h.key(),
                        TAG_SD_A,
                        hseq(plan.free_a_positions()),
                        hseq(plan.ctr_a_positions()),
                        n as u64,
                        chunks as u64,
                        i as u64,
                    ]);
                    if res.add_home(h.key(), wkey, i % p) {
                        let (rows, cols, vals) = split_coords(bucket.clone());
                        reqs.push((
                            i % p,
                            Request::UploadCoords {
                                key: wkey,
                                rows,
                                cols,
                                vals,
                            },
                        ));
                    }
                    keys.push(wkey);
                }
                Some(keys)
            }
        };

        let n_uploads = reqs.len();
        for (i, (&(r0, r1), bucket)) in ranges.iter().zip(buckets).enumerate() {
            let a_field = match &a_keys {
                Some(keys) => OpCoords::Key(keys[i]),
                None => {
                    let (rows, cols, vals) = split_coords(bucket);
                    OpCoords::Inline { rows, cols, vals }
                }
            };
            reqs.push((
                i % p,
                Request::SdChunk {
                    r0,
                    r1,
                    n,
                    a: a_field,
                    b: b_field.clone(),
                },
            ));
        }
        let mut c = Vec::with_capacity(m * n);
        for reply in cl.call_all(reqs)?.into_iter().skip(n_uploads) {
            c.extend_from_slice(&expect_f64s(reply)?);
        }
        let c = DenseTensor::from_vec(kernels::natural_dims(plan, at.dims(), bt.dims()), c)?;
        Ok((c.permute(plan.output_permutation())?, flops))
    }

    /// Distributed sparse × sparse contraction with optional pre-computed
    /// output sparsity `mask` (output linear offsets that may be nonzero).
    pub fn contract_ss(
        &self,
        spec: &str,
        a: &SparseTensor<f64>,
        b: &SparseTensor<f64>,
        mask: Option<&[u64]>,
    ) -> Result<SparseTensor<f64>> {
        self.contract_ss_h(spec, a.into(), b.into(), mask)
    }

    /// Sparse × sparse contraction with value-or-handle operands. A
    /// handle on `a` keeps its row buckets resident (bucketed by stored
    /// entries only, so the boundaries don't depend on `b`); a handle on
    /// `b` keeps the grouped contraction table resident.
    pub fn contract_ss_h(
        &self,
        spec: &str,
        a: SparseOp,
        b: SparseOp,
        mask: Option<&[u64]>,
    ) -> Result<SparseTensor<f64>> {
        let plan = ContractPlan::parse(spec)?;
        let (at, bt) = (a.tensor()?, b.tensor()?);
        let (c, flops) = if let Some(cl) = &self.cluster {
            self.ss_over_cluster(&mut cl.lock(), &plan, &a, &b, mask)?
        } else {
            kernels::ss_contract(
                &plan,
                at,
                bt,
                mask,
                self.pool(),
                kernels::SPARSE_PAR_MIN_FLOPS,
            )?
        };
        let (m, _k, n) = kernels::fused_dims(&plan, at.dims(), bt.dims());
        // All three tensors move only their stored entries (offset + value).
        // As in the sd path, the logical keys omit the (p-dependent)
        // chunk count; both operands' dims pin the output-offset tables
        // the resident buffers were resolved against.
        let sa = self.op_state(
            a.handle(),
            a.handle()
                .map(|h| {
                    derive(&[
                        h.key(),
                        TAG_SS_A,
                        hseq(plan.free_a_positions()),
                        hseq(plan.ctr_a_positions()),
                    ])
                })
                .unwrap_or_default(),
            2 * at.nnz(),
        );
        let sb = self.op_state(
            b.handle(),
            b.handle()
                .map(|h| {
                    // the grouped table stores *fused* free indices, so it
                    // depends only on B's content (h.key) and the plan's
                    // B-side positions — not on A's dims or the output
                    // permutation; the same resident table serves every
                    // contraction against this operand
                    derive(&[
                        h.key(),
                        TAG_SS_B,
                        hseq(plan.ctr_b_positions()),
                        hseq(plan.free_b_positions()),
                    ])
                })
                .unwrap_or_default(),
            2 * bt.nnz(),
        );
        self.charge_contraction(sa, sb, 2 * c.nnz(), m, n, flops, true);
        Ok(c)
    }

    /// Sparse-sparse contraction over the worker processes: the grouped
    /// `B` operand, output-axis map and mask ship once per rank alongside
    /// that rank's volume-balanced `A` bucket; the per-bucket entry sets
    /// are row-disjoint, so concatenating replies in submission order
    /// reproduces the in-process result exactly. Handle operands resolve
    /// to resident buckets / group tables; because every bucketing is
    /// row-contiguous and scan-order-preserving, the result is bitwise
    /// identical no matter which boundaries are used.
    fn ss_over_cluster(
        &self,
        cl: &mut Cluster,
        plan: &ContractPlan,
        a: &SparseOp,
        b: &SparseOp,
        mask: Option<&[u64]>,
    ) -> Result<(SparseTensor<f64>, u64)> {
        let (at, bt) = (a.tensor()?, b.tensor()?);
        let prep = kernels::ss_prepare(plan, at, bt, mask)?;
        let kernels::SsPrep {
            out_shape,
            m,
            n,
            row_axes,
            col_axes,
            btab,
            mask_sorted,
            coords,
        } = prep;

        let coord_work = |c: &kernels::Coord| btab.run_len(c.1) as u64;
        let total_work: u64 = coords.iter().map(&coord_work).sum();
        let chunks = if 2 * total_work < kernels::SPARSE_PAR_MIN_FLOPS {
            1
        } else {
            cl.ranks()
        };
        // resident A buckets must not depend on B's pattern, so the
        // handle path weights each stored entry equally; any
        // row-contiguous bucketing yields bitwise-identical results
        let (ranges, mut buckets) = if a.handle().is_some() {
            kernels::bucket_by_volume(coords, m, chunks, |_| 1)
        } else {
            kernels::bucket_by_volume(coords, m, chunks, coord_work)
        };
        // buckets ship key-sorted (the order the merge kernel consumes),
        // so resident buckets amortize the sort across iterations
        for bucket in &mut buckets {
            kernels::sort_bucket_by_key(bucket);
        }

        // flatten the grouped B operand once
        let b_keys = btab.keys().to_vec();
        let b_lens: Vec<u64> = btab.run_lens().collect();
        let b_cols = btab.cols().to_vec();
        let b_vals = btab.vals().to_vec();
        let (ax_dims, ax_strides): (Vec<u64>, Vec<u64>) = row_axes.iter().copied().unzip();
        let (cx_dims, cx_strides): (Vec<u64>, Vec<u64>) = col_axes.iter().copied().unzip();

        let p = cl.ranks();
        let mut reqs: Vec<(usize, Request)> = Vec::new();

        let b_field = match b.handle() {
            None => OpSs::Inline {
                keys: b_keys,
                lens: b_lens,
                cols: b_cols,
                vals: b_vals,
            },
            Some(h) => {
                // fused-col table: keyed by B content + plan positions only
                // (must stay in lockstep with the charge key in
                // `contract_ss_h`)
                let wkey = derive(&[
                    h.key(),
                    TAG_SS_B,
                    hseq(plan.ctr_b_positions()),
                    hseq(plan.free_b_positions()),
                ]);
                replicate_to_missing(
                    &mut self.residency.lock(),
                    h.key(),
                    wkey,
                    buckets.len().min(p),
                    &mut reqs,
                    || {
                        Ok(Request::UploadSs {
                            key: wkey,
                            keys: b_keys.clone(),
                            lens: b_lens.clone(),
                            cols: b_cols.clone(),
                            vals: b_vals.clone(),
                        })
                    },
                )?;
                OpSs::Key(wkey)
            }
        };

        let a_keys: Option<Vec<u64>> = match a.handle() {
            None => None,
            Some(h) => {
                let mut res = self.residency.lock();
                let mut keys = Vec::with_capacity(buckets.len());
                for (i, bucket) in buckets.iter().enumerate() {
                    let wkey = derive(&[
                        h.key(),
                        TAG_SS_A,
                        hseq(plan.free_a_positions()),
                        hseq(plan.ctr_a_positions()),
                        chunks as u64,
                        i as u64,
                    ]);
                    if res.add_home(h.key(), wkey, i % p) {
                        let (rows, ctrs, vals) = split_coords(bucket.clone());
                        reqs.push((
                            i % p,
                            Request::UploadCoords {
                                key: wkey,
                                rows,
                                cols: ctrs,
                                vals,
                            },
                        ));
                    }
                    keys.push(wkey);
                }
                Some(keys)
            }
        };

        let n_uploads = reqs.len();
        for (i, ((r0, r1), bucket)) in ranges.into_iter().zip(buckets).enumerate() {
            let a_field = match &a_keys {
                Some(keys) => OpCoords::Key(keys[i]),
                None => {
                    let (rows, ctrs, vals) = split_coords(bucket);
                    OpCoords::Inline {
                        rows,
                        cols: ctrs,
                        vals,
                    }
                }
            };
            reqs.push((
                i % p,
                Request::SsChunk {
                    a: a_field,
                    b: b_field.clone(),
                    r0: r0 as u64,
                    r1: r1 as u64,
                    n,
                    ax_dims: ax_dims.clone(),
                    ax_strides: ax_strides.clone(),
                    cx_dims: cx_dims.clone(),
                    cx_strides: cx_strides.clone(),
                    mask: mask_sorted.clone(),
                },
            ));
        }
        let mut entries = Vec::new();
        let mut flops = 0u64;
        for reply in cl.call_all(reqs)?.into_iter().skip(n_uploads) {
            match reply {
                Reply::Entries {
                    offs,
                    vals,
                    flops: f,
                } => {
                    entries.extend(offs.into_iter().zip(vals));
                    flops += f;
                }
                other => {
                    return Err(Error::transport(format!(
                        "expected sparse entries, got {other:?}"
                    )))
                }
            }
        }
        Ok((SparseTensor::from_entries(out_shape, entries)?, flops))
    }

    /// Distributed truncated SVD of a matrix (the ScaLAPACK `pdgesvd`
    /// stand-in used under the block SVD). On the multi-process backend
    /// the factorization executes on a worker process (same code, same
    /// bits). Tall panels (see [`tall_panel`]) actually route through the
    /// [`crate::tsqr`] tree — QR the panel, SVD the small `R` — instead of
    /// only charging its cost model; results then match the direct path
    /// up to the usual per-column sign convention.
    pub fn svd_trunc(&self, a: &DenseTensor<f64>, spec: TruncSpec) -> Result<TruncatedSvd> {
        if tall_panel(a.dims()) {
            return self.svd_tall(a, spec);
        }
        let out = match &self.cluster {
            Some(cl) if a.order() == 2 => decode_svd(
                cl.lock()
                    .call(0, &svd_request(a, OpF::Inline(a.data().to_vec()), spec))?,
            )?,
            _ => tt_linalg::svd_trunc(a, spec)?,
        };
        self.charge_factorization(a.dims(), 14.0);
        Ok(out)
    }

    /// Distributed thin QR. Tall panels route through the [`crate::tsqr`]
    /// tree (slab QRs on the workers, `R`-merge on the driver — the
    /// communication-avoiding factorization the cost model always
    /// assumed); everything else keeps the direct `qr_thin` path. On the
    /// multi-process backend the direct factorization executes on a
    /// worker.
    pub fn qr(&self, a: &DenseTensor<f64>) -> Result<(DenseTensor<f64>, DenseTensor<f64>)> {
        if tall_panel(a.dims()) {
            return self.qr_tall(a);
        }
        let out = match &self.cluster {
            Some(cl) if a.order() == 2 => decode_qr(
                cl.lock()
                    .call(0, &qr_request(a, OpF::Inline(a.data().to_vec())))?,
            )?,
            _ => tt_linalg::qr_thin(a)?,
        };
        self.charge_factorization(a.dims(), 4.0);
        Ok(out)
    }

    /// Tall-panel QR via the TSQR tree. The merge tree's real p2p charges
    /// land on top of the standard factorization charge (the tree is the
    /// factorization the cost model priced; running it makes the charge
    /// honest), identically on every backend.
    fn qr_tall(&self, a: &DenseTensor<f64>) -> Result<(DenseTensor<f64>, DenseTensor<f64>)> {
        let comm = self.comm();
        let out = match self.with_cluster(|cl| crate::tsqr::tsqr_on(a, &comm, cl)) {
            Some(r) => r?,
            None => crate::tsqr::tsqr(a, &comm)?,
        };
        self.charge_factorization(a.dims(), 4.0);
        Ok(out)
    }

    /// Tall-panel truncated SVD: TSQR the panel, SVD the `n × n` `R` on
    /// the driver, and recover `U = Q · U_R`. Singular values match the
    /// direct factorization to rounding; vectors up to sign.
    fn svd_tall(&self, a: &DenseTensor<f64>, spec: TruncSpec) -> Result<TruncatedSvd> {
        let comm = self.comm();
        let factors = match self.with_cluster(|cl| crate::tsqr::tsqr_on(a, &comm, cl)) {
            Some(out) => out?,
            None => crate::tsqr::tsqr(a, &comm)?,
        };
        self.svd_from_tsqr(a.dims(), factors, spec)
    }

    /// Recover a truncated SVD from a panel's TSQR factors: SVD the small
    /// `R` on the driver, `U = Q · U_R`, and charge the standard
    /// factorization cost. Shared by the value and handle tall paths.
    fn svd_from_tsqr(
        &self,
        dims: &[usize],
        (q, r): (DenseTensor<f64>, DenseTensor<f64>),
        spec: TruncSpec,
    ) -> Result<TruncatedSvd> {
        let t = tt_linalg::svd_trunc(&r, spec)?;
        let u = tt_tensor::gemm_f64(&q, &t.u)?;
        self.charge_factorization(dims, 14.0);
        Ok(TruncatedSvd {
            u,
            s: t.s,
            vt: t.vt,
            trunc_err: t.trunc_err,
            n_discarded: t.n_discarded,
        })
    }

    /// Truncated SVDs of many independent matrices (the sector groups of a
    /// block SVD). In [`ExecMode::Threaded`] the factorizations fan out
    /// over the pool; on the multi-process backend each matrix ships to a
    /// rank round-robin. Results return in submission order and costs are
    /// charged in that order, so totals match the serial loop exactly.
    pub fn svd_trunc_batch(
        &self,
        mats: Vec<DenseTensor<f64>>,
        spec: TruncSpec,
    ) -> Result<Vec<TruncatedSvd>> {
        // tall panels must route exactly like the singles (batch ≡ loop of
        // singles is a tested invariant), so a batch containing one falls
        // back to the serial loop
        if mats.iter().any(|m| tall_panel(m.dims())) {
            return mats.iter().map(|m| self.svd_trunc(m, spec)).collect();
        }
        if let Some(cl) = &self.cluster {
            if mats.iter().all(|m| m.order() == 2) {
                let mut cl = cl.lock();
                let p = cl.ranks();
                let dims: Vec<Vec<usize>> = mats.iter().map(|m| m.dims().to_vec()).collect();
                let reqs: Vec<(usize, Request)> = mats
                    .iter()
                    .enumerate()
                    .map(|(i, m)| (i % p, svd_request(m, OpF::Inline(m.data().to_vec()), spec)))
                    .collect();
                let replies = cl.call_all(reqs)?;
                let mut out = Vec::with_capacity(replies.len());
                for (reply, d) in replies.into_iter().zip(dims) {
                    out.push(decode_svd(reply)?);
                    self.charge_factorization(&d, 14.0);
                }
                return Ok(out);
            }
        }
        self.factorize_batch(mats, 14.0, move |m| tt_linalg::svd_trunc(m, spec))
    }

    /// Truncated SVDs of resident matrices: after the first batch against
    /// the same handles, zero operand bytes ship. Placement is
    /// residency-aware (the factorization runs where the matrix lives).
    pub fn svd_trunc_batch_h(
        &self,
        mats: &[&OpHandle],
        spec: TruncSpec,
    ) -> Result<Vec<TruncatedSvd>> {
        if mats
            .iter()
            .any(|h| h.dense().map(|t| tall_panel(t.dims())) == Ok(true))
        {
            return mats
                .iter()
                .map(|h| {
                    let t = h.dense()?;
                    if tall_panel(t.dims()) {
                        self.svd_tall_h(h, spec)
                    } else {
                        Ok(self
                            .factorize_batch_h(
                                &[*h],
                                14.0,
                                |h, field| Ok(svd_request(h.dense()?, field, spec)),
                                decode_svd,
                                move |m| tt_linalg::svd_trunc(m, spec),
                            )?
                            .pop()
                            .expect("one matrix, one factorization"))
                    }
                })
                .collect();
        }
        self.factorize_batch_h(
            mats,
            14.0,
            |h, field| Ok(svd_request(h.dense()?, field, spec)),
            decode_svd,
            move |m| tt_linalg::svd_trunc(m, spec),
        )
    }

    /// Tall-panel truncated SVD of a *resident* matrix: TSQR over the
    /// handle's pinned row slabs ([`crate::tsqr_on_h`]), then the shared
    /// small-R recovery.
    fn svd_tall_h(&self, h: &OpHandle, spec: TruncSpec) -> Result<TruncatedSvd> {
        let comm = self.comm();
        let factors = crate::tsqr::tsqr_on_h(self, h, &comm)?;
        self.svd_from_tsqr(h.dense()?.dims(), factors, spec)
    }

    /// Tall-panel thin QR of a *resident* matrix via its pinned row slabs.
    fn qr_tall_h(&self, h: &OpHandle) -> Result<(DenseTensor<f64>, DenseTensor<f64>)> {
        let comm = self.comm();
        let out = crate::tsqr::tsqr_on_h(self, h, &comm)?;
        self.charge_factorization(h.dense()?.dims(), 4.0);
        Ok(out)
    }

    /// Thin QRs of many independent matrices (the sector groups of a block
    /// QR), pool-parallel in [`ExecMode::Threaded`] and rank-round-robin
    /// on the multi-process backend, with in-order results and cost
    /// charging.
    pub fn qr_batch(
        &self,
        mats: Vec<DenseTensor<f64>>,
    ) -> Result<Vec<(DenseTensor<f64>, DenseTensor<f64>)>> {
        if mats.iter().any(|m| tall_panel(m.dims())) {
            return mats.iter().map(|m| self.qr(m)).collect();
        }
        if let Some(cl) = &self.cluster {
            if mats.iter().all(|m| m.order() == 2) {
                let mut cl = cl.lock();
                let p = cl.ranks();
                let dims: Vec<Vec<usize>> = mats.iter().map(|m| m.dims().to_vec()).collect();
                let reqs: Vec<(usize, Request)> = mats
                    .iter()
                    .enumerate()
                    .map(|(i, m)| (i % p, qr_request(m, OpF::Inline(m.data().to_vec()))))
                    .collect();
                let replies = cl.call_all(reqs)?;
                let mut out = Vec::with_capacity(replies.len());
                for (reply, d) in replies.into_iter().zip(dims) {
                    out.push(decode_qr(reply)?);
                    self.charge_factorization(&d, 4.0);
                }
                return Ok(out);
            }
        }
        self.factorize_batch(mats, 4.0, tt_linalg::qr_thin)
    }

    /// Thin QRs of resident matrices (see [`Executor::svd_trunc_batch_h`]).
    pub fn qr_batch_h(
        &self,
        mats: &[&OpHandle],
    ) -> Result<Vec<(DenseTensor<f64>, DenseTensor<f64>)>> {
        if mats
            .iter()
            .any(|h| h.dense().map(|t| tall_panel(t.dims())) == Ok(true))
        {
            return mats
                .iter()
                .map(|h| {
                    let t = h.dense()?;
                    if tall_panel(t.dims()) {
                        self.qr_tall_h(h)
                    } else {
                        Ok(self
                            .factorize_batch_h(
                                &[*h],
                                4.0,
                                |h, field| Ok(qr_request(h.dense()?, field)),
                                decode_qr,
                                tt_linalg::qr_thin,
                            )?
                            .pop()
                            .expect("one matrix, one factorization"))
                    }
                })
                .collect();
        }
        self.factorize_batch_h(
            mats,
            4.0,
            |h, field| Ok(qr_request(h.dense()?, field)),
            decode_qr,
            tt_linalg::qr_thin,
        )
    }

    /// Shared driver for the handle factorization batches: route each
    /// matrix to its resident rank (round-robin on first use, uploading
    /// it in the same superstep), decode replies in submission order, and
    /// charge the one-time uploads plus each factorization in that order.
    fn factorize_batch_h<T: Send + 'static>(
        &self,
        mats: &[&OpHandle],
        flop_coeff: f64,
        make_req: impl Fn(&OpHandle, OpF) -> Result<Request>,
        decode: impl Fn(Reply) -> Result<T>,
        local: impl Fn(&DenseTensor<f64>) -> tt_linalg::Result<T> + Send + Sync + Copy + 'static,
    ) -> Result<Vec<T>> {
        let mut out = Vec::with_capacity(mats.len());
        if let Some(cl) = &self.cluster {
            if mats
                .iter()
                .all(|h| h.dense().map(|t| t.order() == 2) == Ok(true))
            {
                let mut cl = cl.lock();
                let mut placement = Placement::new(cl.ranks());
                let mut reqs: Vec<(usize, Request)> = Vec::new();
                let mut is_task: Vec<bool> = Vec::new();
                {
                    let mut res = self.residency.lock();
                    for h in mats {
                        let wkey = derive(&[h.key(), TAG_WHOLE]);
                        let rank =
                            placement.place([res.homes(wkey).and_then(|r| r.first().copied())]);
                        if res.add_home(h.key(), wkey, rank) {
                            reqs.push((
                                rank,
                                Request::Upload {
                                    key: wkey,
                                    data: h.dense()?.data().to_vec(),
                                },
                            ));
                            is_task.push(false);
                        }
                        reqs.push((rank, make_req(h, OpF::Key(wkey))?));
                        is_task.push(true);
                    }
                }
                let replies = cl.call_all(reqs)?;
                drop(cl);
                let mut task_replies = replies
                    .into_iter()
                    .zip(is_task)
                    .filter_map(|(rep, keep)| keep.then_some(rep));
                for h in mats {
                    let reply = task_replies
                        .next()
                        .ok_or_else(|| Error::transport("missing factorization reply in batch"))?;
                    out.push(decode(reply)?);
                    self.charge_factorization_h(h, flop_coeff)?;
                }
                return Ok(out);
            }
        }
        // in-process: handles are plain Arcs — factor the payloads with
        // the local routine, pool-parallel in Threaded mode like the
        // value-path batches, charging per matrix in submission order
        // exactly like the cluster path (same float accumulation order
        // ⇒ bitwise-equal counters across backends)
        let results: Vec<tt_linalg::Result<T>> = match self.pool() {
            Some(pool) if mats.len() > 1 => {
                let jobs = mats
                    .iter()
                    .map(|h| {
                        let m = h.dense()?.clone();
                        let job: Box<dyn FnOnce() -> tt_linalg::Result<T> + Send> =
                            Box::new(move || local(&m));
                        Ok(job)
                    })
                    .collect::<Result<Vec<_>>>()?;
                pool.run(jobs)
            }
            _ => mats
                .iter()
                .map(|h| Ok(local(h.dense()?)))
                .collect::<Result<Vec<_>>>()?,
        };
        for (r, h) in results.into_iter().zip(mats) {
            out.push(r?);
            self.charge_factorization_h(h, flop_coeff)?;
        }
        Ok(out)
    }

    /// Charge one handle factorization: a one-time whole-tensor upload on
    /// first use, then the standard factorization cost.
    fn charge_factorization_h(&self, h: &OpHandle, flop_coeff: f64) -> Result<()> {
        let lkey = derive(&[h.key(), TAG_WHOLE]);
        if self.observe_logical(h.key(), lkey) && self.ranks > 1 {
            cost::charge(&self.tracker, |tr| {
                tr.charge_superstep(8 * h.words() as u64);
            });
        }
        self.charge_factorization(h.dense()?.dims(), flop_coeff);
        Ok(())
    }

    /// Shared driver for the factorization batches: run `f` over every
    /// matrix (on the pool when threaded), then charge each factorization
    /// in submission order on the caller thread.
    fn factorize_batch<T: Send + 'static>(
        &self,
        mats: Vec<DenseTensor<f64>>,
        flop_coeff: f64,
        f: impl Fn(&DenseTensor<f64>) -> tt_linalg::Result<T> + Send + Sync + Copy + 'static,
    ) -> Result<Vec<T>> {
        let dims: Vec<Vec<usize>> = mats.iter().map(|m| m.dims().to_vec()).collect();
        let results: Vec<tt_linalg::Result<T>> = match self.pool() {
            Some(pool) if mats.len() > 1 => {
                let jobs = mats
                    .into_iter()
                    .map(|m| {
                        let job: Box<dyn FnOnce() -> tt_linalg::Result<T> + Send> =
                            Box::new(move || f(&m));
                        job
                    })
                    .collect();
                pool.run(jobs)
            }
            _ => mats.iter().map(f).collect(),
        };
        let mut out = Vec::with_capacity(results.len());
        for (r, d) in results.into_iter().zip(dims) {
            out.push(r?);
            self.charge_factorization(&d, flop_coeff);
        }
        Ok(out)
    }

    /// Charge an `m×n` dense factorization costing `c · max(m,n) · min² `
    /// flops: ScaLAPACK-style half-efficiency compute plus a TSQR-shaped
    /// reduction tree (one n×n R per level).
    fn charge_factorization(&self, dims: &[usize], flop_coeff: f64) {
        let (m, n) = (dims[0].max(1), dims.get(1).copied().unwrap_or(1).max(1));
        let k = m.min(n);
        let flops = (flop_coeff * (m.max(n) as f64) * (k as f64) * (k as f64)) as u64;
        let p = self.ranks as f64;
        let rate = self.machine.dense_rate((k as f64 / p.sqrt()).max(1.0));
        cost::charge(&self.tracker, |tr| {
            tr.flops += flops;
            tr.sim.svd += flops as f64 / (0.5 * rate * p);
            tr.sim.other += MAP_OVERHEAD_S;
            if self.ranks > 1 {
                let levels = (usize::BITS - (self.ranks - 1).leading_zeros()) as u64;
                tr.charge_supersteps(levels, levels * 8 * (k * k) as u64);
            }
        });
    }
}

/// TTGT operand permutations of a plan: `A` to `(free, contracted)` and
/// `B` to `(contracted, free)` order.
fn operand_perms(plan: &ContractPlan) -> (Vec<usize>, Vec<usize>) {
    let mut perm_a: Vec<usize> = plan.free_a_positions().to_vec();
    perm_a.extend_from_slice(plan.ctr_a_positions());
    let mut perm_b: Vec<usize> = plan.ctr_b_positions().to_vec();
    perm_b.extend_from_slice(plan.free_b_positions());
    (perm_a, perm_b)
}

/// Hash an einsum spec into one derivation component (for provenance).
fn hash_spec(s: &str) -> u64 {
    s.bytes().fold(Fnv::new(), |f, b| f.u8(b)).finish()
}

/// Worker key of a sparse operand's whole-coordinate buffer (the
/// single-bucket form chain steps consume): the standard sd derivation
/// with a chunk count of 1.
fn sd_whole_key(h: &OpHandle, plan: &ContractPlan, n: usize) -> u64 {
    derive(&[
        h.key(),
        TAG_SD_A,
        hseq(plan.free_a_positions()),
        hseq(plan.ctr_a_positions()),
        n as u64,
        1,
        0,
    ])
}

/// Dims and scalar family of a chain-step operand at planning time.
fn src_info(src: &ChainSrc, planned: &[PlannedStep]) -> Result<(Vec<usize>, SrcKind)> {
    Ok(match src {
        ChainSrc::Dense(op) => (op.tensor()?.dims().to_vec(), SrcKind::F64),
        ChainSrc::DenseC(op) => (op.tensor()?.dims().to_vec(), SrcKind::C64),
        ChainSrc::Sparse(op) => (op.tensor()?.dims().to_vec(), SrcKind::Sparse),
        ChainSrc::Prev(j) => {
            let pl = planned
                .get(*j)
                .ok_or_else(|| Error::Runtime(format!("chain step references future step {j}")))?;
            if pl.base != *j {
                return Err(Error::Runtime(format!(
                    "chain step references accumulate step {j}; reference its base instead"
                )));
            }
            let kind = match pl.result_kind() {
                ResultKind::F64 => SrcKind::F64,
                ResultKind::C64 => SrcKind::C64,
            };
            (pl.out_dims.clone(), kind)
        }
        ChainSrc::Res(h) => {
            let kind = match h.kind {
                ResultKind::F64 => SrcKind::F64,
                ResultKind::C64 => SrcKind::C64,
            };
            (h.dims.clone(), kind)
        }
    })
}

/// Provenance component of a chain-step operand (content key, result key,
/// or a constant for inline values).
fn src_provenance(src: &ChainSrc, planned: &[PlannedStep]) -> u64 {
    match src {
        ChainSrc::Dense(op) => op.handle().map(OpHandle::key).unwrap_or(1),
        ChainSrc::DenseC(op) => op.handle().map(OpHandle::key).unwrap_or(1),
        ChainSrc::Sparse(op) => op.handle().map(OpHandle::key).unwrap_or(1),
        ChainSrc::Prev(j) => planned[*j].key,
        ChainSrc::Res(h) => h.key,
    }
}

/// Gather `(rank, words)` weights of one operand's resident copies for
/// chain-step placement.
fn collect_weights(
    src: &ChainSrc,
    pl: &PlannedStep,
    res: &Residency,
    homes: &[usize],
    planned: &[PlannedStep],
    weighted: &mut Vec<(usize, u64)>,
) {
    let whole_handle_weights = |h: &OpHandle, weighted: &mut Vec<(usize, u64)>| {
        let wkey = derive(&[h.key(), TAG_WHOLE]);
        if let Some(ranks) = res.homes(wkey) {
            weighted.extend(ranks.iter().map(|&r| (r, h.words() as u64)));
        }
    };
    match src {
        ChainSrc::Dense(op) => {
            if let Some(h) = op.handle() {
                whole_handle_weights(h, weighted);
            }
        }
        ChainSrc::DenseC(op) => {
            if let Some(h) = op.handle() {
                whole_handle_weights(h, weighted);
            }
        }
        ChainSrc::Sparse(op) => {
            if let Some(h) = op.handle() {
                let wkey = sd_whole_key(h, &pl.plan, pl.n);
                if let Some(ranks) = res.homes(wkey) {
                    weighted.extend(ranks.iter().map(|&r| (r, h.words() as u64)));
                }
            }
        }
        ChainSrc::Prev(j) => weighted.push((homes[*j], planned[*j].words_c as u64)),
        ChainSrc::Res(h) => {
            if let Some(info) = res.result(h.key) {
                weighted.push((info.home, info.words as u64));
            }
        }
    }
}

/// Resolve a chain-step operand to its local `f64` tensor (in-process
/// execution).
fn resolve_local_f64<'x>(
    src: &'x ChainSrc<'x>,
    outs: &'x [Option<LocalResult>],
) -> Result<&'x DenseTensor<f64>> {
    match src {
        ChainSrc::Dense(op) => op.tensor(),
        ChainSrc::Prev(j) => match &outs[*j] {
            Some(LocalResult::F64(t)) => Ok(t),
            _ => Err(Error::Runtime("chain step operand kind mismatch".into())),
        },
        ChainSrc::Res(h) => match &h.local {
            Some(LocalResult::F64(t)) => Ok(t),
            _ => Err(Error::Runtime(
                "result handle has no in-process f64 payload".into(),
            )),
        },
        _ => Err(Error::Runtime("chain step operand kind mismatch".into())),
    }
}

/// Resolve a chain-step operand to its local [`Complex64`] tensor.
fn resolve_local_c64<'x>(
    src: &'x ChainSrc<'x>,
    outs: &'x [Option<LocalResult>],
) -> Result<&'x DenseTensor<Complex64>> {
    match src {
        ChainSrc::DenseC(op) => op.tensor(),
        ChainSrc::Prev(j) => match &outs[*j] {
            Some(LocalResult::C64(t)) => Ok(t),
            _ => Err(Error::Runtime("chain step operand kind mismatch".into())),
        },
        ChainSrc::Res(h) => match &h.local {
            Some(LocalResult::C64(t)) => Ok(t),
            _ => Err(Error::Runtime(
                "result handle has no in-process Complex64 payload".into(),
            )),
        },
        _ => Err(Error::Runtime("chain step operand kind mismatch".into())),
    }
}

/// The recurring "replicated B" block of the dense/sd/ss cluster paths:
/// ship the buffer derived from `content` under `wkey` to every rank (of
/// the first `nranks`) that doesn't already hold it. `make` builds the
/// upload request and is only invoked for missing ranks — callers memoize
/// the payload inside it, so a fully-resident operand costs nothing.
fn replicate_to_missing(
    res: &mut Residency,
    content: u64,
    wkey: u64,
    nranks: usize,
    reqs: &mut Vec<(usize, Request)>,
    mut make: impl FnMut() -> Result<Request>,
) -> Result<()> {
    for r in 0..nranks {
        if res.add_home(content, wkey, r) {
            reqs.push((r, make()?));
        }
    }
    Ok(())
}

/// The per-chunk `A` operand fields of a chunked cluster contraction:
/// inline row slabs (value operands) or per-chunk resident keys.
enum AFields<T> {
    Inline(Vec<T>),
    Keys(Vec<u64>),
}

/// The recurring "slab upload" block of the dense cluster paths: derive
/// one resident buffer per row slab of the permuted `A` matrix, upload
/// the slabs missing from their home ranks, and return the operand fields
/// the chunk requests reference.
#[allow(clippy::too_many_arguments)]
fn slab_fields<T: WireScalar>(
    res: &mut Residency,
    a: &DenseOpT<T>,
    at: &DenseTensor<T>,
    perm_a: &[usize],
    path: GemmPath,
    ranges: &[(usize, usize)],
    k: usize,
    p: usize,
    reqs: &mut Vec<(usize, Request)>,
) -> Result<AFields<T>> {
    match a.handle() {
        None => Ok(AFields::Inline(at.permute(perm_a)?.into_data())),
        Some(h) => {
            let mut a_mat: Option<Vec<T>> = None;
            let nchunks = ranges.len();
            let mut keys = Vec::with_capacity(nchunks);
            for (i, &(r0, r1)) in ranges.iter().enumerate() {
                let wkey = derive(&[
                    h.key(),
                    T::TAG_A,
                    hseq(perm_a),
                    path as u64,
                    nchunks as u64,
                    i as u64,
                ]);
                if res.add_home(h.key(), wkey, i % p) {
                    let mat = match &a_mat {
                        Some(d) => d,
                        None => {
                            a_mat = Some(at.permute(perm_a)?.into_data());
                            a_mat.as_ref().expect("just set")
                        }
                    };
                    reqs.push((i % p, T::upload_req(wkey, mat[r0 * k..r1 * k].to_vec())));
                }
                keys.push(wkey);
            }
            Ok(AFields::Keys(keys))
        }
    }
}

/// Unwrap a row-panel reply.
fn expect_f64s(reply: Reply) -> Result<Vec<f64>> {
    match reply {
        Reply::F64s(v) => Ok(v),
        other => Err(Error::transport(format!(
            "expected f64 payload, got {other:?}"
        ))),
    }
}

/// Split coords into the three parallel arrays the wire format carries.
fn split_coords(coords: Vec<kernels::Coord>) -> (Vec<u64>, Vec<u64>, Vec<f64>) {
    let mut rows = Vec::with_capacity(coords.len());
    let mut cols = Vec::with_capacity(coords.len());
    let mut vals = Vec::with_capacity(coords.len());
    for (r, c, v) in coords {
        rows.push(r);
        cols.push(c);
        vals.push(v);
    }
    (rows, cols, vals)
}

/// Build the worker request for a truncated SVD of matrix `a`.
fn svd_request(a: &DenseTensor<f64>, field: OpF, spec: TruncSpec) -> Request {
    Request::SvdTrunc {
        rows: a.dims()[0],
        cols: a.dims()[1],
        a: field,
        max_rank: spec.max_rank as u64,
        cutoff: spec.cutoff,
        min_keep: spec.min_keep as u64,
    }
}

/// Build the worker request for a thin QR of matrix `a`.
fn qr_request(a: &DenseTensor<f64>, field: OpF) -> Request {
    Request::QrThin {
        rows: a.dims()[0],
        cols: a.dims()[1],
        a: field,
    }
}

/// Rebuild a [`TruncatedSvd`] from its wire reply.
fn decode_svd(reply: Reply) -> Result<TruncatedSvd> {
    match reply {
        Reply::Svd {
            u_rows,
            rank,
            vt_cols,
            u,
            s,
            vt,
            trunc_err,
            n_discarded,
        } => Ok(TruncatedSvd {
            u: DenseTensor::from_vec([u_rows, rank], u)?,
            s,
            vt: DenseTensor::from_vec([rank, vt_cols], vt)?,
            trunc_err,
            n_discarded: n_discarded as usize,
        }),
        other => Err(Error::transport(format!("expected SVD, got {other:?}"))),
    }
}

/// Rebuild a `(Q, R)` pair from its wire reply.
fn decode_qr(reply: Reply) -> Result<(DenseTensor<f64>, DenseTensor<f64>)> {
    match reply {
        Reply::Factors {
            q_rows,
            q_cols,
            q,
            r_rows,
            r_cols,
            r,
        } => Ok((
            DenseTensor::from_vec([q_rows, q_cols], q)?,
            DenseTensor::from_vec([r_rows, r_cols], r)?,
        )),
        other => Err(Error::transport(format!("expected QR, got {other:?}"))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn operands(seed: u64) -> (DenseTensor<f64>, DenseTensor<f64>) {
        let mut rng = StdRng::seed_from_u64(seed);
        (
            DenseTensor::<f64>::random([24, 6, 30], &mut rng),
            DenseTensor::<f64>::random([30, 6, 18], &mut rng),
        )
    }

    #[test]
    fn threaded_bitwise_equals_sequential() {
        let (a, b) = operands(41);
        let seq = Executor::with_machine(Machine::blue_waters(2), 1, ExecMode::Sequential);
        let thr = Executor::with_machine(Machine::blue_waters(2), 1, ExecMode::Threaded);
        let cs = seq.contract("isj,jtk->istk", &a, &b).unwrap();
        let ct = thr.contract("isj,jtk->istk", &a, &b).unwrap();
        assert_eq!(
            cs.data(),
            ct.data(),
            "dense contraction must be bitwise equal"
        );

        let sa = SparseTensor::from_dense(&a, 0.5);
        let sb = SparseTensor::from_dense(&b, 0.5);
        let ds = seq.contract_sd("isj,jtk->istk", &sa, &b).unwrap();
        let dt = thr.contract_sd("isj,jtk->istk", &sa, &b).unwrap();
        assert_eq!(ds.data(), dt.data(), "sparse-dense must be bitwise equal");

        let ss = seq.contract_ss("isj,jtk->istk", &sa, &sb, None).unwrap();
        let st = thr.contract_ss("isj,jtk->istk", &sa, &sb, None).unwrap();
        assert_eq!(
            ss.to_dense().data(),
            st.to_dense().data(),
            "sparse-sparse must be bitwise equal"
        );
    }

    #[test]
    fn local_matches_plan_execute_exactly() {
        let (a, b) = operands(42);
        let exec = Executor::local();
        let c = exec.contract("isj,jtk->tkis", &a, &b).unwrap();
        let reference = tt_tensor::einsum("isj,jtk->tkis", &a, &b).unwrap();
        assert_eq!(c.data(), reference.data());
    }

    #[test]
    fn sim_time_monotone_in_ranks() {
        let (a, b) = operands(43);
        let mut last = f64::INFINITY;
        for nodes in [1usize, 2, 4, 8] {
            let exec =
                Executor::with_machine(Machine::blue_waters(16), nodes, ExecMode::Sequential);
            for _ in 0..4 {
                exec.contract("isj,jtk->istk", &a, &b).unwrap();
            }
            let t = exec.sim_time().total();
            assert!(t > 0.0);
            assert!(
                t <= last,
                "sim time must not grow with ranks on a compute-bound workload: {t} > {last}"
            );
            last = t;
        }
    }

    #[test]
    fn distributed_costs_are_machine_dependent_and_nonzero() {
        let (a, b) = operands(44);
        let mut totals = Vec::new();
        for machine in [Machine::blue_waters(16), Machine::stampede2(64)] {
            let exec = Executor::with_machine(machine, 2, ExecMode::Sequential);
            exec.contract("isj,jtk->istk", &a, &b).unwrap();
            assert!(exec.total_flops() > 0);
            assert!(exec.supersteps() > 0);
            let sim = exec.sim_time();
            assert!(sim.total() > 0.0 && sim.comm > 0.0);
            totals.push(sim.total());
        }
        assert_ne!(totals[0], totals[1], "different machines, different cost");
    }

    #[test]
    fn local_run_has_zero_comm_and_reset_works() {
        let (a, b) = operands(45);
        let exec = Executor::local();
        exec.contract("isj,jtk->istk", &a, &b).unwrap();
        let sim = exec.sim_time();
        assert_eq!(sim.comm, 0.0);
        assert!(sim.gemm > 0.0);
        assert!(exec.total_flops() > 0);
        exec.reset_costs();
        assert_eq!(exec.total_flops(), 0);
        assert_eq!(exec.sim_time().total(), 0.0);
    }

    #[test]
    fn contract_batch_matches_singles_bitwise_and_in_cost() {
        let mut rng = StdRng::seed_from_u64(47);
        let pairs: Vec<(DenseTensor<f64>, DenseTensor<f64>)> = (0..6)
            .map(|_| {
                (
                    DenseTensor::<f64>::random([9, 4, 7], &mut rng),
                    DenseTensor::<f64>::random([7, 4, 5], &mut rng),
                )
            })
            .collect();
        let single = Executor::with_machine(Machine::blue_waters(2), 2, ExecMode::Sequential);
        let reference: Vec<DenseTensor<f64>> = pairs
            .iter()
            .map(|(a, b)| single.contract("isj,jtk->istk", a, b).unwrap())
            .collect();
        let pair_refs: Vec<(&DenseTensor<f64>, &DenseTensor<f64>)> =
            pairs.iter().map(|(a, b)| (a, b)).collect();
        for mode in [ExecMode::Sequential, ExecMode::Threaded] {
            let batch = Executor::with_machine(Machine::blue_waters(2), 2, mode);
            let out = batch.contract_batch("isj,jtk->istk", &pair_refs).unwrap();
            for (c, r) in out.iter().zip(&reference) {
                assert_eq!(c.data(), r.data(), "{mode:?}");
            }
            // identical cost accounting regardless of mode
            assert_eq!(batch.total_flops(), single.total_flops(), "{mode:?}");
            assert_eq!(batch.supersteps(), single.supersteps(), "{mode:?}");
            assert_eq!(
                batch.sim_time().total().to_bits(),
                single.sim_time().total().to_bits(),
                "{mode:?}: cost charging must be order-deterministic"
            );
        }
    }

    #[test]
    fn contract_batch_rejects_malformed_pairs() {
        // an operand whose order doesn't match the spec must surface as an
        // error, exactly like the single-pair contract() path
        let exec = Executor::local();
        let bad = DenseTensor::<f64>::zeros([2, 3]);
        let ok = DenseTensor::<f64>::zeros([3, 2, 2]);
        assert!(exec
            .contract_batch("isj,jtk->istk", &[(&bad, &ok)])
            .is_err());
        // mismatched contracted dims too
        let a = DenseTensor::<f64>::zeros([2, 2, 5]);
        assert!(exec.contract_batch("isj,jtk->istk", &[(&a, &ok)]).is_err());
    }

    #[test]
    fn factorization_batches_match_singles() {
        let mut rng = StdRng::seed_from_u64(48);
        let mats: Vec<DenseTensor<f64>> = [(20usize, 8usize), (13, 13), (6, 17), (30, 4)]
            .iter()
            .map(|&(m, n)| DenseTensor::<f64>::random([m, n], &mut rng))
            .collect();
        let spec = TruncSpec {
            max_rank: 6,
            cutoff: 0.0,
            min_keep: 1,
        };
        let single = Executor::with_machine(Machine::stampede2(4), 1, ExecMode::Sequential);
        let svds_ref: Vec<_> = mats
            .iter()
            .map(|m| single.svd_trunc(m, spec).unwrap())
            .collect();
        let qrs_ref: Vec<_> = mats.iter().map(|m| single.qr(m).unwrap()).collect();
        for mode in [ExecMode::Sequential, ExecMode::Threaded] {
            let batch = Executor::with_machine(Machine::stampede2(4), 1, mode);
            let svds = batch.svd_trunc_batch(mats.clone(), spec).unwrap();
            for (s, r) in svds.iter().zip(&svds_ref) {
                assert_eq!(s.s, r.s, "{mode:?}");
                assert_eq!(s.u.data(), r.u.data(), "{mode:?}");
                assert_eq!(s.vt.data(), r.vt.data(), "{mode:?}");
            }
            let qrs = batch.qr_batch(mats.clone()).unwrap();
            for ((q, rr), (q2, r2)) in qrs.iter().zip(&qrs_ref) {
                assert_eq!(q.data(), q2.data(), "{mode:?}");
                assert_eq!(rr.data(), r2.data(), "{mode:?}");
            }
            assert_eq!(batch.total_flops(), single.total_flops(), "{mode:?}");
            assert_eq!(
                batch.sim_time().total().to_bits(),
                single.sim_time().total().to_bits(),
                "{mode:?}"
            );
        }
    }

    #[test]
    fn handle_contractions_bitwise_match_value_path_in_process() {
        let (a, b) = operands(60);
        let sa = SparseTensor::from_dense(&a, 0.5);
        let sb = SparseTensor::from_dense(&b, 0.5);
        for mode in [ExecMode::Sequential, ExecMode::Threaded] {
            let val = Executor::with_machine(Machine::blue_waters(2), 2, mode);
            let han = Executor::with_machine(Machine::blue_waters(2), 2, mode);
            let ha = han.upload(&a);
            let hb = han.upload(&b);
            let hsa = han.upload_sparse(&sa);
            let hsb = han.upload_sparse(&sb);

            let c_val = val.contract("isj,jtk->istk", &a, &b).unwrap();
            let c_han = han
                .contract_h("isj,jtk->istk", (&ha).into(), (&hb).into())
                .unwrap();
            assert_eq!(c_val.data(), c_han.data(), "{mode:?} dense");

            let d_val = val.contract_sd("isj,jtk->istk", &sa, &b).unwrap();
            let d_han = han
                .contract_sd_h("isj,jtk->istk", (&hsa).into(), (&hb).into())
                .unwrap();
            assert_eq!(d_val.data(), d_han.data(), "{mode:?} sd");

            let s_val = val.contract_ss("isj,jtk->istk", &sa, &sb, None).unwrap();
            let s_han = han
                .contract_ss_h("isj,jtk->istk", (&hsa).into(), (&hsb).into(), None)
                .unwrap();
            assert_eq!(
                s_val.to_dense().data(),
                s_han.to_dense().data(),
                "{mode:?} ss"
            );

            han.free(&ha).unwrap();
            han.free(&hb).unwrap();
            han.free(&hsa).unwrap();
            han.free(&hsb).unwrap();
        }
    }

    #[test]
    fn handle_reuse_charges_less_than_value_path() {
        // second contraction against the same handle: no β for the
        // resident operand, so critical-path bytes grow by strictly less
        // than a value-path repeat
        let (a, b) = operands(61);
        let exec = Executor::with_machine(Machine::blue_waters(2), 2, ExecMode::Sequential);
        let hb = exec.upload(&b);
        exec.contract_h("isj,jtk->istk", (&a).into(), (&hb).into())
            .unwrap();
        let after_first = exec.tracker().lock().bytes_critical;
        exec.contract_h("isj,jtk->istk", (&a).into(), (&hb).into())
            .unwrap();
        let hit_delta = exec.tracker().lock().bytes_critical - after_first;

        let val = Executor::with_machine(Machine::blue_waters(2), 2, ExecMode::Sequential);
        val.contract("isj,jtk->istk", &a, &b).unwrap();
        let value_delta = val.tracker().lock().bytes_critical;
        assert!(
            hit_delta < value_delta,
            "cache hit must drop β: {hit_delta} vs {value_delta}"
        );
        // flops are identical either way
        assert_eq!(exec.total_flops(), 2 * val.total_flops());
        exec.free(&hb).unwrap();
        // freeing twice is an error
        assert!(exec.free(&hb).is_err());
    }

    #[test]
    fn handle_type_mismatch_is_an_error() {
        let (a, _) = operands(62);
        let exec = Executor::local();
        let h = exec.upload(&a);
        assert!(exec
            .contract_sd_h("isj,jtk->istk", (&h).into(), (&a).into())
            .is_err());
        exec.free(&h).unwrap();
    }

    #[test]
    fn contract_c64_matches_einsum_and_handles_hit() {
        let (ar, br) = operands(63);
        let a = ar.to_complex();
        let b = br.to_complex();
        let exec = Executor::with_machine(Machine::blue_waters(2), 1, ExecMode::Sequential);
        let reference = tt_tensor::einsum("isj,jtk->istk", &a, &b).unwrap();
        let c = exec
            .contract_c64("isj,jtk->istk", (&a).into(), (&b).into())
            .unwrap();
        assert_eq!(c.data(), reference.data());
        let ha = exec.upload_c64(&a);
        let hb = exec.upload_c64(&b);
        let ch = exec
            .contract_c64("isj,jtk->istk", (&ha).into(), (&hb).into())
            .unwrap();
        assert_eq!(ch.data(), reference.data());
        exec.free(&ha).unwrap();
        exec.free(&hb).unwrap();
    }

    #[cfg(unix)]
    #[test]
    fn multi_process_backend_bitwise_matches_sequential() {
        let spawn = SpawnSpec::SelfExec(vec!["spawned_worker_entry".into()]);
        let seq = Executor::with_machine(Machine::blue_waters(2), 2, ExecMode::Sequential);
        let mp = Executor::multi_process(Machine::blue_waters(2), 2, 2, spawn).unwrap();
        assert!(matches!(
            mp.backend(),
            Backend::MultiProcess { workers: 2, .. }
        ));

        let (a, b) = operands(49);
        let cs = seq.contract("isj,jtk->istk", &a, &b).unwrap();
        let cm = mp.contract("isj,jtk->istk", &a, &b).unwrap();
        assert_eq!(
            cs.data(),
            cm.data(),
            "dense over processes must be bitwise equal"
        );

        let sa = SparseTensor::from_dense(&a, 0.5);
        let sb = SparseTensor::from_dense(&b, 0.5);
        let ds = seq.contract_sd("isj,jtk->istk", &sa, &b).unwrap();
        let dm = mp.contract_sd("isj,jtk->istk", &sa, &b).unwrap();
        assert_eq!(ds.data(), dm.data(), "sparse-dense over processes");

        let ss = seq.contract_ss("isj,jtk->istk", &sa, &sb, None).unwrap();
        let sm = mp.contract_ss("isj,jtk->istk", &sa, &sb, None).unwrap();
        assert_eq!(ss.to_dense().data(), sm.to_dense().data(), "sparse-sparse");

        let mat = DenseTensor::from_vec([a.len() / 6, 6], a.data().to_vec()).unwrap();
        let spec = TruncSpec {
            max_rank: 4,
            cutoff: 0.0,
            min_keep: 1,
        };
        let ts = seq.svd_trunc(&mat, spec).unwrap();
        let tm = mp.svd_trunc(&mat, spec).unwrap();
        assert_eq!(ts.s, tm.s);
        assert_eq!(ts.u.data(), tm.u.data());
        assert_eq!(ts.vt.data(), tm.vt.data());
        assert_eq!(ts.trunc_err.to_bits(), tm.trunc_err.to_bits());
        let (qs, rs) = seq.qr(&mat).unwrap();
        let (qm, rm) = mp.qr(&mat).unwrap();
        assert_eq!(qs.data(), qm.data());
        assert_eq!(rs.data(), rm.data());

        // identical cost accounting: same machine model, same charges
        assert_eq!(seq.total_flops(), mp.total_flops());
        assert_eq!(seq.supersteps(), mp.supersteps());
        assert_eq!(
            seq.sim_time().total().to_bits(),
            mp.sim_time().total().to_bits(),
            "cost charging must be backend-independent"
        );
        // the data plane actually moved bytes — and only on the real backend
        assert_eq!(seq.operand_bytes(), 0);
        assert!(mp.operand_bytes() > 0);
        assert!(mp.result_bytes() > 0);
    }

    #[cfg(unix)]
    #[test]
    fn multi_process_contract_batch_matches_sequential() {
        let spawn = SpawnSpec::SelfExec(vec!["spawned_worker_entry".into()]);
        let mp = Executor::multi_process(Machine::blue_waters(2), 1, 3, spawn).unwrap();
        let seq = Executor::with_machine(Machine::blue_waters(2), 1, ExecMode::Sequential);
        let mut rng = StdRng::seed_from_u64(50);
        let pairs: Vec<(DenseTensor<f64>, DenseTensor<f64>)> = (0..5)
            .map(|_| {
                (
                    DenseTensor::<f64>::random([8, 3, 6], &mut rng),
                    DenseTensor::<f64>::random([6, 3, 4], &mut rng),
                )
            })
            .collect();
        let pair_refs: Vec<(&DenseTensor<f64>, &DenseTensor<f64>)> =
            pairs.iter().map(|(a, b)| (a, b)).collect();
        let out_seq = seq.contract_batch("isj,jtk->istk", &pair_refs).unwrap();
        let out_mp = mp.contract_batch("isj,jtk->istk", &pair_refs).unwrap();
        for (s, m) in out_seq.iter().zip(&out_mp) {
            assert_eq!(s.data(), m.data());
        }
        let mats: Vec<DenseTensor<f64>> = (0..4)
            .map(|i| DenseTensor::<f64>::random([10 + i, 5], &mut rng))
            .collect();
        let spec = TruncSpec {
            max_rank: 3,
            cutoff: 0.0,
            min_keep: 1,
        };
        let svd_seq = seq.svd_trunc_batch(mats.clone(), spec).unwrap();
        let svd_mp = mp.svd_trunc_batch(mats.clone(), spec).unwrap();
        for (s, m) in svd_seq.iter().zip(&svd_mp) {
            assert_eq!(s.s, m.s);
            assert_eq!(s.u.data(), m.u.data());
            assert_eq!(s.vt.data(), m.vt.data());
        }
        let qr_seq = seq.qr_batch(mats.clone()).unwrap();
        let qr_mp = mp.qr_batch(mats).unwrap();
        for ((q1, r1), (q2, r2)) in qr_seq.iter().zip(&qr_mp) {
            assert_eq!(q1.data(), q2.data());
            assert_eq!(r1.data(), r2.data());
        }
        assert_eq!(seq.total_flops(), mp.total_flops());
        assert_eq!(
            seq.sim_time().total().to_bits(),
            mp.sim_time().total().to_bits()
        );
    }

    #[cfg(unix)]
    #[test]
    fn multi_process_handle_reuse_ships_zero_operand_bytes() {
        let spawn = SpawnSpec::SelfExec(vec!["spawned_worker_entry".into()]);
        let mp = Executor::multi_process(Machine::blue_waters(2), 1, 2, spawn).unwrap();
        let (a, b) = operands(64);
        let ha = mp.upload(&a);
        let hb = mp.upload(&b);
        let c1 = mp
            .contract_h("isj,jtk->istk", (&ha).into(), (&hb).into())
            .unwrap();
        let first = mp.operand_bytes();
        let c2 = mp
            .contract_h("isj,jtk->istk", (&ha).into(), (&hb).into())
            .unwrap();
        let second = mp.operand_bytes() - first;
        assert_eq!(c1.data(), c2.data());
        // the repeat ships only chunk headers and store keys — orders of
        // magnitude below the first (which uploaded both operands)
        assert!(
            second * 20 < first,
            "resident repeat must ship almost nothing: first {first}, second {second}"
        );
        // value-passing the same contraction ships the operands again
        let c3 = mp.contract("isj,jtk->istk", &a, &b).unwrap();
        assert_eq!(c1.data(), c3.data());
        let third = mp.operand_bytes() - first - second;
        assert!(third > 10 * second);
        // worker stores report pinned residency; free unpins everywhere
        let pinned: u64 = mp
            .worker_cache_stats()
            .unwrap()
            .iter()
            .map(|&(_, _, p)| p)
            .sum();
        assert!(pinned > 0);
        mp.free(&ha).unwrap();
        mp.free(&hb).unwrap();
        let pinned_after: u64 = mp
            .worker_cache_stats()
            .unwrap()
            .iter()
            .map(|&(_, _, p)| p)
            .sum();
        assert_eq!(pinned_after, 0);
    }

    #[cfg(unix)]
    #[test]
    fn multi_process_resident_footprint_stays_bounded() {
        // a long run of upload → contract → free cycles must not grow the
        // worker stores beyond the configured cap
        let spawn = SpawnSpec::SelfExec(vec!["spawned_worker_entry".into()]);
        let mp = Executor::multi_process(Machine::local(), 1, 2, spawn).unwrap();
        let cap = 64 * 1024;
        mp.set_worker_cache_cap(cap).unwrap();
        let mut rng = StdRng::seed_from_u64(65);
        for _ in 0..12 {
            let a = DenseTensor::<f64>::random([12, 18], &mut rng);
            let b = DenseTensor::<f64>::random([18, 9], &mut rng);
            let hb = mp.upload(&b);
            let c1 = mp
                .contract_h("ik,kj->ij", (&a).into(), (&hb).into())
                .unwrap();
            let c2 = mp
                .contract_h("ik,kj->ij", (&a).into(), (&hb).into())
                .unwrap();
            assert_eq!(c1.data(), c2.data());
            mp.free(&hb).unwrap();
        }
        for (bytes, _, pinned) in mp.worker_cache_stats().unwrap() {
            assert!(bytes <= cap, "resident footprint {bytes} exceeds cap {cap}");
            assert_eq!(pinned, 0, "all handles were freed");
        }
    }

    #[test]
    fn handle_returning_contractions_match_value_paths() {
        let (a, b) = operands(70);
        let exec = Executor::with_machine(Machine::blue_waters(2), 2, ExecMode::Sequential);
        let c_ref = exec.contract("isj,jtk->istk", &a, &b).unwrap();
        let h = exec
            .contract_to_h("isj,jtk->istk", (&a).into(), (&b).into())
            .unwrap();
        assert_eq!(h.dims(), c_ref.dims());
        assert!(
            exec.result_provenance(&h).is_some(),
            "resident results carry produced-by provenance"
        );
        let c = exec.download(h).unwrap();
        assert_eq!(c.data(), c_ref.data(), "dense");

        let sa = SparseTensor::from_dense(&a, 0.5);
        let d_ref = exec.contract_sd("isj,jtk->istk", &sa, &b).unwrap();
        let h = exec
            .contract_sd_to_h("isj,jtk->istk", (&sa).into(), (&b).into())
            .unwrap();
        let d = exec.download(h).unwrap();
        assert_eq!(d.data(), d_ref.data(), "sparse-dense");

        let (ac, bc) = (a.to_complex(), b.to_complex());
        let e_ref = exec
            .contract_c64("isj,jtk->istk", (&ac).into(), (&bc).into())
            .unwrap();
        let h = exec
            .contract_c64_to_h("isj,jtk->istk", (&ac).into(), (&bc).into())
            .unwrap();
        let e = exec.download_c64(h).unwrap();
        assert_eq!(e.data(), e_ref.data(), "Complex64");
    }

    #[test]
    fn chains_compose_prev_acc_and_res_bitwise() {
        let mut rng = StdRng::seed_from_u64(71);
        let a = DenseTensor::<f64>::random([6, 8], &mut rng);
        let b = DenseTensor::<f64>::random([8, 5], &mut rng);
        let c = DenseTensor::<f64>::random([5, 7], &mut rng);
        let exec = Executor::with_machine(Machine::blue_waters(2), 2, ExecMode::Sequential);
        let t_ref = exec.contract("ik,kj->ij", &a, &b).unwrap();
        let y_ref = exec.contract("ik,kj->ij", &t_ref, &c).unwrap();

        // (a·b)·c with the intermediate consumed worker-side via Prev
        let mut out = exec
            .chain(&[
                ChainStep {
                    spec: "ik,kj->ij",
                    a: ChainSrc::Dense((&a).into()),
                    b: ChainSrc::Dense((&b).into()),
                    acc: None,
                },
                ChainStep {
                    spec: "ik,kj->ij",
                    a: ChainSrc::Prev(0),
                    b: ChainSrc::Dense((&c).into()),
                    acc: None,
                },
            ])
            .unwrap();
        let h_y = out.pop().unwrap().unwrap();
        let h_t = out.pop().unwrap().unwrap();
        assert_eq!(exec.download(h_y).unwrap().data(), y_ref.data());
        exec.free_result(h_t).unwrap();

        // accumulate folds partials in submission order (first stored)
        let mut out = exec
            .chain(&[
                ChainStep {
                    spec: "ik,kj->ij",
                    a: ChainSrc::Dense((&a).into()),
                    b: ChainSrc::Dense((&b).into()),
                    acc: None,
                },
                ChainStep {
                    spec: "ik,kj->ij",
                    a: ChainSrc::Dense((&a).into()),
                    b: ChainSrc::Dense((&b).into()),
                    acc: Some(0),
                },
            ])
            .unwrap();
        assert!(out[1].is_none(), "accumulate steps fold into their target");
        let h = out[0].take().unwrap();
        let mut acc_ref = t_ref.clone();
        acc_ref.axpy(1.0, &t_ref).unwrap();
        assert_eq!(exec.download(h).unwrap().data(), acc_ref.data());

        // results of earlier chains feed later ones via Res
        let h1 = exec
            .contract_to_h("ik,kj->ij", (&a).into(), (&b).into())
            .unwrap();
        let mut out = exec
            .chain(&[ChainStep {
                spec: "ik,kj->ij",
                a: ChainSrc::Res(&h1),
                b: ChainSrc::Dense((&c).into()),
                acc: None,
            }])
            .unwrap();
        let h_y = out.pop().unwrap().unwrap();
        assert_eq!(exec.download(h_y).unwrap().data(), y_ref.data());
        exec.free_result(h1).unwrap();

        // malformed chains surface as errors
        assert!(
            exec.chain(&[ChainStep {
                spec: "ik,kj->ij",
                a: ChainSrc::Prev(3),
                b: ChainSrc::Dense((&c).into()),
                acc: None,
            }])
            .is_err(),
            "forward Prev reference"
        );
        assert!(
            exec.chain(&[
                ChainStep {
                    spec: "ik,kj->ij",
                    a: ChainSrc::Dense((&a).into()),
                    b: ChainSrc::Dense((&b).into()),
                    acc: None,
                },
                ChainStep {
                    spec: "ik,kj->ij",
                    a: ChainSrc::Dense((&a).into()),
                    b: ChainSrc::Dense((&b).into()),
                    acc: Some(0),
                },
                ChainStep {
                    spec: "ik,kj->ij",
                    a: ChainSrc::Dense((&a).into()),
                    b: ChainSrc::Dense((&b).into()),
                    acc: Some(1),
                },
            ])
            .is_err(),
            "accumulating into an accumulate step"
        );
    }

    #[cfg(unix)]
    #[test]
    fn multi_process_chains_bitwise_and_collapse_result_bytes() {
        let spawn = SpawnSpec::SelfExec(vec!["spawned_worker_entry".into()]);
        let mp = Executor::multi_process(Machine::blue_waters(2), 1, 2, spawn).unwrap();
        let mut rng = StdRng::seed_from_u64(72);
        let a = DenseTensor::<f64>::random([24, 30], &mut rng);
        let b = DenseTensor::<f64>::random([30, 18], &mut rng);
        let c = DenseTensor::<f64>::random([18, 12], &mut rng);

        // value path: both intermediates round-trip through the driver
        let before = mp.result_bytes();
        let t = mp.contract("ik,kj->ij", &a, &b).unwrap();
        let y_ref = mp.contract("ik,kj->ij", &t, &c).unwrap();
        let value_result_bytes = mp.result_bytes() - before;

        // chained: only the final download returns bytes
        let before = mp.result_bytes();
        let mut out = mp
            .chain(&[
                ChainStep {
                    spec: "ik,kj->ij",
                    a: ChainSrc::Dense((&a).into()),
                    b: ChainSrc::Dense((&b).into()),
                    acc: None,
                },
                ChainStep {
                    spec: "ik,kj->ij",
                    a: ChainSrc::Prev(0),
                    b: ChainSrc::Dense((&c).into()),
                    acc: None,
                },
            ])
            .unwrap();
        let h_y = out.pop().unwrap().unwrap();
        let h_t = out.pop().unwrap().unwrap();
        let y = mp.download(h_y).unwrap();
        mp.free_result(h_t).unwrap();
        let chain_result_bytes = mp.result_bytes() - before;
        assert_eq!(y.data(), y_ref.data(), "chained must be bitwise equal");
        assert!(
            2 * chain_result_bytes < value_result_bytes,
            "chaining must collapse driver result bytes: chain {chain_result_bytes} vs \
             value {value_result_bytes}"
        );

        // results created by separate chains land on different anchor
        // ranks; combining them exercises the explicit redistribute
        // superstep and still matches the value path bitwise
        let d = DenseTensor::<f64>::random([12, 9], &mut rng);
        let h1 = mp
            .contract_to_h("ik,kj->ij", (&a).into(), (&b).into())
            .unwrap();
        let h2 = mp
            .contract_to_h("ik,kj->ij", (&c).into(), (&d).into())
            .unwrap();
        let fused_ref = mp
            .contract("ik,kj->ij", &t, &mp.contract("ik,kj->ij", &c, &d).unwrap())
            .unwrap();
        let mut out = mp
            .chain(&[ChainStep {
                spec: "ik,kj->ij",
                a: ChainSrc::Res(&h1),
                b: ChainSrc::Res(&h2),
                acc: None,
            }])
            .unwrap();
        let h = out.pop().unwrap().unwrap();
        assert_eq!(mp.download(h).unwrap().data(), fused_ref.data());
        mp.free_results(vec![h1, h2]).unwrap();

        // after download/free everything is unpinned on the workers
        let pinned: u64 = mp
            .worker_cache_stats()
            .unwrap()
            .iter()
            .map(|&(_, _, p)| p)
            .sum();
        assert_eq!(pinned, 0, "chain intermediates unpin on download/free");
    }

    #[test]
    fn tall_panels_route_through_tsqr() {
        let mut rng = StdRng::seed_from_u64(73);
        let a = DenseTensor::<f64>::random([256, 8], &mut rng);
        let exec = Executor::with_machine(Machine::blue_waters(2), 2, ExecMode::Sequential);
        let (q, r) = exec.qr(&a).unwrap();
        // bitwise-identical to the TSQR tree over the same rank count
        let reference = Executor::with_machine(Machine::blue_waters(2), 2, ExecMode::Sequential);
        let (q_ref, r_ref) = crate::tsqr::tsqr(&a, &reference.comm()).unwrap();
        assert_eq!(q.data(), q_ref.data());
        assert_eq!(r.data(), r_ref.data());
        // and equal to the direct factorization up to per-column sign
        let (q_d, r_d) = tt_linalg::qr_thin(&a).unwrap();
        for j in 0..8 {
            let sign = (r.at(&[j, j]) * r_d.at(&[j, j])).signum();
            for jj in j..8 {
                assert!(
                    (r.at(&[j, jj]) - sign * r_d.at(&[j, jj])).abs() < 1e-9,
                    "R row {j} beyond sign"
                );
            }
            for i in 0..256 {
                assert!((q.at(&[i, j]) - sign * q_d.at(&[i, j])).abs() < 1e-9);
            }
        }

        // tall SVD: singular values match the direct path to rounding
        let spec = TruncSpec {
            max_rank: 8,
            cutoff: 0.0,
            min_keep: 1,
        };
        let t = exec.svd_trunc(&a, spec).unwrap();
        let t_ref = tt_linalg::svd_trunc(&a, spec).unwrap();
        assert_eq!(t.s.len(), t_ref.s.len());
        for (x, y) in t.s.iter().zip(&t_ref.s) {
            assert!((x - y).abs() < 1e-9 * y.max(1.0), "{x} vs {y}");
        }

        // sub-threshold panels keep the direct path bitwise
        let b = DenseTensor::<f64>::random([40, 12], &mut rng);
        let (qb, rb) = exec.qr(&b).unwrap();
        let (qb_d, rb_d) = tt_linalg::qr_thin(&b).unwrap();
        assert_eq!(qb.data(), qb_d.data());
        assert_eq!(rb.data(), rb_d.data());
    }

    #[test]
    fn svd_and_qr_are_exact_and_charged() {
        let mut rng = StdRng::seed_from_u64(46);
        let a = DenseTensor::<f64>::random([40, 12], &mut rng);
        let exec = Executor::with_machine(Machine::stampede2(4), 1, ExecMode::Sequential);
        let (q, r) = exec.qr(&a).unwrap();
        let (q2, r2) = tt_linalg::qr_thin(&a).unwrap();
        assert_eq!(q.data(), q2.data());
        assert_eq!(r.data(), r2.data());
        let spec = TruncSpec {
            max_rank: 8,
            cutoff: 0.0,
            min_keep: 1,
        };
        let t = exec.svd_trunc(&a, spec).unwrap();
        assert_eq!(t.s.len(), 8);
        assert!(exec.sim_time().svd > 0.0);
        assert!(exec.supersteps() > 0);
    }

    #[test]
    fn factorization_handle_batches_match_value_batches() {
        let mut rng = StdRng::seed_from_u64(66);
        let mats: Vec<DenseTensor<f64>> = [(20usize, 8usize), (13, 13), (30, 4)]
            .iter()
            .map(|&(m, n)| DenseTensor::<f64>::random([m, n], &mut rng))
            .collect();
        let spec = TruncSpec {
            max_rank: 6,
            cutoff: 0.0,
            min_keep: 1,
        };
        let exec = Executor::with_machine(Machine::stampede2(4), 1, ExecMode::Sequential);
        let svds_ref = exec.svd_trunc_batch(mats.clone(), spec).unwrap();
        let qrs_ref = exec.qr_batch(mats.clone()).unwrap();
        let handles: Vec<OpHandle> = mats.iter().map(|m| exec.upload(m)).collect();
        let hrefs: Vec<&OpHandle> = handles.iter().collect();
        let svds = exec.svd_trunc_batch_h(&hrefs, spec).unwrap();
        for (s, r) in svds.iter().zip(&svds_ref) {
            assert_eq!(s.s, r.s);
            assert_eq!(s.u.data(), r.u.data());
            assert_eq!(s.vt.data(), r.vt.data());
        }
        let qrs = exec.qr_batch_h(&hrefs).unwrap();
        for ((q, rr), (q2, r2)) in qrs.iter().zip(&qrs_ref) {
            assert_eq!(q.data(), q2.data());
            assert_eq!(rr.data(), r2.data());
        }
        for h in &handles {
            exec.free(h).unwrap();
        }
    }
}

//! The execution front-end: every distributed-capable operation in the
//! workspace goes through an [`Executor`].
//!
//! Numerics are exact (the executor computes locally with deterministic
//! kernels); the *cost* of running the operation on `p` ranks of the
//! configured [`Machine`] is charged to the shared [`CostTracker`]: a
//! 2-D-grid SUMMA volume per contraction, TTGT packing traffic, roofline
//! compute time, tile-imbalance idle time and per-operation supersteps.

use crate::comm::Comm;
use crate::cost::{CostTracker, SimTime};
use crate::kernels;
use crate::machine::Machine;
use crate::pool::ThreadPool;
use crate::{process_grid, Result};
use parking_lot::Mutex;
use std::sync::Arc;
use tt_linalg::{TruncSpec, TruncatedSvd};
use tt_tensor::einsum::ContractPlan;
use tt_tensor::{DenseTensor, SparseTensor};

/// How the executor runs its local kernels.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum ExecMode {
    /// Single-threaded reference execution.
    Sequential,
    /// Kernels row-chunked across a worker pool; results are
    /// bitwise-identical to [`ExecMode::Sequential`].
    Threaded,
}

/// Per-operation task-mapping overhead (seconds) — the CTF-style cost of
/// building the contraction mapping, visible as "%map" in Fig. 7.
const MAP_OVERHEAD_S: f64 = 2.0e-7;

/// The simulated-distributed executor.
pub struct Executor {
    machine: Machine,
    nodes: usize,
    ranks: usize,
    mode: ExecMode,
    tracker: Arc<Mutex<CostTracker>>,
    pool: Option<Arc<ThreadPool>>,
}

impl Executor {
    /// Serial baseline: one rank of the free-communication local machine.
    pub fn local() -> Self {
        Self::with_machine(Machine::local(), 1, ExecMode::Sequential)
    }

    /// Executor over `nodes` nodes of `machine` (total ranks =
    /// `nodes × machine.procs_per_node`) in the given mode.
    pub fn with_machine(machine: Machine, nodes: usize, mode: ExecMode) -> Self {
        let nodes = nodes.max(1);
        let ranks = nodes * machine.procs_per_node.max(1);
        let tracker = Arc::new(Mutex::new(CostTracker::new(machine.clone(), ranks)));
        let pool = match mode {
            ExecMode::Sequential => None,
            ExecMode::Threaded => Some(Arc::new(ThreadPool::default_size())),
        };
        Self {
            machine,
            nodes,
            ranks,
            mode,
            tracker,
            pool,
        }
    }

    /// The machine model being simulated.
    pub fn machine(&self) -> &Machine {
        &self.machine
    }

    /// Simulated node count.
    pub fn nodes(&self) -> usize {
        self.nodes
    }

    /// Total simulated ranks.
    pub fn ranks(&self) -> usize {
        self.ranks
    }

    /// Execution mode.
    pub fn mode(&self) -> ExecMode {
        self.mode
    }

    /// The shared cost tracker.
    pub fn tracker(&self) -> &Arc<Mutex<CostTracker>> {
        &self.tracker
    }

    /// A communicator over this executor's ranks charging into its tracker.
    pub fn comm(&self) -> Comm {
        Comm::new(self.ranks, self.mode, Arc::clone(&self.tracker))
    }

    /// Flops executed through this executor since the last reset.
    pub fn total_flops(&self) -> u64 {
        self.tracker.lock().flops
    }

    /// BSP supersteps on the critical path since the last reset.
    pub fn supersteps(&self) -> u64 {
        self.tracker.lock().supersteps
    }

    /// Simulated time breakdown since the last reset.
    pub fn sim_time(&self) -> SimTime {
        self.tracker.lock().sim
    }

    /// Zero all cost counters.
    pub fn reset_costs(&self) {
        self.tracker.lock().reset();
    }

    fn pool(&self) -> Option<&ThreadPool> {
        self.pool.as_deref()
    }

    /// Charge compute + imbalance + transpose + SUMMA communication for a
    /// contraction moving `words_a`/`words_b`/`words_c` stored words with
    /// an `m × n` fused output grid, executing `flops` flops. `sparse`
    /// selects the sparse roofline and time bucket.
    #[allow(clippy::too_many_arguments)]
    fn charge_contraction(
        &self,
        words_a: usize,
        words_b: usize,
        words_c: usize,
        m: usize,
        n: usize,
        flops: u64,
        sparse: bool,
    ) {
        let p = self.ranks as f64;
        let n_eff = ((flops.max(2) as f64) / 2.0).cbrt();
        let n_loc = (n_eff / p.sqrt()).max(1.0);
        let rate = if sparse {
            self.machine.sparse_rate(n_loc)
        } else {
            self.machine.dense_rate(n_loc)
        };
        let t_compute = flops as f64 / (rate * p);

        let mut tr = self.tracker.lock();
        tr.flops += flops;
        if sparse {
            tr.sim.sparse += t_compute;
        } else {
            tr.sim.gemm += t_compute;
        }

        // TTGT packing: operands + result through memory twice.
        let moved_bytes = 8.0 * 2.0 * (words_a + words_b + words_c) as f64;
        tr.sim.transpose += moved_bytes / (self.machine.rank_mem_bw() * p);
        tr.sim.other += MAP_OVERHEAD_S;

        if self.ranks > 1 {
            // Tile imbalance on the process grid.
            let (pr, pc) = process_grid(self.ranks);
            let lambda = (m.div_ceil(pr) * pr) as f64 / m.max(1) as f64
                * ((n.div_ceil(pc) * pc) as f64 / n.max(1) as f64)
                - 1.0;
            tr.sim.imbalance += t_compute * lambda.max(0.0);

            // SUMMA: both operand panels travel √p-reduced, the result is
            // reduced once.
            let words =
                ((words_a + words_b) as f64 / p.sqrt() + words_c as f64 / p) as u64;
            tr.charge_superstep(8 * words);
        }
    }

    /// Distributed dense × dense contraction (einsum grammar).
    pub fn contract(
        &self,
        spec: &str,
        a: &DenseTensor<f64>,
        b: &DenseTensor<f64>,
    ) -> Result<DenseTensor<f64>> {
        let plan = ContractPlan::parse(spec)?;
        let c = kernels::dense_contract(&plan, a, b, self.pool())?;
        let (m, k, n) = kernels::fused_dims(&plan, a.dims(), b.dims());
        let flops = plan.flop_count(a.dims(), b.dims());
        self.charge_contraction(m * k, k * n, m * n, m, n, flops, false);
        Ok(c)
    }

    /// Contract many independent operand pairs with one spec — the
    /// block-pair fan-out of the list algorithm.
    ///
    /// In [`ExecMode::Threaded`] every pair runs as its own pool job
    /// (each internally sequential: pair-level parallelism replaces
    /// row-level parallelism, so per-element accumulation order is
    /// unchanged). Results come back in submission order and costs are
    /// charged in that same order on the caller thread, keeping both the
    /// numerics and the cost counters bitwise-deterministic.
    pub fn contract_batch(
        &self,
        spec: &str,
        pairs: &[(&DenseTensor<f64>, &DenseTensor<f64>)],
    ) -> Result<Vec<DenseTensor<f64>>> {
        let plan = Arc::new(ContractPlan::parse(spec)?);
        // validate every pair up front (fused_dims/flop_count index by
        // plan positions and would panic on mismatched operand orders),
        // and snapshot the cost parameters
        let mut charges = Vec::with_capacity(pairs.len());
        for (a, b) in pairs {
            plan.output_dims(a.dims(), b.dims())?;
            let (m, k, n) = kernels::fused_dims(&plan, a.dims(), b.dims());
            charges.push((m, k, n, plan.flop_count(a.dims(), b.dims())));
        }
        let results: Vec<Result<DenseTensor<f64>>> = match self.pool() {
            Some(pool) if pairs.len() > 1 => {
                // jobs need owned operands ('static); the clone is the
                // price of pair-level parallelism, paid only here
                let jobs = pairs
                    .iter()
                    .map(|(a, b)| {
                        let (a, b) = ((*a).clone(), (*b).clone());
                        let plan = Arc::clone(&plan);
                        let job: Box<dyn FnOnce() -> Result<DenseTensor<f64>> + Send> =
                            Box::new(move || kernels::dense_contract(&plan, &a, &b, None));
                        job
                    })
                    .collect();
                pool.run(jobs)
            }
            // sequential mode, or a single pair: no copies; row-level
            // parallelism (bitwise-identical by construction) still
            // applies if a pool is present
            _ => pairs
                .iter()
                .map(|(a, b)| kernels::dense_contract(&plan, a, b, self.pool()))
                .collect(),
        };
        let mut out = Vec::with_capacity(results.len());
        for (r, (m, k, n, flops)) in results.into_iter().zip(charges) {
            out.push(r?);
            self.charge_contraction(m * k, k * n, m * n, m, n, flops, false);
        }
        Ok(out)
    }

    /// Distributed sparse × dense contraction (the *sparse-dense*
    /// algorithm's kernel): flattened-sparse `a` against densified `b`.
    pub fn contract_sd(
        &self,
        spec: &str,
        a: &SparseTensor<f64>,
        b: &DenseTensor<f64>,
    ) -> Result<DenseTensor<f64>> {
        let plan = ContractPlan::parse(spec)?;
        let (c, flops) = kernels::sd_contract(&plan, a, b, self.pool())?;
        let (m, k, n) = kernels::fused_dims(&plan, a.dims(), b.dims());
        // The sparse operand moves its stored entries (offset + value),
        // the dense operand and result their full volume.
        self.charge_contraction(2 * a.nnz(), k * n, m * n, m, n, flops, true);
        Ok(c)
    }

    /// Distributed sparse × sparse contraction with optional pre-computed
    /// output sparsity `mask` (output linear offsets that may be nonzero).
    pub fn contract_ss(
        &self,
        spec: &str,
        a: &SparseTensor<f64>,
        b: &SparseTensor<f64>,
        mask: Option<&[u64]>,
    ) -> Result<SparseTensor<f64>> {
        let plan = ContractPlan::parse(spec)?;
        let (c, flops) = kernels::ss_contract(&plan, a, b, mask, self.pool())?;
        let (m, _k, n) = kernels::fused_dims(&plan, a.dims(), b.dims());
        // All three tensors move only their stored entries (offset + value).
        self.charge_contraction(2 * a.nnz(), 2 * b.nnz(), 2 * c.nnz(), m, n, flops, true);
        Ok(c)
    }

    /// Distributed truncated SVD of a matrix (the ScaLAPACK `pdgesvd`
    /// stand-in used under the block SVD).
    pub fn svd_trunc(&self, a: &DenseTensor<f64>, spec: TruncSpec) -> Result<TruncatedSvd> {
        let out = tt_linalg::svd_trunc(a, spec)?;
        self.charge_factorization(a.dims(), 14.0);
        Ok(out)
    }

    /// Distributed thin QR (TSQR-cost model, exact local numerics).
    pub fn qr(&self, a: &DenseTensor<f64>) -> Result<(DenseTensor<f64>, DenseTensor<f64>)> {
        let out = tt_linalg::qr_thin(a)?;
        self.charge_factorization(a.dims(), 4.0);
        Ok(out)
    }

    /// Truncated SVDs of many independent matrices (the sector groups of a
    /// block SVD). In [`ExecMode::Threaded`] the factorizations fan out
    /// over the pool; results return in submission order and costs are
    /// charged in that order, so totals match the serial loop exactly.
    pub fn svd_trunc_batch(
        &self,
        mats: Vec<DenseTensor<f64>>,
        spec: TruncSpec,
    ) -> Result<Vec<TruncatedSvd>> {
        self.factorize_batch(mats, 14.0, move |m| tt_linalg::svd_trunc(m, spec))
    }

    /// Thin QRs of many independent matrices (the sector groups of a block
    /// QR), pool-parallel in [`ExecMode::Threaded`] with in-order results
    /// and cost charging.
    pub fn qr_batch(
        &self,
        mats: Vec<DenseTensor<f64>>,
    ) -> Result<Vec<(DenseTensor<f64>, DenseTensor<f64>)>> {
        self.factorize_batch(mats, 4.0, tt_linalg::qr_thin)
    }

    /// Shared driver for the factorization batches: run `f` over every
    /// matrix (on the pool when threaded), then charge each factorization
    /// in submission order on the caller thread.
    fn factorize_batch<T: Send + 'static>(
        &self,
        mats: Vec<DenseTensor<f64>>,
        flop_coeff: f64,
        f: impl Fn(&DenseTensor<f64>) -> tt_linalg::Result<T> + Send + Sync + Copy + 'static,
    ) -> Result<Vec<T>> {
        let dims: Vec<Vec<usize>> = mats.iter().map(|m| m.dims().to_vec()).collect();
        let results: Vec<tt_linalg::Result<T>> = match self.pool() {
            Some(pool) if mats.len() > 1 => {
                let jobs = mats
                    .into_iter()
                    .map(|m| {
                        let job: Box<dyn FnOnce() -> tt_linalg::Result<T> + Send> =
                            Box::new(move || f(&m));
                        job
                    })
                    .collect();
                pool.run(jobs)
            }
            _ => mats.iter().map(f).collect(),
        };
        let mut out = Vec::with_capacity(results.len());
        for (r, d) in results.into_iter().zip(dims) {
            out.push(r?);
            self.charge_factorization(&d, flop_coeff);
        }
        Ok(out)
    }

    /// Charge an `m×n` dense factorization costing `c · max(m,n) · min² `
    /// flops: ScaLAPACK-style half-efficiency compute plus a TSQR-shaped
    /// reduction tree (one n×n R per level).
    fn charge_factorization(&self, dims: &[usize], flop_coeff: f64) {
        let (m, n) = (dims[0].max(1), dims.get(1).copied().unwrap_or(1).max(1));
        let k = m.min(n);
        let flops = (flop_coeff * (m.max(n) as f64) * (k as f64) * (k as f64)) as u64;
        let p = self.ranks as f64;
        let rate = self.machine.dense_rate((k as f64 / p.sqrt()).max(1.0));
        let mut tr = self.tracker.lock();
        tr.flops += flops;
        tr.sim.svd += flops as f64 / (0.5 * rate * p);
        tr.sim.other += MAP_OVERHEAD_S;
        if self.ranks > 1 {
            let levels = (usize::BITS - (self.ranks - 1).leading_zeros()) as u64;
            tr.charge_supersteps(levels, levels * 8 * (k * k) as u64);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn operands(seed: u64) -> (DenseTensor<f64>, DenseTensor<f64>) {
        let mut rng = StdRng::seed_from_u64(seed);
        (
            DenseTensor::<f64>::random([24, 6, 30], &mut rng),
            DenseTensor::<f64>::random([30, 6, 18], &mut rng),
        )
    }

    #[test]
    fn threaded_bitwise_equals_sequential() {
        let (a, b) = operands(41);
        let seq = Executor::with_machine(Machine::blue_waters(2), 1, ExecMode::Sequential);
        let thr = Executor::with_machine(Machine::blue_waters(2), 1, ExecMode::Threaded);
        let cs = seq.contract("isj,jtk->istk", &a, &b).unwrap();
        let ct = thr.contract("isj,jtk->istk", &a, &b).unwrap();
        assert_eq!(cs.data(), ct.data(), "dense contraction must be bitwise equal");

        let sa = SparseTensor::from_dense(&a, 0.5);
        let sb = SparseTensor::from_dense(&b, 0.5);
        let ds = seq.contract_sd("isj,jtk->istk", &sa, &b).unwrap();
        let dt = thr.contract_sd("isj,jtk->istk", &sa, &b).unwrap();
        assert_eq!(ds.data(), dt.data(), "sparse-dense must be bitwise equal");

        let ss = seq.contract_ss("isj,jtk->istk", &sa, &sb, None).unwrap();
        let st = thr.contract_ss("isj,jtk->istk", &sa, &sb, None).unwrap();
        assert_eq!(
            ss.to_dense().data(),
            st.to_dense().data(),
            "sparse-sparse must be bitwise equal"
        );
    }

    #[test]
    fn local_matches_plan_execute_exactly() {
        let (a, b) = operands(42);
        let exec = Executor::local();
        let c = exec.contract("isj,jtk->tkis", &a, &b).unwrap();
        let reference = tt_tensor::einsum("isj,jtk->tkis", &a, &b).unwrap();
        assert_eq!(c.data(), reference.data());
    }

    #[test]
    fn sim_time_monotone_in_ranks() {
        let (a, b) = operands(43);
        let mut last = f64::INFINITY;
        for nodes in [1usize, 2, 4, 8] {
            let exec =
                Executor::with_machine(Machine::blue_waters(16), nodes, ExecMode::Sequential);
            for _ in 0..4 {
                exec.contract("isj,jtk->istk", &a, &b).unwrap();
            }
            let t = exec.sim_time().total();
            assert!(t > 0.0);
            assert!(
                t <= last,
                "sim time must not grow with ranks on a compute-bound workload: {t} > {last}"
            );
            last = t;
        }
    }

    #[test]
    fn distributed_costs_are_machine_dependent_and_nonzero() {
        let (a, b) = operands(44);
        let mut totals = Vec::new();
        for machine in [Machine::blue_waters(16), Machine::stampede2(64)] {
            let exec = Executor::with_machine(machine, 2, ExecMode::Sequential);
            exec.contract("isj,jtk->istk", &a, &b).unwrap();
            assert!(exec.total_flops() > 0);
            assert!(exec.supersteps() > 0);
            let sim = exec.sim_time();
            assert!(sim.total() > 0.0 && sim.comm > 0.0);
            totals.push(sim.total());
        }
        assert_ne!(totals[0], totals[1], "different machines, different cost");
    }

    #[test]
    fn local_run_has_zero_comm_and_reset_works() {
        let (a, b) = operands(45);
        let exec = Executor::local();
        exec.contract("isj,jtk->istk", &a, &b).unwrap();
        let sim = exec.sim_time();
        assert_eq!(sim.comm, 0.0);
        assert!(sim.gemm > 0.0);
        assert!(exec.total_flops() > 0);
        exec.reset_costs();
        assert_eq!(exec.total_flops(), 0);
        assert_eq!(exec.sim_time().total(), 0.0);
    }

    #[test]
    fn contract_batch_matches_singles_bitwise_and_in_cost() {
        let mut rng = StdRng::seed_from_u64(47);
        let pairs: Vec<(DenseTensor<f64>, DenseTensor<f64>)> = (0..6)
            .map(|_| {
                (
                    DenseTensor::<f64>::random([9, 4, 7], &mut rng),
                    DenseTensor::<f64>::random([7, 4, 5], &mut rng),
                )
            })
            .collect();
        let single = Executor::with_machine(Machine::blue_waters(2), 2, ExecMode::Sequential);
        let reference: Vec<DenseTensor<f64>> = pairs
            .iter()
            .map(|(a, b)| single.contract("isj,jtk->istk", a, b).unwrap())
            .collect();
        let pair_refs: Vec<(&DenseTensor<f64>, &DenseTensor<f64>)> =
            pairs.iter().map(|(a, b)| (a, b)).collect();
        for mode in [ExecMode::Sequential, ExecMode::Threaded] {
            let batch = Executor::with_machine(Machine::blue_waters(2), 2, mode);
            let out = batch.contract_batch("isj,jtk->istk", &pair_refs).unwrap();
            for (c, r) in out.iter().zip(&reference) {
                assert_eq!(c.data(), r.data(), "{mode:?}");
            }
            // identical cost accounting regardless of mode
            assert_eq!(batch.total_flops(), single.total_flops(), "{mode:?}");
            assert_eq!(batch.supersteps(), single.supersteps(), "{mode:?}");
            assert_eq!(
                batch.sim_time().total().to_bits(),
                single.sim_time().total().to_bits(),
                "{mode:?}: cost charging must be order-deterministic"
            );
        }
    }

    #[test]
    fn contract_batch_rejects_malformed_pairs() {
        // an operand whose order doesn't match the spec must surface as an
        // error, exactly like the single-pair contract() path
        let exec = Executor::local();
        let bad = DenseTensor::<f64>::zeros([2, 3]);
        let ok = DenseTensor::<f64>::zeros([3, 2, 2]);
        assert!(exec
            .contract_batch("isj,jtk->istk", &[(&bad, &ok)])
            .is_err());
        // mismatched contracted dims too
        let a = DenseTensor::<f64>::zeros([2, 2, 5]);
        assert!(exec.contract_batch("isj,jtk->istk", &[(&a, &ok)]).is_err());
    }

    #[test]
    fn factorization_batches_match_singles() {
        let mut rng = StdRng::seed_from_u64(48);
        let mats: Vec<DenseTensor<f64>> = [(20usize, 8usize), (13, 13), (6, 17), (30, 4)]
            .iter()
            .map(|&(m, n)| DenseTensor::<f64>::random([m, n], &mut rng))
            .collect();
        let spec = TruncSpec {
            max_rank: 6,
            cutoff: 0.0,
            min_keep: 1,
        };
        let single = Executor::with_machine(Machine::stampede2(4), 1, ExecMode::Sequential);
        let svds_ref: Vec<_> = mats.iter().map(|m| single.svd_trunc(m, spec).unwrap()).collect();
        let qrs_ref: Vec<_> = mats.iter().map(|m| single.qr(m).unwrap()).collect();
        for mode in [ExecMode::Sequential, ExecMode::Threaded] {
            let batch = Executor::with_machine(Machine::stampede2(4), 1, mode);
            let svds = batch.svd_trunc_batch(mats.clone(), spec).unwrap();
            for (s, r) in svds.iter().zip(&svds_ref) {
                assert_eq!(s.s, r.s, "{mode:?}");
                assert_eq!(s.u.data(), r.u.data(), "{mode:?}");
                assert_eq!(s.vt.data(), r.vt.data(), "{mode:?}");
            }
            let qrs = batch.qr_batch(mats.clone()).unwrap();
            for ((q, rr), (q2, r2)) in qrs.iter().zip(&qrs_ref) {
                assert_eq!(q.data(), q2.data(), "{mode:?}");
                assert_eq!(rr.data(), r2.data(), "{mode:?}");
            }
            assert_eq!(batch.total_flops(), single.total_flops(), "{mode:?}");
            assert_eq!(
                batch.sim_time().total().to_bits(),
                single.sim_time().total().to_bits(),
                "{mode:?}"
            );
        }
    }

    #[test]
    fn svd_and_qr_are_exact_and_charged() {
        let mut rng = StdRng::seed_from_u64(46);
        let a = DenseTensor::<f64>::random([40, 12], &mut rng);
        let exec = Executor::with_machine(Machine::stampede2(4), 1, ExecMode::Sequential);
        let (q, r) = exec.qr(&a).unwrap();
        let (q2, r2) = tt_linalg::qr_thin(&a).unwrap();
        assert_eq!(q.data(), q2.data());
        assert_eq!(r.data(), r2.data());
        let spec = TruncSpec {
            max_rank: 8,
            cutoff: 0.0,
            min_keep: 1,
        };
        let t = exec.svd_trunc(&a, spec).unwrap();
        assert_eq!(t.s.len(), 8);
        assert!(exec.sim_time().svd > 0.0);
        assert!(exec.supersteps() > 0);
    }
}

//! The execution front-end: every distributed-capable operation in the
//! workspace goes through an [`Executor`].
//!
//! Numerics are exact (the executor computes locally with deterministic
//! kernels); the *cost* of running the operation on `p` ranks of the
//! configured [`Machine`] is charged to the shared [`CostTracker`]: a
//! 2-D-grid SUMMA volume per contraction, TTGT packing traffic, roofline
//! compute time, tile-imbalance idle time and per-operation supersteps.

use crate::cluster::Cluster;
use crate::comm::Comm;
use crate::cost::{CostTracker, SimTime};
use crate::kernels;
use crate::machine::Machine;
use crate::pool::ThreadPool;
use crate::transport::worker::{Reply, Request};
use crate::transport::SpawnSpec;
use crate::{process_grid, Error, Result};
use parking_lot::Mutex;
use std::sync::Arc;
use tt_linalg::{TruncSpec, TruncatedSvd};
use tt_tensor::einsum::ContractPlan;
use tt_tensor::gemm::{gemm_path, GemmPath};
use tt_tensor::{DenseTensor, SparseTensor};

/// How the executor runs its local kernels.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum ExecMode {
    /// Single-threaded reference execution.
    Sequential,
    /// Kernels row-chunked across a worker pool; results are
    /// bitwise-identical to [`ExecMode::Sequential`].
    Threaded,
}

/// Which execution substrate an [`Executor`] runs on.
#[derive(Clone, Debug)]
pub enum Backend {
    /// The simulated single-address-space runtime (the seed behavior):
    /// exact local kernels, optionally thread-pool parallel, with
    /// communication only *charged*, never performed.
    InProcess(ExecMode),
    /// The shared-nothing runtime: `workers` real OS processes execute
    /// the kernel chunks and the driver moves operand/result payloads
    /// over the socket transport. Results are bitwise-identical to
    /// [`Backend::InProcess`] with [`ExecMode::Sequential`].
    MultiProcess {
        /// Number of worker processes to spawn.
        workers: usize,
        /// How to launch them.
        spawn: SpawnSpec,
    },
}

/// Per-operation task-mapping overhead (seconds) — the CTF-style cost of
/// building the contraction mapping, visible as "%map" in Fig. 7.
const MAP_OVERHEAD_S: f64 = 2.0e-7;

/// The distributed executor.
pub struct Executor {
    machine: Machine,
    nodes: usize,
    ranks: usize,
    mode: ExecMode,
    backend: Backend,
    tracker: Arc<Mutex<CostTracker>>,
    pool: Option<Arc<ThreadPool>>,
    cluster: Option<Mutex<Cluster>>,
}

impl Executor {
    /// Serial baseline: one rank of the free-communication local machine.
    pub fn local() -> Self {
        Self::with_machine(Machine::local(), 1, ExecMode::Sequential)
    }

    /// Executor over `nodes` nodes of `machine` (total ranks =
    /// `nodes × machine.procs_per_node`) in the given in-process mode.
    pub fn with_machine(machine: Machine, nodes: usize, mode: ExecMode) -> Self {
        Self::with_backend(machine, nodes, Backend::InProcess(mode))
            .expect("in-process backend construction is infallible")
    }

    /// Executor over `nodes` simulated nodes of `machine`, running on the
    /// given [`Backend`]. Spawning the multi-process backend can fail
    /// (worker binary missing, socket errors).
    pub fn with_backend(machine: Machine, nodes: usize, backend: Backend) -> Result<Self> {
        let nodes = nodes.max(1);
        let ranks = nodes * machine.procs_per_node.max(1);
        let tracker = Arc::new(Mutex::new(CostTracker::new(machine.clone(), ranks)));
        let (mode, pool, cluster) = match &backend {
            Backend::InProcess(ExecMode::Sequential) => (ExecMode::Sequential, None, None),
            Backend::InProcess(ExecMode::Threaded) => (
                ExecMode::Threaded,
                Some(Arc::new(ThreadPool::default_size())),
                None,
            ),
            #[cfg(unix)]
            Backend::MultiProcess { workers, spawn } => {
                let cl = Cluster::multi_process(*workers, spawn)?;
                (ExecMode::Sequential, None, Some(Mutex::new(cl)))
            }
            #[cfg(not(unix))]
            Backend::MultiProcess { .. } => {
                return Err(Error::Runtime(
                    "the multi-process backend requires a unix platform".into(),
                ))
            }
        };
        Ok(Self {
            machine,
            nodes,
            ranks,
            mode,
            backend,
            tracker,
            pool,
            cluster,
        })
    }

    /// Convenience: executor over the multi-process shared-nothing
    /// backend with `workers` real worker processes.
    pub fn multi_process(
        machine: Machine,
        nodes: usize,
        workers: usize,
        spawn: SpawnSpec,
    ) -> Result<Self> {
        Self::with_backend(machine, nodes, Backend::MultiProcess { workers, spawn })
    }

    /// The machine model being simulated.
    pub fn machine(&self) -> &Machine {
        &self.machine
    }

    /// Simulated node count.
    pub fn nodes(&self) -> usize {
        self.nodes
    }

    /// Total simulated ranks.
    pub fn ranks(&self) -> usize {
        self.ranks
    }

    /// Execution mode.
    pub fn mode(&self) -> ExecMode {
        self.mode
    }

    /// The backend this executor runs on.
    pub fn backend(&self) -> &Backend {
        &self.backend
    }

    /// Run `f` with the multi-process cluster handle, when this executor
    /// has one (e.g. to drive [`crate::DistMatrix::summa_on`] or
    /// [`crate::tsqr_on`] over the same worker set).
    pub fn with_cluster<R>(&self, f: impl FnOnce(&mut Cluster) -> R) -> Option<R> {
        self.cluster.as_ref().map(|cl| f(&mut cl.lock()))
    }

    /// The shared cost tracker.
    pub fn tracker(&self) -> &Arc<Mutex<CostTracker>> {
        &self.tracker
    }

    /// A communicator over this executor's ranks charging into its tracker.
    pub fn comm(&self) -> Comm {
        Comm::new(self.ranks, self.mode, Arc::clone(&self.tracker))
    }

    /// Flops executed through this executor since the last reset.
    pub fn total_flops(&self) -> u64 {
        self.tracker.lock().flops
    }

    /// BSP supersteps on the critical path since the last reset.
    pub fn supersteps(&self) -> u64 {
        self.tracker.lock().supersteps
    }

    /// Simulated time breakdown since the last reset.
    pub fn sim_time(&self) -> SimTime {
        self.tracker.lock().sim
    }

    /// Zero all cost counters.
    pub fn reset_costs(&self) {
        self.tracker.lock().reset();
    }

    fn pool(&self) -> Option<&ThreadPool> {
        self.pool.as_deref()
    }

    /// Charge compute + imbalance + transpose + SUMMA communication for a
    /// contraction moving `words_a`/`words_b`/`words_c` stored words with
    /// an `m × n` fused output grid, executing `flops` flops. `sparse`
    /// selects the sparse roofline and time bucket.
    #[allow(clippy::too_many_arguments)]
    fn charge_contraction(
        &self,
        words_a: usize,
        words_b: usize,
        words_c: usize,
        m: usize,
        n: usize,
        flops: u64,
        sparse: bool,
    ) {
        let p = self.ranks as f64;
        let n_eff = ((flops.max(2) as f64) / 2.0).cbrt();
        let n_loc = (n_eff / p.sqrt()).max(1.0);
        let rate = if sparse {
            self.machine.sparse_rate(n_loc)
        } else {
            self.machine.dense_rate(n_loc)
        };
        let t_compute = flops as f64 / (rate * p);

        let mut tr = self.tracker.lock();
        tr.flops += flops;
        if sparse {
            tr.sim.sparse += t_compute;
        } else {
            tr.sim.gemm += t_compute;
        }

        // TTGT packing: operands + result through memory twice.
        let moved_bytes = 8.0 * 2.0 * (words_a + words_b + words_c) as f64;
        tr.sim.transpose += moved_bytes / (self.machine.rank_mem_bw() * p);
        tr.sim.other += MAP_OVERHEAD_S;

        if self.ranks > 1 {
            // Tile imbalance on the process grid.
            let (pr, pc) = process_grid(self.ranks);
            let lambda = (m.div_ceil(pr) * pr) as f64 / m.max(1) as f64
                * ((n.div_ceil(pc) * pc) as f64 / n.max(1) as f64)
                - 1.0;
            tr.sim.imbalance += t_compute * lambda.max(0.0);

            // SUMMA: both operand panels travel √p-reduced, the result is
            // reduced once.
            let words = ((words_a + words_b) as f64 / p.sqrt() + words_c as f64 / p) as u64;
            tr.charge_superstep(8 * words);
        }
    }

    /// Distributed dense × dense contraction (einsum grammar).
    pub fn contract(
        &self,
        spec: &str,
        a: &DenseTensor<f64>,
        b: &DenseTensor<f64>,
    ) -> Result<DenseTensor<f64>> {
        let plan = ContractPlan::parse(spec)?;
        let c = if let Some(cl) = &self.cluster {
            self.dense_over_cluster(&mut cl.lock(), &plan, a, b)?
        } else {
            kernels::dense_contract(&plan, a, b, self.pool())?
        };
        let (m, k, n) = kernels::fused_dims(&plan, a.dims(), b.dims());
        let flops = plan.flop_count(a.dims(), b.dims());
        self.charge_contraction(m * k, k * n, m * n, m, n, flops, false);
        Ok(c)
    }

    /// Dense contraction over the worker processes: the driver permutes
    /// the operands, scatters MC-aligned (packed path) or uniform row
    /// slabs of `A` plus the full `B` to the ranks, and concatenates the
    /// returned row panels in submission order. The decomposition is
    /// row-disjoint with an invariant kernel path, so the result is
    /// bitwise-identical to the sequential in-process kernel.
    fn dense_over_cluster(
        &self,
        cl: &mut Cluster,
        plan: &ContractPlan,
        a: &DenseTensor<f64>,
        b: &DenseTensor<f64>,
    ) -> Result<DenseTensor<f64>> {
        plan.output_dims(a.dims(), b.dims())?; // validates shapes
        let (m, k, n) = kernels::fused_dims(plan, a.dims(), b.dims());
        let mut perm_a: Vec<usize> = plan.free_a_positions().to_vec();
        perm_a.extend_from_slice(plan.ctr_a_positions());
        let mut perm_b: Vec<usize> = plan.ctr_b_positions().to_vec();
        perm_b.extend_from_slice(plan.free_b_positions());
        let a_mat = a.permute(&perm_a)?.into_data();
        let b_mat = b.permute(&perm_b)?.into_data();

        let path = gemm_path(k, n);
        let p = cl.ranks();
        let ranges = match path {
            GemmPath::Packed => kernels::mc_aligned_ranges(m, p),
            _ => kernels::row_ranges(m, p),
        };
        let reqs: Vec<(usize, Request)> = ranges
            .iter()
            .enumerate()
            .map(|(i, &(r0, r1))| {
                (
                    i % p,
                    Request::DenseChunk {
                        path,
                        rows: r1 - r0,
                        k,
                        n,
                        a: a_mat[r0 * k..r1 * k].to_vec(),
                        b: b_mat.clone(),
                    },
                )
            })
            .collect();
        let mut c = Vec::with_capacity(m * n);
        for reply in cl.call_all(reqs)? {
            c.extend_from_slice(&expect_f64s(reply)?);
        }
        // (worker-side kernel flop counts travel back with every reply —
        // see the counter-delta prefix in transport::process — so the
        // driver's global counter matches the in-process backends)
        let c = DenseTensor::from_vec(kernels::natural_dims(plan, a.dims(), b.dims()), c)?;
        Ok(c.permute(plan.output_permutation())?)
    }

    /// Contract many independent operand pairs with one spec — the
    /// block-pair fan-out of the list algorithm.
    ///
    /// In [`ExecMode::Threaded`] every pair runs as its own pool job
    /// (each internally sequential: pair-level parallelism replaces
    /// row-level parallelism, so per-element accumulation order is
    /// unchanged). Results come back in submission order and costs are
    /// charged in that same order on the caller thread, keeping both the
    /// numerics and the cost counters bitwise-deterministic.
    pub fn contract_batch(
        &self,
        spec: &str,
        pairs: &[(&DenseTensor<f64>, &DenseTensor<f64>)],
    ) -> Result<Vec<DenseTensor<f64>>> {
        let plan = Arc::new(ContractPlan::parse(spec)?);
        // validate every pair up front (fused_dims/flop_count index by
        // plan positions and would panic on mismatched operand orders),
        // and snapshot the cost parameters
        let mut charges = Vec::with_capacity(pairs.len());
        for (a, b) in pairs {
            plan.output_dims(a.dims(), b.dims())?;
            let (m, k, n) = kernels::fused_dims(&plan, a.dims(), b.dims());
            charges.push((m, k, n, plan.flop_count(a.dims(), b.dims())));
        }
        if let Some(cl) = &self.cluster {
            // one whole pair per rank, round-robin: pair-level parallelism
            // across worker processes, replies in submission order
            let mut cl = cl.lock();
            let p = cl.ranks();
            let reqs: Vec<(usize, Request)> = pairs
                .iter()
                .enumerate()
                .map(|(i, (a, b))| {
                    (
                        i % p,
                        Request::DensePair {
                            spec: spec.to_string(),
                            a_dims: a.dims().to_vec(),
                            a: a.data().to_vec(),
                            b_dims: b.dims().to_vec(),
                            b: b.data().to_vec(),
                        },
                    )
                })
                .collect();
            let replies = cl.call_all(reqs)?;
            let mut out = Vec::with_capacity(replies.len());
            for ((reply, &(a, b)), (m, k, n, flops)) in replies.into_iter().zip(pairs).zip(charges)
            {
                let dims = plan.output_dims(a.dims(), b.dims())?;
                out.push(DenseTensor::from_vec(dims, expect_f64s(reply)?)?);
                self.charge_contraction(m * k, k * n, m * n, m, n, flops, false);
            }
            return Ok(out);
        }
        let results: Vec<Result<DenseTensor<f64>>> = match self.pool() {
            Some(pool) if pairs.len() > 1 => {
                // jobs need owned operands ('static); the clone is the
                // price of pair-level parallelism, paid only here
                let jobs = pairs
                    .iter()
                    .map(|(a, b)| {
                        let (a, b) = ((*a).clone(), (*b).clone());
                        let plan = Arc::clone(&plan);
                        let job: Box<dyn FnOnce() -> Result<DenseTensor<f64>> + Send> =
                            Box::new(move || kernels::dense_contract(&plan, &a, &b, None));
                        job
                    })
                    .collect();
                pool.run(jobs)
            }
            // sequential mode, or a single pair: no copies; row-level
            // parallelism (bitwise-identical by construction) still
            // applies if a pool is present
            _ => pairs
                .iter()
                .map(|(a, b)| kernels::dense_contract(&plan, a, b, self.pool()))
                .collect(),
        };
        let mut out = Vec::with_capacity(results.len());
        for (r, (m, k, n, flops)) in results.into_iter().zip(charges) {
            out.push(r?);
            self.charge_contraction(m * k, k * n, m * n, m, n, flops, false);
        }
        Ok(out)
    }

    /// Distributed sparse × dense contraction (the *sparse-dense*
    /// algorithm's kernel): flattened-sparse `a` against densified `b`.
    pub fn contract_sd(
        &self,
        spec: &str,
        a: &SparseTensor<f64>,
        b: &DenseTensor<f64>,
    ) -> Result<DenseTensor<f64>> {
        let plan = ContractPlan::parse(spec)?;
        let (c, flops) = if let Some(cl) = &self.cluster {
            self.sd_over_cluster(&mut cl.lock(), &plan, a, b)?
        } else {
            kernels::sd_contract(&plan, a, b, self.pool(), kernels::SPARSE_PAR_MIN_FLOPS)?
        };
        let (m, k, n) = kernels::fused_dims(&plan, a.dims(), b.dims());
        // The sparse operand moves its stored entries (offset + value),
        // the dense operand and result their full volume.
        self.charge_contraction(2 * a.nnz(), k * n, m * n, m, n, flops, true);
        Ok(c)
    }

    /// Sparse-dense contraction over the worker processes: the driver
    /// buckets the sparse coords by work volume (same boundaries as the
    /// in-process kernel) and ships each bucket plus the dense operand to
    /// a rank; row panels concatenate in submission order.
    fn sd_over_cluster(
        &self,
        cl: &mut Cluster,
        plan: &ContractPlan,
        a: &SparseTensor<f64>,
        b: &DenseTensor<f64>,
    ) -> Result<(DenseTensor<f64>, u64)> {
        plan.output_dims(a.dims(), b.dims())?;
        let (m, _k, n) = kernels::fused_dims(plan, a.dims(), b.dims());
        let mut perm_b: Vec<usize> = plan.ctr_b_positions().to_vec();
        perm_b.extend_from_slice(plan.free_b_positions());
        let b_mat = b.permute(&perm_b)?.into_data();

        let coords = kernels::sparse_coords(a, plan.free_a_positions(), plan.ctr_a_positions());
        let flops = 2 * coords.len() as u64 * n as u64;
        let chunks = if flops < kernels::SPARSE_PAR_MIN_FLOPS {
            1
        } else {
            cl.ranks()
        };
        let (ranges, buckets) = kernels::bucket_by_volume(coords, m, chunks, |_| n as u64);
        let p = cl.ranks();
        let reqs: Vec<(usize, Request)> = ranges
            .iter()
            .zip(buckets)
            .enumerate()
            .map(|(i, (&(r0, r1), bucket))| {
                let (rows, cols, vals) = split_coords(bucket);
                (
                    i % p,
                    Request::SdChunk {
                        r0,
                        r1,
                        n,
                        rows,
                        cols,
                        vals,
                        b: b_mat.clone(),
                    },
                )
            })
            .collect();
        let mut c = Vec::with_capacity(m * n);
        for reply in cl.call_all(reqs)? {
            c.extend_from_slice(&expect_f64s(reply)?);
        }
        let c = DenseTensor::from_vec(kernels::natural_dims(plan, a.dims(), b.dims()), c)?;
        Ok((c.permute(plan.output_permutation())?, flops))
    }

    /// Distributed sparse × sparse contraction with optional pre-computed
    /// output sparsity `mask` (output linear offsets that may be nonzero).
    pub fn contract_ss(
        &self,
        spec: &str,
        a: &SparseTensor<f64>,
        b: &SparseTensor<f64>,
        mask: Option<&[u64]>,
    ) -> Result<SparseTensor<f64>> {
        let plan = ContractPlan::parse(spec)?;
        let (c, flops) = if let Some(cl) = &self.cluster {
            self.ss_over_cluster(&mut cl.lock(), &plan, a, b, mask)?
        } else {
            kernels::ss_contract(
                &plan,
                a,
                b,
                mask,
                self.pool(),
                kernels::SPARSE_PAR_MIN_FLOPS,
            )?
        };
        let (m, _k, n) = kernels::fused_dims(&plan, a.dims(), b.dims());
        // All three tensors move only their stored entries (offset + value).
        self.charge_contraction(2 * a.nnz(), 2 * b.nnz(), 2 * c.nnz(), m, n, flops, true);
        Ok(c)
    }

    /// Sparse-sparse contraction over the worker processes: the grouped
    /// `B` operand, output-axis map and mask ship once per rank alongside
    /// that rank's volume-balanced `A` bucket; the per-bucket entry sets
    /// are row-disjoint, so concatenating replies in submission order
    /// reproduces the in-process result exactly.
    fn ss_over_cluster(
        &self,
        cl: &mut Cluster,
        plan: &ContractPlan,
        a: &SparseTensor<f64>,
        b: &SparseTensor<f64>,
        mask: Option<&[u64]>,
    ) -> Result<(SparseTensor<f64>, u64)> {
        let prep = kernels::ss_prepare(plan, a, b, mask)?;
        let kernels::SsPrep {
            out_shape,
            m,
            row_axes,
            b_by_ctr,
            mask_sorted,
            coords,
        } = prep;

        let coord_work = |c: &kernels::Coord| b_by_ctr.get(&c.1).map_or(0, |l| l.len() as u64);
        let total_work: u64 = coords.iter().map(&coord_work).sum();
        let chunks = if 2 * total_work < kernels::SPARSE_PAR_MIN_FLOPS {
            1
        } else {
            cl.ranks()
        };
        let (_ranges, buckets) = kernels::bucket_by_volume(coords, m, chunks, coord_work);

        // flatten the grouped B operand once; every rank gets a copy
        let mut b_keys = Vec::with_capacity(b_by_ctr.len());
        let mut b_lens = Vec::with_capacity(b_by_ctr.len());
        let mut b_cols = Vec::new();
        let mut b_vals = Vec::new();
        for (key, group) in &b_by_ctr {
            b_keys.push(*key);
            b_lens.push(group.len() as u64);
            for &(col, v) in group {
                b_cols.push(col);
                b_vals.push(v);
            }
        }
        let (ax_dims, ax_strides): (Vec<u64>, Vec<u64>) = row_axes.iter().copied().unzip();

        let p = cl.ranks();
        let reqs: Vec<(usize, Request)> = buckets
            .into_iter()
            .enumerate()
            .map(|(i, bucket)| {
                let (rows, ctrs, vals) = split_coords(bucket);
                (
                    i % p,
                    Request::SsChunk {
                        rows,
                        ctrs,
                        vals,
                        b_keys: b_keys.clone(),
                        b_lens: b_lens.clone(),
                        b_cols: b_cols.clone(),
                        b_vals: b_vals.clone(),
                        ax_dims: ax_dims.clone(),
                        ax_strides: ax_strides.clone(),
                        mask: mask_sorted.clone(),
                    },
                )
            })
            .collect();
        let mut entries = Vec::new();
        let mut flops = 0u64;
        for reply in cl.call_all(reqs)? {
            match reply {
                Reply::Entries {
                    offs,
                    vals,
                    flops: f,
                } => {
                    entries.extend(offs.into_iter().zip(vals));
                    flops += f;
                }
                other => {
                    return Err(Error::Transport(format!(
                        "expected sparse entries, got {other:?}"
                    )))
                }
            }
        }
        Ok((SparseTensor::from_entries(out_shape, entries)?, flops))
    }

    /// Distributed truncated SVD of a matrix (the ScaLAPACK `pdgesvd`
    /// stand-in used under the block SVD). On the multi-process backend
    /// the factorization executes on a worker process (same code, same
    /// bits).
    pub fn svd_trunc(&self, a: &DenseTensor<f64>, spec: TruncSpec) -> Result<TruncatedSvd> {
        let out = match &self.cluster {
            Some(cl) if a.order() == 2 => decode_svd(cl.lock().call(0, &svd_request(a, spec))?)?,
            _ => tt_linalg::svd_trunc(a, spec)?,
        };
        self.charge_factorization(a.dims(), 14.0);
        Ok(out)
    }

    /// Distributed thin QR (TSQR-cost model, exact local numerics). On the
    /// multi-process backend the factorization executes on a worker.
    pub fn qr(&self, a: &DenseTensor<f64>) -> Result<(DenseTensor<f64>, DenseTensor<f64>)> {
        let out = match &self.cluster {
            Some(cl) if a.order() == 2 => decode_qr(cl.lock().call(0, &qr_request(a))?)?,
            _ => tt_linalg::qr_thin(a)?,
        };
        self.charge_factorization(a.dims(), 4.0);
        Ok(out)
    }

    /// Truncated SVDs of many independent matrices (the sector groups of a
    /// block SVD). In [`ExecMode::Threaded`] the factorizations fan out
    /// over the pool; on the multi-process backend each matrix ships to a
    /// rank round-robin. Results return in submission order and costs are
    /// charged in that order, so totals match the serial loop exactly.
    pub fn svd_trunc_batch(
        &self,
        mats: Vec<DenseTensor<f64>>,
        spec: TruncSpec,
    ) -> Result<Vec<TruncatedSvd>> {
        if let Some(cl) = &self.cluster {
            if mats.iter().all(|m| m.order() == 2) {
                let mut cl = cl.lock();
                let p = cl.ranks();
                let dims: Vec<Vec<usize>> = mats.iter().map(|m| m.dims().to_vec()).collect();
                let reqs: Vec<(usize, Request)> = mats
                    .iter()
                    .enumerate()
                    .map(|(i, m)| (i % p, svd_request(m, spec)))
                    .collect();
                let replies = cl.call_all(reqs)?;
                let mut out = Vec::with_capacity(replies.len());
                for (reply, d) in replies.into_iter().zip(dims) {
                    out.push(decode_svd(reply)?);
                    self.charge_factorization(&d, 14.0);
                }
                return Ok(out);
            }
        }
        self.factorize_batch(mats, 14.0, move |m| tt_linalg::svd_trunc(m, spec))
    }

    /// Thin QRs of many independent matrices (the sector groups of a block
    /// QR), pool-parallel in [`ExecMode::Threaded`] and rank-round-robin
    /// on the multi-process backend, with in-order results and cost
    /// charging.
    pub fn qr_batch(
        &self,
        mats: Vec<DenseTensor<f64>>,
    ) -> Result<Vec<(DenseTensor<f64>, DenseTensor<f64>)>> {
        if let Some(cl) = &self.cluster {
            if mats.iter().all(|m| m.order() == 2) {
                let mut cl = cl.lock();
                let p = cl.ranks();
                let dims: Vec<Vec<usize>> = mats.iter().map(|m| m.dims().to_vec()).collect();
                let reqs: Vec<(usize, Request)> = mats
                    .iter()
                    .enumerate()
                    .map(|(i, m)| (i % p, qr_request(m)))
                    .collect();
                let replies = cl.call_all(reqs)?;
                let mut out = Vec::with_capacity(replies.len());
                for (reply, d) in replies.into_iter().zip(dims) {
                    out.push(decode_qr(reply)?);
                    self.charge_factorization(&d, 4.0);
                }
                return Ok(out);
            }
        }
        self.factorize_batch(mats, 4.0, tt_linalg::qr_thin)
    }

    /// Shared driver for the factorization batches: run `f` over every
    /// matrix (on the pool when threaded), then charge each factorization
    /// in submission order on the caller thread.
    fn factorize_batch<T: Send + 'static>(
        &self,
        mats: Vec<DenseTensor<f64>>,
        flop_coeff: f64,
        f: impl Fn(&DenseTensor<f64>) -> tt_linalg::Result<T> + Send + Sync + Copy + 'static,
    ) -> Result<Vec<T>> {
        let dims: Vec<Vec<usize>> = mats.iter().map(|m| m.dims().to_vec()).collect();
        let results: Vec<tt_linalg::Result<T>> = match self.pool() {
            Some(pool) if mats.len() > 1 => {
                let jobs = mats
                    .into_iter()
                    .map(|m| {
                        let job: Box<dyn FnOnce() -> tt_linalg::Result<T> + Send> =
                            Box::new(move || f(&m));
                        job
                    })
                    .collect();
                pool.run(jobs)
            }
            _ => mats.iter().map(f).collect(),
        };
        let mut out = Vec::with_capacity(results.len());
        for (r, d) in results.into_iter().zip(dims) {
            out.push(r?);
            self.charge_factorization(&d, flop_coeff);
        }
        Ok(out)
    }

    /// Charge an `m×n` dense factorization costing `c · max(m,n) · min² `
    /// flops: ScaLAPACK-style half-efficiency compute plus a TSQR-shaped
    /// reduction tree (one n×n R per level).
    fn charge_factorization(&self, dims: &[usize], flop_coeff: f64) {
        let (m, n) = (dims[0].max(1), dims.get(1).copied().unwrap_or(1).max(1));
        let k = m.min(n);
        let flops = (flop_coeff * (m.max(n) as f64) * (k as f64) * (k as f64)) as u64;
        let p = self.ranks as f64;
        let rate = self.machine.dense_rate((k as f64 / p.sqrt()).max(1.0));
        let mut tr = self.tracker.lock();
        tr.flops += flops;
        tr.sim.svd += flops as f64 / (0.5 * rate * p);
        tr.sim.other += MAP_OVERHEAD_S;
        if self.ranks > 1 {
            let levels = (usize::BITS - (self.ranks - 1).leading_zeros()) as u64;
            tr.charge_supersteps(levels, levels * 8 * (k * k) as u64);
        }
    }
}

/// Unwrap a row-panel reply.
fn expect_f64s(reply: Reply) -> Result<Vec<f64>> {
    match reply {
        Reply::F64s(v) => Ok(v),
        other => Err(Error::Transport(format!(
            "expected f64 payload, got {other:?}"
        ))),
    }
}

/// Split coords into the three parallel arrays the wire format carries.
fn split_coords(coords: Vec<kernels::Coord>) -> (Vec<u64>, Vec<u64>, Vec<f64>) {
    let mut rows = Vec::with_capacity(coords.len());
    let mut cols = Vec::with_capacity(coords.len());
    let mut vals = Vec::with_capacity(coords.len());
    for (r, c, v) in coords {
        rows.push(r);
        cols.push(c);
        vals.push(v);
    }
    (rows, cols, vals)
}

/// Build the worker request for a truncated SVD of matrix `a`.
fn svd_request(a: &DenseTensor<f64>, spec: TruncSpec) -> Request {
    Request::SvdTrunc {
        rows: a.dims()[0],
        cols: a.dims()[1],
        a: a.data().to_vec(),
        max_rank: spec.max_rank as u64,
        cutoff: spec.cutoff,
        min_keep: spec.min_keep as u64,
    }
}

/// Build the worker request for a thin QR of matrix `a`.
fn qr_request(a: &DenseTensor<f64>) -> Request {
    Request::QrThin {
        rows: a.dims()[0],
        cols: a.dims()[1],
        a: a.data().to_vec(),
    }
}

/// Rebuild a [`TruncatedSvd`] from its wire reply.
fn decode_svd(reply: Reply) -> Result<TruncatedSvd> {
    match reply {
        Reply::Svd {
            u_rows,
            rank,
            vt_cols,
            u,
            s,
            vt,
            trunc_err,
            n_discarded,
        } => Ok(TruncatedSvd {
            u: DenseTensor::from_vec([u_rows, rank], u)?,
            s,
            vt: DenseTensor::from_vec([rank, vt_cols], vt)?,
            trunc_err,
            n_discarded: n_discarded as usize,
        }),
        other => Err(Error::Transport(format!("expected SVD, got {other:?}"))),
    }
}

/// Rebuild a `(Q, R)` pair from its wire reply.
fn decode_qr(reply: Reply) -> Result<(DenseTensor<f64>, DenseTensor<f64>)> {
    match reply {
        Reply::Factors {
            q_rows,
            q_cols,
            q,
            r_rows,
            r_cols,
            r,
        } => Ok((
            DenseTensor::from_vec([q_rows, q_cols], q)?,
            DenseTensor::from_vec([r_rows, r_cols], r)?,
        )),
        other => Err(Error::Transport(format!("expected QR, got {other:?}"))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn operands(seed: u64) -> (DenseTensor<f64>, DenseTensor<f64>) {
        let mut rng = StdRng::seed_from_u64(seed);
        (
            DenseTensor::<f64>::random([24, 6, 30], &mut rng),
            DenseTensor::<f64>::random([30, 6, 18], &mut rng),
        )
    }

    #[test]
    fn threaded_bitwise_equals_sequential() {
        let (a, b) = operands(41);
        let seq = Executor::with_machine(Machine::blue_waters(2), 1, ExecMode::Sequential);
        let thr = Executor::with_machine(Machine::blue_waters(2), 1, ExecMode::Threaded);
        let cs = seq.contract("isj,jtk->istk", &a, &b).unwrap();
        let ct = thr.contract("isj,jtk->istk", &a, &b).unwrap();
        assert_eq!(
            cs.data(),
            ct.data(),
            "dense contraction must be bitwise equal"
        );

        let sa = SparseTensor::from_dense(&a, 0.5);
        let sb = SparseTensor::from_dense(&b, 0.5);
        let ds = seq.contract_sd("isj,jtk->istk", &sa, &b).unwrap();
        let dt = thr.contract_sd("isj,jtk->istk", &sa, &b).unwrap();
        assert_eq!(ds.data(), dt.data(), "sparse-dense must be bitwise equal");

        let ss = seq.contract_ss("isj,jtk->istk", &sa, &sb, None).unwrap();
        let st = thr.contract_ss("isj,jtk->istk", &sa, &sb, None).unwrap();
        assert_eq!(
            ss.to_dense().data(),
            st.to_dense().data(),
            "sparse-sparse must be bitwise equal"
        );
    }

    #[test]
    fn local_matches_plan_execute_exactly() {
        let (a, b) = operands(42);
        let exec = Executor::local();
        let c = exec.contract("isj,jtk->tkis", &a, &b).unwrap();
        let reference = tt_tensor::einsum("isj,jtk->tkis", &a, &b).unwrap();
        assert_eq!(c.data(), reference.data());
    }

    #[test]
    fn sim_time_monotone_in_ranks() {
        let (a, b) = operands(43);
        let mut last = f64::INFINITY;
        for nodes in [1usize, 2, 4, 8] {
            let exec =
                Executor::with_machine(Machine::blue_waters(16), nodes, ExecMode::Sequential);
            for _ in 0..4 {
                exec.contract("isj,jtk->istk", &a, &b).unwrap();
            }
            let t = exec.sim_time().total();
            assert!(t > 0.0);
            assert!(
                t <= last,
                "sim time must not grow with ranks on a compute-bound workload: {t} > {last}"
            );
            last = t;
        }
    }

    #[test]
    fn distributed_costs_are_machine_dependent_and_nonzero() {
        let (a, b) = operands(44);
        let mut totals = Vec::new();
        for machine in [Machine::blue_waters(16), Machine::stampede2(64)] {
            let exec = Executor::with_machine(machine, 2, ExecMode::Sequential);
            exec.contract("isj,jtk->istk", &a, &b).unwrap();
            assert!(exec.total_flops() > 0);
            assert!(exec.supersteps() > 0);
            let sim = exec.sim_time();
            assert!(sim.total() > 0.0 && sim.comm > 0.0);
            totals.push(sim.total());
        }
        assert_ne!(totals[0], totals[1], "different machines, different cost");
    }

    #[test]
    fn local_run_has_zero_comm_and_reset_works() {
        let (a, b) = operands(45);
        let exec = Executor::local();
        exec.contract("isj,jtk->istk", &a, &b).unwrap();
        let sim = exec.sim_time();
        assert_eq!(sim.comm, 0.0);
        assert!(sim.gemm > 0.0);
        assert!(exec.total_flops() > 0);
        exec.reset_costs();
        assert_eq!(exec.total_flops(), 0);
        assert_eq!(exec.sim_time().total(), 0.0);
    }

    #[test]
    fn contract_batch_matches_singles_bitwise_and_in_cost() {
        let mut rng = StdRng::seed_from_u64(47);
        let pairs: Vec<(DenseTensor<f64>, DenseTensor<f64>)> = (0..6)
            .map(|_| {
                (
                    DenseTensor::<f64>::random([9, 4, 7], &mut rng),
                    DenseTensor::<f64>::random([7, 4, 5], &mut rng),
                )
            })
            .collect();
        let single = Executor::with_machine(Machine::blue_waters(2), 2, ExecMode::Sequential);
        let reference: Vec<DenseTensor<f64>> = pairs
            .iter()
            .map(|(a, b)| single.contract("isj,jtk->istk", a, b).unwrap())
            .collect();
        let pair_refs: Vec<(&DenseTensor<f64>, &DenseTensor<f64>)> =
            pairs.iter().map(|(a, b)| (a, b)).collect();
        for mode in [ExecMode::Sequential, ExecMode::Threaded] {
            let batch = Executor::with_machine(Machine::blue_waters(2), 2, mode);
            let out = batch.contract_batch("isj,jtk->istk", &pair_refs).unwrap();
            for (c, r) in out.iter().zip(&reference) {
                assert_eq!(c.data(), r.data(), "{mode:?}");
            }
            // identical cost accounting regardless of mode
            assert_eq!(batch.total_flops(), single.total_flops(), "{mode:?}");
            assert_eq!(batch.supersteps(), single.supersteps(), "{mode:?}");
            assert_eq!(
                batch.sim_time().total().to_bits(),
                single.sim_time().total().to_bits(),
                "{mode:?}: cost charging must be order-deterministic"
            );
        }
    }

    #[test]
    fn contract_batch_rejects_malformed_pairs() {
        // an operand whose order doesn't match the spec must surface as an
        // error, exactly like the single-pair contract() path
        let exec = Executor::local();
        let bad = DenseTensor::<f64>::zeros([2, 3]);
        let ok = DenseTensor::<f64>::zeros([3, 2, 2]);
        assert!(exec
            .contract_batch("isj,jtk->istk", &[(&bad, &ok)])
            .is_err());
        // mismatched contracted dims too
        let a = DenseTensor::<f64>::zeros([2, 2, 5]);
        assert!(exec.contract_batch("isj,jtk->istk", &[(&a, &ok)]).is_err());
    }

    #[test]
    fn factorization_batches_match_singles() {
        let mut rng = StdRng::seed_from_u64(48);
        let mats: Vec<DenseTensor<f64>> = [(20usize, 8usize), (13, 13), (6, 17), (30, 4)]
            .iter()
            .map(|&(m, n)| DenseTensor::<f64>::random([m, n], &mut rng))
            .collect();
        let spec = TruncSpec {
            max_rank: 6,
            cutoff: 0.0,
            min_keep: 1,
        };
        let single = Executor::with_machine(Machine::stampede2(4), 1, ExecMode::Sequential);
        let svds_ref: Vec<_> = mats
            .iter()
            .map(|m| single.svd_trunc(m, spec).unwrap())
            .collect();
        let qrs_ref: Vec<_> = mats.iter().map(|m| single.qr(m).unwrap()).collect();
        for mode in [ExecMode::Sequential, ExecMode::Threaded] {
            let batch = Executor::with_machine(Machine::stampede2(4), 1, mode);
            let svds = batch.svd_trunc_batch(mats.clone(), spec).unwrap();
            for (s, r) in svds.iter().zip(&svds_ref) {
                assert_eq!(s.s, r.s, "{mode:?}");
                assert_eq!(s.u.data(), r.u.data(), "{mode:?}");
                assert_eq!(s.vt.data(), r.vt.data(), "{mode:?}");
            }
            let qrs = batch.qr_batch(mats.clone()).unwrap();
            for ((q, rr), (q2, r2)) in qrs.iter().zip(&qrs_ref) {
                assert_eq!(q.data(), q2.data(), "{mode:?}");
                assert_eq!(rr.data(), r2.data(), "{mode:?}");
            }
            assert_eq!(batch.total_flops(), single.total_flops(), "{mode:?}");
            assert_eq!(
                batch.sim_time().total().to_bits(),
                single.sim_time().total().to_bits(),
                "{mode:?}"
            );
        }
    }

    #[cfg(unix)]
    #[test]
    fn multi_process_backend_bitwise_matches_sequential() {
        let spawn = SpawnSpec::SelfExec(vec!["spawned_worker_entry".into()]);
        let seq = Executor::with_machine(Machine::blue_waters(2), 2, ExecMode::Sequential);
        let mp = Executor::multi_process(Machine::blue_waters(2), 2, 2, spawn).unwrap();
        assert!(matches!(
            mp.backend(),
            Backend::MultiProcess { workers: 2, .. }
        ));

        let (a, b) = operands(49);
        let cs = seq.contract("isj,jtk->istk", &a, &b).unwrap();
        let cm = mp.contract("isj,jtk->istk", &a, &b).unwrap();
        assert_eq!(
            cs.data(),
            cm.data(),
            "dense over processes must be bitwise equal"
        );

        let sa = SparseTensor::from_dense(&a, 0.5);
        let sb = SparseTensor::from_dense(&b, 0.5);
        let ds = seq.contract_sd("isj,jtk->istk", &sa, &b).unwrap();
        let dm = mp.contract_sd("isj,jtk->istk", &sa, &b).unwrap();
        assert_eq!(ds.data(), dm.data(), "sparse-dense over processes");

        let ss = seq.contract_ss("isj,jtk->istk", &sa, &sb, None).unwrap();
        let sm = mp.contract_ss("isj,jtk->istk", &sa, &sb, None).unwrap();
        assert_eq!(ss.to_dense().data(), sm.to_dense().data(), "sparse-sparse");

        let mat = DenseTensor::from_vec([a.len() / 6, 6], a.data().to_vec()).unwrap();
        let spec = TruncSpec {
            max_rank: 4,
            cutoff: 0.0,
            min_keep: 1,
        };
        let ts = seq.svd_trunc(&mat, spec).unwrap();
        let tm = mp.svd_trunc(&mat, spec).unwrap();
        assert_eq!(ts.s, tm.s);
        assert_eq!(ts.u.data(), tm.u.data());
        assert_eq!(ts.vt.data(), tm.vt.data());
        assert_eq!(ts.trunc_err.to_bits(), tm.trunc_err.to_bits());
        let (qs, rs) = seq.qr(&mat).unwrap();
        let (qm, rm) = mp.qr(&mat).unwrap();
        assert_eq!(qs.data(), qm.data());
        assert_eq!(rs.data(), rm.data());

        // identical cost accounting: same machine model, same charges
        assert_eq!(seq.total_flops(), mp.total_flops());
        assert_eq!(seq.supersteps(), mp.supersteps());
        assert_eq!(
            seq.sim_time().total().to_bits(),
            mp.sim_time().total().to_bits(),
            "cost charging must be backend-independent"
        );
    }

    #[cfg(unix)]
    #[test]
    fn multi_process_contract_batch_matches_sequential() {
        let spawn = SpawnSpec::SelfExec(vec!["spawned_worker_entry".into()]);
        let mp = Executor::multi_process(Machine::blue_waters(2), 1, 3, spawn).unwrap();
        let seq = Executor::with_machine(Machine::blue_waters(2), 1, ExecMode::Sequential);
        let mut rng = StdRng::seed_from_u64(50);
        let pairs: Vec<(DenseTensor<f64>, DenseTensor<f64>)> = (0..5)
            .map(|_| {
                (
                    DenseTensor::<f64>::random([8, 3, 6], &mut rng),
                    DenseTensor::<f64>::random([6, 3, 4], &mut rng),
                )
            })
            .collect();
        let pair_refs: Vec<(&DenseTensor<f64>, &DenseTensor<f64>)> =
            pairs.iter().map(|(a, b)| (a, b)).collect();
        let out_seq = seq.contract_batch("isj,jtk->istk", &pair_refs).unwrap();
        let out_mp = mp.contract_batch("isj,jtk->istk", &pair_refs).unwrap();
        for (s, m) in out_seq.iter().zip(&out_mp) {
            assert_eq!(s.data(), m.data());
        }
        let mats: Vec<DenseTensor<f64>> = (0..4)
            .map(|i| DenseTensor::<f64>::random([10 + i, 5], &mut rng))
            .collect();
        let spec = TruncSpec {
            max_rank: 3,
            cutoff: 0.0,
            min_keep: 1,
        };
        let svd_seq = seq.svd_trunc_batch(mats.clone(), spec).unwrap();
        let svd_mp = mp.svd_trunc_batch(mats.clone(), spec).unwrap();
        for (s, m) in svd_seq.iter().zip(&svd_mp) {
            assert_eq!(s.s, m.s);
            assert_eq!(s.u.data(), m.u.data());
            assert_eq!(s.vt.data(), m.vt.data());
        }
        let qr_seq = seq.qr_batch(mats.clone()).unwrap();
        let qr_mp = mp.qr_batch(mats).unwrap();
        for ((q1, r1), (q2, r2)) in qr_seq.iter().zip(&qr_mp) {
            assert_eq!(q1.data(), q2.data());
            assert_eq!(r1.data(), r2.data());
        }
        assert_eq!(seq.total_flops(), mp.total_flops());
        assert_eq!(
            seq.sim_time().total().to_bits(),
            mp.sim_time().total().to_bits()
        );
    }

    #[test]
    fn svd_and_qr_are_exact_and_charged() {
        let mut rng = StdRng::seed_from_u64(46);
        let a = DenseTensor::<f64>::random([40, 12], &mut rng);
        let exec = Executor::with_machine(Machine::stampede2(4), 1, ExecMode::Sequential);
        let (q, r) = exec.qr(&a).unwrap();
        let (q2, r2) = tt_linalg::qr_thin(&a).unwrap();
        assert_eq!(q.data(), q2.data());
        assert_eq!(r.data(), r2.data());
        let spec = TruncSpec {
            max_rank: 8,
            cutoff: 0.0,
            min_keep: 1,
        };
        let t = exec.svd_trunc(&a, spec).unwrap();
        assert_eq!(t.s.len(), 8);
        assert!(exec.sim_time().svd > 0.0);
        assert!(exec.supersteps() > 0);
    }
}

//! Quantum-number-graded tensor indices.
//!
//! Each index of a block-sparse tensor is a list of `(QN, dimension)`
//! sectors plus an [`Arrow`]. The dense dimension is the sum of sector
//! dimensions, and each sector occupies a contiguous range of the dense
//! index — which is how block tensors flatten into the single sparse/dense
//! tensors of the *sparse-dense* and *sparse-sparse* algorithms.

use crate::qn::{Arrow, QN};

/// A graded index: ordered sectors of `(quantum number, degeneracy)`.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct QnIndex {
    arrow: Arrow,
    sectors: Vec<(QN, usize)>,
    /// cumulative offsets: `offsets[s]` = dense start of sector `s`;
    /// `offsets[n_sectors]` = total dimension
    offsets: Vec<usize>,
}

impl QnIndex {
    /// Build an index from sectors (kept in the given order; duplicate QNs
    /// are allowed but discouraged).
    pub fn new(arrow: Arrow, sectors: Vec<(QN, usize)>) -> Self {
        assert!(!sectors.is_empty(), "index needs at least one sector");
        assert!(sectors.iter().all(|&(_, d)| d > 0), "zero-dim sector");
        let arity = sectors[0].0.n_charges();
        assert!(
            sectors.iter().all(|(q, _)| q.n_charges() == arity),
            "mixed QN arities in one index"
        );
        let mut offsets = Vec::with_capacity(sectors.len() + 1);
        let mut acc = 0usize;
        for &(_, d) in &sectors {
            offsets.push(acc);
            acc += d;
        }
        offsets.push(acc);
        Self {
            arrow,
            sectors,
            offsets,
        }
    }

    /// Trivial index: one sector of dimension `d` with zero charge.
    pub fn trivial(arrow: Arrow, d: usize, arity: u8) -> Self {
        Self::new(arrow, vec![(QN::zero(arity), d)])
    }

    /// The index direction.
    pub fn arrow(&self) -> Arrow {
        self.arrow
    }

    /// Number of sectors.
    pub fn n_sectors(&self) -> usize {
        self.sectors.len()
    }

    /// Total (dense) dimension.
    pub fn dim(&self) -> usize {
        *self.offsets.last().expect("non-empty")
    }

    /// Quantum number of sector `s`.
    pub fn qn(&self, s: usize) -> QN {
        self.sectors[s].0
    }

    /// Degeneracy (dimension) of sector `s`.
    pub fn sector_dim(&self, s: usize) -> usize {
        self.sectors[s].1
    }

    /// Dense offset where sector `s` starts.
    pub fn sector_offset(&self, s: usize) -> usize {
        self.offsets[s]
    }

    /// The sectors as a slice.
    pub fn sectors(&self) -> &[(QN, usize)] {
        &self.sectors
    }

    /// Charge arity of the sectors.
    pub fn arity(&self) -> u8 {
        self.sectors[0].0.n_charges()
    }

    /// Same sectors, flipped arrow.
    pub fn dual(&self) -> QnIndex {
        QnIndex {
            arrow: self.arrow.flip(),
            sectors: self.sectors.clone(),
            offsets: self.offsets.clone(),
        }
    }

    /// Find the sector containing dense position `i`; returns
    /// `(sector, within-sector offset)`.
    pub fn locate(&self, i: usize) -> (usize, usize) {
        debug_assert!(i < self.dim());
        // offsets is sorted; binary search for the last offset <= i
        let s = match self.offsets.binary_search(&i) {
            Ok(s) => {
                // could be the start of an empty... dims > 0 so exact hit is
                // the sector start
                s.min(self.n_sectors() - 1)
            }
            Err(ins) => ins - 1,
        };
        (s, i - self.offsets[s])
    }

    /// Sector lists are contraction-compatible when the QNs and dims match
    /// pairwise and the arrows are opposite.
    pub fn contractable_with(&self, other: &QnIndex) -> bool {
        self.arrow != other.arrow && self.sectors == other.sectors
    }

    /// Fuse with another index: the product index whose sectors are all
    /// pairwise sums (merged by QN, dims multiplied and summed).
    /// The fused arrow is `self.arrow` (caller aligns arrows first).
    pub fn fuse(&self, other: &QnIndex) -> QnIndex {
        use std::collections::BTreeMap;
        let mut acc: BTreeMap<QN, usize> = BTreeMap::new();
        for &(qa, da) in &self.sectors {
            let qa_s = crate::qn::signed(qa, self.arrow);
            for &(qb, db) in &other.sectors {
                let qb_s = crate::qn::signed(qb, other.arrow);
                // fused charge measured in the `self.arrow` direction
                let fused = crate::qn::signed(qa_s.add(qb_s), self.arrow);
                *acc.entry(fused).or_insert(0) += da * db;
            }
        }
        QnIndex::new(self.arrow, acc.into_iter().collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spin_phys(arrow: Arrow) -> QnIndex {
        // spin-1/2 site: Sz = ±1 (doubled), each 1-dimensional
        QnIndex::new(arrow, vec![(QN::one(1), 1), (QN::one(-1), 1)])
    }

    #[test]
    fn dims_and_offsets() {
        let i = QnIndex::new(
            Arrow::Out,
            vec![(QN::one(-2), 3), (QN::one(0), 5), (QN::one(2), 2)],
        );
        assert_eq!(i.dim(), 10);
        assert_eq!(i.n_sectors(), 3);
        assert_eq!(i.sector_offset(0), 0);
        assert_eq!(i.sector_offset(1), 3);
        assert_eq!(i.sector_offset(2), 8);
        assert_eq!(i.sector_dim(1), 5);
        assert_eq!(i.qn(2), QN::one(2));
    }

    #[test]
    fn locate_inverts_offsets() {
        let i = QnIndex::new(
            Arrow::Out,
            vec![(QN::one(-2), 3), (QN::one(0), 5), (QN::one(2), 2)],
        );
        for pos in 0..i.dim() {
            let (s, w) = i.locate(pos);
            assert_eq!(i.sector_offset(s) + w, pos);
            assert!(w < i.sector_dim(s));
        }
    }

    #[test]
    fn dual_flips_arrow_only() {
        let i = spin_phys(Arrow::In);
        let d = i.dual();
        assert_eq!(d.arrow(), Arrow::Out);
        assert_eq!(d.sectors(), i.sectors());
        assert!(i.contractable_with(&d));
        assert!(!i.contractable_with(&i.clone()));
    }

    #[test]
    fn fuse_two_spins() {
        // two spin-1/2 out-indices fuse to Sz = -2, 0, 0, +2 => sectors
        // (-2,1), (0,2), (+2,1)
        let a = spin_phys(Arrow::Out);
        let f = a.fuse(&a);
        assert_eq!(f.dim(), 4);
        assert_eq!(f.n_sectors(), 3);
        assert_eq!(f.sectors()[0], (QN::one(-2), 1));
        assert_eq!(f.sectors()[1], (QN::one(0), 2));
        assert_eq!(f.sectors()[2], (QN::one(2), 1));
    }

    #[test]
    fn fuse_opposite_arrows_cancels_charge() {
        // Out(+1) fused with In(+1) gives net 0 for matching sectors
        let a = spin_phys(Arrow::Out);
        let b = spin_phys(Arrow::In);
        let f = a.fuse(&b);
        // sectors: +1-1=0 (dim 1*1 twice => 2), +1+1=2?? careful with signs:
        // In flips: q_b effective -q. (+1,-(+1))=0, (+1,-(-1))=+2,
        // (-1,-(+1))=-2, (-1,-(-1))=0
        assert_eq!(f.n_sectors(), 3);
        assert_eq!(f.sectors()[1], (QN::one(0), 2));
        assert_eq!(f.dim(), 4);
    }

    #[test]
    fn trivial_index() {
        let t = QnIndex::trivial(Arrow::Out, 1, 1);
        assert_eq!(t.dim(), 1);
        assert!(t.qn(0).is_zero());
    }

    #[test]
    #[should_panic(expected = "zero-dim sector")]
    fn zero_dim_rejected() {
        QnIndex::new(Arrow::In, vec![(QN::one(0), 0)]);
    }
}

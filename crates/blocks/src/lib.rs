//! `tt-blocks` — quantum-number block-sparse tensors and the paper's three
//! contraction algorithms.
//!
//! Implements Section II-D (quantum numbers) and Section IV (algorithms) of
//! the paper:
//!
//! * [`qn::QN`] / [`qn::Arrow`] — up to two additive U(1) charges with
//!   directed indices,
//! * [`index::QnIndex`] — graded indices (sector lists with degeneracies),
//! * [`block::BlockSparseTensor`] — the list-of-blocks tensor format,
//!   including flattening to single sparse/dense tensors and the
//!   pre-computed output-sparsity masks,
//! * [`contract`] — the `list` (Alg. 2), `sparse-dense` and `sparse-sparse`
//!   contraction algorithms, all dispatched through a
//!   [`tt_dist::Executor`],
//! * [`linalg`] — block SVD/QR via the list method with *global* singular
//!   value truncation,
//! * [`model::BlockModel`] — the empirical block model and the Table II
//!   complexity formulas.

pub mod block;
pub mod contract;
pub mod index;
pub mod linalg;
pub mod model;
pub mod qn;

pub use block::{BlockKey, BlockSparseTensor};
pub use contract::{
    chain_apply, contract, contract_resident, free_operand, upload_operand, Algorithm,
    ResidentOperand,
};
pub use index::QnIndex;
pub use linalg::{block_qr, block_svd, scale_bond, BlockDiag, BlockSvd};
pub use model::BlockModel;
pub use qn::{Arrow, QN};

/// Crate-wide result type.
pub type Result<T> = std::result::Result<T, Error>;

/// Errors from block-sparse tensor operations.
#[derive(Debug, Clone, PartialEq)]
pub enum Error {
    /// Malformed block key, mode list or dimension mismatch.
    Key(String),
    /// Operation violates quantum-number conservation.
    Symmetry(String),
    /// Error from the distributed runtime or kernels.
    Dist(String),
}

impl From<tt_dist::Error> for Error {
    fn from(e: tt_dist::Error) -> Self {
        Error::Dist(e.to_string())
    }
}

impl From<tt_tensor::Error> for Error {
    fn from(e: tt_tensor::Error) -> Self {
        Error::Dist(e.to_string())
    }
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Error::Key(s) => write!(f, "key error: {s}"),
            Error::Symmetry(s) => write!(f, "symmetry violation: {s}"),
            Error::Dist(s) => write!(f, "distributed runtime: {s}"),
        }
    }
}

impl std::error::Error for Error {}

//! The paper's three block-sparsity contraction algorithms (Section IV-A).
//!
//! * [`Algorithm::List`] — Algorithm 2 of the paper: loop over all pairs of
//!   quantum-number blocks, contract pairs whose labels match along the
//!   contracted indices, and accumulate into the result block keyed by the
//!   surviving labels. Each pairwise contraction is dispatched through the
//!   executor (a distributed dense contraction when ranks > 1).
//! * [`Algorithm::SparseDense`] — flatten the first (sparse-stored) operand
//!   into one big sparse tensor, densify the second, contract once.
//! * [`Algorithm::SparseSparse`] — flatten both operands into sparse
//!   tensors and contract once, with the output sparsity pre-computed from
//!   the quantum-number structure and passed as a mask.
//!
//! All three produce identical results; they differ in supersteps, memory
//! and communication exactly as Table II quantifies.

use crate::block::BlockSparseTensor;
use crate::index::QnIndex;
use crate::{Error, Result};
use tt_dist::Executor;
use tt_tensor::einsum::ContractPlan;

/// Which block-sparsity strategy to contract with.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Algorithm {
    /// Per-block-pair contraction (paper Alg. 2).
    List,
    /// One sparse × dense contraction over the flattened tensors.
    SparseDense,
    /// One sparse × sparse contraction with pre-computed output sparsity.
    SparseSparse,
}

impl std::fmt::Display for Algorithm {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Algorithm::List => write!(f, "list"),
            Algorithm::SparseDense => write!(f, "sparse-dense"),
            Algorithm::SparseSparse => write!(f, "sparse-sparse"),
        }
    }
}

/// Validate operands against the plan and compute the output indices/flux.
fn output_structure(
    plan: &ContractPlan,
    a: &BlockSparseTensor,
    b: &BlockSparseTensor,
) -> Result<(Vec<QnIndex>, crate::qn::QN)> {
    let (oa, ob) = plan.operand_orders();
    if oa != a.order() || ob != b.order() {
        return Err(Error::Key(format!(
            "spec orders {oa}/{ob} don't match tensors {}/{}",
            a.order(),
            b.order()
        )));
    }
    for (&ia, &ib) in plan.ctr_a_positions().iter().zip(plan.ctr_b_positions()) {
        if !a.indices()[ia].contractable_with(&b.indices()[ib]) {
            return Err(Error::Symmetry(format!(
                "contracted index pair ({ia},{ib}) has mismatched sectors or arrows"
            )));
        }
    }
    let natural: Vec<QnIndex> = plan
        .free_a_positions()
        .iter()
        .map(|&i| a.indices()[i].clone())
        .chain(
            plan.free_b_positions()
                .iter()
                .map(|&j| b.indices()[j].clone()),
        )
        .collect();
    let out_indices: Vec<QnIndex> = plan
        .output_permutation()
        .iter()
        .map(|&p| natural[p].clone())
        .collect();
    Ok((out_indices, a.flux().add(b.flux())))
}

/// Contract two block-sparse tensors with the chosen algorithm.
pub fn contract(
    exec: &Executor,
    algo: Algorithm,
    spec: &str,
    a: &BlockSparseTensor,
    b: &BlockSparseTensor,
) -> Result<BlockSparseTensor> {
    match algo {
        Algorithm::List => contract_list(exec, spec, a, b),
        Algorithm::SparseDense => contract_sparse_dense(exec, spec, a, b),
        Algorithm::SparseSparse => contract_sparse_sparse(exec, spec, a, b),
    }
}

/// Paper Algorithm 2: loop over block pairs, match contracted labels,
/// accumulate result blocks.
///
/// The independent per-pair GEMMs are dispatched through
/// [`Executor::contract_batch`] — pool-parallel in `ExecMode::Threaded` —
/// and the partial results are accumulated into output blocks afterwards
/// in pair-enumeration order, so the floating-point accumulation order
/// (and therefore the result, bit for bit) never depends on the mode.
pub fn contract_list(
    exec: &Executor,
    spec: &str,
    a: &BlockSparseTensor,
    b: &BlockSparseTensor,
) -> Result<BlockSparseTensor> {
    let plan = ContractPlan::parse(spec).map_err(tt_dist::Error::from)?;
    let (out_indices, out_flux) = output_structure(&plan, a, b)?;
    let mut c = BlockSparseTensor::new(out_indices, out_flux);

    let ctr_a = plan.ctr_a_positions();
    let ctr_b = plan.ctr_b_positions();
    let free_a = plan.free_a_positions();
    let free_b = plan.free_b_positions();
    let out_perm = plan.output_permutation();

    // index B's blocks by contracted-label tuple for O(|A|+|B|+matches)
    use std::collections::HashMap;
    let mut b_by_ctr: HashMap<Vec<u16>, Vec<&crate::block::BlockKey>> = HashMap::new();
    for (kb, _) in b.blocks() {
        let ctr_key: Vec<u16> = ctr_b.iter().map(|&i| kb[i]).collect();
        b_by_ctr.entry(ctr_key).or_default().push(kb);
    }

    // enumerate matching pairs in deterministic (A-stored, B-stored) order
    let mut out_keys: Vec<crate::block::BlockKey> = Vec::new();
    let mut pairs: Vec<(&tt_tensor::DenseTensor<f64>, &tt_tensor::DenseTensor<f64>)> = Vec::new();
    for (ka, ablock) in a.blocks() {
        let ctr_key: Vec<u16> = ctr_a.iter().map(|&i| ka[i]).collect();
        let Some(bkeys) = b_by_ctr.get(&ctr_key) else {
            continue;
        };
        for &kb in bkeys {
            let bblock = b.block(kb).expect("key from iteration");
            // natural result key: free_a labels then free_b labels
            let natural: Vec<u16> = free_a
                .iter()
                .map(|&i| ka[i])
                .chain(free_b.iter().map(|&j| kb[j]))
                .collect();
            out_keys.push(out_perm.iter().map(|&p| natural[p]).collect());
            pairs.push((ablock, bblock));
        }
    }

    // accumulate a partial into its output block (always in pair order)
    let absorb = |c: &mut BlockSparseTensor,
                  kc: crate::block::BlockKey,
                  partial: tt_tensor::DenseTensor<f64>|
     -> Result<()> {
        match c.block(&kc) {
            Some(existing) => {
                let mut acc = existing.clone();
                acc.axpy(1.0, &partial).map_err(tt_dist::Error::from)?;
                c.insert_block(kc, acc)?;
            }
            None => c.insert_block(kc, partial)?,
        }
        Ok(())
    };

    if exec.mode() == tt_dist::ExecMode::Threaded {
        // pair-level fan-out over the pool; partials return in pair order
        let partials = exec.contract_batch(spec, &pairs)?;
        for (kc, partial) in out_keys.into_iter().zip(partials) {
            absorb(&mut c, kc, partial)?;
        }
    } else {
        // sequential: stream one partial at a time (no operand copies, no
        // materialized partial list) — bitwise identical to the batch path
        for (kc, (ablock, bblock)) in out_keys.into_iter().zip(pairs) {
            let partial = exec.contract(spec, ablock, bblock)?;
            absorb(&mut c, kc, partial)?;
        }
    }
    Ok(c)
}

/// The sparse-dense algorithm: flattened-sparse A times densified B.
pub fn contract_sparse_dense(
    exec: &Executor,
    spec: &str,
    a: &BlockSparseTensor,
    b: &BlockSparseTensor,
) -> Result<BlockSparseTensor> {
    let plan = ContractPlan::parse(spec).map_err(tt_dist::Error::from)?;
    let (out_indices, out_flux) = output_structure(&plan, a, b)?;
    let a_flat = a.to_flat_sparse();
    let b_dense = b.to_dense();
    let c_dense = exec.contract_sd(spec, &a_flat, &b_dense)?;
    BlockSparseTensor::from_dense(out_indices, out_flux, &c_dense, 0.0)
}

/// The sparse-sparse algorithm: both operands flattened, output sparsity
/// pre-computed from the quantum numbers and passed as a contraction mask.
pub fn contract_sparse_sparse(
    exec: &Executor,
    spec: &str,
    a: &BlockSparseTensor,
    b: &BlockSparseTensor,
) -> Result<BlockSparseTensor> {
    let plan = ContractPlan::parse(spec).map_err(tt_dist::Error::from)?;
    let (out_indices, out_flux) = output_structure(&plan, a, b)?;
    let a_flat = a.to_flat_sparse();
    let b_flat = b.to_flat_sparse();
    let mask = BlockSparseTensor::flat_mask(&out_indices, out_flux);
    let c_sparse = exec.contract_ss(spec, &a_flat, &b_flat, Some(&mask))?;
    BlockSparseTensor::from_flat_sparse(out_indices, out_flux, &c_sparse)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::qn::{Arrow, QN};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn bond(arrow: Arrow, dims: &[(i32, usize)]) -> QnIndex {
        QnIndex::new(arrow, dims.iter().map(|&(q, d)| (QN::one(q), d)).collect())
    }

    fn spin(arrow: Arrow) -> QnIndex {
        bond(arrow, &[(1, 1), (-1, 1)])
    }

    /// Two MPS-like tensors sharing a contractable bond.
    fn pair() -> (BlockSparseTensor, BlockSparseTensor) {
        let mut rng = StdRng::seed_from_u64(101);
        let il = bond(Arrow::In, &[(-1, 2), (1, 2)]);
        let mid = bond(Arrow::Out, &[(-2, 2), (0, 3), (2, 2)]);
        let a = BlockSparseTensor::random(
            vec![il, spin(Arrow::In), mid.clone()],
            QN::zero(1),
            &mut rng,
        );
        let ir = bond(Arrow::Out, &[(-3, 1), (-1, 3), (1, 3), (3, 1)]);
        let b =
            BlockSparseTensor::random(vec![mid.dual(), spin(Arrow::In), ir], QN::zero(1), &mut rng);
        (a, b)
    }

    #[test]
    fn list_matches_dense_reference() {
        let (a, b) = pair();
        let exec = Executor::local();
        let c = contract_list(&exec, "isj,jtk->istk", &a, &b).unwrap();
        let reference = tt_tensor::einsum("isj,jtk->istk", &a.to_dense(), &b.to_dense()).unwrap();
        assert!(c.to_dense().allclose(&reference, 1e-11));
        // result conserves flux
        for (k, _) in c.blocks() {
            assert!(c.is_allowed(k));
        }
    }

    #[test]
    fn all_three_algorithms_agree() {
        let (a, b) = pair();
        let exec = Executor::local();
        let spec = "isj,jtk->istk";
        let c_list = contract(&exec, Algorithm::List, spec, &a, &b).unwrap();
        let c_sd = contract(&exec, Algorithm::SparseDense, spec, &a, &b).unwrap();
        let c_ss = contract(&exec, Algorithm::SparseSparse, spec, &a, &b).unwrap();
        let d = c_list.to_dense();
        assert!(c_sd.to_dense().allclose(&d, 1e-11));
        assert!(c_ss.to_dense().allclose(&d, 1e-11));
    }

    #[test]
    fn algorithms_agree_distributed() {
        let (a, b) = pair();
        let spec = "isj,jtk->istk";
        let local = Executor::local();
        let reference = contract(&local, Algorithm::List, spec, &a, &b)
            .unwrap()
            .to_dense();
        let dist = Executor::with_machine(
            tt_dist::Machine::blue_waters(4),
            1,
            tt_dist::ExecMode::Sequential,
        );
        for algo in [
            Algorithm::List,
            Algorithm::SparseDense,
            Algorithm::SparseSparse,
        ] {
            let c = contract(&dist, algo, spec, &a, &b).unwrap();
            assert!(c.to_dense().allclose(&reference, 1e-10), "{algo}");
        }
    }

    #[test]
    fn output_permutation_respected() {
        let (a, b) = pair();
        let exec = Executor::local();
        let c = contract_list(&exec, "isj,jtk->tkis", &a, &b).unwrap();
        let reference = tt_tensor::einsum("isj,jtk->tkis", &a.to_dense(), &b.to_dense()).unwrap();
        assert!(c.to_dense().allclose(&reference, 1e-11));
    }

    #[test]
    fn contraction_to_scalar_like() {
        // contract all of A's indices with B† ⇒ order-0 is not supported by
        // QnIndex (min 1 index); contract down to the bond instead
        let (a, _) = pair();
        let exec = Executor::local();
        let adag = a.conj();
        // <A|A> via two-index contraction: sum over il, s leaving (j, j')
        let c = contract_list(&exec, "isj,isk->jk", &adag, &a).unwrap();
        let d = c.to_dense();
        // must be symmetric positive semidefinite gram matrix
        for i in 0..d.dims()[0] {
            for j in 0..d.dims()[1] {
                assert!((d.at(&[i, j]) - d.at(&[j, i])).abs() < 1e-10);
            }
        }
        let trace: f64 = (0..d.dims()[0]).map(|i| d.at(&[i, i])).sum();
        assert!((trace - a.norm() * a.norm()) / trace < 1e-10);
    }

    #[test]
    fn mismatched_sectors_rejected() {
        let mut rng = StdRng::seed_from_u64(102);
        let i1 = bond(Arrow::Out, &[(0, 2)]);
        let i2 = bond(Arrow::In, &[(0, 3)]);
        let a = BlockSparseTensor::random(vec![i1.clone(), i1.dual()], QN::zero(1), &mut rng);
        let b = BlockSparseTensor::random(vec![i2.clone(), i2.dual()], QN::zero(1), &mut rng);
        let exec = Executor::local();
        assert!(contract_list(&exec, "ij,jk->ik", &a, &b).is_err());
        // same-direction arrows also rejected: a's index 1 is In and b2's
        // index 0 is In as well
        let b2 = BlockSparseTensor::random(vec![i1.dual(), i1.clone()], QN::zero(1), &mut rng);
        assert!(contract_list(&exec, "ij,jk->ik", &a, &b2).is_err());
    }
}

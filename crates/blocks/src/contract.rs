//! The paper's three block-sparsity contraction algorithms (Section IV-A).
//!
//! * [`Algorithm::List`] — Algorithm 2 of the paper: loop over all pairs of
//!   quantum-number blocks, contract pairs whose labels match along the
//!   contracted indices, and accumulate into the result block keyed by the
//!   surviving labels. Each pairwise contraction is dispatched through the
//!   executor (a distributed dense contraction when ranks > 1).
//! * [`Algorithm::SparseDense`] — flatten the first (sparse-stored) operand
//!   into one big sparse tensor, densify the second, contract once.
//! * [`Algorithm::SparseSparse`] — flatten both operands into sparse
//!   tensors and contract once, with the output sparsity pre-computed from
//!   the quantum-number structure and passed as a mask.
//!
//! All three produce identical results; they differ in supersteps, memory
//! and communication exactly as Table II quantifies.

use crate::block::{BlockKey, BlockSparseTensor};
use crate::index::QnIndex;
use crate::qn::QN;
use crate::{Error, Result};
use tt_dist::{DenseOp, Executor, OpHandle};
use tt_tensor::einsum::ContractPlan;

/// Which block-sparsity strategy to contract with.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Algorithm {
    /// Per-block-pair contraction (paper Alg. 2).
    List,
    /// One sparse × dense contraction over the flattened tensors.
    SparseDense,
    /// One sparse × sparse contraction with pre-computed output sparsity.
    SparseSparse,
}

impl std::fmt::Display for Algorithm {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Algorithm::List => write!(f, "list"),
            Algorithm::SparseDense => write!(f, "sparse-dense"),
            Algorithm::SparseSparse => write!(f, "sparse-sparse"),
        }
    }
}

/// Validate operands against the plan and compute the output indices/flux.
fn output_structure(
    plan: &ContractPlan,
    a: &BlockSparseTensor,
    b: &BlockSparseTensor,
) -> Result<(Vec<QnIndex>, QN)> {
    output_structure_parts(plan, a.indices(), a.flux(), b.indices(), b.flux())
}

/// [`output_structure`] from operands given only as structure (indices +
/// flux) — the form a [`ResidentOperand`] carries, and all a chain step
/// needs to plan its output symbolically.
fn output_structure_parts(
    plan: &ContractPlan,
    a_indices: &[QnIndex],
    a_flux: QN,
    b_indices: &[QnIndex],
    b_flux: QN,
) -> Result<(Vec<QnIndex>, QN)> {
    let (oa, ob) = plan.operand_orders();
    if oa != a_indices.len() || ob != b_indices.len() {
        return Err(Error::Key(format!(
            "spec orders {oa}/{ob} don't match tensors {}/{}",
            a_indices.len(),
            b_indices.len()
        )));
    }
    for (&ia, &ib) in plan.ctr_a_positions().iter().zip(plan.ctr_b_positions()) {
        if !a_indices[ia].contractable_with(&b_indices[ib]) {
            return Err(Error::Symmetry(format!(
                "contracted index pair ({ia},{ib}) has mismatched sectors or arrows"
            )));
        }
    }
    let natural: Vec<QnIndex> = plan
        .free_a_positions()
        .iter()
        .map(|&i| a_indices[i].clone())
        .chain(
            plan.free_b_positions()
                .iter()
                .map(|&j| b_indices[j].clone()),
        )
        .collect();
    let out_indices: Vec<QnIndex> = plan
        .output_permutation()
        .iter()
        .map(|&p| natural[p].clone())
        .collect();
    Ok((out_indices, a_flux.add(b_flux)))
}

/// Contract two block-sparse tensors with the chosen algorithm.
pub fn contract(
    exec: &Executor,
    algo: Algorithm,
    spec: &str,
    a: &BlockSparseTensor,
    b: &BlockSparseTensor,
) -> Result<BlockSparseTensor> {
    match algo {
        Algorithm::List => contract_list(exec, spec, a, b),
        Algorithm::SparseDense => contract_sparse_dense(exec, spec, a, b),
        Algorithm::SparseSparse => contract_sparse_sparse(exec, spec, a, b),
    }
}

/// Paper Algorithm 2: loop over block pairs, match contracted labels,
/// accumulate result blocks.
///
/// The independent per-pair GEMMs are dispatched through
/// [`Executor::contract_batch`] — pool-parallel in `ExecMode::Threaded` —
/// and the partial results are accumulated into output blocks afterwards
/// in pair-enumeration order, so the floating-point accumulation order
/// (and therefore the result, bit for bit) never depends on the mode.
pub fn contract_list(
    exec: &Executor,
    spec: &str,
    a: &BlockSparseTensor,
    b: &BlockSparseTensor,
) -> Result<BlockSparseTensor> {
    let plan = ContractPlan::parse(spec).map_err(tt_dist::Error::from)?;
    let (out_indices, out_flux) = output_structure(&plan, a, b)?;
    let mut c = BlockSparseTensor::new(out_indices, out_flux);

    let ctr_a = plan.ctr_a_positions();
    let ctr_b = plan.ctr_b_positions();
    let free_a = plan.free_a_positions();
    let free_b = plan.free_b_positions();
    let out_perm = plan.output_permutation();

    // index B's blocks by contracted-label tuple for O(|A|+|B|+matches)
    use std::collections::HashMap;
    let mut b_by_ctr: HashMap<Vec<u16>, Vec<&crate::block::BlockKey>> = HashMap::new();
    for (kb, _) in b.blocks() {
        let ctr_key: Vec<u16> = ctr_b.iter().map(|&i| kb[i]).collect();
        b_by_ctr.entry(ctr_key).or_default().push(kb);
    }

    // enumerate matching pairs in deterministic (A-stored, B-stored) order
    let mut out_keys: Vec<crate::block::BlockKey> = Vec::new();
    let mut pairs: Vec<(&tt_tensor::DenseTensor<f64>, &tt_tensor::DenseTensor<f64>)> = Vec::new();
    for (ka, ablock) in a.blocks() {
        let ctr_key: Vec<u16> = ctr_a.iter().map(|&i| ka[i]).collect();
        let Some(bkeys) = b_by_ctr.get(&ctr_key) else {
            continue;
        };
        for &kb in bkeys {
            let bblock = b.block(kb).expect("key from iteration");
            // natural result key: free_a labels then free_b labels
            let natural: Vec<u16> = free_a
                .iter()
                .map(|&i| ka[i])
                .chain(free_b.iter().map(|&j| kb[j]))
                .collect();
            out_keys.push(out_perm.iter().map(|&p| natural[p]).collect());
            pairs.push((ablock, bblock));
        }
    }

    if exec.mode() == tt_dist::ExecMode::Threaded {
        // pair-level fan-out over the pool; partials return in pair order
        let partials = exec.contract_batch(spec, &pairs)?;
        for (kc, partial) in out_keys.into_iter().zip(partials) {
            absorb(&mut c, kc, partial)?;
        }
    } else {
        // sequential: stream one partial at a time (no operand copies, no
        // materialized partial list) — bitwise identical to the batch path
        for (kc, (ablock, bblock)) in out_keys.into_iter().zip(pairs) {
            let partial = exec.contract(spec, ablock, bblock)?;
            absorb(&mut c, kc, partial)?;
        }
    }
    Ok(c)
}

/// Accumulate a partial into its output block (always called in pair
/// order, so the floating-point accumulation order is fixed). The
/// `Arc`-backed storage accumulates in place — no clone per partial.
fn absorb(
    c: &mut BlockSparseTensor,
    kc: BlockKey,
    partial: tt_tensor::DenseTensor<f64>,
) -> Result<()> {
    c.axpy_block(kc, partial)
}

/// A block-sparse operand uploaded onto the executor for reuse across
/// many contractions (the paper's operand-residency discipline: the
/// environment and MPO tensors of a Davidson solve stay put, only the
/// iteration vector moves).
///
/// The uploaded form follows the algorithm that will consume it: one
/// [`OpHandle`] per quantum-number block for [`Algorithm::List`]
/// (block-pair tasks reference resident blocks by key and are routed to
/// the rank that holds them), or one flattened-sparse handle for the
/// sparse-dense / sparse-sparse algorithms (resident coordinate buckets
/// and grouped tables). Free with [`free_operand`] when the reuse window
/// closes.
pub struct ResidentOperand {
    indices: Vec<QnIndex>,
    flux: QN,
    form: ResidentForm,
}

enum ResidentForm {
    List {
        keys: Vec<BlockKey>,
        handles: Vec<OpHandle>,
    },
    Flat(OpHandle),
}

impl ResidentOperand {
    /// The operand's index structure.
    pub fn indices(&self) -> &[QnIndex] {
        &self.indices
    }

    /// The operand's flux.
    pub fn flux(&self) -> QN {
        self.flux
    }
}

/// Upload `t` in the form `algo` consumes (see [`ResidentOperand`]).
pub fn upload_operand(exec: &Executor, algo: Algorithm, t: &BlockSparseTensor) -> ResidentOperand {
    let form = match algo {
        Algorithm::List => {
            let mut keys = Vec::with_capacity(t.n_blocks());
            let mut handles = Vec::with_capacity(t.n_blocks());
            for (k, block) in t.blocks_shared() {
                keys.push(k.clone());
                handles.push(exec.upload_shared(block));
            }
            ResidentForm::List { keys, handles }
        }
        Algorithm::SparseDense | Algorithm::SparseSparse => {
            ResidentForm::Flat(exec.upload_sparse(&t.to_flat_sparse()))
        }
    };
    ResidentOperand {
        indices: t.indices().to_vec(),
        flux: t.flux(),
        form,
    }
}

/// Free every handle behind `op` (the derived worker buffers are dropped
/// once the last upload of each content is freed).
pub fn free_operand(exec: &Executor, op: &ResidentOperand) -> Result<()> {
    match &op.form {
        ResidentForm::List { handles, .. } => {
            for h in handles {
                exec.free(h).map_err(Error::from)?;
            }
        }
        ResidentForm::Flat(h) => exec.free(h).map_err(Error::from)?,
    }
    Ok(())
}

/// Contract a resident operand `a` against a by-value operand `b` —
/// bitwise-identical to [`contract`] on the same tensors, on every
/// backend and in every mode.
///
/// For [`Algorithm::List`] the per-pair `B` blocks are themselves
/// uploaded transiently (each distinct block ships at most once per rank
/// per call instead of once per pair) and freed before returning; the
/// resident `A` blocks ship nothing after their first use, which is
/// where the Davidson matvec reuse pays.
///
/// The transient uploads cost one content hash per distinct `B` block on
/// every call (the `Arc`-backed block storage makes the upload itself
/// clone-free) — on `Backend::InProcess` that is overhead with no
/// shipping to save, but it is paid uniformly on purpose: the α–β charge
/// sequence depends on the registry's hit/miss bookkeeping, and keeping
/// it identical on every backend is what makes the cost counters
/// bitwise-equal across backends (a tested invariant).
pub fn contract_resident(
    exec: &Executor,
    algo: Algorithm,
    spec: &str,
    a: &ResidentOperand,
    b: &BlockSparseTensor,
) -> Result<BlockSparseTensor> {
    let plan = ContractPlan::parse(spec).map_err(tt_dist::Error::from)?;
    let (out_indices, out_flux) =
        output_structure_parts(&plan, &a.indices, a.flux, b.indices(), b.flux())?;
    match &a.form {
        ResidentForm::Flat(h) => match algo {
            Algorithm::SparseDense => {
                let b_dense = b.to_dense();
                let c_dense = exec.contract_sd_h(spec, h.into(), (&b_dense).into())?;
                BlockSparseTensor::from_dense(out_indices, out_flux, &c_dense, 0.0)
            }
            Algorithm::SparseSparse => {
                let b_flat = b.to_flat_sparse();
                let mask = BlockSparseTensor::flat_mask(&out_indices, out_flux);
                let c_sparse = exec.contract_ss_h(spec, h.into(), (&b_flat).into(), Some(&mask))?;
                BlockSparseTensor::from_flat_sparse(out_indices, out_flux, &c_sparse)
            }
            Algorithm::List => Err(Error::Key(
                "operand was uploaded in flattened form; contract with the algorithm it was \
                 uploaded for"
                    .into(),
            )),
        },
        ResidentForm::List { keys, handles } => {
            if algo != Algorithm::List {
                return Err(Error::Key(
                    "operand was uploaded per-block for the list algorithm".into(),
                ));
            }
            let mut c = BlockSparseTensor::new(out_indices, out_flux);

            let ctr_a = plan.ctr_a_positions();
            let ctr_b = plan.ctr_b_positions();
            let free_a = plan.free_a_positions();
            let free_b = plan.free_b_positions();
            let out_perm = plan.output_permutation();

            // index B's blocks by contracted-label tuple, exactly like
            // contract_list, so pair enumeration order matches it
            use std::collections::HashMap;
            let mut b_by_ctr: HashMap<Vec<u16>, Vec<&BlockKey>> = HashMap::new();
            for (kb, _) in b.blocks() {
                let ctr_key: Vec<u16> = ctr_b.iter().map(|&i| kb[i]).collect();
                b_by_ctr.entry(ctr_key).or_default().push(kb);
            }

            // pass 1: enumerate matching pairs in the exact order
            // contract_list does, uploading each used B block once
            // (first-use order — deterministic), to be freed on return
            let mut b_handles: HashMap<&BlockKey, OpHandle> = HashMap::new();
            let mut out_keys: Vec<BlockKey> = Vec::new();
            let mut pair_refs: Vec<(usize, &BlockKey)> = Vec::new();
            for (ai, ka) in keys.iter().enumerate() {
                let ctr_key: Vec<u16> = ctr_a.iter().map(|&i| ka[i]).collect();
                let Some(bkeys) = b_by_ctr.get(&ctr_key) else {
                    continue;
                };
                for &kb in bkeys {
                    if !b_handles.contains_key(kb) {
                        // Arc-shared: the upload hashes the block but does
                        // not clone its storage
                        let block = b.block_shared(kb).expect("key from iteration");
                        b_handles.insert(kb, exec.upload_shared(block));
                    }
                    let natural: Vec<u16> = free_a
                        .iter()
                        .map(|&i| ka[i])
                        .chain(free_b.iter().map(|&j| kb[j]))
                        .collect();
                    out_keys.push(out_perm.iter().map(|&p| natural[p]).collect());
                    pair_refs.push((ai, kb));
                }
            }
            // pass 2: assemble handle pairs (immutable borrows only)
            let ops: Vec<(DenseOp, DenseOp)> = pair_refs
                .iter()
                .map(|&(ai, kb)| {
                    (
                        (&handles[ai]).into(),
                        b_handles.get(kb).expect("uploaded above").into(),
                    )
                })
                .collect();
            let partials = exec.contract_batch_h(spec, &ops);
            // release the transient uploads before surfacing any batch
            // error — a failed matvec must not leave pinned (LRU-exempt)
            // buffers behind on the workers
            drop(ops);
            let mut free_err: Option<tt_dist::Error> = None;
            for h in b_handles.values() {
                if let Err(e) = exec.free(h) {
                    free_err.get_or_insert(e);
                }
            }
            let partials = partials?;
            if let Some(e) = free_err {
                return Err(e.into());
            }
            for (kc, partial) in out_keys.into_iter().zip(partials) {
                absorb(&mut c, kc, partial)?;
            }
            Ok(c)
        }
    }
}

/// Apply an ordered chain of contractions — each step's structural `A`
/// operand resident, its `B` operand the previous step's output (`x` for
/// step 0) — as **worker-side chain supersteps**: every intermediate
/// stays pinned in the worker stores under driver-issued keys, and only
/// the final result's blocks are downloaded. Bitwise-identical to folding
/// [`contract_resident`] over the same steps (and therefore to the value
/// path) on every backend; on the multi-process backend the driver's
/// *result* traffic collapses from one payload per block pair per step to
/// one download per output block of the last step.
///
/// [`Algorithm::List`] chains per-block results (accumulate steps fold
/// partials in the exact enumeration order of [`contract_list`]);
/// [`Algorithm::SparseDense`] chains the whole flattened contractions.
/// The sparse-sparse kernel's flat outputs need driver-side re-blocking
/// between steps, so [`Algorithm::SparseSparse`] falls back to the
/// per-step resident path.
pub fn chain_apply(
    exec: &Executor,
    algo: Algorithm,
    steps: &[(&str, &ResidentOperand)],
    x: &BlockSparseTensor,
) -> Result<BlockSparseTensor> {
    if steps.is_empty() {
        return Err(Error::Key("empty contraction chain".into()));
    }
    match algo {
        Algorithm::List => chain_apply_list(exec, steps, x),
        Algorithm::SparseDense => chain_apply_sd(exec, steps, x),
        Algorithm::SparseSparse => {
            let mut cur: Option<BlockSparseTensor> = None;
            for (spec, a) in steps {
                let b = cur.as_ref().unwrap_or(x);
                cur = Some(contract_resident(
                    exec,
                    Algorithm::SparseSparse,
                    spec,
                    a,
                    b,
                )?);
            }
            Ok(cur.expect("non-empty chain"))
        }
    }
}

/// Which resident buffer backs one `B` operand of a block chain step.
enum BRef {
    /// A transiently uploaded block of the chain input `x`.
    X(usize),
    /// The resident output of an earlier chain step.
    Step(usize),
}

/// The list-algorithm chain: propagate the block structure symbolically
/// (the driver knows every intermediate's block keys without seeing its
/// values), emit one chain step per block pair with accumulate steps in
/// [`contract_list`]'s exact enumeration order, and download only the
/// last contraction's blocks.
fn chain_apply_list(
    exec: &Executor,
    steps: &[(&str, &ResidentOperand)],
    x: &BlockSparseTensor,
) -> Result<BlockSparseTensor> {
    use std::collections::{BTreeMap, HashMap};
    use tt_dist::{ChainSrc, ChainStep};

    // upload the chain input's blocks once (Arc-shared — hash, no clone);
    // released before returning
    let x_keys: Vec<BlockKey> = x.blocks().map(|(k, _)| k.clone()).collect();
    let x_handles: Vec<OpHandle> = x
        .blocks_shared()
        .map(|(_, b)| exec.upload_shared(b))
        .collect();

    struct Desc {
        s: usize,
        ai: usize,
        b: BRef,
        acc: Option<usize>,
    }
    let mut descs: Vec<Desc> = Vec::new();
    let mut cur_indices = x.indices().to_vec();
    let mut cur_flux = x.flux();
    let mut cur: BTreeMap<BlockKey, BRef> = x_keys
        .iter()
        .cloned()
        .enumerate()
        .map(|(i, k)| (k, BRef::X(i)))
        .collect();
    for (s, (spec, a)) in steps.iter().enumerate() {
        let ResidentForm::List { keys: a_keys, .. } = &a.form else {
            return Err(Error::Key(
                "operand was uploaded in flattened form; chain with the algorithm it was \
                 uploaded for"
                    .into(),
            ));
        };
        let plan = ContractPlan::parse(spec).map_err(tt_dist::Error::from)?;
        let (out_indices, out_flux) =
            output_structure_parts(&plan, &a.indices, a.flux, &cur_indices, cur_flux)?;
        let ctr_a = plan.ctr_a_positions();
        let ctr_b = plan.ctr_b_positions();
        let free_a = plan.free_a_positions();
        let free_b = plan.free_b_positions();
        let out_perm = plan.output_permutation();
        // index the current B block set by contracted labels, preserving
        // sorted key order inside each group — the same order
        // contract_list sees from BTreeMap iteration
        let mut b_by_ctr: HashMap<Vec<u16>, Vec<&BlockKey>> = HashMap::new();
        for kb in cur.keys() {
            let ctr_key: Vec<u16> = ctr_b.iter().map(|&i| kb[i]).collect();
            b_by_ctr.entry(ctr_key).or_default().push(kb);
        }
        // out block key -> desc index of its creating (non-acc) step
        let mut made: BTreeMap<BlockKey, usize> = BTreeMap::new();
        for (ai, ka) in a_keys.iter().enumerate() {
            let ctr_key: Vec<u16> = ctr_a.iter().map(|&i| ka[i]).collect();
            let Some(bkeys) = b_by_ctr.get(&ctr_key) else {
                continue;
            };
            for &kb in bkeys {
                let natural: Vec<u16> = free_a
                    .iter()
                    .map(|&i| ka[i])
                    .chain(free_b.iter().map(|&j| kb[j]))
                    .collect();
                let kc: BlockKey = out_perm.iter().map(|&p| natural[p]).collect();
                let b = match cur.get(kb).expect("key from iteration") {
                    BRef::X(i) => BRef::X(*i),
                    BRef::Step(j) => BRef::Step(*j),
                };
                let acc = made.get(&kc).copied();
                if acc.is_none() {
                    made.insert(kc, descs.len());
                }
                descs.push(Desc { s, ai, b, acc });
            }
        }
        cur = made.into_iter().map(|(k, i)| (k, BRef::Step(i))).collect();
        cur_indices = out_indices;
        cur_flux = out_flux;
    }

    // assemble the executor chain against stable handle storage
    let chain_steps: Vec<ChainStep> = descs
        .iter()
        .map(|d| {
            let ResidentForm::List { handles, .. } = &steps[d.s].1.form else {
                unreachable!("validated above");
            };
            ChainStep {
                spec: steps[d.s].0,
                a: ChainSrc::Dense((&handles[d.ai]).into()),
                b: match d.b {
                    BRef::X(i) => ChainSrc::Dense((&x_handles[i]).into()),
                    BRef::Step(j) => ChainSrc::Prev(j),
                },
                acc: d.acc,
            }
        })
        .collect();
    let chained = exec.chain(&chain_steps);
    // release the transient x uploads before surfacing any chain error —
    // a failed matvec must not leave pinned buffers behind
    let mut free_err: Option<tt_dist::Error> = None;
    for h in &x_handles {
        if let Err(e) = exec.free(h) {
            free_err.get_or_insert(e);
        }
    }
    let mut results = chained.map_err(Error::from)?;
    if let Some(e) = free_err {
        return Err(e.into());
    }

    // download the final step's blocks (in sorted key order); free every
    // other resident intermediate in place
    let mut dl_keys: Vec<BlockKey> = Vec::new();
    let mut to_download: Vec<tt_dist::ResultHandle> = Vec::new();
    for (k, bref) in &cur {
        if let BRef::Step(j) = bref {
            dl_keys.push(k.clone());
            to_download.push(results[*j].take().expect("creating step owns its result"));
        }
    }
    let rest: Vec<tt_dist::ResultHandle> = results.into_iter().flatten().collect();
    let downloaded = exec.download_many(to_download);
    let freed = exec.free_results(rest);
    let downloaded = downloaded.map_err(Error::from)?;
    freed.map_err(Error::from)?;
    let mut c = BlockSparseTensor::new(cur_indices, cur_flux);
    for (k, t) in dl_keys.into_iter().zip(downloaded) {
        c.insert_block(k, t)?;
    }
    Ok(c)
}

/// The sparse-dense chain: one sd chain step per contraction, each
/// consuming the previous step's resident dense output directly (exact:
/// symmetric contractions put no weight outside allowed blocks, so
/// skipping the driver-side re-blocking between steps is bitwise-neutral).
fn chain_apply_sd(
    exec: &Executor,
    steps: &[(&str, &ResidentOperand)],
    x: &BlockSparseTensor,
) -> Result<BlockSparseTensor> {
    use tt_dist::{ChainSrc, ChainStep};
    let b_dense = x.to_dense();
    let mut cur_indices = x.indices().to_vec();
    let mut cur_flux = x.flux();
    let mut chain_steps: Vec<ChainStep> = Vec::with_capacity(steps.len());
    for (s, (spec, a)) in steps.iter().enumerate() {
        let ResidentForm::Flat(h) = &a.form else {
            return Err(Error::Key(
                "operand was uploaded per-block for the list algorithm".into(),
            ));
        };
        let plan = ContractPlan::parse(spec).map_err(tt_dist::Error::from)?;
        let (out_indices, out_flux) =
            output_structure_parts(&plan, &a.indices, a.flux, &cur_indices, cur_flux)?;
        chain_steps.push(ChainStep {
            spec,
            a: ChainSrc::Sparse(h.into()),
            b: if s == 0 {
                ChainSrc::Dense((&b_dense).into())
            } else {
                ChainSrc::Prev(s - 1)
            },
            acc: None,
        });
        cur_indices = out_indices;
        cur_flux = out_flux;
    }
    let mut results = exec.chain(&chain_steps).map_err(Error::from)?;
    let last = results
        .pop()
        .expect("non-empty chain")
        .expect("final step is not an accumulate");
    let rest: Vec<tt_dist::ResultHandle> = results.into_iter().flatten().collect();
    let y = exec.download(last);
    exec.free_results(rest).map_err(Error::from)?;
    BlockSparseTensor::from_dense(cur_indices, cur_flux, &y.map_err(Error::from)?, 0.0)
}

/// The sparse-dense algorithm: flattened-sparse A times densified B.
pub fn contract_sparse_dense(
    exec: &Executor,
    spec: &str,
    a: &BlockSparseTensor,
    b: &BlockSparseTensor,
) -> Result<BlockSparseTensor> {
    let plan = ContractPlan::parse(spec).map_err(tt_dist::Error::from)?;
    let (out_indices, out_flux) = output_structure(&plan, a, b)?;
    let a_flat = a.to_flat_sparse();
    let b_dense = b.to_dense();
    let c_dense = exec.contract_sd(spec, &a_flat, &b_dense)?;
    BlockSparseTensor::from_dense(out_indices, out_flux, &c_dense, 0.0)
}

/// The sparse-sparse algorithm: both operands flattened, output sparsity
/// pre-computed from the quantum numbers and passed as a contraction mask.
pub fn contract_sparse_sparse(
    exec: &Executor,
    spec: &str,
    a: &BlockSparseTensor,
    b: &BlockSparseTensor,
) -> Result<BlockSparseTensor> {
    let plan = ContractPlan::parse(spec).map_err(tt_dist::Error::from)?;
    let (out_indices, out_flux) = output_structure(&plan, a, b)?;
    let a_flat = a.to_flat_sparse();
    let b_flat = b.to_flat_sparse();
    let mask = BlockSparseTensor::flat_mask(&out_indices, out_flux);
    let c_sparse = exec.contract_ss(spec, &a_flat, &b_flat, Some(&mask))?;
    BlockSparseTensor::from_flat_sparse(out_indices, out_flux, &c_sparse)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::qn::{Arrow, QN};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn bond(arrow: Arrow, dims: &[(i32, usize)]) -> QnIndex {
        QnIndex::new(arrow, dims.iter().map(|&(q, d)| (QN::one(q), d)).collect())
    }

    fn spin(arrow: Arrow) -> QnIndex {
        bond(arrow, &[(1, 1), (-1, 1)])
    }

    /// Two MPS-like tensors sharing a contractable bond.
    fn pair() -> (BlockSparseTensor, BlockSparseTensor) {
        let mut rng = StdRng::seed_from_u64(101);
        let il = bond(Arrow::In, &[(-1, 2), (1, 2)]);
        let mid = bond(Arrow::Out, &[(-2, 2), (0, 3), (2, 2)]);
        let a = BlockSparseTensor::random(
            vec![il, spin(Arrow::In), mid.clone()],
            QN::zero(1),
            &mut rng,
        );
        let ir = bond(Arrow::Out, &[(-3, 1), (-1, 3), (1, 3), (3, 1)]);
        let b =
            BlockSparseTensor::random(vec![mid.dual(), spin(Arrow::In), ir], QN::zero(1), &mut rng);
        (a, b)
    }

    #[test]
    fn list_matches_dense_reference() {
        let (a, b) = pair();
        let exec = Executor::local();
        let c = contract_list(&exec, "isj,jtk->istk", &a, &b).unwrap();
        let reference = tt_tensor::einsum("isj,jtk->istk", &a.to_dense(), &b.to_dense()).unwrap();
        assert!(c.to_dense().allclose(&reference, 1e-11));
        // result conserves flux
        for (k, _) in c.blocks() {
            assert!(c.is_allowed(k));
        }
    }

    #[test]
    fn all_three_algorithms_agree() {
        let (a, b) = pair();
        let exec = Executor::local();
        let spec = "isj,jtk->istk";
        let c_list = contract(&exec, Algorithm::List, spec, &a, &b).unwrap();
        let c_sd = contract(&exec, Algorithm::SparseDense, spec, &a, &b).unwrap();
        let c_ss = contract(&exec, Algorithm::SparseSparse, spec, &a, &b).unwrap();
        let d = c_list.to_dense();
        assert!(c_sd.to_dense().allclose(&d, 1e-11));
        assert!(c_ss.to_dense().allclose(&d, 1e-11));
    }

    #[test]
    fn algorithms_agree_distributed() {
        let (a, b) = pair();
        let spec = "isj,jtk->istk";
        let local = Executor::local();
        let reference = contract(&local, Algorithm::List, spec, &a, &b)
            .unwrap()
            .to_dense();
        let dist = Executor::with_machine(
            tt_dist::Machine::blue_waters(4),
            1,
            tt_dist::ExecMode::Sequential,
        );
        for algo in [
            Algorithm::List,
            Algorithm::SparseDense,
            Algorithm::SparseSparse,
        ] {
            let c = contract(&dist, algo, spec, &a, &b).unwrap();
            assert!(c.to_dense().allclose(&reference, 1e-10), "{algo}");
        }
    }

    #[test]
    fn output_permutation_respected() {
        let (a, b) = pair();
        let exec = Executor::local();
        let c = contract_list(&exec, "isj,jtk->tkis", &a, &b).unwrap();
        let reference = tt_tensor::einsum("isj,jtk->tkis", &a.to_dense(), &b.to_dense()).unwrap();
        assert!(c.to_dense().allclose(&reference, 1e-11));
    }

    #[test]
    fn contraction_to_scalar_like() {
        // contract all of A's indices with B† ⇒ order-0 is not supported by
        // QnIndex (min 1 index); contract down to the bond instead
        let (a, _) = pair();
        let exec = Executor::local();
        let adag = a.conj();
        // <A|A> via two-index contraction: sum over il, s leaving (j, j')
        let c = contract_list(&exec, "isj,isk->jk", &adag, &a).unwrap();
        let d = c.to_dense();
        // must be symmetric positive semidefinite gram matrix
        for i in 0..d.dims()[0] {
            for j in 0..d.dims()[1] {
                assert!((d.at(&[i, j]) - d.at(&[j, i])).abs() < 1e-10);
            }
        }
        let trace: f64 = (0..d.dims()[0]).map(|i| d.at(&[i, i])).sum();
        assert!((trace - a.norm() * a.norm()) / trace < 1e-10);
    }

    #[test]
    fn mismatched_sectors_rejected() {
        let mut rng = StdRng::seed_from_u64(102);
        let i1 = bond(Arrow::Out, &[(0, 2)]);
        let i2 = bond(Arrow::In, &[(0, 3)]);
        let a = BlockSparseTensor::random(vec![i1.clone(), i1.dual()], QN::zero(1), &mut rng);
        let b = BlockSparseTensor::random(vec![i2.clone(), i2.dual()], QN::zero(1), &mut rng);
        let exec = Executor::local();
        assert!(contract_list(&exec, "ij,jk->ik", &a, &b).is_err());
        // same-direction arrows also rejected: a's index 1 is In and b2's
        // index 0 is In as well
        let b2 = BlockSparseTensor::random(vec![i1.dual(), i1.clone()], QN::zero(1), &mut rng);
        assert!(contract_list(&exec, "ij,jk->ik", &a, &b2).is_err());
    }
}

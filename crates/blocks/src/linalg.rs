//! Block-sparse SVD and QR via the list method.
//!
//! "For all algorithms, the SVD portion of DMRG is performed via the list
//! method": the order-r tensor is wrapped into an effective matrix, blocks
//! are grouped by the fused quantum number along the row index, each group
//! is decomposed independently (through the executor's distributed SVD),
//! and the singular values of *all* groups compete globally for the kept
//! bond dimension — exactly the procedure of Section IV-A.

use crate::block::{BlockKey, BlockSparseTensor};
use crate::index::QnIndex;
use crate::qn::{signed, Arrow, QN};
use crate::{Error, Result};
use std::collections::BTreeMap;
use tt_dist::Executor;
use tt_linalg::TruncSpec;
use tt_tensor::DenseTensor;

/// Block-diagonal singular values: one vector per bond sector.
#[derive(Debug, Clone, PartialEq)]
pub struct BlockDiag {
    /// `(bond sector QN, descending singular values)`.
    pub sectors: Vec<(QN, Vec<f64>)>,
}

impl BlockDiag {
    /// All values across sectors, descending.
    pub fn all_values(&self) -> Vec<f64> {
        let mut v: Vec<f64> = self
            .sectors
            .iter()
            .flat_map(|(_, s)| s.iter().copied())
            .collect();
        v.sort_by(|a, b| b.partial_cmp(a).expect("no NaN"));
        v
    }

    /// Total kept bond dimension.
    pub fn bond_dim(&self) -> usize {
        self.sectors.iter().map(|(_, s)| s.len()).sum()
    }

    /// Squared norm (Σ σ²).
    pub fn norm2(&self) -> f64 {
        self.sectors
            .iter()
            .flat_map(|(_, s)| s.iter())
            .map(|x| x * x)
            .sum()
    }

    /// Von Neumann entanglement entropy of the normalized spectrum.
    pub fn entanglement_entropy(&self) -> f64 {
        let n2 = self.norm2();
        if n2 <= 0.0 {
            return 0.0;
        }
        -self
            .sectors
            .iter()
            .flat_map(|(_, s)| s.iter())
            .map(|&s| {
                let p = s * s / n2;
                if p > 1e-300 {
                    p * p.ln()
                } else {
                    0.0
                }
            })
            .sum::<f64>()
    }
}

/// Result of a truncated block SVD.
#[derive(Debug, Clone)]
pub struct BlockSvd {
    /// Left factor: original row indices plus a new bond index (`Out`).
    pub u: BlockSparseTensor,
    /// Block-diagonal singular values.
    pub s: BlockDiag,
    /// Right factor: new bond index (`In`) plus original column indices.
    pub vt: BlockSparseTensor,
    /// Sum of squares of globally discarded singular values.
    pub trunc_err: f64,
}

struct SectorGroup {
    /// fused row charge `g` (signed sum over row modes)
    g: QN,
    /// row block-key parts with their dense offsets and dims
    rows: Vec<(Vec<u16>, usize, usize)>,
    /// col block-key parts with their dense offsets and dims
    cols: Vec<(Vec<u16>, usize, usize)>,
}

/// Group the blocks of `t` by fused row charge and assemble per-group
/// matrices. `row_modes`/`col_modes` partition the tensor's modes. The
/// matrices come back in a separate vector (index-aligned with the group
/// metadata) so they can move into the executor's batch decompositions.
fn build_groups(
    t: &BlockSparseTensor,
    row_modes: &[usize],
    col_modes: &[usize],
) -> Result<(Vec<SectorGroup>, Vec<DenseTensor<f64>>)> {
    let mut seen = vec![false; t.order()];
    for &m in row_modes.iter().chain(col_modes) {
        if m >= t.order() || seen[m] {
            return Err(Error::Key(format!(
                "row/col modes must partition 0..{}",
                t.order()
            )));
        }
        seen[m] = true;
    }
    if !seen.iter().all(|&x| x) {
        return Err(Error::Key("row/col modes must cover all modes".into()));
    }

    let row_charge = |key: &BlockKey| -> QN {
        let mut g = QN::zero(t.flux().n_charges());
        for &m in row_modes {
            g = g.add(signed(
                t.indices()[m].qn(key[m] as usize),
                t.indices()[m].arrow(),
            ));
        }
        g
    };

    // collect row/col key-parts per group
    #[derive(Default)]
    struct Partial {
        rows: BTreeMap<Vec<u16>, usize>, // key part -> dim
        cols: BTreeMap<Vec<u16>, usize>,
    }
    let mut partials: BTreeMap<QN, Partial> = BTreeMap::new();
    for (key, _) in t.blocks() {
        let g = row_charge(key);
        let p = partials.entry(g).or_default();
        let rk: Vec<u16> = row_modes.iter().map(|&m| key[m]).collect();
        let ck: Vec<u16> = col_modes.iter().map(|&m| key[m]).collect();
        let rdim: usize = row_modes
            .iter()
            .map(|&m| t.indices()[m].sector_dim(key[m] as usize))
            .product();
        let cdim: usize = col_modes
            .iter()
            .map(|&m| t.indices()[m].sector_dim(key[m] as usize))
            .product();
        p.rows.insert(rk, rdim);
        p.cols.insert(ck, cdim);
    }

    // assemble matrices
    let mut groups = Vec::new();
    let mut mats = Vec::new();
    for (g, p) in partials {
        let mut rows = Vec::new();
        let mut off = 0usize;
        for (rk, d) in p.rows {
            rows.push((rk, off, d));
            off += d;
        }
        let total_rows = off;
        let mut cols = Vec::new();
        let mut off = 0usize;
        for (ck, d) in p.cols {
            cols.push((ck, off, d));
            off += d;
        }
        let total_cols = off;
        let mut mat = DenseTensor::zeros([total_rows, total_cols]);

        for (key, block) in t.blocks() {
            if row_charge(key) != g {
                continue;
            }
            let rk: Vec<u16> = row_modes.iter().map(|&m| key[m]).collect();
            let ck: Vec<u16> = col_modes.iter().map(|&m| key[m]).collect();
            let (_, ro, rd) = rows.iter().find(|(k, _, _)| *k == rk).expect("present");
            let (_, co, _cd) = cols.iter().find(|(k, _, _)| *k == ck).expect("present");
            // matricize the block to (row_modes, col_modes)
            let bm = block
                .matricize(row_modes, col_modes)
                .map_err(tt_dist::Error::from)?;
            debug_assert_eq!(bm.dims()[0], *rd);
            for i in 0..bm.dims()[0] {
                for j in 0..bm.dims()[1] {
                    mat.set(&[ro + i, co + j], bm.at(&[i, j]));
                }
            }
        }
        groups.push(SectorGroup { g, rows, cols });
        mats.push(mat);
    }
    Ok((groups, mats))
}

/// Truncated SVD of a block tensor matricized as `(row_modes ; col_modes)`.
///
/// The bond index between `U` and `Vᵀ` carries charge `−g` per group with
/// arrow `Out` on `U` (so `U` blocks conserve flux 0) and arrow `In` on
/// `Vᵀ` (which inherits the original flux).
pub fn block_svd(
    exec: &Executor,
    t: &BlockSparseTensor,
    row_modes: &[usize],
    col_modes: &[usize],
    spec: TruncSpec,
) -> Result<BlockSvd> {
    let (groups, mats) = build_groups(t, row_modes, col_modes)?;
    if groups.is_empty() {
        return Err(Error::Key(
            "block_svd of a tensor with no stored blocks".into(),
        ));
    }

    // full SVD per group — the groups are independent, so the executor
    // fans them out over its pool in Threaded mode (results and costs
    // return in group order: deterministic either way)
    let full_spec = TruncSpec {
        max_rank: usize::MAX,
        cutoff: 0.0,
        min_keep: 1,
    };
    let svds = exec.svd_trunc_batch(mats, full_spec)?;

    // global truncation across groups
    let mut all: Vec<(f64, usize)> = Vec::new(); // (σ, group)
    for (gi, s) in svds.iter().enumerate() {
        for &sv in &s.s {
            all.push((sv, gi));
        }
    }
    all.sort_by(|a, b| b.0.partial_cmp(&a.0).expect("no NaN"));
    let mut keep_per_group = vec![0usize; groups.len()];
    let mut kept = 0usize;
    let mut trunc_err = 0.0f64;
    for (rank, &(sv, gi)) in all.iter().enumerate() {
        let keep = (rank < spec.min_keep) || (sv > spec.cutoff && kept < spec.max_rank);
        if keep && kept < spec.max_rank.max(spec.min_keep) {
            keep_per_group[gi] += 1;
            kept += 1;
        } else {
            trunc_err += sv * sv;
        }
    }

    // new bond index sectors (only groups that kept values), ordered by QN
    let mut bond_sectors: Vec<(QN, usize)> = Vec::new();
    for (gi, g) in groups.iter().enumerate() {
        if keep_per_group[gi] > 0 {
            bond_sectors.push((g.g.neg(), keep_per_group[gi]));
        }
    }
    bond_sectors.sort();
    let bond_out = QnIndex::new(Arrow::Out, bond_sectors.clone());
    let bond_in = bond_out.dual();

    // U: row indices + bond(Out), flux 0
    let arity = t.flux().n_charges();
    let mut u_indices: Vec<QnIndex> = row_modes.iter().map(|&m| t.indices()[m].clone()).collect();
    u_indices.push(bond_out);
    let mut u = BlockSparseTensor::new(u_indices, QN::zero(arity));

    // Vt: bond(In) + col indices, flux = t.flux()
    let mut v_indices: Vec<QnIndex> = vec![bond_in];
    v_indices.extend(col_modes.iter().map(|&m| t.indices()[m].clone()));
    let mut vt = BlockSparseTensor::new(v_indices, t.flux());

    let mut s_sectors: Vec<(QN, Vec<f64>)> = Vec::new();

    for (gi, g) in groups.iter().enumerate() {
        let r = keep_per_group[gi];
        if r == 0 {
            continue;
        }
        let svd = &svds[gi];
        let bond_sector_id = bond_sectors
            .iter()
            .position(|&(q, _)| q == g.g.neg())
            .expect("sector present") as u16;
        s_sectors.push((g.g.neg(), svd.s[..r].to_vec()));

        // U blocks: slice rows belonging to each row key-part
        for (rk, ro, rd) in &g.rows {
            let mut dims: Vec<usize> = rk
                .iter()
                .zip(row_modes)
                .map(|(&s, &m)| t.indices()[m].sector_dim(s as usize))
                .collect();
            dims.push(r);
            let mut flat = DenseTensor::zeros([*rd, r]);
            for i in 0..*rd {
                for j in 0..r {
                    flat.set(&[i, j], svd.u.at(&[ro + i, j]));
                }
            }
            let block = flat.reshape(dims).map_err(tt_dist::Error::from)?;
            let mut key: BlockKey = rk.clone();
            key.push(bond_sector_id);
            let norm = block.max_abs();
            if norm > 0.0 {
                u.insert_block(key, block)?;
            }
        }
        // Vt blocks
        for (ck, co, cd) in &g.cols {
            let mut dims: Vec<usize> = vec![r];
            dims.extend(
                ck.iter()
                    .zip(col_modes)
                    .map(|(&s, &m)| t.indices()[m].sector_dim(s as usize)),
            );
            let mut flat = DenseTensor::zeros([r, *cd]);
            for i in 0..r {
                for j in 0..*cd {
                    flat.set(&[i, j], svd.vt.at(&[i, co + j]));
                }
            }
            let block = flat.reshape(dims).map_err(tt_dist::Error::from)?;
            let mut key: BlockKey = vec![bond_sector_id];
            key.extend_from_slice(ck);
            if block.max_abs() > 0.0 {
                vt.insert_block(key, block)?;
            }
        }
    }
    s_sectors.sort_by_key(|a| a.0);

    Ok(BlockSvd {
        u,
        s: BlockDiag { sectors: s_sectors },
        vt,
        trunc_err,
    })
}

/// Thin block QR of a matricized block tensor: `t = Q·R` with `Q` carrying
/// the row indices + bond(`Out`) (flux 0) and `R` carrying bond(`In`) +
/// column indices (original flux).
pub fn block_qr(
    exec: &Executor,
    t: &BlockSparseTensor,
    row_modes: &[usize],
    col_modes: &[usize],
) -> Result<(BlockSparseTensor, BlockSparseTensor)> {
    let (groups, mats) = build_groups(t, row_modes, col_modes)?;
    if groups.is_empty() {
        return Err(Error::Key(
            "block_qr of a tensor with no stored blocks".into(),
        ));
    }
    // independent per-group QRs fan out over the executor's pool
    let qrs = exec.qr_batch(mats)?;

    let mut bond_sectors: Vec<(QN, usize)> = Vec::new();
    for (g, (q, _)) in groups.iter().zip(&qrs) {
        bond_sectors.push((g.g.neg(), q.dims()[1]));
    }
    bond_sectors.sort();
    // merge duplicates is unnecessary: groups have distinct g
    let bond_out = QnIndex::new(Arrow::Out, bond_sectors.clone());
    let bond_in = bond_out.dual();

    let arity = t.flux().n_charges();
    let mut q_indices: Vec<QnIndex> = row_modes.iter().map(|&m| t.indices()[m].clone()).collect();
    q_indices.push(bond_out);
    let mut qt = BlockSparseTensor::new(q_indices, QN::zero(arity));

    let mut r_indices: Vec<QnIndex> = vec![bond_in];
    r_indices.extend(col_modes.iter().map(|&m| t.indices()[m].clone()));
    let mut rt = BlockSparseTensor::new(r_indices, t.flux());

    for (g, (qm, rm)) in groups.iter().zip(&qrs) {
        let k = qm.dims()[1];
        let bond_sector_id = bond_sectors
            .iter()
            .position(|&(q, _)| q == g.g.neg())
            .expect("present") as u16;
        for (rk, ro, rd) in &g.rows {
            let mut dims: Vec<usize> = rk
                .iter()
                .zip(row_modes)
                .map(|(&s, &m)| t.indices()[m].sector_dim(s as usize))
                .collect();
            dims.push(k);
            let mut flat = DenseTensor::zeros([*rd, k]);
            for i in 0..*rd {
                for j in 0..k {
                    flat.set(&[i, j], qm.at(&[ro + i, j]));
                }
            }
            let mut key: BlockKey = rk.clone();
            key.push(bond_sector_id);
            qt.insert_block(key, flat.reshape(dims).map_err(tt_dist::Error::from)?)?;
        }
        for (ck, co, cd) in &g.cols {
            let mut dims: Vec<usize> = vec![k];
            dims.extend(
                ck.iter()
                    .zip(col_modes)
                    .map(|(&s, &m)| t.indices()[m].sector_dim(s as usize)),
            );
            let mut flat = DenseTensor::zeros([k, *cd]);
            for i in 0..k {
                for j in 0..*cd {
                    flat.set(&[i, j], rm.at(&[i, co + j]));
                }
            }
            let mut key: BlockKey = vec![bond_sector_id];
            key.extend_from_slice(ck);
            let block = flat.reshape(dims).map_err(tt_dist::Error::from)?;
            if block.max_abs() > 0.0 {
                rt.insert_block(key, block)?;
            }
        }
    }
    Ok((qt, rt))
}

/// Multiply `t` along its mode `mode` (a bond index) by per-sector diagonal
/// values — used to absorb singular values into `U` or `Vᵀ`.
pub fn scale_bond(
    t: &mut BlockSparseTensor,
    mode: usize,
    diag: &BlockDiag,
    invert: bool,
) -> Result<()> {
    let idx = t.indices()[mode].clone();
    let keys: Vec<BlockKey> = t.blocks().map(|(k, _)| k.clone()).collect();
    for key in keys {
        let sector = key[mode] as usize;
        let qn = idx.qn(sector);
        let Some((_, vals)) = diag.sectors.iter().find(|(q, _)| *q == qn) else {
            return Err(Error::Symmetry(format!(
                "bond sector {qn} missing from BlockDiag"
            )));
        };
        let block = t.block(&key).expect("from iteration").clone();
        let dims = block.dims().to_vec();
        if dims[mode] != vals.len() {
            return Err(Error::Key(format!(
                "bond dim {} != diag len {}",
                dims[mode],
                vals.len()
            )));
        }
        // scale along `mode`
        let mut out = block.clone();
        let shape = out.shape().clone();
        let data = out.data_mut();
        for (lin, v) in data.iter_mut().enumerate() {
            let idx_m = shape.unoffset(lin)[mode];
            let s = vals[idx_m];
            *v = if invert {
                if s.abs() > 1e-300 {
                    *v / s
                } else {
                    0.0
                }
            } else {
                *v * s
            };
        }
        t.insert_block(key, out)?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::contract::{contract_list, Algorithm};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn bond(arrow: Arrow, dims: &[(i32, usize)]) -> QnIndex {
        QnIndex::new(arrow, dims.iter().map(|&(q, d)| (QN::one(q), d)).collect())
    }

    fn two_site_like() -> BlockSparseTensor {
        // X(il In, σ1 In, σ2 In, ir Out), flux 0 — the DMRG two-site tensor
        let il = bond(Arrow::In, &[(-1, 2), (1, 2)]);
        let s = bond(Arrow::In, &[(1, 1), (-1, 1)]);
        let ir = bond(Arrow::Out, &[(-3, 1), (-1, 2), (1, 2), (3, 1)]);
        let mut rng = StdRng::seed_from_u64(111);
        BlockSparseTensor::random(vec![il, s.clone(), s, ir], QN::zero(1), &mut rng)
    }

    #[test]
    fn svd_reconstructs() {
        let t = two_site_like();
        let exec = Executor::local();
        let svd = block_svd(
            &exec,
            &t,
            &[0, 1],
            &[2, 3],
            TruncSpec {
                max_rank: usize::MAX,
                cutoff: 0.0,
                min_keep: 1,
            },
        )
        .unwrap();
        assert!(svd.trunc_err < 1e-20);
        // reconstruct: U * diag(S) * Vt
        let mut us = svd.u.clone();
        scale_bond(&mut us, 2, &svd.s, false).unwrap();
        let rec = contract_list(&exec, "abk,kcd->abcd", &us, &svd.vt).unwrap();
        assert!(rec.to_dense().allclose(&t.to_dense(), 1e-9));
    }

    #[test]
    fn svd_u_is_isometry() {
        let t = two_site_like();
        let exec = Executor::local();
        let svd = block_svd(
            &exec,
            &t,
            &[0, 1],
            &[2, 3],
            TruncSpec {
                max_rank: usize::MAX,
                cutoff: 0.0,
                min_keep: 1,
            },
        )
        .unwrap();
        // U† U = I on the bond
        let udag = svd.u.conj();
        let gram = contract_list(&exec, "abk,abl->kl", &udag, &svd.u).unwrap();
        let g = gram.to_dense();
        let n = g.dims()[0];
        assert!(g.allclose(&DenseTensor::eye(n), 1e-9));
        // Vt Vt† = I
        let vdag = svd.vt.conj();
        let gram_v = contract_list(&exec, "kcd,lcd->kl", &svd.vt, &vdag).unwrap();
        let gv = gram_v.to_dense();
        assert!(gv.allclose(&DenseTensor::eye(gv.dims()[0]), 1e-9));
    }

    #[test]
    fn svd_truncation_error_reported() {
        let t = two_site_like();
        let exec = Executor::local();
        let full = block_svd(
            &exec,
            &t,
            &[0, 1],
            &[2, 3],
            TruncSpec {
                max_rank: usize::MAX,
                cutoff: 0.0,
                min_keep: 1,
            },
        )
        .unwrap();
        let all = full.s.all_values();
        let cap = all.len() / 2;
        let trunc = block_svd(
            &exec,
            &t,
            &[0, 1],
            &[2, 3],
            TruncSpec {
                max_rank: cap,
                cutoff: 0.0,
                min_keep: 1,
            },
        )
        .unwrap();
        assert_eq!(trunc.s.bond_dim(), cap);
        let expect: f64 = all[cap..].iter().map(|x| x * x).sum();
        assert!((trunc.trunc_err - expect).abs() < 1e-9 * expect.max(1.0));
        // truncated reconstruction error ≈ trunc_err (Eckart–Young per block)
        let mut us = trunc.u.clone();
        scale_bond(&mut us, 2, &trunc.s, false).unwrap();
        let rec = contract_list(&exec, "abk,kcd->abcd", &us, &trunc.vt).unwrap();
        let diff = rec.to_dense().sub(&t.to_dense()).unwrap();
        assert!((diff.norm2() - trunc.trunc_err).abs() / trunc.trunc_err.max(1e-30) < 1e-6);
    }

    #[test]
    fn svd_frobenius_identity() {
        let t = two_site_like();
        let exec = Executor::local();
        let svd = block_svd(
            &exec,
            &t,
            &[0, 1],
            &[2, 3],
            TruncSpec {
                max_rank: usize::MAX,
                cutoff: 0.0,
                min_keep: 1,
            },
        )
        .unwrap();
        assert!((svd.s.norm2() - t.norm() * t.norm()).abs() < 1e-8);
        // entropy of a random state is positive
        assert!(svd.s.entanglement_entropy() > 0.0);
    }

    #[test]
    fn qr_reconstructs_and_isometry() {
        let t = two_site_like();
        let exec = Executor::local();
        let (q, r) = block_qr(&exec, &t, &[0, 1], &[2, 3]).unwrap();
        let rec = contract_list(&exec, "abk,kcd->abcd", &q, &r).unwrap();
        assert!(rec.to_dense().allclose(&t.to_dense(), 1e-9));
        let qdag = q.conj();
        let gram = contract_list(&exec, "abk,abl->kl", &qdag, &q).unwrap();
        let g = gram.to_dense();
        assert!(g.allclose(&DenseTensor::eye(g.dims()[0]), 1e-9));
    }

    #[test]
    fn svd_with_duplicate_charge_sectors() {
        // indices produced by MPS direct sums carry repeated QN values in
        // separate sectors; the SVD must group them into one charge sector
        let dup = QnIndex::new(
            Arrow::In,
            vec![(QN::one(0), 2), (QN::one(0), 3), (QN::one(2), 2)],
        );
        let out = QnIndex::new(
            Arrow::Out,
            vec![(QN::one(0), 3), (QN::one(2), 2), (QN::one(2), 1)],
        );
        let mut rng = StdRng::seed_from_u64(117);
        let t = BlockSparseTensor::random(vec![dup, out], QN::zero(1), &mut rng);
        assert!(t.n_blocks() > 0);
        let exec = Executor::local();
        let svd = block_svd(
            &exec,
            &t,
            &[0],
            &[1],
            TruncSpec {
                max_rank: usize::MAX,
                cutoff: 0.0,
                min_keep: 1,
            },
        )
        .unwrap();
        assert!((svd.s.norm2() - t.norm() * t.norm()).abs() < 1e-9);
        let mut us = svd.u.clone();
        scale_bond(&mut us, 1, &svd.s, false).unwrap();
        let rec = contract_list(&exec, "ak,kb->ab", &us, &svd.vt).unwrap();
        assert!(rec.to_dense().allclose(&t.to_dense(), 1e-9));
    }

    #[test]
    fn svd_of_empty_tensor_errors() {
        let i = QnIndex::new(Arrow::In, vec![(QN::one(1), 2)]);
        let o = QnIndex::new(Arrow::Out, vec![(QN::one(-1), 2)]);
        // flux 0 is unsatisfiable: In(+1) − (−1)?? residual = −1 −1... no
        // allowed blocks exist ⇒ no stored blocks ⇒ clean error
        let t = BlockSparseTensor::new(vec![i, o], QN::zero(1));
        assert_eq!(t.allowed_keys().len(), 0);
        let exec = Executor::local();
        assert!(block_svd(&exec, &t, &[0], &[1], TruncSpec::default()).is_err());
        assert!(block_qr(&exec, &t, &[0], &[1]).is_err());
    }

    #[test]
    fn bond_qns_allow_contraction() {
        // after SVD the U and Vt must contract back legally (arrow/sector
        // compatibility), verified implicitly by reconstruction tests; here
        // check flux bookkeeping explicitly
        let t = two_site_like();
        let exec = Executor::local();
        let svd = block_svd(&exec, &t, &[0, 1], &[2, 3], TruncSpec::default()).unwrap();
        assert!(svd.u.flux().is_zero());
        assert_eq!(svd.vt.flux(), t.flux());
        assert!(svd.u.indices()[2].contractable_with(&svd.vt.indices()[0]));
        let _ = Algorithm::List;
    }
}

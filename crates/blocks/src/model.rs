//! The empirical block-structure and complexity model of Table II.
//!
//! The paper fits the sector-size distribution of DMRG MPS tensors with
//! `b_ℓ = ⌊(m/q)·rℓ⌋` — `q = 4, r = 0.6` for the spin system and
//! `q = 10, r = 0.65` for the electron system — and expresses each
//! algorithm's flops, memory and BSP costs in those parameters. This module
//! evaluates the model (Table II and the paper-scale "model" series of
//! Figs. 5–13) and generates synthetic graded indices with the same sector
//! structure for live benchmarking.

use crate::contract::Algorithm;
use crate::index::QnIndex;
use crate::qn::{Arrow, QN};

/// Empirical block-structure model `b_ℓ = ⌊(m/q) rℓ⌋`.
#[derive(Debug, Clone, Copy)]
pub struct BlockModel {
    /// Largest-block divisor (`q` in the paper).
    pub q: f64,
    /// Geometric decay of sector sizes (`r` in the paper).
    pub r: f64,
    /// Physical dimension of the system's sites.
    pub d: usize,
    /// Number of conserved U(1) charges.
    pub n_charges: u8,
}

impl BlockModel {
    /// Spin system (J1−J2 Heisenberg): `q = 4`, `r = 0.6`, `d = 2`, U(1).
    pub fn spins() -> Self {
        BlockModel {
            q: 4.0,
            r: 0.6,
            d: 2,
            n_charges: 1,
        }
    }

    /// Electron system (triangular Hubbard): `q = 10`, `r = 0.65`, `d = 4`,
    /// U(1)×U(1).
    pub fn electrons() -> Self {
        BlockModel {
            q: 10.0,
            r: 0.65,
            d: 4,
            n_charges: 2,
        }
    }

    /// Sector dimensions at bond dimension `m`: `⌊(m/q)·rℓ⌋` until < 1.
    pub fn sector_dims(&self, m: usize) -> Vec<usize> {
        let mut out = Vec::new();
        let mut x = m as f64 / self.q;
        while x >= 1.0 {
            out.push(x as usize);
            x *= self.r;
        }
        if out.is_empty() {
            out.push(1);
        }
        out
    }

    /// Number of blocks at bond dimension `m` (mirror-symmetric around the
    /// charge origin: `2·len − 1` sectors).
    pub fn n_blocks(&self, m: usize) -> usize {
        2 * self.sector_dims(m).len() - 1
    }

    /// Size of the largest block at bond dimension `m` (`⌊m/q⌋`).
    pub fn largest_block(&self, m: usize) -> usize {
        (m as f64 / self.q) as usize
    }

    /// Synthetic bond index with the model's sector structure, mirror
    /// symmetric in the charge.
    pub fn bond_index(&self, m: usize, arrow: Arrow) -> QnIndex {
        let dims = self.sector_dims(m);
        let mut sectors: Vec<(QN, usize)> = Vec::new();
        for (l, &d) in dims.iter().enumerate() {
            let c = l as i32;
            let mk = |c: i32| -> QN {
                if self.n_charges == 1 {
                    QN::one(2 * c)
                } else {
                    QN::two(c, -c)
                }
            };
            if l == 0 {
                sectors.push((mk(0), d));
            } else {
                sectors.push((mk(c), d));
                sectors.push((mk(-c), d));
            }
        }
        sectors.sort();
        QnIndex::new(arrow, sectors)
    }

    /// Effective bond dimension of the synthetic index (Σ b_ℓ over the
    /// mirrored sectors).
    pub fn effective_m(&self, m: usize) -> usize {
        let dims = self.sector_dims(m);
        dims[0] + 2 * dims[1..].iter().sum::<usize>()
    }

    /// Table II: flops per Davidson iteration.
    pub fn davidson_flops(&self, algo: Algorithm, m: usize, k: usize) -> f64 {
        let d = self.d as f64;
        let k = k as f64;
        match algo {
            Algorithm::List | Algorithm::SparseSparse => {
                let b = m as f64 / self.q;
                b.powi(3) * k * d * d
            }
            Algorithm::SparseDense => (m as f64).powi(3) * k * d * d,
        }
    }

    /// Table II: working-set memory of a Davidson iteration (words).
    pub fn davidson_memory(&self, algo: Algorithm, m: usize, k: usize) -> f64 {
        let d = self.d as f64;
        let k = k as f64;
        match algo {
            Algorithm::List | Algorithm::SparseSparse => {
                let b = m as f64 / self.q;
                b * b * k * d * d
            }
            Algorithm::SparseDense => (m as f64).powi(2) * k * d * d,
        }
    }

    /// Table II: environment storage for an `n`-site system (words).
    pub fn environment_memory(&self, n_sites: usize, m: usize, k: usize) -> f64 {
        let b = m as f64 / self.q;
        n_sites as f64 * b * b * k as f64
    }

    /// Table II: BSP supersteps per Davidson iteration.
    pub fn bsp_supersteps(&self, algo: Algorithm, m: usize) -> f64 {
        match algo {
            Algorithm::List => self.n_blocks(m) as f64,
            Algorithm::SparseDense | Algorithm::SparseSparse => 1.0,
        }
    }

    /// Table II: BSP communication cost per Davidson iteration (words along
    /// the critical path), for `p` processes.
    pub fn bsp_comm(&self, algo: Algorithm, m: usize, k: usize, p: usize) -> f64 {
        let md = self.davidson_memory(algo, m, k);
        match algo {
            Algorithm::List => md / (p as f64).powf(2.0 / 3.0),
            Algorithm::SparseDense | Algorithm::SparseSparse => md / (p as f64).sqrt(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sector_dims_geometric() {
        let m = BlockModel::spins();
        let dims = m.sector_dims(4096);
        assert_eq!(dims[0], 1024); // m/q
        assert_eq!(dims[1], 614); // 1024·0.6 truncated
        assert!(dims.windows(2).all(|w| w[1] <= w[0]));
        assert!(*dims.last().unwrap() >= 1);
    }

    #[test]
    fn largest_block_scaling_close_to_paper_fit() {
        // paper: largest block ∝ m^0.94 (spins), m^0.97 (electrons);
        // the b₀ = m/q model is exactly linear — check it stays within the
        // right order across the measured range
        let sp = BlockModel::spins();
        assert_eq!(sp.largest_block(2048), 512);
        assert_eq!(sp.largest_block(32768), 8192);
        let el = BlockModel::electrons();
        assert_eq!(el.largest_block(32768), 3276);
    }

    #[test]
    fn electrons_have_more_blocks() {
        let sp = BlockModel::spins();
        let el = BlockModel::electrons();
        // Fig. 2a: electron systems show more blocks at the same m
        for m in [2048usize, 8192, 32768] {
            assert!(el.n_blocks(m) >= sp.n_blocks(m), "m={m}");
        }
    }

    #[test]
    fn synthetic_index_matches_model() {
        let sp = BlockModel::spins();
        let idx = sp.bond_index(1024, Arrow::Out);
        assert_eq!(idx.n_sectors(), sp.n_blocks(1024));
        // largest sector is b0
        let max = (0..idx.n_sectors()).map(|s| idx.sector_dim(s)).max();
        assert_eq!(max, Some(sp.largest_block(1024)));
        assert_eq!(idx.dim(), sp.effective_m(1024));
    }

    #[test]
    fn table2_flop_hierarchy() {
        let sp = BlockModel::spins();
        let (m, k) = (8192, 30);
        let list = sp.davidson_flops(Algorithm::List, m, k);
        let ss = sp.davidson_flops(Algorithm::SparseSparse, m, k);
        let sd = sp.davidson_flops(Algorithm::SparseDense, m, k);
        assert_eq!(list, ss);
        assert!(sd > list, "sparse-dense pays the dense m^3 cost");
        assert!((sd / list - sp.q.powi(3)).abs() / sp.q.powi(3) < 1e-12);
    }

    #[test]
    fn table2_bsp_tradeoff() {
        // list: many supersteps, lower comm; sparse-sparse: one superstep,
        // higher comm — the trade-off the paper's analysis highlights
        let sp = BlockModel::spins();
        let (m, k, p) = (8192, 30, 64);
        assert!(sp.bsp_supersteps(Algorithm::List, m) > 1.0);
        assert_eq!(sp.bsp_supersteps(Algorithm::SparseSparse, m), 1.0);
        let comm_list = sp.bsp_comm(Algorithm::List, m, k, p);
        let comm_ss = sp.bsp_comm(Algorithm::SparseSparse, m, k, p);
        assert!(comm_list < comm_ss);
    }

    #[test]
    fn environment_memory_linear_in_sites() {
        let sp = BlockModel::spins();
        let a = sp.environment_memory(100, 4096, 30);
        let b = sp.environment_memory(200, 4096, 30);
        assert!((b / a - 2.0).abs() < 1e-12);
    }
}

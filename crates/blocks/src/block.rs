//! Block-sparse symmetric tensors.
//!
//! A [`BlockSparseTensor`] is described — exactly as in Section II-D of the
//! paper — by a list of quantum-number label tuples, each naming an
//! independent dense block `T_q ∈ R^{d₁×…×d_r}`. A block with sector choice
//! `(s₁,…,s_r)` is *allowed* when the signed charges balance the tensor's
//! flux: `Σ_i arrow_i · q(s_i) == flux`. Memory drops from `Π d_i` to
//! `Σ_blocks Π d_i^ℓ` and contractions run block-by-block (list algorithm)
//! or on the flattened sparse form (sparse-dense / sparse-sparse).

use crate::index::QnIndex;
use crate::qn::{signed, QN};
use crate::{Error, Result};
use rand::Rng;
use std::collections::{BTreeMap, HashSet};
use std::sync::Arc;
use tt_tensor::{DenseTensor, SparseTensor};

/// Sector choice per index, identifying one block.
pub type BlockKey = Vec<u16>;

/// A quantum-number block-sparse tensor over `f64`.
#[derive(Clone, Debug, PartialEq)]
pub struct BlockSparseTensor {
    indices: Vec<QnIndex>,
    flux: QN,
    /// Deterministically ordered block storage. Blocks are `Arc`-shared so
    /// cloning a tensor, uploading a block onto an executor
    /// (`Executor::upload_shared`) or enqueueing it into a chain step
    /// shares the allocation instead of copying the data; mutation goes
    /// through `Arc::make_mut` (copy-on-write when genuinely shared).
    blocks: BTreeMap<BlockKey, Arc<DenseTensor<f64>>>,
}

impl BlockSparseTensor {
    /// Empty tensor with the given graded indices and flux.
    pub fn new(indices: Vec<QnIndex>, flux: QN) -> Self {
        assert!(!indices.is_empty(), "need at least one index");
        let arity = indices[0].arity();
        assert!(
            indices.iter().all(|i| i.arity() == arity) && flux.n_charges() == arity,
            "mixed QN arities"
        );
        Self {
            indices,
            flux,
            blocks: BTreeMap::new(),
        }
    }

    /// The graded indices.
    pub fn indices(&self) -> &[QnIndex] {
        &self.indices
    }

    /// Tensor order.
    pub fn order(&self) -> usize {
        self.indices.len()
    }

    /// Dense dimensions (sum of sector dims per index).
    pub fn dense_dims(&self) -> Vec<usize> {
        self.indices.iter().map(|i| i.dim()).collect()
    }

    /// The tensor's flux.
    pub fn flux(&self) -> QN {
        self.flux
    }

    /// Signed charge residual of a sector combination.
    pub fn residual(&self, key: &[u16]) -> QN {
        let mut r = QN::zero(self.flux.n_charges());
        for (i, &s) in key.iter().enumerate() {
            r = r.add(signed(
                self.indices[i].qn(s as usize),
                self.indices[i].arrow(),
            ));
        }
        r
    }

    /// True when the sector combination conserves the flux.
    pub fn is_allowed(&self, key: &[u16]) -> bool {
        self.residual(key) == self.flux
    }

    /// Enumerate all allowed sector combinations (suffix-DP pruned).
    pub fn allowed_keys(&self) -> Vec<BlockKey> {
        let n = self.order();
        // suffix_possible[i] = set of achievable Σ_{j≥i} signed charges
        let arity = self.flux.n_charges();
        let mut suffix: Vec<HashSet<QN>> = vec![HashSet::new(); n + 1];
        suffix[n].insert(QN::zero(arity));
        for i in (0..n).rev() {
            let mut set = HashSet::new();
            for s in 0..self.indices[i].n_sectors() {
                let q = signed(self.indices[i].qn(s), self.indices[i].arrow());
                for &rest in &suffix[i + 1] {
                    set.insert(q.add(rest));
                }
            }
            suffix[i] = set;
        }
        let mut out = Vec::new();
        let mut key = vec![0u16; n];
        self.enumerate_rec(0, QN::zero(arity), &suffix, &mut key, &mut out);
        out
    }

    fn enumerate_rec(
        &self,
        pos: usize,
        partial: QN,
        suffix: &[HashSet<QN>],
        key: &mut BlockKey,
        out: &mut Vec<BlockKey>,
    ) {
        if pos == self.order() {
            if partial == self.flux {
                out.push(key.clone());
            }
            return;
        }
        for s in 0..self.indices[pos].n_sectors() {
            let q = signed(self.indices[pos].qn(s), self.indices[pos].arrow());
            let np = partial.add(q);
            // prune: remaining must be achievable by the suffix
            if !suffix[pos + 1].contains(&self.flux.sub(np)) {
                continue;
            }
            key[pos] = s as u16;
            self.enumerate_rec(pos + 1, np, suffix, key, out);
        }
    }

    /// Dimensions of the block at `key`.
    pub fn block_dims(&self, key: &[u16]) -> Vec<usize> {
        key.iter()
            .enumerate()
            .map(|(i, &s)| self.indices[i].sector_dim(s as usize))
            .collect()
    }

    /// Insert (or overwrite) a block. The key must be allowed and the
    /// tensor shape must match the sector dims.
    pub fn insert_block(&mut self, key: BlockKey, t: DenseTensor<f64>) -> Result<()> {
        if key.len() != self.order() {
            return Err(Error::Key(format!(
                "key order {} != tensor order {}",
                key.len(),
                self.order()
            )));
        }
        if !self.is_allowed(&key) {
            return Err(Error::Symmetry(format!(
                "block {key:?} violates flux {}",
                self.flux
            )));
        }
        let want = self.block_dims(&key);
        if t.dims() != want {
            return Err(Error::Key(format!(
                "block {key:?} dims {:?} != sector dims {want:?}",
                t.dims()
            )));
        }
        self.blocks.insert(key, Arc::new(t));
        Ok(())
    }

    /// Accumulate `t` into the block at `key` (elementwise, inserting the
    /// block when absent — the first partial is *stored*, not added to
    /// zeros, matching every chained accumulation path bit for bit).
    pub fn axpy_block(&mut self, key: BlockKey, t: DenseTensor<f64>) -> Result<()> {
        match self.blocks.get_mut(&key) {
            Some(existing) => Arc::make_mut(existing).axpy(1.0, &t)?,
            None => self.insert_block(key, t)?,
        }
        Ok(())
    }

    /// The block at `key`, if stored.
    pub fn block(&self, key: &[u16]) -> Option<&DenseTensor<f64>> {
        self.blocks.get(key).map(|b| b.as_ref())
    }

    /// The shared (`Arc`) block at `key`, if stored — for clone-free
    /// uploads onto an executor.
    pub fn block_shared(&self, key: &[u16]) -> Option<&Arc<DenseTensor<f64>>> {
        self.blocks.get(key)
    }

    /// Iterate stored blocks in deterministic key order.
    pub fn blocks(&self) -> impl Iterator<Item = (&BlockKey, &DenseTensor<f64>)> {
        self.blocks.iter().map(|(k, b)| (k, b.as_ref()))
    }

    /// Iterate shared (`Arc`) blocks in deterministic key order.
    pub fn blocks_shared(&self) -> impl Iterator<Item = (&BlockKey, &Arc<DenseTensor<f64>>)> {
        self.blocks.iter()
    }

    /// Number of stored blocks.
    pub fn n_blocks(&self) -> usize {
        self.blocks.len()
    }

    /// Fill every allowed block with uniform random entries.
    pub fn random(indices: Vec<QnIndex>, flux: QN, rng: &mut (impl Rng + ?Sized)) -> Self {
        let mut t = Self::new(indices, flux);
        for key in t.allowed_keys() {
            let dims = t.block_dims(&key);
            let b = DenseTensor::random(dims, rng);
            t.blocks.insert(key, Arc::new(b));
        }
        t
    }

    /// Embed into a dense tensor (blocks at their sector offsets).
    pub fn to_dense(&self) -> DenseTensor<f64> {
        let dims = self.dense_dims();
        let mut out = DenseTensor::zeros(dims.clone());
        for (key, block) in &self.blocks {
            let offs: Vec<usize> = key
                .iter()
                .enumerate()
                .map(|(i, &s)| self.indices[i].sector_offset(s as usize))
                .collect();
            for idx in block.shape().index_iter() {
                let gidx: Vec<usize> = idx.iter().zip(&offs).map(|(&x, &o)| x + o).collect();
                out.set(&gidx, block.at(&idx));
            }
        }
        out
    }

    /// Extract the allowed blocks of a dense tensor; blocks with all
    /// entries `|x| ≤ tol` are dropped.
    pub fn from_dense(
        indices: Vec<QnIndex>,
        flux: QN,
        dense: &DenseTensor<f64>,
        tol: f64,
    ) -> Result<Self> {
        let mut t = Self::new(indices, flux);
        let want: Vec<usize> = t.dense_dims();
        if dense.dims() != want {
            return Err(Error::Key(format!(
                "dense dims {:?} != graded dims {:?}",
                dense.dims(),
                want
            )));
        }
        for key in t.allowed_keys() {
            let dims = t.block_dims(&key);
            let offs: Vec<usize> = key
                .iter()
                .enumerate()
                .map(|(i, &s)| t.indices[i].sector_offset(s as usize))
                .collect();
            let mut block = DenseTensor::zeros(dims.clone());
            let mut maxabs = 0.0f64;
            for idx in block.shape().index_iter() {
                let gidx: Vec<usize> = idx.iter().zip(&offs).map(|(&x, &o)| x + o).collect();
                let v = dense.at(&gidx);
                maxabs = maxabs.max(v.abs());
                block.set(&idx, v);
            }
            if maxabs > tol {
                t.blocks.insert(key, Arc::new(block));
            }
        }
        Ok(t)
    }

    /// Flatten into a single sparse tensor over the dense index space
    /// (the storage format of the sparse-dense / sparse-sparse algorithms).
    pub fn to_flat_sparse(&self) -> SparseTensor<f64> {
        let dims = self.dense_dims();
        let shape = tt_tensor::Shape::from(dims.clone());
        let mut entries = Vec::new();
        for (key, block) in &self.blocks {
            let offs: Vec<usize> = key
                .iter()
                .enumerate()
                .map(|(i, &s)| self.indices[i].sector_offset(s as usize))
                .collect();
            for idx in block.shape().index_iter() {
                let gidx: Vec<usize> = idx.iter().zip(&offs).map(|(&x, &o)| x + o).collect();
                let v = block.at(&idx);
                if v != 0.0 {
                    entries.push((shape.offset(&gidx).expect("in bounds") as u64, v));
                }
            }
        }
        SparseTensor::from_entries(dims, entries).expect("valid entries")
    }

    /// All dense offsets allowed by symmetry — the pre-computed output
    /// sparsity handed to masked sparse-sparse contractions.
    pub fn flat_mask(indices: &[QnIndex], flux: QN) -> Vec<u64> {
        let probe = Self::new(indices.to_vec(), flux);
        let shape = tt_tensor::Shape::from(probe.dense_dims());
        let mut mask = Vec::new();
        for key in probe.allowed_keys() {
            let dims = probe.block_dims(&key);
            let offs: Vec<usize> = key
                .iter()
                .enumerate()
                .map(|(i, &s)| probe.indices[i].sector_offset(s as usize))
                .collect();
            for idx in tt_tensor::Shape::from(dims).index_iter() {
                let gidx: Vec<usize> = idx.iter().zip(&offs).map(|(&x, &o)| x + o).collect();
                mask.push(shape.offset(&gidx).expect("in bounds") as u64);
            }
        }
        mask
    }

    /// Rebuild block form from a flattened sparse tensor. Entries in
    /// symmetry-forbidden positions are rejected.
    pub fn from_flat_sparse(
        indices: Vec<QnIndex>,
        flux: QN,
        sp: &SparseTensor<f64>,
    ) -> Result<Self> {
        let mut t = Self::new(indices, flux);
        let dims = t.dense_dims();
        if sp.dims() != dims {
            return Err(Error::Key(format!(
                "sparse dims {:?} != graded dims {:?}",
                sp.dims(),
                dims
            )));
        }
        let shape = tt_tensor::Shape::from(dims);
        for (off, v) in sp.entries() {
            if v == 0.0 {
                continue;
            }
            let gidx = shape.unoffset(off as usize);
            let mut key: BlockKey = Vec::with_capacity(t.order());
            let mut within: Vec<usize> = Vec::with_capacity(t.order());
            for (i, &g) in gidx.iter().enumerate() {
                let (s, w) = t.indices[i].locate(g);
                key.push(s as u16);
                within.push(w);
            }
            if !t.is_allowed(&key) {
                return Err(Error::Symmetry(format!(
                    "entry at {gidx:?} violates flux {}",
                    t.flux
                )));
            }
            let dims_b = t.block_dims(&key);
            let block = Arc::make_mut(
                t.blocks
                    .entry(key)
                    .or_insert_with(|| Arc::new(DenseTensor::zeros(dims_b))),
            );
            let cur = block.at(&within);
            block.set(&within, cur + v);
        }
        Ok(t)
    }

    /// Permute the tensor modes.
    pub fn permute(&self, perm: &[usize]) -> Result<Self> {
        if !tt_tensor::shape::is_permutation(perm, self.order()) {
            return Err(Error::Key(format!("bad permutation {perm:?}")));
        }
        let indices: Vec<QnIndex> = perm.iter().map(|&p| self.indices[p].clone()).collect();
        let mut out = Self::new(indices, self.flux);
        for (key, block) in &self.blocks {
            let nk: BlockKey = perm.iter().map(|&p| key[p]).collect();
            let nb = block.permute(perm)?;
            out.blocks.insert(nk, Arc::new(nb));
        }
        Ok(out)
    }

    /// Complex conjugate / dagger: flips all arrows and negates the flux
    /// (values unchanged for real tensors).
    pub fn conj(&self) -> Self {
        let indices: Vec<QnIndex> = self.indices.iter().map(|i| i.dual()).collect();
        let mut out = Self::new(indices, self.flux.neg());
        out.blocks = self.blocks.clone();
        out
    }

    /// In-place scale.
    pub fn scale_mut(&mut self, s: f64) {
        for b in self.blocks.values_mut() {
            Arc::make_mut(b).scale_mut(s);
        }
    }

    /// `self += alpha · other` (same indices and flux; union of blocks).
    pub fn axpy(&mut self, alpha: f64, other: &Self) -> Result<()> {
        if self.indices != other.indices || self.flux != other.flux {
            return Err(Error::Symmetry("axpy between incompatible tensors".into()));
        }
        for (key, ob) in &other.blocks {
            match self.blocks.get_mut(key) {
                Some(b) => Arc::make_mut(b).axpy(alpha, ob)?,
                None => {
                    self.blocks.insert(key.clone(), Arc::new(ob.scaled(alpha)));
                }
            }
        }
        Ok(())
    }

    /// Conjugated inner product.
    pub fn dot(&self, other: &Self) -> Result<f64> {
        if self.indices != other.indices {
            return Err(Error::Symmetry("dot between incompatible tensors".into()));
        }
        let mut acc = 0.0;
        for (key, b) in &self.blocks {
            if let Some(ob) = other.blocks.get(key) {
                acc += b.dot(ob)?;
            }
        }
        Ok(acc)
    }

    /// Frobenius norm.
    pub fn norm(&self) -> f64 {
        self.blocks.values().map(|b| b.norm2()).sum::<f64>().sqrt()
    }

    /// Drop blocks whose largest entry is ≤ `tol`.
    pub fn prune(&mut self, tol: f64) {
        self.blocks.retain(|_, b| b.max_abs() > tol);
    }

    /// Stored elements (sum of block volumes).
    pub fn stored_elements(&self) -> usize {
        self.blocks.values().map(|b| b.len()).sum()
    }

    /// Fraction of the dense volume that is stored — Fig. 2b's "sparsity".
    pub fn fill_fraction(&self) -> f64 {
        let dense: usize = self.dense_dims().iter().product();
        if dense == 0 {
            0.0
        } else {
            self.stored_elements() as f64 / dense as f64
        }
    }

    /// Largest single mode extent over stored blocks — Fig. 2a's
    /// "size of largest block".
    pub fn largest_block_dim(&self) -> usize {
        self.blocks
            .keys()
            .map(|k| {
                k.iter()
                    .enumerate()
                    .map(|(i, &s)| self.indices[i].sector_dim(s as usize))
                    .max()
                    .unwrap_or(0)
            })
            .max()
            .unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::qn::Arrow;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn spin_site(arrow: Arrow) -> QnIndex {
        QnIndex::new(arrow, vec![(QN::one(1), 1), (QN::one(-1), 1)])
    }

    fn bond(arrow: Arrow, dims: &[(i32, usize)]) -> QnIndex {
        QnIndex::new(arrow, dims.iter().map(|&(q, d)| (QN::one(q), d)).collect())
    }

    fn mps_like() -> BlockSparseTensor {
        // T(il In, σ In, ir Out), flux 0
        let il = bond(Arrow::In, &[(-1, 2), (1, 3)]);
        let s = spin_site(Arrow::In);
        let ir = bond(Arrow::Out, &[(-2, 1), (0, 4), (2, 2)]);
        let mut rng = StdRng::seed_from_u64(91);
        BlockSparseTensor::random(vec![il, s, ir], QN::zero(1), &mut rng)
    }

    #[test]
    fn allowed_keys_conserve_flux() {
        let t = mps_like();
        let keys = t.allowed_keys();
        assert!(!keys.is_empty());
        for k in &keys {
            assert!(t.is_allowed(k));
        }
        // count: (il,σ) -> total in-charge ∈ {-2,0,0,2}; matching ir sectors:
        // il=-1,σ=-1 → need ir=-2 ✓; il=-1,σ=+1 → ir=0 ✓; il=+1,σ=-1 → ir=0 ✓;
        // il=+1,σ=+1 → ir=+2 ✓ ⇒ 4 allowed keys
        assert_eq!(keys.len(), 4);
    }

    #[test]
    fn random_fills_all_allowed() {
        let t = mps_like();
        assert_eq!(t.n_blocks(), 4);
        assert_eq!(t.stored_elements(), 2 + 2 * 4 + 3 * 4 + 3 * 2);
    }

    #[test]
    fn dense_roundtrip() {
        let t = mps_like();
        let d = t.to_dense();
        assert_eq!(d.dims(), &[5, 2, 7]);
        let back = BlockSparseTensor::from_dense(t.indices().to_vec(), t.flux(), &d, 0.0).unwrap();
        assert!(back.to_dense().allclose(&d, 0.0));
        assert_eq!(back.n_blocks(), t.n_blocks());
    }

    #[test]
    fn flat_sparse_roundtrip() {
        let t = mps_like();
        let sp = t.to_flat_sparse();
        assert_eq!(sp.nnz(), t.stored_elements());
        let back =
            BlockSparseTensor::from_flat_sparse(t.indices().to_vec(), t.flux(), &sp).unwrap();
        assert!(back.to_dense().allclose(&t.to_dense(), 0.0));
    }

    #[test]
    fn flat_mask_covers_blocks() {
        let t = mps_like();
        let mask = BlockSparseTensor::flat_mask(t.indices(), t.flux());
        assert_eq!(mask.len(), t.stored_elements());
        let sp = t.to_flat_sparse();
        let mask_set: std::collections::HashSet<u64> = mask.into_iter().collect();
        for (off, _) in sp.entries() {
            assert!(mask_set.contains(&off));
        }
    }

    #[test]
    fn forbidden_insert_rejected() {
        let mut t = BlockSparseTensor::new(
            vec![spin_site(Arrow::In), spin_site(Arrow::Out)],
            QN::zero(1),
        );
        // key (0,0): -1 in, +1 out ⇒ residual = +1 - (+1) = 0 ✓ allowed
        assert!(t
            .insert_block(vec![0, 0], DenseTensor::zeros([1, 1]))
            .is_ok());
        // key (0,1): residual = -1 - (+1)·(-1)?? — In(+1) gives -1, Out(-1)
        // gives -1 ⇒ -2 ≠ 0 forbidden
        assert!(t
            .insert_block(vec![0, 1], DenseTensor::zeros([1, 1]))
            .is_err());
        // wrong dims
        assert!(t
            .insert_block(vec![0, 0], DenseTensor::zeros([2, 1]))
            .is_err());
    }

    #[test]
    fn sparsity_less_than_one() {
        let t = mps_like();
        let f = t.fill_fraction();
        assert!(f > 0.0 && f < 1.0);
        assert_eq!(t.largest_block_dim(), 4);
    }

    #[test]
    fn permute_consistent_with_dense() {
        let t = mps_like();
        let p = t.permute(&[2, 0, 1]).unwrap();
        assert!(p
            .to_dense()
            .allclose(&t.to_dense().permute(&[2, 0, 1]).unwrap(), 0.0));
        assert!(p.is_allowed(&p.allowed_keys()[0]));
    }

    #[test]
    fn conj_flips_arrows_and_flux() {
        let il = bond(Arrow::In, &[(0, 1), (2, 2)]);
        let ir = bond(Arrow::Out, &[(1, 1), (3, 2)]);
        let mut rng = StdRng::seed_from_u64(92);
        let t = BlockSparseTensor::random(vec![il, ir], QN::one(1), &mut rng);
        let c = t.conj();
        assert_eq!(c.flux(), QN::one(-1));
        assert_eq!(c.indices()[0].arrow(), Arrow::Out);
        assert!(c.to_dense().allclose(&t.to_dense(), 0.0));
    }

    #[test]
    fn axpy_dot_norm() {
        let t = mps_like();
        let mut u = t.clone();
        u.axpy(1.0, &t).unwrap();
        assert!(u.to_dense().allclose(&t.to_dense().scaled(2.0), 1e-14));
        let d = t.dot(&t).unwrap();
        assert!((d - t.norm() * t.norm()).abs() < 1e-10);
        let mut z = t.clone();
        z.axpy(-1.0, &t).unwrap();
        assert!(z.norm() < 1e-14);
        z.prune(1e-15);
        assert_eq!(z.n_blocks(), 0);
    }
}

//! Abelian quantum numbers (U(1) charges).
//!
//! The spin system conserves total `Sz` (one U(1) charge); the electron
//! system conserves particle number *and* spin — two U(1) charges — which,
//! as the paper emphasizes, "significantly increases both the number of
//! blocks and sparsity of blocks for the same bond dimension" (Fig. 2).
//! [`QN`] holds up to two additive charges.

/// An additive abelian quantum number with up to two U(1) components.
///
/// Spin systems use one charge (`2·Sz`, doubled to stay integral); electron
/// systems use two (`N↑`, `N↓`).
#[derive(Copy, Clone, PartialEq, Eq, Hash, PartialOrd, Ord, Debug, Default)]
pub struct QN {
    charges: [i32; 2],
    n: u8,
}

impl QN {
    /// Single-charge quantum number.
    pub fn one(q: i32) -> Self {
        QN {
            charges: [q, 0],
            n: 1,
        }
    }

    /// Two-charge quantum number.
    pub fn two(a: i32, b: i32) -> Self {
        QN {
            charges: [a, b],
            n: 2,
        }
    }

    /// The zero element with `n` components.
    pub fn zero(n: u8) -> Self {
        assert!(n == 1 || n == 2);
        QN { charges: [0, 0], n }
    }

    /// Number of charge components (1 or 2).
    pub fn n_charges(&self) -> u8 {
        self.n
    }

    /// Charge component `i`.
    pub fn charge(&self, i: usize) -> i32 {
        self.charges[i]
    }

    /// Fusion (component-wise sum).
    #[allow(clippy::should_implement_trait)]
    pub fn add(self, o: QN) -> QN {
        assert_eq!(self.n, o.n, "mixing QN arities");
        QN {
            charges: [
                self.charges[0] + o.charges[0],
                self.charges[1] + o.charges[1],
            ],
            n: self.n,
        }
    }

    /// Inverse element.
    #[allow(clippy::should_implement_trait)]
    pub fn neg(self) -> QN {
        QN {
            charges: [-self.charges[0], -self.charges[1]],
            n: self.n,
        }
    }

    /// `self + (-o)`.
    #[allow(clippy::should_implement_trait)]
    pub fn sub(self, o: QN) -> QN {
        self.add(o.neg())
    }

    /// True if this is the zero element.
    pub fn is_zero(&self) -> bool {
        self.charges == [0, 0]
    }
}

impl std::fmt::Display for QN {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.n == 1 {
            write!(f, "{}", self.charges[0])
        } else {
            write!(f, "({},{})", self.charges[0], self.charges[1])
        }
    }
}

/// Direction of an index: whether its charge flows out of or into a tensor.
///
/// A block is symmetry-allowed when
/// `Σ_out q − Σ_in q == flux` (see [`crate::block::BlockSparseTensor`]).
/// Contractions pair an `Out` index with an `In` index carrying identical
/// sectors.
#[derive(Copy, Clone, PartialEq, Eq, Debug, Hash)]
pub enum Arrow {
    /// Charge flows into the tensor (bra-like / row-like).
    In,
    /// Charge flows out of the tensor (ket-like / column-like).
    Out,
}

impl Arrow {
    /// Sign used in the conservation sum (+1 for Out, −1 for In).
    pub fn sign(self) -> i32 {
        match self {
            Arrow::Out => 1,
            Arrow::In => -1,
        }
    }

    /// The opposite direction.
    pub fn flip(self) -> Arrow {
        match self {
            Arrow::In => Arrow::Out,
            Arrow::Out => Arrow::In,
        }
    }
}

/// Apply an arrow sign to a QN (`Out` keeps, `In` negates).
pub fn signed(qn: QN, arrow: Arrow) -> QN {
    match arrow {
        Arrow::Out => qn,
        Arrow::In => qn.neg(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_axioms() {
        let a = QN::one(2);
        let b = QN::one(-3);
        assert_eq!(a.add(b), QN::one(-1));
        assert_eq!(a.add(a.neg()), QN::zero(1));
        assert_eq!(a.sub(b), QN::one(5));
        assert!(QN::zero(1).is_zero());
        assert!(!a.is_zero());
    }

    #[test]
    fn two_charge_arithmetic() {
        let a = QN::two(1, 0);
        let b = QN::two(0, 1);
        let c = a.add(b);
        assert_eq!(c, QN::two(1, 1));
        assert_eq!(c.charge(0), 1);
        assert_eq!(c.charge(1), 1);
        assert_eq!(c.n_charges(), 2);
        assert_eq!(c.neg(), QN::two(-1, -1));
    }

    #[test]
    #[should_panic(expected = "mixing QN arities")]
    fn arity_mismatch_panics() {
        let _ = QN::one(1).add(QN::two(1, 1));
    }

    #[test]
    fn arrow_signs() {
        assert_eq!(Arrow::Out.sign(), 1);
        assert_eq!(Arrow::In.sign(), -1);
        assert_eq!(Arrow::In.flip(), Arrow::Out);
        assert_eq!(signed(QN::one(3), Arrow::In), QN::one(-3));
        assert_eq!(signed(QN::one(3), Arrow::Out), QN::one(3));
    }

    #[test]
    fn display_formats() {
        assert_eq!(QN::one(-2).to_string(), "-2");
        assert_eq!(QN::two(1, -1).to_string(), "(1,-1)");
    }

    #[test]
    fn ordering_is_total() {
        let mut v = vec![QN::one(3), QN::one(-1), QN::one(0)];
        v.sort();
        assert_eq!(v, vec![QN::one(-1), QN::one(0), QN::one(3)]);
    }
}

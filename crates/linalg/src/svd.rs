//! Singular value decomposition via one-sided Jacobi rotations.
//!
//! The paper performs DMRG bond truncation with a distributed ScaLAPACK SVD
//! (`pdgesvd`); locally we use one-sided Jacobi, which is simple, backward
//! stable, and accurate for the small-to-medium blocks a quantum-number
//! sector produces. Tall matrices are pre-reduced with a Householder QR so
//! the Jacobi sweeps run on the square factor.

use crate::qr::qr_thin;
use crate::{Error, Result};
use tt_tensor::{gemm_f64, DenseTensor};

/// Result of a full SVD: `A = U · diag(s) · Vᵀ`.
#[derive(Debug, Clone)]
pub struct SvdResult {
    /// Left singular vectors, `m×r` (orthonormal columns), `r = min(m,n)`.
    pub u: DenseTensor<f64>,
    /// Singular values, descending.
    pub s: Vec<f64>,
    /// Right singular vectors transposed, `r×n` (orthonormal rows).
    pub vt: DenseTensor<f64>,
}

/// Truncation policy for [`svd_trunc`].
#[derive(Debug, Clone, Copy)]
pub struct TruncSpec {
    /// Keep at most this many singular values (`usize::MAX` = no cap).
    pub max_rank: usize,
    /// Discard singular values `<= cutoff` (absolute). The paper uses
    /// `1e-12` during sweeps and `1e-13` for MPO compression.
    pub cutoff: f64,
    /// Keep at least this many values (even below cutoff), when available.
    pub min_keep: usize,
}

impl Default for TruncSpec {
    fn default() -> Self {
        Self {
            max_rank: usize::MAX,
            cutoff: 1e-12,
            min_keep: 1,
        }
    }
}

impl TruncSpec {
    /// Cap the rank.
    pub fn with_max_rank(mut self, r: usize) -> Self {
        self.max_rank = r;
        self
    }
    /// Set the absolute singular-value cutoff.
    pub fn with_cutoff(mut self, c: f64) -> Self {
        self.cutoff = c;
        self
    }
}

/// Result of a truncated SVD.
#[derive(Debug, Clone)]
pub struct TruncatedSvd {
    /// Left vectors `m×r`.
    pub u: DenseTensor<f64>,
    /// Kept singular values, descending.
    pub s: Vec<f64>,
    /// Right vectors `r×n`.
    pub vt: DenseTensor<f64>,
    /// Sum of squares of the discarded singular values (the DMRG
    /// truncation error).
    pub trunc_err: f64,
    /// Number of singular values discarded.
    pub n_discarded: usize,
}

const JACOBI_EPS: f64 = 1e-14;
const MAX_SWEEPS: usize = 60;

/// Full SVD of an `m×n` matrix.
pub fn svd(a: &DenseTensor<f64>) -> Result<SvdResult> {
    if a.order() != 2 {
        return Err(Error::Shape("svd wants a matrix".into()));
    }
    let (m, n) = (a.dims()[0], a.dims()[1]);
    if m == 0 || n == 0 {
        return Ok(SvdResult {
            u: DenseTensor::zeros([m, m.min(n)]),
            s: vec![],
            vt: DenseTensor::zeros([m.min(n), n]),
        });
    }
    if m < n {
        // SVD of the transpose and swap factors: Aᵀ = U Σ Vᵀ ⇒ A = V Σ Uᵀ
        let at = a.permute(&[1, 0])?;
        let r = svd(&at)?;
        return Ok(SvdResult {
            u: r.vt.permute(&[1, 0])?,
            s: r.s,
            vt: r.u.permute(&[1, 0])?,
        });
    }
    // Tall: QR first, Jacobi on the square R factor.
    if m > n {
        let (q, r) = qr_thin(a)?;
        let inner = svd_square_jacobi(&r)?;
        let u = gemm_f64(&q, &inner.u)?;
        return Ok(SvdResult {
            u,
            s: inner.s,
            vt: inner.vt,
        });
    }
    svd_square_jacobi(a)
}

/// One-sided Jacobi SVD for a square (or modestly rectangular m>=n) matrix.
fn svd_square_jacobi(a: &DenseTensor<f64>) -> Result<SvdResult> {
    let (m, n) = (a.dims()[0], a.dims()[1]);
    debug_assert!(m >= n);
    // column-major working copy of A; V accumulated column-major
    let mut w = vec![0.0f64; m * n];
    for i in 0..m {
        for j in 0..n {
            w[i + j * m] = a.at(&[i, j]);
        }
    }
    let mut v = vec![0.0f64; n * n];
    for j in 0..n {
        v[j + j * n] = 1.0;
    }

    let norm_a = a.norm();
    let tol = JACOBI_EPS * norm_a.max(1e-300);

    for _sweep in 0..MAX_SWEEPS {
        let mut rotated = false;
        for p in 0..n {
            for q in (p + 1)..n {
                let (mut app, mut aqq, mut apq) = (0.0f64, 0.0f64, 0.0f64);
                for i in 0..m {
                    let x = w[i + p * m];
                    let y = w[i + q * m];
                    app += x * x;
                    aqq += y * y;
                    apq += x * y;
                }
                tt_tensor::counter::add_flops(6 * m as u64);
                if apq.abs() <= tol * (app.sqrt() * aqq.sqrt()).max(tol) {
                    continue;
                }
                rotated = true;
                let zeta = (aqq - app) / (2.0 * apq);
                let t = zeta.signum() / (zeta.abs() + (1.0 + zeta * zeta).sqrt());
                let c = 1.0 / (1.0 + t * t).sqrt();
                let s = c * t;
                for i in 0..m {
                    let x = w[i + p * m];
                    let y = w[i + q * m];
                    w[i + p * m] = c * x - s * y;
                    w[i + q * m] = s * x + c * y;
                }
                for i in 0..n {
                    let x = v[i + p * n];
                    let y = v[i + q * n];
                    v[i + p * n] = c * x - s * y;
                    v[i + q * n] = s * x + c * y;
                }
                tt_tensor::counter::add_flops(6 * (m + n) as u64);
            }
        }
        if !rotated {
            break;
        }
    }

    // singular values = column norms; normalize columns into U
    let mut order: Vec<usize> = (0..n).collect();
    let mut sigma = vec![0.0f64; n];
    for j in 0..n {
        sigma[j] = (0..m)
            .map(|i| w[i + j * m] * w[i + j * m])
            .sum::<f64>()
            .sqrt();
    }
    order.sort_by(|&x, &y| sigma[y].partial_cmp(&sigma[x]).expect("no NaN"));

    let mut u = DenseTensor::zeros([m, n]);
    let mut vt = DenseTensor::zeros([n, n]);
    let mut s = Vec::with_capacity(n);
    for (newj, &j) in order.iter().enumerate() {
        let sg = sigma[j];
        s.push(sg);
        if sg > 0.0 {
            for i in 0..m {
                u.set(&[i, newj], w[i + j * m] / sg);
            }
        }
        for i in 0..n {
            vt.set(&[newj, i], v[i + j * n]);
        }
    }
    Ok(SvdResult { u, s, vt })
}

/// Truncated SVD according to a [`TruncSpec`]; reports the discarded weight.
pub fn svd_trunc(a: &DenseTensor<f64>, spec: TruncSpec) -> Result<TruncatedSvd> {
    let full = svd(a)?;
    let r_full = full.s.len();
    let mut keep = 0usize;
    for (i, &sv) in full.s.iter().enumerate() {
        if i < spec.min_keep || (sv > spec.cutoff && i < spec.max_rank) {
            keep = i + 1;
        } else {
            break;
        }
    }
    keep = keep.min(spec.max_rank.max(spec.min_keep)).min(r_full);
    let trunc_err: f64 = full.s[keep..].iter().map(|x| x * x).sum();

    let (m, n) = (a.dims()[0], a.dims()[1]);
    let mut u = DenseTensor::zeros([m, keep]);
    for i in 0..m {
        for j in 0..keep {
            u.set(&[i, j], full.u.at(&[i, j]));
        }
    }
    let mut vt = DenseTensor::zeros([keep, n]);
    for i in 0..keep {
        for j in 0..n {
            vt.set(&[i, j], full.vt.at(&[i, j]));
        }
    }
    Ok(TruncatedSvd {
        u,
        s: full.s[..keep].to_vec(),
        vt,
        trunc_err,
        n_discarded: r_full - keep,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use tt_tensor::Layout;

    fn reconstruct(r: &SvdResult) -> DenseTensor<f64> {
        let rk = r.s.len();
        let mut us = r.u.clone();
        for i in 0..us.dims()[0] {
            for j in 0..rk {
                us.set(&[i, j], us.at(&[i, j]) * r.s[j]);
            }
        }
        gemm_f64(&us, &r.vt).unwrap()
    }

    fn check_svd(a: &DenseTensor<f64>, tol: f64) {
        let r = svd(a).unwrap();
        assert!(reconstruct(&r).allclose(a, tol), "A != U S V^T");
        // descending
        for w in r.s.windows(2) {
            assert!(w[0] >= w[1] - 1e-12);
        }
        // orthonormality (columns of U corresponding to nonzero s)
        let utu = tt_tensor::gemm(&r.u, Layout::Transposed, &r.u, Layout::Normal).unwrap();
        for i in 0..r.s.len() {
            if r.s[i] > 1e-10 {
                assert!((utu.at(&[i, i]) - 1.0).abs() < 1e-9);
            }
        }
        let vvt = tt_tensor::gemm(&r.vt, Layout::Normal, &r.vt, Layout::Transposed).unwrap();
        assert!(vvt.allclose(&DenseTensor::eye(r.s.len()), 1e-9));
    }

    #[test]
    fn shapes_tall_square_wide() {
        let mut rng = StdRng::seed_from_u64(21);
        for (m, n) in [(5, 5), (8, 3), (3, 8), (1, 4), (4, 1), (16, 11), (11, 16)] {
            let a = DenseTensor::<f64>::random([m, n], &mut rng);
            check_svd(&a, 1e-9);
        }
    }

    #[test]
    fn known_singular_values() {
        // diag(3, 2, 1) embedded in 3x3
        let a = DenseTensor::from_vec([3, 3], vec![3.0, 0.0, 0.0, 0.0, 1.0, 0.0, 0.0, 0.0, 2.0])
            .unwrap();
        let r = svd(&a).unwrap();
        assert!((r.s[0] - 3.0).abs() < 1e-12);
        assert!((r.s[1] - 2.0).abs() < 1e-12);
        assert!((r.s[2] - 1.0).abs() < 1e-12);
    }

    #[test]
    fn rank_one_matrix() {
        // outer product: single nonzero singular value = |u||v|
        let u = [1.0, 2.0, 2.0]; // norm 3
        let v = [3.0, 4.0]; // norm 5
        let a = DenseTensor::from_fn([3, 2], |i| u[i[0]] * v[i[1]]);
        let r = svd(&a).unwrap();
        assert!((r.s[0] - 15.0).abs() < 1e-10);
        assert!(r.s[1].abs() < 1e-10);
    }

    #[test]
    fn frobenius_identity() {
        let mut rng = StdRng::seed_from_u64(22);
        let a = DenseTensor::<f64>::random([7, 9], &mut rng);
        let r = svd(&a).unwrap();
        let s2: f64 = r.s.iter().map(|x| x * x).sum();
        assert!((s2 - a.norm2()).abs() < 1e-9);
    }

    #[test]
    fn truncation_by_rank_and_cutoff() {
        let mut rng = StdRng::seed_from_u64(23);
        let a = DenseTensor::<f64>::random([10, 10], &mut rng);
        let full = svd(&a).unwrap();
        let t = svd_trunc(&a, TruncSpec::default().with_max_rank(4)).unwrap();
        assert_eq!(t.s.len(), 4);
        assert_eq!(t.n_discarded, 6);
        let expect_err: f64 = full.s[4..].iter().map(|x| x * x).sum();
        assert!((t.trunc_err - expect_err).abs() < 1e-9);
        // cutoff larger than everything keeps min_keep
        let t2 = svd_trunc(
            &a,
            TruncSpec {
                max_rank: usize::MAX,
                cutoff: 1e9,
                min_keep: 1,
            },
        )
        .unwrap();
        assert_eq!(t2.s.len(), 1);
    }

    #[test]
    fn truncated_reconstruction_error_is_optimal() {
        // Eckart–Young: rank-k truncation error equals sum of discarded s^2
        let mut rng = StdRng::seed_from_u64(24);
        let a = DenseTensor::<f64>::random([8, 6], &mut rng);
        let t = svd_trunc(&a, TruncSpec::default().with_max_rank(3)).unwrap();
        let mut us = t.u.clone();
        for i in 0..8 {
            for j in 0..t.s.len() {
                us.set(&[i, j], us.at(&[i, j]) * t.s[j]);
            }
        }
        let approx = gemm_f64(&us, &t.vt).unwrap();
        let diff = a.sub(&approx).unwrap();
        assert!((diff.norm2() - t.trunc_err).abs() < 1e-8);
    }

    #[test]
    fn zero_matrix_svd() {
        let a = DenseTensor::<f64>::zeros([4, 4]);
        let r = svd(&a).unwrap();
        assert!(r.s.iter().all(|&x| x == 0.0));
    }
}

//! Lanczos iteration for extremal eigenpairs of large implicit matrices.
//!
//! Used by the exact-diagonalization reference path (`dmrg::ed`) that
//! validates every DMRG energy in the test suite. Full reorthogonalization
//! keeps the basis numerically orthogonal — the Krylov spaces here are small
//! (≤ a few hundred vectors) so the O(k²n) cost is acceptable.

use crate::eig::eigh;
use crate::{Error, Result};
use tt_tensor::DenseTensor;

/// Options for [`lanczos_smallest`].
#[derive(Debug, Clone, Copy)]
pub struct LanczosOptions {
    /// Maximum Krylov dimension per restart cycle.
    pub max_krylov: usize,
    /// Maximum number of restart cycles.
    pub max_restarts: usize,
    /// Convergence threshold on the residual norm `‖A·x − λ·x‖`.
    pub tol: f64,
}

impl Default for LanczosOptions {
    fn default() -> Self {
        Self {
            max_krylov: 200,
            max_restarts: 20,
            tol: 1e-10,
        }
    }
}

/// Compute the smallest eigenpair `(λ, x)` of a symmetric operator given as
/// a matrix-free closure `apply(v) = A·v`, starting from `x0`.
pub fn lanczos_smallest(
    apply: impl Fn(&[f64]) -> Vec<f64>,
    x0: &[f64],
    opts: LanczosOptions,
) -> Result<(f64, Vec<f64>)> {
    let n = x0.len();
    if n == 0 {
        return Err(Error::Shape("lanczos on empty vector".into()));
    }
    let nrm = norm(x0);
    if nrm == 0.0 {
        return Err(Error::Shape("lanczos needs a nonzero start vector".into()));
    }
    let mut x: Vec<f64> = x0.iter().map(|v| v / nrm).collect();
    let mut lambda = f64::INFINITY;

    for _restart in 0..opts.max_restarts {
        let mut basis: Vec<Vec<f64>> = vec![x.clone()];
        let mut alphas: Vec<f64> = Vec::new();
        let mut betas: Vec<f64> = Vec::new();

        let kmax = opts.max_krylov.min(n);
        for j in 0..kmax {
            let mut w = apply(&basis[j]);
            debug_assert_eq!(w.len(), n);
            let alpha = dot(&basis[j], &w);
            alphas.push(alpha);
            // w -= alpha * v_j + beta_{j-1} * v_{j-1}
            axpy(&mut w, -alpha, &basis[j]);
            if j > 0 {
                let b = betas[j - 1];
                axpy(&mut w, -b, &basis[j - 1]);
            }
            // full reorthogonalization (twice is enough)
            for _ in 0..2 {
                for v in &basis {
                    let c = dot(v, &w);
                    axpy(&mut w, -c, v);
                }
            }
            let beta = norm(&w);
            if beta < 1e-14 || j + 1 == kmax {
                break;
            }
            betas.push(beta);
            basis.push(w.iter().map(|v| v / beta).collect());
        }

        // diagonalize the tridiagonal matrix
        let k = alphas.len();
        let mut t = DenseTensor::<f64>::zeros([k, k]);
        for i in 0..k {
            t.set(&[i, i], alphas[i]);
            if i + 1 < k {
                t.set(&[i, i + 1], betas[i]);
                t.set(&[i + 1, i], betas[i]);
            }
        }
        let (w, v) = eigh(&t)?;
        lambda = w[0];
        // Ritz vector
        let mut ritz = vec![0.0f64; n];
        for (j, b) in basis.iter().enumerate() {
            axpy(&mut ritz, v.at(&[j, 0]), b);
        }
        let rn = norm(&ritz);
        for e in &mut ritz {
            *e /= rn;
        }
        // residual
        let mut r = apply(&ritz);
        axpy(&mut r, -lambda, &ritz);
        let res = norm(&r);
        x = ritz;
        if res <= opts.tol {
            return Ok((lambda, x));
        }
    }
    // did not hit tolerance; return best estimate but flag it
    if lambda.is_finite() {
        Ok((lambda, x))
    } else {
        Err(Error::NoConvergence("lanczos produced no estimate".into()))
    }
}

fn dot(a: &[f64], b: &[f64]) -> f64 {
    tt_tensor::counter::add_flops(2 * a.len() as u64);
    a.iter().zip(b).map(|(x, y)| x * y).sum()
}

fn norm(a: &[f64]) -> f64 {
    a.iter().map(|x| x * x).sum::<f64>().sqrt()
}

fn axpy(y: &mut [f64], alpha: f64, x: &[f64]) {
    tt_tensor::counter::add_flops(2 * y.len() as u64);
    for (yi, xi) in y.iter_mut().zip(x) {
        *yi += alpha * xi;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    #[test]
    fn diagonal_operator() {
        // A = diag(0..n), smallest eigenvalue 0 with eigenvector e_0
        let n = 50;
        let apply =
            |v: &[f64]| -> Vec<f64> { v.iter().enumerate().map(|(i, x)| i as f64 * x).collect() };
        let mut rng = StdRng::seed_from_u64(31);
        let x0: Vec<f64> = (0..n).map(|_| rng.gen_range(0.1..1.0)).collect();
        let (lam, x) = lanczos_smallest(apply, &x0, LanczosOptions::default()).unwrap();
        assert!(lam.abs() < 1e-8);
        assert!((x[0].abs() - 1.0).abs() < 1e-6);
    }

    #[test]
    fn matches_dense_eigh() {
        let n = 30;
        let mut rng = StdRng::seed_from_u64(32);
        let b = DenseTensor::<f64>::random([n, n], &mut rng);
        let a = b.add(&b.permute(&[1, 0]).unwrap()).unwrap().scaled(0.5);
        let (w_ref, _) = eigh(&a).unwrap();
        let apply = |v: &[f64]| tt_tensor::gemm::gemv(&a, v).unwrap();
        let x0: Vec<f64> = (0..n).map(|_| rng.gen_range(-1.0..1.0)).collect();
        let (lam, x) = lanczos_smallest(apply, &x0, LanczosOptions::default()).unwrap();
        assert!((lam - w_ref[0]).abs() < 1e-8, "{lam} vs {}", w_ref[0]);
        // eigen-residual
        let ax = tt_tensor::gemm::gemv(&a, &x).unwrap();
        let res: f64 = ax
            .iter()
            .zip(&x)
            .map(|(axi, xi)| (axi - lam * xi).powi(2))
            .sum::<f64>()
            .sqrt();
        assert!(res < 1e-8);
    }

    #[test]
    fn degenerate_ground_state() {
        // A = diag(1,1,2,...) — degenerate minimum still converges
        let diag = [1.0, 1.0, 2.0, 3.0, 4.0, 5.0];
        let apply =
            |v: &[f64]| -> Vec<f64> { v.iter().zip(diag.iter()).map(|(x, d)| d * x).collect() };
        let x0 = vec![1.0; 6];
        let (lam, _) = lanczos_smallest(apply, &x0, LanczosOptions::default()).unwrap();
        assert!((lam - 1.0).abs() < 1e-9);
    }

    #[test]
    fn rejects_zero_start() {
        let apply = |v: &[f64]| v.to_vec();
        assert!(lanczos_smallest(apply, &[0.0; 4], LanczosOptions::default()).is_err());
        assert!(lanczos_smallest(apply, &[], LanczosOptions::default()).is_err());
    }
}

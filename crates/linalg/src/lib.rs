//! `tt-linalg` — dense linear algebra built from scratch on `tt-tensor`.
//!
//! Replaces the LAPACK/ScaLAPACK routines the paper relies on:
//!
//! * [`qr::qr_thin`] — Householder QR (used for MPS canonicalization and as
//!   the building block of the distributed TSQR in `tt-dist`),
//! * [`svd::svd`] / [`svd::svd_trunc`] — one-sided Jacobi SVD with global
//!   truncation (the `pdgesvd` stand-in; drives DMRG bond truncation),
//! * [`eig::eigh`] — symmetric Jacobi eigensolver (Davidson's subspace
//!   diagonalization, paper Alg. 1 line 7),
//! * [`lanczos::lanczos_smallest`] — Lanczos with full reorthogonalization
//!   (exact-diagonalization reference energies).
//!
//! All routines operate on order-2 [`tt_tensor::DenseTensor`]`<f64>` matrices
//! in row-major layout.

pub mod eig;
pub mod lanczos;
pub mod qr;
pub mod svd;

pub use eig::eigh;
pub use lanczos::{lanczos_smallest, LanczosOptions};
pub use qr::{qr_thin, rq_thin};
pub use svd::{svd, svd_trunc, SvdResult, TruncSpec, TruncatedSvd};

/// Crate-wide result type.
pub type Result<T> = std::result::Result<T, Error>;

/// Errors from linear-algebra routines.
#[derive(Debug, Clone, PartialEq)]
pub enum Error {
    /// Operand is not a matrix or has incompatible dimensions.
    Shape(String),
    /// Iteration failed to converge within the budget.
    NoConvergence(String),
    /// Underlying tensor error.
    Tensor(tt_tensor::Error),
}

impl From<tt_tensor::Error> for Error {
    fn from(e: tt_tensor::Error) -> Self {
        Error::Tensor(e)
    }
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Error::Shape(s) => write!(f, "shape error: {s}"),
            Error::NoConvergence(s) => write!(f, "no convergence: {s}"),
            Error::Tensor(e) => write!(f, "tensor error: {e}"),
        }
    }
}

impl std::error::Error for Error {}

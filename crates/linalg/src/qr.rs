//! Householder QR factorization.

use crate::{Error, Result};
use tt_tensor::DenseTensor;

/// Thin QR factorization of an `m×n` matrix: `A = Q·R` with `Q` of size
/// `m×min(m,n)` having orthonormal columns and `R` upper-triangular of size
/// `min(m,n)×n`.
pub fn qr_thin(a: &DenseTensor<f64>) -> Result<(DenseTensor<f64>, DenseTensor<f64>)> {
    if a.order() != 2 {
        return Err(Error::Shape("qr wants a matrix".into()));
    }
    let (m, n) = (a.dims()[0], a.dims()[1]);
    let k = m.min(n);
    // Work on a column-major copy of A for contiguous column access.
    let mut r = vec![0.0f64; m * n]; // column major: r[i + j*m]
    for i in 0..m {
        for j in 0..n {
            r[i + j * m] = a.at(&[i, j]);
        }
    }
    // Householder vectors stored below the diagonal; betas separately.
    let mut betas = vec![0.0f64; k];
    for j in 0..k {
        // compute reflector for column j, rows j..m
        let (beta, tau) = {
            let col = &mut r[j * m..(j + 1) * m];
            let alpha = col[j];
            let sigma: f64 = col[j + 1..m].iter().map(|x| x * x).sum();
            if sigma == 0.0 {
                // no off-diagonal mass: the column is already triangular
                (0.0, alpha)
            } else {
                let mu = (alpha * alpha + sigma).sqrt();
                // v = x - mu*e1 with the cancellation-free form for alpha > 0
                let v0 = if alpha <= 0.0 {
                    alpha - mu
                } else {
                    -sigma / (alpha + mu)
                };
                let v0sq = v0 * v0;
                let beta = 2.0 * v0sq / (sigma + v0sq);
                // normalize so v[j] = 1
                for x in col[j + 1..m].iter_mut() {
                    *x /= v0;
                }
                (beta, mu)
            }
        };
        betas[j] = beta;
        // apply reflector to remaining columns
        if beta != 0.0 {
            for c in (j + 1)..n {
                // w = v^T * col_c  (v[j]=1 implicit)
                let mut w = r[j + c * m];
                for i in (j + 1)..m {
                    w += r[i + j * m] * r[i + c * m];
                }
                w *= beta;
                r[j + c * m] -= w;
                for i in (j + 1)..m {
                    let vij = r[i + j * m];
                    r[i + c * m] -= w * vij;
                }
            }
        }
        r[j + j * m] = tau;
        tt_tensor::counter::add_flops(4 * ((m - j) as u64) * ((n - j) as u64));
    }

    // Build thin Q by applying reflectors to the first k columns of I.
    let mut q = vec![0.0f64; m * k]; // column major
    for j in 0..k {
        q[j + j * m] = 1.0;
    }
    for j in (0..k).rev() {
        if betas[j] == 0.0 {
            continue;
        }
        for c in 0..k {
            let mut w = q[j + c * m];
            for i in (j + 1)..m {
                w += r[i + j * m] * q[i + c * m];
            }
            w *= betas[j];
            q[j + c * m] -= w;
            for i in (j + 1)..m {
                let vij = r[i + j * m];
                q[i + c * m] -= w * vij;
            }
        }
    }

    // Materialize row-major outputs; zero the sub-diagonal of R.
    let mut qo = DenseTensor::zeros([m, k]);
    for i in 0..m {
        for j in 0..k {
            qo.set(&[i, j], q[i + j * m]);
        }
    }
    let mut ro = DenseTensor::zeros([k, n]);
    for i in 0..k {
        for j in i..n {
            ro.set(&[i, j], r[i + j * m]);
        }
    }
    Ok((qo, ro))
}

/// Thin RQ-like factorization: `A = L·Q` with `Q` of size `min(m,n)×n`
/// having orthonormal *rows* and `L` lower-triangular `m×min(m,n)`.
///
/// Used for right-canonicalization of MPS tensors. Implemented via QR of
/// `Aᵀ`: `Aᵀ = Q̃ R̃  ⇒  A = R̃ᵀ Q̃ᵀ`.
pub fn rq_thin(a: &DenseTensor<f64>) -> Result<(DenseTensor<f64>, DenseTensor<f64>)> {
    let at = a.permute(&[1, 0])?;
    let (qt, rt) = qr_thin(&at)?;
    Ok((rt.permute(&[1, 0])?, qt.permute(&[1, 0])?))
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use tt_tensor::gemm_f64;

    fn check_qr(a: &DenseTensor<f64>) {
        let (q, r) = qr_thin(a).unwrap();
        let (m, n) = (a.dims()[0], a.dims()[1]);
        let k = m.min(n);
        assert_eq!(q.dims(), &[m, k]);
        assert_eq!(r.dims(), &[k, n]);
        // A = QR
        let qr = gemm_f64(&q, &r).unwrap();
        assert!(qr.allclose(a, 1e-10), "reconstruction failed");
        // Q^T Q = I
        let qtq = tt_tensor::gemm(
            &q,
            tt_tensor::Layout::Transposed,
            &q,
            tt_tensor::Layout::Normal,
        )
        .unwrap();
        assert!(
            qtq.allclose(&DenseTensor::eye(k), 1e-10),
            "Q not orthonormal"
        );
        // R upper triangular
        for i in 0..k {
            for j in 0..i.min(n) {
                assert!(r.at(&[i, j]).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn tall_square_wide() {
        let mut rng = StdRng::seed_from_u64(11);
        for (m, n) in [(6, 3), (4, 4), (3, 7), (1, 1), (8, 1), (1, 5), (20, 13)] {
            let a = DenseTensor::<f64>::random([m, n], &mut rng);
            check_qr(&a);
        }
    }

    #[test]
    fn rank_deficient() {
        // two identical columns
        let a = DenseTensor::from_vec([3, 2], vec![1.0, 1.0, 2.0, 2.0, 3.0, 3.0]).unwrap();
        let (q, r) = qr_thin(&a).unwrap();
        let qr = gemm_f64(&q, &r).unwrap();
        assert!(qr.allclose(&a, 1e-10));
    }

    #[test]
    fn zero_matrix() {
        let a = DenseTensor::<f64>::zeros([4, 3]);
        let (q, r) = qr_thin(&a).unwrap();
        let qr = gemm_f64(&q, &r).unwrap();
        assert!(qr.allclose(&a, 1e-12));
    }

    #[test]
    fn rq_factorization() {
        let mut rng = StdRng::seed_from_u64(13);
        for (m, n) in [(3, 6), (4, 4), (7, 3)] {
            let a = DenseTensor::<f64>::random([m, n], &mut rng);
            let (l, q) = rq_thin(&a).unwrap();
            let k = m.min(n);
            assert_eq!(l.dims(), &[m, k]);
            assert_eq!(q.dims(), &[k, n]);
            let lq = gemm_f64(&l, &q).unwrap();
            assert!(lq.allclose(&a, 1e-10));
            // Q Q^T = I (orthonormal rows)
            let qqt = tt_tensor::gemm(
                &q,
                tt_tensor::Layout::Normal,
                &q,
                tt_tensor::Layout::Transposed,
            )
            .unwrap();
            assert!(qqt.allclose(&DenseTensor::eye(k), 1e-10));
        }
    }
}

//! Symmetric eigensolver via classical two-sided Jacobi rotations.
//!
//! Davidson's algorithm (paper Alg. 1, line 7) diagonalizes the leading
//! `i×i` block of the subspace matrix `M` every iteration; the subspaces are
//! tiny (the paper sweeps with subspace size 2), so a Jacobi eigensolver is
//! both adequate and robust. The same routine also backs the Lanczos
//! tridiagonal solve in [`crate::lanczos`].

use crate::{Error, Result};
use tt_tensor::DenseTensor;

const MAX_SWEEPS: usize = 64;

/// Eigendecomposition of a real symmetric matrix.
///
/// Returns `(eigenvalues, eigenvectors)` with eigenvalues ascending and the
/// `i`-th column of the eigenvector matrix corresponding to the `i`-th
/// eigenvalue: `A = V · diag(λ) · Vᵀ`.
pub fn eigh(a: &DenseTensor<f64>) -> Result<(Vec<f64>, DenseTensor<f64>)> {
    if a.order() != 2 || a.dims()[0] != a.dims()[1] {
        return Err(Error::Shape(format!(
            "eigh wants a square matrix, got {:?}",
            a.dims()
        )));
    }
    let n = a.dims()[0];
    if n == 0 {
        return Ok((vec![], DenseTensor::zeros([0, 0])));
    }
    // verify symmetry up to roundoff
    for i in 0..n {
        for j in (i + 1)..n {
            let d = (a.at(&[i, j]) - a.at(&[j, i])).abs();
            let scale = a.at(&[i, j]).abs().max(a.at(&[j, i]).abs()).max(1.0);
            if d > 1e-10 * scale {
                return Err(Error::Shape(format!(
                    "matrix not symmetric at ({i},{j}): {} vs {}",
                    a.at(&[i, j]),
                    a.at(&[j, i])
                )));
            }
        }
    }

    let mut m = a.clone();
    let mut v = DenseTensor::<f64>::eye(n);
    let md = m.data_mut();

    let off_norm = |md: &[f64]| -> f64 {
        let mut s = 0.0;
        for i in 0..n {
            for j in 0..n {
                if i != j {
                    s += md[i * n + j] * md[i * n + j];
                }
            }
        }
        s.sqrt()
    };

    let frob: f64 = md.iter().map(|x| x * x).sum::<f64>().sqrt();
    let tol = 1e-15 * frob.max(1e-300);

    for _sweep in 0..MAX_SWEEPS {
        if off_norm(md) <= tol {
            break;
        }
        for p in 0..n {
            for q in (p + 1)..n {
                let apq = md[p * n + q];
                if apq.abs() <= tol / (n as f64) {
                    continue;
                }
                let app = md[p * n + p];
                let aqq = md[q * n + q];
                let theta = (aqq - app) / (2.0 * apq);
                let t = theta.signum() / (theta.abs() + (1.0 + theta * theta).sqrt());
                let c = 1.0 / (1.0 + t * t).sqrt();
                let s = c * t;
                // rows/cols p and q of M
                for k in 0..n {
                    let mkp = md[k * n + p];
                    let mkq = md[k * n + q];
                    md[k * n + p] = c * mkp - s * mkq;
                    md[k * n + q] = s * mkp + c * mkq;
                }
                for k in 0..n {
                    let mpk = md[p * n + k];
                    let mqk = md[q * n + k];
                    md[p * n + k] = c * mpk - s * mqk;
                    md[q * n + k] = s * mpk + c * mqk;
                }
                // accumulate V
                let vd = v.data_mut();
                for k in 0..n {
                    let vkp = vd[k * n + p];
                    let vkq = vd[k * n + q];
                    vd[k * n + p] = c * vkp - s * vkq;
                    vd[k * n + q] = s * vkp + c * vkq;
                }
                tt_tensor::counter::add_flops(18 * n as u64);
            }
        }
    }

    // extract and sort ascending
    let mut pairs: Vec<(f64, usize)> = (0..n).map(|i| (md[i * n + i], i)).collect();
    pairs.sort_by(|x, y| x.0.partial_cmp(&y.0).expect("no NaN"));
    let evals: Vec<f64> = pairs.iter().map(|p| p.0).collect();
    let mut evecs = DenseTensor::zeros([n, n]);
    for (newc, &(_, oldc)) in pairs.iter().enumerate() {
        for r in 0..n {
            evecs.set(&[r, newc], v.at(&[r, oldc]));
        }
    }
    Ok((evals, evecs))
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use tt_tensor::{gemm_f64, Layout};

    fn random_symmetric(n: usize, seed: u64) -> DenseTensor<f64> {
        let mut rng = StdRng::seed_from_u64(seed);
        let b = DenseTensor::<f64>::random([n, n], &mut rng);
        let bt = b.permute(&[1, 0]).unwrap();
        b.add(&bt).unwrap().scaled(0.5)
    }

    #[test]
    fn diagonal_matrix() {
        let a = DenseTensor::from_vec([2, 2], vec![3.0, 0.0, 0.0, -1.0]).unwrap();
        let (w, v) = eigh(&a).unwrap();
        assert!((w[0] + 1.0).abs() < 1e-12);
        assert!((w[1] - 3.0).abs() < 1e-12);
        // eigenvector for -1 is e2
        assert!((v.at(&[1, 0]).abs() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn pauli_x_eigen() {
        let a = DenseTensor::from_vec([2, 2], vec![0.0, 1.0, 1.0, 0.0]).unwrap();
        let (w, _) = eigh(&a).unwrap();
        assert!((w[0] + 1.0).abs() < 1e-12);
        assert!((w[1] - 1.0).abs() < 1e-12);
    }

    #[test]
    fn reconstruction_and_orthogonality() {
        for n in [1, 2, 3, 5, 10, 17] {
            let a = random_symmetric(n, 100 + n as u64);
            let (w, v) = eigh(&a).unwrap();
            // A V = V diag(w)
            let av = gemm_f64(&a, &v).unwrap();
            let mut vd = v.clone();
            for i in 0..n {
                for (j, &wj) in w.iter().enumerate() {
                    vd.set(&[i, j], v.at(&[i, j]) * wj);
                }
            }
            assert!(av.allclose(&vd, 1e-8), "n={n}");
            let vtv = tt_tensor::gemm(&v, Layout::Transposed, &v, Layout::Normal).unwrap();
            assert!(vtv.allclose(&DenseTensor::eye(n), 1e-9), "n={n}");
            // ascending
            for p in w.windows(2) {
                assert!(p[0] <= p[1] + 1e-12);
            }
        }
    }

    #[test]
    fn trace_identity() {
        let a = random_symmetric(8, 7);
        let (w, _) = eigh(&a).unwrap();
        let tr: f64 = (0..8).map(|i| a.at(&[i, i])).sum();
        assert!((w.iter().sum::<f64>() - tr).abs() < 1e-9);
    }

    #[test]
    fn rejects_asymmetric() {
        let a = DenseTensor::from_vec([2, 2], vec![0.0, 1.0, 2.0, 0.0]).unwrap();
        assert!(eigh(&a).is_err());
        let b = DenseTensor::<f64>::zeros([2, 3]);
        assert!(eigh(&b).is_err());
    }
}

//! Property-based tests for the linear-algebra layer.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use tt_linalg::{eigh, qr_thin, svd, svd_trunc, TruncSpec};
use tt_tensor::{gemm_f64, DenseTensor, Layout};

fn random_matrix(m: usize, n: usize, seed: u64) -> DenseTensor<f64> {
    let mut rng = StdRng::seed_from_u64(seed);
    DenseTensor::random([m, n], &mut rng)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// QR: reconstruction + orthonormal Q + upper-triangular R, any shape.
    #[test]
    fn qr_invariants(m in 1usize..12, n in 1usize..12, seed in 0u64..10_000) {
        let a = random_matrix(m, n, seed);
        let (q, r) = qr_thin(&a).unwrap();
        let k = m.min(n);
        prop_assert_eq!(q.dims(), &[m, k]);
        prop_assert_eq!(r.dims(), &[k, n]);
        prop_assert!(gemm_f64(&q, &r).unwrap().allclose(&a, 1e-9));
        let qtq = tt_tensor::gemm(&q, Layout::Transposed, &q, Layout::Normal).unwrap();
        prop_assert!(qtq.allclose(&DenseTensor::eye(k), 1e-9));
        for i in 0..k {
            for j in 0..i.min(n) {
                prop_assert!(r.at(&[i, j]).abs() < 1e-10);
            }
        }
    }

    /// SVD: reconstruction, descending spectrum, Frobenius identity.
    #[test]
    fn svd_invariants(m in 1usize..10, n in 1usize..10, seed in 0u64..10_000) {
        let a = random_matrix(m, n, seed);
        let r = svd(&a).unwrap();
        // reconstruct
        let mut us = r.u.clone();
        for i in 0..m {
            for j in 0..r.s.len() {
                us.set(&[i, j], us.at(&[i, j]) * r.s[j]);
            }
        }
        prop_assert!(gemm_f64(&us, &r.vt).unwrap().allclose(&a, 1e-8));
        for w in r.s.windows(2) {
            prop_assert!(w[0] >= w[1] - 1e-12);
        }
        let s2: f64 = r.s.iter().map(|x| x * x).sum();
        prop_assert!((s2 - a.norm2()).abs() < 1e-8 * a.norm2().max(1.0));
    }

    /// Eckart–Young: rank-k truncation error equals the discarded weight,
    /// and equals the squared Frobenius distance of the reconstruction.
    #[test]
    fn truncation_optimality(seed in 0u64..10_000, keep in 1usize..5) {
        let a = random_matrix(7, 6, seed);
        let full = svd(&a).unwrap();
        prop_assume!(full.s.len() > keep);
        let t = svd_trunc(&a, TruncSpec { max_rank: keep, cutoff: 0.0, min_keep: 1 }).unwrap();
        prop_assert_eq!(t.s.len(), keep);
        let expect: f64 = full.s[keep..].iter().map(|x| x * x).sum();
        prop_assert!((t.trunc_err - expect).abs() < 1e-9 * expect.max(1.0));
        let mut us = t.u.clone();
        for i in 0..7 {
            for j in 0..keep {
                us.set(&[i, j], us.at(&[i, j]) * t.s[j]);
            }
        }
        let diff = a.sub(&gemm_f64(&us, &t.vt).unwrap()).unwrap();
        prop_assert!((diff.norm2() - t.trunc_err).abs() < 1e-7 * t.trunc_err.max(1.0));
    }

    /// eigh: A·V = V·Λ, orthonormal V, trace identity.
    #[test]
    fn eigh_invariants(n in 1usize..9, seed in 0u64..10_000) {
        let b = random_matrix(n, n, seed);
        let a = b.add(&b.permute(&[1, 0]).unwrap()).unwrap().scaled(0.5);
        let (w, v) = eigh(&a).unwrap();
        let av = gemm_f64(&a, &v).unwrap();
        let mut vl = v.clone();
        for i in 0..n {
            for (j, &wj) in w.iter().enumerate() {
                vl.set(&[i, j], v.at(&[i, j]) * wj);
            }
        }
        prop_assert!(av.allclose(&vl, 1e-7));
        let vtv = tt_tensor::gemm(&v, Layout::Transposed, &v, Layout::Normal).unwrap();
        prop_assert!(vtv.allclose(&DenseTensor::eye(n), 1e-8));
        let tr: f64 = (0..n).map(|i| a.at(&[i, i])).sum();
        prop_assert!((w.iter().sum::<f64>() - tr).abs() < 1e-8 * tr.abs().max(1.0));
    }

    /// SVD of an orthogonal-column matrix has unit singular values.
    #[test]
    fn svd_of_isometry(m in 3usize..10, seed in 0u64..10_000) {
        let a = random_matrix(m, 3.min(m), seed);
        let (q, _) = qr_thin(&a).unwrap();
        // skip rank-deficient random draws
        let r = svd(&q).unwrap();
        prop_assume!(r.s.iter().all(|&s| s > 1e-8));
        for &s in &r.s {
            prop_assert!((s - 1.0).abs() < 1e-8);
        }
    }
}

//! Criterion bench of a full two-site DMRG optimization step (the unit the
//! paper benchmarks) on the spin system, per algorithm.

use criterion::{criterion_group, criterion_main, Criterion};
use dmrg::{DavidsonOptions, Dmrg, Environments, SweepParams};
use tt_bench::{grow_state, System};
use tt_blocks::Algorithm;
use tt_dist::Executor;

fn bench_dmrg_step(c: &mut Criterion) {
    let mut g = c.benchmark_group("dmrg_middle_step");
    g.sample_size(10);
    let lat = System::Spins.lattice(4, 3);
    let warm = grow_state(System::Spins, &lat, 24);
    let exec = Executor::local();
    let params = SweepParams {
        max_m: 24,
        cutoff: 1e-12,
        davidson: DavidsonOptions {
            max_iter: 2,
            max_subspace: 2,
            tol: 1e-12,
            seed: 3,
        },
        noise: 0.0,
    };
    for algo in [
        Algorithm::List,
        Algorithm::SparseDense,
        Algorithm::SparseSparse,
    ] {
        g.bench_function(algo.to_string(), |bench| {
            bench.iter_batched(
                || {
                    let mut mps = warm.mps.clone();
                    mps.canonicalize(&exec, 0).unwrap();
                    let envs = Environments::initialize(&exec, algo, &mps, &warm.mpo).unwrap();
                    (mps, envs)
                },
                |(mut mps, mut envs)| {
                    let driver = Dmrg::new(&exec, algo, &warm.mpo);
                    driver
                        .optimize_bond(&mut mps, &mut envs, 0, &params, true)
                        .unwrap()
                },
                criterion::BatchSize::SmallInput,
            );
        });
    }
    g.finish();
}

criterion_group!(benches, bench_dmrg_step);
criterion_main!(benches);

//! Criterion bench comparing the paper's three block-sparsity contraction
//! algorithms on a realistic MPS-tensor contraction, plus the block SVD.

use criterion::{criterion_group, criterion_main, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;
use tt_blocks::{block_svd, contract, Algorithm, Arrow, BlockSparseTensor, QnIndex, QN};
use tt_dist::Executor;
use tt_linalg::TruncSpec;

fn bond(arrow: Arrow, sectors: &[(i32, usize)]) -> QnIndex {
    QnIndex::new(
        arrow,
        sectors.iter().map(|&(q, d)| (QN::one(q), d)).collect(),
    )
}

fn spin(arrow: Arrow) -> QnIndex {
    bond(arrow, &[(1, 1), (-1, 1)])
}

/// Two MPS-like tensors with a model-shaped bond spectrum (m ≈ 64).
///
/// Bond charges must alternate parity with the spin-1/2 site charge (±1):
/// even on the left bond, odd on the middle, even on the right — otherwise
/// no block satisfies conservation.
fn operands() -> (BlockSparseTensor, BlockSparseTensor) {
    let mut rng = StdRng::seed_from_u64(11);
    let even = &[(0, 16), (2, 10), (-2, 10), (4, 6), (-4, 6), (6, 4), (-6, 4)];
    let odd = &[(1, 13), (-1, 13), (3, 8), (-3, 8), (5, 5), (-5, 5)];
    let il = bond(Arrow::In, even);
    let mid = bond(Arrow::Out, odd);
    let ir = bond(Arrow::Out, even);
    let a = BlockSparseTensor::random(
        vec![il, spin(Arrow::In), mid.clone()],
        QN::zero(1),
        &mut rng,
    );
    let b = BlockSparseTensor::random(vec![mid.dual(), spin(Arrow::In), ir], QN::zero(1), &mut rng);
    (a, b)
}

fn bench_algorithms(c: &mut Criterion) {
    let mut g = c.benchmark_group("block_contract_m64");
    g.sample_size(10);
    let (a, b) = operands();
    let exec = Executor::local();
    for algo in [
        Algorithm::List,
        Algorithm::SparseDense,
        Algorithm::SparseSparse,
    ] {
        g.bench_function(algo.to_string(), |bench| {
            bench.iter(|| contract(&exec, algo, "isj,jtk->istk", &a, &b).unwrap());
        });
    }
    g.finish();
}

fn bench_block_svd(c: &mut Criterion) {
    let mut g = c.benchmark_group("block_svd");
    g.sample_size(10);
    let (a, b) = operands();
    let exec = Executor::local();
    let x = contract(&exec, Algorithm::List, "isj,jtk->istk", &a, &b).unwrap();
    g.bench_function("two_site_split", |bench| {
        bench.iter(|| {
            block_svd(
                &exec,
                &x,
                &[0, 1],
                &[2, 3],
                TruncSpec {
                    max_rank: 64,
                    cutoff: 1e-12,
                    min_keep: 1,
                },
            )
            .unwrap()
        });
    });
    g.finish();
}

criterion_group!(benches, bench_algorithms, bench_block_svd);
criterion_main!(benches);

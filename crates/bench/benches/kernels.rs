//! Criterion benches for the local kernels: GEMM, transpose, einsum,
//! sparse contraction — the building blocks whose throughput sets the
//! roofline calibration.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;
use tt_tensor::{einsum, gemm_f64, DenseTensor, SparseTensor};

fn bench_gemm(c: &mut Criterion) {
    let mut g = c.benchmark_group("gemm");
    g.sample_size(10);
    // 32/64 stay on the scalar small-block path; 128+ hit the packed
    // register-tiled kernel
    for n in [32usize, 64, 128, 256] {
        let mut rng = StdRng::seed_from_u64(1);
        let a = DenseTensor::<f64>::random([n, n], &mut rng);
        let b = DenseTensor::<f64>::random([n, n], &mut rng);
        g.bench_with_input(BenchmarkId::from_parameter(n), &n, |bench, _| {
            bench.iter(|| gemm_f64(&a, &b).unwrap());
        });
    }
    // transposed layout: packing absorbs the transpose (no copy)
    {
        let mut rng = StdRng::seed_from_u64(1);
        let a = DenseTensor::<f64>::random([256, 256], &mut rng);
        let b = DenseTensor::<f64>::random([256, 256], &mut rng);
        g.bench_function("at_b_256", |bench| {
            bench.iter(|| {
                tt_tensor::gemm(
                    &a,
                    tt_tensor::Layout::Transposed,
                    &b,
                    tt_tensor::Layout::Normal,
                )
                .unwrap()
            });
        });
    }
    // fused n == 1: the gemv fast path (Davidson matvec shape)
    {
        let mut rng = StdRng::seed_from_u64(1);
        let a = DenseTensor::<f64>::random([512, 512], &mut rng);
        let x = DenseTensor::<f64>::random([512, 1], &mut rng);
        g.bench_function("gemv_512", |bench| {
            bench.iter(|| gemm_f64(&a, &x).unwrap());
        });
    }
    g.finish();
}

fn bench_transpose(c: &mut Criterion) {
    let mut g = c.benchmark_group("transpose");
    g.sample_size(10);
    let mut rng = StdRng::seed_from_u64(2);
    let t3 = DenseTensor::<f64>::random([48, 32, 48], &mut rng);
    g.bench_function("order3_rotate", |bench| {
        bench.iter(|| t3.permute(&[2, 0, 1]).unwrap());
    });
    let t2 = DenseTensor::<f64>::random([512, 512], &mut rng);
    g.bench_function("matrix_512", |bench| {
        bench.iter(|| t2.permute(&[1, 0]).unwrap());
    });
    g.finish();
}

fn bench_einsum(c: &mut Criterion) {
    let mut g = c.benchmark_group("einsum");
    g.sample_size(10);
    let mut rng = StdRng::seed_from_u64(3);
    // the DMRG environment-extension contraction shape
    let l = DenseTensor::<f64>::random([48, 6, 48], &mut rng);
    let t = DenseTensor::<f64>::random([48, 2, 48], &mut rng);
    g.bench_function("env_extend", |bench| {
        bench.iter(|| einsum("bkc,cqf->bkqf", &l, &t).unwrap());
    });
    g.finish();
}

fn bench_sparse(c: &mut Criterion) {
    let mut g = c.benchmark_group("sparse");
    g.sample_size(10);
    let mut rng = StdRng::seed_from_u64(4);
    let dense = DenseTensor::<f64>::random([128, 128], &mut rng);
    let sp = SparseTensor::from_dense(&dense, 0.7); // ~30% fill
    let b = DenseTensor::<f64>::random([128, 64], &mut rng);
    g.bench_function("spmm_128", |bench| {
        bench.iter(|| sp.contract_dense("ik,kj->ij", &b).unwrap());
    });
    let sp2 = SparseTensor::from_dense(&dense, 0.7);
    g.bench_function("spgemm_128", |bench| {
        bench.iter(|| sp.contract_sparse("ik,kj->ij", &sp2).unwrap());
    });
    // row-skewed rectangular pattern through the threaded executor: the
    // volume-balanced bucket split vs what used to be one hot bucket
    let skew = DenseTensor::<f64>::from_fn([384, 64], |idx| {
        if idx[0] < 8 || idx[1] == 0 {
            (idx[0] + idx[1]) as f64 * 1e-3 - 0.2
        } else {
            0.0
        }
    });
    let sk = SparseTensor::from_dense(&skew, 0.0);
    let bd = DenseTensor::<f64>::random([64, 48], &mut rng);
    let exec =
        tt_dist::Executor::with_machine(tt_dist::Machine::local(), 1, tt_dist::ExecMode::Threaded);
    g.bench_function("sd_skewed_threaded", |bench| {
        bench.iter(|| exec.contract_sd("ik,kj->ij", &sk, &bd).unwrap());
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_gemm,
    bench_transpose,
    bench_einsum,
    bench_sparse
);
criterion_main!(benches);

//! Workload generation: warm DMRG states and instrumented middle-bond
//! optimization steps, mirroring the paper's benchmarking protocol
//! ("instead of timing all sites, we optimize the middle 3 columns …
//! reporting the timing of the middle column"; electrons: "a single DMRG
//! step (the 15th and 16th sites)").

use dmrg::{DavidsonOptions, Dmrg, Environments, Schedule, SweepParams};
use tt_blocks::Algorithm;
use tt_dist::Executor;
use tt_mps::{
    electron_filling, heisenberg_j1j2, hubbard, neel_state, Electron, Lattice, Mpo, Mps, SpinHalf,
};

/// The two benchmark systems of Section V.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum System {
    /// `J1−J2` Heisenberg on a square cylinder (d = 2, one U(1) charge).
    Spins,
    /// Triangular Hubbard at t=1, U=8.5 (d = 4, two U(1) charges).
    Electrons,
}

impl System {
    /// The paper's lattice for this system, scaled by `lx × ly`.
    pub fn lattice(&self, lx: usize, ly: usize) -> Lattice {
        match self {
            System::Spins => Lattice::square_cylinder(lx, ly),
            System::Electrons => Lattice::triangular_cylinder_xc(lx, ly),
        }
    }

    /// Default scaled-down lattice (paper: 20×10 spins, 6×6 electrons).
    pub fn default_lattice(&self) -> Lattice {
        match self {
            System::Spins => Lattice::square_cylinder(6, 4),
            System::Electrons => Lattice::triangular_cylinder_xc(4, 2),
        }
    }

    /// Block model fitted to this system (Table II caption).
    pub fn block_model(&self) -> tt_blocks::BlockModel {
        match self {
            System::Spins => tt_blocks::BlockModel::spins(),
            System::Electrons => tt_blocks::BlockModel::electrons(),
        }
    }

    /// MPO bond dimension the paper quotes (`k ~ 30` spins; `k = 26`
    /// compressed electrons).
    pub fn paper_k(&self) -> usize {
        match self {
            System::Spins => 30,
            System::Electrons => 26,
        }
    }
}

/// A DMRG-grown state ready for instrumented measurements.
pub struct WarmState {
    /// The Hamiltonian.
    pub mpo: Mpo,
    /// The optimized state at the target bond dimension.
    pub mps: Mps,
    /// The lattice.
    pub lattice: Lattice,
    /// Ground-state energy estimate from the warm-up.
    pub energy: f64,
}

/// Grow a state on `lattice` to bond dimension `m_target` with an untimed
/// ramp (the paper grows states with untimed sweeps before benchmarking).
pub fn grow_state(system: System, lattice: &Lattice, m_target: usize) -> WarmState {
    let n = lattice.n_sites();
    let exec = Executor::local();
    let (mpo, mut mps) = match system {
        System::Spins => {
            let mpo = heisenberg_j1j2(lattice, 1.0, 0.5).build().expect("mpo");
            let mps = Mps::product_state(&SpinHalf, &neel_state(n)).expect("state");
            (mpo, mps)
        }
        System::Electrons => {
            let mut mpo = hubbard(lattice, 1.0, 8.5).build().expect("mpo");
            let _ = mpo.compress(&exec, 1e-13);
            let mps =
                Mps::product_state(&Electron, &electron_filling(n, n / 2, n / 2)).expect("state");
            (mpo, mps)
        }
    };
    // geometric ramp to the target
    let mut ms = Vec::new();
    let mut m = 8usize;
    while m < m_target {
        ms.push(m);
        m *= 2;
    }
    ms.push(m_target);
    let dav = DavidsonOptions {
        max_iter: 4,
        max_subspace: 2,
        tol: 1e-9,
        seed: 11,
    };
    let schedule = Schedule {
        sweeps: ms
            .iter()
            .enumerate()
            .map(|(i, &m)| SweepParams {
                max_m: m,
                cutoff: 1e-12,
                davidson: dav,
                noise: if i + 1 < ms.len() { 1e-5 } else { 0.0 },
            })
            .collect(),
    };
    let driver = Dmrg::new(&exec, Algorithm::List, &mpo);
    let run = driver.run(&mut mps, &schedule).expect("warm-up converges");
    WarmState {
        mpo,
        mps,
        lattice: lattice.clone(),
        energy: run.energy,
    }
}

/// Instrumented result of optimizing the middle bond.
#[derive(Debug, Clone)]
pub struct InstrumentedStep {
    /// Flops counted by the runtime during the step.
    pub flops: u64,
    /// Wall-clock seconds (this machine, for live rates).
    pub wall_seconds: f64,
    /// Simulated time on the executor's machine.
    pub sim: tt_dist::SimTime,
    /// BSP supersteps.
    pub supersteps: u64,
    /// Bond dimension at the optimized bond.
    pub bond_dim: usize,
}

/// Optimize the middle pair of sites once on the given executor/algorithm
/// and report counters — the paper's per-step benchmark protocol.
pub fn measure_middle_step(warm: &WarmState, exec: &Executor, algo: Algorithm) -> InstrumentedStep {
    let mut mps = warm.mps.clone();
    let local = Executor::local();
    mps.canonicalize(&local, 0).expect("canonicalize");
    let mut envs = Environments::initialize(exec, algo, &mps, &warm.mpo).expect("environments");
    let driver = Dmrg::new(exec, algo, &warm.mpo);
    let n = mps.n_sites();
    let params = SweepParams {
        max_m: mps.max_bond_dim(),
        cutoff: 1e-12,
        davidson: DavidsonOptions {
            max_iter: 2,
            max_subspace: 2,
            tol: 1e-12,
            seed: 3,
        },
        noise: 0.0,
    };
    // walk to the middle without instrumentation
    let mid = n / 2 - 1;
    for j in 0..mid {
        driver
            .optimize_bond(&mut mps, &mut envs, j, &params, true)
            .expect("walk");
    }
    exec.reset_costs();
    let t0 = std::time::Instant::now();
    let rec = driver
        .optimize_bond(&mut mps, &mut envs, mid, &params, true)
        .expect("middle step");
    InstrumentedStep {
        flops: exec.total_flops(),
        wall_seconds: t0.elapsed().as_secs_f64(),
        sim: exec.sim_time(),
        supersteps: exec.supersteps(),
        bond_dim: rec.bond_dim,
    }
}

/// One point of a Pareto model scan (Figs. 10 and 13): an
/// (algorithm, node count, bond dimension) configuration placed on the
/// relative-time / relative-node-hour-cost plane against the single-node
/// baseline at the same `m`.
#[derive(Debug, Clone)]
pub struct ParetoPoint {
    /// Contraction algorithm of the run.
    pub algo: Algorithm,
    /// Processes per node of the machine model.
    pub ppn: usize,
    /// Node count.
    pub nodes: usize,
    /// Bond dimension.
    pub m: usize,
    /// Step time relative to the single-node baseline.
    pub rel_time: f64,
    /// Node-hour cost relative to the baseline (`rel_time × nodes`).
    pub rel_cost: f64,
    /// Flop-rate speedup over the baseline.
    pub rate_speedup: f64,
}

/// Model-scan the (time, cost) plane for `system` on one machine:
/// every `algo × nodes × m` point that fits in node memory, relative to
/// the single-node baseline at the same `m` — the shared engine behind
/// Figs. 10 and 13.
pub fn pareto_scan(
    system: System,
    machine: &tt_dist::Machine,
    algos: &[Algorithm],
    nodes_list: &[usize],
    ms: &[usize],
) -> Vec<ParetoPoint> {
    use crate::scaling::{baseline_rate, model_step};
    let mut points = Vec::new();
    for &m in ms {
        let base = baseline_rate(system, machine, m);
        for &algo in algos {
            for &nodes in nodes_list {
                let run = model_step(system, algo, machine, nodes, m);
                if run.mem_per_node > machine.mem_per_node_gb * 1e9 {
                    continue;
                }
                let rel_time = run.total() / base.total();
                points.push(ParetoPoint {
                    algo,
                    ppn: machine.procs_per_node,
                    nodes,
                    m,
                    rel_time,
                    rel_cost: rel_time * nodes as f64,
                    rate_speedup: (run.flops / run.total()) / (base.flops / base.total()),
                });
            }
        }
    }
    points
}

/// Lay `points` out as the figures' table (the `ppn` column only when
/// the scan spans machine variants).
pub fn pareto_table(points: &[ParetoPoint], with_ppn: bool) -> crate::Table {
    let headers: &[&str] = if with_ppn {
        &[
            "algo",
            "ppn",
            "nodes",
            "m",
            "rel time",
            "rel cost",
            "rate speedup",
        ]
    } else {
        &["algo", "nodes", "m", "rel time", "rel cost", "rate speedup"]
    };
    let mut t = crate::Table::new(headers);
    for p in points {
        let mut row = vec![p.algo.to_string()];
        if with_ppn {
            row.push(p.ppn.to_string());
        }
        row.extend([
            p.nodes.to_string(),
            p.m.to_string(),
            format!("{:.4}", p.rel_time),
            format!("{:.2}", p.rel_cost),
            format!("{:.1}", p.rate_speedup),
        ]);
        t.row(row);
    }
    t
}

/// The Pareto frontier of `points`: minimal relative time at each
/// relative cost, in increasing-cost order.
pub fn pareto_frontier(points: &[ParetoPoint]) -> Vec<ParetoPoint> {
    let mut sorted = points.to_vec();
    sorted.sort_by(|a, b| a.rel_cost.partial_cmp(&b.rel_cost).expect("no NaN"));
    let mut best = f64::INFINITY;
    let mut front = Vec::new();
    for p in sorted {
        if p.rel_time < best {
            best = p.rel_time;
            front.push(p);
        }
    }
    front
}

/// Run `specs` as **concurrent jobs** of a freshly-started solve service
/// (workers are re-execs of the current binary — the caller's `main` must
/// start with `tt_dist::maybe_serve()`), returning each job's report in
/// submission order plus the fleet-wide cache stats at completion.
///
/// This is the live half of Figs. 10/13: all scan points are submitted
/// up-front over one client connection and the daemon schedules them onto
/// the shared fleet, so identical operands across points dedup
/// worker-side.
#[cfg(unix)]
pub fn service_scan(
    specs: &[tt_dist::service::DmrgJobSpec],
    workers: usize,
    concurrent: usize,
) -> tt_dist::Result<(
    Vec<tt_dist::service::JobReport>,
    Vec<tt_dist::RankCacheStats>,
)> {
    use std::sync::Arc;
    use std::time::Duration;
    use tt_dist::service::{Service, ServiceClient, ServiceConfig};
    use tt_dist::SpawnSpec;

    let socket = std::env::temp_dir().join(format!("tt-bench-scan-{}.sock", std::process::id()));
    let mut cfg = ServiceConfig::new(&socket, workers);
    cfg.spawn = SpawnSpec::SelfExec(vec![]);
    cfg.max_concurrent = concurrent.max(1);
    cfg.max_queued = specs.len().max(1);
    let service = Service::start(cfg, Some(Arc::new(dmrg::DmrgSolveRunner)))?;
    let mut client = ServiceClient::connect(&socket, Duration::from_secs(10))?;
    let ids: Vec<u64> = specs
        .iter()
        .map(|s| client.submit_dmrg(s))
        .collect::<tt_dist::Result<_>>()?;
    let reports: Vec<_> = ids
        .into_iter()
        .map(|id| client.wait(id))
        .collect::<tt_dist::Result<_>>()?;
    let fleet = service.executor().cache_stats()?;
    drop(client);
    service.stop();
    Ok((reports, fleet))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pareto_scan_and_frontier() {
        let machine = tt_dist::Machine::blue_waters(16);
        let points = pareto_scan(
            System::Spins,
            &machine,
            &[Algorithm::List, Algorithm::SparseDense],
            &[4, 8, 16],
            &[4096, 8192],
        );
        assert!(!points.is_empty());
        let front = pareto_frontier(&points);
        assert!(!front.is_empty() && front.len() <= points.len());
        // frontier is strictly improving in time, increasing in cost
        for w in front.windows(2) {
            assert!(w[1].rel_cost >= w[0].rel_cost);
            assert!(w[1].rel_time < w[0].rel_time);
        }
        let t = pareto_table(&points, true);
        assert_eq!(t.headers.len(), 7);
    }

    #[test]
    fn grow_small_spin_state() {
        let lat = Lattice::square_cylinder(3, 2);
        let warm = grow_state(System::Spins, &lat, 12);
        assert!(warm.mps.max_bond_dim() <= 12);
        assert!(warm.energy < 0.0);
    }

    #[test]
    fn middle_step_counters() {
        let lat = Lattice::square_cylinder(3, 2);
        let warm = grow_state(System::Spins, &lat, 8);
        let exec = Executor::local();
        let step = measure_middle_step(&warm, &exec, Algorithm::List);
        assert!(step.flops > 0);
        assert!(step.wall_seconds > 0.0);
        assert!(step.sim.total() > 0.0);
        assert!(step.bond_dim > 0);
    }

    #[test]
    fn system_metadata() {
        assert_eq!(System::Spins.paper_k(), 30);
        assert_eq!(System::Electrons.paper_k(), 26);
        assert_eq!(System::Spins.default_lattice().n_sites(), 24);
    }
}

//! `tt-bench` — the harness that regenerates every table and figure of the
//! paper's evaluation section.
//!
//! Each binary in `src/bin/` reproduces one table or figure (see the
//! experiment index in `DESIGN.md`). Two kinds of data series appear:
//!
//! * **live** — actual DMRG executions at laptop-scale bond dimensions,
//!   run through the simulated distributed runtime with full BSP cost
//!   accounting;
//! * **model** — the calibrated Table II complexity model evaluated at the
//!   paper's bond dimensions (m = 2¹¹ … 2¹⁵), which no single core can run
//!   live.
//!
//! The paper's observable claims are *shapes* (who wins, crossover
//! locations, scaling trends); both series expose them.

pub mod scaling;
pub mod workload;

pub use scaling::{baseline_rate, model_step, rel_efficiency, ModelPoint, PAPER_MS};
#[cfg(unix)]
pub use workload::service_scan;
pub use workload::{
    grow_state, measure_middle_step, pareto_frontier, pareto_scan, pareto_table, InstrumentedStep,
    ParetoPoint, System, WarmState,
};

/// Simple fixed-width table printer for figure binaries.
pub struct Table {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// New table with column headers.
    pub fn new(headers: &[&str]) -> Self {
        Self {
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Append a row (stringified cells).
    pub fn row(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.headers.len(), "ragged table row");
        self.rows.push(cells);
    }

    /// Render to stdout.
    pub fn print(&self) {
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (w, c) in widths.iter_mut().zip(row) {
                *w = (*w).max(c.len());
            }
        }
        let line = |cells: &[String]| {
            let mut out = String::new();
            for (c, w) in cells.iter().zip(&widths) {
                out.push_str(&format!("{c:>w$}  ", w = w));
            }
            println!("{}", out.trim_end());
        };
        line(&self.headers);
        println!(
            "{}",
            "-".repeat(widths.iter().sum::<usize>() + 2 * widths.len())
        );
        for row in &self.rows {
            line(row);
        }
    }

    /// Also write as CSV into `bench_results/<name>.csv`.
    pub fn write_csv(&self, name: &str) -> std::io::Result<()> {
        std::fs::create_dir_all("bench_results")?;
        let mut s = self.headers.join(",");
        s.push('\n');
        for row in &self.rows {
            s.push_str(&row.join(","));
            s.push('\n');
        }
        std::fs::write(format!("bench_results/{name}.csv"), s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_roundtrip() {
        let mut t = Table::new(&["a", "b"]);
        t.row(vec!["1".into(), "2".into()]);
        assert_eq!(t.rows.len(), 1);
    }

    #[test]
    #[should_panic(expected = "ragged")]
    fn ragged_row_panics() {
        let mut t = Table::new(&["a"]);
        t.row(vec!["1".into(), "2".into()]);
    }
}

//! The paper-scale performance model: Table II complexity × machine
//! roofline → simulated step times at m = 2¹¹ … 2¹⁵ on hundreds of nodes.
//!
//! Live execution covers laptop-scale bond dimensions; this module carries
//! the same cost structure to the paper's scales, producing the `model`
//! series of Figs. 5 and 8–13. All quantities refer to one two-site DMRG
//! step (Davidson iterations + SVD + environment update), which is what the
//! paper benchmarks.

use crate::workload::System;
use tt_blocks::Algorithm;
use tt_dist::Machine;

/// The paper's bond-dimension grid.
pub const PAPER_MS: [usize; 5] = [2048, 4096, 8192, 16384, 32768];

/// Davidson iterations per two-site optimization assumed by the model
/// (subspace size 2, a few restarts — matches the paper's protocol).
const DAVIDSON_ITERS: f64 = 4.0;

/// A model-evaluated data point for one DMRG step.
#[derive(Debug, Clone)]
pub struct ModelPoint {
    /// Bond dimension.
    pub m: usize,
    /// Nodes used.
    pub nodes: usize,
    /// Total flops of the step.
    pub flops: f64,
    /// Simulated seconds: compute component.
    pub t_compute: f64,
    /// Simulated seconds: communication component.
    pub t_comm: f64,
    /// Simulated seconds: SVD component.
    pub t_svd: f64,
    /// Working-set memory per node (bytes).
    pub mem_per_node: f64,
}

impl ModelPoint {
    /// Total simulated step time.
    pub fn total(&self) -> f64 {
        self.t_compute + self.t_comm + self.t_svd
    }

    /// Achieved rate in GFlop/s.
    pub fn gflops(&self) -> f64 {
        self.flops / self.total() / 1e9
    }
}

/// Evaluate the model for one two-site step of `system` with `algo` on
/// `nodes` nodes of `machine` at bond dimension `m`.
pub fn model_step(
    system: System,
    algo: Algorithm,
    machine: &Machine,
    nodes: usize,
    m: usize,
) -> ModelPoint {
    let model = system.block_model();
    let k = system.paper_k();
    let p = (nodes * machine.procs_per_node).max(1);

    // Table II flops per Davidson iteration (the d² factor counts both MPO
    // site applications of the two-site window)
    let flops = DAVIDSON_ITERS * model.davidson_flops(algo, m, k);

    // compute: each block contraction runs across all p ranks, so the
    // per-rank local GEMM has dimension ~ b/√p (2-D SUMMA decomposition);
    // the rate is the block-volume-weighted roofline over the sector
    // spectrum, derated by the TTGT transpose/packing overhead of CTF-style
    // contraction (≈2× data motion per GEMM)
    const TTGT_DERATE: f64 = 0.5;
    let rate = {
        let per_rank_rate = |b: f64| -> f64 {
            let n_loc = (b / (p as f64).sqrt()).max(1.0);
            match algo {
                Algorithm::SparseSparse => machine.sparse_rate(n_loc),
                _ => machine.dense_rate(n_loc),
            }
        };
        match algo {
            Algorithm::SparseDense => per_rank_rate(m as f64),
            _ => {
                // block spectrum b_ℓ = (m/q)·rℓ, mirrored; weight by b³
                let dims = model.sector_dims(m);
                let mut wsum = 0.0;
                let mut rsum = 0.0;
                for (l, &b) in dims.iter().enumerate() {
                    let w = (b as f64).powi(3) * if l == 0 { 1.0 } else { 2.0 };
                    wsum += w;
                    rsum += w * per_rank_rate(b as f64);
                }
                rsum / wsum
            }
        }
    } * TTGT_DERATE;
    let t_compute = flops / (rate * p as f64);

    // communication: Table II words along the critical path per iteration,
    // plus per-superstep latency (the list algorithm pays one superstep per
    // block — its signature overhead)
    let words = DAVIDSON_ITERS * model.bsp_comm(algo, m, k, p);
    let supersteps = DAVIDSON_ITERS * model.bsp_supersteps(algo, m);
    // each superstep costs ~3 latency rounds (two broadcasts + reduce)
    let t_comm = words * 8.0 * machine.beta_s_per_byte + supersteps * 3.0 * machine.alpha_s;

    // SVD of the (m·d × m·d) two-site matrix, ScaLAPACK-style efficiency,
    // restricted to the largest sector (~largest block × d)
    let d = model.d as f64;
    let svd_dim = (model.largest_block(m) as f64) * d;
    let svd_flops = 14.0 * svd_dim.powi(3);
    let t_svd = svd_flops / (machine.dense_rate(svd_dim) * (p as f64) * 0.5);

    // memory: Davidson working set + environments (Table II), spread over
    // nodes
    let n_sites = match system {
        System::Spins => 200.0,
        System::Electrons => 36.0,
    };
    let mem = 8.0
        * (model.davidson_memory(algo, m, k) + model.environment_memory(n_sites as usize, m, k))
        / nodes as f64;

    ModelPoint {
        m,
        nodes,
        flops,
        t_compute,
        t_comm,
        t_svd,
        mem_per_node: mem,
    }
}

/// Single-node serial baseline rate (the "ITensor on one node" stand-in):
/// same flops, full-node roofline, no communication.
pub fn baseline_rate(system: System, machine: &Machine, m: usize) -> ModelPoint {
    let model = system.block_model();
    let k = system.paper_k();
    let flops = DAVIDSON_ITERS * model.davidson_flops(Algorithm::List, m, k);
    let n_eff = model.largest_block(m) as f64;
    // threaded BLAS uses the whole node
    let rate = machine.node_peak_gflops * 1e9 * n_eff / (n_eff + machine.gemm_half_dim);
    let t_compute = flops / rate;
    let d = model.d as f64;
    let svd_dim = (model.largest_block(m) as f64) * d;
    let svd_flops = 14.0 * svd_dim.powi(3);
    let t_svd = svd_flops / (rate * 0.5);
    ModelPoint {
        m,
        nodes: 1,
        flops,
        t_compute,
        t_comm: 0.0,
        t_svd,
        mem_per_node: 8.0 * model.davidson_memory(Algorithm::List, m, k),
    }
}

/// Relative efficiency as the paper defines it: GFlop/s/node of the
/// distributed run over GFlop/s of the single-node baseline.
pub fn rel_efficiency(run: &ModelPoint, baseline: &ModelPoint) -> f64 {
    let run_rate_per_node = run.flops / run.total() / run.nodes as f64;
    let base_rate = baseline.flops / baseline.total();
    run_rate_per_node / base_rate
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bw() -> Machine {
        Machine::blue_waters(16)
    }

    #[test]
    fn weak_scaling_shape_spins() {
        // paper Fig. 8a: doubling nodes with doubling m keeps efficiency
        // roughly flat for the list algorithm on Blue Waters
        let base = baseline_rate(System::Spins, &bw(), 4096);
        let e16 = rel_efficiency(
            &model_step(System::Spins, Algorithm::List, &bw(), 16, 4096),
            &base,
        );
        let e128 = rel_efficiency(
            &model_step(System::Spins, Algorithm::List, &bw(), 128, 32768),
            &baseline_rate(System::Spins, &bw(), 4096),
        );
        assert!(e16 > 0.2, "e16 = {e16}");
        assert!(e128 > 0.5 * e16, "weak scaling must hold: {e128} vs {e16}");
    }

    #[test]
    fn strong_scaling_saturates() {
        // paper Fig. 9: fixed m=8192, speedup flattens beyond ~2 doublings
        let t8 = model_step(System::Spins, Algorithm::List, &bw(), 8, 8192).total();
        let t16 = model_step(System::Spins, Algorithm::List, &bw(), 16, 8192).total();
        let t64 = model_step(System::Spins, Algorithm::List, &bw(), 64, 8192).total();
        let s16 = t8 / t16;
        let s64 = t8 / t64;
        assert!(s16 > 1.3, "initial speedup: {s16}");
        assert!(s64 < 8.0, "speedup must saturate well below ideal: {s64}");
    }

    #[test]
    fn sparse_dense_pays_dense_flops() {
        let sd = model_step(System::Spins, Algorithm::SparseDense, &bw(), 16, 8192);
        let list = model_step(System::Spins, Algorithm::List, &bw(), 16, 8192);
        assert!(sd.flops > 10.0 * list.flops);
    }

    #[test]
    fn list_latency_vs_sparse_bandwidth() {
        // the Table II trade-off: list has more supersteps (latency), the
        // sparse algorithms more words (bandwidth)
        let m = 8192;
        let model = System::Electrons.block_model();
        assert!(model.bsp_supersteps(Algorithm::List, m) > 10.0);
        assert_eq!(model.bsp_supersteps(Algorithm::SparseSparse, m), 1.0);
        let k = System::Electrons.paper_k();
        assert!(
            model.bsp_comm(Algorithm::SparseSparse, m, k, 64)
                > model.bsp_comm(Algorithm::List, m, k, 64)
        );
    }

    #[test]
    fn memory_feasibility_drives_min_nodes() {
        // paper: sparse format has higher memory cost; m=32768 doesn't fit
        // on one 64 GB node
        let p = model_step(System::Spins, Algorithm::SparseDense, &bw(), 1, 32768);
        assert!(p.mem_per_node > 64.0 * 1e9, "must exceed one BW node");
        let p256 = model_step(System::Spins, Algorithm::List, &bw(), 256, 32768);
        assert!(p256.mem_per_node < 64.0 * 1e9);
    }

    #[test]
    fn paper_headline_rate_order_of_magnitude() {
        // paper: 3.1 TFlop/s peak on Blue Waters at 256 nodes (spins, list)
        let p = model_step(System::Spins, Algorithm::List, &bw(), 256, 32768);
        let gf = p.gflops();
        assert!(
            gf > 500.0 && gf < 20_000.0,
            "rate should be O(TFlop/s): {gf} GF/s"
        );
    }
}

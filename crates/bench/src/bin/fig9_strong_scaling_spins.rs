//! Figure 9: spins strong scaling at m = 8192 on Blue Waters (list).
//!
//! Speedup and efficiency vs node count at fixed problem size. The paper
//! finds ideal speedup only for the first doubling (2³ → 2⁴ nodes), with
//! efficiency falling to ~60% after another doubling.

use tt_bench::{model_step, System, Table};
use tt_blocks::Algorithm;
use tt_dist::Machine;

fn main() {
    let m = 8192;
    println!("=== Fig. 9: strong scaling, spins, m = {m}, Blue Waters ===\n");
    let mut t = Table::new(&["ppn", "nodes", "time (s)", "speedup", "efficiency"]);
    for ppn in [16usize, 32] {
        let machine = Machine::blue_waters(ppn);
        let nodes0 = 8usize;
        let t0 = model_step(System::Spins, Algorithm::List, &machine, nodes0, m).total();
        for nodes in [8usize, 16, 32, 64] {
            let ti = model_step(System::Spins, Algorithm::List, &machine, nodes, m).total();
            let speedup = t0 / ti;
            let eff = speedup / (nodes as f64 / nodes0 as f64);
            t.row(vec![
                ppn.to_string(),
                nodes.to_string(),
                format!("{ti:.4}"),
                format!("{speedup:.2}"),
                format!("{eff:.3}"),
            ]);
        }
    }
    t.print();
    let _ = t.write_csv("fig9");
    println!(
        "\npaper shape checks: near-ideal speedup for the first doubling, then\n\
         saturation — efficiency around or below ~60% by two doublings."
    );
}

//! Figure 13: electrons — relative time vs relative node-hour cost for
//! list (circles) and sparse-sparse (diamonds) on Blue Waters and
//! Stampede2. Paper headlines: on BW the largest list run reaches ~8×
//! speedup at ~serial cost (0.98×); sparse-sparse reaches a 14× rate
//! speedup at 4.5× cost; on S2 list gives 2× at 1.9× cost and sparse 3.9×
//! at 8× cost.

use tt_bench::{baseline_rate, model_step, System, Table, PAPER_MS};
use tt_blocks::Algorithm;
use tt_dist::Machine;

fn main() {
    for machine in [Machine::blue_waters(16), Machine::stampede2(64)] {
        println!(
            "=== Fig. 13 ({}): relative time vs cost ===\n",
            machine.name
        );
        let mut t = Table::new(&["algo", "nodes", "m", "rel time", "rel cost", "rate speedup"]);
        for &m in &PAPER_MS[1..] {
            let base = baseline_rate(System::Electrons, &machine, m);
            for algo in [Algorithm::List, Algorithm::SparseSparse] {
                for nodes in [1usize, 2, 4, 8, 16, 32] {
                    let run = model_step(System::Electrons, algo, &machine, nodes, m);
                    if run.mem_per_node > machine.mem_per_node_gb * 1e9 {
                        continue;
                    }
                    let rel_time = run.total() / base.total();
                    let rel_cost = rel_time * nodes as f64;
                    let rate_speedup = (run.flops / run.total()) / (base.flops / base.total());
                    t.row(vec![
                        algo.to_string(),
                        nodes.to_string(),
                        m.to_string(),
                        format!("{rel_time:.4}"),
                        format!("{rel_cost:.2}"),
                        format!("{rate_speedup:.1}"),
                    ]);
                }
            }
        }
        t.print();
        let _ = t.write_csv(&format!("fig13_{}", machine.name));
        println!();
    }
    println!(
        "paper shape checks: list is cheaper per node-hour (its flops are the\n\
         serial flops); sparse-sparse buys more speedup at multiple of the\n\
         cost — the paper's 14x @ 4.5x (BW) and 3.9x @ 8x (S2) pattern."
    );
}

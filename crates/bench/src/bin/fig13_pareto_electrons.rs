//! Figure 13: electrons — relative time vs relative node-hour cost for
//! list (circles) and sparse-sparse (diamonds) on Blue Waters and
//! Stampede2. Paper headlines: on BW the largest list run reaches ~8×
//! speedup at ~serial cost (0.98×); sparse-sparse reaches a 14× rate
//! speedup at 4.5× cost; on S2 list gives 2× at 1.9× cost and sparse 3.9×
//! at 8× cost.
//!
//! Ends with a **live** section: a concurrent Hubbard-chain scan run as
//! jobs of a real solve-service daemon over one shared worker fleet,
//! exercising both block algorithms side by side.

use tt_bench::{pareto_frontier, pareto_scan, pareto_table, System, PAPER_MS};
use tt_blocks::Algorithm;
use tt_dist::Machine;

fn main() {
    // when re-executed as a solve-service fleet worker, serve and exit
    tt_dist::maybe_serve();

    for machine in [Machine::blue_waters(16), Machine::stampede2(64)] {
        println!(
            "=== Fig. 13 ({}): relative time vs cost ===\n",
            machine.name
        );
        let points = pareto_scan(
            System::Electrons,
            &machine,
            &[Algorithm::List, Algorithm::SparseSparse],
            &[1, 2, 4, 8, 16, 32],
            &PAPER_MS[1..],
        );
        let t = pareto_table(&points, false);
        t.print();
        let _ = t.write_csv(&format!("fig13_{}", machine.name));

        println!("\nPareto frontier ({}):", machine.name);
        for p in pareto_frontier(&points) {
            println!(
                "  cost {:>8.2}  time {:.4}  {} m={} n={}",
                p.rel_cost, p.rel_time, p.algo, p.m, p.nodes
            );
        }
        println!();
    }
    println!(
        "paper shape checks: list is cheaper per node-hour (its flops are the\n\
         serial flops); sparse-sparse buys more speedup at multiple of the\n\
         cost — the paper's 14x @ 4.5x (BW) and 3.9x @ 8x (S2) pattern."
    );
    live_concurrent_scan();
}

/// Live section: one Hubbard chain, both block algorithms at two bond
/// dimensions — four tenants of one solve-service daemon running
/// concurrently on a shared 3-worker fleet.
#[cfg(unix)]
fn live_concurrent_scan() {
    use tt_bench::{service_scan, Table};
    use tt_dist::service::{AlgoSpec, DavidsonSpec, DmrgJobSpec, ModelSpec};

    println!("\n== live concurrent scan (solve service, shared 3-worker fleet) ==\n");
    let points: &[(AlgoSpec, u64)] = &[
        (AlgoSpec::List, 12),
        (AlgoSpec::List, 16),
        (AlgoSpec::SparseSparse, 12),
        (AlgoSpec::SparseSparse, 16),
    ];
    let specs: Vec<DmrgJobSpec> = points
        .iter()
        .map(|&(algo, m)| DmrgJobSpec {
            model: ModelSpec::HubbardChain { n: 6, u: 8.5 },
            algo,
            ms: vec![8, m],
            sweeps_per_m: 1,
            cutoff: 1e-10,
            noise: 1e-4,
            davidson: DavidsonSpec {
                max_iter: 4,
                max_subspace: 2,
                tol: 1e-10,
                seed: 0x1234,
            },
            timeout_ms: 0,
            resident_cap_bytes: 0,
        })
        .collect();
    let (reports, fleet) = match service_scan(&specs, 3, specs.len()) {
        Ok(r) => r,
        Err(e) => {
            println!("(skipped: could not run the solve service: {e})");
            return;
        }
    };
    let mut t = Table::new(&["algo", "m", "energy", "flops", "operand MB", "sim s"]);
    for (&(algo, m), r) in points.iter().zip(&reports) {
        t.row(vec![
            format!("{algo:?}"),
            m.to_string(),
            format!("{:.8}", r.energy),
            format!("{:.3e}", r.meter.flops as f64),
            format!("{:.2}", r.meter.bytes_operands as f64 / 1e6),
            format!("{:.3}", r.meter.sim_seconds),
        ]);
    }
    t.print();
    let hits: u64 = fleet.iter().map(|s| s.hits).sum();
    let misses: u64 = fleet.iter().map(|s| s.misses).sum();
    println!(
        "\nfleet cache after the scan: {hits} hits / {misses} misses across {} ranks",
        fleet.len()
    );
}

#[cfg(not(unix))]
fn live_concurrent_scan() {}

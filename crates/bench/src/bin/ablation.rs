//! Ablations of the design choices DESIGN.md calls out:
//!
//! 1. **output-sparsity masking** in the sparse-sparse algorithm (the
//!    paper's pre-computed sparsity feature) — result sizes with and
//!    without the mask;
//! 2. **distributed-SVD strategy** — TSQR vs gathered Householder QR on a
//!    tall-skinny panel;
//! 3. **SUMMA block size** — communication volume vs panel width.

use parking_lot::Mutex;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::Arc;
use tt_bench::Table;
use tt_blocks::{contract, Algorithm, Arrow, BlockSparseTensor, QnIndex, QN};
use tt_dist::{tsqr, Comm, CostTracker, DistMatrix, ExecMode, Executor, Machine};
use tt_tensor::DenseTensor;

fn comm(p: usize) -> Comm {
    let tracker = Arc::new(Mutex::new(CostTracker::new(Machine::blue_waters(16), p)));
    Comm::new(p, ExecMode::Sequential, tracker)
}

fn main() {
    println!("=== Ablation 1: output-sparsity masking (sparse-sparse) ===\n");
    // block tensors with parity-compatible spectra
    let even: Vec<(QN, usize)> = [(0, 8), (2, 6), (-2, 6), (4, 3), (-4, 3)]
        .iter()
        .map(|&(q, d)| (QN::one(q), d))
        .collect();
    let odd: Vec<(QN, usize)> = [(1, 7), (-1, 7), (3, 4), (-3, 4)]
        .iter()
        .map(|&(q, d)| (QN::one(q), d))
        .collect();
    let spin = vec![(QN::one(1), 1), (QN::one(-1), 1)];
    let mut rng = StdRng::seed_from_u64(21);
    let a = BlockSparseTensor::random(
        vec![
            QnIndex::new(Arrow::In, even.clone()),
            QnIndex::new(Arrow::In, spin.clone()),
            QnIndex::new(Arrow::Out, odd.clone()),
        ],
        QN::zero(1),
        &mut rng,
    );
    let b = BlockSparseTensor::random(
        vec![
            QnIndex::new(Arrow::In, odd),
            QnIndex::new(Arrow::In, spin),
            QnIndex::new(Arrow::Out, even),
        ],
        QN::zero(1),
        &mut rng,
    );
    let exec = Executor::local();
    let spec = "isj,jtk->istk";
    let masked = contract(&exec, Algorithm::SparseSparse, spec, &a, &b).unwrap();
    // unmasked: raw flat contraction, then re-blocked
    let a_flat = a.to_flat_sparse();
    let b_flat = b.to_flat_sparse();
    let unmasked = exec.contract_ss(spec, &a_flat, &b_flat, None).unwrap();
    let mut t = Table::new(&["variant", "result nnz", "result blocks"]);
    t.row(vec![
        "masked (QN-precomputed)".into(),
        masked.to_flat_sparse().nnz().to_string(),
        masked.n_blocks().to_string(),
    ]);
    t.row(vec![
        "unmasked".into(),
        unmasked.nnz().to_string(),
        "-".into(),
    ]);
    t.print();
    println!(
        "\nThe mask bounds intermediate memory exactly to the symmetry-allowed\n\
         pattern — 'knowledge of quantum number labels allows for pre-computation\n\
         of the output sparsity … to control memory consumption'.\n"
    );

    println!("=== Ablation 2: TSQR vs gathered QR (tall-skinny panel) ===\n");
    let mut t2 = Table::new(&[
        "method",
        "ranks",
        "supersteps",
        "bytes critical",
        "ortho err",
    ]);
    let mut rng = StdRng::seed_from_u64(22);
    let a_tall = DenseTensor::<f64>::random([256, 8], &mut rng);
    for p in [2usize, 4, 8] {
        let c = comm(p);
        let (q, _r) = tsqr(&a_tall, &c).unwrap();
        let qtq = tt_tensor::gemm(
            &q,
            tt_tensor::Layout::Transposed,
            &q,
            tt_tensor::Layout::Normal,
        )
        .unwrap();
        let err = qtq.max_diff(&DenseTensor::eye(8)).unwrap();
        let tr = c.tracker().lock();
        t2.row(vec![
            "TSQR".into(),
            p.to_string(),
            tr.supersteps.to_string(),
            tr.bytes_critical.to_string(),
            format!("{err:.2e}"),
        ]);
    }
    {
        // gathered: all data to one rank, local QR — bytes scale with the
        // full panel instead of n² per tree level
        let c = comm(8);
        c.charge_p2p((256 * 8 * 8) as u64);
        let (q, _r) = tt_linalg::qr_thin(&a_tall).unwrap();
        let qtq = tt_tensor::gemm(
            &q,
            tt_tensor::Layout::Transposed,
            &q,
            tt_tensor::Layout::Normal,
        )
        .unwrap();
        let err = qtq.max_diff(&DenseTensor::eye(8)).unwrap();
        let tr = c.tracker().lock();
        t2.row(vec![
            "gather+QR".into(),
            "8".into(),
            tr.supersteps.to_string(),
            tr.bytes_critical.to_string(),
            format!("{err:.2e}"),
        ]);
    }
    t2.print();
    println!();

    println!("=== Ablation 3: SUMMA panel width vs communication ===\n");
    let mut t3 = Table::new(&["block", "supersteps", "bytes critical"]);
    let mut rng = StdRng::seed_from_u64(23);
    let a = DenseTensor::<f64>::random([64, 64], &mut rng);
    let b = DenseTensor::<f64>::random([64, 64], &mut rng);
    for block in [4usize, 8, 16, 32] {
        let c = comm(4);
        let da = DistMatrix::from_global(&a, &c, block).unwrap();
        let db = DistMatrix::from_global(&b, &c, block).unwrap();
        let _ = da.summa(&db, &c).unwrap();
        let tr = c.tracker().lock();
        t3.row(vec![
            block.to_string(),
            tr.supersteps.to_string(),
            tr.bytes_critical.to_string(),
        ]);
    }
    t3.print();
    println!(
        "\nWider panels trade fewer supersteps (latency) for the same asymptotic\n\
         volume — the same latency/bandwidth dial as the list vs sparse choice."
    );
}

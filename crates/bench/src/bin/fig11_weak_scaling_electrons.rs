//! Figure 11: electrons weak scaling — list vs sparse-sparse on Blue
//! Waters and Stampede2. Relative efficiency against the single-node
//! baseline at m = 16384 (BW) / m = 8192 (S2), per the paper's caption.

use tt_bench::{baseline_rate, model_step, rel_efficiency, System, Table, PAPER_MS};
use tt_blocks::Algorithm;
use tt_dist::Machine;

fn main() {
    println!("=== Fig. 11a: electrons weak scaling (model, paper scale) ===\n");
    let mut t = Table::new(&["machine", "algo", "nodes", "m", "rel. efficiency"]);
    for (machine, base_m) in [
        (Machine::blue_waters(16), 16384usize),
        (Machine::stampede2(64), 8192usize),
    ] {
        let base = baseline_rate(System::Electrons, &machine, base_m);
        for algo in [Algorithm::List, Algorithm::SparseSparse] {
            for (nodes, m) in [(1usize, 4096usize), (2, 8192), (4, 16384), (8, 32768)] {
                let run = model_step(System::Electrons, algo, &machine, nodes, m);
                t.row(vec![
                    machine.name.clone(),
                    algo.to_string(),
                    nodes.to_string(),
                    m.to_string(),
                    format!("{:.3}", rel_efficiency(&run, &base)),
                ]);
            }
        }
    }
    t.print();
    let _ = t.write_csv("fig11a");

    println!("\n=== Fig. 11b: peak relative efficiency per node count ===\n");
    let mut pt = Table::new(&["machine", "algo", "nodes", "best m", "peak rel. eff."]);
    for (machine, base_m) in [
        (Machine::blue_waters(16), 16384usize),
        (Machine::stampede2(64), 8192usize),
    ] {
        let base = baseline_rate(System::Electrons, &machine, base_m);
        for algo in [Algorithm::List, Algorithm::SparseSparse] {
            for nodes in [1usize, 2, 4, 8, 16, 32] {
                let mut best = (0usize, 0.0f64);
                for &m in &PAPER_MS {
                    let run = model_step(System::Electrons, algo, &machine, nodes, m);
                    if run.mem_per_node > machine.mem_per_node_gb * 1e9 {
                        continue;
                    }
                    let e = rel_efficiency(&run, &base);
                    if e > best.1 {
                        best = (m, e);
                    }
                }
                pt.row(vec![
                    machine.name.clone(),
                    algo.to_string(),
                    nodes.to_string(),
                    best.0.to_string(),
                    format!("{:.3}", best.1),
                ]);
            }
        }
    }
    pt.print();
    let _ = pt.write_csv("fig11b");
    println!(
        "\npaper shape checks: efficiency gained only at the largest problem\n\
         sizes; sparse-sparse fares comparatively better on Stampede2 than on\n\
         Blue Waters (sparse-kernel derate)."
    );
}

//! Figure 10: spins — execution time vs node-hour cost relative to the
//! single-node baseline, sweeping node count, processes/node, bond
//! dimension and algorithm (list = circles, sparse-dense = squares in the
//! paper). The paper's headline: 5.9× (m=4096) to 99× (m=32768) speedups
//! at ~1.5× relative cost, with the Blue Waters Pareto frontier made up
//! entirely of list-algorithm points.

use tt_bench::{baseline_rate, model_step, System, Table, PAPER_MS};
use tt_blocks::Algorithm;
use tt_dist::Machine;

fn main() {
    for (mname, machines) in [
        (
            "BlueWaters",
            vec![Machine::blue_waters(16), Machine::blue_waters(32)],
        ),
        ("Stampede2", vec![Machine::stampede2(64)]),
    ] {
        println!("=== Fig. 10 ({mname}): relative time vs relative cost ===\n");
        let mut t = Table::new(&[
            "algo",
            "ppn",
            "nodes",
            "m",
            "rel time",
            "rel cost",
            "rate speedup",
        ]);
        let mut pareto: Vec<(f64, f64, String)> = Vec::new();
        for machine in &machines {
            // baseline: single node at the same m (extrapolated when the
            // state exceeds node memory, as the paper does)
            for &m in &PAPER_MS[1..] {
                let base = baseline_rate(System::Spins, machine, m);
                for algo in [Algorithm::List, Algorithm::SparseDense] {
                    for nodes in [4usize, 8, 16, 32, 64, 128, 256] {
                        let run = model_step(System::Spins, algo, machine, nodes, m);
                        if run.mem_per_node > machine.mem_per_node_gb * 1e9 {
                            continue;
                        }
                        let rel_time = run.total() / base.total();
                        let rel_cost = rel_time * nodes as f64;
                        let rate_speedup = (run.flops / run.total()) / (base.flops / base.total());
                        t.row(vec![
                            algo.to_string(),
                            machine.procs_per_node.to_string(),
                            nodes.to_string(),
                            m.to_string(),
                            format!("{rel_time:.4}"),
                            format!("{rel_cost:.2}"),
                            format!("{rate_speedup:.1}"),
                        ]);
                        pareto.push((rel_cost, rel_time, format!("{algo} m={m} n={nodes}")));
                    }
                }
            }
        }
        t.print();
        let _ = t.write_csv(&format!("fig10_{mname}"));

        // Pareto frontier: minimal time for given cost
        pareto.sort_by(|a, b| a.0.partial_cmp(&b.0).expect("no NaN"));
        let mut best = f64::INFINITY;
        println!("\nPareto frontier ({mname}):");
        for (cost, time, label) in &pareto {
            if *time < best {
                best = *time;
                println!("  cost {cost:>8.2}  time {time:.4}  {label}");
            }
        }
        println!();
    }
    println!(
        "paper shape checks: the Blue Waters frontier is list-only; larger m\n\
         gives larger rate speedups (5.9x at m=4096 up to ~99x at m=32768) at\n\
         modest relative cost."
    );
}

//! Figure 10: spins — execution time vs node-hour cost relative to the
//! single-node baseline, sweeping node count, processes/node, bond
//! dimension and algorithm (list = circles, sparse-dense = squares in the
//! paper). The paper's headline: 5.9× (m=4096) to 99× (m=32768) speedups
//! at ~1.5× relative cost, with the Blue Waters Pareto frontier made up
//! entirely of list-algorithm points.
//!
//! The model tables are followed by a **live** section: a concurrent
//! bond-dimension scan submitted as jobs of a real solve-service daemon
//! sharing one multi-process worker fleet — every point is a tenant, and
//! identical Hamiltonian operands dedup across tenants worker-side.

use tt_bench::{pareto_frontier, pareto_scan, pareto_table, System, PAPER_MS};
use tt_blocks::Algorithm;
use tt_dist::Machine;

fn main() {
    // when re-executed as a solve-service fleet worker, serve and exit
    tt_dist::maybe_serve();

    for (mname, machines) in [
        (
            "BlueWaters",
            vec![Machine::blue_waters(16), Machine::blue_waters(32)],
        ),
        ("Stampede2", vec![Machine::stampede2(64)]),
    ] {
        println!("=== Fig. 10 ({mname}): relative time vs relative cost ===\n");
        let mut points = Vec::new();
        for machine in &machines {
            points.extend(pareto_scan(
                System::Spins,
                machine,
                &[Algorithm::List, Algorithm::SparseDense],
                &[4, 8, 16, 32, 64, 128, 256],
                &PAPER_MS[1..],
            ));
        }
        let t = pareto_table(&points, true);
        t.print();
        let _ = t.write_csv(&format!("fig10_{mname}"));

        println!("\nPareto frontier ({mname}):");
        for p in pareto_frontier(&points) {
            println!(
                "  cost {:>8.2}  time {:.4}  {} m={} n={}",
                p.rel_cost, p.rel_time, p.algo, p.m, p.nodes
            );
        }
        println!();
    }
    println!(
        "paper shape checks: the Blue Waters frontier is list-only; larger m\n\
         gives larger rate speedups (5.9x at m=4096 up to ~99x at m=32768) at\n\
         modest relative cost."
    );
    live_concurrent_scan();
}

/// Live section: the same scan shape as the model tables, run small —
/// every bond-dimension point is one job of a solve-service daemon, all
/// submitted up-front over one connection and scheduled concurrently on a
/// shared 3-worker fleet.
#[cfg(unix)]
fn live_concurrent_scan() {
    use tt_bench::{service_scan, Table};
    use tt_dist::service::{AlgoSpec, DavidsonSpec, DmrgJobSpec, ModelSpec};

    println!("\n== live concurrent scan (solve service, shared 3-worker fleet) ==\n");
    let ms_points: &[u64] = &[12, 16, 24];
    let specs: Vec<DmrgJobSpec> = ms_points
        .iter()
        .map(|&m| DmrgJobSpec {
            model: ModelSpec::HeisenbergChain { n: 8, j2: 0.5 },
            algo: AlgoSpec::List,
            ms: vec![8, m],
            sweeps_per_m: 1,
            cutoff: 1e-10,
            noise: 1e-4,
            davidson: DavidsonSpec {
                max_iter: 4,
                max_subspace: 2,
                tol: 1e-10,
                seed: 0x1234,
            },
            timeout_ms: 0,
            resident_cap_bytes: 0,
        })
        .collect();
    let (reports, fleet) = match service_scan(&specs, 3, specs.len()) {
        Ok(r) => r,
        Err(e) => {
            println!("(skipped: could not run the solve service: {e})");
            return;
        }
    };
    let mut t = Table::new(&["m", "energy", "flops", "operand MB", "result MB", "sim s"]);
    for (&m, r) in ms_points.iter().zip(&reports) {
        t.row(vec![
            m.to_string(),
            format!("{:.8}", r.energy),
            format!("{:.3e}", r.meter.flops as f64),
            format!("{:.2}", r.meter.bytes_operands as f64 / 1e6),
            format!("{:.2}", r.meter.bytes_results as f64 / 1e6),
            format!("{:.3}", r.meter.sim_seconds),
        ]);
    }
    t.print();
    let hits: u64 = fleet.iter().map(|s| s.hits).sum();
    let misses: u64 = fleet.iter().map(|s| s.misses).sum();
    println!(
        "\nfleet cache after the scan: {hits} hits / {misses} misses across {} ranks — \
         concurrent tenants sharing the Hamiltonian reuse worker-resident operands",
        fleet.len()
    );
}

#[cfg(not(unix))]
fn live_concurrent_scan() {}

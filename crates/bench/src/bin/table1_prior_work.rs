//! Table I: comparison with prior parallel DMRG work.
//!
//! Literature rows are static citations from the paper; the "this work"
//! rows report what this reproduction actually exercises (simulated nodes,
//! model-scale bond dimensions).

use tt_bench::Table;

fn main() {
    println!("=== Table I: prior work on parallel lattice DMRG ===\n");
    let mut t = Table::new(&[
        "system",
        "work",
        "method",
        "architecture",
        "max m",
        "max nodes",
    ]);
    let rows: &[[&str; 6]] = &[
        [
            "Heisenberg J1-J2",
            "this work",
            "U(1) DMRG",
            "Distributed Memory (simulated)",
            "32768",
            "256",
        ],
        [
            "Heisenberg J1-J2",
            "Jiang et al. [19]",
            "DMRG",
            "shared memory (NR)",
            "12000",
            "NR",
        ],
        [
            "Heisenberg J1-J2",
            "Wang et al. [20]",
            "DMRG",
            "shared memory (NR)",
            "12000",
            "NR",
        ],
        [
            "Triangular Hubbard",
            "this work",
            "U(1) DMRG",
            "Distributed Memory (simulated)",
            "32768",
            "256",
        ],
        [
            "Triangular Hubbard",
            "Shirakawa et al. [21]",
            "DMRG",
            "shared memory (NR)",
            "20000",
            "NR",
        ],
        [
            "Triangular Hubbard",
            "Szasz et al. [22]",
            "U(1)+k iDMRG",
            "Shared Memory",
            "11314",
            "1",
        ],
        [
            "Hubbard 1D chain",
            "Rincon et al. [23]",
            "U(1) DMRG",
            "Distributed Memory",
            "1000",
            "8",
        ],
        [
            "U-V Hubbard",
            "Kantian et al. [11,12]",
            "DMRG",
            "Distributed Memory",
            "18000",
            "180",
        ],
        [
            "Square Hubbard",
            "Yamada et al. [9,24]",
            "s-leg DMRG",
            "Distributed Shared Memory",
            "1200",
            "NR",
        ],
        [
            "Heisenberg 1D chain",
            "Vance et al. [10]",
            "U(1) iDMRG",
            "Distributed Memory",
            "2048",
            "64",
        ],
        [
            "Heisenberg J1",
            "Stoudenmire et al. [4]",
            "Parallel U(1) DMRG",
            "Real-Space Parallel",
            "2000",
            "10",
        ],
    ];
    for r in rows {
        t.row(r.iter().map(|s| s.to_string()).collect());
    }
    t.print();
    let _ = t.write_csv("table1");
    println!("\nNR = not reported in the cited work.");
}

//! Figure 7: percentage wall-time breakdown — SVD / load imbalance /
//! CTF transposition / communication / GEMM(+sparse).
//!
//! (a) spins, list algorithm on Blue Waters across m;
//! (b) electrons at fixed m: list vs sparse-sparse on Blue Waters and
//!     Stampede2. Live laptop-scale runs through the simulated runtime.

use tt_bench::{grow_state, measure_middle_step, System, Table};
use tt_blocks::Algorithm;
use tt_dist::{ExecMode, Executor, Machine};

fn breakdown_row(
    t: &mut Table,
    label: &str,
    algo: Algorithm,
    m: usize,
    step: &tt_bench::InstrumentedStep,
) {
    let p = step.sim.percentages();
    t.row(vec![
        label.into(),
        algo.to_string(),
        m.to_string(),
        format!("{:.1}", p[0]),
        format!("{:.1}", p[1]),
        format!("{:.1}", p[2]),
        format!("{:.1}", p[3]),
        format!("{:.1}", p[4]),
    ]);
}

fn main() {
    println!("=== Fig. 7: time breakdown (live, simulated machines) ===\n");
    let mut t = Table::new(&[
        "machine", "algo", "m", "%svd", "%imbal", "%transp", "%comm", "%gemm+sp",
    ]);

    // (a) spins on Blue Waters, list, m sweep, 1 node x 16 ppn
    let lat = System::Spins.default_lattice();
    for m in [16usize, 32, 64] {
        let warm = grow_state(System::Spins, &lat, m);
        let exec = Executor::with_machine(Machine::blue_waters(16), 1, ExecMode::Sequential);
        let step = measure_middle_step(&warm, &exec, Algorithm::List);
        breakdown_row(&mut t, "BW(spins)", Algorithm::List, m, &step);
    }

    // (b) electrons at fixed m: list & sparse-sparse on BW and S2
    let lat_e = System::Electrons.default_lattice();
    let warm_e = grow_state(System::Electrons, &lat_e, 32);
    for (label, machine) in [
        ("BW(elec)", Machine::blue_waters(16)),
        ("S2(elec)", Machine::stampede2(16)),
    ] {
        for algo in [Algorithm::List, Algorithm::SparseSparse] {
            let exec = Executor::with_machine(machine.clone(), 1, ExecMode::Sequential);
            let step = measure_middle_step(&warm_e, &exec, algo);
            breakdown_row(&mut t, label, algo, 32, &step);
        }
    }
    t.print();
    let _ = t.write_csv("fig7");
    println!(
        "\npaper shape checks: GEMM share grows with m (spins/BW); the\n\
         sparse-sparse algorithm shifts time into sparse kernels while list\n\
         is dominated by communication + transposition at small blocks."
    );
}

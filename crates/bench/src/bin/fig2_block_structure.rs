//! Figure 2: (a) number of blocks and size of the largest block, and
//! (b) sparsity of the flattened MPS tensor, versus bond dimension.
//!
//! Live series come from DMRG-grown states on scaled-down cylinders; the
//! model series extends to the paper's m = 2¹¹ … 2¹⁵ grid with the fitted
//! `b_ℓ = ⌊(m/q) rℓ⌋` spectrum (largest block ∝ m^0.94 spins / m^0.97
//! electrons in the paper's fit; exactly linear in the model).

use tt_bench::{grow_state, System, Table, PAPER_MS};

fn main() {
    println!("=== Fig. 2 (live): DMRG-grown MPS block structure ===\n");
    let mut t = Table::new(&["system", "m", "blocks", "largest", "sparsity"]);
    for system in [System::Spins, System::Electrons] {
        let lat = system.default_lattice();
        for m in [8usize, 16, 32, 64] {
            let warm = grow_state(system, &lat, m);
            let mid = lat.n_sites() / 2;
            let (nblocks, largest, fill) = warm.mps.block_stats(mid);
            t.row(vec![
                format!("{system:?}"),
                warm.mps.bond_dims()[mid].to_string(),
                nblocks.to_string(),
                largest.to_string(),
                format!("{fill:.4}"),
            ]);
        }
    }
    t.print();
    let _ = t.write_csv("fig2_live");

    println!("\n=== Fig. 2 (model, paper scale) ===\n");
    let mut mt = Table::new(&["system", "m", "blocks", "largest", "sparsity(model)"]);
    for system in [System::Spins, System::Electrons] {
        let model = system.block_model();
        for &m in &PAPER_MS {
            // sparsity of an order-3 (m, d, m) tensor with mirrored block
            // spectrum: stored / dense = Σ b_l² d / (m² d) per the diagonal
            // block-structure cartoon of Fig. 3b
            let dims = model.sector_dims(m);
            let stored: f64 = dims
                .iter()
                .enumerate()
                .map(|(l, &b)| (b as f64).powi(2) * if l == 0 { 1.0 } else { 2.0 })
                .sum();
            let meff = model.effective_m(m) as f64;
            mt.row(vec![
                format!("{system:?}"),
                m.to_string(),
                model.n_blocks(m).to_string(),
                model.largest_block(m).to_string(),
                format!("{:.4}", stored / (meff * meff)),
            ]);
        }
    }
    mt.print();
    let _ = mt.write_csv("fig2_model");
    println!(
        "\npaper shape checks: electrons have more blocks and lower sparsity than\n\
         spins at equal m; largest block grows ~linearly with m; spin sparsity\n\
         at m=2^15 is ~0.25-0.3, electron sparsity well below (Fig. 2b)."
    );
}

//! Figure 8: spins weak scaling on Blue Waters (list algorithm).
//!
//! (a) relative efficiency at fixed m/node — doubling nodes with doubling
//! bond dimension; (b) peak relative efficiency per node count, 16 vs 32
//! processes/node. Efficiency is GFlop/s/node relative to the single-node
//! baseline at m = 4096, as the paper defines.

use tt_bench::{baseline_rate, model_step, rel_efficiency, System, Table};
use tt_blocks::Algorithm;
use tt_dist::Machine;

fn main() {
    println!("=== Fig. 8a: weak scaling, fixed m/node (model, paper scale) ===\n");
    let mut t = Table::new(&["ppn", "nodes", "m", "rel. efficiency"]);
    for ppn in [16usize, 32] {
        let machine = Machine::blue_waters(ppn);
        let base = baseline_rate(System::Spins, &machine, 4096);
        // the paper's weak-scaling trajectory: (16, 4096) → (128, 32768)
        for (nodes, m) in [(16usize, 4096usize), (32, 8192), (64, 16384), (128, 32768)] {
            let run = model_step(System::Spins, Algorithm::List, &machine, nodes, m);
            t.row(vec![
                ppn.to_string(),
                nodes.to_string(),
                m.to_string(),
                format!("{:.3}", rel_efficiency(&run, &base)),
            ]);
        }
    }
    t.print();
    let _ = t.write_csv("fig8a");

    println!("\n=== Fig. 8b: peak relative efficiency per node count ===\n");
    let mut pt = Table::new(&["ppn", "nodes", "best m", "peak rel. efficiency"]);
    for ppn in [16usize, 32] {
        let machine = Machine::blue_waters(ppn);
        let base = baseline_rate(System::Spins, &machine, 4096);
        for nodes in [8usize, 16, 32, 64, 128, 256] {
            let mut best = (0usize, 0.0f64);
            for &m in &tt_bench::PAPER_MS {
                let run = model_step(System::Spins, Algorithm::List, &machine, nodes, m);
                // feasibility: fits in node memory
                if run.mem_per_node > machine.mem_per_node_gb * 1e9 {
                    continue;
                }
                let e = rel_efficiency(&run, &base);
                if e > best.1 {
                    best = (m, e);
                }
            }
            pt.row(vec![
                ppn.to_string(),
                nodes.to_string(),
                best.0.to_string(),
                format!("{:.3}", best.1),
            ]);
        }
    }
    pt.print();
    let _ = pt.write_csv("fig8b");
    println!(
        "\npaper shape checks: efficiency stays near-flat along the weak-scaling\n\
         diagonal (near-ideal at the largest node count in the paper); the best\n\
         m grows with the node count."
    );
}
